// Placement sweep: global vs. partitioned vs. clustered dispatch under
// identical arrival traces.
//
// The placement layer (sched/placement.hpp) claims two things: (1) a
// non-global placement with object scoping *structurally* removes
// cross-cluster conflicts — per-cluster queue/stack instances mean the
// retries/blockings of separated tasks literally cannot happen — and
// (2) the analysis::mp placement-aware bounds price exactly that
// separation, staying sound while getting strictly tighter than the
// global bounds on every shared scoped cell.  This bench gates both on
// BOTH substrates over the whole grid:
//
//   cpus ∈ {2, 4} × impl ∈ {lock-free, mutex, mcs}
//        × placement ∈ {global, partitioned, clustered}
//
// with one generated task set (queue-kind universe) and byte-identical
// arrival traces per (cpus, impl) cell, so the placement axis is the
// only thing that moves.  Static placements: partitioned pins task t to
// CPU t % cpus; clustered pairs CPUs {0,1} / {2,3} at cpus = 4 (task t
// to cluster t % 2) and uses singleton clusters at cpus = 2.
//
// Assertions (exit 1 on violation):
//   * every certificate is violation-free — the placement-aware bounds
//     hold for every measured (object, task) cell, every placement,
//     every substrate,
//   * for each (cpus, impl, substrate), the partitioned per-cell bound
//     is <= the global per-cell bound with at least one cell strictly
//     tighter (the zero-overlap refinement has teeth),
//   * lock impls never record a retry; lock-free never records a
//     blocking episode,
//   * sim and executor score the same job population per configuration.
//
// The AUR / retry / blocking fork across placements is recorded in
// BENCH_placement.json for trend tracking.
//
// Usage: placement_sweep [--tiny] [--cpus=N] [--out FILE] [--recalibrate]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/mp.hpp"
#include "common.hpp"
#include "runtime/calibrate.hpp"
#include "runtime/exec_adapter.hpp"
#include "sched/placement.hpp"

namespace {

using namespace lfrt;

enum class Pl { kGlobal, kPartitioned, kClustered };

const char* pl_name(Pl p) {
  switch (p) {
    case Pl::kGlobal: return "global";
    case Pl::kPartitioned: return "partitioned";
    case Pl::kClustered: return "clustered";
  }
  return "?";
}

/// The static placement for one grid point.  task_count entries; the
/// clustered shape pairs CPUs at cpus = 4 and degenerates to singleton
/// clusters at cpus = 2.
sched::Placement make_placement(Pl p, int cpus, std::size_t task_count) {
  sched::Placement out;
  if (p == Pl::kGlobal) return out;
  if (p == Pl::kPartitioned) {
    out.policy = sched::PlacementPolicy::kPartitioned;
    for (std::size_t t = 0; t < task_count; ++t)
      out.task_affinity.push_back(static_cast<std::int32_t>(t) % cpus);
    return out;
  }
  out.policy = sched::PlacementPolicy::kClustered;
  const int clusters = cpus >= 4 ? cpus / 2 : cpus;
  for (int c = 0; c < cpus; ++c)
    out.cpu_cluster.push_back(c / (cpus / clusters));
  for (std::size_t t = 0; t < task_count; ++t)
    out.task_affinity.push_back(static_cast<std::int32_t>(t % clusters));
  return out;
}

struct Row {
  int cpus = 1;
  std::string impl;
  Pl placement = Pl::kGlobal;
  std::string substrate;  // "sim" | "exec"
  std::int64_t jobs = 0;
  double aur = 0.0;
  std::int64_t retries = 0;
  std::int64_t blockings = 0;
  std::int64_t cells = 0;
  std::int64_t violations = 0;
  double min_slack = 1.0;
  bool mech_ok = true;
  analysis::mp::Certificate cert;  // kept for the tightness cross-check
};

Row summarize(const runtime::RunReport& rep, const TaskSet& ts,
              const std::vector<runtime::ObjectSpec>& specs,
              const runtime::CostModel& model, int cpus,
              runtime::ObjectImpl impl, Pl pl,
              const sched::Placement& placement,
              analysis::mp::Substrate substrate) {
  analysis::mp::MpOptions opt;
  opt.cpu_count = cpus;
  opt.substrate = substrate;
  opt.placement = placement;
  Row row;
  row.cert = analysis::certify(rep, ts, specs, model, opt);
  row.cpus = cpus;
  row.impl = runtime::to_string(impl);
  row.placement = pl;
  row.substrate =
      substrate == analysis::mp::Substrate::kSimulator ? "sim" : "exec";
  row.jobs = rep.counted_jobs;
  row.aur = rep.aur();
  row.retries = rep.total_retries;
  row.blockings = rep.total_blockings;
  row.cells = row.cert.cells_checked;
  row.violations = row.cert.violations;
  row.min_slack = row.cert.min_slack;
  if (runtime::is_lock_based(impl) && rep.total_retries != 0)
    row.mech_ok = false;
  if (!runtime::is_lock_based(impl) && rep.total_blockings != 0)
    row.mech_ok = false;
  return row;
}

/// Gate: every partitioned per-cell bound <= its global twin; reports
/// via *any_strict whether some cell got strictly tighter.  Cells are
/// compared positionally — both certificates cover the same objects x
/// tasks grid over the same job population (identical traces).  The
/// strict-tightness requirement is checked per (cpus, impl) across the
/// substrate pair, because the executor's lock-based blocking cells are
/// clamped by the one-blocking-per-own-acquisition cap, which dominates
/// both placements' conflict charges and leaves nothing to tighten
/// there — the refinement's teeth show in the simulator blocking cells
/// and in the lock-free retry cells.
bool no_cell_looser(const analysis::mp::Certificate& part,
                    const analysis::mp::Certificate& global,
                    const char* what, bool* any_strict) {
  const auto check = [&](const std::vector<analysis::mp::CellCheck>& p,
                         const std::vector<analysis::mp::CellCheck>& g) {
    if (p.size() != g.size()) {
      std::cerr << "error: " << what << ": cell grids differ in size\n";
      return false;
    }
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i].unbounded || g[i].unbounded) continue;
      if (p[i].bound > g[i].bound) {
        std::cerr << "error: " << what << ": partitioned bound "
                  << p[i].bound << " exceeds global " << g[i].bound
                  << " at cell " << i << "\n";
        return false;
      }
      if (p[i].bound < g[i].bound) *any_strict = true;
    }
    return true;
  };
  return check(part.retries, global.retries) &&
         check(part.blockings, global.blockings);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bool tiny = false;
  bool recalibrate = false;
  int only_cpus = 0;
  std::string out_path = "BENCH_placement.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--recalibrate") == 0) {
      recalibrate = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--cpus=", 7) == 0) {
      only_cpus = std::atoi(argv[i] + 7);
      if (only_cpus < 2) {
        std::cerr << "error: --cpus must be >= 2 (placement needs "
                     "clusters)\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--threads", 9) == 0) {
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc) ++i;
    } else {
      std::cerr << "usage: placement_sweep [--tiny] [--cpus=N] [--out FILE] "
                   "[--recalibrate]\n";
      return 2;
    }
  }
  bench::print_header("Placement sweep",
                      "global vs partitioned vs clustered dispatch, "
                      "certified on both substrates");

  workload::WorkloadSpec base;
  base.task_count = 6;
  base.object_count = 3;
  base.accesses_per_job = 4;
  base.avg_exec = usec(400);
  base.tuf_class = workload::TufClass::kStep;
  base.seed = 7;
  base.load = 0.8;
  const TaskSet ts = workload::make_task_set(base);

  const int windows = tiny ? 2 : 6;
  const std::uint64_t arrival_seed = 1000;
  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);
  const Time horizon = max_window * windows;

  runtime::ExecConfig cal_probe;
  runtime::CalibrateOptions cal_opts;
  cal_opts.force = recalibrate;
  const runtime::AccessCalibration cal =
      runtime::calibrate(cal_probe, ts, tiny ? 200 : 500, cal_opts);
  std::cout << "calibrated access times: s = " << cal.lockfree_access_time
            << " ns, r = " << cal.lock_access_time << " ns ("
            << cal.samples << " samples"
            << (cal.from_cache ? ", cached" : ", measured") << ")\n";

  std::vector<int> cpu_sweep = {2, 4};
  if (only_cpus > 0) cpu_sweep = {only_cpus};
  const std::vector<runtime::ObjectImpl> impls = {
      runtime::ObjectImpl::kLockFree, runtime::ObjectImpl::kMutex,
      runtime::ObjectImpl::kMcs};
  const std::vector<Pl> placements = {Pl::kGlobal, Pl::kPartitioned,
                                      Pl::kClustered};

  std::vector<Row> rows;
  bool ok = true;
  for (const int cpus : cpu_sweep) {
    for (const runtime::ObjectImpl impl : impls) {
      const auto specs = runtime::uniform_objects(
          ts.object_count, runtime::ObjectKind::kQueue, impl);
      const sim::ShareMode mode = runtime::is_lock_based(impl)
                                      ? sim::ShareMode::kLockBased
                                      : sim::ShareMode::kLockFree;
      // One trace set per (cpus, impl): the placement axis replays it.
      const auto traces = runtime::make_arrival_traces(ts, horizon,
                                                       arrival_seed,
                                                       /*periodic=*/true);
      const Row* sim_global = nullptr;
      const Row* sim_part = nullptr;
      const Row* exec_global = nullptr;
      const Row* exec_part = nullptr;
      for (const Pl pl : placements) {
        const sched::Placement placement =
            make_placement(pl, cpus, ts.tasks.size());

        sim::SimConfig cfg;
        cfg.mode = mode;
        // Inflated access windows for the same reason mp_bounds uses
        // them: at calibrated (~100 ns) scale the sim's heatmaps stay
        // all-zero and the certificates gate nothing.  The count bounds
        // are duration-independent, so this stresses without skewing.
        cfg.lockfree_access_time = usec(10);
        cfg.lock_access_time = usec(20);
        cfg.objects = specs;
        cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
        cfg.cpu_count = cpus;
        cfg.horizon = horizon;
        cfg.dispatch.placement = placement;
        sim::Simulator sim(ts, bench::scheduler_for(mode), cfg);
        for (const auto& t : ts.tasks)
          sim.set_arrivals(t.id, traces[static_cast<std::size_t>(t.id)]);
        const sim::SimReport sim_rep = sim.run();

        runtime::ExecConfig ec;
        ec.horizon = horizon;
        ec.objects = specs;
        ec.cpu_count = cpus;
        ec.arrival_seed = arrival_seed;
        ec.periodic_arrivals = true;
        ec.dispatch.placement = placement;
        ec.sim_lockfree_access_time = cal.lockfree_access_time;
        ec.sim_lock_access_time = cal.lock_access_time;
        ec.sim_cost_model = cal.model;
        const rt::ExecutorReport exec_rep =
            runtime::run_on_executor(ts, bench::scheduler_for(mode), ec);

        rows.push_back(summarize(sim_rep, ts, specs, cal.model, cpus, impl,
                                 pl, placement,
                                 analysis::mp::Substrate::kSimulator));
        rows.push_back(summarize(exec_rep, ts, specs, cal.model, cpus, impl,
                                 pl, placement,
                                 analysis::mp::Substrate::kExecutor));
        if (sim_rep.counted_jobs != exec_rep.counted_jobs) {
          std::cerr << "error: cpus=" << cpus << " "
                    << runtime::to_string(impl) << "/" << pl_name(pl)
                    << ": job populations differ (sim "
                    << sim_rep.counted_jobs << ", exec "
                    << exec_rep.counted_jobs << ")\n";
          ok = false;
        }
      }
      // Indexing into `rows` only now — push_back above may reallocate.
      const std::size_t n = rows.size();
      sim_global = &rows[n - 6];
      exec_global = &rows[n - 5];
      sim_part = &rows[n - 4];
      exec_part = &rows[n - 3];
      const std::string what_base = "cpus=" + std::to_string(cpus) + " " +
                                    runtime::to_string(impl);
      bool any_strict = false;
      ok = no_cell_looser(sim_part->cert, sim_global->cert,
                          (what_base + "/sim").c_str(), &any_strict) &&
           ok;
      ok = no_cell_looser(exec_part->cert, exec_global->cert,
                          (what_base + "/exec").c_str(), &any_strict) &&
           ok;
      if (!any_strict) {
        std::cerr << "error: " << what_base
                  << ": no cell strictly tighter under partitioning\n";
        ok = false;
      }
    }
  }

  Table table({"cpus", "impl", "placement", "sub", "jobs", "AUR", "retries",
               "blockings", "cells", "viol", "min slack"});
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.cpus), r.impl, pl_name(r.placement),
                   r.substrate, std::to_string(r.jobs), Table::num(r.aur, 4),
                   std::to_string(r.retries), std::to_string(r.blockings),
                   std::to_string(r.cells), std::to_string(r.violations),
                   Table::num(r.min_slack, 3)});
  }
  table.print();

  std::int64_t total_violations = 0;
  for (const Row& r : rows) {
    total_violations += r.violations;
    if (r.violations != 0) {
      std::cerr << "error: cpus=" << r.cpus << " " << r.impl << "/"
                << pl_name(r.placement) << "/" << r.substrate << ": "
                << r.violations
                << " heatmap cell(s) exceed the analytical bound\n";
      ok = false;
    }
    if (!r.mech_ok) {
      std::cerr << "error: cpus=" << r.cpus << " " << r.impl << "/"
                << pl_name(r.placement) << "/" << r.substrate
                << ": mechanism fork violated (lock retries or lock-free "
                   "blockings)\n";
      ok = false;
    }
  }

  std::ofstream os(out_path);
  os << "{\n  \"bench\": \"placement_sweep\",\n  \"objects\": \"queue\",\n"
     << "  \"load\": " << base.load << ",\n  \"calibrated_s_ns\": "
     << cal.lockfree_access_time << ",\n  \"calibrated_r_ns\": "
     << cal.lock_access_time << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"cpus\": " << r.cpus << ", \"impl\": \"" << r.impl
       << "\", \"placement\": \"" << pl_name(r.placement)
       << "\", \"substrate\": \"" << r.substrate
       << "\", \"jobs\": " << r.jobs << ", \"aur\": " << r.aur
       << ", \"retries\": " << r.retries
       << ", \"blockings\": " << r.blockings
       << ", \"cells_checked\": " << r.cells
       << ", \"violations\": " << r.violations
       << ", \"min_slack\": " << r.min_slack << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  if (!os) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";

  if (ok)
    std::cout << "placement_sweep: all checks ok (" << rows.size()
              << " certificates, " << total_violations << " violations)\n";
  else
    std::cout << "placement_sweep: CHECKS FAILED (" << total_violations
              << " bound violations)\n";
  return ok ? 0 : 1;
}
