// Oracle test: the optimized RUA scheduler (workspace + undo log +
// prefix-sum feasibility, rua.cpp) must be bit-for-bit equivalent to
// the frozen naive reference (rua_reference.cpp) — identical schedules,
// rejections, deadlock victims, dispatch choices, and modelled ops —
// on randomized job sets covering mixed TUF shapes, dependency
// forests, and deadlock cycles.
//
// One workspace and one ScheduleResult are reused across every
// iteration, so the sweep also stresses the capacity-retention
// contract (stale state leaking across calls would show up as a
// mismatch on the next job set).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/rua.hpp"
#include "sched/rua_reference.hpp"
#include "support/rng.hpp"
#include "tuf/tuf.hpp"

namespace lfrt {
namespace {

using sched::RuaReferenceScheduler;
using sched::RuaScheduler;
using sched::SchedJob;
using sched::ScheduleResult;
using sched::Sharing;

std::unique_ptr<Tuf> random_tuf(Rng& rng, double height, Time critical) {
  switch (rng.uniform(0, 3)) {
    case 0:
      return make_step_tuf(height, critical);
    case 1:
      return make_linear_tuf(height, critical);
    case 2:
      return make_parabolic_tuf(height, critical);
    default:
      return make_exponential_tuf(height, critical,
                                  /*decay=*/rng.uniform_real(0.5, 6.0));
  }
}

/// How dependencies are wired for one generated job set.
enum class DepShape {
  kNone,     // lock-free: no blocking
  kForest,   // waits_on only higher ids: acyclic
  kCyclic,   // arbitrary waits_on: cycles possible (detector on)
};

struct Generated {
  std::vector<std::unique_ptr<Tuf>> tufs;
  std::vector<SchedJob> jobs;
};

Generated generate(Rng& rng, int n, DepShape shape) {
  Generated g;
  for (int i = 0; i < n; ++i) {
    const double height = 1.0 + static_cast<double>(rng.uniform(0, 99));
    const Time critical = usec(rng.uniform(20, 2000));
    g.tufs.push_back(random_tuf(rng, height, critical));
    SchedJob j;
    j.id = i;
    j.arrival = usec(rng.uniform(0, 10));
    j.critical = j.arrival + g.tufs.back()->critical_time();
    j.remaining = usec(rng.uniform(1, 200));
    j.tuf = g.tufs.back().get();
    switch (shape) {
      case DepShape::kNone:
        j.waits_on = kNoJob;
        break;
      case DepShape::kForest:
        j.waits_on = (i + 1 < n && rng.chance(0.5))
                         ? rng.uniform(i + 1, n - 1)
                         : kNoJob;
        break;
      case DepShape::kCyclic: {
        // Arbitrary edges (excluding self-loops): long chains, shared
        // holders, and cycles all arise; the detector resolves cycles.
        JobId w = kNoJob;
        if (n > 1 && rng.chance(0.6)) {
          w = rng.uniform(0, n - 2);
          if (w >= i) ++w;
        }
        j.waits_on = w;
        break;
      }
    }
    g.jobs.push_back(j);
  }
  return g;
}

void expect_identical(const ScheduleResult& ref, const ScheduleResult& opt,
                      std::uint64_t seed, int iter) {
  ASSERT_EQ(ref.schedule, opt.schedule) << "seed " << seed << " iter "
                                        << iter;
  ASSERT_EQ(ref.rejected, opt.rejected) << "seed " << seed << " iter "
                                        << iter;
  ASSERT_EQ(ref.deadlock_victims, opt.deadlock_victims)
      << "seed " << seed << " iter " << iter;
  ASSERT_EQ(ref.dispatch, opt.dispatch) << "seed " << seed << " iter "
                                        << iter;
  ASSERT_EQ(ref.ops, opt.ops) << "seed " << seed << " iter " << iter;
}

class RuaEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuaEquivalenceTest, OptimizedMatchesReferenceOnRandomJobSets) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  const RuaScheduler opt_lf(Sharing::kLockFree);
  const RuaScheduler opt_lb(Sharing::kLockBased);
  const RuaScheduler opt_lb_detect(Sharing::kLockBased,
                                   /*detect_deadlocks=*/true);
  const RuaReferenceScheduler ref_lf(Sharing::kLockFree);
  const RuaReferenceScheduler ref_lb(Sharing::kLockBased);
  const RuaReferenceScheduler ref_lb_detect(Sharing::kLockBased,
                                            /*detect_deadlocks=*/true);

  // One workspace/result reused across all iterations and all three
  // optimized schedulers (the workspace carries no semantic state).
  const auto ws = opt_lf.make_workspace();
  ScheduleResult opt_out;

  const int iters = 350;  // x4 seeds = 1400 job sets
  for (int iter = 0; iter < iters; ++iter) {
    const int n = rng.uniform(1, 24);
    const Time now = usec(rng.uniform(0, 50));

    const RuaScheduler* opt = nullptr;
    const RuaReferenceScheduler* ref = nullptr;
    DepShape shape = DepShape::kNone;
    switch (iter % 3) {
      case 0:
        opt = &opt_lf;
        ref = &ref_lf;
        shape = DepShape::kNone;
        break;
      case 1:
        // Forests are legal with the detector either way; alternate.
        opt = iter % 2 ? &opt_lb : &opt_lb_detect;
        ref = iter % 2 ? &ref_lb : &ref_lb_detect;
        shape = DepShape::kForest;
        break;
      default:
        opt = &opt_lb_detect;
        ref = &ref_lb_detect;
        shape = DepShape::kCyclic;
        break;
    }

    const Generated g = generate(rng, n, shape);
    const ScheduleResult ref_out = ref->build(g.jobs, now);
    opt->build_into(g.jobs, now, ws.get(), opt_out);
    expect_identical(ref_out, opt_out, seed, iter);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RuaEquivalenceTest,
                         ::testing::Values(1u, 42u, 1234u, 987654321u));

}  // namespace
}  // namespace lfrt
