file(REMOVE_RECURSE
  "liblfrt_sim.a"
)
