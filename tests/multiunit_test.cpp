// Multi-unit resource tests (Wu et al. [27]'s general model; the DATE
// paper's single-unit sharing is the one-unit special case).
#include <gtest/gtest.h>

#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"

namespace lfrt {
namespace {

using sim::ShareMode;
using sim::SimConfig;
using sim::Simulator;

const Job& job_of_task(const sim::SimReport& rep, TaskId task) {
  for (const Job& j : rep.jobs)
    if (j.task == task) return j;
  LFRT_CHECK_MSG(false, "no such job");
  static Job dummy;
  return dummy;
}

TaskParams accessor(TaskId id, Time exec, Time critical, ObjectId obj,
                    Time offset) {
  TaskParams p;
  p.id = id;
  p.exec_time = exec;
  p.tuf = make_step_tuf(10.0, critical);
  p.arrival = UamSpec{1, 1, critical};
  p.accesses = {{obj, offset}};
  return p;
}

TEST(MultiUnit, ValidationRules) {
  TaskSet ts;
  ts.object_count = 2;
  ts.tasks.push_back(accessor(0, usec(10), usec(100), 0, usec(1)));
  ts.object_units = {2};  // must cover every object
  EXPECT_THROW(ts.validate(), InvariantViolation);
  ts.object_units = {2, 0};  // zero units illegal
  EXPECT_THROW(ts.validate(), InvariantViolation);
  ts.object_units = {2, 1};
  EXPECT_NO_THROW(ts.validate());
  EXPECT_EQ(ts.units_of(0), 2);
  EXPECT_EQ(ts.units_of(1), 1);
  ts.object_units.clear();
  EXPECT_EQ(ts.units_of(0), 1);  // default single-unit
}

TEST(MultiUnit, TwoUnitsAdmitTwoHoldersOnTwoCpus) {
  TaskSet ts;
  ts.object_count = 1;
  ts.object_units = {2};
  for (TaskId i = 0; i < 3; ++i)
    ts.tasks.push_back(accessor(i, usec(10), usec(300), 0, usec(2)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(10);
  cfg.cpu_count = 3;
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  for (TaskId i = 0; i < 3; ++i) sim.set_arrivals(i, {0});
  const auto rep = sim.run();
  // Jobs 0 and 1 hold concurrently (2 units); job 2 blocks once.
  EXPECT_EQ(rep.total_blockings, 1);
  EXPECT_EQ(rep.completed, 3);
  std::vector<Time> completions;
  for (const Job& j : rep.jobs) completions.push_back(j.completion);
  std::sort(completions.begin(), completions.end());
  EXPECT_EQ(completions[0], usec(20));  // two finish together at 20
  EXPECT_EQ(completions[1], usec(20));
  EXPECT_EQ(completions[2], usec(30));  // third serialized behind a unit
}

TEST(MultiUnit, SingleUnitStillSerializesThreeWays) {
  TaskSet ts;
  ts.object_count = 1;  // default 1 unit
  for (TaskId i = 0; i < 3; ++i)
    ts.tasks.push_back(accessor(i, usec(10), usec(300), 0, usec(2)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(10);
  cfg.cpu_count = 3;
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  for (TaskId i = 0; i < 3; ++i) sim.set_arrivals(i, {0});
  const auto rep = sim.run();
  EXPECT_GE(rep.total_blockings, 2);
  std::vector<Time> completions;
  for (const Job& j : rep.jobs) completions.push_back(j.completion);
  std::sort(completions.begin(), completions.end());
  EXPECT_EQ(completions[2], usec(40));  // 3 serialized sections
}

TEST(MultiUnit, WaiterWakesWhenAnyUnitFrees) {
  // The earliest holder is NOT the first to release; the waiter must
  // still wake when the other holder's unit frees (object-based wake).
  TaskSet ts;
  ts.object_count = 1;
  ts.object_units = {2};
  // Holder A: long section start, releases late.
  ts.tasks.push_back(accessor(0, usec(40), usec(500), 0, usec(2)));
  // Holder B: starts its access slightly later, releases much earlier
  // (same r, but A's section starts first -> A is holders.front()).
  ts.tasks.push_back(accessor(1, usec(10), usec(500), 0, usec(4)));
  // Waiter C: requests third.
  ts.tasks.push_back(accessor(2, usec(10), usec(500), 0, usec(6)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(20);
  cfg.cpu_count = 3;
  cfg.horizon = msec(2);
  Simulator sim(ts, edf, cfg);
  for (TaskId i = 0; i < 3; ++i) sim.set_arrivals(i, {0});
  const auto rep = sim.run();
  EXPECT_EQ(rep.completed, 3);
  // A: 2 + 20 + 38 = 60us.  B: 4 + 20 + 6 = 30us.
  // C blocked at 6 on A (earliest holder), wakes at B's release (24),
  // accesses 24..44, computes to 48 — well before A releases at 42?
  // (A's release is at 22: section 2..22!)  Recompute: A's access runs
  // 2..22, B's 4..24.  C blocks at 6, wakes at A's release 22, runs
  // 22..42, completes 46.  Either way C must finish far earlier than it
  // would if it waited for the LATEST holder.
  const Job& c = job_of_task(rep, 2);
  EXPECT_EQ(c.state, JobState::kCompleted);
  EXPECT_LE(c.completion, usec(50));
  EXPECT_EQ(c.blockings, 1);
}

TEST(MultiUnit, AbortReleasesUnit) {
  TaskSet ts;
  ts.object_count = 1;
  ts.object_units = {2};
  // Two hopeless holders occupy both units past their critical times.
  ts.tasks.push_back(accessor(0, usec(100), usec(30), 0, usec(1)));
  ts.tasks.push_back(accessor(1, usec(100), usec(30), 0, usec(1)));
  // A viable third task needs one unit.
  ts.tasks.push_back(accessor(2, usec(10), usec(300), 0, usec(1)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(200);  // sections outlive the criticals
  cfg.cpu_count = 3;
  cfg.horizon = msec(2);
  Simulator sim(ts, edf, cfg);
  for (TaskId i = 0; i < 3; ++i) sim.set_arrivals(i, {0});
  const auto rep = sim.run();
  EXPECT_EQ(rep.aborted, 2);
  // The aborts (at 30us) free the units; task 2 completes.
  const Job& c = job_of_task(rep, 2);
  EXPECT_EQ(c.state, JobState::kCompleted);
  EXPECT_LE(c.completion, usec(300));
}

TEST(MultiUnit, SchedulerChainTargetsEarliestHolder) {
  // Structural: the blocked job's waits_on names the front holder, so
  // RUA's dependency chain machinery keeps working under multi-unit.
  TaskSet ts;
  ts.object_count = 1;
  ts.object_units = {2};
  for (TaskId i = 0; i < 3; ++i)
    ts.tasks.push_back(accessor(i, usec(10), usec(300), 0, usec(2)));
  const sched::RuaScheduler rua(sched::Sharing::kLockBased);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(10);
  cfg.cpu_count = 1;  // uniprocessor: holders accumulate via preemption
  cfg.horizon = msec(2);
  Simulator sim(ts, rua, cfg);
  for (TaskId i = 0; i < 3; ++i) sim.set_arrivals(i, {0});
  const auto rep = sim.run();
  EXPECT_EQ(rep.completed, 3);
}

}  // namespace
}  // namespace lfrt
