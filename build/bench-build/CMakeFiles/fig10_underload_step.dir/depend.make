# Empty dependencies file for fig10_underload_step.
# This may be replaced when dependencies are built.
