// Randomized invariant suite for the RUA scheduler — properties that
// must hold for any input, checked over many seeded random views:
//
//   P1  the committed schedule passes its own feasibility test
//       (cumulative finish times within effective critical times),
//   P2  the dispatched job is always runnable,
//   P3  determinism: identical input -> identical output,
//   P4  every pending job is either scheduled or rejected (none lost),
//   P5  lock-based RUA never does fewer ops than lock-free RUA on the
//       same dependency-free view (chain bookkeeping is pure overhead),
//   P6  Theorem 3's algebra: whenever s/r is below the task's threshold
//       the sharing-dependent worst-case time under lock-free
//       (s*m + s*f) is below lock-based's (r*m + r*min(m,n)).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "analysis/bounds.hpp"
#include "sched/rua.hpp"
#include "support/rng.hpp"
#include "tuf/tuf.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

using sched::RuaScheduler;
using sched::SchedJob;
using sched::ScheduleResult;
using sched::Sharing;

struct RandomView {
  std::vector<std::unique_ptr<Tuf>> tufs;
  std::vector<SchedJob> jobs;
};

RandomView make_view(std::uint64_t seed, bool with_deps) {
  Rng rng(seed);
  RandomView v;
  const int n = static_cast<int>(rng.uniform(1, 16));
  for (int i = 0; i < n; ++i) {
    const Time critical = usec(rng.uniform(20, 2000));
    v.tufs.push_back(
        make_step_tuf(1.0 + static_cast<double>(rng.uniform(0, 99)),
                      critical));
    SchedJob j;
    j.id = i;
    j.arrival = usec(rng.uniform(0, 10));
    j.critical = j.arrival + critical;
    j.remaining = usec(rng.uniform(1, 400));
    j.tuf = v.tufs.back().get();
    if (with_deps && i + 1 < n && rng.chance(0.4))
      j.waits_on = rng.uniform(i + 1, n - 1);
    v.jobs.push_back(j);
  }
  return v;
}

/// Recompute effective critical times of the output schedule the way
/// the algorithm does (clamp each job by the dependents that follow it)
/// and verify cumulative feasibility.
void check_schedule_feasible(const std::vector<SchedJob>& jobs,
                             const ScheduleResult& res, Time now) {
  std::map<JobId, const SchedJob*> by_id;
  for (const auto& j : jobs) by_id[j.id] = &j;

  // Effective critical of an entry is its own critical clamped by every
  // *transitive waiter* of it that appears later in the schedule — the
  // dependency clamping of Figure 4 only ever tightens toward a later
  // dependent's critical, so the loosest correct bound for the check is
  // the job's own critical; cumulative finishes must respect at least
  // the position-wise minimum suffix of criticals for chained jobs.
  Time finish = now;
  for (std::size_t k = 0; k < res.schedule.size(); ++k) {
    const SchedJob* j = by_id.at(res.schedule[k]);
    finish += j->remaining;
    // Own critical time is an upper bound on the effective one only for
    // unclamped entries; for the P1 check use the weakest sound
    // invariant: every scheduled job finishes by its own critical time.
    EXPECT_LE(finish, j->critical)
        << "job " << j->id << " at position " << k;
  }
}

class RuaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuaPropertyTest, CommittedScheduleIsFeasible_P1) {
  for (const bool deps : {false, true}) {
    const RandomView v = make_view(GetParam(), deps);
    const RuaScheduler rua(deps ? Sharing::kLockBased : Sharing::kLockFree);
    const auto res = rua.build(v.jobs, usec(5));
    check_schedule_feasible(v.jobs, res, usec(5));
  }
}

TEST_P(RuaPropertyTest, DispatchIsRunnable_P2) {
  for (const bool deps : {false, true}) {
    const RandomView v = make_view(GetParam() * 31 + 1, deps);
    const RuaScheduler rua(deps ? Sharing::kLockBased : Sharing::kLockFree);
    const auto res = rua.build(v.jobs, 0);
    if (res.dispatch == kNoJob) continue;
    for (const auto& j : v.jobs)
      if (j.id == res.dispatch) EXPECT_TRUE(j.runnable());
  }
}

TEST_P(RuaPropertyTest, Deterministic_P3) {
  const RandomView v = make_view(GetParam() * 17 + 3, true);
  const RuaScheduler rua(Sharing::kLockBased);
  const auto a = rua.build(v.jobs, usec(1));
  const auto b = rua.build(v.jobs, usec(1));
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.dispatch, b.dispatch);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.ops, b.ops);
}

TEST_P(RuaPropertyTest, NoJobLost_P4) {
  // Lock-free mode: every job is either in the schedule or rejected.
  const RandomView v = make_view(GetParam() * 7 + 5, false);
  const RuaScheduler rua(Sharing::kLockFree);
  const auto res = rua.build(v.jobs, 0);
  EXPECT_EQ(res.schedule.size() + res.rejected.size(), v.jobs.size());
  for (const auto& j : v.jobs) {
    const bool in_sched =
        std::find(res.schedule.begin(), res.schedule.end(), j.id) !=
        res.schedule.end();
    const bool in_rej =
        std::find(res.rejected.begin(), res.rejected.end(), j.id) !=
        res.rejected.end();
    EXPECT_TRUE(in_sched != in_rej) << "job " << j.id;
  }
}

TEST_P(RuaPropertyTest, ChainBookkeepingCostsOps_P5) {
  const RandomView v = make_view(GetParam() * 13 + 7, false);
  const RuaScheduler lb(Sharing::kLockBased);
  const RuaScheduler lf(Sharing::kLockFree);
  const auto a = lb.build(v.jobs, 0);
  const auto b = lf.build(v.jobs, 0);
  EXPECT_GE(a.ops, b.ops);
  // Identical decisions on a dependency-free view.
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.dispatch, b.dispatch);
}

TEST_P(RuaPropertyTest, Theorem3AlgebraHolds_P6) {
  workload::WorkloadSpec spec;
  spec.task_count = 3 + static_cast<std::int32_t>(GetParam() % 6);
  spec.accesses_per_job = static_cast<std::int32_t>(GetParam() % 5);
  spec.object_count = 4;
  spec.max_per_window = 1 + static_cast<std::int32_t>(GetParam() % 3);
  spec.seed = GetParam();
  const TaskSet ts = workload::make_task_set(spec);

  Rng rng(GetParam() ^ 0xBEEF);
  for (const auto& t : ts.tasks) {
    if (t.access_count() == 0) continue;
    const double threshold = analysis::lockfree_exact_threshold(ts, t.id);
    const Time r = usec(rng.uniform(2, 100));
    for (double frac : {0.3, 0.8}) {
      const Time s =
          std::max<Time>(1, static_cast<Time>(
                                static_cast<double>(r) * threshold * frac));
      if (static_cast<double>(s) / static_cast<double>(r) >=
          threshold)
        continue;  // integer rounding pushed it over: skip
      const std::int64_t m = t.access_count();
      const std::int64_t f = analysis::retry_bound(ts, t.id);
      const std::int64_t n = analysis::max_blocking_jobs(ts, t.id);
      const Time y = s * m + s * f;
      const Time x = r * m + r * std::min(m, n);
      EXPECT_LT(y, x) << "task " << t.id << " s=" << s << " r=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RuaPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace lfrt
