// Cross-substrate validation: the same WorkloadSpec on the simulator
// and on the real-threads executor.
//
// The paper validates its analysis twice — simulation (Section 6) and a
// POSIX middleware implementation (the meta-scheduler testbed).  This
// bench is that discipline in-repo: one generated task set, identical
// arrival traces (runtime::make_arrival_traces mirrors make_cell_sim's
// seeding), run once through sim::Simulator and once through
// rt::Executor via the runtime::run_on_executor adapter, under both the
// lock-free and lock-based implementations of a chosen object *kind*
// (queue by default; --objects= selects stack, buffer, or snapshot —
// both substrates lower the same per-object ObjectSpec universe), in
// underload and overload.  The simulator's access times s and r are
// *calibrated*: measured on this host by the fig08 access-time
// machinery via runtime::calibrate, not order-of-magnitude constants.
//
// Assertions (exit 1 on violation):
//   * both substrates score the same job population (same counting rule
//     over the same traces),
//   * underload: |AUR_sim - AUR_exec| and |CMR_sim - CMR_exec| within
//     tolerance — the substrates must agree where the analysis says
//     everything completes,
//   * queue kind, lock-free impl: executor per-task worst-case retries
//     and the total stay under Theorem 2's bound (the bound holds for
//     *real* CAS failures, not just modelled ones).  Other kinds report
//     retries without enforcing the bound: NBW/snapshot readers spin
//     while a writer is mid-flight, a retry class outside the theorem's
//     CAS model,
//   * every executor report's contention heatmap has objects × tasks
//     cells whose retry/blocking sums equal the run's per-job totals
//     (the attribution invariant), and round-trips bit-exactly through
//     runtime::to_json / from_json.
//
// Overload rows are reported (the substrates shed differently — the
// executor pays real scheduling latency) but only sanity-checked.
//
// The whole grid is swept at cpu_count ∈ {1, 2, 4}: the simulator's
// multi-CPU dispatch and the executor's M-worker mode share the same
// selection rule (sched::DispatchSelector), so agreement must survive
// true parallelism.  For every cpu_count >= 2 the executor must also
// witness real overlap: max_concurrency_observed >= 2 somewhere in the
// group, or the "parallel" mode silently serialized.
//
// Usage: ext_executor_validation [--tiny] [--cpus=N] [--threads=N]
//                                [--objects=KIND] [--out FILE]
//                                [--report-out FILE] [--recalibrate]
//   --tiny        smoke mode for check.sh/CI: short horizons, loose
//                 tolerance, fewer calibration samples
//   --cpus=N      restrict the sweep to one cpu_count (smoke runs)
//   --objects=K   object kind: queue (default) | stack | buffer |
//                 snapshot
//   --out         JSON row output (default BENCH_xval.json in the cwd)
//   --report-out  full RunReport JSON of one executor run, heatmap
//                 included (default BENCH_xval_report.json)
//   --recalibrate ignore the persistent calibration cache
//                 (runtime::calibrate keeps per-host measurements in
//                 $LFRT_CALIBRATION_CACHE / ~/.cache) and re-measure
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "common.hpp"
#include "runtime/calibrate.hpp"
#include "runtime/exec_adapter.hpp"
#include "runtime/report_json.hpp"

namespace {

using namespace lfrt;

struct XvalRow {
  std::string regime;       // "lock-free" | "lock-based"
  std::string load_label;   // "underload" | "overload"
  double load = 0.0;
  int cpus = 1;
  int max_conc = 0;  // executor's max_concurrency_observed
  std::int64_t jobs_sim = 0;
  std::int64_t jobs_exec = 0;
  double aur_sim = 0.0, aur_exec = 0.0;
  double cmr_sim = 0.0, cmr_exec = 0.0;
  std::int64_t retries_sim = 0, retries_exec = 0;
  std::int64_t blockings_exec = 0;
  std::int64_t retry_total_bound = 0;  // sum of Theorem 2 bounds (queue/LF)
  bool bound_ok = true;
  bool heat_ok = true;    // heatmap dims + attribution sums + round-trip
  std::string exec_json;  // serialized executor report (heatmap payload)
};

/// Heatmap witnesses on one executor report: dimensions match the
/// universe, the matrix's retry/blocking sums equal the run totals
/// (every event was attributed to a cell), and the whole report —
/// matrix included — survives a JSON round trip bit-exactly.
bool check_heatmap(const rt::ExecutorReport& rep, std::int32_t objects,
                   std::int32_t tasks, std::string* json_out) {
  bool ok = true;
  const runtime::ContentionMatrix& m = rep.contention;
  if (m.objects != objects || m.tasks != tasks ||
      m.cells.size() != static_cast<std::size_t>(objects) *
                            static_cast<std::size_t>(tasks)) {
    std::cerr << "error: heatmap dims " << m.objects << "x" << m.tasks
              << " != universe " << objects << "x" << tasks << "\n";
    ok = false;
  }
  const runtime::ContentionCell totals = m.totals();
  if (totals.retries != rep.total_retries) {
    std::cerr << "error: heatmap retries " << totals.retries
              << " != report total " << rep.total_retries << "\n";
    ok = false;
  }
  if (totals.blockings != rep.total_blockings) {
    std::cerr << "error: heatmap blockings " << totals.blockings
              << " != report total " << rep.total_blockings << "\n";
    ok = false;
  }
  *json_out = runtime::to_json(rep);
  const runtime::RunReport back = runtime::from_json(*json_out);
  if (back.contention != rep.contention ||
      back.total_retries != rep.total_retries ||
      back.jobs.size() != rep.jobs.size() ||
      back.accrued_utility != rep.accrued_utility) {
    std::cerr << "error: report JSON round-trip mismatch\n";
    ok = false;
  }
  return ok;
}

/// One matched pair of runs: identical task set, identical arrival
/// traces, identical ObjectSpec universe, same scheduler flavour on
/// both substrates.
XvalRow run_pair(const workload::WorkloadSpec& spec,
                 runtime::ObjectKind kind, runtime::ObjectImpl impl,
                 const char* load_label, int cpus, int windows,
                 std::uint64_t arrival_seed, Time s_time, Time r_time) {
  const TaskSet ts = workload::make_task_set(spec);
  const sim::ShareMode mode = impl == runtime::ObjectImpl::kLockFree
                                  ? sim::ShareMode::kLockFree
                                  : sim::ShareMode::kLockBased;
  const auto specs = runtime::uniform_objects(ts.object_count, kind, impl);

  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);
  const Time horizon = max_window * windows;

  // --- simulator side, on the exact traces the executor will replay ---
  sim::SimConfig cfg;
  cfg.mode = mode;
  // Calibrated access times (runtime::calibrate): what one structure
  // operation costs on THIS host, so the simulator predicts the
  // executor it is compared against.
  cfg.lockfree_access_time = s_time;
  cfg.lock_access_time = r_time;
  cfg.objects = specs;
  cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
  cfg.cpu_count = cpus;
  cfg.horizon = horizon;
  sim::Simulator sim(ts, bench::scheduler_for(mode), cfg);
  const auto traces =
      runtime::make_arrival_traces(ts, horizon, arrival_seed,
                                   /*periodic=*/true);
  for (const auto& t : ts.tasks)
    sim.set_arrivals(t.id, traces[static_cast<std::size_t>(t.id)]);
  const sim::SimReport sim_rep = sim.run();

  // --- executor side --------------------------------------------------
  runtime::ExecConfig ec;
  ec.horizon = horizon;
  ec.objects = specs;
  ec.cpu_count = cpus;
  ec.arrival_seed = arrival_seed;
  ec.periodic_arrivals = true;
  ec.sim_lockfree_access_time = s_time;
  ec.sim_lock_access_time = r_time;
  const rt::ExecutorReport exec_rep =
      runtime::run_on_executor(ts, bench::scheduler_for(mode), ec);

  XvalRow row;
  row.regime = sim::to_string(mode);
  row.load_label = load_label;
  row.load = spec.load;
  row.cpus = cpus;
  row.max_conc = exec_rep.max_concurrency_observed;
  row.jobs_sim = sim_rep.counted_jobs;
  row.jobs_exec = exec_rep.counted_jobs;
  row.aur_sim = sim_rep.aur();
  row.aur_exec = exec_rep.aur();
  row.cmr_sim = sim_rep.cmr();
  row.cmr_exec = exec_rep.cmr();
  row.retries_sim = sim_rep.total_retries;
  row.retries_exec = exec_rep.total_retries;
  row.blockings_exec = exec_rep.total_blockings;

  if (impl == runtime::ObjectImpl::kLockFree &&
      kind == runtime::ObjectKind::kQueue) {
    for (const auto& t : ts.tasks) {
      const std::int64_t bound = analysis::retry_bound(ts, t.id);
      const auto b = exec_rep.breakdown_of(t.id);
      row.retry_total_bound += bound * b.jobs;
      if (exec_rep.max_retries_of_task(t.id) > bound) row.bound_ok = false;
    }
    if (exec_rep.total_retries > row.retry_total_bound)
      row.bound_ok = false;
  }
  row.heat_ok = check_heatmap(exec_rep, ts.object_count,
                              static_cast<std::int32_t>(ts.tasks.size()),
                              &row.exec_json);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bool tiny = false;
  bool recalibrate = false;
  int only_cpus = 0;  // 0 = sweep {1, 2, 4}
  runtime::ObjectKind kind = runtime::ObjectKind::kQueue;
  std::string out_path = "BENCH_xval.json";
  std::string report_path = "BENCH_xval_report.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--recalibrate") == 0) {
      recalibrate = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--report-out") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strncmp(argv[i], "--objects=", 10) == 0) {
      if (!runtime::parse_object_kind(argv[i] + 10, &kind)) {
        std::cerr << "error: --objects must be queue|stack|buffer|"
                     "snapshot\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--cpus=", 7) == 0) {
      only_cpus = std::atoi(argv[i] + 7);
      if (only_cpus < 1) {
        std::cerr << "error: --cpus must be >= 1\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--threads", 9) == 0) {
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc) ++i;
    } else {
      std::cerr << "usage: ext_executor_validation [--tiny] [--cpus=N] "
                   "[--objects=KIND] [--threads=N] [--out FILE] "
                   "[--report-out FILE] [--recalibrate]\n";
      return 2;
    }
  }
  bench::print_header("Cross-validation",
                      "same WorkloadSpec on Simulator and Executor");

  // Long critical times relative to executor overheads (ms-scale jobs,
  // tens-of-ms windows) so underload agreement is a property of the
  // substrates, not of scheduling-latency noise.
  workload::WorkloadSpec base;
  base.task_count = 6;
  base.object_count = 3;
  base.accesses_per_job = 2;
  base.avg_exec = msec(2);
  base.tuf_class = workload::TufClass::kStep;
  base.seed = 7;
  // Reader/writer kinds carry a read mix: NBW/snapshot exist to move
  // the retry cost onto readers, so give them readers to move it onto.
  if (kind == runtime::ObjectKind::kBuffer ||
      kind == runtime::ObjectKind::kSnapshot)
    base.read_fraction = 0.5;

  const int windows = tiny ? 2 : 6;
  const double aur_tol = tiny ? 0.25 : 0.15;
  const std::uint64_t arrival_seed = 1000;

  // Calibrate s and r on this host (satellite of the fig08 machinery):
  // the simulator models what one access actually costs here.  Served
  // from the per-host persistent cache when available; --recalibrate
  // forces a fresh measurement and overwrites the cached entry.
  runtime::ExecConfig cal_probe;
  const TaskSet cal_ts = workload::make_task_set(base);
  runtime::CalibrateOptions cal_opts;
  cal_opts.force = recalibrate;
  const runtime::AccessCalibration cal =
      runtime::calibrate(cal_probe, cal_ts, tiny ? 200 : 500, cal_opts);
  std::cout << "calibrated access times: s = " << cal.lockfree_access_time
            << " ns, r = " << cal.lock_access_time << " ns ("
            << cal.samples << " samples"
            << (cal.from_cache ? ", cached" : ", measured") << ")\n";

  std::vector<int> cpu_sweep = {1, 2, 4};
  if (only_cpus > 0) cpu_sweep = {only_cpus};

  std::vector<XvalRow> rows;
  for (const int cpus : cpu_sweep) {
    for (const runtime::ObjectImpl impl :
         {runtime::ObjectImpl::kLockFree, runtime::ObjectImpl::kLockBased}) {
      for (const auto& [label, load] :
           std::vector<std::pair<const char*, double>>{{"underload", 0.35},
                                                       {"overload", 1.2}}) {
        workload::WorkloadSpec spec = base;
        spec.load = load;
        rows.push_back(run_pair(spec, kind, impl, label, cpus, windows,
                                arrival_seed, cal.lockfree_access_time,
                                cal.lock_access_time));
      }
    }
  }

  Table table({"cpus", "regime", "load", "jobs s/x", "AUR sim", "AUR exec",
               "CMR sim", "CMR exec", "retries s/x", "blk exec", "conc",
               "bound", "heat"});
  for (const XvalRow& r : rows) {
    table.add_row({std::to_string(r.cpus), r.regime, r.load_label,
                   std::to_string(r.jobs_sim) + "/" +
                       std::to_string(r.jobs_exec),
                   Table::num(r.aur_sim, 3), Table::num(r.aur_exec, 3),
                   Table::num(r.cmr_sim, 3), Table::num(r.cmr_exec, 3),
                   std::to_string(r.retries_sim) + "/" +
                       std::to_string(r.retries_exec),
                   std::to_string(r.blockings_exec),
                   std::to_string(r.max_conc),
                   r.bound_ok ? "ok" : "VIOLATED",
                   r.heat_ok ? "ok" : "BROKEN"});
  }
  table.print();

  // ---- assertions ------------------------------------------------------
  bool ok = true;
  for (const XvalRow& r : rows) {
    if (r.jobs_sim != r.jobs_exec) {
      std::cerr << "error: cpus=" << r.cpus << " " << r.regime << "/"
                << r.load_label << ": job populations differ (sim "
                << r.jobs_sim << ", exec " << r.jobs_exec << ")\n";
      ok = false;
    }
    if (!r.bound_ok) {
      std::cerr << "error: cpus=" << r.cpus << " " << r.regime << "/"
                << r.load_label
                << ": executor retries exceed the Theorem 2 bound\n";
      ok = false;
    }
    if (!r.heat_ok) {
      std::cerr << "error: cpus=" << r.cpus << " " << r.regime << "/"
                << r.load_label << ": contention heatmap invariants broken\n";
      ok = false;
    }
    if (r.load_label == "underload") {
      if (std::abs(r.aur_sim - r.aur_exec) > aur_tol) {
        std::cerr << "error: cpus=" << r.cpus << " " << r.regime
                  << "/underload: |AUR_sim - AUR_exec| = "
                  << std::abs(r.aur_sim - r.aur_exec) << " > " << aur_tol
                  << "\n";
        ok = false;
      }
      if (std::abs(r.cmr_sim - r.cmr_exec) > aur_tol) {
        std::cerr << "error: cpus=" << r.cpus << " " << r.regime
                  << "/underload: |CMR_sim - CMR_exec| = "
                  << std::abs(r.cmr_sim - r.cmr_exec) << " > " << aur_tol
                  << "\n";
        ok = false;
      }
    }
  }
  // Every multi-CPU group must witness true overlap somewhere (the
  // overload rows guarantee backlog, so this cannot flake on timing).
  for (const int cpus : cpu_sweep) {
    if (cpus < 2) continue;
    int conc = 0;
    for (const XvalRow& r : rows)
      if (r.cpus == cpus) conc = std::max(conc, r.max_conc);
    if (conc < 2) {
      std::cerr << "error: cpus=" << cpus
                << ": max_concurrency_observed never reached 2 — the "
                   "M-worker mode serialized\n";
      ok = false;
    }
  }
  std::cout << "\nobjects=" << runtime::to_string(kind)
            << ", underload AUR/CMR tolerance " << aur_tol << ": "
            << (ok ? "agreement confirmed" : "DISAGREEMENT") << "\n";

  std::ofstream os(out_path);
  os << "{\n  \"bench\": \"ext_executor_validation\",\n  \"objects\": \""
     << runtime::to_string(kind) << "\",\n  \"calibrated_s_ns\": "
     << cal.lockfree_access_time << ",\n  \"calibrated_r_ns\": "
     << cal.lock_access_time << ",\n  \"tolerance\": " << aur_tol
     << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const XvalRow& r = rows[i];
    os << "    {\"cpus\": " << r.cpus << ", \"regime\": \"" << r.regime
       << "\", \"load\": \"" << r.load_label << "\", \"al\": " << r.load
       << ", \"jobs_sim\": " << r.jobs_sim
       << ", \"jobs_exec\": " << r.jobs_exec
       << ", \"aur_sim\": " << r.aur_sim
       << ", \"aur_exec\": " << r.aur_exec
       << ", \"cmr_sim\": " << r.cmr_sim
       << ", \"cmr_exec\": " << r.cmr_exec
       << ", \"retries_sim\": " << r.retries_sim
       << ", \"retries_exec\": " << r.retries_exec
       << ", \"blockings_exec\": " << r.blockings_exec
       << ", \"retry_total_bound\": " << r.retry_total_bound
       << ", \"max_concurrency\": " << r.max_conc
       << ", \"bound_ok\": " << (r.bound_ok ? "true" : "false")
       << ", \"heatmap_ok\": " << (r.heat_ok ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  if (!os) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";

  // Full executor report (heatmap included) of the last lock-free
  // underload row — the machine-readable artifact scripts diff, already
  // proven round-trippable by check_heatmap above.
  const XvalRow* rep_row = nullptr;
  for (const XvalRow& r : rows)
    if (r.regime == "lock-free" && r.load_label == "underload") rep_row = &r;
  if (rep_row != nullptr && !rep_row->exec_json.empty()) {
    std::ofstream ros(report_path);
    ros << rep_row->exec_json << "\n";
    if (!ros) {
      std::cerr << "error: cannot write " << report_path << "\n";
      return 1;
    }
    std::cout << "wrote " << report_path << "\n";
  }
  return ok ? 0 : 1;
}
