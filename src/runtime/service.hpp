// runtime::Service — long-running streaming ingest front end over
// rt::Executor.
//
// Every run used to be a finite pre-generated trace handed to the
// executor up front.  A Service instead keeps the executor up for as
// long as traffic arrives: P producer threads stage jobs into
// per-producer wait-free ingest lanes (rt::IngestLane), the executor's
// scheduling thread drains all lanes in one mutex acquisition per
// burst, and a sliding-window utility budget — the paper's UAM arrival
// model ⟨l, a, W⟩ turned from an *assumption* into an *enforcement* —
// sheds or degrades arrivals beyond the declared load, making
// admission control the backpressure mechanism (overload never grows
// an unbounded backlog; it turns into accounted rejections).
//
// Timer-wheel arrivals: drive_open_loop() paces any number of
// pre-generated arrival streams through a runtime::TimerWheel shard in
// the calling thread, firing offer() at each arrival time — the
// open-loop load generator a latency SLO must be measured under
// (closed-loop generators hide queueing delay; see bench/soak_service).
//
// Shutdown contract: stop your producers (close_ingest() makes every
// subsequent offer() return false and ends drive_open_loop() pacing),
// join them, then call shutdown().  Offers racing shutdown may be
// dropped; offers that returned true before the producers stopped are
// always accounted — the report upholds
//   offered == submitted + rejected.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rt/executor.hpp"
#include "support/time.hpp"
#include "tuf/tuf.hpp"

namespace lfrt::sched {
class Scheduler;
}

namespace lfrt::runtime {

struct ServiceConfig {
  /// Executor shape (cpu_count, worker_reserve, ...).  Note
  /// retain_job_records defaults to FALSE here, the opposite of the
  /// raw executor: a service pushing millions of jobs must not grow an
  /// O(jobs) record vector.  max_live_jobs defaults to 8192 as the
  /// hard backlog cap (0 stays 0 only if set explicitly — pass the
  /// whole ExecutorConfig to override).
  rt::ExecutorConfig executor{.retain_job_records = false,
                              .max_live_jobs = 8192};

  int lanes = 1;                    ///< one per producer thread
  std::size_t lane_capacity = 4096; ///< offers park here until drained

  /// Sliding-window utility budget (UAM admission): within any
  /// trailing `admission_window`, at most `window_utility_budget`
  /// total U(0) of jobs is admitted at full contract.  Arrivals beyond
  /// it are rejected — or degraded to `degraded_tuf` when that is set
  /// (a renegotiated cheaper contract that bypasses the budget).
  /// budget <= 0 or window <= 0 disables the gate; the executor's
  /// max_live_jobs backlog cap still applies.
  double window_utility_budget = 0.0;
  Time admission_window = 0;
  std::shared_ptr<const Tuf> degraded_tuf;

  /// Timer-wheel shape for drive_open_loop pacing.
  Time wheel_granularity = usec(64);
  std::size_t wheel_slots = 4096;
};

/// Aggregate outcome of a Service run: the executor report plus
/// ingest-side accounting and wall-clock rates.
struct ServiceReport {
  rt::ExecutorReport exec;

  std::int64_t offered = 0;        ///< offer() == true, all lanes
  std::int64_t backpressured = 0;  ///< offer() == false on a full lane

  double wall_seconds = 0.0;       ///< construction -> shutdown
  double ingest_jobs_per_sec = 0.0;     ///< offered / wall
  double completed_jobs_per_sec = 0.0;  ///< exec.completed / wall
  double utility_per_sec = 0.0;         ///< exec.accrued_utility / wall
};

class Service {
 public:
  /// `scheduler` must outlive the service.
  Service(const sched::Scheduler& scheduler, ServiceConfig config);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Stage one job into `lane` (0-based).  Wait-free; returns false
  /// when the lane is full (counted as backpressure) or ingest is
  /// closed (not counted).  One producer thread per lane.
  bool offer(int lane, rt::RtJob job);

  /// One arrival stream for drive_open_loop: fire make_job() at each
  /// arrival time (ns, relative to the call).  Arrival times must be
  /// in any order the wheel can hold — they need not be sorted.
  struct ArrivalStream {
    std::vector<Time> arrivals;
    std::function<rt::RtJob()> make_job;
  };

  /// Open-loop load generator: pace all streams' arrivals through a
  /// timer wheel, offering into `lane` at each firing (arrivals due
  /// while behind schedule fire immediately — open-loop means the
  /// schedule never waits for the system).  Blocks until every arrival
  /// has fired or ingest is closed; returns how many offers were
  /// accepted.  Call from the lane's producer thread.
  std::int64_t drive_open_loop(int lane, std::vector<ArrivalStream> streams);

  /// Make every subsequent offer() return false and stop open-loop
  /// drivers at their next firing.  Producers must be joined before
  /// shutdown().
  void close_ingest();

  bool ingest_closed() const;
  int lane_count() const;

  /// Close ingest, drain everything already accepted, stop the
  /// executor, and return the tallies.
  ServiceReport shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace lfrt::runtime
