// Regression: Executor::submit racing shutdown()/drain().
//
// A job submitted while the executor is shutting down must either be
// accepted (counted and run to a terminal state) or rejected explicitly
// (submit returns kNoJob, the body never runs) — never half-tracked.
// Before the stopping-gate in submit, a submission landing after the
// drain's all-terminal check but before the scheduling thread exited
// could leave a worker waiting on a dispatch that would never come and
// break counted_jobs == submitted + rejected.  This hammers that window
// from several threads — for direct submit(), batched submit_batch(),
// and the wait-free ingest-lane path with an admission filter in the
// mix; runs under ASan and TSan in scripts/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "rt/executor.hpp"
#include "sched/rua.hpp"

namespace lfrt {
namespace {

rt::RtJob quick_job() {
  rt::RtJob job;
  job.tuf = make_step_tuf(5.0, msec(100));
  job.expected_exec = usec(20);
  job.body = [](rt::JobContext& ctx) { ctx.checkpoint(); };
  return job;
}

TEST(ExecutorShutdownRace, SubmitDuringShutdownIsCountedOrRejected) {
  constexpr int kRounds = 20;
  constexpr int kSubmitters = 3;
  for (int round = 0; round < kRounds; ++round) {
    const sched::RuaScheduler rua(sched::Sharing::kLockFree);
    rt::Executor ex(rua);
    std::atomic<std::int64_t> accepted{0};
    std::atomic<std::int64_t> rejected{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&] {
        // Keep submitting until shutdown slams the door; every call
        // must resolve to exactly one of the two contracts.
        while (!stop.load(std::memory_order_relaxed)) {
          if (ex.submit(quick_job()) != kNoJob)
            accepted.fetch_add(1, std::memory_order_relaxed);
          else
            rejected.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    // Let the race window vary across rounds: sometimes shutdown hits
    // before the first submit, sometimes mid-stream.
    std::this_thread::sleep_for(std::chrono::microseconds(50 * (round % 5)));
    const rt::ExecutorReport rep = ex.shutdown();
    stop.store(true);
    for (auto& t : submitters) t.join();

    // Every accepted job was counted and reached a terminal state;
    // rejected ones left no trace.
    EXPECT_EQ(rep.submitted, accepted.load());
    EXPECT_EQ(rep.counted_jobs, rep.submitted + rep.rejected);
    EXPECT_EQ(rep.rejected, 0);  // no lanes, no admission control here
    EXPECT_EQ(rep.completed + rep.aborted, rep.submitted);
    EXPECT_EQ(static_cast<std::int64_t>(rep.jobs.size()), rep.submitted);
    for (const Job& j : rep.jobs)
      EXPECT_TRUE(j.state == JobState::kCompleted ||
                  j.state == JobState::kAborted);
  }
}

TEST(ExecutorShutdownRace, SubmitAfterShutdownIsRejected) {
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  rt::Executor ex(rua);
  EXPECT_NE(ex.submit(quick_job()), kNoJob);
  const rt::ExecutorReport rep = ex.shutdown();
  EXPECT_EQ(rep.submitted, 1);
  EXPECT_EQ(ex.submit(quick_job()), kNoJob);
}

TEST(ExecutorShutdownRace, BatchSubmitDuringShutdownIsAllOrNothing) {
  constexpr int kRounds = 10;
  constexpr std::size_t kBatch = 16;
  for (int round = 0; round < kRounds; ++round) {
    const sched::RuaScheduler rua(sched::Sharing::kLockFree);
    rt::Executor ex(rua);
    std::atomic<std::int64_t> accepted{0};
    std::atomic<bool> stop{false};
    std::thread submitter([&] {
      std::vector<rt::RtJob> batch(kBatch);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& j : batch) j = quick_job();
        const std::size_t n = ex.submit_batch(batch.data(), kBatch);
        ASSERT_TRUE(n == 0 || n == kBatch);  // never a partial batch
        accepted.fetch_add(static_cast<std::int64_t>(n),
                           std::memory_order_relaxed);
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(100 * (round % 4)));
    const rt::ExecutorReport rep = ex.shutdown();
    stop.store(true);
    submitter.join();

    EXPECT_EQ(rep.submitted, accepted.load());
    EXPECT_EQ(rep.counted_jobs, rep.submitted + rep.rejected);
    EXPECT_EQ(rep.completed + rep.aborted, rep.submitted);
  }
}

TEST(ExecutorShutdownRace, LaneOffersStoppedBeforeShutdownAllAccounted) {
  // The streaming contract: producers stop and join BEFORE shutdown();
  // then every offer() that returned true is accounted — ingested by
  // the scheduling thread and either submitted or rejected by
  // admission.  An admission filter that sheds every 7th job keeps
  // rejected > 0 so the generalized invariant is actually exercised.
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    const sched::RuaScheduler rua(sched::Sharing::kLockFree);
    rt::ExecutorConfig cfg;
    cfg.cpu_count = 2;
    rt::Executor ex(rua, cfg);
    int seen = 0;
    ex.set_admission([&seen](rt::RtJob&) {
      return (++seen % 7 == 0) ? rt::Admission::kReject
                               : rt::Admission::kAdmit;
    });
    rt::IngestLane& lane = ex.open_lane(/*capacity=*/256);

    std::atomic<std::int64_t> offered{0};
    std::atomic<bool> stop{false};
    std::thread producer([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (lane.offer(quick_job()))
          offered.fetch_add(1, std::memory_order_relaxed);
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + round));
    stop.store(true);
    producer.join();  // producer stopped: nothing can race the drain
    const rt::ExecutorReport rep = ex.shutdown();

    EXPECT_EQ(rep.lane_ingested, offered.load());
    EXPECT_EQ(rep.submitted + rep.rejected, rep.lane_ingested);
    EXPECT_EQ(rep.counted_jobs, rep.submitted + rep.rejected);
    EXPECT_EQ(rep.completed + rep.aborted, rep.submitted);
    if (offered.load() >= 7) {
      EXPECT_GT(rep.rejected, 0);
    }
  }
}

}  // namespace
}  // namespace lfrt
