# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tuf_test[1]_include.cmake")
include("/root/repo/build/tests/uam_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/lockfree_test[1]_include.cmake")
include("/root/repo/build/tests/lockbased_test[1]_include.cmake")
include("/root/repo/build/tests/task_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/lf_list_test[1]_include.cmake")
include("/root/repo/build/tests/llf_test[1]_include.cmake")
include("/root/repo/build/tests/nested_test[1]_include.cmake")
include("/root/repo/build/tests/multicpu_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/edf_pip_test[1]_include.cmake")
include("/root/repo/build/tests/four_slot_test[1]_include.cmake")
include("/root/repo/build/tests/gantt_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/feasibility_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/sched_property_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/sim_edge_test[1]_include.cmake")
include("/root/repo/build/tests/multiunit_test[1]_include.cmake")
include("/root/repo/build/tests/readwrite_test[1]_include.cmake")
include("/root/repo/build/tests/trace_export_test[1]_include.cmake")
include("/root/repo/build/tests/overrun_test[1]_include.cmake")
