# Empty compiler generated dependencies file for lemma45_aur_bounds.
# This may be replaced when dependencies are built.
