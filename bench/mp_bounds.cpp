// Multiprocessor bound certification sweep (analysis::mp).
//
// The uniprocessor benches gate Theorem 2 on the executor's measured
// retries; this bench gates the NEW multiprocessor bounds on BOTH
// substrates across the whole lock zoo.  One generated task set
// (queue-kind universe — the paper's shape), identical arrival traces,
// swept over cpu_count ∈ {1, 2, 4} × every ObjectImpl
// (lock-free / mutex / ticket / anderson / mcs), each pair run once on
// sim::Simulator and once on rt::Executor; every run's contention
// heatmap is then certified cell by cell by analysis::certify against
// the per-(object, task) retry/blocking bounds for the matching
// substrate, plus the per-job backoff-ladder invariant.
//
// Assertions (exit 1 on violation):
//   * every certificate is violation-free — the analytical bounds hold
//     for every measured (object, task) cell on both substrates,
//   * lock impls never record a retry; lock-free never records a
//     blocking episode (the mechanism fork is exact),
//   * sim and executor score the same job population per configuration
//     (same counting rule over the same traces).
//
// The per-cell slack (fraction of the bound left unused) and the
// per-task spin/retry TIME bounds priced from the calibrated cost model
// are reported in BENCH_mp_bounds.json for trend tracking.
//
// Usage: mp_bounds [--tiny] [--cpus=N] [--out FILE] [--recalibrate]
//   --tiny        smoke mode for check.sh/CI: short horizons, fewer
//                 calibration samples
//   --cpus=N      restrict the sweep to one cpu_count
//   --out         JSON output (default BENCH_mp_bounds.json in the cwd)
//   --recalibrate ignore the persistent calibration cache
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/mp.hpp"
#include "common.hpp"
#include "runtime/calibrate.hpp"
#include "runtime/exec_adapter.hpp"
#include "runtime/report_json.hpp"

namespace {

using namespace lfrt;

struct CertRow {
  int cpus = 1;
  std::string impl;
  std::string substrate;  // "sim" | "exec"
  std::int64_t jobs = 0;
  std::int64_t retries = 0;
  std::int64_t blockings = 0;
  std::int64_t cells = 0;
  std::int64_t violations = 0;
  double min_slack = 1.0;
  Time worst_spin_time = 0;   // max over tasks, per job
  Time worst_retry_time = 0;  // max over tasks, per job (finite cells)
  bool mech_ok = true;        // locks don't retry / LF doesn't block
};

CertRow summarize(const runtime::RunReport& rep, const TaskSet& ts,
                  const std::vector<runtime::ObjectSpec>& specs,
                  const runtime::CostModel& model, int cpus,
                  runtime::ObjectImpl impl,
                  analysis::mp::Substrate substrate) {
  analysis::mp::MpOptions opt;
  opt.cpu_count = cpus;
  opt.substrate = substrate;
  const analysis::mp::Certificate cert =
      analysis::certify(rep, ts, specs, model, opt);

  CertRow row;
  row.cpus = cpus;
  row.impl = runtime::to_string(impl);
  row.substrate =
      substrate == analysis::mp::Substrate::kSimulator ? "sim" : "exec";
  row.jobs = rep.counted_jobs;
  row.retries = rep.total_retries;
  row.blockings = rep.total_blockings;
  row.cells = cert.cells_checked;
  row.violations = cert.violations;
  row.min_slack = cert.min_slack;
  for (const analysis::mp::TaskTimeBounds& tb : cert.time_bounds) {
    row.worst_spin_time = std::max(row.worst_spin_time, tb.spin_block_time);
    if (tb.retry_time < kTimeNever)
      row.worst_retry_time = std::max(row.worst_retry_time, tb.retry_time);
  }
  // Mechanism fork: the retry/blocking split is exact, not just bounded.
  if (runtime::is_lock_based(impl) && rep.total_retries != 0)
    row.mech_ok = false;
  if (!runtime::is_lock_based(impl) && rep.total_blockings != 0)
    row.mech_ok = false;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bool tiny = false;
  bool recalibrate = false;
  int only_cpus = 0;
  std::string out_path = "BENCH_mp_bounds.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--recalibrate") == 0) {
      recalibrate = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--cpus=", 7) == 0) {
      only_cpus = std::atoi(argv[i] + 7);
      if (only_cpus < 1) {
        std::cerr << "error: --cpus must be >= 1\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--threads", 9) == 0) {
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc) ++i;
    } else {
      std::cerr << "usage: mp_bounds [--tiny] [--cpus=N] [--out FILE] "
                   "[--recalibrate]\n";
      return 2;
    }
  }
  bench::print_header("MP bounds",
                      "certify heatmaps against analysis::mp on both "
                      "substrates");

  workload::WorkloadSpec base;
  base.task_count = 6;
  base.object_count = 3;
  base.accesses_per_job = 4;
  base.avg_exec = usec(400);  // us-scale jobs: access windows that overlap
  base.tuf_class = workload::TufClass::kStep;
  base.seed = 7;
  base.load = 0.8;  // contended but schedulable: events without chaos
  const TaskSet ts = workload::make_task_set(base);

  const int windows = tiny ? 2 : 6;
  const std::uint64_t arrival_seed = 1000;
  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);
  const Time horizon = max_window * windows;

  runtime::ExecConfig cal_probe;
  runtime::CalibrateOptions cal_opts;
  cal_opts.force = recalibrate;
  const runtime::AccessCalibration cal =
      runtime::calibrate(cal_probe, ts, tiny ? 200 : 500, cal_opts);
  std::cout << "calibrated access times: s = " << cal.lockfree_access_time
            << " ns, r = " << cal.lock_access_time << " ns ("
            << cal.samples << " samples"
            << (cal.from_cache ? ", cached" : ", measured") << ")\n";

  std::vector<int> cpu_sweep = {1, 2, 4};
  if (only_cpus > 0) cpu_sweep = {only_cpus};

  std::vector<CertRow> rows;
  bool jobs_ok = true;
  for (const int cpus : cpu_sweep) {
    for (const runtime::ObjectImpl impl : runtime::all_object_impls()) {
      const auto specs = runtime::uniform_objects(
          ts.object_count, runtime::ObjectKind::kQueue, impl);
      const sim::ShareMode mode = runtime::is_lock_based(impl)
                                      ? sim::ShareMode::kLockBased
                                      : sim::ShareMode::kLockFree;

      sim::SimConfig cfg;
      cfg.mode = mode;
      // Deliberately inflated access windows (vs the ~100 ns calibrated
      // costs): the sim only records a retry/blocking when two access
      // windows overlap in simulated time, and at calibrated scale the
      // windows are so short the heatmaps stay all-zero — which would
      // certify the bounds vacuously.  The COUNT bounds are
      // duration-independent (each retry is charged to a conflicting
      // write's transition, however long the attempt took), so stretching
      // the windows stresses the certifier without invalidating it.  The
      // calibrated model still prices the analytic TIME bounds below.
      cfg.lockfree_access_time = usec(10);
      cfg.lock_access_time = usec(20);
      cfg.objects = specs;
      cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
      cfg.cpu_count = cpus;
      cfg.horizon = horizon;
      sim::Simulator sim(ts, bench::scheduler_for(mode), cfg);
      const auto traces = runtime::make_arrival_traces(ts, horizon,
                                                       arrival_seed,
                                                       /*periodic=*/true);
      for (const auto& t : ts.tasks)
        sim.set_arrivals(t.id, traces[static_cast<std::size_t>(t.id)]);
      const sim::SimReport sim_rep = sim.run();

      runtime::ExecConfig ec;
      ec.horizon = horizon;
      ec.objects = specs;
      ec.cpu_count = cpus;
      ec.arrival_seed = arrival_seed;
      ec.periodic_arrivals = true;
      ec.sim_lockfree_access_time = cal.lockfree_access_time;
      ec.sim_lock_access_time = cal.lock_access_time;
      ec.sim_cost_model = cal.model;
      const rt::ExecutorReport exec_rep =
          runtime::run_on_executor(ts, bench::scheduler_for(mode), ec);

      rows.push_back(summarize(sim_rep, ts, specs, cal.model, cpus, impl,
                               analysis::mp::Substrate::kSimulator));
      rows.push_back(summarize(exec_rep, ts, specs, cal.model, cpus, impl,
                               analysis::mp::Substrate::kExecutor));
      if (sim_rep.counted_jobs != exec_rep.counted_jobs) {
        std::cerr << "error: cpus=" << cpus << " "
                  << runtime::to_string(impl)
                  << ": job populations differ (sim " << sim_rep.counted_jobs
                  << ", exec " << exec_rep.counted_jobs << ")\n";
        jobs_ok = false;
      }
    }
  }

  Table table({"cpus", "impl", "sub", "jobs", "retries", "blockings",
               "cells", "viol", "min slack", "spin ns", "retry ns"});
  for (const CertRow& r : rows) {
    table.add_row({std::to_string(r.cpus), r.impl, r.substrate,
                   std::to_string(r.jobs), std::to_string(r.retries),
                   std::to_string(r.blockings), std::to_string(r.cells),
                   std::to_string(r.violations), Table::num(r.min_slack, 3),
                   std::to_string(r.worst_spin_time),
                   std::to_string(r.worst_retry_time)});
  }
  table.print();

  bool ok = jobs_ok;
  std::int64_t total_violations = 0;
  for (const CertRow& r : rows) {
    total_violations += r.violations;
    if (r.violations != 0) {
      std::cerr << "error: cpus=" << r.cpus << " " << r.impl << "/"
                << r.substrate << ": " << r.violations
                << " heatmap cell(s) exceed the analytical bound\n";
      ok = false;
    }
    if (!r.mech_ok) {
      std::cerr << "error: cpus=" << r.cpus << " " << r.impl << "/"
                << r.substrate
                << ": mechanism fork violated (lock retries or lock-free "
                   "blockings)\n";
      ok = false;
    }
  }

  std::ofstream os(out_path);
  os << "{\n  \"bench\": \"mp_bounds\",\n  \"objects\": \"queue\",\n"
     << "  \"load\": " << base.load << ",\n  \"calibrated_s_ns\": "
     << cal.lockfree_access_time << ",\n  \"calibrated_r_ns\": "
     << cal.lock_access_time << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CertRow& r = rows[i];
    os << "    {\"cpus\": " << r.cpus << ", \"impl\": \"" << r.impl
       << "\", \"substrate\": \"" << r.substrate
       << "\", \"jobs\": " << r.jobs << ", \"retries\": " << r.retries
       << ", \"blockings\": " << r.blockings
       << ", \"cells_checked\": " << r.cells
       << ", \"violations\": " << r.violations
       << ", \"min_slack\": " << r.min_slack
       << ", \"worst_spin_time_ns\": " << r.worst_spin_time
       << ", \"worst_retry_time_ns\": " << r.worst_retry_time << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  if (!os) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";

  if (ok)
    std::cout << "mp_bounds: all checks ok (" << rows.size()
              << " certificates, " << total_violations << " violations)\n";
  else
    std::cout << "mp_bounds: CHECKS FAILED (" << total_violations
              << " bound violations)\n";
  return ok ? 0 : 1;
}
