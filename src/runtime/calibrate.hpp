// Executor-side access-time calibration.
//
// Cross-validation (bench/ext_executor_validation) feeds the simulator
// per-access costs s and r so it predicts what the executor will
// measure.  Until now those were order-of-magnitude constants
// (usec(1) / usec(2)); this helper runs the fig08 access-time
// microbenchmarks (rt::measure_lockfree_access /
// rt::measure_lockbased_access) on the current host and writes the
// measured means into ExecConfig's sim_* fields — so the simulator side
// of a cross-validation run is parameterized by the same machine that
// produces the executor side (the paper's Section 5 measurement,
// feeding its Section 6 simulation).
//
// Beyond the two flat scalars, calibrate() measures one AccessCost cell
// per (ObjectKind, ObjectImpl) combo by hammering the real
// runtime::SharedObject for that spec: a single-threaded pass gives the
// cell's base cost, a multi-threaded pass (capped at the host's core
// count) gives the contended cost, and the per-contender slope is the
// clamped difference per extra thread — the measured counterpart of the
// mechanism shapes the zoo's cost models predict (ticket linear,
// Anderson flatter, MCS near-flat).  Snapshot cells also get a
// per-segment scan term from the read-vs-write gap.
//
// Measurements are stable per host, so they are cached persistently:
// calibrate() consults a small JSON file keyed by hostname + CPU count
// + sample budget and skips the microbenchmarks on a hit.  The cache
// lives at $LFRT_CALIBRATION_CACHE if set, else
// $HOME/.cache/lfrt_calibration.json.  When neither variable names a
// location, there is no cache: calibrate() measures every time, warns
// once per process, and never drops files into the working directory.
// The file carries a schema version (kCalibrationCacheSchema); a cache
// written by an older build — including the pre-zoo flat-scalar format,
// which had no version field — fails the schema check and is treated
// exactly like a missing cache: calibrate() silently re-measures and
// overwrites it in the current format.  Pass
// CalibrateOptions{.force = true} (the benches' --recalibrate) to
// re-measure and overwrite the entry; cache I/O failures fall back to
// measuring with a once-per-process warning — calibration never fails
// because the cache is missing or unwritable.
#pragma once

#include <string>

#include "rt/access_time.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/exec_adapter.hpp"
#include "support/time.hpp"

namespace lfrt::runtime {

/// Version of the on-disk calibration-cache format.  Bump when the
/// entry shape changes; old files then read as empty and recalibrate.
inline constexpr std::int64_t kCalibrationCacheSchema = 2;

/// Measured per-access costs, in the simulator's vocabulary.
struct AccessCalibration {
  Time lockfree_access_time = 0;  ///< s — mean lock-free access (ns)
  Time lock_access_time = 0;      ///< r — mean lock-based access (ns)
  std::int64_t samples = 0;       ///< samples behind each mean
  bool from_cache = false;        ///< true when served from the cache

  /// Per-(kind, impl) cell measurements (enabled = true once filled).
  CostModel model;
};

/// Cache behaviour for calibrate().
struct CalibrateOptions {
  bool use_cache = true;   ///< consult/update the persistent cache
  bool force = false;      ///< re-measure even on a hit (--recalibrate)
  std::string cache_path;  ///< override the file; empty = default chain
};

/// The cache file calibrate() would use for an empty
/// CalibrateOptions::cache_path — $LFRT_CALIBRATION_CACHE if set, else
/// $HOME/.cache/lfrt_calibration.json.  Empty when neither variable is
/// set: calibrate() then runs uncached (and says so, once).
std::string calibration_cache_path();

/// Run both fig08 microbenchmarks and return the measured means,
/// clamped to >= 1 ns (the simulator requires positive access times).
/// Flat scalars only; the per-cell table comes from measure_cost_model.
AccessCalibration calibrate_access_times(const rt::AccessTimeConfig& mcfg);

/// Measure one AccessCost cell per (kind, impl) combo on this host (see
/// the header comment for the method).  `ops` is the access count per
/// measurement pass; a few hundred suffices for cross-validation-grade
/// numbers.  The returned model has enabled = true.
CostModel measure_cost_model(std::int64_t ops);

/// Measure with a config shaped like `ts`'s universe (object/task
/// counts) and write the results into cfg.sim_lockfree_access_time /
/// cfg.sim_lock_access_time / cfg.sim_cost_model.  `samples` trades
/// precision for startup
/// time (the fig08 bench uses 2000; a few hundred suffices to get the
/// order of magnitude right for cross-validation).  With the default
/// options a prior measurement for this host/CPU-count/sample budget is
/// reused from the persistent cache; a fresh measurement is written
/// back (best-effort).
AccessCalibration calibrate(ExecConfig& cfg, const TaskSet& ts,
                            std::int64_t samples = 500,
                            const CalibrateOptions& opts = {});

}  // namespace lfrt::runtime
