// Simulator edge cases: degenerate parameters, simultaneous events,
// horizon boundaries, and pathological shapes the main suites don't
// cover.
#include <gtest/gtest.h>

#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"

namespace lfrt {
namespace {

using sim::ShareMode;
using sim::SimConfig;
using sim::Simulator;

TaskParams tiny(TaskId id, Time exec, Time critical,
                std::vector<AccessSpec> acc = {}) {
  TaskParams p;
  p.id = id;
  p.exec_time = exec;
  p.tuf = make_step_tuf(10.0, critical);
  p.arrival = UamSpec{1, 4, critical};
  p.accesses = std::move(acc);
  return p;
}

TEST(SimEdge, OneNanosecondJobs) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(tiny(0, 1, nsec(100)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.horizon = usec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0, nsec(100), nsec(200)});
  const auto rep = sim.run();
  EXPECT_EQ(rep.completed, 3);
  for (const Job& j : rep.jobs) EXPECT_EQ(j.sojourn(), 1);
}

TEST(SimEdge, SimultaneousBurstArrivals) {
  // Four jobs of the same task arriving at the same instant (UAM allows
  // simultaneous arrivals) are all admitted and run back to back.
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(tiny(0, usec(5), usec(100)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0, 0, 0, 0});
  const auto rep = sim.run();
  EXPECT_EQ(rep.counted_jobs, 4);
  EXPECT_EQ(rep.completed, 4);
  std::vector<Time> completions;
  for (const Job& j : rep.jobs) completions.push_back(j.completion);
  std::sort(completions.begin(), completions.end());
  EXPECT_EQ(completions.back(), usec(20));
}

TEST(SimEdge, ZeroHorizonRunsNothing) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(tiny(0, usec(5), usec(100)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.horizon = 0;
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  const auto rep = sim.run();
  // The arrival at t=0 is processed but its critical time (100us) is
  // beyond the horizon: nothing is counted.
  EXPECT_EQ(rep.counted_jobs, 0);
}

TEST(SimEdge, AccessAtOffsetZeroAndAtExecTime) {
  // Accesses at the very start and very end of the compute interval.
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(tiny(0, usec(10), usec(200),
                          {{0, 0}, {0, usec(10)}}));
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(3);
  cfg.horizon = msec(1);
  Simulator sim(ts, rua, cfg);
  sim.set_arrivals(0, {0});
  const auto rep = sim.run();
  EXPECT_EQ(rep.completed, 1);
  EXPECT_EQ(rep.jobs[0].completion, usec(16));  // 10 + 2*3
}

TEST(SimEdge, BackToBackAccessesSameOffset) {
  TaskSet ts;
  ts.object_count = 2;
  ts.tasks.push_back(tiny(0, usec(10), usec(200),
                          {{0, usec(5)}, {1, usec(5)}, {0, usec(5)}}));
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(2);
  cfg.horizon = msec(1);
  Simulator sim(ts, rua, cfg);
  sim.set_arrivals(0, {0});
  const auto rep = sim.run();
  EXPECT_EQ(rep.jobs[0].completion, usec(16));  // 10 + 3*2
  EXPECT_EQ(rep.jobs[0].retries, 0);
}

TEST(SimEdge, LockBasedSelfContentionAcrossJobsOfSameTask) {
  // Burst of two jobs of one task contending on their own object.
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(tiny(0, usec(10), usec(200), {{0, usec(2)}}));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(5);
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0, 0});
  const auto rep = sim.run();
  EXPECT_EQ(rep.completed, 2);
  // Serialized: 15us for the first, 30us for the second, at most one
  // blocking between them.
  EXPECT_LE(rep.total_blockings, 1);
}

TEST(SimEdge, ExpiryDuringSchedulerOverheadWindow) {
  // A job whose critical time lands inside the overhead window of its
  // own dispatch must still abort cleanly.
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(tiny(0, usec(50), usec(1)));  // critical in 1us
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.sched_ns_per_op = 10000.0;  // overhead per invocation >> 1us
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  const auto rep = sim.run();
  EXPECT_EQ(rep.aborted, 1);
  EXPECT_EQ(rep.completed, 0);
}

TEST(SimEdge, ArrivalExactlyAtHorizonStillCountsByCritical) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(tiny(0, usec(5), usec(100)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.horizon = usec(100);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0, usec(100)});
  const auto rep = sim.run();
  // Job at t=0: critical 100 == horizon -> counted and completed.
  // Job at t=100: critical 200 > horizon -> uncounted.
  EXPECT_EQ(rep.counted_jobs, 1);
  EXPECT_EQ(rep.completed, 1);
}

TEST(SimEdge, ManyCpusFewJobs) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(tiny(0, usec(5), usec(100)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.cpu_count = 8;
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  const auto rep = sim.run();
  EXPECT_EQ(rep.completed, 1);
  EXPECT_EQ(rep.jobs[0].completion, usec(5));
}

TEST(SimEdge, InvalidConfigsRejected) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(tiny(0, usec(5), usec(100)));
  const sched::EdfScheduler edf;
  {
    SimConfig cfg;
    cfg.cpu_count = 0;
    EXPECT_THROW(Simulator(ts, edf, cfg), InvariantViolation);
  }
  {
    SimConfig cfg;
    cfg.mode = ShareMode::kLockFree;
    cfg.lockfree_access_time = 0;
    EXPECT_THROW(Simulator(ts, edf, cfg), InvariantViolation);
  }
}

}  // namespace
}  // namespace lfrt
