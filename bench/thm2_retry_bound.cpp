// Theorem 2 validation: the measured maximum number of lock-free
// retries per job never exceeds the analytic bound
//   f_i <= 3 a_i + sum_{j != i} 2 a_j (ceil(C_i / W_j) + 1),
// across a UAM parameter sweep.  Lemma 1 (preemptions bounded by
// scheduling events) is validated alongside via the per-job preemption
// counts.
//
// Both RUA (the paper's scheduler) and EDF dispatching are exercised:
// the bound's argument only counts scheduling events, so it holds for
// any UA scheduler; EDF preempts mid-access far more often than RUA
// (whose PUD ordering favours the in-progress job), making its measured
// retry counts the more stressing test of the bound.
#include "analysis/bounds.hpp"
#include "common.hpp"
#include "sched/edf.hpp"
#include "uam/uam.hpp"

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bench::print_header("Theorem 2", "measured max retries vs analytic bound");
  std::cout << "load=0.9, s=10us, adversarial + random UAM arrivals\n\n";

  Table table({"a_i", "tasks", "sched", "arrivals", "bound f_i (min..max)",
               "max retries", "max preempt", "ok"});
  bool all_ok = true;
  const sched::EdfScheduler edf;

  struct SetSpec {
    int a = 0;
    int tasks = 0;
    TaskSet ts;
    std::int64_t bound_min = 0;
    std::int64_t bound_max = 0;
  };
  std::vector<SetSpec> sets;
  for (const int a : {1, 2, 3}) {
    for (const int tasks : {3, 6, 10}) {
      workload::WorkloadSpec spec;
      spec.task_count = tasks;
      spec.object_count = 4;
      spec.accesses_per_job = 3;
      spec.avg_exec = usec(200);
      spec.load = 0.9;
      spec.max_per_window = a;
      spec.seed = 7;
      SetSpec s;
      s.a = a;
      s.tasks = tasks;
      s.ts = workload::make_task_set(spec);
      s.bound_min = INT64_MAX;
      for (const auto& t : s.ts.tasks) {
        s.bound_min =
            std::min(s.bound_min, analysis::retry_bound(s.ts, t.id));
        s.bound_max =
            std::max(s.bound_max, analysis::retry_bound(s.ts, t.id));
      }
      sets.push_back(std::move(s));
    }
  }

  // Four cells per task set — (RUA, EDF) x (adversarial, random) — flat-
  // indexed in row order and fanned out over the bench pool.
  const auto cells = static_cast<std::int64_t>(sets.size()) * 4;
  const auto reports =
      exp::parallel_map(bench::pool(), cells, [&](std::int64_t cell) {
        const SetSpec& s = sets[static_cast<std::size_t>(cell / 4)];
        const bool use_edf = (cell / 2) % 2 == 1;
        const bool adversarial = cell % 2 == 0;

        sim::SimConfig cfg;
        cfg.mode = sim::ShareMode::kLockFree;
        cfg.lockfree_access_time = usec(10);
        Time max_window = 0;
        for (const auto& t : s.ts.tasks)
          max_window = std::max(max_window, t.arrival.window);
        cfg.horizon = max_window * 100;

        const sched::Scheduler& sch =
            use_edf ? static_cast<const sched::Scheduler&>(edf)
                    : bench::scheduler_for(cfg.mode);
        sim::Simulator sim(s.ts, sch, cfg);
        if (adversarial) {
          for (const auto& t : s.ts.tasks)
            sim.set_arrivals(
                t.id, arrivals::adversarial(t.arrival, 0, cfg.horizon));
        } else {
          sim.seed_arrivals(91);
        }
        return sim.run();
      });

  for (std::size_t cell = 0; cell < reports.size(); ++cell) {
    const SetSpec& s = sets[cell / 4];
    const bool use_edf = (cell / 2) % 2 == 1;
    const bool adversarial = cell % 2 == 0;
    const sim::SimReport& rep = reports[cell];

    std::int64_t max_retries = 0, max_preempt = 0;
    bool ok = true;
    for (const Job& j : rep.jobs) {
      max_retries = std::max(max_retries, j.retries);
      max_preempt = std::max(max_preempt, j.preemptions);
      const std::int64_t bound = analysis::retry_bound(s.ts, j.task);
      ok = ok && j.retries <= bound && j.preemptions <= bound;
    }
    all_ok = all_ok && ok;
    table.add_row({std::to_string(s.a), std::to_string(s.tasks),
                   use_edf ? "EDF" : "RUA",
                   adversarial ? "adversarial" : "random",
                   std::to_string(s.bound_min) + ".." +
                       std::to_string(s.bound_max),
                   std::to_string(max_retries),
                   std::to_string(max_preempt), ok ? "yes" : "VIOLATION"});
  }
  table.print();
  std::cout << "\nresult: "
            << (all_ok ? "retry and preemption counts within the Theorem-2 "
                         "event bound for every job"
                       : "BOUND VIOLATED")
            << "\n";
  return all_ok ? 0 : 1;
}
