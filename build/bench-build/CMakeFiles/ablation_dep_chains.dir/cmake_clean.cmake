file(REMOVE_RECURSE
  "../bench/ablation_dep_chains"
  "../bench/ablation_dep_chains.pdb"
  "CMakeFiles/ablation_dep_chains.dir/ablation_dep_chains.cpp.o"
  "CMakeFiles/ablation_dep_chains.dir/ablation_dep_chains.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dep_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
