#include "sim/trace_export.hpp"

#include <fstream>
#include <sstream>

namespace lfrt::sim {

std::string to_chrome_trace(const TaskSet& tasks, const SimReport& report) {
  std::ostringstream os;
  os << "[\n";
  bool first = true;

  // Thread-name metadata: one row per task.
  for (const auto& t : tasks.tasks) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << t.id
       << R"(,"args":{"name":"T)" << t.id << " (" << t.tuf->describe()
       << R"x( TUF)"}})x";
  }

  for (const auto& s : report.slices) {
    if (!first) os << ",\n";
    first = false;
    // Complete event: ts/dur are in microseconds by convention.
    os << R"({"name":"job )" << s.job << R"(","cat":"cpu)" << s.cpu
       << R"(","ph":"X","pid":1,"tid":)" << s.task << R"(,"ts":)"
       << static_cast<double>(s.begin) / 1e3 << R"(,"dur":)"
       << static_cast<double>(s.end - s.begin) / 1e3
       << R"(,"args":{"cpu":)" << s.cpu << "}}";
  }
  os << "\n]\n";
  return os.str();
}

bool write_chrome_trace(const TaskSet& tasks, const SimReport& report,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_trace(tasks, report);
  return static_cast<bool>(out);
}

}  // namespace lfrt::sim
