file(REMOVE_RECURSE
  "liblfrt_uam.a"
)
