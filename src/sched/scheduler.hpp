// Scheduler interface shared by RUA (lock-based and lock-free) and the
// EDF baseline.
//
// A scheduler is invoked at *scheduling events* (job arrivals and
// departures; plus lock and unlock requests under lock-based sharing —
// paper, Section 3).  It sees an immutable projection of every pending
// job, constructs a schedule, and nominates the job to dispatch.
//
// Every elementary operation performed during schedule construction is
// counted; the simulator charges `ops * ns_per_op` of CPU time to the
// scheduler, which is how the O(n^2 log n) vs O(n^2) asymptotic gap of
// Sections 3.6/5 manifests in the CML experiment (Figure 9).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "task/task.hpp"

namespace lfrt::sched {

/// Immutable projection of one pending job, rebuilt at each scheduling
/// event (dependencies and remaining-time estimates change dynamically —
/// paper, Section 3.4).
struct SchedJob {
  JobId id = kNoJob;
  Time arrival = 0;
  Time critical = 0;   ///< absolute critical time
  Time remaining = 0;  ///< remaining execution estimate incl. access time
  const Tuf* tuf = nullptr;

  /// Job currently holding the object this job has requested (kNoJob if
  /// not blocked).  Always kNoJob under lock-free sharing.
  JobId waits_on = kNoJob;

  bool runnable() const { return waits_on == kNoJob; }
};

/// Outcome of one scheduler invocation.
struct ScheduleResult {
  /// Accepted jobs in execution order (ECF with dependencies respected).
  std::vector<JobId> schedule;

  /// The job to run now: the first runnable job in `schedule`; kNoJob if
  /// every accepted job is blocked or the schedule is empty.
  JobId dispatch = kNoJob;

  /// Jobs examined but excluded because including them (with their
  /// dependents) made the tentative schedule infeasible.
  std::vector<JobId> rejected;

  /// Jobs selected for abortion to break dependency cycles (only when
  /// deadlock detection is enabled and a cycle exists).
  std::vector<JobId> deadlock_victims;

  /// Elementary operations performed (the overhead model's input).
  std::int64_t ops = 0;

  /// Reset to the empty result while keeping vector capacity, so a
  /// caller-owned result can be refilled by repeated `build_into` calls
  /// without reallocating.
  void clear() {
    schedule.clear();
    rejected.clear();
    deadlock_victims.clear();
    dispatch = kNoJob;
    ops = 0;
  }
};

/// Abstract scheduling policy.
///
/// Two entry points exist.  `build` is the convenience form: it returns
/// a fresh ScheduleResult and allocates whatever scratch the policy
/// needs.  `build_into` is the hot-path form: the caller owns both the
/// result and an optional policy-specific Workspace (obtained once from
/// `make_workspace`), and repeated invocations reuse their capacity —
/// in steady state no heap allocation occurs.  The schedule produced and
/// the `ops` charged are identical either way.
class Scheduler {
 public:
  /// Opaque per-caller scratch arena.  Policies that need scratch
  /// return a concrete subtype from `make_workspace`; the same object
  /// must not be used from two threads at once, but may be reused
  /// across any number of `build_into` calls (that reuse is the point).
  class Workspace {
   public:
    virtual ~Workspace() = default;
  };

  virtual ~Scheduler() = default;

  /// A fresh workspace for this policy (nullptr when the policy keeps
  /// no scratch beyond the result buffers).
  virtual std::unique_ptr<Workspace> make_workspace() const {
    return nullptr;
  }

  /// Construct a schedule over `jobs` at time `now` into `out`
  /// (cleared first; capacity kept).  `ws` must be a workspace from
  /// this policy's `make_workspace` or nullptr (the policy then falls
  /// back to transient scratch).
  ///
  /// Thread safety: build_into is const and every piece of mutable
  /// scratch lives in the caller-owned Workspace/ScheduleResult, so ONE
  /// scheduler instance may be shared by any number of concurrent
  /// callers as long as each brings its own `ws` and `out`.  Policies
  /// must not keep `mutable` members, statics, or other hidden state
  /// behind this call.  The parallel experiment harness (src/exp,
  /// bench::scheduler_for) relies on the guarantee — every pool worker
  /// runs Simulators pointing at the same const instance — and
  /// tests/concurrent_build_test.cpp enforces it under TSan
  /// (scripts/check.sh, LFRT_SANITIZE=thread).
  virtual void build_into(const std::vector<SchedJob>& jobs, Time now,
                          Workspace* ws, ScheduleResult& out) const = 0;

  /// Convenience form of `build_into` with transient result/scratch.
  ScheduleResult build(const std::vector<SchedJob>& jobs, Time now) const {
    ScheduleResult out;
    build_into(jobs, now, nullptr, out);
    return out;
  }

  virtual std::string name() const = 0;
};

}  // namespace lfrt::sched
