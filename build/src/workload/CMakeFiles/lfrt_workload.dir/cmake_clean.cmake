file(REMOVE_RECURSE
  "CMakeFiles/lfrt_workload.dir/workload.cpp.o"
  "CMakeFiles/lfrt_workload.dir/workload.cpp.o.d"
  "liblfrt_workload.a"
  "liblfrt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfrt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
