// Tests for the lock-free atomic snapshot (the paper's future-work
// "snapshot abstraction").
#include "lockfree/snapshot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace lfrt::lockfree {
namespace {

TEST(Snapshot, SingleThreadUpdateAndScan) {
  AtomicSnapshot<int, 3> snap;
  auto v = snap.scan();
  EXPECT_EQ(v, (std::array<int, 3>{0, 0, 0}));
  snap.update(0, 10);
  snap.update(2, 30);
  v = snap.scan();
  EXPECT_EQ(v, (std::array<int, 3>{10, 0, 30}));
  EXPECT_EQ(snap.read(0), 10);
  EXPECT_EQ(snap.read(1), 0);
  EXPECT_EQ(snap.stats().retry_count(), 0);
}

TEST(Snapshot, SizeIsCompileTime) {
  EXPECT_EQ((AtomicSnapshot<int, 5>::size()), 5u);
}

TEST(Snapshot, RepeatedUpdatesVisibleInOrder) {
  AtomicSnapshot<std::int64_t, 1> snap;
  for (std::int64_t i = 1; i <= 100; ++i) {
    snap.update(0, i);
    EXPECT_EQ(snap.scan()[0], i);
  }
}

TEST(Snapshot, ScanIsLinearizableUnderConcurrentWriters) {
  // Two writers keep their segments equal to their own counter; every
  // scanned view must satisfy the invariant that segment values never
  // run backwards and (for the paired-update writer) stay consistent.
  struct Pair {
    std::int64_t a;
    std::int64_t b;  // always == -a at any instant
  };
  AtomicSnapshot<Pair, 2> snap;
  std::atomic<bool> stop{false};
  std::thread w0([&] {
    for (std::int64_t i = 1; i <= 50000; ++i) snap.update(0, {i, -i});
  });
  std::thread w1([&] {
    for (std::int64_t i = 1; i <= 50000; ++i) snap.update(1, {2 * i, -2 * i});
  });

  std::int64_t last0 = 0, last1 = 0;
  std::int64_t scans = 0;
  while (!stop.load()) {
    const auto view = snap.scan();
    // Intra-segment atomicity: each Pair is internally consistent.
    ASSERT_EQ(view[0].a, -view[0].b);
    ASSERT_EQ(view[1].a, -view[1].b);
    // Monotonicity: single-writer counters never run backwards across
    // successive scans.
    ASSERT_GE(view[0].a, last0);
    ASSERT_GE(view[1].a, last1);
    last0 = view[0].a;
    last1 = view[1].a;
    if (++scans >= 2000) break;
  }
  w0.join();
  w1.join();
  const auto final_view = snap.scan();
  EXPECT_EQ(final_view[0].a, 50000);
  EXPECT_EQ(final_view[1].a, 100000);
}

TEST(Snapshot, PerSegmentReadNeverTears) {
  struct Wide {
    std::int64_t x, y, z;
  };
  AtomicSnapshot<Wide, 1> snap;
  std::thread writer([&] {
    for (std::int64_t i = 1; i <= 100000; ++i) snap.update(0, {i, 2 * i, 3 * i});
  });
  for (int k = 0; k < 5000; ++k) {
    const Wide w = snap.read(0);
    ASSERT_EQ(w.y, 2 * w.x);
    ASSERT_EQ(w.z, 3 * w.x);
  }
  writer.join();
}

}  // namespace
}  // namespace lfrt::lockfree
