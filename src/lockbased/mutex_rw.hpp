// Lock-based counterparts of the reader/writer structures in
// src/lockfree (NbwBuffer, AtomicSnapshot).
//
// Same contention-accounting discipline as MutexQueue/MutexStack: every
// acquire records whether it found the lock held, so the blocking
// episodes (the paper's n_i events) flow into ObjectStats and — via the
// thread-local sinks — into per-job and per-(object, task) tallies.
// These are the `impl = kLockBased` lowering targets for
// ObjectKind::kBuffer / kSnapshot in runtime::SharedObject.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>

#include "runtime/object_stats.hpp"

namespace lfrt::lockbased {

/// Mutex-protected state buffer: the lock-based answer to NBW's
/// single-writer message.  No single-writer restriction — mutual
/// exclusion already serializes writers, which is exactly the
/// flexibility-for-blocking trade the paper examines.
template <typename T>
class MutexBuffer {
 public:
  explicit MutexBuffer(const T& initial = T{}) : data_(initial) {}

  void write(const T& value) {
    Guard g(*this);
    data_ = value;
    stats_.record_op();
  }

  T read() const {
    Guard g(const_cast<MutexBuffer&>(*this));
    stats_.record_op();
    return data_;
  }

  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  /// Lock guard that records whether the acquire contended.
  class Guard {
   public:
    explicit Guard(MutexBuffer& b) : b_(b) {
      if (b_.mutex_.try_lock()) {
        b_.stats_.record_acquisition(/*was_contended=*/false);
      } else {
        b_.stats_.record_acquisition(/*was_contended=*/true);
        b_.mutex_.lock();
      }
    }
    ~Guard() { b_.mutex_.unlock(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    MutexBuffer& b_;
  };

  mutable std::mutex mutex_;
  T data_;
  mutable runtime::ObjectStats stats_;
};

/// Mutex-protected N-segment snapshot: update one segment or scan all N
/// under one lock.  Scans are trivially linearizable (the lock holds
/// every writer off), at the cost of blocking every concurrent access —
/// the contrast AtomicSnapshot's double-collect avoids.
template <typename T, std::size_t N>
class MutexSnapshot {
  static_assert(N >= 1, "need at least one segment");

 public:
  void update(std::size_t i, const T& value) {
    Guard g(*this);
    segments_[i] = value;
    stats_.record_op();
  }

  std::array<T, N> scan() const {
    Guard g(const_cast<MutexSnapshot&>(*this));
    stats_.record_op();
    return segments_;
  }

  T read(std::size_t i) const {
    Guard g(const_cast<MutexSnapshot&>(*this));
    return segments_[i];
  }

  const runtime::ObjectStats& stats() const { return stats_; }

  static constexpr std::size_t size() { return N; }

 private:
  class Guard {
   public:
    explicit Guard(MutexSnapshot& s) : s_(s) {
      if (s_.mutex_.try_lock()) {
        s_.stats_.record_acquisition(/*was_contended=*/false);
      } else {
        s_.stats_.record_acquisition(/*was_contended=*/true);
        s_.mutex_.lock();
      }
    }
    ~Guard() { s_.mutex_.unlock(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    MutexSnapshot& s_;
  };

  mutable std::mutex mutex_;
  std::array<T, N> segments_{};
  mutable runtime::ObjectStats stats_;
};

}  // namespace lfrt::lockbased
