file(REMOVE_RECURSE
  "liblfrt_sched.a"
)
