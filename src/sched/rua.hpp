// RUA — the Resource-constrained Utility Accrual scheduling algorithm
// (Wu, Ravindran, Jensen, Balli [27]), in both the lock-based form the
// paper starts from (Section 3) and the lock-free form it derives
// (Sections 3.6/5).
//
// Lock-based RUA, per scheduling event:
//   1. build every job's dependency chain by following the chain of
//      resource request and ownership                      — O(n^2)
//   2. compute each job's potential utility density (PUD) over the
//      aggregate (job + dependents)                        — O(n^2)
//   3. detect dependency cycles (deadlock) and resolve by aborting the
//      least-utility job in the cycle                      — O(n^2)
//   4. sort jobs by non-increasing PUD                     — O(n log n)
//   5. greedily insert each aggregate into a tentative ECF schedule,
//      respecting dependencies (with critical-time clamping and
//      removal/reinsertion, Figures 4 and 5) and testing feasibility
//                                                          — O(n^2 log n)
//
// Lock-free RUA is the same algorithm with dependency chains reduced to
// the job itself: steps 1 and 3 vanish, 2 becomes O(n), 5 becomes
// O(n^2); the whole algorithm costs O(n^2).
//
// This implementation keeps the *hot path allocation-free in steady
// state*: all scratch lives in a caller-owned RuaWorkspace whose
// buffers retain capacity across build_into calls, the tentative
// schedule is edited in place with an undo log instead of being copied
// per aggregate, membership lookups go through a maintained
// position index instead of a linear scan, and the feasibility pass
// restarts from a maintained prefix-sum watermark instead of the head
// of the schedule.  The modelled `ops` counts are bit-for-bit identical
// to the naive algorithm (rua_reference.hpp), so every paper figure is
// unchanged; only the wall-clock cost per invocation drops.
#pragma once

#include <cstdint>
#include <memory>

#include "sched/scheduler.hpp"

namespace lfrt::sched {

/// Object-sharing regime the scheduler is paired with.
enum class Sharing {
  kLockBased,  ///< mutual exclusion; dependency chains and blocking exist
  kLockFree,   ///< retry-based; dependencies never arise
};

/// One entry of the (tentative) schedule: a job plus its *effective*
/// critical time, which dependency clamping (Figure 4) may have lowered
/// below the job's own critical time.
struct RuaEntry {
  std::size_t job = static_cast<std::size_t>(-1);  // index into jobs
  Time eff_critical = 0;
};

/// Scratch arena for RuaScheduler::build_into.
///
/// Contract: a workspace belongs to one caller and must not be used by
/// two threads at once.  Between calls every buffer keeps its capacity,
/// so after the first call at a given job-count high-water mark,
/// build_into performs **zero heap allocations** (the caller's
/// ScheduleResult buffers likewise retain capacity when reused; see
/// tests/rua_alloc_test.cpp for the enforcing hook).  No state carries
/// *semantic* meaning across calls — only capacity — so a workspace may
/// be shared sequentially between schedulers and job sets of any size.
class RuaWorkspace final : public Scheduler::Workspace {
 public:
  RuaWorkspace() = default;

 private:
  friend class RuaScheduler;

  // Open-addressed JobId -> job-index map (linear probing, power-of-two
  // capacity, kNoJob = empty slot) replacing the per-call
  // std::unordered_map.
  std::vector<JobId> map_keys;
  std::vector<std::size_t> map_vals;

  // Cycle detection scratch (lock-based step 3).
  std::vector<char> dead;
  std::vector<char> visited;
  std::vector<char> on_path;
  std::vector<std::size_t> path;

  // Dependency chains in CSR layout: chain i occupies
  // chain_data[chain_off[i] .. chain_off[i] + chain_len[i]).
  std::vector<std::size_t> chain_off;
  std::vector<std::size_t> chain_len;
  std::vector<std::size_t> chain_data;
  // chain_mark[k] == i + 1 iff k already belongs to the chain being
  // built for job i (O(1) membership, replacing a scan of the chain).
  std::vector<std::size_t> chain_mark;

  std::vector<double> pud;
  std::vector<std::size_t> order;

  // The committed schedule, edited in place; pos_of maps job index ->
  // current schedule position (replacing the linear find_entry scan).
  std::vector<RuaEntry> schedule;
  std::vector<std::size_t> pos_of;

  // Feasibility prefix sums: prefix[p] = finish time of entry p when
  // the schedule runs back-to-back from `now`; valid for p < watermark
  // (the watermark is maintained across aggregate insertions so each
  // feasibility pass restarts at the first modified position).
  std::vector<Time> prefix;

  // Undo log of one aggregate's in-place edits, rolled back in LIFO
  // order when the tentative schedule turns out infeasible.
  struct Undo {
    enum class Kind : std::uint8_t { kInsert, kMove };
    Kind kind = Kind::kInsert;
    std::size_t a = 0;  // insert position / move source position
    std::size_t b = 0;  // move destination position
    RuaEntry saved;     // move: original entry (pre-clamp)
  };
  std::vector<Undo> undo;
};

/// RUA scheduler.  Construct with Sharing::kLockFree for lock-free RUA.
///
/// `detect_deadlocks` enables step 3.  The paper's apples-to-apples
/// comparison (Section 5) excludes nested critical sections, where
/// cycles cannot arise, and turns the detector off; it remains available
/// for the general algorithm and is exercised by tests with synthetic
/// cycles.
class RuaScheduler final : public Scheduler {
 public:
  explicit RuaScheduler(Sharing sharing, bool detect_deadlocks = false);

  std::unique_ptr<Workspace> make_workspace() const override;

  /// `ws` must come from make_workspace (or be nullptr, in which case a
  /// transient workspace is used and the call allocates).
  void build_into(const std::vector<SchedJob>& jobs, Time now,
                  Workspace* ws, ScheduleResult& out) const override;

  std::string name() const override;

  Sharing sharing() const { return sharing_; }

 private:
  void run(const std::vector<SchedJob>& jobs, Time now, RuaWorkspace& ws,
           ScheduleResult& out) const;

  Sharing sharing_;
  bool detect_deadlocks_;
};

}  // namespace lfrt::sched
