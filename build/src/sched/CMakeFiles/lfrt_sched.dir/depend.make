# Empty dependencies file for lfrt_sched.
# This may be replaced when dependencies are built.
