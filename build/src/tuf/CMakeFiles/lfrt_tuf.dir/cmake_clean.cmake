file(REMOVE_RECURSE
  "CMakeFiles/lfrt_tuf.dir/tuf.cpp.o"
  "CMakeFiles/lfrt_tuf.dir/tuf.cpp.o.d"
  "liblfrt_tuf.a"
  "liblfrt_tuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfrt_tuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
