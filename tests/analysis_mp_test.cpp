// Unit tests for analysis::mp — the multiprocessor blocking/retry
// bounds and the heatmap certifier — validated against hand-computed
// values on the same two-task fixture analysis_test uses.
#include "analysis/mp.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "lockfree/backoff.hpp"
#include "sched/dispatch.hpp"
#include "support/saturate.hpp"
#include "tuf/tuf.hpp"

namespace lfrt {
namespace {

using analysis::mp::MpOptions;
using analysis::mp::Substrate;
using runtime::ObjectImpl;
using runtime::ObjectKind;
using runtime::ObjectSpec;
using support::kSaturated;

/// The analysis_test fixture:
///   T0: a=2, W=100us, C=100us, u=10us, writes obj0 and obj1
///   T1: a=1, W=50us,  C=50us,  u=5us,  writes obj0
///
/// Overlap counts ovl_j(L) = a_j (ceil((L + C_j)/W_j) + 1):
///   ovl_0(C_0) = 2*(ceil(200/100)+1) = 6   (5 once self-adjusted)
///   ovl_1(C_0) = 1*(ceil(150/50)+1)  = 4
///   ovl_0(C_1) = 2*(ceil(150/100)+1) = 6
///   ovl_1(C_1) = 1*(ceil(100/50)+1)  = 3   (2 once self-adjusted)
TaskSet two_task_set() {
  TaskSet ts;
  ts.object_count = 2;
  {
    TaskParams p;
    p.id = 0;
    p.arrival = UamSpec{1, 2, usec(100)};
    p.tuf = make_step_tuf(10.0, usec(100));
    p.exec_time = usec(10);
    p.accesses = {{0, usec(2)}, {1, usec(5)}};
    ts.tasks.push_back(std::move(p));
  }
  {
    TaskParams p;
    p.id = 1;
    p.arrival = UamSpec{1, 1, usec(50)};
    p.tuf = make_step_tuf(20.0, usec(50));
    p.exec_time = usec(5);
    p.accesses = {{0, usec(1)}};
    ts.tasks.push_back(std::move(p));
  }
  ts.validate();
  return ts;
}

ObjectSpec spec_of(ObjectKind kind, ObjectImpl impl) {
  ObjectSpec s;
  s.kind = kind;
  s.impl = impl;
  return s;
}

MpOptions opts(int cpus, Substrate sub) {
  MpOptions o;
  o.cpu_count = cpus;
  o.substrate = sub;
  return o;
}

TEST(AnalysisMpBounds, OverlappingJobsHandComputed) {
  const TaskSet ts = two_task_set();
  EXPECT_EQ(analysis::mp::overlapping_jobs(ts, 0, usec(100)), 6);
  EXPECT_EQ(analysis::mp::overlapping_jobs(ts, 1, usec(100)), 4);
  EXPECT_EQ(analysis::mp::overlapping_jobs(ts, 0, usec(50)), 6);
  EXPECT_EQ(analysis::mp::overlapping_jobs(ts, 1, usec(50)), 3);
}

TEST(AnalysisMpBounds, AccessCountsResolvePerObject) {
  const TaskSet ts = two_task_set();
  EXPECT_EQ(analysis::mp::writes_to(ts, 0, 0), 1);
  EXPECT_EQ(analysis::mp::writes_to(ts, 0, 1), 1);
  EXPECT_EQ(analysis::mp::writes_to(ts, 1, 1), 0);
  EXPECT_EQ(analysis::mp::accesses_to(ts, 1, 0), 1);
}

TEST(AnalysisMpBounds, QueueRetryBoundHandComputed) {
  const TaskSet ts = two_task_set();
  const ObjectSpec q = spec_of(ObjectKind::kQueue, ObjectImpl::kLockFree);
  const MpOptions opt = opts(4, Substrate::kExecutor);
  // Task 0, object 0: 4 transitions per conflicting write.
  //   self peers: 1 write * 4 * (6-1) = 20
  //   T1:         1 write * 4 * 4    = 16
  //   stale sightings: 2 structure ops * 1 own write = 2   -> 38.
  EXPECT_EQ(analysis::mp::retry_job_bound(ts, 0, 0, q, opt), 38);
  // Task 1, object 0: self 1*4*2 = 8, T0 1*4*6 = 24, stale 2 -> 34.
  EXPECT_EQ(analysis::mp::retry_job_bound(ts, 1, 0, q, opt), 34);
  // Object 1 is written only by T0: self 20 + stale 2 = 22; T1 never
  // touches it -> 0.
  EXPECT_EQ(analysis::mp::retry_job_bound(ts, 0, 1, q, opt), 22);
  EXPECT_EQ(analysis::mp::retry_job_bound(ts, 1, 1, q, opt), 0);
}

TEST(AnalysisMpBounds, LocksNeverRetryLockFreeNeverBlocks) {
  const TaskSet ts = two_task_set();
  const MpOptions opt = opts(2, Substrate::kExecutor);
  for (const ObjectImpl impl : runtime::lock_impls()) {
    const ObjectSpec s = spec_of(ObjectKind::kQueue, impl);
    EXPECT_EQ(analysis::mp::retry_job_bound(ts, 0, 0, s, opt), 0);
  }
  const ObjectSpec lf = spec_of(ObjectKind::kQueue, ObjectImpl::kLockFree);
  EXPECT_EQ(analysis::mp::blocking_job_bound(ts, 0, 0, lf, opt), 0);
}

TEST(AnalysisMpBounds, BlockingBoundExecutorCapsAtOwnAcquisitions) {
  const TaskSet ts = two_task_set();
  const ObjectSpec m = spec_of(ObjectKind::kQueue, ObjectImpl::kMutex);
  // Queue writes lock twice (insert + remove): own = 2 per job.
  // Conflicting holds overlapping one T0 job: self 2*5 + T1 2*4 = 18.
  EXPECT_EQ(analysis::mp::blocking_job_bound(ts, 0, 0, m,
                                             opts(4, Substrate::kExecutor)),
            2);
  // The simulator can re-block one access per intervening hold, so only
  // the conflicting-hold charge is sound there.
  EXPECT_EQ(analysis::mp::blocking_job_bound(ts, 0, 0, m,
                                             opts(4, Substrate::kSimulator)),
            18);
  // Task 1: own = 2, conflict = self 2*2 + T0 2*6 = 16.
  EXPECT_EQ(analysis::mp::blocking_job_bound(ts, 1, 0, m,
                                             opts(4, Substrate::kSimulator)),
            16);
}

TEST(AnalysisMpBounds, ExecutorRwReadersAreUnboundedSimulatorBounded) {
  // Buffer readers on the executor retry once per spin iteration while
  // a writer is mid-flight — duration-coupled, declined.  The simulator
  // charges at most one retry per completed attempt, which the
  // one-transition-per-write model bounds.
  TaskSet ts = two_task_set();
  ts.tasks[0].accesses = {{0, usec(2), /*write=*/false}};
  ts.validate();
  const ObjectSpec b = spec_of(ObjectKind::kBuffer, ObjectImpl::kLockFree);
  EXPECT_EQ(analysis::mp::retry_job_bound(ts, 0, 0, b,
                                          opts(2, Substrate::kExecutor)),
            kSaturated);
  // Simulator: T1's 1 write * 1 transition * ovl_1(C_0)=4 -> 4.
  EXPECT_EQ(analysis::mp::retry_job_bound(ts, 0, 0, b,
                                          opts(2, Substrate::kSimulator)),
            4);
  // Wait-free writers never retry, on either substrate.
  EXPECT_EQ(analysis::mp::retry_job_bound(ts, 1, 0, b,
                                          opts(2, Substrate::kExecutor)),
            0);
}

TEST(AnalysisMpBounds, WorkerCapAndConflictingJobs) {
  const TaskSet ts = two_task_set();
  EXPECT_EQ(analysis::mp::worker_cap(ts, 0, opts(1, Substrate::kExecutor)),
            1);
  EXPECT_EQ(analysis::mp::worker_cap(ts, 0, opts(4, Substrate::kExecutor)),
            2);  // only two accessor tasks
  // Object 1 has a single accessor.
  EXPECT_EQ(analysis::mp::worker_cap(ts, 1, opts(4, Substrate::kExecutor)),
            1);
  // n_0 on object 0: self-adjusted 5 + T1's 4 = 9.
  EXPECT_EQ(
      analysis::mp::conflicting_jobs(ts, 0, 0, opts(4, Substrate::kExecutor)),
      9);
}

TEST(AnalysisMpBounds, FifoSpinTimeNeverExceedsUnorderedMutex) {
  const TaskSet ts = two_task_set();
  const runtime::CostModel model = runtime::CostModel::flat(usec(1), usec(2));
  const MpOptions opt = opts(4, Substrate::kExecutor);
  const Time mutex_t = analysis::mp::spin_block_time_bound(
      ts, 0, 0, spec_of(ObjectKind::kQueue, ObjectImpl::kMutex), model, opt);
  for (const ObjectImpl impl :
       {ObjectImpl::kTicket, ObjectImpl::kAnderson, ObjectImpl::kMcs}) {
    const Time fifo_t = analysis::mp::spin_block_time_bound(
        ts, 0, 0, spec_of(ObjectKind::kQueue, impl), model, opt);
    EXPECT_GT(fifo_t, 0);
    EXPECT_LE(fifo_t, mutex_t) << to_string(impl);
  }
  // Lock-free spins on nothing; locks pay no retry time.
  EXPECT_EQ(analysis::mp::spin_block_time_bound(
                ts, 0, 0, spec_of(ObjectKind::kQueue, ObjectImpl::kLockFree),
                model, opt),
            0);
  EXPECT_EQ(analysis::mp::retry_time_bound(
                ts, 0, 0, spec_of(ObjectKind::kQueue, ObjectImpl::kMutex),
                model, opt),
            0);
  EXPECT_GT(analysis::mp::retry_time_bound(
                ts, 0, 0, spec_of(ObjectKind::kQueue, ObjectImpl::kLockFree),
                model, opt),
            0);
}

// ---- strict conflict-group refinement --------------------------------

TEST(AnalysisMpStrict, RefinementDropsSameGroupTerms) {
  const TaskSet ts = two_task_set();
  const ObjectSpec q = spec_of(ObjectKind::kQueue, ObjectImpl::kLockFree);
  MpOptions strict = opts(4, Substrate::kExecutor);
  strict.conflict_groups = {0, 0};  // both tasks share one storm cell
  strict.strict_groups = true;
  // Every conflicting writer is barred from co-dispatch; only the
  // stale-sighting term survives.
  EXPECT_EQ(analysis::mp::retry_job_bound(ts, 0, 0, q, strict), 2);
  // The same groups WITHOUT the strict guarantee refine nothing: the
  // work-conserving selector may still co-dispatch deferred jobs.
  MpOptions loose = strict;
  loose.strict_groups = false;
  EXPECT_EQ(analysis::mp::retry_job_bound(ts, 0, 0, q, loose), 38);
  // Blocking drops to zero the same way.
  const ObjectSpec m = spec_of(ObjectKind::kQueue, ObjectImpl::kMutex);
  EXPECT_EQ(analysis::mp::blocking_job_bound(ts, 0, 0, m, strict), 0);
  // Strict groups collapse the accessor count: one worker can touch o0.
  EXPECT_EQ(analysis::mp::worker_cap(ts, 0, strict), 1);
}

TEST(AnalysisMpStrict, RefinedBoundsAreMonotonicallyTighter) {
  const TaskSet ts = two_task_set();
  for (const ObjectKind kind : runtime::all_object_kinds()) {
    for (const ObjectImpl impl : runtime::all_object_impls()) {
      const ObjectSpec s = spec_of(kind, impl);
      for (const Substrate sub :
           {Substrate::kExecutor, Substrate::kSimulator}) {
        MpOptions strict = opts(4, sub);
        strict.conflict_groups = {0, 0};
        strict.strict_groups = true;
        const MpOptions plain = opts(4, sub);
        for (TaskId i : {0, 1}) {
          for (ObjectId o : {0, 1}) {
            EXPECT_LE(analysis::mp::retry_job_bound(ts, i, o, s, strict),
                      analysis::mp::retry_job_bound(ts, i, o, s, plain));
            EXPECT_LE(analysis::mp::blocking_job_bound(ts, i, o, s, strict),
                      analysis::mp::blocking_job_bound(ts, i, o, s, plain));
          }
        }
      }
    }
  }
}

TEST(AnalysisMpStrict, OptionsFromSelectorCopyGroupsAndFlag) {
  sched::DispatchSelector sel;
  sel.set_conflict_groups({1, 2, -1});
  sel.set_strict_groups(true);
  const MpOptions opt = analysis::mp::options_from_selector(
      sel, 4, Substrate::kSimulator);
  EXPECT_EQ(opt.cpu_count, 4);
  EXPECT_EQ(opt.substrate, Substrate::kSimulator);
  EXPECT_EQ(opt.conflict_groups, (std::vector<std::int32_t>{1, 2, -1}));
  EXPECT_TRUE(opt.strict_groups);
  EXPECT_TRUE(analysis::mp::co_dispatch_prevented(opt, 0, 0));
  EXPECT_FALSE(analysis::mp::co_dispatch_prevented(opt, 0, 1));
  EXPECT_FALSE(analysis::mp::co_dispatch_prevented(opt, 0, 2));
}

// ---- saturation ------------------------------------------------------

TEST(AnalysisMpSaturate, NearMaxHorizonsClampNotWrap) {
  // A task whose critical time nears INT64_MAX against a 1-tick window
  // must drive every count to the saturation rail, never negative.
  TaskSet ts;
  ts.object_count = 1;
  {
    TaskParams p;
    p.id = 0;
    p.arrival = UamSpec{1, 1, std::numeric_limits<Time>::max()};
    p.tuf = make_step_tuf(1.0, std::numeric_limits<Time>::max());
    p.exec_time = 1;
    p.accesses = {{0, 0}};
    ts.tasks.push_back(std::move(p));
  }
  {
    TaskParams p;
    p.id = 1;
    p.arrival = UamSpec{1, 1, 1};
    p.tuf = make_step_tuf(1.0, 1);
    p.exec_time = 1;
    p.accesses = {{0, 0}};
    ts.tasks.push_back(std::move(p));
  }
  ts.validate();
  const ObjectSpec q = spec_of(ObjectKind::kQueue, ObjectImpl::kLockFree);
  const ObjectSpec m = spec_of(ObjectKind::kQueue, ObjectImpl::kMutex);
  const MpOptions opt = opts(2, Substrate::kSimulator);
  EXPECT_EQ(analysis::mp::overlapping_jobs(ts, 1, ts.tasks[0].critical_time()),
            kSaturated);
  const std::int64_t retry = analysis::mp::retry_job_bound(ts, 0, 0, q, opt);
  EXPECT_EQ(retry, kSaturated);
  EXPECT_GE(retry, 0);
  const std::int64_t block = analysis::mp::blocking_job_bound(ts, 0, 0, m, opt);
  EXPECT_EQ(block, kSaturated);
  EXPECT_GE(block, 0);
}

// ---- the certifier ---------------------------------------------------

/// A report shaped like a substrate would produce for two_task_set():
/// one job per task, a 2x2 heatmap.
runtime::RunReport report_for(const TaskSet& ts) {
  runtime::RunReport rep;
  rep.contention = runtime::ContentionMatrix(
      ts.object_count, static_cast<std::int32_t>(ts.tasks.size()));
  for (const TaskParams& t : ts.tasks) {
    Job j;
    j.id = t.id;
    j.task = t.id;
    rep.jobs.push_back(j);
  }
  return rep;
}

TEST(AnalysisMpCertify, EmptyHeatmapCertifiesTrivially) {
  const TaskSet ts = two_task_set();
  const auto cert = analysis::certify(
      runtime::RunReport{}, ts,
      runtime::uniform_objects(2, ObjectKind::kQueue, ObjectImpl::kLockFree),
      runtime::CostModel::flat(usec(1), usec(2)));
  EXPECT_TRUE(cert.ok);
  EXPECT_EQ(cert.cells_checked, 0);
}

TEST(AnalysisMpCertify, UnderBoundMeasurementsPass) {
  const TaskSet ts = two_task_set();
  runtime::RunReport rep = report_for(ts);
  rep.contention.at(0, 0).retries = 10;  // per-job bound is 38
  rep.jobs[0].retries = 10;
  rep.jobs[0].backoff_spins = 10 * lockfree::Backoff::kMaxSpins;
  const auto cert = analysis::certify(
      rep, ts,
      runtime::uniform_objects(2, ObjectKind::kQueue, ObjectImpl::kLockFree),
      runtime::CostModel::flat(usec(1), usec(2)),
      opts(4, Substrate::kExecutor));
  EXPECT_TRUE(cert.ok);
  EXPECT_EQ(cert.violations, 0);
  // 2 objects x 2 tasks x {retries, blockings} + 2 backoff checks.
  EXPECT_EQ(cert.cells_checked, 10);
  ASSERT_EQ(cert.retries.size(), 4u);
  EXPECT_EQ(cert.retries[0].bound, 38);
  EXPECT_EQ(cert.retries[0].measured, 10);
  // Tightest cell: (obj0, T0) at 28/38 slack.
  EXPECT_NEAR(cert.min_slack, 28.0 / 38.0, 1e-12);
  ASSERT_EQ(cert.time_bounds.size(), 2u);
  EXPECT_EQ(cert.time_bounds[0].spin_block_time, 0);  // lock-free universe
  EXPECT_GT(cert.time_bounds[0].retry_time, 0);
}

TEST(AnalysisMpCertify, OverBoundCellIsFlagged) {
  const TaskSet ts = two_task_set();
  runtime::RunReport rep = report_for(ts);
  rep.contention.at(0, 0).retries = 39;  // bound is 38 * 1 job
  const auto cert = analysis::certify(
      rep, ts,
      runtime::uniform_objects(2, ObjectKind::kQueue, ObjectImpl::kLockFree),
      runtime::CostModel::flat(usec(1), usec(2)),
      opts(4, Substrate::kExecutor));
  EXPECT_FALSE(cert.ok);
  EXPECT_EQ(cert.violations, 1);
  EXPECT_FALSE(cert.retries[0].ok);
  EXPECT_LT(cert.retries[0].slack(), 0.0);
  EXPECT_LT(cert.min_slack, 0.0);
}

TEST(AnalysisMpCertify, LockUniverseGatesBlockings) {
  const TaskSet ts = two_task_set();
  runtime::RunReport rep = report_for(ts);
  rep.contention.at(0, 0).blockings = 2;  // executor cap: own 2 holds
  {
    const auto cert = analysis::certify(
        rep, ts,
        runtime::uniform_objects(2, ObjectKind::kQueue, ObjectImpl::kMcs),
        runtime::CostModel::flat(usec(1), usec(2)),
        opts(4, Substrate::kExecutor));
    EXPECT_TRUE(cert.ok);
    ASSERT_EQ(cert.blockings.size(), 4u);
    EXPECT_EQ(cert.blockings[0].bound, 2);
  }
  rep.contention.at(0, 0).blockings = 3;
  {
    const auto cert = analysis::certify(
        rep, ts,
        runtime::uniform_objects(2, ObjectKind::kQueue, ObjectImpl::kMcs),
        runtime::CostModel::flat(usec(1), usec(2)),
        opts(4, Substrate::kExecutor));
    EXPECT_FALSE(cert.ok);
    EXPECT_EQ(cert.violations, 1);
  }
}

TEST(AnalysisMpCertify, BackoffLadderViolationIsCaught) {
  const TaskSet ts = two_task_set();
  runtime::RunReport rep = report_for(ts);
  rep.contention.at(0, 0).retries = 1;
  rep.jobs[0].retries = 1;
  rep.jobs[0].backoff_spins = lockfree::Backoff::kMaxSpins + 1;
  const auto cert = analysis::certify(
      rep, ts,
      runtime::uniform_objects(2, ObjectKind::kQueue, ObjectImpl::kLockFree),
      runtime::CostModel::flat(usec(1), usec(2)),
      opts(4, Substrate::kExecutor));
  EXPECT_FALSE(cert.ok);
  EXPECT_EQ(cert.violations, 1);
  ASSERT_EQ(cert.backoff.size(), 2u);
  EXPECT_FALSE(cert.backoff[0].ok);
  EXPECT_EQ(cert.backoff[0].measured, lockfree::Backoff::kMaxSpins + 1);
  EXPECT_EQ(cert.backoff[0].bound, lockfree::Backoff::kMaxSpins);
}

TEST(AnalysisMpCertify, UnboundedCellsReportButNeverGate) {
  // Executor buffer READER cells are declined, not gated: an enormous
  // measurement passes there but fails under the simulator's model.
  TaskSet ts = two_task_set();
  ts.tasks[0].accesses = {{0, usec(2), /*write=*/false}};
  ts.object_count = 1;
  ts.tasks[0].accesses.resize(1);
  ts.validate();
  runtime::RunReport rep;
  rep.contention = runtime::ContentionMatrix(1, 2);
  for (const TaskParams& t : ts.tasks) {
    Job j;
    j.id = t.id;
    j.task = t.id;
    rep.jobs.push_back(j);
  }
  rep.contention.at(0, 0).retries = 1'000'000;
  const auto specs =
      runtime::uniform_objects(1, ObjectKind::kBuffer, ObjectImpl::kLockFree);
  const auto model = runtime::CostModel::flat(usec(1), usec(2));
  const auto exec_cert =
      analysis::certify(rep, ts, specs, model, opts(2, Substrate::kExecutor));
  EXPECT_TRUE(exec_cert.ok);
  EXPECT_TRUE(exec_cert.retries[0].unbounded);
  EXPECT_DOUBLE_EQ(exec_cert.retries[0].slack(), 1.0);
  const auto sim_cert =
      analysis::certify(rep, ts, specs, model, opts(2, Substrate::kSimulator));
  EXPECT_FALSE(sim_cert.ok);
  EXPECT_FALSE(sim_cert.retries[0].unbounded);
}

TEST(AnalysisMpCertify, JobCountScalesTheCellBound) {
  const TaskSet ts = two_task_set();
  runtime::RunReport rep = report_for(ts);
  // Three more T0 jobs: per-cell bound becomes 38 * 4.
  for (int k = 0; k < 3; ++k) {
    Job j;
    j.id = 10 + k;
    j.task = 0;
    rep.jobs.push_back(j);
  }
  rep.contention.at(0, 0).retries = 38 * 4;
  const auto cert = analysis::certify(
      rep, ts,
      runtime::uniform_objects(2, ObjectKind::kQueue, ObjectImpl::kLockFree),
      runtime::CostModel::flat(usec(1), usec(2)),
      opts(4, Substrate::kExecutor));
  EXPECT_TRUE(cert.ok);
  EXPECT_EQ(cert.retries[0].bound, 38 * 4);
  EXPECT_DOUBLE_EQ(cert.retries[0].slack(), 0.0);
}

}  // namespace
}  // namespace lfrt
