// RUA — the Resource-constrained Utility Accrual scheduling algorithm
// (Wu, Ravindran, Jensen, Balli [27]), in both the lock-based form the
// paper starts from (Section 3) and the lock-free form it derives
// (Sections 3.6/5).
//
// Lock-based RUA, per scheduling event:
//   1. build every job's dependency chain by following the chain of
//      resource request and ownership                      — O(n^2)
//   2. compute each job's potential utility density (PUD) over the
//      aggregate (job + dependents)                        — O(n^2)
//   3. detect dependency cycles (deadlock) and resolve by aborting the
//      least-utility job in the cycle                      — O(n^2)
//   4. sort jobs by non-increasing PUD                     — O(n log n)
//   5. greedily insert each aggregate into a tentative ECF schedule,
//      respecting dependencies (with critical-time clamping and
//      removal/reinsertion, Figures 4 and 5) and testing feasibility
//                                                          — O(n^2 log n)
//
// Lock-free RUA is the same algorithm with dependency chains reduced to
// the job itself: steps 1 and 3 vanish, 2 becomes O(n), 5 becomes
// O(n^2); the whole algorithm costs O(n^2).
#pragma once

#include <memory>

#include "sched/scheduler.hpp"

namespace lfrt::sched {

/// Object-sharing regime the scheduler is paired with.
enum class Sharing {
  kLockBased,  ///< mutual exclusion; dependency chains and blocking exist
  kLockFree,   ///< retry-based; dependencies never arise
};

/// RUA scheduler.  Construct with Sharing::kLockFree for lock-free RUA.
///
/// `detect_deadlocks` enables step 3.  The paper's apples-to-apples
/// comparison (Section 5) excludes nested critical sections, where
/// cycles cannot arise, and turns the detector off; it remains available
/// for the general algorithm and is exercised by tests with synthetic
/// cycles.
class RuaScheduler final : public Scheduler {
 public:
  explicit RuaScheduler(Sharing sharing, bool detect_deadlocks = false);

  ScheduleResult build(const std::vector<SchedJob>& jobs,
                       Time now) const override;

  std::string name() const override;

  Sharing sharing() const { return sharing_; }

 private:
  Sharing sharing_;
  bool detect_deadlocks_;
};

}  // namespace lfrt::sched
