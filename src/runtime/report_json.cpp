#include "runtime/report_json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <variant>
#include <vector>

namespace lfrt::runtime {
namespace {

// ---- writer ----------------------------------------------------------

void append_double(std::string& out, double v) {
  // max_digits10 so the decimal text reproduces the exact binary value.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_int(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

void append_job(std::string& out, const Job& j) {
  out += R"({"id":)";
  append_int(out, j.id);
  out += R"(,"task":)";
  append_int(out, j.task);
  out += R"(,"arrival":)";
  append_int(out, j.arrival);
  out += R"(,"critical_abs":)";
  append_int(out, j.critical_abs);
  out += R"(,"state":)";
  append_int(out, static_cast<std::int64_t>(j.state));
  out += R"(,"exec_actual":)";
  append_int(out, j.exec_actual);
  out += R"(,"retries":)";
  append_int(out, j.retries);
  out += R"(,"blockings":)";
  append_int(out, j.blockings);
  out += R"(,"preemptions":)";
  append_int(out, j.preemptions);
  out += R"(,"completion":)";
  append_int(out, j.completion);
  out += '}';
}

// ---- minimal JSON DOM + recursive-descent parser ---------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

struct JsonValue {
  // Numbers keep both views: is_int marks values parsed without '.',
  // 'e', so int64 fields round-trip exactly even past 2^53.
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;
  std::int64_t inum = 0;
  bool is_int = false;

  bool is_number() const { return std::holds_alternative<double>(v); }
  double as_double() const { return std::get<double>(v); }
  std::int64_t as_int() const {
    if (is_int) return inum;
    return static_cast<std::int64_t>(std::llround(std::get<double>(v)));
  }
  const JsonArray* as_array() const {
    auto* p = std::get_if<std::shared_ptr<JsonArray>>(&v);
    return p ? p->get() : nullptr;
  }
  const JsonObject* as_object() const {
    auto* p = std::get_if<std::shared_ptr<JsonObject>>(&v);
    return p ? p->get() : nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* why) const {
    throw std::runtime_error(std::string("report_json: ") + why +
                             " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.v = string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.v = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.v = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          // \uXXXX is not emitted by to_json; reject rather than decode.
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool integral = true;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = integral && c != '.' && c != 'e' && c != 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a number");
    const std::string_view text = s_.substr(start, pos_ - start);
    JsonValue v;
    double d = 0.0;
    const auto dres =
        std::from_chars(text.data(), text.data() + text.size(), d);
    if (dres.ec != std::errc{} || dres.ptr != text.data() + text.size())
      fail("malformed number");
    v.v = d;
    if (integral) {
      std::int64_t i = 0;
      const auto ires =
          std::from_chars(text.data(), text.data() + text.size(), i);
      if (ires.ec == std::errc{} && ires.ptr == text.data() + text.size()) {
        v.inum = i;
        v.is_int = true;
      }
    }
    return v;
  }

  JsonValue array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
    } else {
      for (;;) {
        arr->push_back(value());
        skip_ws();
        const char c = peek();
        ++pos_;
        if (c == ']') break;
        if (c != ',') fail("expected ',' or ']'");
      }
    }
    JsonValue v;
    v.v = std::move(arr);
    return v;
  }

  JsonValue object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      for (;;) {
        skip_ws();
        std::string key = string();
        skip_ws();
        expect(':');
        (*obj)[std::move(key)] = value();
        skip_ws();
        const char c = peek();
        ++pos_;
        if (c == '}') break;
        if (c != ',') fail("expected ',' or '}'");
      }
    }
    JsonValue v;
    v.v = std::move(obj);
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// ---- field extraction ------------------------------------------------

const JsonValue* find(const JsonObject& o, std::string_view key) {
  const auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

std::int64_t get_int(const JsonObject& o, std::string_view key,
                     std::int64_t fallback = 0) {
  const JsonValue* v = find(o, key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) throw std::runtime_error("report_json: non-numeric " +
                                                std::string(key));
  return v->as_int();
}

double get_double(const JsonObject& o, std::string_view key,
                  double fallback = 0.0) {
  const JsonValue* v = find(o, key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) throw std::runtime_error("report_json: non-numeric " +
                                                std::string(key));
  return v->as_double();
}

}  // namespace

std::string to_json(const RunReport& rep) {
  std::string out;
  out.reserve(256 + rep.jobs.size() * 160 + rep.contention.cells.size() * 24);
  out += R"({"counted_jobs":)";
  append_int(out, rep.counted_jobs);
  out += R"(,"completed":)";
  append_int(out, rep.completed);
  out += R"(,"aborted":)";
  append_int(out, rep.aborted);
  out += R"(,"accrued_utility":)";
  append_double(out, rep.accrued_utility);
  out += R"(,"max_possible_utility":)";
  append_double(out, rep.max_possible_utility);
  out += R"(,"dispatches":)";
  append_int(out, rep.dispatches);
  out += R"(,"sched_invocations":)";
  append_int(out, rep.sched_invocations);
  out += R"(,"sched_ops":)";
  append_int(out, rep.sched_ops);
  out += R"(,"total_retries":)";
  append_int(out, rep.total_retries);
  out += R"(,"total_blockings":)";
  append_int(out, rep.total_blockings);
  out += R"(,"total_preemptions":)";
  append_int(out, rep.total_preemptions);
  out += R"(,"jobs":[)";
  for (std::size_t i = 0; i < rep.jobs.size(); ++i) {
    if (i > 0) out += ',';
    append_job(out, rep.jobs[i]);
  }
  out += R"(],"contention":{"objects":)";
  append_int(out, rep.contention.objects);
  out += R"(,"tasks":)";
  append_int(out, rep.contention.tasks);
  out += R"(,"cells":[)";
  for (std::size_t i = 0; i < rep.contention.cells.size(); ++i) {
    const ContentionCell& c = rep.contention.cells[i];
    if (i > 0) out += ',';
    out += '[';
    append_int(out, c.ops);
    out += ',';
    append_int(out, c.retries);
    out += ',';
    append_int(out, c.blockings);
    out += ']';
  }
  out += "]}}";
  return out;
}

RunReport from_json(std::string_view json) {
  const JsonValue root = Parser(json).parse();
  const JsonObject* o = root.as_object();
  if (o == nullptr)
    throw std::runtime_error("report_json: top level must be an object");

  RunReport rep;
  rep.counted_jobs = get_int(*o, "counted_jobs");
  rep.completed = get_int(*o, "completed");
  rep.aborted = get_int(*o, "aborted");
  rep.accrued_utility = get_double(*o, "accrued_utility");
  rep.max_possible_utility = get_double(*o, "max_possible_utility");
  rep.dispatches = get_int(*o, "dispatches");
  rep.sched_invocations = get_int(*o, "sched_invocations");
  rep.sched_ops = get_int(*o, "sched_ops");
  rep.total_retries = get_int(*o, "total_retries");
  rep.total_blockings = get_int(*o, "total_blockings");
  rep.total_preemptions = get_int(*o, "total_preemptions");

  if (const JsonValue* jobs = find(*o, "jobs")) {
    const JsonArray* arr = jobs->as_array();
    if (arr == nullptr)
      throw std::runtime_error("report_json: jobs must be an array");
    rep.jobs.reserve(arr->size());
    for (const JsonValue& jv : *arr) {
      const JsonObject* jo = jv.as_object();
      if (jo == nullptr)
        throw std::runtime_error("report_json: job entries must be objects");
      Job j;
      j.id = get_int(*jo, "id", kNoJob);
      j.task = static_cast<TaskId>(get_int(*jo, "task", -1));
      j.arrival = get_int(*jo, "arrival");
      j.critical_abs = get_int(*jo, "critical_abs");
      const std::int64_t state = get_int(*jo, "state");
      if (state < 0 || state > static_cast<std::int64_t>(JobState::kAborted))
        throw std::runtime_error("report_json: job state out of range");
      j.state = static_cast<JobState>(state);
      j.exec_actual = get_int(*jo, "exec_actual");
      j.retries = get_int(*jo, "retries");
      j.blockings = get_int(*jo, "blockings");
      j.preemptions = get_int(*jo, "preemptions");
      j.completion = get_int(*jo, "completion", -1);
      rep.jobs.push_back(std::move(j));
    }
  }

  if (const JsonValue* cont = find(*o, "contention")) {
    const JsonObject* co = cont->as_object();
    if (co == nullptr)
      throw std::runtime_error("report_json: contention must be an object");
    const auto objects = static_cast<std::int32_t>(get_int(*co, "objects"));
    const auto tasks = static_cast<std::int32_t>(get_int(*co, "tasks"));
    if (objects < 0 || tasks < 0)
      throw std::runtime_error("report_json: negative contention dims");
    ContentionMatrix m(objects, tasks);
    const JsonValue* cells = find(*co, "cells");
    const JsonArray* arr = cells != nullptr ? cells->as_array() : nullptr;
    if (arr == nullptr)
      throw std::runtime_error("report_json: contention.cells must be an "
                               "array");
    if (arr->size() != m.cells.size())
      throw std::runtime_error(
          "report_json: cells length != objects * tasks");
    for (std::size_t i = 0; i < arr->size(); ++i) {
      const JsonArray* triple = (*arr)[i].as_array();
      if (triple == nullptr || triple->size() != 3 ||
          !(*triple)[0].is_number() || !(*triple)[1].is_number() ||
          !(*triple)[2].is_number())
        throw std::runtime_error(
            "report_json: each cell must be [ops, retries, blockings]");
      m.cells[i].ops = (*triple)[0].as_int();
      m.cells[i].retries = (*triple)[1].as_int();
      m.cells[i].blockings = (*triple)[2].as_int();
    }
    rep.contention = std::move(m);
  }

  return rep;
}

}  // namespace lfrt::runtime
