file(REMOVE_RECURSE
  "CMakeFiles/lfrt_task.dir/task.cpp.o"
  "CMakeFiles/lfrt_task.dir/task.cpp.o.d"
  "liblfrt_task.a"
  "liblfrt_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfrt_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
