#include "workload/workload.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace lfrt::workload {

TaskSet make_task_set(const WorkloadSpec& spec) {
  LFRT_CHECK(spec.task_count >= 1);
  LFRT_CHECK(spec.object_count >= 1);
  LFRT_CHECK(spec.avg_exec > 0);
  LFRT_CHECK(spec.exec_jitter >= 0.0 && spec.exec_jitter < 1.0);
  LFRT_CHECK(spec.load > 0.0);
  LFRT_CHECK_MSG(spec.load <= static_cast<double>(spec.task_count),
                 "per-task load share must not exceed 1");
  LFRT_CHECK(spec.accesses_per_job >= 0);
  LFRT_CHECK(spec.critical_fraction > 0.0 && spec.critical_fraction <= 1.0);
  LFRT_CHECK(spec.read_fraction >= 0.0 && spec.read_fraction <= 1.0);

  Rng rng(spec.seed);
  TaskSet ts;
  ts.object_count = spec.object_count;

  for (std::int32_t i = 0; i < spec.task_count; ++i) {
    TaskParams p;
    p.id = i;

    const double jitter = rng.uniform_real(-spec.exec_jitter, spec.exec_jitter);
    p.exec_time = std::max<Time>(
        1, static_cast<Time>(static_cast<double>(spec.avg_exec) *
                             (1.0 + jitter)));

    // Equal per-task load shares: u_i / C_i = load / N; the UAM window
    // stretches beyond the critical time by 1/critical_fraction.
    const Time critical = std::max<Time>(
        p.exec_time,
        static_cast<Time>(static_cast<double>(p.exec_time) *
                          static_cast<double>(spec.task_count) /
                          spec.load));
    const Time window = std::max<Time>(
        critical, static_cast<Time>(static_cast<double>(critical) /
                                    spec.critical_fraction));

    const double height = rng.uniform_real(10.0, 100.0);
    switch (spec.tuf_class) {
      case TufClass::kStep:
        p.tuf = make_step_tuf(height, critical);
        break;
      case TufClass::kHeterogeneous:
        switch (i % 3) {
          case 0:
            p.tuf = make_step_tuf(height, critical);
            break;
          case 1:
            p.tuf = make_linear_tuf(height, critical);
            break;
          default:
            p.tuf = make_parabolic_tuf(height, critical);
            break;
        }
        break;
    }

    p.arrival = UamSpec{std::min<std::int64_t>(1, spec.max_per_window),
                        spec.max_per_window, window};
    p.abort_handler_time = spec.abort_handler_time;

    if (spec.nest_depth > 0) {
      // One nest of `nest_depth` spans: span k acquires at offset
      // (k+1)*u/(2d+2) and releases at u - that same offset, over
      // distinct objects in a random order (enabling lock-order
      // cycles across jobs).
      LFRT_CHECK_MSG(spec.nest_depth <= spec.object_count,
                     "nest depth cannot exceed the object universe");
      std::vector<ObjectId> objs(
          static_cast<std::size_t>(spec.object_count));
      for (std::int32_t k = 0; k < spec.object_count; ++k)
        objs[static_cast<std::size_t>(k)] = k;
      for (std::size_t k = objs.size(); k > 1; --k)
        std::swap(objs[k - 1],
                  objs[static_cast<std::size_t>(
                      rng.uniform(0, static_cast<std::int64_t>(k) - 1))]);
      const Time step = p.exec_time / (2 * spec.nest_depth + 2);
      for (std::int32_t k = 0; k < spec.nest_depth; ++k) {
        p.spans.push_back({objs[static_cast<std::size_t>(k)],
                           step * (k + 1), p.exec_time - step * (k + 1)});
      }
    } else {
      std::vector<Time> offsets;
      for (std::int32_t k = 0; k < spec.accesses_per_job; ++k) {
        const Time lo = p.exec_time / 10;
        const Time hi = std::max(lo, p.exec_time * 9 / 10);
        offsets.push_back(rng.uniform(lo, hi));
      }
      std::sort(offsets.begin(), offsets.end());
      for (Time off : offsets) {
        const auto obj =
            static_cast<ObjectId>(rng.uniform(0, spec.object_count - 1));
        bool write = !rng.chance(spec.read_fraction);
        if (spec.single_writer_objects && obj % spec.task_count != i)
          write = false;
        p.accesses.push_back({obj, off, write});
      }
    }

    ts.tasks.push_back(std::move(p));
  }

  ts.validate();
  return ts;
}

}  // namespace lfrt::workload
