#include "sched/llf.hpp"

#include <algorithm>

namespace lfrt::sched {

ScheduleResult LlfScheduler::build(const std::vector<SchedJob>& jobs,
                                   Time now) const {
  ScheduleResult out;
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto laxity = [&](std::size_t i) {
    return jobs[i].critical - now - jobs[i].remaining;
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (laxity(a) != laxity(b)) return laxity(a) < laxity(b);
    return jobs[a].id < jobs[b].id;
  });
  std::int64_t cost = 1;
  for (std::size_t len = jobs.size(); len > 1; len >>= 1) ++cost;
  out.ops = static_cast<std::int64_t>(jobs.size()) * cost;

  out.schedule.reserve(order.size());
  for (std::size_t i : order) out.schedule.push_back(jobs[i].id);
  for (std::size_t i : order) {
    if (jobs[i].runnable()) {
      out.dispatch = jobs[i].id;
      break;
    }
  }
  return out;
}

}  // namespace lfrt::sched
