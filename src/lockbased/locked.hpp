// Generic lock-serialized structures, written once and parameterized by
// lock type.
//
// Every ObjectKind the unified access layer speaks (queue / stack /
// buffer / snapshot) gets one wrapper here, templated on a
// BasicLockable-shaped Lock (lock / unlock / try_lock) — std::mutex or
// any member of the zoo in locks.hpp.  The pre-zoo MutexQueue /
// MutexStack / MutexBuffer / MutexSnapshot are now aliases of these
// with Lock = std::mutex (mutex_queue.hpp / mutex_rw.hpp), so growing
// the zoo never forks the structure code: a new mechanism is a new
// template argument, not four new classes.
//
// Accounting is uniform across all locks: every acquire goes through
// Guard, which try_lock()s first — recording an uncontended acquisition
// on success and a contended one (a blocking episode / queue handoff,
// the paper's n_i event) before falling back to the blocking lock().
// record_acquisition feeds ObjectStats and, through the thread-local
// sinks, the per-job tallies and the (object, task) heatmap cell — so
// the three-way attribution invariants hold for every (kind, impl)
// combo, not just the mutex ones.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>

#include "runtime/object_stats.hpp"

namespace lfrt::lockbased {

namespace detail {

/// Scoped acquire with contention accounting (see header comment).
template <typename Lock>
class AccountedGuard {
 public:
  AccountedGuard(Lock& lock, runtime::ObjectStats& stats) : lock_(lock) {
    if (lock_.try_lock()) {
      stats.record_acquisition(/*was_contended=*/false);
    } else {
      stats.record_acquisition(/*was_contended=*/true);
      lock_.lock();
    }
  }
  ~AccountedGuard() { lock_.unlock(); }
  AccountedGuard(const AccountedGuard&) = delete;
  AccountedGuard& operator=(const AccountedGuard&) = delete;

 private:
  Lock& lock_;
};

}  // namespace detail

/// Unbounded lock-serialized MPMC FIFO.
template <typename T, typename Lock>
class LockedQueue {
 public:
  void enqueue(const T& value) {
    detail::AccountedGuard<Lock> g(lock_, stats_);
    q_.push_back(value);
    stats_.record_op();
  }

  std::optional<T> dequeue() {
    detail::AccountedGuard<Lock> g(lock_, stats_);
    stats_.record_op();
    if (q_.empty()) return std::nullopt;
    T value = q_.front();
    q_.pop_front();
    return value;
  }

  bool empty() const {
    detail::AccountedGuard<Lock> g(lock_, stats_);
    return q_.empty();
  }

  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  mutable Lock lock_;
  std::deque<T> q_;
  mutable runtime::ObjectStats stats_;
};

/// Unbounded lock-serialized MPMC LIFO.
template <typename T, typename Lock>
class LockedStack {
 public:
  void push(const T& value) {
    detail::AccountedGuard<Lock> g(lock_, stats_);
    s_.push_back(value);
    stats_.record_op();
  }

  std::optional<T> pop() {
    detail::AccountedGuard<Lock> g(lock_, stats_);
    stats_.record_op();
    if (s_.empty()) return std::nullopt;
    T value = s_.back();
    s_.pop_back();
    return value;
  }

  bool empty() const {
    detail::AccountedGuard<Lock> g(lock_, stats_);
    return s_.empty();
  }

  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  mutable Lock lock_;
  std::deque<T> s_;
  mutable runtime::ObjectStats stats_;
};

/// Lock-serialized state buffer: the lock-based answer to NBW's
/// single-writer message, without the single-writer restriction —
/// mutual exclusion already serializes writers, which is exactly the
/// flexibility-for-blocking trade the paper examines.
template <typename T, typename Lock>
class LockedBuffer {
 public:
  explicit LockedBuffer(const T& initial = T{}) : data_(initial) {}

  void write(const T& value) {
    detail::AccountedGuard<Lock> g(lock_, stats_);
    data_ = value;
    stats_.record_op();
  }

  T read() const {
    detail::AccountedGuard<Lock> g(lock_, stats_);
    stats_.record_op();
    return data_;
  }

  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  mutable Lock lock_;
  T data_;
  mutable runtime::ObjectStats stats_;
};

/// Lock-serialized N-segment snapshot: update one segment or scan all N
/// under one acquire.  Scans are trivially linearizable (the lock holds
/// every writer off) at the cost of blocking every concurrent access —
/// the contrast AtomicSnapshot's double-collect avoids.
template <typename T, std::size_t N, typename Lock>
class LockedSnapshot {
  static_assert(N >= 1, "need at least one segment");

 public:
  void update(std::size_t i, const T& value) {
    detail::AccountedGuard<Lock> g(lock_, stats_);
    segments_[i] = value;
    stats_.record_op();
  }

  std::array<T, N> scan() const {
    detail::AccountedGuard<Lock> g(lock_, stats_);
    stats_.record_op();
    return segments_;
  }

  T read(std::size_t i) const {
    detail::AccountedGuard<Lock> g(lock_, stats_);
    return segments_[i];
  }

  const runtime::ObjectStats& stats() const { return stats_; }

  static constexpr std::size_t size() { return N; }

 private:
  mutable Lock lock_;
  std::array<T, N> segments_{};
  mutable runtime::ObjectStats stats_;
};

}  // namespace lfrt::lockbased
