// Ablation: nested critical sections and deadlock handling.
//
// The general RUA model (paper, Section 3.3) allows nested sections and
// resolves the resulting deadlocks by aborting the least-utility job in
// the cycle.  This bench sweeps nesting depth on a contended object set
// and compares three configurations:
//
//   * lock-based RUA with deadlock detection ON  (the paper's general
//     algorithm: cycles are broken immediately)
//   * lock-based EDF with detection OFF (cycles pin their jobs until
//     critical-time expiry — what a detection-free system suffers)
//   * lock-free RUA on an equivalent flat-access workload (nesting is
//     excluded under lock-free sharing — Section 2 — so its column is
//     the dependency-free reference)
#include "common.hpp"
#include "sched/edf.hpp"

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bench::print_header("Ablation", "nesting depth, deadlock detection "
                                  "on/off vs lock-free");
  std::cout << "tasks=6  objects=4  AL=0.8  r=" << to_usec(usec(20))
            << "us  s=" << to_usec(bench::kDefaultS) << "us  seed=9\n\n";

  Table table({"depth", "config", "AUR", "CMR", "deadlocks", "aborted"});
  const sched::RuaScheduler rua_detect(sched::Sharing::kLockBased, true);
  const sched::EdfScheduler edf;
  const sched::RuaScheduler rua_lf(sched::Sharing::kLockFree);

  struct Config {
    const char* name;
    const TaskSet* ts;
    const sched::Scheduler* sch;
    sim::ShareMode mode;
  };
  constexpr int kReps = 5;
  const std::vector<int> depths = {1, 2, 3};

  // Task sets first (two per depth: nested + equivalent flat), so the
  // cell lambda only reads shared immutable state.
  std::vector<TaskSet> nested_sets, flat_sets;
  for (const int depth : depths) {
    workload::WorkloadSpec spec;
    spec.task_count = 6;
    spec.object_count = 4;
    spec.avg_exec = usec(300);
    spec.load = 0.8;
    spec.seed = 9;
    spec.nest_depth = depth;
    nested_sets.push_back(workload::make_task_set(spec));
    spec.nest_depth = 0;
    spec.accesses_per_job = depth;  // same per-job access count, flat
    flat_sets.push_back(workload::make_task_set(spec));
  }
  std::vector<Config> configs;
  for (std::size_t d = 0; d < depths.size(); ++d) {
    configs.push_back({"RUA + detection", &nested_sets[d], &rua_detect,
                       sim::ShareMode::kLockBased});
    configs.push_back({"EDF, no detection", &nested_sets[d], &edf,
                       sim::ShareMode::kLockBased});
    configs.push_back({"lock-free (flat)", &flat_sets[d], &rua_lf,
                       sim::ShareMode::kLockFree});
  }

  // Flat cell order: (depth, config, rep).
  const auto cells = static_cast<std::int64_t>(configs.size()) * kReps;
  const auto reports =
      exp::parallel_map(bench::pool(), cells, [&](std::int64_t cell) {
        const Config& c = configs[static_cast<std::size_t>(cell / kReps)];
        const auto rep = static_cast<std::uint64_t>(cell % kReps);
        sim::SimConfig cfg;
        cfg.mode = c.mode;
        cfg.lock_access_time = usec(20);
        cfg.lockfree_access_time = bench::kDefaultS;
        cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
        Time max_window = 0;
        for (const auto& t : c.ts->tasks)
          max_window = std::max(max_window, t.arrival.window);
        cfg.horizon = max_window * 80;
        sim::Simulator s(*c.ts, *c.sch, cfg);
        s.seed_arrivals(100 + rep);
        return s.run();
      });

  std::size_t at = 0;
  for (std::size_t d = 0; d < depths.size(); ++d) {
    for (int ci = 0; ci < 3; ++ci) {
      const Config& c = configs[d * 3 + static_cast<std::size_t>(ci)];
      RunningStats aur, cmr;
      std::int64_t deadlocks = 0, aborted = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        const sim::SimReport& out = reports[at++];
        aur.add(out.aur());
        cmr.add(out.cmr());
        deadlocks += out.deadlocks_resolved;
        aborted += out.aborted;
      }
      table.add_row({std::to_string(depths[d]), c.name,
                     Table::num(aur.mean(), 3), Table::num(cmr.mean(), 3),
                     std::to_string(deadlocks), std::to_string(aborted)});
    }
  }
  table.print();
  std::cout << "\nExpected shape: deeper nesting holds locks longer and "
               "creates lock-order cycles; detection converts them into "
               "single-victim aborts, while the detection-free "
               "configuration loses every cycle member to critical-time "
               "expiry.  Lock-free sharing sidesteps the problem class "
               "entirely (at the price of excluding nested sharing).\n";
  return 0;
}
