// analysis::mp — multiprocessor blocking/retry analysis frontend.
//
// The uniprocessor theorems in bounds.hpp charge retries to scheduling
// events; on the M-worker executor a CAS can fail with *no* scheduling
// event anywhere — another worker's op landed first.  This module
// derives per-(object, task) count bounds in the style of the
// multiprocessor literature (PAPERS.md: Brandenburg's locking-protocol
// survey for the spin-lock terms, LEFT-RS for the lock-free ones) and
// certifies every measured ContentionMatrix cell against them.
//
// The charging arguments (all derivations in DESIGN.md §11):
//
// * Lock-free retries.  A failed CAS means the structure changed inside
//   the loser's read → CAS window, so every retry is chargeable to a
//   distinct shared-state transition by a *conflicting op* that
//   overlaps the job — LEFT-RS's discipline, not Theorem 2's
//   scheduling-event count.  Transitions per logical write access are
//   a small per-kind constant (MS queue: link + tail swing per enqueue,
//   head swing + tail fix per dequeue; Treiber: one top swing per
//   push/pop), plus one "stale sighting" per own structure op (a lag
//   left by a writer preempted mid-enqueue predates the attempt).
//
// * Spin-lock blockings.  A contended acquisition requires a
//   conflicting *hold* in flight, and one hold blocks a given job at
//   most once (re-blocking needs an intervening release), so a job's
//   blockings on object o are bounded by the conflicting holds that can
//   overlap it.  This is the count dimension; the FIFO-vs-unordered
//   distinction (ticket/anderson/mcs vs mutex) lives in the *time*
//   bounds, where a FIFO acquisition waits for at most
//   min(workers - 1, conflicting jobs) predecessor critical sections
//   while an unordered mutex can be barged by every conflicting
//   request.
//
// * Backoff spins.  Every recorded retry executes at most one
//   Backoff::pause() of at most kMaxSpins relax hints, so
//   backoff_spins <= kMaxSpins * retries per job — an invariant of the
//   ladder that certify() checks job by job.
//
// * Conflict-group refinement.  When sched::DispatchSelector runs with
//   strict conflict groups (set_strict_groups(true): deferred
//   same-group jobs are NOT refilled into free slots), two tasks of one
//   group never co-dispatch, their structure ops cannot overlap, and
//   both bound families drop the same-group conflict terms.  The
//   default (work-conserving) steering can still co-dispatch a deferred
//   job into an idle slot, so the refinement is only applied when
//   MpOptions::strict_groups says the run really held that guarantee.
//
// Everything saturates (support/saturate.hpp): a bound may be
// infinitely pessimistic, never negative.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/cost_model.hpp"
#include "runtime/object_spec.hpp"
#include "runtime/run_report.hpp"
#include "sched/placement.hpp"
#include "task/task.hpp"

namespace lfrt::sched {
class DispatchSelector;
}

namespace lfrt::analysis::mp {

/// Which substrate produced the report being certified.  The executor's
/// NBW/snapshot *readers* record one retry per spin iteration while a
/// writer is mid-flight — a duration-coupled count no arrival curve
/// bounds — so those cells certify as unbounded.  The simulator models
/// at most one retry per completed attempt, which the transition charge
/// does bound.
enum class Substrate {
  kExecutor,
  kSimulator,
};

struct MpOptions {
  int cpu_count = 1;
  Substrate substrate = Substrate::kExecutor;

  /// Per-task conflict groups (task -> group id, -1 = ungrouped), the
  /// vector sched::DispatchSelector::conflict_groups() holds.  Empty =
  /// no steering.
  std::vector<std::int32_t> conflict_groups;

  /// Apply the same-group exclusion.  Only sound when the selector ran
  /// with set_strict_groups(true) for the whole run.
  bool strict_groups = false;

  /// Placement the run executed under.  When non-global with
  /// scope_objects (the substrates' per-cluster queue/stack instancing),
  /// two placed tasks in different clusters touch disjoint instances of
  /// every scoped object, so their accesses contribute ZERO to each
  /// other's retry/blocking conflict terms — a structural separation,
  /// not a scheduling accident.  Buffer/snapshot objects stay shared and
  /// keep their full conflict terms.  Only sound when the run really
  /// held this placement for its whole duration.
  sched::Placement placement;
};

/// MpOptions seeded from a live selector: copies its conflict groups
/// and strict flag.  The caller still owns cpu_count/substrate.
MpOptions options_from_selector(const sched::DispatchSelector& sel,
                                int cpu_count, Substrate substrate);

/// Jobs of task j whose execution can overlap one fixed job window of
/// length `window`: a_j * (ceil((window + C_j) / W_j) + 1), the
/// straddle-generous UAM arrival curve (alive-at-start jobs arrived up
/// to C_j earlier).  Saturating.
std::int64_t overlapping_jobs(const TaskSet& ts, TaskId j, Time window);

/// Write / total accesses one job of task i makes to object o.
std::int64_t writes_to(const TaskSet& ts, TaskId i, ObjectId o);
std::int64_t accesses_to(const TaskSet& ts, TaskId i, ObjectId o);

/// True when tasks i and j are barred from co-dispatch under opt
/// (same non-negative conflict group and strict_groups set).
bool co_dispatch_prevented(const MpOptions& opt, TaskId i, TaskId j);

/// True when tasks i and j touch disjoint per-cluster instances of the
/// (queue/stack) object described by `spec` under opt.placement — their
/// accesses can never conflict.  Always false for buffer/snapshot kinds,
/// global placement, unscoped placements, or unplaced tasks.
bool placement_separated(const MpOptions& opt,
                         const runtime::ObjectSpec& spec, TaskId i, TaskId j);

/// Per-JOB lock-free retry bound for task i on object o, i.e. the
/// transition charge over every conflicting op that can overlap one job
/// of i, plus the stale-sighting term.  Returns support::kSaturated for
/// cells the model cannot bound (executor buffer/snapshot cells where
/// task i reads).  Lock-based impls retry nowhere: 0.
std::int64_t retry_job_bound(const TaskSet& ts, TaskId i, ObjectId o,
                             const runtime::ObjectSpec& spec,
                             const MpOptions& opt);

/// Per-JOB blocking bound for task i on object o: the conflicting holds
/// that can overlap one job of i.  Lock-free impls block nowhere: 0.
std::int64_t blocking_job_bound(const TaskSet& ts, TaskId i, ObjectId o,
                                const runtime::ObjectSpec& spec,
                                const MpOptions& opt);

/// Workers that can simultaneously touch object o: min(cpu_count,
/// tasks accessing o after collapsing strict conflict groups).  The W
/// of the FIFO spin term.
std::int64_t worker_cap(const TaskSet& ts, ObjectId o, const MpOptions& opt);

/// Same, from the viewpoint of task `i` on the object described by
/// `spec`: accessors placement-separated from i touch a different
/// instance and are excluded.  Equals the 3-arg form whenever the
/// placement separates nothing.
std::int64_t worker_cap(const TaskSet& ts, ObjectId o, const MpOptions& opt,
                        const runtime::ObjectSpec& spec, TaskId i);

/// Conflicting jobs that can overlap one job of task i on object o
/// (the n_i of the spin terms, object-resolved).
std::int64_t conflicting_jobs(const TaskSet& ts, TaskId i, ObjectId o,
                              const MpOptions& opt);

/// Same, placement-aware: jobs of tasks placement-separated from i are
/// not conflicting (disjoint instances).
std::int64_t conflicting_jobs(const TaskSet& ts, TaskId i, ObjectId o,
                              const MpOptions& opt,
                              const runtime::ObjectSpec& spec);

/// Worst spin-blocking TIME one job of task i spends on object o, from
/// the calibrated AccessCost cell.  Critical-section length is
/// access_cost(cell, ..., contenders = min(m_i, n_i)) — the paper's
/// contender cap, object-resolved.  FIFO locks (ticket/anderson/mcs)
/// wait at most min(worker_cap - 1, n_i) predecessors per acquisition;
/// an unordered mutex can be barged by every conflicting hold, but each
/// conflicting hold delays the job at most once overall, so both are
/// also capped by the total conflicting-hold charge.  0 for lock-free.
Time spin_block_time_bound(const TaskSet& ts, TaskId i, ObjectId o,
                           const runtime::ObjectSpec& spec,
                           const runtime::CostModel& model,
                           const MpOptions& opt);

/// Worst retry TIME one job of task i spends on object o: the retry
/// count bound priced at the cell's retried-attempt cost.  0 for
/// lock-based impls; kTimeNever-saturated when the count is unbounded.
Time retry_time_bound(const TaskSet& ts, TaskId i, ObjectId o,
                      const runtime::ObjectSpec& spec,
                      const runtime::CostModel& model, const MpOptions& opt);

// --- end-to-end certifier -------------------------------------------

/// One measured heatmap cell against its analytical bound.  `bound` is
/// the per-cell total (per-job bound * jobs the report counted for the
/// task); `unbounded` marks cells the model declines to bound (their
/// measurement is reported, not gated).
struct CellCheck {
  ObjectId object = kNoObject;
  TaskId task = -1;
  std::int64_t measured = 0;
  std::int64_t bound = 0;
  bool unbounded = false;
  bool ok = true;

  /// Fraction of the bound left unused (1.0 = untouched, 0.0 = tight,
  /// negative = violated); 1.0 for unbounded or zero-bound-zero-measured
  /// cells.
  double slack() const;
};

/// Per-job backoff-ladder invariant for one task:
/// backoff_spins <= Backoff::kMaxSpins * retries, worst job reported.
struct BackoffCheck {
  TaskId task = -1;
  std::int64_t measured = 0;  ///< worst per-job spins
  std::int64_t bound = 0;     ///< kMaxSpins * that job's retries
  bool ok = true;
};

/// Per-task time-dimension analytics (reported, not gated — the
/// heatmap has no per-cell time axis to compare against).
struct TaskTimeBounds {
  TaskId task = -1;
  Time spin_block_time = 0;  ///< sum over objects, per job
  Time retry_time = 0;       ///< sum over objects, per job
};

struct Certificate {
  bool ok = true;
  std::int64_t cells_checked = 0;
  std::int64_t violations = 0;
  std::vector<CellCheck> retries;    ///< objects x tasks
  std::vector<CellCheck> blockings;  ///< objects x tasks
  std::vector<BackoffCheck> backoff;
  std::vector<TaskTimeBounds> time_bounds;
  /// Minimum slack over checked (non-unbounded) cells with a nonzero
  /// bound; 1.0 when no such cell exists.
  double min_slack = 1.0;
};

/// Certify every measured ContentionMatrix cell of `rep` (retries and
/// blockings per object x task, plus the per-job backoff invariant)
/// against the analytical bounds for `ts` under `specs`.  The cost
/// model prices the reported time bounds.  An empty heatmap certifies
/// trivially (ok, 0 cells).
Certificate certify(const runtime::RunReport& rep, const TaskSet& ts,
                    const std::vector<runtime::ObjectSpec>& specs,
                    const runtime::CostModel& model,
                    const MpOptions& opt = {});

}  // namespace lfrt::analysis::mp

namespace lfrt::analysis {
// The certifier is the module's public face; make the ISSUE/ROADMAP
// spelling analysis::certify(...) work unqualified.
using mp::certify;
}  // namespace lfrt::analysis
