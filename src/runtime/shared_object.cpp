#include "runtime/shared_object.hpp"

#include <chrono>
#include <mutex>

#include "lockbased/locked.hpp"
#include "lockbased/locks.hpp"
#include "lockfree/sharded.hpp"
#include "lockfree/snapshot.hpp"
#include "lockfree/nbw_buffer.hpp"
#include "support/check.hpp"

namespace lfrt::runtime {

namespace {

// --- lock-based adapters: Locked*<int, Lock> behind the detail::Lb*
//     interfaces, one factory switch per kind over the zoo ---

template <typename Lock>
class QueueAdapter final : public detail::LbQueue {
 public:
  void enqueue(int v) override { q_.enqueue(v); }
  std::optional<int> dequeue() override { return q_.dequeue(); }
  bool empty() const override { return q_.empty(); }
  const ObjectStats& stats() const override { return q_.stats(); }

 private:
  lockbased::LockedQueue<int, Lock> q_;
};

template <typename Lock>
class StackAdapter final : public detail::LbStack {
 public:
  void push(int v) override { s_.push(v); }
  std::optional<int> pop() override { return s_.pop(); }
  bool empty() const override { return s_.empty(); }
  const ObjectStats& stats() const override { return s_.stats(); }

 private:
  lockbased::LockedStack<int, Lock> s_;
};

template <typename Lock>
class BufferAdapter final : public detail::LbBuffer {
 public:
  void write(int v) override { b_.write(v); }
  int read() override { return b_.read(); }
  const ObjectStats& stats() const override { return b_.stats(); }

 private:
  lockbased::LockedBuffer<int, Lock> b_;
};

template <typename Lock>
class SnapshotAdapter final : public detail::LbSnapshot {
 public:
  void update(std::size_t i, int v) override { s_.update(i, v); }
  std::array<int, kSnapshotSegments> scan() override { return s_.scan(); }
  const ObjectStats& stats() const override { return s_.stats(); }

 private:
  lockbased::LockedSnapshot<int, kSnapshotSegments, Lock> s_;
};

// `make` builds the impl-selected instantiation of one kind's adapter.
// Adapter<Lock> is passed as a template-template so the switch over the
// zoo is written once, not once per kind.
template <template <typename> class Adapter, typename Interface>
std::unique_ptr<Interface> make(ObjectImpl impl) {
  switch (impl) {
    case ObjectImpl::kMutex:  // == kLockBased (alias)
      return std::make_unique<Adapter<std::mutex>>();
    case ObjectImpl::kTicket:
      return std::make_unique<Adapter<lockbased::TicketLock>>();
    case ObjectImpl::kAnderson:
      return std::make_unique<Adapter<lockbased::AndersonArrayLock>>();
    case ObjectImpl::kMcs:
      return std::make_unique<Adapter<lockbased::McsLock>>();
    case ObjectImpl::kLockFree:
      break;  // caller forked on is_lock_based already
  }
  LFRT_CHECK_MSG(false, "make: not a lock-based impl");
  return nullptr;
}

inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Accumulates structure-op time across the access, excluding whatever
/// runs between segments (the checkpoint), and records one sample.
class LatencyProbe {
 public:
  explicit LatencyProbe(LatencyHistogram* hist) : hist_(hist) {}

  void begin() { start_ = now_ns(); }
  void end() { elapsed_ += now_ns() - start_; }

  void commit() {
    if (hist_ != nullptr) hist_->record(elapsed_);
  }

 private:
  LatencyHistogram* hist_;
  std::int64_t start_ = 0;
  std::int64_t elapsed_ = 0;
};

}  // namespace

// --- ObjectRegistry ---

ObjectRegistry::ObjectRegistry(std::int32_t object_count,
                               std::int32_t task_count)
    : objects_(object_count),
      tasks_(task_count),
      cells_(std::make_unique<AtomicAccessCell[]>(
          static_cast<std::size_t>(object_count) *
          static_cast<std::size_t>(task_count))) {}

AtomicAccessCell* ObjectRegistry::cell(ObjectId object, TaskId task) {
  if (object < 0 || object >= objects_ || task < 0 || task >= tasks_)
    return nullptr;
  return &cells_[static_cast<std::size_t>(object) *
                     static_cast<std::size_t>(tasks_) +
                 static_cast<std::size_t>(task)];
}

ContentionMatrix ObjectRegistry::to_matrix() const {
  ContentionMatrix m(objects_, tasks_);
  for (std::int32_t o = 0; o < objects_; ++o) {
    for (std::int32_t t = 0; t < tasks_; ++t) {
      const AtomicAccessCell& c =
          cells_[static_cast<std::size_t>(o) * static_cast<std::size_t>(tasks_) +
                 static_cast<std::size_t>(t)];
      ContentionCell& out = m.at(o, t);
      out.ops = c.ops.load(std::memory_order_relaxed);
      out.retries = c.retries.load(std::memory_order_relaxed);
      out.blockings = c.blockings.load(std::memory_order_relaxed);
    }
  }
  return m;
}

// --- SharedObject ---

SharedObject::SharedObject(ObjectSpec spec, std::size_t queue_capacity)
    : spec_(spec) {
  const bool lf = !is_lock_based(spec.impl);
  switch (spec.kind) {
    case ObjectKind::kQueue:
      if (lf)
        lf_queue_ = std::make_unique<lockfree::ShardedQueue<int>>(
            queue_capacity, clamp_shards(spec.shards));
      else
        lb_queue_ = make<QueueAdapter, detail::LbQueue>(spec.impl);
      break;
    case ObjectKind::kStack:
      if (lf)
        lf_stack_ = std::make_unique<lockfree::ShardedStack<int>>(
            queue_capacity, clamp_shards(spec.shards));
      else
        lb_stack_ = make<StackAdapter, detail::LbStack>(spec.impl);
      break;
    case ObjectKind::kBuffer:
      if (lf)
        lf_buffer_ = std::make_unique<lockfree::NbwBuffer<int>>();
      else
        lb_buffer_ = make<BufferAdapter, detail::LbBuffer>(spec.impl);
      break;
    case ObjectKind::kSnapshot:
      if (lf)
        lf_snapshot_ = std::make_unique<
            lockfree::AtomicSnapshot<int, kSnapshotSegments>>();
      else
        lb_snapshot_ = make<SnapshotAdapter, detail::LbSnapshot>(spec.impl);
      break;
  }
}

SharedObject::~SharedObject() = default;

std::int32_t SharedObject::shards() const {
  if (lf_queue_) return lf_queue_->active();
  if (lf_stack_) return lf_stack_->active();
  return 1;
}

void SharedObject::set_shards(std::int32_t k) {
  if (lf_queue_) lf_queue_->set_active(k);
  else if (lf_stack_) lf_stack_->set_active(k);
  // Every other shape is structurally unsharded: ignore.
}

ObjectCounts SharedObject::counts() const {
  if (lf_queue_) return lf_queue_->counts();
  if (lf_stack_) return lf_stack_->counts();
  if (lf_buffer_) return lf_buffer_->stats().counts();
  if (lf_snapshot_) return lf_snapshot_->stats().counts();
  if (lb_queue_) return lb_queue_->stats().counts();
  if (lb_stack_) return lb_stack_->stats().counts();
  if (lb_buffer_) return lb_buffer_->stats().counts();
  return lb_snapshot_->stats().counts();
}

std::int64_t SharedObject::eliminations() const {
  return lf_stack_ ? lf_stack_->eliminations() : 0;
}

void SharedObject::access(AccessOp op, TaskId task, JobId job,
                          const std::function<void()>& checkpoint,
                          AtomicAccessCell* cell) {
  ScopedCellSink sink(cell);
  const int v = static_cast<int>(job);
  // Stripe affinity: a stable task id maps to a stable stripe while the
  // active count is unchanged, and a write's pop starts on the stripe
  // its push used.
  const std::int32_t hint = task < 0 ? 0 : static_cast<std::int32_t>(task);
  LatencyProbe probe(&latency_);

  switch (spec_.kind) {
    case ObjectKind::kQueue:
    case ObjectKind::kStack: {
      if (op == AccessOp::kWrite) {
        // Insert, expose the mid-access abort window, remove.  A throw
        // from the checkpoint rolls the insert back first, so occupancy
        // stays balanced without an abort handler.
        auto push = [&] {
          // Full-pool inserts are dropped, as the pre-refactor adapter
          // did; capacity is sized so balanced accesses never fill it.
          if (lf_queue_) (void)lf_queue_->push(v, hint);
          else if (lb_queue_) lb_queue_->enqueue(v);
          else if (lf_stack_) (void)lf_stack_->push(v, hint);
          else lb_stack_->push(v);
        };
        auto pop = [&] {
          if (lf_queue_) (void)lf_queue_->pop(hint);
          else if (lb_queue_) (void)lb_queue_->dequeue();
          else if (lf_stack_) (void)lf_stack_->pop(hint);
          else (void)lb_stack_->pop();
        };
        probe.begin();
        push();
        probe.end();
        try {
          checkpoint();
        } catch (...) {
          pop();
          throw;
        }
        probe.begin();
        pop();
        probe.end();
      } else {
        // Reads probe emptiness: a constant-time observation that still
        // exercises the structure's shared state under interference.
        probe.begin();
        if (lf_queue_) (void)lf_queue_->empty();
        else if (lb_queue_) (void)lb_queue_->empty();
        else if (lf_stack_) (void)lf_stack_->empty();
        else (void)lb_stack_->empty();
        probe.end();
        checkpoint();
      }
      break;
    }

    case ObjectKind::kBuffer: {
      probe.begin();
      if (op == AccessOp::kWrite) {
        if (lf_buffer_) {
          // Serialize writers to uphold NBW's single-writer
          // precondition; the guard is released before the checkpoint.
          std::lock_guard<std::mutex> g(writer_mu_);
          lf_buffer_->write(v);
        } else {
          lb_buffer_->write(v);
        }
      } else {
        if (lf_buffer_) (void)lf_buffer_->read();
        else (void)lb_buffer_->read();
      }
      probe.end();
      checkpoint();
      break;
    }

    case ObjectKind::kSnapshot: {
      const std::size_t seg =
          static_cast<std::size_t>(task < 0 ? 0 : task) % kSnapshotSegments;
      probe.begin();
      if (op == AccessOp::kWrite) {
        if (lf_snapshot_) {
          // Same single-writer scaffolding as the buffer: updates
          // serialize (even to different segments) so concurrent jobs
          // of one task can't co-write a segment.
          std::lock_guard<std::mutex> g(writer_mu_);
          lf_snapshot_->update(seg, v);
        } else {
          lb_snapshot_->update(seg, v);
        }
      } else {
        if (lf_snapshot_) (void)lf_snapshot_->scan();
        else (void)lb_snapshot_->scan();
      }
      probe.end();
      checkpoint();
      break;
    }
  }

  probe.commit();
  if (cell != nullptr) cell->ops.fetch_add(1, std::memory_order_relaxed);
}

// --- SharedObjectSet ---

SharedObjectSet::SharedObjectSet(std::vector<ObjectSpec> specs,
                                 std::int32_t task_count,
                                 std::size_t queue_capacity)
    : SharedObjectSet(std::move(specs), task_count, queue_capacity, 1, {}) {}

SharedObjectSet::SharedObjectSet(
    std::vector<ObjectSpec> specs, std::int32_t task_count,
    std::size_t queue_capacity, std::int32_t instance_count,
    const std::vector<std::int32_t>& task_instance)
    : specs_(std::move(specs)),
      task_count_(task_count),
      registry_(static_cast<std::int32_t>(specs_.size()), task_count) {
  LFRT_CHECK(instance_count >= 1);
  base_.reserve(specs_.size());
  inst_count_.reserve(specs_.size());
  for (const ObjectSpec& s : specs_) {
    const std::int32_t n = is_scoped_kind(s.kind) ? instance_count : 1;
    base_.push_back(objects_.size());
    inst_count_.push_back(n);
    for (std::int32_t i = 0; i < n; ++i)
      objects_.push_back(std::make_unique<SharedObject>(s, queue_capacity));
  }
  if (task_count_ > 0) {
    task_instance_ = std::make_unique<std::atomic<std::int32_t>[]>(
        static_cast<std::size_t>(task_count_));
    for (std::int32_t t = 0; t < task_count_; ++t) {
      const std::int32_t inst =
          static_cast<std::size_t>(t) < task_instance.size()
              ? task_instance[static_cast<std::size_t>(t)]
              : 0;
      task_instance_[static_cast<std::size_t>(t)].store(
          inst, std::memory_order_relaxed);
    }
  }
}

void SharedObjectSet::set_task_instance(TaskId task, std::int32_t inst) {
  if (task < 0 || task >= task_count_) return;
  task_instance_[static_cast<std::size_t>(task)].store(
      inst, std::memory_order_relaxed);
}

std::int32_t SharedObjectSet::task_instance(TaskId task) const {
  if (task < 0 || task >= task_count_) return 0;
  return task_instance_[static_cast<std::size_t>(task)].load(
      std::memory_order_relaxed);
}

void SharedObjectSet::access(ObjectId o, AccessOp op, TaskId task, JobId job,
                             const std::function<void()>& checkpoint) {
  LFRT_CHECK_MSG(o >= 0 && o < object_count(), "object id out of range");
  const std::int32_t n = inst_count_[static_cast<std::size_t>(o)];
  // One relaxed read per access: the paired insert+remove of a write
  // can never straddle a migration, so per-instance occupancy stays
  // balanced.
  std::int32_t i = n > 1 ? task_instance(task) : 0;
  if (i < 0 || i >= n) i = 0;
  instance(o, i)->access(op, task, job, checkpoint, registry_.cell(o, task));
}

ObjectCounts SharedObjectSet::counts_of(ObjectId o) const {
  ObjectCounts total;
  for (std::int32_t i = 0; i < inst_count_[static_cast<std::size_t>(o)]; ++i)
    total += instance(o, i)->counts();
  return total;
}

void SharedObjectSet::set_shards(ObjectId o, std::int32_t k) {
  for (std::int32_t i = 0; i < inst_count_[static_cast<std::size_t>(o)]; ++i)
    instance(o, i)->set_shards(k);
}

std::int64_t SharedObjectSet::eliminations_of(ObjectId o) const {
  std::int64_t total = 0;
  for (std::int32_t i = 0; i < inst_count_[static_cast<std::size_t>(o)]; ++i)
    total += instance(o, i)->eliminations();
  return total;
}

ContentionMatrix SharedObjectSet::matrix() const {
  ContentionMatrix m = registry_.to_matrix();
  m.shard_counts.reserve(specs_.size());
  for (ObjectId o = 0; o < object_count(); ++o)
    m.shard_counts.push_back(shards_of(o));
  return m;
}

}  // namespace lfrt::runtime
