// Per-object shared-object specification — the vocabulary both
// execution substrates speak.
//
// Brandenburg's locking-protocol survey organizes results by *access
// pattern* (queue/stack vs reader-writer vs snapshot) and by
// *mechanism* (how an acquire waits); this header is both axes for our
// object universe.  An ObjectSpec names, for one ObjectId, (a) the
// access pattern the object serves (kind) and (b) the synchronization
// mechanism implementing it (impl) — lock-free CAS retries or one of
// the lock zoo's mechanisms (std::mutex, ticket, Anderson array, MCS
// queue; lockbased/locks.hpp).  The simulator uses the impl to pick its
// per-object cost/blocking model (runtime/cost_model.hpp); the executor
// adapter (runtime::SharedObject) instantiates the matching real
// structure.  Deliberately header-light: sim::SimConfig includes this
// without dragging in src/lockfree / src/lockbased.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace lfrt::runtime {

/// Access pattern of one shared object.
enum class ObjectKind : std::uint8_t {
  kQueue,     ///< MPMC FIFO (MS queue / locked queue) — the paper's shape
  kStack,     ///< MPMC LIFO (Treiber stack / locked stack)
  kBuffer,    ///< single-writer state message (NBW buffer / locked buffer)
  kSnapshot,  ///< N-segment atomic snapshot (double-collect / locked)
};

/// Synchronization mechanism implementing the object.
enum class ObjectImpl : std::uint8_t {
  kLockFree,  ///< CAS/version retries under interference (f_i events)
  kMutex,     ///< std::mutex mutual exclusion; blocking episodes (n_i)
  kTicket,    ///< FIFO ticket spin lock — all waiters share one word
  kAnderson,  ///< FIFO array spin lock — padded per-waiter slots
  kMcs,       ///< FIFO queue spin lock — local spin, one-line handoff

  /// Deprecated alias for the pre-zoo name: "lock-based" meant the one
  /// mutex implementation.  Kept so existing code and configs compile
  /// and parse unchanged; serializes as "mutex".
  kLockBased = kMutex,
};

/// Number of distinct ObjectImpl mechanisms (alias excluded).
inline constexpr std::size_t kObjectImplCount = 5;
/// Number of ObjectKind access patterns.
inline constexpr std::size_t kObjectKindCount = 4;

/// Every kind / every distinct impl, in enum order — the sweep axes the
/// heatmap and crossover benches iterate.
inline constexpr std::array<ObjectKind, kObjectKindCount> all_object_kinds() {
  return {ObjectKind::kQueue, ObjectKind::kStack, ObjectKind::kBuffer,
          ObjectKind::kSnapshot};
}
inline constexpr std::array<ObjectImpl, kObjectImplCount> all_object_impls() {
  return {ObjectImpl::kLockFree, ObjectImpl::kMutex, ObjectImpl::kTicket,
          ObjectImpl::kAnderson, ObjectImpl::kMcs};
}
/// The lock mechanisms only (everything that blocks rather than
/// retries), in enum order.
inline constexpr std::array<ObjectImpl, kObjectImplCount - 1> lock_impls() {
  return {ObjectImpl::kMutex, ObjectImpl::kTicket, ObjectImpl::kAnderson,
          ObjectImpl::kMcs};
}

/// Whether `impl` serializes by blocking (any lock mechanism) as
/// opposed to retrying (lock-free).  The simulator's blocking-vs-retry
/// fork and the controller's shardability test key off this, never off
/// equality with one particular lock.
inline constexpr bool is_lock_based(ObjectImpl impl) {
  return impl != ObjectImpl::kLockFree;
}

/// Hard cap on the shard fan-out of one object (compile-time: shard
/// headers and the simulator's per-shard conflict state are sized by
/// it).  8 stripes already spread 8 hammering tasks one-per-stripe.
inline constexpr std::int32_t kMaxObjectShards = 8;

/// Segment fan-out of snapshot-kind objects (fixed at compile time; the
/// writer's segment is chosen by task id modulo this).  Lives here —
/// not in shared_object.hpp — because the cost model's per-segment scan
/// term needs it without depending on the access layer.
inline constexpr std::size_t kSnapshotSegments = 4;

/// One shared object of a run's universe, indexed by ObjectId.
struct ObjectSpec {
  ObjectKind kind = ObjectKind::kQueue;
  ObjectImpl impl = ObjectImpl::kLockFree;

  /// Initial stripe count of a lock-free queue/stack (clamped to
  /// [1, kMaxObjectShards]; other kinds ignore it): accesses spread
  /// over `shards` independent structures by task affinity, so tasks
  /// landing on different stripes stop invalidating each other's CAS
  /// windows.  1 — the default — is the unsharded structure.
  std::int32_t shards = 1;

  /// Opt this object into the online ContentionController: its stripe
  /// count is then promoted/demoted at run time from the live
  /// ContentionMatrix (shards above is the starting point and the
  /// demotion floor).
  bool adapt = false;

  friend bool operator==(const ObjectSpec&, const ObjectSpec&) = default;
};

/// ObjectSpec::shards clamped to the representable range.
inline std::int32_t clamp_shards(std::int32_t shards) {
  if (shards < 1) return 1;
  if (shards > kMaxObjectShards) return kMaxObjectShards;
  return shards;
}

// to_string for both enums is exhaustive by construction: no default
// case, so -Wswitch flags a new enumerator at compile time, and the
// trailing unreachable keeps a corrupted value from leaking a "?" into
// JSON output.

inline std::string to_string(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kQueue:
      return "queue";
    case ObjectKind::kStack:
      return "stack";
    case ObjectKind::kBuffer:
      return "buffer";
    case ObjectKind::kSnapshot:
      return "snapshot";
  }
  __builtin_unreachable();
}

inline std::string to_string(ObjectImpl impl) {
  switch (impl) {
    case ObjectImpl::kLockFree:
      return "lock-free";
    case ObjectImpl::kMutex:  // == kLockBased (alias)
      return "mutex";
    case ObjectImpl::kTicket:
      return "ticket";
    case ObjectImpl::kAnderson:
      return "anderson";
    case ObjectImpl::kMcs:
      return "mcs";
  }
  __builtin_unreachable();
}

/// Parse "queue" | "stack" | "buffer" | "snapshot" (bench --objects=
/// flags, spec JSON).  Returns false on anything else.
inline bool parse_object_kind(const std::string& s, ObjectKind* out) {
  if (s == "queue") *out = ObjectKind::kQueue;
  else if (s == "stack") *out = ObjectKind::kStack;
  else if (s == "buffer") *out = ObjectKind::kBuffer;
  else if (s == "snapshot") *out = ObjectKind::kSnapshot;
  else return false;
  return true;
}

/// Parse "lock-free" | "mutex" | "ticket" | "anderson" | "mcs", plus
/// the legacy alias "lock-based" -> kMutex (pre-zoo configs and
/// committed BENCH JSONs stay readable).  Returns false on anything
/// else.
inline bool parse_object_impl(const std::string& s, ObjectImpl* out) {
  if (s == "lock-free") *out = ObjectImpl::kLockFree;
  else if (s == "mutex" || s == "lock-based") *out = ObjectImpl::kMutex;
  else if (s == "ticket") *out = ObjectImpl::kTicket;
  else if (s == "anderson") *out = ObjectImpl::kAnderson;
  else if (s == "mcs") *out = ObjectImpl::kMcs;
  else return false;
  return true;
}

/// A homogeneous universe: `count` objects of the same kind and impl.
inline std::vector<ObjectSpec> uniform_objects(std::int32_t count,
                                               ObjectKind kind,
                                               ObjectImpl impl) {
  return std::vector<ObjectSpec>(static_cast<std::size_t>(count),
                                 ObjectSpec{kind, impl});
}

}  // namespace lfrt::runtime
