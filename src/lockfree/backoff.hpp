// Bounded exponential backoff for CAS retry loops.
//
// A failed CAS means another thread changed the structure inside this
// thread's read→CAS window; immediately re-reading under heavy
// contention keeps every loser hammering the same cache line and turns
// a conflict into a retry storm.  Pausing for an exponentially growing
// (but compile-time capped) number of spins before the re-read lets the
// winner's store settle and de-synchronizes the losers — the classic
// counterpart to Theorem 2's interference charge: the bound covers the
// retries, the backoff makes each one cheaper.
//
// The spin count is *reported*, not hidden: callers feed the spins
// executed into ObjectStats::record_backoff so the time spent backing
// off shows up in run reports (Job::backoff_spins,
// RunReport::total_backoff_spins) instead of vanishing into the
// structure's latency.
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lfrt::lockfree {

/// One CPU-relax hint (PAUSE / YIELD / compiler barrier fallback).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Per-operation exponential backoff ladder.  Stack-allocate one per
/// public operation (enqueue/dequeue/push/pop); call pause() after each
/// failed attempt.  The ladder starts at kMinSpins relax hints and
/// doubles per failure up to kMaxSpins — a hard compile-time cap so a
/// backlogged loop can never sleep unbounded time (this is a real-time
/// codebase: the worst-case pause is kMaxSpins relax hints, full stop).
class Backoff {
 public:
  static constexpr std::int64_t kMinSpins = 4;
  static constexpr std::int64_t kMaxSpins = 256;  ///< compile-time cap

  /// Spin the current rung and climb one; returns the spins executed
  /// (the caller records them via ObjectStats::record_backoff).
  std::int64_t pause() {
    const std::int64_t n = spins_;
    for (std::int64_t i = 0; i < n; ++i) cpu_relax();
    spins_ = spins_ < kMaxSpins / 2 ? spins_ * 2 : kMaxSpins;
    return n;
  }

 private:
  std::int64_t spins_ = kMinSpins;
};

}  // namespace lfrt::lockfree
