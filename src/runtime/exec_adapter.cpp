#include "runtime/exec_adapter.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "lockbased/mutex_queue.hpp"
#include "lockfree/msqueue.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "uam/uam.hpp"

namespace lfrt::runtime {
namespace {

using Clock = std::chrono::steady_clock;

/// Busy-wait this thread for `ns` of wall clock (synthetic compute).
void spin_for(Time ns) {
  const auto until = Clock::now() + std::chrono::nanoseconds(ns);
  while (Clock::now() < until) {
  }
}

/// The shared-object universe of one run, behind a uniform push/pop
/// surface so job bodies are sharing-regime agnostic.
struct SharedObjects {
  std::vector<std::unique_ptr<lockfree::MsQueue<int>>> lf;
  std::vector<std::unique_ptr<lockbased::MutexQueue<int>>> lb;

  SharedObjects(ObjectKind kind, std::int32_t count,
                std::size_t capacity) {
    if (kind == ObjectKind::kLockFree) {
      for (std::int32_t i = 0; i < count; ++i)
        lf.push_back(std::make_unique<lockfree::MsQueue<int>>(capacity));
    } else {
      for (std::int32_t i = 0; i < count; ++i)
        lb.push_back(std::make_unique<lockbased::MutexQueue<int>>());
    }
  }

  void push(ObjectId o, int v) {
    if (!lf.empty())
      (void)lf[static_cast<std::size_t>(o)]->enqueue(v);
    else
      lb[static_cast<std::size_t>(o)]->enqueue(v);
  }

  void pop(ObjectId o) {
    if (!lf.empty())
      (void)lf[static_cast<std::size_t>(o)]->dequeue();
    else
      (void)lb[static_cast<std::size_t>(o)]->dequeue();
  }
};

/// Lower one task's parameters into an RtJob: spin exec_time in
/// checkpointed quanta, performing each access as push → checkpoint →
/// pop against the real object.  The checkpoint in the middle makes
/// mid-access aborts reachable; the abort handler rolls back whatever
/// push is still unbalanced (Section 3.5's compensation, for real).
rt::RtJob make_job(const TaskParams& tp,
                   const std::shared_ptr<SharedObjects>& objs,
                   Time quantum) {
  rt::RtJob job;
  job.task = tp.id;
  job.tuf = tp.tuf;
  job.expected_exec = tp.exec_time;
  // Pending (pushed, not yet popped) objects.  Body and abort handler
  // run on the same worker thread, so no synchronization is needed.
  auto pending = std::make_shared<std::vector<ObjectId>>();
  job.body = [objs, pending, quantum, exec = tp.exec_time,
              accesses = tp.accesses](rt::JobContext& ctx) {
    Time done = 0;
    auto advance_to = [&](Time target) {
      while (done < target) {
        const Time q = std::min<Time>(quantum, target - done);
        spin_for(q);
        done += q;
        ctx.checkpoint();
      }
    };
    for (const AccessSpec& a : accesses) {
      advance_to(std::min(a.offset, exec));
      objs->push(a.object, static_cast<int>(ctx.id()));
      pending->push_back(a.object);
      ctx.checkpoint();
      objs->pop(a.object);
      pending->pop_back();
    }
    advance_to(exec);
  };
  job.abort_handler = [objs, pending] {
    while (!pending->empty()) {
      objs->pop(pending->back());
      pending->pop_back();
    }
  };
  return job;
}

}  // namespace

std::vector<std::vector<Time>> make_arrival_traces(const TaskSet& ts,
                                                   Time horizon,
                                                   std::uint64_t seed,
                                                   bool periodic) {
  std::vector<std::vector<Time>> traces(ts.tasks.size());
  for (const auto& t : ts.tasks) {
    Rng rng(seed ^ (0xA5A5A5A5ULL * static_cast<std::uint64_t>(t.id + 1)));
    traces[static_cast<std::size_t>(t.id)] =
        periodic ? arrivals::periodic_phased(t.arrival, horizon, rng)
                 : arrivals::random_conformant(t.arrival, horizon, rng);
  }
  return traces;
}

rt::ExecutorReport run_on_executor(const TaskSet& ts,
                                   const sched::Scheduler& scheduler,
                                   const ExecConfig& cfg) {
  ts.validate();
  auto objs = std::make_shared<SharedObjects>(cfg.objects, ts.object_count,
                                              cfg.queue_capacity);

  // Flatten the per-task traces into one tape, keeping only jobs whose
  // critical time falls within the horizon (the simulator's counting
  // rule) so both substrates score the same population.
  struct Arrival {
    Time at;
    TaskId task;
  };
  const auto traces =
      make_arrival_traces(ts, cfg.horizon, cfg.arrival_seed,
                          cfg.periodic_arrivals);
  std::vector<Arrival> tape;
  for (const auto& t : ts.tasks)
    for (Time at : traces[static_cast<std::size_t>(t.id)])
      if (at + t.critical_time() <= cfg.horizon) tape.push_back({at, t.id});
  std::stable_sort(tape.begin(), tape.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.at != b.at ? a.at < b.at : a.task < b.task;
                   });

  rt::Executor ex(scheduler, rt::ExecutorConfig{cfg.cpu_count});
  const auto epoch = Clock::now();
  for (const Arrival& a : tape) {
    std::this_thread::sleep_until(epoch + std::chrono::nanoseconds(a.at));
    ex.submit(make_job(ts.by_id(a.task), objs, cfg.quantum));
  }
  return ex.shutdown();
}

rt::ExecutorReport run_on_executor(const workload::WorkloadSpec& spec,
                                   const sched::Scheduler& scheduler,
                                   const ExecConfig& cfg) {
  return run_on_executor(workload::make_task_set(spec), scheduler, cfg);
}

}  // namespace lfrt::runtime
