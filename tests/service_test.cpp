// runtime::Service — the streaming front end over rt::Executor.
// Covers the ingest conservation law (offered == submitted + rejected),
// the sliding-window UAM admission gate in both shed and degrade
// modes, lane backpressure, open-loop pacing through the timer wheel,
// and the close_ingest() shutdown sequencing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/service.hpp"
#include "sched/rua.hpp"

namespace lfrt::runtime {
namespace {

rt::RtJob quick_job(double height = 5.0) {
  rt::RtJob job;
  job.tuf = make_step_tuf(height, msec(200));
  job.expected_exec = usec(20);
  job.body = [](rt::JobContext& ctx) { ctx.checkpoint(); };
  return job;
}

TEST(Service, OfferedJobsAllAccountedAcrossLanes) {
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  ServiceConfig cfg;
  cfg.executor.cpu_count = 2;
  cfg.lanes = 2;
  cfg.lane_capacity = 1024;
  Service svc(rua, std::move(cfg));
  ASSERT_EQ(svc.lane_count(), 2);

  constexpr int kPerLane = 2'000;
  std::atomic<std::int64_t> accepted{0};
  std::vector<std::thread> producers;
  for (int lane = 0; lane < 2; ++lane) {
    producers.emplace_back([&, lane] {
      for (int i = 0; i < kPerLane; ++i) {
        while (!svc.offer(lane, quick_job())) std::this_thread::yield();
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  const ServiceReport rep = svc.shutdown();

  EXPECT_EQ(rep.offered, accepted.load());
  EXPECT_EQ(rep.offered, 2 * kPerLane);
  // The conservation law the whole ingest path hangs on.
  EXPECT_EQ(rep.offered, rep.exec.submitted + rep.exec.rejected);
  EXPECT_EQ(rep.exec.counted_jobs, rep.exec.submitted + rep.exec.rejected);
  EXPECT_EQ(rep.exec.completed + rep.exec.aborted, rep.exec.submitted);
  EXPECT_EQ(rep.exec.lane_ingested, rep.offered);
  // Service shape: no O(jobs) record retention.
  EXPECT_TRUE(rep.exec.jobs.empty());
  EXPECT_GT(rep.wall_seconds, 0.0);
  EXPECT_GT(rep.ingest_jobs_per_sec, 0.0);
}

TEST(Service, AdmissionBudgetShedsBeyondDeclaredLoad) {
  // Budget 12 utility per 10 s window, each arrival worth U(0) = 5:
  // exactly two fit; with no degraded contract the rest are shed.  The
  // test finishes far inside one window, so the count is deterministic.
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  ServiceConfig cfg;
  cfg.window_utility_budget = 12.0;
  cfg.admission_window = sec(10);
  Service svc(rua, std::move(cfg));

  constexpr int kOffers = 50;
  std::int64_t accepted = 0;
  for (int i = 0; i < kOffers; ++i)
    if (svc.offer(0, quick_job(/*height=*/5.0))) ++accepted;
  const ServiceReport rep = svc.shutdown();

  EXPECT_EQ(rep.offered, accepted);
  EXPECT_EQ(rep.exec.submitted, 2);  // floor(12 / 5)
  EXPECT_EQ(rep.exec.rejected, rep.offered - 2);
  EXPECT_EQ(rep.exec.degraded, 0);
  EXPECT_EQ(rep.offered, rep.exec.submitted + rep.exec.rejected);
  // Shed arrivals count against the denominator (their U(0) joins
  // max_possible_utility) but accrue nothing.
  EXPECT_GE(rep.exec.max_possible_utility, 5.0 * static_cast<double>(kOffers));
}

TEST(Service, AdmissionBudgetDegradesWhenFallbackTufSet) {
  // Same overload, but a degraded contract is on offer: over-budget
  // arrivals run at the cheaper TUF instead of being shed.
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  ServiceConfig cfg;
  cfg.window_utility_budget = 12.0;
  cfg.admission_window = sec(10);
  cfg.degraded_tuf = make_step_tuf(0.5, msec(200));
  Service svc(rua, std::move(cfg));

  constexpr int kOffers = 40;
  for (int i = 0; i < kOffers; ++i)
    ASSERT_TRUE(svc.offer(0, quick_job(/*height=*/5.0)));
  const ServiceReport rep = svc.shutdown();

  EXPECT_EQ(rep.offered, kOffers);
  EXPECT_EQ(rep.exec.submitted, kOffers);  // nobody shed
  EXPECT_EQ(rep.exec.rejected, 0);
  EXPECT_EQ(rep.exec.degraded, kOffers - 2);
  EXPECT_EQ(rep.exec.completed + rep.exec.aborted, rep.exec.submitted);
  // Degraded contracts cap the achievable utility: 2 full jobs at 5.0
  // plus the rest at 0.5 at best.
  EXPECT_LE(rep.exec.accrued_utility,
            2 * 5.0 + (kOffers - 2) * 0.5 + 1e-9);
}

TEST(Service, FullLaneBackpressuresInsteadOfBlocking) {
  // A 2-slot lane (1 usable) against a tight producer loop: offer()
  // must return false — wait-free shedding at the producer — and the
  // report must count every such refusal.
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  ServiceConfig cfg;
  cfg.lane_capacity = 2;
  Service svc(rua, std::move(cfg));

  std::int64_t accepted = 0;
  std::int64_t refused = 0;
  for (std::int64_t attempts = 0; refused == 0 && attempts < 2'000'000;
       ++attempts) {
    if (svc.offer(0, quick_job())) ++accepted;
    else ++refused;
  }
  const ServiceReport rep = svc.shutdown();

  EXPECT_GT(refused, 0);  // the tight loop outran a 1-slot lane
  EXPECT_EQ(rep.offered, accepted);
  EXPECT_EQ(rep.backpressured, refused);
  EXPECT_EQ(rep.offered, rep.exec.submitted + rep.exec.rejected);
}

TEST(Service, DriveOpenLoopPacesArrivalsOnTheWheel) {
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  ServiceConfig cfg;
  cfg.executor.cpu_count = 2;
  Service svc(rua, std::move(cfg));

  // Two interleaved streams, last arrival at 38 ms.  Open-loop pacing
  // must stretch the call to about that long — the schedule, not the
  // system, sets the clock.
  std::vector<Service::ArrivalStream> streams(2);
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 10; ++i)
      streams[s].arrivals.push_back(msec(4 * i) + msec(2) * s);
    streams[s].make_job = [] { return quick_job(); };
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t accepted = svc.drive_open_loop(0, std::move(streams));
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_EQ(accepted, 20);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            35);  // ~last arrival (38ms), minus scheduler-clock slack
  const ServiceReport rep = svc.shutdown();
  EXPECT_EQ(rep.offered, accepted);
  EXPECT_EQ(rep.exec.submitted, accepted);
  EXPECT_EQ(rep.exec.completed + rep.exec.aborted, rep.exec.submitted);
  // Percentiles populated from the lane path and monotone.
  EXPECT_GT(rep.exec.sojourn_p999_ns, 0);
  EXPECT_LE(rep.exec.sojourn_p50_ns, rep.exec.sojourn_p99_ns);
  EXPECT_LE(rep.exec.sojourn_p99_ns, rep.exec.sojourn_p999_ns);
  EXPECT_LE(rep.exec.ingest_p50_ns, rep.exec.ingest_p99_ns);
  EXPECT_LE(rep.exec.ingest_p99_ns, rep.exec.ingest_p999_ns);
}

TEST(Service, CloseIngestStopsOffersAndOpenLoopDrivers) {
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  ServiceConfig cfg;
  Service svc(rua, std::move(cfg));

  ASSERT_TRUE(svc.offer(0, quick_job()));
  EXPECT_FALSE(svc.ingest_closed());
  svc.close_ingest();
  EXPECT_TRUE(svc.ingest_closed());
  EXPECT_FALSE(svc.offer(0, quick_job()));  // closed, not backpressure

  // An open-loop driver started after close returns immediately with
  // nothing accepted, even with arrivals scheduled far out.
  std::vector<Service::ArrivalStream> streams(1);
  streams[0].arrivals = {sec(30)};
  streams[0].make_job = [] { return quick_job(); };
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(svc.drive_open_loop(0, std::move(streams)), 0);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));

  const ServiceReport rep = svc.shutdown();
  EXPECT_EQ(rep.offered, 1);
  EXPECT_EQ(rep.backpressured, 0);  // closed-door refusals are uncounted
  EXPECT_EQ(rep.exec.submitted + rep.exec.rejected, 1);
}

}  // namespace
}  // namespace lfrt::runtime
