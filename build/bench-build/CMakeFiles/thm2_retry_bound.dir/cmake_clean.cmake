file(REMOVE_RECURSE
  "../bench/thm2_retry_bound"
  "../bench/thm2_retry_bound.pdb"
  "CMakeFiles/thm2_retry_bound.dir/thm2_retry_bound.cpp.o"
  "CMakeFiles/thm2_retry_bound.dir/thm2_retry_bound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm2_retry_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
