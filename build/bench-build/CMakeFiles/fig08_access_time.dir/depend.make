# Empty dependencies file for fig08_access_time.
# This may be replaced when dependencies are built.
