// Tagged index references for ABA-safe lock-free structures.
//
// The paper's implementation used CAS on a Pentium-III under QNX; nodes
// were pool-allocated.  We follow the same discipline: structures draw
// nodes from a fixed pool and refer to them by a 32-bit index packed
// with a 32-bit modification tag into one 64-bit word, so a single-word
// CAS updates reference and tag together.  The tag increments on every
// reuse, which defeats the ABA problem without hazard pointers — the
// classic counted-pointer technique of Michael & Scott [21] and
// Treiber [25].
#pragma once

#include <cstdint>

namespace lfrt::lockfree {

/// Packed {index, tag} reference.  Index 0xFFFFFFFF is the null ref.
struct TaggedRef {
  std::uint64_t bits = 0;

  static constexpr std::uint32_t kNullIndex = 0xFFFFFFFFu;

  static constexpr TaggedRef make(std::uint32_t index, std::uint32_t tag) {
    return TaggedRef{(static_cast<std::uint64_t>(tag) << 32) | index};
  }

  static constexpr TaggedRef null(std::uint32_t tag = 0) {
    return make(kNullIndex, tag);
  }

  constexpr std::uint32_t index() const {
    return static_cast<std::uint32_t>(bits & 0xFFFFFFFFu);
  }
  constexpr std::uint32_t tag() const {
    return static_cast<std::uint32_t>(bits >> 32);
  }
  constexpr bool is_null() const { return index() == kNullIndex; }

  /// Same index with the tag advanced — used when re-publishing a node.
  constexpr TaggedRef bump(std::uint32_t new_index) const {
    return make(new_index, tag() + 1);
  }

  friend constexpr bool operator==(TaggedRef a, TaggedRef b) {
    return a.bits == b.bits;
  }
};

}  // namespace lfrt::lockfree
