// Read/write access semantics under lock-free sharing: writes fail
// concurrent attempts' CAS, reads never do — the multi-writer/
// multi-reader distinction of the paper's conclusion.
#include <gtest/gtest.h>

#include "sched/edf.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

using sim::ShareMode;
using sim::SimConfig;
using sim::Simulator;

TaskParams rw_task(TaskId id, Time exec, Time critical, ObjectId obj,
                   Time offset, bool write) {
  TaskParams p;
  p.id = id;
  p.exec_time = exec;
  p.tuf = make_step_tuf(10.0, critical);
  p.arrival = UamSpec{1, 1, critical};
  p.accesses = {{obj, offset, write}};
  return p;
}

const Job& job_of_task(const sim::SimReport& rep, TaskId task) {
  for (const Job& j : rep.jobs)
    if (j.task == task) return j;
  throw std::runtime_error("no such job");
}

sim::SimReport run_pair(bool t1_writes) {
  // Same interleaving as the Section-4 hand-computed retry scenario:
  // T0 is preempted mid-access by T1, which accesses the same object.
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(rw_task(0, usec(10), usec(200), 0, usec(5), true));
  ts.tasks.push_back(
      rw_task(1, usec(10), usec(100), 0, usec(5), t1_writes));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(10);
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(8)});
  return sim.run();
}

TEST(ReadWrite, InterferingWriteForcesRetry) {
  const auto rep = run_pair(/*t1_writes=*/true);
  EXPECT_EQ(job_of_task(rep, 0).retries, 1);
  EXPECT_EQ(job_of_task(rep, 0).completion, usec(50));
}

TEST(ReadWrite, InterferingReadIsHarmless) {
  const auto rep = run_pair(/*t1_writes=*/false);
  // T1's read completes inside T0's attempt window but does not
  // invalidate it: T0's CAS succeeds on resume, no retry.
  EXPECT_EQ(job_of_task(rep, 0).retries, 0);
  // T0: attempt 5..8 + resume 28..35, compute 35..40.
  EXPECT_EQ(job_of_task(rep, 0).completion, usec(40));
  EXPECT_EQ(rep.total_retries, 0);
}

TEST(ReadWrite, ReaderRetriesOnConcurrentWrite) {
  // Roles swapped: the preempted job is a reader, the interferer a
  // writer — the reader must retry (its snapshot went stale).
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(rw_task(0, usec(10), usec(200), 0, usec(5), false));
  ts.tasks.push_back(rw_task(1, usec(10), usec(100), 0, usec(5), true));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(10);
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(8)});
  const auto rep = sim.run();
  EXPECT_EQ(job_of_task(rep, 0).retries, 1);
}

TEST(ReadWrite, AllReadWorkloadNeverRetries) {
  workload::WorkloadSpec spec;
  spec.task_count = 8;
  spec.object_count = 2;
  spec.accesses_per_job = 4;
  spec.read_fraction = 1.0;
  spec.load = 1.0;
  spec.seed = 33;
  const TaskSet ts = workload::make_task_set(spec);
  for (const auto& t : ts.tasks)
    for (const auto& a : t.accesses) EXPECT_FALSE(a.write);

  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(5);
  cfg.horizon = msec(40);
  Simulator sim(ts, edf, cfg);
  sim.seed_arrivals(3);
  const auto rep = sim.run();
  EXPECT_EQ(rep.total_retries, 0);
}

TEST(ReadWrite, ReadFractionReducesRetriesMonotonically) {
  auto retries_at = [](double read_fraction) {
    workload::WorkloadSpec spec;
    spec.task_count = 8;
    spec.object_count = 1;  // one hot object
    spec.accesses_per_job = 4;
    spec.read_fraction = read_fraction;
    spec.load = 1.0;
    spec.seed = 33;
    const TaskSet ts = workload::make_task_set(spec);
    const sched::EdfScheduler edf;
    SimConfig cfg;
    cfg.mode = ShareMode::kLockFree;
    cfg.lockfree_access_time = usec(20);
    cfg.horizon = msec(60);
    Simulator sim(ts, edf, cfg);
    sim.seed_arrivals(3);
    return sim.run().total_retries;
  };
  const auto all_writes = retries_at(0.0);
  const auto half = retries_at(0.5);
  const auto all_reads = retries_at(1.0);
  EXPECT_GE(all_writes, half);
  EXPECT_GE(half, all_reads);
  EXPECT_EQ(all_reads, 0);
}

}  // namespace
}  // namespace lfrt
