// Frozen naive RUA implementation — the seed repository's scheduler,
// kept verbatim as a correctness oracle and performance baseline.
//
// The optimized RuaScheduler (rua.cpp) must be bit-for-bit equivalent
// to this one: identical schedules, rejections, deadlock victims,
// dispatch choices, and modelled `ops` counts on every input
// (tests/rua_equivalence_test.cpp checks this over randomized
// workloads; bench/sched_throughput.cpp measures the speedup against
// it).  Do NOT optimize or otherwise modify this implementation — its
// value is that it stays simple enough to audit against the paper's
// pseudo-code (Figures 3-5) and slow enough to show what the workspace
// rework buys.
#pragma once

#include "sched/rua.hpp"
#include "sched/scheduler.hpp"

namespace lfrt::sched {

/// The seed's RuaScheduler: per-call allocation of the index map,
/// chains, PUD array, and a full copy of the tentative schedule on
/// every aggregate insertion, with a linear `find_entry` scan.
class RuaReferenceScheduler final : public Scheduler {
 public:
  explicit RuaReferenceScheduler(Sharing sharing,
                                 bool detect_deadlocks = false);

  void build_into(const std::vector<SchedJob>& jobs, Time now,
                  Workspace* ws, ScheduleResult& out) const override;

  std::string name() const override;

  Sharing sharing() const { return sharing_; }

 private:
  Sharing sharing_;
  bool detect_deadlocks_;
};

}  // namespace lfrt::sched
