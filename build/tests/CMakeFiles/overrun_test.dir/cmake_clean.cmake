file(REMOVE_RECURSE
  "CMakeFiles/overrun_test.dir/overrun_test.cpp.o"
  "CMakeFiles/overrun_test.dir/overrun_test.cpp.o.d"
  "overrun_test"
  "overrun_test.pdb"
  "overrun_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overrun_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
