// Simpson's four-slot fully wait-free single-writer/single-reader
// register, and a replicated multi-reader construction on top of it.
//
// The paper's related work (Section 1.1) contrasts lock-free sharing
// with wait-free protocols [3, 6, 7, 14, 16]: wait-free operations
// complete in a bounded number of steps with NO retries, but pay space
// and need a-priori knowledge of the communicating parties.  These two
// classes are made concrete here:
//
//   * FourSlot<T>   — 1 writer, 1 reader, 4 buffers, zero retries ever.
//   * WaitFreeSwmr<T> — 1 writer, R readers, by replicating a FourSlot
//     per reader: reads stay O(1) and retry-free, but the writer pays
//     O(R) per write and the structure 4R buffers — and R must be known
//     up front, exactly the a-priori knowledge the paper says is hard
//     to obtain in dynamic systems (its reason to prefer lock-free).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

#include "runtime/object_stats.hpp"
#include "support/check.hpp"

namespace lfrt::lockfree {

/// Simpson's four-slot algorithm: asynchronous, wait-free on both
/// sides, never tears, reader always sees the latest completed write or
/// a newer one.
template <typename T>
class FourSlot {
  static_assert(std::is_trivially_copyable_v<T>,
                "slots are copied field-blind");

 public:
  explicit FourSlot(const T& initial = T{}) {
    data_[0][0] = initial;
    data_[1][0] = initial;
  }

  /// Wait-free write (single writer).
  void write(const T& value) {
    // Write into the pair the reader is NOT using, alternating slots
    // within the pair so a concurrent read of the other slot is safe.
    const int pair = 1 - reading_.load(std::memory_order_acquire);
    const int slot = 1 - last_slot_[pair].load(std::memory_order_relaxed);
    data_[pair][slot] = value;
    last_slot_[pair].store(slot, std::memory_order_release);
    last_pair_.store(pair, std::memory_order_release);
    stats_.record_op();
  }

  /// Wait-free read (single reader).
  T read() const {
    const int pair = last_pair_.load(std::memory_order_acquire);
    reading_.store(pair, std::memory_order_release);
    const int slot = last_slot_[pair].load(std::memory_order_acquire);
    stats_.record_op();
    return data_[pair][slot];
  }

  /// Retries stay zero by construction — the wait-free contrast point.
  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  T data_[2][2]{};
  std::atomic<int> last_pair_{0};          // pair holding the latest write
  mutable std::atomic<int> reading_{0};    // pair the reader announced
  std::atomic<int> last_slot_[2]{{0}, {0}};
  mutable runtime::ObjectStats stats_;
};

/// Wait-free single-writer/multi-reader register built from one
/// FourSlot per reader.  Reader identities are fixed at construction.
template <typename T>
class WaitFreeSwmr {
 public:
  WaitFreeSwmr(std::size_t readers, const T& initial = T{}) {
    LFRT_CHECK_MSG(readers >= 1, "need at least one reader");
    replicas_.reserve(readers);
    for (std::size_t r = 0; r < readers; ++r)
      replicas_.push_back(std::make_unique<FourSlot<T>>(initial));
  }

  /// Wait-free write: O(R) slot writes, no retries.
  void write(const T& value) {
    for (auto& rep : replicas_) rep->write(value);
    stats_.record_op();
  }

  /// Wait-free read for reader `r` (each reader id must be used by at
  /// most one thread): O(1), no retries.
  T read(std::size_t r) const {
    stats_.record_op();
    return replicas_[r]->read();
  }

  std::size_t readers() const { return replicas_.size(); }

  /// Buffers consumed — the space cost of wait-freedom the paper notes.
  std::size_t buffer_count() const { return 4 * replicas_.size(); }

  /// Aggregate over the whole register (replica slots count their own).
  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  std::vector<std::unique_ptr<FourSlot<T>>> replicas_;
  mutable runtime::ObjectStats stats_;
};

}  // namespace lfrt::lockfree
