// Console/CSV table writer used by the benchmark harness.
//
// Each bench binary regenerates one figure of the paper and prints both a
// human-readable aligned table and (optionally) a CSV block that plotting
// scripts can consume directly.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace lfrt {

/// Row-oriented table with fixed column headers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Append a row; the number of cells must equal the number of headers.
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Format a double with fixed precision (helper for cell construction).
  static std::string num(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  /// Print as an aligned ASCII table.
  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
           << cells[c];
      }
      os << '\n';
    };
    emit(headers_);
    std::string rule;
    for (auto w : widths) rule += std::string(w, '-') + "  ";
    os << rule << '\n';
    for (const auto& row : rows_) emit(row);
  }

  /// Print as CSV (headers + rows).
  void print_csv(std::ostream& os = std::cout) const {
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) os << ',';
        os << cells[c];
      }
      os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lfrt
