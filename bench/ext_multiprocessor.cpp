// Extension experiment (paper future work, Section 7): lock-free vs
// lock-based sharing under *global* RUA on M processors.
//
// An overloaded-for-one-CPU workload is run on 1, 2, and 4 CPUs.  With
// locks, the shared objects serialize the extra processors (holders pin
// requesters regardless of free CPUs) and every lock/unlock request
// still invokes the global scheduler; lock-free sharing converts that
// serialization into bounded retries, so its AUR/CMR scale with the
// CPU count much more closely.
#include "common.hpp"

int main() {
  using namespace lfrt;
  bench::print_header("Extension", "multiprocessor scaling (global RUA)");
  std::cout << "tasks=10  objects=2  accesses/job=6  AL=3.0 (overloaded "
               "on 1 CPU)  r=" << to_usec(usec(80)) << "us  s="
            << to_usec(usec(2)) << "us  seed=42\n\n";

  workload::WorkloadSpec spec;
  spec.task_count = 10;
  spec.object_count = 2;  // heavy contention
  spec.accesses_per_job = 6;
  spec.avg_exec = usec(400);
  spec.load = 3.0;
  spec.seed = 42;
  const TaskSet ts = workload::make_task_set(spec);

  Table table({"CPUs", "mode", "AUR", "CMR", "retries/job", "blk/job"});

  for (const int cpus : {1, 2, 4}) {
    for (const auto mode :
         {sim::ShareMode::kLockBased, sim::ShareMode::kLockFree}) {
      RunningStats aur, cmr;
      std::int64_t retries = 0, blockings = 0, jobs = 0;
      for (int rep = 0; rep < 5; ++rep) {
        sim::SimConfig cfg;
        cfg.mode = mode;
        cfg.lock_access_time = usec(80);
        cfg.lockfree_access_time = usec(2);
        cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
        cfg.cpu_count = cpus;
        Time max_window = 0;
        for (const auto& t : ts.tasks)
          max_window = std::max(max_window, t.arrival.window);
        cfg.horizon = max_window * 120;
        sim::Simulator s(ts, bench::scheduler_for(mode), cfg);
        s.seed_arrivals(900 + static_cast<std::uint64_t>(rep));
        const auto out = s.run();
        aur.add(out.aur());
        cmr.add(out.cmr());
        retries += out.total_retries;
        blockings += out.total_blockings;
        jobs += out.counted_jobs;
      }
      table.add_row(
          {std::to_string(cpus), sim::to_string(mode),
           Table::num(aur.mean(), 3) + " ±" + Table::num(aur.ci95(), 3),
           Table::num(cmr.mean(), 3) + " ±" + Table::num(cmr.ci95(), 3),
           Table::num(jobs ? static_cast<double>(retries) /
                                 static_cast<double>(jobs)
                           : 0.0,
                      2),
           Table::num(jobs ? static_cast<double>(blockings) /
                                 static_cast<double>(jobs)
                           : 0.0,
                      2)});
    }
  }
  table.print();
  std::cout << "\nExpected shape: both modes gain from extra CPUs, but "
               "lock-based gains are capped by lock serialization on the "
               "two hot objects while lock-free approaches full "
               "utilization of the added processors.\n";
  return 0;
}
