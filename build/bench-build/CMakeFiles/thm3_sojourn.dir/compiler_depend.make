# Empty compiler generated dependencies file for thm3_sojourn.
# This may be replaced when dependencies are built.
