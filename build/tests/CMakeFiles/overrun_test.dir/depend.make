# Empty dependencies file for overrun_test.
# This may be replaced when dependencies are built.
