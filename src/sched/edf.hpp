// Earliest-critical-time-first (ECF / EDF) baseline scheduler.
//
// During underloads with step TUFs and no object sharing, RUA's output
// schedule is exactly ECF-ordered (paper, Section 3.4), which is optimal
// there.  This baseline makes that equivalence testable and provides the
// deadline-scheduling reference point for the CML discussion.
#pragma once

#include "sched/scheduler.hpp"

namespace lfrt::sched {

/// EDF with critical times as deadlines.  Never rejects a job; dispatch
/// is the earliest-critical runnable job.
class EdfScheduler final : public Scheduler {
 public:
  ScheduleResult build(const std::vector<SchedJob>& jobs,
                       Time now) const override;

  std::string name() const override { return "EDF"; }
};

}  // namespace lfrt::sched
