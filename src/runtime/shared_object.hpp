// The unified shared-object access layer.
//
// One SharedObject wraps any of the repo's shared structures —
// lockfree::MsQueue / TreiberStack / NbwBuffer / AtomicSnapshot and
// their lock-based counterparts — behind a single
// `access(op, task, job, checkpoint)` surface, selected by ObjectSpec
// {kind, impl}.  Job bodies become object-shape agnostic: the executor
// adapter lowers an AccessSpec to exactly one call here, and which
// structure absorbs the interference is a per-object configuration
// knob, not a fork in the lowering code.
//
// Sharding: lock-free queue/stack objects are instantiated as
// lockfree::ShardedQueue/ShardedStack — up to kMaxObjectShards full
// stripes behind the same access() surface, with the live stripe count
// (`set_shards`) flipped at run time by the ContentionController.
// Access semantics, rollback, and attribution are unchanged: every
// stripe's ObjectStats feeds the same sinks, and the heatmap cell is
// per *object*, so the three-way sums stay exact across promote/demote.
//
// Attribution: every structure already reports through
// runtime::ObjectStats, whose record_retry/record_acquisition also
// credit the calling thread's sinks.  access() installs a
// ScopedCellSink for the (object, task) cell on top of the job sink the
// executor worker installed, so one underlying CAS failure lands in the
// structure counter, the job's f_i tally, AND the heatmap cell — three
// views of the same event, which is what makes the cross-sum
// invariants in tests/exec_objects_test.cpp checkable.
//
// Abort safety: the mid-access checkpoint may throw rt::JobAborted.
// Queue/stack accesses push before the checkpoint and roll the push
// back in a catch block before rethrowing (Section 3.5's compensation,
// inlined), so no separate abort handler is needed to keep occupancy
// balanced.  Buffer/snapshot operations are indivisible; their
// checkpoint runs after the operation with nothing to roll back.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "runtime/contention.hpp"
#include "runtime/latency_histogram.hpp"
#include "runtime/object_spec.hpp"
#include "runtime/object_stats.hpp"
#include "task/task.hpp"

namespace lfrt::lockfree {
template <typename T>
class ShardedQueue;
template <typename T>
class ShardedStack;
template <typename T>
class NbwBuffer;
template <typename T, std::size_t N>
class AtomicSnapshot;
}  // namespace lfrt::lockfree

namespace lfrt::runtime {

namespace detail {

// Type-erased lock-based structures, one small interface per
// ObjectKind.  The concrete types behind them are the generic wrappers
// lockbased::Locked{Queue,Stack,Buffer,Snapshot}<int, Lock> — one
// template instantiation per zoo lock (std::mutex / TicketLock /
// AndersonArrayLock / McsLock), selected by ObjectImpl in the factories
// in shared_object.cpp.  Erasure keeps this header free of lockbased
// includes and keeps SharedObject at four members instead of four
// members × five impls; the cost is one virtual hop per structure op,
// identical across impls so it cancels out of every comparison the
// benches make.

class LbQueue {
 public:
  virtual ~LbQueue() = default;
  virtual void enqueue(int v) = 0;
  virtual std::optional<int> dequeue() = 0;
  virtual bool empty() const = 0;
  virtual const ObjectStats& stats() const = 0;
};

class LbStack {
 public:
  virtual ~LbStack() = default;
  virtual void push(int v) = 0;
  virtual std::optional<int> pop() = 0;
  virtual bool empty() const = 0;
  virtual const ObjectStats& stats() const = 0;
};

class LbBuffer {
 public:
  virtual ~LbBuffer() = default;
  virtual void write(int v) = 0;
  virtual int read() = 0;
  virtual const ObjectStats& stats() const = 0;
};

class LbSnapshot {
 public:
  virtual ~LbSnapshot() = default;
  virtual void update(std::size_t i, int v) = 0;
  virtual std::array<int, kSnapshotSegments> scan() = 0;
  virtual const ObjectStats& stats() const = 0;
};

}  // namespace detail

/// Direction of one logical access.  Queue/stack: write = insert +
/// remove pair (occupancy-balanced), read = emptiness probe.  Buffer:
/// write/read of the state message.  Snapshot: write = one segment
/// update, read = full double-collect scan.
enum class AccessOp : std::uint8_t { kWrite, kRead };

// kSnapshotSegments moved to object_spec.hpp (the cost model needs it);
// re-exported here via that include for existing users.

/// Dense objects × tasks grid of concurrently-bumpable accounting
/// cells, flattened into the plain ContentionMatrix a report carries.
class ObjectRegistry {
 public:
  ObjectRegistry(std::int32_t object_count, std::int32_t task_count);

  /// The (object, task) cell, or nullptr when either index is out of
  /// range (e.g. free-standing jobs with task == -1): events then keep
  /// flowing to the structure and job counters but skip the heatmap.
  AtomicAccessCell* cell(ObjectId object, TaskId task);

  std::int32_t object_count() const { return objects_; }
  std::int32_t task_count() const { return tasks_; }

  /// Relaxed snapshot of every cell (exact after quiesce).
  ContentionMatrix to_matrix() const;

 private:
  std::int32_t objects_;
  std::int32_t tasks_;
  std::unique_ptr<AtomicAccessCell[]> cells_;
};

/// One shared object of the run's universe: the structure selected by
/// its ObjectSpec plus the uniform access surface over it.
class SharedObject {
 public:
  /// `queue_capacity` bounds the node pool of lock-free queue/stack
  /// shapes (accesses are insert/remove balanced, so steady-state
  /// occupancy stays near the in-flight job count).
  SharedObject(ObjectSpec spec, std::size_t queue_capacity);
  ~SharedObject();

  SharedObject(const SharedObject&) = delete;
  SharedObject& operator=(const SharedObject&) = delete;

  ObjectSpec spec() const { return spec_; }

  /// Perform one logical access on behalf of (task, job).  `checkpoint`
  /// is invoked once mid-access (it may throw to abort the job — see
  /// the rollback notes in the header comment); `cell` — usually from
  /// an ObjectRegistry — receives the access's retry/blocking events
  /// and its completed-op count, and may be null.
  void access(AccessOp op, TaskId task, JobId job,
              const std::function<void()>& checkpoint,
              AtomicAccessCell* cell);

  /// Live stripe count: 1 for every shape except lock-free queue/stack,
  /// where the ContentionController may promote it up to
  /// kMaxObjectShards.  set_shards on an unshardable object is a no-op
  /// — the controller never has to special-case shapes.
  std::int32_t shards() const;
  void set_shards(std::int32_t k);

  /// Aggregate counters of the wrapped structure(s) — all stripes, all
  /// tasks, whole run (exact after quiesce).
  ObjectCounts counts() const;

  /// Push–pop pairs the stack's elimination front absorbed (0 for every
  /// other shape).
  std::int64_t eliminations() const;

  /// Structure-operation latency (checkpoint time excluded), always on.
  const LatencyHistogram& latency() const { return latency_; }

 private:
  ObjectSpec spec_;

  // Exactly one of these is non-null, per spec_.  Lock-free shapes are
  // concrete (the controller pokes stripe counts on them); lock-based
  // shapes are type-erased over the zoo lock (see detail above).
  std::unique_ptr<lockfree::ShardedQueue<int>> lf_queue_;
  std::unique_ptr<lockfree::ShardedStack<int>> lf_stack_;
  std::unique_ptr<lockfree::NbwBuffer<int>> lf_buffer_;
  std::unique_ptr<lockfree::AtomicSnapshot<int, kSnapshotSegments>>
      lf_snapshot_;
  std::unique_ptr<detail::LbQueue> lb_queue_;
  std::unique_ptr<detail::LbStack> lb_stack_;
  std::unique_ptr<detail::LbBuffer> lb_buffer_;
  std::unique_ptr<detail::LbSnapshot> lb_snapshot_;

  LatencyHistogram latency_;

  /// Upholds NBW's and the snapshot's single-writer preconditions when
  /// arbitrary tasks write: writers serialize here, held only across
  /// the (wait-free, bounded) write itself — never across a checkpoint.
  /// Deliberately uncounted: it is scaffolding for the precondition the
  /// paper says is hard to meet in dynamic systems, not part of the
  /// measured protocol.
  std::mutex writer_mu_;
};

/// The kinds the placement layer scopes per cluster: occupancy-balanced
/// structures whose accesses carry no cross-task data dependency, so a
/// per-cluster instance is semantically equivalent and physically
/// conflict-free across clusters.  Buffer/snapshot are single-writer
/// broadcast state — never scoped.
inline bool is_scoped_kind(ObjectKind kind) {
  return kind == ObjectKind::kQueue || kind == ObjectKind::kStack;
}

/// The whole universe of one run: objects built from a per-ObjectId
/// spec list plus the registry that attributes their events.
///
/// Placement instancing: with `instance_count` > 1, every scoped-kind
/// object (queue/stack — see is_scoped_kind) is instantiated once per
/// cluster and a task's accesses route to the instance named by the
/// live `task_instance` map (unmapped / negative = instance 0).  The
/// map is atomic so the ContentionController can migrate a task's
/// instance mid-run; an access reads it exactly once, so its paired
/// insert+remove always lands on one instance and per-instance
/// occupancy stays balanced across migrations.  Attribution is
/// unchanged: the heatmap cell is per *logical* object, counts_of /
/// eliminations_of aggregate across instances, so every cross-sum
/// invariant holds as before.
class SharedObjectSet {
 public:
  SharedObjectSet(std::vector<ObjectSpec> specs, std::int32_t task_count,
                  std::size_t queue_capacity);
  SharedObjectSet(std::vector<ObjectSpec> specs, std::int32_t task_count,
                  std::size_t queue_capacity, std::int32_t instance_count,
                  const std::vector<std::int32_t>& task_instance);

  std::int32_t object_count() const {
    return static_cast<std::int32_t>(specs_.size());
  }
  const ObjectSpec& spec_of(ObjectId o) const {
    return specs_[static_cast<std::size_t>(o)];
  }

  /// One logical access by (task, job) to object `o`; `checkpoint` runs
  /// mid-access and may throw (rolled back first, then rethrown).
  void access(ObjectId o, AccessOp op, TaskId task, JobId job,
              const std::function<void()>& checkpoint);

  /// Physical instances behind logical object `o` (1 unless scoped).
  std::int32_t instances_of(ObjectId o) const {
    return inst_count_[static_cast<std::size_t>(o)];
  }

  /// Live instance routing for `task` (placement migration).  Values
  /// are clamped into [0, instances) per object at access time.
  void set_task_instance(TaskId task, std::int32_t inst);
  std::int32_t task_instance(TaskId task) const;

  ObjectCounts counts_of(ObjectId o) const;
  std::int32_t shards_of(ObjectId o) const {
    return instance(o, 0)->shards();
  }
  void set_shards(ObjectId o, std::int32_t k);
  std::int64_t eliminations_of(ObjectId o) const;
  const LatencyHistogram& latency_of(ObjectId o) const {
    return instance(o, 0)->latency();
  }

  /// Heatmap snapshot; shard_counts carries each object's live stripe
  /// count at snapshot time.
  ContentionMatrix matrix() const;

 private:
  const SharedObject* instance(ObjectId o, std::int32_t i) const {
    return objects_[base_[static_cast<std::size_t>(o)] +
                    static_cast<std::size_t>(i)]
        .get();
  }
  SharedObject* instance(ObjectId o, std::int32_t i) {
    return objects_[base_[static_cast<std::size_t>(o)] +
                    static_cast<std::size_t>(i)]
        .get();
  }

  std::vector<ObjectSpec> specs_;
  std::vector<std::unique_ptr<SharedObject>> objects_;  ///< flattened
  std::vector<std::size_t> base_;        ///< o -> first instance index
  std::vector<std::int32_t> inst_count_; ///< o -> instance count
  std::int32_t task_count_;
  std::unique_ptr<std::atomic<std::int32_t>[]> task_instance_;
  ObjectRegistry registry_;
};

}  // namespace lfrt::runtime
