file(REMOVE_RECURSE
  "../bench/fig12_overload_step"
  "../bench/fig12_overload_step.pdb"
  "CMakeFiles/fig12_overload_step.dir/fig12_overload_step.cpp.o"
  "CMakeFiles/fig12_overload_step.dir/fig12_overload_step.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_overload_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
