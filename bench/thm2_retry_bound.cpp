// Theorem 2 validation: the measured maximum number of lock-free
// retries per job never exceeds the analytic bound
//   f_i <= 3 a_i + sum_{j != i} 2 a_j (ceil(C_i / W_j) + 1),
// across a UAM parameter sweep.  Lemma 1 (preemptions bounded by
// scheduling events) is validated alongside via the per-job preemption
// counts.
//
// Both RUA (the paper's scheduler) and EDF dispatching are exercised:
// the bound's argument only counts scheduling events, so it holds for
// any UA scheduler; EDF preempts mid-access far more often than RUA
// (whose PUD ordering favours the in-progress job), making its measured
// retry counts the more stressing test of the bound.
#include "analysis/bounds.hpp"
#include "common.hpp"
#include "sched/edf.hpp"
#include "uam/uam.hpp"

int main() {
  using namespace lfrt;
  bench::print_header("Theorem 2", "measured max retries vs analytic bound");
  std::cout << "load=0.9, s=10us, adversarial + random UAM arrivals\n\n";

  Table table({"a_i", "tasks", "sched", "arrivals", "bound f_i (min..max)",
               "max retries", "max preempt", "ok"});
  bool all_ok = true;
  const sched::EdfScheduler edf;

  for (const int a : {1, 2, 3}) {
    for (const int tasks : {3, 6, 10}) {
      workload::WorkloadSpec spec;
      spec.task_count = tasks;
      spec.object_count = 4;
      spec.accesses_per_job = 3;
      spec.avg_exec = usec(200);
      spec.load = 0.9;
      spec.max_per_window = a;
      spec.seed = 7;
      const TaskSet ts = workload::make_task_set(spec);

      std::int64_t bound_min = INT64_MAX, bound_max = 0;
      for (const auto& t : ts.tasks) {
        bound_min = std::min(bound_min, analysis::retry_bound(ts, t.id));
        bound_max = std::max(bound_max, analysis::retry_bound(ts, t.id));
      }

      for (const bool use_edf : {false, true}) {
        for (const bool adversarial : {true, false}) {
          sim::SimConfig cfg;
          cfg.mode = sim::ShareMode::kLockFree;
          cfg.lockfree_access_time = usec(10);
          Time max_window = 0;
          for (const auto& t : ts.tasks)
            max_window = std::max(max_window, t.arrival.window);
          cfg.horizon = max_window * 100;

          const sched::Scheduler& sch =
              use_edf ? static_cast<const sched::Scheduler&>(edf)
                      : bench::scheduler_for(cfg.mode);
          sim::Simulator s(ts, sch, cfg);
          if (adversarial) {
            for (const auto& t : ts.tasks)
              s.set_arrivals(
                  t.id, arrivals::adversarial(t.arrival, 0, cfg.horizon));
          } else {
            s.seed_arrivals(91);
          }
          const sim::SimReport rep = s.run();

          std::int64_t max_retries = 0, max_preempt = 0;
          bool ok = true;
          for (const Job& j : rep.jobs) {
            max_retries = std::max(max_retries, j.retries);
            max_preempt = std::max(max_preempt, j.preemptions);
            const std::int64_t bound = analysis::retry_bound(ts, j.task);
            ok = ok && j.retries <= bound && j.preemptions <= bound;
          }
          all_ok = all_ok && ok;
          table.add_row({std::to_string(a), std::to_string(tasks),
                         use_edf ? "EDF" : "RUA",
                         adversarial ? "adversarial" : "random",
                         std::to_string(bound_min) + ".." +
                             std::to_string(bound_max),
                         std::to_string(max_retries),
                         std::to_string(max_preempt),
                         ok ? "yes" : "VIOLATION"});
        }
      }
    }
  }
  table.print();
  std::cout << "\nresult: "
            << (all_ok ? "retry and preemption counts within the Theorem-2 "
                         "event bound for every job"
                       : "BOUND VIOLATED")
            << "\n";
  return all_ok ? 0 : 1;
}
