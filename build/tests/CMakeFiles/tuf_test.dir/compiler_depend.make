# Empty compiler generated dependencies file for tuf_test.
# This may be replaced when dependencies are built.
