// Lock-free atomic snapshot — the "snapshot abstraction" named in the
// paper's future work (Section 7).
//
// N single-writer segments; scan() returns a view of all N that is
// guaranteed to have existed at one instant (linearizable).  The
// classic double-collect construction: two identical collects with no
// version change in between constitute a clean snapshot.  update() is
// wait-free (one version bump + one store); scan() is lock-free — it
// retries while writers keep moving, which is exactly the retry cost
// class Theorem 2 bounds for a job performing the scan.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <type_traits>

#include "lockfree/annotate.hpp"
#include "runtime/object_stats.hpp"

namespace lfrt::lockfree {

/// Bounded lock-free N-segment atomic snapshot.
///
/// T must be trivially copyable.  Each segment has exactly one writer
/// thread (single-writer/multi-reader per segment, like the register
/// model of the snapshot literature); any thread may scan.
template <typename T, std::size_t N>
class AtomicSnapshot {
  static_assert(std::is_trivially_copyable_v<T>,
                "segments are copied field-blind under version checks");
  static_assert(N >= 1, "need at least one segment");

 public:
  /// Wait-free single-writer update of segment `i`.
  void update(std::size_t i, const T& value) {
    Segment& seg = segments_[i];
    const std::uint64_t v = seg.version.load(std::memory_order_relaxed);
    seg.version.store(v + 1, std::memory_order_release);  // odd: in flight
    std::atomic_thread_fence(std::memory_order_release);
    // Racy against collects in flight; they re-check versions and
    // discard torn copies (annotate.hpp's seqlock contract).
    detail::store_value_slot(seg.value, value);
    std::atomic_thread_fence(std::memory_order_release);
    seg.version.store(v + 2, std::memory_order_release);
    stats_.record_op();
  }

  /// Lock-free scan: returns a linearizable view of all segments.
  std::array<T, N> scan() const {
    std::array<std::uint64_t, N> before{};
    std::array<T, N> view{};
    for (;;) {
      bool stable = true;
      for (std::size_t i = 0; i < N; ++i) {
        before[i] = segments_[i].version.load(std::memory_order_acquire);
        if (before[i] & 1) stable = false;  // writer mid-flight
      }
      if (stable) {
        std::atomic_thread_fence(std::memory_order_acquire);
        for (std::size_t i = 0; i < N; ++i)
          view[i] = detail::load_value_slot(const_cast<T&>(segments_[i].value));
        std::atomic_thread_fence(std::memory_order_acquire);
        bool clean = true;
        for (std::size_t i = 0; i < N; ++i) {
          if (segments_[i].version.load(std::memory_order_acquire) !=
              before[i]) {
            clean = false;
            break;
          }
        }
        if (clean) {
          stats_.record_op();
          return view;  // double collect agreed: atomic view
        }
      }
      stats_.record_retry();
    }
  }

  /// Read one segment without snapshot semantics (seqlock-style).
  T read(std::size_t i) const {
    const Segment& seg = segments_[i];
    for (;;) {
      const std::uint64_t v0 = seg.version.load(std::memory_order_acquire);
      if (v0 & 1) continue;
      std::atomic_thread_fence(std::memory_order_acquire);
      T copy = detail::load_value_slot(const_cast<T&>(seg.value));
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seg.version.load(std::memory_order_acquire) == v0) return copy;
    }
  }

  const runtime::ObjectStats& stats() const { return stats_; }

  static constexpr std::size_t size() { return N; }

 private:
  struct Segment {
    std::atomic<std::uint64_t> version{0};
    T value{};
  };

  std::array<Segment, N> segments_;
  mutable runtime::ObjectStats stats_;
};

}  // namespace lfrt::lockfree
