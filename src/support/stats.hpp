// Streaming statistics for experiment reporting.
//
// The paper reports each data point as an average with a 95% confidence
// interval (error bars in Figures 8-14).  RunningStats accumulates
// mean/variance with Welford's algorithm so benches can report the same
// (mean, ci95) pair without storing samples.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace lfrt {

/// Welford one-pass mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  double stddev() const { return std::sqrt(variance()); }

  /// Half-width of the 95% confidence interval of the mean (normal
  /// approximation; the paper's samples are in the thousands, where the
  /// t-distribution correction is negligible).
  double ci95() const {
    if (n_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample vector (linear interpolation, p in [0,100]).
/// Sorts a copy; intended for post-run reporting, not hot paths.
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace lfrt
