file(REMOVE_RECURSE
  "CMakeFiles/llf_test.dir/llf_test.cpp.o"
  "CMakeFiles/llf_test.dir/llf_test.cpp.o.d"
  "llf_test"
  "llf_test.pdb"
  "llf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
