// Log2-bucketed concurrent latency histogram.
//
// The shard_adaptive bench needs a p99 access latency, and tail
// percentiles cannot be recovered from a mean — so the access layer
// records every structure-operation duration here, always on.  A
// power-of-two bucket per sample keeps the record path to one clz and
// one relaxed fetch_add (no allocation, no lock), cheap enough to leave
// enabled in every run; the price is that a percentile is resolved to
// its bucket's upper bound, i.e. within 2x — plenty to show a tail
// collapsing by an order of magnitude.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace lfrt::runtime {

/// Concurrent histogram of nanosecond durations in log2 buckets:
/// bucket b counts samples in [2^(b-1), 2^b), bucket 0 counts {0}.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;  ///< covers > 3 days in ns

  void record(std::int64_t ns) {
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  std::int64_t count() const {
    std::int64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// Upper bound (ns) of the bucket holding the p-th percentile sample
  /// (p in [0, 1]); 0 when the histogram is empty.  Exact after
  /// quiesce, small-skew tolerant during a run.
  std::int64_t percentile(double p) const {
    std::int64_t counts[kBuckets];
    std::int64_t total = 0;
    for (int b = 0; b < kBuckets; ++b) {
      counts[b] = buckets_[b].load(std::memory_order_relaxed);
      total += counts[b];
    }
    if (total == 0) return 0;
    std::int64_t rank = static_cast<std::int64_t>(p * static_cast<double>(total));
    if (rank >= total) rank = total - 1;
    std::int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen > rank) return upper_bound(b);
    }
    return upper_bound(kBuckets - 1);
  }

  /// Fold another histogram's counts into this one (bucket-wise add).
  /// Safe concurrently with record() on either side; percentiles read
  /// mid-merge see a consistent-enough snapshot (same tolerance as a
  /// live run).
  void merge(const LatencyHistogram& other) {
    for (int b = 0; b < kBuckets; ++b) {
      const std::int64_t n = other.buckets_[b].load(std::memory_order_relaxed);
      if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
    }
  }

  /// Reset all buckets to zero.  Not linearizable against concurrent
  /// record() — samples racing a clear land before or after it; callers
  /// that need an exact epoch boundary must quiesce writers first.
  void clear() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  static int bucket_of(std::int64_t ns) {
    if (ns <= 0) return 0;
    const int b = std::bit_width(static_cast<std::uint64_t>(ns));
    return b < kBuckets ? b : kBuckets - 1;
  }

  static std::int64_t upper_bound(int bucket) {
    if (bucket == 0) return 0;
    return std::int64_t{1} << bucket;
  }

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
};

}  // namespace lfrt::runtime
