#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "runtime/shared_object.hpp"
#include "sched/dispatch.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "uam/uam.hpp"

namespace lfrt::sim {

std::string to_string(ShareMode mode) {
  switch (mode) {
    case ShareMode::kLockBased:
      return "lock-based";
    case ShareMode::kLockFree:
      return "lock-free";
    case ShareMode::kIdeal:
      return "ideal";
  }
  __builtin_unreachable();
}

namespace {

enum class MsKind : std::uint8_t {
  kAccessStart,
  kAccessEnd,
  kSpanAcquire,  // nested: lock request at a span's acquire offset
  kSpanRelease,  // nested: unlock request at a span's release offset
  kCompletion,
  kHandlerEnd,
};

enum class EvKind : std::uint8_t { kMilestone, kExpiry, kArrival, kController };

struct Event {
  Time t = 0;
  int prio = 0;  // milestone 0 < expiry 1 < arrival 2 at equal time
  std::int64_t seq = 0;
  EvKind kind = EvKind::kArrival;
  JobId job = kNoJob;     // milestone/expiry target
  TaskId task = -1;       // arrival target
  std::int64_t epoch = 0; // milestone validity stamp
  MsKind ms = MsKind::kCompletion;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.t != b.t) return a.t > b.t;
    if (a.prio != b.prio) return a.prio > b.prio;
    return a.seq > b.seq;
  }
};

}  // namespace

struct Simulator::Impl {
  TaskSet tasks;
  const sched::Scheduler* scheduler;
  SimConfig cfg;
  std::unordered_map<TaskId, std::vector<Time>> arrival_traces;

  // ---- runtime state ----
  Time now = 0;
  // Dense job slab: JobId IS the index.  Ids are handed out sequentially
  // from 0 and a job is never destroyed mid-run (retire only drops it
  // from `alive`), so the slab stays id-ordered and lookups are O(1)
  // array indexing instead of hashing.  run() reserves the full arrival
  // count up front, so steady-state arrivals never reallocate — but no
  // Job& is ever held across an insertion anyway.
  std::vector<Job> jobs;
  std::vector<int> job_cpu;  // per job: CPU it occupies, or -1
  // Per job: length of its current access attempt, set when the attempt
  // starts (access start, lock acquisition, retry).  With the cost
  // model disabled this always equals access_len(object); enabled, it
  // bakes in the contender count observed at attempt start — stored so
  // milestone reposts see one stable length for the whole attempt.
  std::vector<Time> attempt_len_;
  // Per job: instance of the flat-mode held lock, recorded at
  // acquisition, so a placement migration mid-hold still releases the
  // instance actually held.
  std::vector<std::int32_t> held_inst_;
  std::vector<JobId> alive;
  std::vector<JobId> running_on;    // per CPU: job or kNoJob
  std::vector<Time> run_start_on;   // per CPU: instant its job (re)starts
  std::int64_t epoch = 0;
  Time last_sync = 0;
  Time cpu_free_at = 0;  // when pending scheduler overhead drains
  // Per-(object, instance) holder set (multi-unit resources: capacity
  // comes from TaskSet::object_units, per instance; the DATE paper's
  // single-unit model is the one-unit special case).  Flattened
  // [o * kMaxObjectShards + inst]: under per-cluster object scoping a
  // queue/stack object has one instance per cluster and a task locks
  // its own cluster's instance (lock_inst); every other configuration
  // maps to instance 0 — the legacy per-object rule, bit for bit.
  std::vector<std::vector<JobId>> holders;
  // Per-(object, shard) last lock-free WRITE completion — the conflict
  // source.  Flattened [o * kMaxObjectShards + shard]; the shard of an
  // access is task % shard_count_[o], evaluated at CAS time, so a
  // promotion applied mid-attempt narrows the attempt's own conflict
  // window exactly like a real re-read of a different stripe head.
  // With shard_count_[o] == 1 every access maps to shard 0 and this IS
  // the pre-sharding per-object rule, bit for bit.
  std::vector<Time> last_shard_write;
  std::vector<std::int32_t> shard_count_;  // per-object live stripe count
  // Live placement (task_affinity mutates under controller moves) and
  // the derived cluster topology / object-scoping switch.
  sched::Placement placement_;
  std::int32_t cluster_count_ = 1;
  bool scoped_ = false;  // per-cluster queue/stack instancing in force
  JobId next_job_id = 0;
  std::int64_t next_seq = 0;
  bool ran = false;
  Rng exec_rng{0};

  std::priority_queue<Event, std::vector<Event>, EventLater> q;
  SimReport report;

  // ---- per-event scratch ----
  //
  // The scheduler invocation path runs at every arrival, departure, and
  // (lock-based) lock/unlock request; these buffers are reused across
  // events so the steady-state path performs no heap allocation (the
  // scheduler side reuses `sched_ws` the same way).  reschedule() may
  // recurse once after deadlock resolution — safe, because the recursive
  // call's caller returns immediately without touching the scratch.
  std::unique_ptr<sched::Scheduler::Workspace> sched_ws;
  sched::ScheduleResult sched_result;
  std::vector<sched::SchedJob> view_scratch;
  std::vector<JobId> aborting_scratch;
  // Top-M target selection + sticky CPU assignment, shared with
  // rt::Executor so both substrates dispatch identically.
  sched::DispatchSelector selector;
  std::ostringstream trace_os;  // reused trace formatting buffer

  // Resolved per-object specs (one per ObjectId; the homogeneous
  // default when cfg.objects is empty).
  std::vector<runtime::ObjectSpec> obj_specs;

  // The adaptive-sharding policy, stepped from deterministic
  // kController epoch events — the same core the executor's controller
  // thread runs.  Engaged only when an object opts in (and the mode has
  // retries to act on), so legacy configurations take none of these
  // paths.
  std::unique_ptr<runtime::ContentionControllerCore> controller;

  Impl(TaskSet ts, const sched::Scheduler& sch, SimConfig c)
      : tasks(std::move(ts)), scheduler(&sch), cfg(c) {
    tasks.validate();
    LFRT_CHECK_MSG(cfg.cpu_count >= 1, "need at least one CPU");
    if (cfg.mode == ShareMode::kLockFree)
      LFRT_CHECK_MSG(cfg.lockfree_access_time > 0,
                     "lock-free access time must be positive");
    for (const auto& t : tasks.tasks) {
      if (t.nested())
        LFRT_CHECK_MSG(cfg.mode == ShareMode::kLockBased,
                       "nested critical sections require lock-based "
                       "sharing (paper, Section 2)");
    }
    if (cfg.objects.empty()) {
      obj_specs = runtime::uniform_objects(
          tasks.object_count, runtime::ObjectKind::kQueue,
          cfg.mode == ShareMode::kLockBased
              ? runtime::ObjectImpl::kLockBased
              : runtime::ObjectImpl::kLockFree);
    } else {
      LFRT_CHECK_MSG(static_cast<std::int32_t>(cfg.objects.size()) ==
                         tasks.object_count,
                     "SimConfig::objects must list one spec per object");
      obj_specs = cfg.objects;
      if (cfg.mode != ShareMode::kIdeal) {
        for (const auto& s : obj_specs)
          if (s.impl == runtime::ObjectImpl::kLockFree)
            LFRT_CHECK_MSG(cfg.lockfree_access_time > 0,
                           "lock-free access time must be positive");
      }
      // Nested spans model critical sections; their objects must be
      // lock-based under a mixed universe.
      for (const auto& t : tasks.tasks)
        for (const auto& sp : t.spans)
          LFRT_CHECK_MSG(
              runtime::is_lock_based(
                  obj_specs[static_cast<std::size_t>(sp.object)].impl),
              "nested spans require lock-based objects");
    }
    TaskId max_task = -1;
    for (const auto& t : tasks.tasks) max_task = std::max(max_task, t.id);
    placement_ = cfg.dispatch.placement;
    placement_.validate(cfg.cpu_count, static_cast<std::size_t>(max_task + 1));
    cluster_count_ = placement_.cluster_count(cfg.cpu_count);
    selector.set_options(cfg.dispatch);
    running_on.assign(static_cast<std::size_t>(cfg.cpu_count), kNoJob);
    run_start_on.assign(static_cast<std::size_t>(cfg.cpu_count), 0);
    holders.assign(static_cast<std::size_t>(tasks.object_count) *
                       static_cast<std::size_t>(runtime::kMaxObjectShards),
                   {});
    report.cpu_busy.assign(static_cast<std::size_t>(cfg.cpu_count), 0);
    report.cpu_jobs.assign(static_cast<std::size_t>(cfg.cpu_count), 0);
    exec_rng = Rng(cfg.exec_seed);
    last_shard_write.assign(static_cast<std::size_t>(tasks.object_count) *
                                static_cast<std::size_t>(
                                    runtime::kMaxObjectShards),
                            -1);
    shard_count_.reserve(static_cast<std::size_t>(tasks.object_count));
    bool any_adapt = false;
    bool any_scoped_kind = false;
    for (const auto& s : obj_specs) {
      const bool shardable =
          s.impl == runtime::ObjectImpl::kLockFree &&
          (s.kind == runtime::ObjectKind::kQueue ||
           s.kind == runtime::ObjectKind::kStack);
      shard_count_.push_back(shardable ? runtime::clamp_shards(s.shards) : 1);
      any_adapt = any_adapt || (shardable && s.adapt);
      any_scoped_kind = any_scoped_kind || runtime::is_scoped_kind(s.kind);
    }
    scoped_ =
        !placement_.global() && placement_.scope_objects && any_scoped_kind;
    if (scoped_) {
      // Per-cluster instancing reuses the per-object stripe index space
      // (and conflicts with the other decompositions of the same
      // structure), so the combinations are excluded up front rather
      // than silently mis-modeled.
      LFRT_CHECK_MSG(cluster_count_ <= runtime::kMaxObjectShards,
                     "scoped placement supports at most kMaxObjectShards "
                     "clusters");
      LFRT_CHECK_MSG(!any_adapt,
                     "scoped placement excludes adaptive sharding");
      for (std::size_t o = 0; o < obj_specs.size(); ++o)
        if (runtime::is_scoped_kind(obj_specs[o].kind))
          LFRT_CHECK_MSG(shard_count_[o] == 1,
                         "scoped placement excludes static sharding on "
                         "queue/stack objects");
      for (const auto& t : tasks.tasks)
        LFRT_CHECK_MSG(t.spans.empty(),
                       "scoped placement excludes nested lock spans");
    }
    const bool want_place = cfg.controller.place && !placement_.global();
    if ((any_adapt || want_place) && cfg.mode != ShareMode::kIdeal) {
      LFRT_CHECK_MSG(cfg.controller.epoch > 0,
                     "controller epoch must be positive");
      controller = std::make_unique<runtime::ContentionControllerCore>(
          cfg.controller, obj_specs);
      if (want_place) {
        // Topology the placement actions need: each task's cluster, who
        // accesses each object (id order), and the single writer of
        // buffer/snapshot objects (or -1 when contested).
        std::vector<std::int32_t> clusters(
            static_cast<std::size_t>(max_task + 1), -1);
        for (TaskId t = 0; t <= max_task; ++t)
          clusters[static_cast<std::size_t>(t)] =
              placement_.cluster_of_task(t);
        std::vector<std::vector<TaskId>> accessors_of(
            static_cast<std::size_t>(tasks.object_count));
        std::vector<TaskId> writer_of(
            static_cast<std::size_t>(tasks.object_count), -1);
        std::vector<bool> contested(
            static_cast<std::size_t>(tasks.object_count), false);
        const auto note = [&](ObjectId o, TaskId t, bool write) {
          auto& acc = accessors_of[static_cast<std::size_t>(o)];
          if (std::find(acc.begin(), acc.end(), t) == acc.end())
            acc.push_back(t);
          if (write) {
            auto& w = writer_of[static_cast<std::size_t>(o)];
            if (w >= 0 && w != t) contested[static_cast<std::size_t>(o)] = true;
            w = t;
          }
        };
        for (const auto& t : tasks.tasks) {
          for (const auto& a : t.accesses) note(a.object, t.id, a.write);
          for (const auto& sp : t.spans) note(sp.object, t.id, true);
        }
        for (std::size_t o = 0; o < writer_of.size(); ++o) {
          if (contested[o]) writer_of[o] = -1;
          std::sort(accessors_of[o].begin(), accessors_of[o].end());
        }
        controller->enable_placement(std::move(clusters), cluster_count_,
                                     std::move(accessors_of),
                                     std::move(writer_of));
      }
    }
    sched_ws = scheduler->make_workspace();
    report.contention = runtime::ContentionMatrix(
        tasks.object_count, static_cast<std::int32_t>(max_task + 1));
  }

  const TaskParams& params_of(const Job& j) const {
    return tasks.by_id(j.task);
  }

  Job& job(JobId id) { return jobs[static_cast<std::size_t>(id)]; }
  const Job& job(JobId id) const {
    return jobs[static_cast<std::size_t>(id)];
  }
  bool valid(JobId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < jobs.size();
  }

  /// A compute offset declared against the nominal u_i, rescaled to the
  /// job's actual execution demand (context-dependent execution times).
  Time scaled(const Job& j, Time nominal_offset) const {
    const Time nominal = params_of(j).exec_time;
    if (j.exec_actual == nominal) return nominal_offset;
    return nominal_offset * j.exec_actual / nominal;
  }

  /// Whether object `o` blocks (lock-based — any zoo lock) rather than
  /// retries.
  bool lock_based_obj(ObjectId o) const {
    if (cfg.mode == ShareMode::kIdeal) return false;
    return runtime::is_lock_based(
        obj_specs[static_cast<std::size_t>(o)].impl);
  }

  runtime::ObjectKind kind_of(ObjectId o) const {
    return obj_specs[static_cast<std::size_t>(o)].kind;
  }

  /// Stripe of object `o` that task `t`'s accesses land on — the same
  /// affinity rule the executor's sharded containers apply.
  std::int32_t shard_of(ObjectId o, TaskId t) const {
    const std::int32_t k = shard_count_[static_cast<std::size_t>(o)];
    if (k <= 1) return 0;
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(t) %
                                     static_cast<std::uint32_t>(k));
  }

  /// Placement instance of object `o` that task `t`'s accesses land on:
  /// the task's cluster for queue/stack kinds under per-cluster object
  /// scoping, else 0 (the legacy single-instance model, bit for bit).
  /// Unplaced tasks use instance 0.
  std::int32_t lock_inst(ObjectId o, TaskId t) const {
    if (!scoped_ || !runtime::is_scoped_kind(kind_of(o))) return 0;
    const std::int32_t c = placement_.cluster_of_task(t);
    return (c >= 0 && c < cluster_count_) ? c : 0;
  }

  /// Flattened holder-set index of (object, instance).
  std::size_t hidx(ObjectId o, std::int32_t inst) const {
    return static_cast<std::size_t>(o) *
               static_cast<std::size_t>(runtime::kMaxObjectShards) +
           static_cast<std::size_t>(inst);
  }

  /// Per-object access segment length under the flat model: r for
  /// lock-based objects, s for lock-free ones, 0 under the ideal
  /// yardstick.  With the cost model enabled this is superseded per
  /// attempt by attempt_cost below.
  Time access_len(ObjectId o) const {
    if (cfg.mode == ShareMode::kIdeal) return 0;
    return lock_based_obj(o) ? cfg.lock_access_time
                             : cfg.lockfree_access_time;
  }

  /// Other alive jobs currently in, or blocked on, an access of `o` —
  /// the contender count the cost model's per-contender term scales by.
  /// Under scoped placement only same-instance jobs contend (disjoint
  /// clusters touch disjoint structures).
  std::int64_t contenders_on(ObjectId o, JobId self) const {
    const std::int32_t inst = lock_inst(o, job(self).task);
    std::int64_t n = 0;
    for (JobId id : alive) {
      if (id == self) continue;
      const Job& other = job(id);
      if (other.access_object == o &&
          (other.in_access || other.state == JobState::kBlocked) &&
          lock_inst(o, other.task) == inst)
        ++n;
    }
    return n;
  }

  /// Length of the access attempt job `self` starts on `o` right now.
  /// Flat path (model disabled) is access_len — bit-identical to the
  /// pre-model simulator; enabled, the object's (kind, impl) cell is
  /// evaluated against the live contender count.  `retried` marks a
  /// restarted attempt (adds the cell's retry penalty).
  Time attempt_cost(ObjectId o, bool write, JobId self, bool retried) const {
    if (cfg.mode == ShareMode::kIdeal) return 0;
    if (!cfg.cost_model.enabled) return access_len(o);
    const runtime::ObjectSpec& spec = obj_specs[static_cast<std::size_t>(o)];
    return runtime::access_cost(cfg.cost_model.at(spec.kind, spec.impl),
                                spec.kind, write, contenders_on(o, self),
                                retried ? 1 : 0);
  }

  /// Cost estimate of a not-yet-started access for the scheduler's
  /// remaining-work view: the uncontended cell cost (the scheduler is
  /// shown estimates, not clairvoyant contention).
  Time pending_cost(ObjectId o, bool write) const {
    if (cfg.mode == ShareMode::kIdeal) return 0;
    if (!cfg.cost_model.enabled) return access_len(o);
    const runtime::ObjectSpec& spec = obj_specs[static_cast<std::size_t>(o)];
    return runtime::access_cost(cfg.cost_model.at(spec.kind, spec.impl),
                                spec.kind, write, /*contenders=*/0);
  }

  /// The stored length of `j`'s in-flight attempt (valid while
  /// j.in_access).
  Time attempt_len(const Job& j) const {
    return attempt_len_[static_cast<std::size_t>(j.id)];
  }
  void set_attempt_len(const Job& j, Time len) {
    attempt_len_[static_cast<std::size_t>(j.id)] = len;
  }

  runtime::ContentionCell& ccell(ObjectId o, TaskId t) {
    return report.contention.at(o, t);
  }

  /// Append one trace line from streamable parts.  The parts are only
  /// formatted when tracing is on, so the (hot) call sites pay nothing
  /// for it in a plain run — no string building, no allocation.
  template <typename... Parts>
  void trace(Parts&&... parts) {
    if (!cfg.record_trace) return;
    trace_os.str(std::string());
    trace_os.clear();
    trace_os << "[" << now << "] ";
    (trace_os << ... << parts);
    report.trace.push_back(trace_os.str());
  }

  void record_slice(JobId id, TaskId task, int cpu, Time begin, Time end) {
    auto& out = report.slices;
    if (!out.empty() && out.back().job == id && out.back().cpu == cpu &&
        out.back().end == begin) {
      out.back().end = end;  // merge contiguous stretches
      return;
    }
    out.push_back({id, task, cpu, begin, end});
  }

  // O(1) via the per-job CPU index (kept in sync at every running_on
  // write), replacing the per-event scan over the CPU array.
  int cpu_of(JobId id) const { return job_cpu[static_cast<std::size_t>(id)]; }

  /// Clear a CPU slot, unbinding its job's CPU index.
  void clear_cpu(int c) {
    const JobId id = running_on[static_cast<std::size_t>(c)];
    if (id != kNoJob) job_cpu[static_cast<std::size_t>(id)] = -1;
    running_on[static_cast<std::size_t>(c)] = kNoJob;
  }

  // ---- per-job execution geometry -----------------------------------

  /// Remaining execution estimate: remaining compute plus remaining
  /// access time at each pending access's per-object cost
  /// (c_i = u_i + sum of t_acc over pending accesses; for a homogeneous
  /// universe this is the paper's u_i + m_i * t_acc).
  Time remaining_estimate(const Job& j) const {
    const auto& p = params_of(j);
    // The scheduler is shown the task's *estimate*; a job whose actual
    // demand overruns it simply looks (optimistically) nearly done.
    Time rem = std::max<Time>(1, p.exec_time - j.compute_done);
    if (p.nested()) {
      // Span accesses are critical sections — write-shaped for the cost
      // model (no snapshot scan term).
      for (std::size_t s = j.next_span; s < p.spans.size(); ++s)
        rem += pending_cost(p.spans[s].object, /*write=*/true);
      if (j.in_access) rem += attempt_len(j) - j.access_progress;
      return rem;
    }
    // next_access still indexes the in-flight access, so the sum
    // covers it in full (at its live attempt length); subtracting the
    // progress leaves its remainder.
    for (std::size_t a = j.next_access; a < p.accesses.size(); ++a) {
      if (j.in_access && a == j.next_access)
        rem += attempt_len(j);
      else
        rem += pending_cost(p.accesses[a].object, p.accesses[a].write);
    }
    if (j.in_access) rem -= j.access_progress;
    return rem;
  }

  /// Next interesting point of the job if it runs uninterrupted from
  /// now: {delta until it, what it is}.
  std::pair<Time, MsKind> next_milestone(const Job& j) const {
    const auto& p = params_of(j);
    if (j.state == JobState::kAborting)
      return {p.abort_handler_time - j.handler_done, MsKind::kHandlerEnd};
    if (j.in_access)
      return {attempt_len(j) - j.access_progress, MsKind::kAccessEnd};
    if (p.nested()) {
      // Next interesting compute offset: the innermost open span's
      // release, the next span's acquire, or completion — release
      // before acquire before completion at equal offsets (LIFO
      // discipline; validation guarantees release <= u_i).
      Time best = j.exec_actual;
      MsKind kind = MsKind::kCompletion;
      if (j.next_span < p.spans.size() &&
          scaled(j, p.spans[j.next_span].acquire_offset) <= best) {
        best = scaled(j, p.spans[j.next_span].acquire_offset);
        kind = MsKind::kSpanAcquire;
      }
      if (!j.open_spans.empty() &&
          scaled(j, p.spans[j.open_spans.back()].release_offset) <= best) {
        best = scaled(j, p.spans[j.open_spans.back()].release_offset);
        kind = MsKind::kSpanRelease;
      }
      return {std::max<Time>(0, best - j.compute_done), kind};
    }
    if (j.next_access < p.accesses.size()) {
      const Time off = scaled(j, p.accesses[j.next_access].offset);
      if (j.compute_done >= off) return {0, MsKind::kAccessStart};
      return {off - j.compute_done, MsKind::kAccessStart};
    }
    return {j.exec_actual - j.compute_done, MsKind::kCompletion};
  }

  /// Apply CPU progress of every running job up to instant t.
  void sync_progress(Time t) {
    for (int c = 0; c < cfg.cpu_count; ++c) {
      const JobId id = running_on[static_cast<std::size_t>(c)];
      if (id == kNoJob) continue;
      Job& j = job(id);
      const Time from =
          std::max(run_start_on[static_cast<std::size_t>(c)], last_sync);
      if (t <= from) continue;
      const Time delta = t - from;
      report.cpu_busy[static_cast<std::size_t>(c)] += delta;
      if (cfg.record_slices) record_slice(id, j.task, c, from, t);
      if (j.state == JobState::kAborting) {
        j.handler_done += delta;
        LFRT_CHECK(j.handler_done <= params_of(j).abort_handler_time);
      } else if (j.in_access) {
        j.access_progress += delta;
        LFRT_CHECK(j.access_progress <= attempt_len(j));
      } else {
        j.compute_done += delta;
        LFRT_CHECK(j.compute_done <= j.exec_actual);
      }
    }
    last_sync = std::max(last_sync, t);
  }

  // ---- dispatching ----------------------------------------------------

  /// Invalidate all pending milestones and re-post one per running job.
  void repost_milestones() {
    ++epoch;
    for (int c = 0; c < cfg.cpu_count; ++c) {
      const JobId id = running_on[static_cast<std::size_t>(c)];
      if (id == kNoJob) continue;
      const Job& j = job(id);
      const Time base =
          std::max(now, run_start_on[static_cast<std::size_t>(c)]);
      const auto [delta, kind] = next_milestone(j);
      q.push(Event{base + delta, 0, next_seq++, EvKind::kMilestone, id, -1,
                   epoch, kind});
    }
  }

  /// Keep the CPUs as they are but recompute the current job milestones
  /// (used after in-place state changes that are not scheduling events,
  /// e.g. lock-free access boundaries).
  void continue_running() { repost_milestones(); }

  /// Full scheduler invocation + dispatch.  Called at every scheduling
  /// event: arrivals, departures (completion/abort), and — lock-based
  /// only — lock and unlock requests.
  void reschedule() {
    auto& view = view_scratch;
    view.clear();
    view.reserve(alive.size());
    auto& aborting = aborting_scratch;
    aborting.clear();
    for (JobId id : alive) {
      const Job& j = job(id);
      if (j.state == JobState::kAborting) {
        // Abort handlers execute immediately at the highest eligibility
        // (Section 3.5); they are not the scheduler's to order.
        aborting.push_back(id);
        continue;
      }
      sched::SchedJob sj;
      sj.id = j.id;
      sj.arrival = j.arrival;
      sj.critical = j.critical_abs;
      sj.remaining = remaining_estimate(j);
      sj.tuf = params_of(j).tuf.get();
      sj.waits_on = j.state == JobState::kBlocked ? j.waits_on : kNoJob;
      view.push_back(sj);
    }

    scheduler->build_into(view, now, sched_ws.get(), sched_result);
    const sched::ScheduleResult& res = sched_result;
    ++report.sched_invocations;
    report.sched_ops += res.ops;
    const Time overhead = static_cast<Time>(
        std::llround(static_cast<double>(res.ops) * cfg.sched_ns_per_op));
    report.sched_overhead += overhead;

    // Deadlock resolution (nested sections): the scheduler's cycle
    // victims receive an abort-exception right away (Section 3.3).
    bool resolved_any = false;
    for (JobId victim : res.deadlock_victims) {
      if (!valid(victim)) continue;
      Job& v = job(victim);
      if (v.finished() || v.state == JobState::kAborting) continue;
      trace("deadlock victim job=", victim);
      ++report.deadlocks_resolved;
      raise_abort(v);
      resolved_any = true;
    }
    if (resolved_any) {
      // Immediate aborts released locks and woke waiters; rebuild the
      // schedule against the post-resolution state (both invocations
      // genuinely ran and are charged).  Recursion is bounded: a job is
      // a victim at most once.
      reschedule();
      return;
    }

    // Placement-aware top-M selection (shared with the executor): abort
    // handlers first, then the scheduler's dispatch choice, then the
    // schedule's runnable jobs in order, each admitted against its
    // cluster's CPU budget.  Under the global policy select_placed IS
    // select_steered; conflict-group steering engages only once the
    // controller installed a vector; with none this IS the plain
    // select, bit for bit.
    const auto& targets = selector.select_placed(
        aborting, res, cfg.cpu_count, jobs.size(),
        [&](JobId id) {
          const JobState s = job(id).state;
          return s == JobState::kReady || s == JobState::kRunning;
        },
        [&](JobId id) { return job(id).task; });

    dispatch(targets, overhead);
  }

  void dispatch(const std::vector<JobId>& targets, Time overhead) {
    // Sticky, placement-respecting assignment: keep selected jobs on
    // their current CPUs (when still inside their cluster), fill
    // newcomers into their cluster's freed slots.
    const auto& next = selector.assign_placed(
        targets, cfg.cpu_count, [&](JobId id) { return job(id).task; },
        [&](JobId id) { return cpu_of(id); });

    cpu_free_at = std::max(cpu_free_at, now) + overhead;

    for (int c = 0; c < cfg.cpu_count; ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      const JobId prev = running_on[ci];
      const JobId target = next[ci];
      if (prev == target) continue;  // sticky: run_start unchanged
      if (prev != kNoJob) {
        Job& pj = job(prev);
        job_cpu[static_cast<std::size_t>(prev)] = -1;
        if (!pj.finished() && pj.state != JobState::kBlocked) {
          if (pj.state == JobState::kRunning) pj.state = JobState::kReady;
          ++pj.preemptions;
          ++report.total_preemptions;
        }
      }
      running_on[ci] = target;
      if (target != kNoJob) {
        Job& j = job(target);
        job_cpu[static_cast<std::size_t>(target)] = c;
        if (j.state != JobState::kAborting) j.state = JobState::kRunning;
        run_start_on[ci] = cpu_free_at;
        ++report.dispatches;
        ++report.cpu_jobs[ci];
      }
    }
    repost_milestones();
  }

  // ---- event handlers -------------------------------------------------

  void handle_arrival(TaskId task_id) {
    const TaskParams& p = tasks.by_id(task_id);
    Job j;
    j.id = next_job_id++;
    j.task = task_id;
    j.arrival = now;
    j.critical_abs = now + p.critical_time();
    j.state = JobState::kReady;
    j.exec_actual = p.exec_time;
    if (p.exec_variation > 0.0) {
      const double f = 1.0 + exec_rng.uniform_real(-p.exec_variation,
                                                   p.exec_variation);
      j.exec_actual = std::max<Time>(
          1, static_cast<Time>(static_cast<double>(p.exec_time) * f));
    }
    trace("arrival task=", task_id, " job=", j.id);
    q.push(Event{j.critical_abs, 1, next_seq++, EvKind::kExpiry, j.id, -1,
                 0, MsKind::kCompletion});
    alive.push_back(j.id);
    LFRT_CHECK(j.id == static_cast<JobId>(jobs.size()));
    jobs.push_back(j);
    job_cpu.push_back(-1);
    attempt_len_.push_back(0);
    held_inst_.push_back(0);
    reschedule();
  }

  /// Wake every job blocked on this object instance (a unit just
  /// freed); they remain parked at their access boundary and re-request
  /// when dispatched (if another waiter grabs the unit first, they
  /// re-block).  Instance-precise: a waiter whose task sits in another
  /// cluster waits on a different structure and stays blocked.
  void wake_waiters_on(ObjectId obj, std::int32_t inst) {
    for (JobId id : alive) {
      Job& w = job(id);
      if (w.state == JobState::kBlocked && w.access_object == obj &&
          lock_inst(obj, w.task) == inst) {
        w.waits_on = kNoJob;
        w.state = JobState::kReady;
      }
    }
  }

  void release_object(Job& j, ObjectId obj, std::int32_t inst) {
    auto& hs = holders[hidx(obj, inst)];
    const auto it = std::find(hs.begin(), hs.end(), j.id);
    LFRT_CHECK_MSG(it != hs.end(), "release by a non-holder");
    hs.erase(it);
    wake_waiters_on(obj, inst);
  }

  /// Flat-mode release of the single held lock (at the instance it was
  /// acquired on — a migration mid-hold must not strand the unit).
  void release_lock(Job& j) {
    if (j.held_object == kNoObject) return;
    const ObjectId obj = j.held_object;
    j.held_object = kNoObject;
    release_object(j, obj, held_inst_[static_cast<std::size_t>(j.id)]);
  }

  /// Rollback: release everything the job holds (abort path; the
  /// exception handler restores object consistency — Section 3.5).
  /// Span objects are never scoped (spans exclude scoped placement), so
  /// their instance is always 0.
  void release_all_locks(Job& j) {
    release_lock(j);
    while (!j.held_stack.empty()) {
      const ObjectId obj = j.held_stack.back();
      j.held_stack.pop_back();
      release_object(j, obj, 0);
    }
    j.open_spans.clear();
  }

  void retire(JobId id) {
    alive.erase(std::remove(alive.begin(), alive.end(), id), alive.end());
    const int c = cpu_of(id);
    if (c >= 0) clear_cpu(c);
  }

  /// Raise an abort-exception on a job (critical-time expiry or
  /// deadlock resolution).  Does not invoke the scheduler; callers do.
  void raise_abort(Job& j) {
    trace("abort-exception job=", j.id);
    const TaskParams& p = params_of(j);
    // The abandoned access (if any) is rolled back by the handler.
    j.in_access = false;
    j.access_progress = 0;
    j.waits_on = kNoJob;
    if (p.abort_handler_time <= 0) {
      release_all_locks(j);
      j.state = JobState::kAborted;
      retire(j.id);
    } else {
      j.state = JobState::kAborting;
      j.handler_done = 0;
      // It re-enters the CPU via the abort-priority dispatch path.
      const int c = cpu_of(j.id);
      if (c >= 0) clear_cpu(c);
    }
  }

  void handle_expiry(JobId id) {
    if (!valid(id)) return;
    Job& j = job(id);
    if (j.finished() || j.state == JobState::kAborting) return;
    raise_abort(j);
    reschedule();
  }

  void handle_milestone(const Event& e) {
    if (e.epoch != epoch || cpu_of(e.job) < 0) return;  // stale
    Job& j = job(e.job);
    const TaskParams& p = params_of(j);

    switch (e.ms) {
      case MsKind::kAccessStart: {
        LFRT_CHECK(j.next_access < p.accesses.size());
        const ObjectId obj = p.accesses[j.next_access].object;
        if (cfg.mode == ShareMode::kIdeal) {
          // Zero-cost access: consume every access due at this offset.
          while (j.next_access < p.accesses.size() &&
                 p.accesses[j.next_access].offset <= j.compute_done) {
            ++ccell(p.accesses[j.next_access].object, j.task).ops;
            ++j.next_access;
          }
          continue_running();
          return;
        }
        const bool is_write = p.accesses[j.next_access].write;
        if (!lock_based_obj(obj)) {
          j.in_access = true;
          j.access_progress = 0;
          j.access_object = obj;
          j.access_attempt_start = now;
          set_attempt_len(j, attempt_cost(obj, is_write, j.id,
                                          /*retried=*/false));
          continue_running();  // not a scheduling event
          return;
        }
        // Lock-based: a lock request — a scheduling event either way.
        // Scoped placement routes the request to the task's cluster
        // instance of the object.
        const std::int32_t inst = lock_inst(obj, j.task);
        auto& hs = holders[hidx(obj, inst)];
        if (static_cast<std::int32_t>(hs.size()) < tasks.units_of(obj)) {
          hs.push_back(j.id);
          j.held_object = obj;
          held_inst_[static_cast<std::size_t>(j.id)] = inst;
          j.in_access = true;
          j.access_progress = 0;
          j.access_object = obj;
          set_attempt_len(j, attempt_cost(obj, is_write, j.id,
                                          /*retried=*/false));
          trace("lock acquired job=", j.id, " obj=", obj);
        } else {
          // Block on the earliest holder: the dependency chain's target.
          j.state = JobState::kBlocked;
          j.waits_on = hs.front();
          j.access_object = obj;
          ++j.blockings;
          ++report.total_blockings;
          ++ccell(obj, j.task).blockings;
          const int c = cpu_of(j.id);
          LFRT_CHECK(c >= 0);
          clear_cpu(c);
          trace("blocked job=", j.id, " on=", hs.front(), " obj=", obj);
        }
        reschedule();
        return;
      }

      case MsKind::kAccessEnd: {
        LFRT_CHECK(j.in_access);
        LFRT_CHECK(j.access_progress == attempt_len(j));
        if (!lock_based_obj(j.access_object)) {
          // The CAS executes here, at the end of the attempt: it fails
          // iff another job completed a WRITE to the same object since
          // this attempt's read (its window start) — reads never
          // invalidate anyone.  On one CPU the interfering writer must
          // have preempted this job mid-access — the Section-4 retry
          // model; on many CPUs true concurrency triggers it too.
          // Buffer/snapshot *writes* are exempt: NBW's writer and the
          // snapshot's single-writer update are wait-free, so only
          // their readers pay the retry cost (the cost migration those
          // structures exist to demonstrate).
          // Sharding narrows the window further: only writes to the
          // *same stripe* (task % live shard count) invalidate the CAS,
          // which is exactly why promotion collapses a retry storm.
          // Under scoped placement the stripe IS the task's cluster
          // instance (the decompositions are mutually exclusive), so
          // cross-cluster writes literally cannot conflict.
          const auto oi = static_cast<std::size_t>(j.access_object);
          const runtime::ObjectKind kind = kind_of(j.access_object);
          const std::int32_t stripe =
              (scoped_ && runtime::is_scoped_kind(kind))
                  ? lock_inst(j.access_object, j.task)
                  : shard_of(j.access_object, j.task);
          const auto si =
              oi * static_cast<std::size_t>(runtime::kMaxObjectShards) +
              static_cast<std::size_t>(stripe);
          const bool is_write = p.accesses[j.next_access].write;
          const bool wait_free_write =
              is_write && (kind == runtime::ObjectKind::kBuffer ||
                           kind == runtime::ObjectKind::kSnapshot);
          if (!wait_free_write &&
              last_shard_write[si] > j.access_attempt_start) {
            ++j.retries;
            ++report.total_retries;
            ++ccell(j.access_object, j.task).retries;
            j.access_progress = 0;
            j.access_attempt_start = now;
            // The restarted attempt is re-costed against the contention
            // now in force, plus the cell's retry penalty.
            set_attempt_len(j, attempt_cost(j.access_object, is_write, j.id,
                                            /*retried=*/true));
            trace("retry job=", j.id, " obj=", j.access_object);
            continue_running();
            return;
          }
          if (is_write) last_shard_write[si] = now;
          ++ccell(j.access_object, j.task).ops;
          j.in_access = false;
          j.access_progress = 0;
          j.access_object = kNoObject;
          ++j.next_access;
          continue_running();
          return;
        }
        ++ccell(j.access_object, j.task).ops;
        j.in_access = false;
        j.access_progress = 0;
        j.access_object = kNoObject;
        if (p.nested()) {
          // The object work is done but the lock stays held until the
          // span's release offset — not a scheduling event.
          continue_running();
          return;
        }
        ++j.next_access;
        release_lock(j);  // unlock request — a scheduling event
        trace("lock released job=", j.id);
        reschedule();
        return;
      }

      case MsKind::kSpanAcquire: {
        LFRT_CHECK(j.next_span < p.spans.size());
        LFRT_CHECK(j.compute_done ==
                   scaled(j, p.spans[j.next_span].acquire_offset));
        const ObjectId obj = p.spans[j.next_span].object;
        auto& hs = holders[hidx(obj, 0)];  // spans exclude scoping
        if (static_cast<std::int32_t>(hs.size()) < tasks.units_of(obj)) {
          hs.push_back(j.id);
          j.held_stack.push_back(obj);
          j.open_spans.push_back(j.next_span);
          ++j.next_span;
          j.in_access = true;
          j.access_progress = 0;
          j.access_object = obj;
          set_attempt_len(j, attempt_cost(obj, /*write=*/true, j.id,
                                          /*retried=*/false));
          trace("span acquired job=", j.id, " obj=", obj,
                " depth=", j.held_stack.size());
        } else {
          j.state = JobState::kBlocked;
          j.waits_on = hs.front();
          j.access_object = obj;
          ++j.blockings;
          ++report.total_blockings;
          ++ccell(obj, j.task).blockings;
          const int c = cpu_of(j.id);
          LFRT_CHECK(c >= 0);
          clear_cpu(c);
          trace("blocked job=", j.id, " on=", hs.front(), " obj=", obj);
        }
        reschedule();  // lock request — a scheduling event either way
        return;
      }

      case MsKind::kSpanRelease: {
        LFRT_CHECK(!j.open_spans.empty());
        const std::size_t span = j.open_spans.back();
        LFRT_CHECK(j.compute_done == scaled(j, p.spans[span].release_offset));
        const ObjectId obj = p.spans[span].object;
        LFRT_CHECK(!j.held_stack.empty() && j.held_stack.back() == obj);
        j.open_spans.pop_back();
        j.held_stack.pop_back();
        release_object(j, obj, 0);
        trace("span released job=", j.id, " obj=", obj);
        reschedule();  // unlock request — a scheduling event
        return;
      }

      case MsKind::kCompletion: {
        LFRT_CHECK(j.compute_done == j.exec_actual);
        LFRT_CHECK(j.next_access == p.accesses.size());
        LFRT_CHECK(j.next_span == p.spans.size());
        LFRT_CHECK(j.held_object == kNoObject);
        LFRT_CHECK(j.held_stack.empty() && j.open_spans.empty());
        j.state = JobState::kCompleted;
        j.completion = now;
        trace("completion job=", j.id);
        retire(j.id);
        reschedule();  // a departure — a scheduling event
        return;
      }

      case MsKind::kHandlerEnd: {
        LFRT_CHECK(j.handler_done == p.abort_handler_time);
        release_all_locks(j);
        j.state = JobState::kAborted;
        trace("aborted job=", j.id);
        retire(j.id);
        reschedule();
        return;
      }
    }
  }

  /// One controller epoch: diff the live heatmap, apply shard
  /// promotions/demotions to the conflict model, install dispatch
  /// steering, and re-dispatch under it (the epoch hook runs inside the
  /// scheduling loop, so its decisions take effect immediately).
  void handle_controller() {
    auto ep = controller->step(report.contention);
    ++report.controller_epochs;
    for (runtime::ShardDecision& d : ep.decisions) {
      d.time = now;
      shard_count_[static_cast<std::size_t>(d.object)] = d.to_shards;
      report.shard_decisions.push_back(d);
      trace("shard ", d.from_shards < d.to_shards ? "promote" : "demote",
            " obj=", d.object, " ", d.from_shards, "->", d.to_shards);
    }
    selector.set_conflict_groups(std::move(ep.conflict_groups));
    for (runtime::PlacementMove& mv : ep.placement_moves) {
      mv.time = now;
      if (mv.task >= 0 &&
          static_cast<std::size_t>(mv.task) < placement_.task_affinity.size())
        placement_.task_affinity[static_cast<std::size_t>(mv.task)] =
            mv.to_cluster;
      trace("place task=", mv.task, " cluster=", mv.to_cluster,
            " obj=", mv.object);
      report.placement_moves.push_back(mv);
      // The moved task now locks (and CASes against) its new cluster's
      // instances; jobs parked on the old instance's wait list would
      // otherwise never see a wake from the structure they re-request
      // on, so re-ready them here — they re-block if that one is busy
      // too.  Held locks are untouched: release goes to held_inst_.
      for (JobId id : alive) {
        Job& w = job(id);
        if (w.task == mv.task && w.state == JobState::kBlocked) {
          w.waits_on = kNoJob;
          w.state = JobState::kReady;
        }
      }
    }
    if (!ep.placement_moves.empty()) {
      auto opts = selector.options();
      opts.placement = placement_;
      selector.set_options(std::move(opts));
    }
    if (now + cfg.controller.epoch <= cfg.horizon)
      q.push(Event{now + cfg.controller.epoch, 0, next_seq++,
                   EvKind::kController, kNoJob, -1, 0, MsKind::kCompletion});
    reschedule();
  }

  // ---- top level ------------------------------------------------------

  void seed_arrivals(std::uint64_t seed) {
    for (const auto& t : tasks.tasks) {
      if (arrival_traces.count(t.id)) continue;
      Rng rng(seed ^ (0x9E3779B97F4A7C15ULL *
                      static_cast<std::uint64_t>(t.id + 1)));
      arrival_traces[t.id] =
          arrivals::random_conformant(t.arrival, cfg.horizon, rng);
    }
  }

  SimReport run() {
    LFRT_CHECK_MSG(!ran, "Simulator::run is single-shot");
    ran = true;
    seed_arrivals(1);  // default traces for tasks without explicit ones

    std::size_t total_arrivals = 0;
    for (const auto& [task_id, times] : arrival_traces) {
      LFRT_CHECK_MSG(uam_conforms_max(tasks.by_id(task_id).arrival, times),
                     "arrival trace violates the task's UAM contract");
      total_arrivals += times.size();
      for (Time t : times)
        q.push(Event{t, 2, next_seq++, EvKind::kArrival, kNoJob, task_id,
                     0, MsKind::kCompletion});
    }
    // Every job the run can create corresponds to one queued arrival, so
    // this reservation makes the slab reallocation-free for the whole
    // run (and the parallel index vectors with it).
    jobs.reserve(total_arrivals);
    job_cpu.reserve(total_arrivals);
    attempt_len_.reserve(total_arrivals);
    held_inst_.reserve(total_arrivals);
    selector.reserve(total_arrivals);

    if (controller)
      q.push(Event{cfg.controller.epoch, 0, next_seq++, EvKind::kController,
                   kNoJob, -1, 0, MsKind::kCompletion});

    while (!q.empty()) {
      const Event e = q.top();
      q.pop();
      if (e.t > cfg.horizon) break;
      ++report.events_processed;
      sync_progress(e.t);
      now = e.t;
      switch (e.kind) {
        case EvKind::kArrival:
          handle_arrival(e.task);
          break;
        case EvKind::kExpiry:
          handle_expiry(e.job);
          break;
        case EvKind::kMilestone:
          handle_milestone(e);
          break;
        case EvKind::kController:
          handle_controller();
          break;
      }
    }

    finalize();
    return std::move(report);
  }

  void finalize() {
    for (const Job& j : jobs) {
      const TaskParams& p = params_of(j);
      if (j.critical_abs <= cfg.horizon) {
        ++report.counted_jobs;
        report.max_possible_utility += p.tuf->utility(0);
        if (j.state == JobState::kCompleted) {
          ++report.completed;
          report.accrued_utility += p.tuf->utility(j.sojourn());
        } else {
          ++report.aborted;
        }
      }
    }
    // The slab is already id-ordered; hand it to the report wholesale
    // (the old map-based path copied every job and sorted).
    report.jobs = std::move(jobs);
    // Final per-object stripe counts, matching the executor's matrix().
    report.contention.shard_counts.assign(shard_count_.begin(),
                                          shard_count_.end());
  }
};

Simulator::Simulator(TaskSet tasks, const sched::Scheduler& scheduler,
                     SimConfig config)
    : impl_(std::make_unique<Impl>(std::move(tasks), scheduler, config)) {}

Simulator::~Simulator() = default;
Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;

void Simulator::set_arrivals(TaskId task, std::vector<Time> arrivals) {
  LFRT_CHECK(std::is_sorted(arrivals.begin(), arrivals.end()));
  impl_->arrival_traces[task] = std::move(arrivals);
}

void Simulator::seed_arrivals(std::uint64_t seed) {
  impl_->seed_arrivals(seed);
}

SimReport Simulator::run() { return impl_->run(); }

}  // namespace lfrt::sim
