# Empty compiler generated dependencies file for lfrt_analysis.
# This may be replaced when dependencies are built.
