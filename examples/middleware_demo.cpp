// Middleware demo: the paper's implementation experience, live.
//
// The paper ran lock-free and lock-based object sharing under RUA inside
// an application-level meta-scheduler on a POSIX RTOS.  This demo does
// the real-thread equivalent with rt::Executor: a burst of sensor-fusion
// jobs with mixed TUFs shares a track store, once through a lock-free
// Michael&Scott queue and once through a mutex queue, under RUA
// dispatching.  Watch the accrued utility and the contention counters.
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>

#include "lockbased/mutex_queue.hpp"
#include "lockfree/msqueue.hpp"
#include "rt/executor.hpp"
#include "runtime/print_report.hpp"
#include "sched/rua.hpp"

using namespace lfrt;

namespace {

/// Spin for roughly `us` microseconds between checkpoints.
void work(rt::JobContext& ctx, int us, int checkpoints = 4) {
  for (int k = 0; k < checkpoints; ++k) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(us / checkpoints);
    while (std::chrono::steady_clock::now() < until) {
    }
    ctx.checkpoint();
  }
}

template <typename PushFn, typename PopFn>
rt::ExecutorReport run_burst(PushFn push, PopFn pop) {
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  rt::Executor ex(rua);

  // Twelve fusion jobs: importance varies 10..120, critical times vary
  // 3..14ms, each touches the shared track store twice.
  for (int i = 0; i < 12; ++i) {
    rt::RtJob job;
    const double importance = 10.0 * (1 + i % 4) + i;
    const Time critical = msec(3 + (i * 7) % 12);
    job.tuf = (i % 3 == 0) ? make_step_tuf(importance, critical)
                           : make_linear_tuf(importance, critical);
    job.expected_exec = usec(800);
    job.body = [push, pop, i](rt::JobContext& ctx) {
      push(i);
      work(ctx, 400);
      pop();
      work(ctx, 400);
    };
    ex.submit(std::move(job));
  }
  return ex.shutdown();
}

}  // namespace

int main() {
  std::cout << "Middleware burst: 12 fusion jobs under RUA on real "
               "threads\n\n";

  {
    auto q = std::make_shared<lockfree::MsQueue<int>>(64);
    const auto rep = run_burst([q](int v) { q->enqueue(v); },
                               [q] { q->dequeue(); });
    runtime::PrintOptions opts;
    opts.label = "lock-free ";
    opts.show_sched = true;
    runtime::print_report(std::cout, rep, opts);
    std::cout << "  track store: " << q->stats().retry_count()
              << " CAS retries over " << q->stats().op_count() << " ops\n";
  }
  {
    auto q = std::make_shared<lockbased::MutexQueue<int>>();
    const auto rep = run_burst([q](int v) { q->enqueue(v); },
                               [q] { q->dequeue(); });
    runtime::PrintOptions opts;
    opts.label = "lock-based";
    opts.show_sched = true;
    runtime::print_report(std::cout, rep, opts);
    std::cout << "  track store: " << q->stats().contended_count() << "/"
              << q->stats().acquisition_count() << " contended acquires\n";
  }
  std::cout << "\nThe executor here runs one CPU slot (the paper's "
               "uniprocessor model: job bodies serialize under "
               "cooperative middleware scheduling), so both runs "
               "complete the burst; "
               "the difference the paper quantifies appears in the "
               "object-access costs and, at RTOS scale, in the blocking "
               "chains the lock-based variant adds to every scheduling "
               "decision.\n";
  return 0;
}
