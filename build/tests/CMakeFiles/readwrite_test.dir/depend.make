# Empty dependencies file for readwrite_test.
# This may be replaced when dependencies are built.
