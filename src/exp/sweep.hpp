// Deterministic fan-out helpers on top of exp::ThreadPool.
//
// The contract every helper shares: results land at the index of the
// cell that produced them, and any reduction happens on the calling
// thread in cell order — so the value (and printed bytes) of a sweep is
// a pure function of its inputs, independent of the pool size.  Seeds
// are per-cell by construction in the callers (bench/common.hpp), which
// is what makes the cells independent in the first place.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "exp/thread_pool.hpp"

namespace lfrt::exp {

/// Evaluate fn(i) for i in [0, n) on the pool and return the results in
/// index order.  The result type must be default-constructible and
/// movable; fn must be safe to call concurrently on distinct indices.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::int64_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::int64_t>> {
  using R = std::invoke_result_t<Fn&, std::int64_t>;
  static_assert(std::is_default_constructible_v<R>,
                "parallel_map results are slotted into a pre-sized vector");
  std::vector<R> out(static_cast<std::size_t>(n));
  pool.parallel_for(n, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = fn(i);
  });
  return out;
}

/// parallel_map over a vector of inputs: fn(items[i]) in item order.
template <typename In, typename Fn>
auto sweep(ThreadPool& pool, const std::vector<In>& items, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, const In&>> {
  return parallel_map(pool, static_cast<std::int64_t>(items.size()),
                      [&](std::int64_t i) {
                        return fn(items[static_cast<std::size_t>(i)]);
                      });
}

}  // namespace lfrt::exp
