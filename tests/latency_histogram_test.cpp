// runtime::LatencyHistogram — direct coverage for the log2-bucket
// histogram behind the p50/p99/p999 sojourn and ingest SLOs: bucket
// boundary placement, percentile monotonicity, merge/clear, and a
// concurrent recording hammer (run under TSan via scripts/check.sh).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/latency_histogram.hpp"

namespace lfrt::runtime {
namespace {

TEST(LatencyHistogram, BucketBoundaries) {
  // bucket 0 holds {<= 0}; bucket b holds [2^(b-1), 2^b).
  EXPECT_EQ(LatencyHistogram::bucket_of(-5), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_of(1023), 10);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 11);
  // The top bucket absorbs everything beyond the range.
  EXPECT_EQ(LatencyHistogram::bucket_of(INT64_MAX),
            LatencyHistogram::kBuckets - 1);

  EXPECT_EQ(LatencyHistogram::upper_bound(0), 0);
  EXPECT_EQ(LatencyHistogram::upper_bound(1), 2);
  EXPECT_EQ(LatencyHistogram::upper_bound(10), 1024);
  // A sample always resolves to a percentile bound >= its value / 2.
  for (std::int64_t v : {1, 7, 100, 5'000, 1'000'000}) {
    const std::int64_t ub =
        LatencyHistogram::upper_bound(LatencyHistogram::bucket_of(v));
    EXPECT_GE(ub, v);
    EXPECT_LT(ub, 2 * v + 2);
  }
}

TEST(LatencyHistogram, PercentilesResolveToBucketUpperBounds) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.percentile(0.5), 0);

  // 90 fast samples (~100ns), 9 medium (~10us), 1 slow (~1ms).
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 9; ++i) h.record(10'000);
  h.record(1'000'000);
  EXPECT_EQ(h.count(), 100);

  EXPECT_EQ(h.percentile(0.50),
            LatencyHistogram::upper_bound(LatencyHistogram::bucket_of(100)));
  EXPECT_EQ(h.percentile(0.95),
            LatencyHistogram::upper_bound(LatencyHistogram::bucket_of(10'000)));
  EXPECT_EQ(
      h.percentile(0.999),
      LatencyHistogram::upper_bound(LatencyHistogram::bucket_of(1'000'000)));
}

TEST(LatencyHistogram, PercentileMonotoneInP) {
  LatencyHistogram h;
  for (std::int64_t v = 1; v <= 100'000; v = v * 3 + 1) h.record(v);
  std::int64_t prev = -1;
  for (double p = 0.0; p <= 1.0; p += 0.01) {
    const std::int64_t q = h.percentile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
}

TEST(LatencyHistogram, MergeAddsBucketwiseAndClearResets) {
  LatencyHistogram a, b;
  for (int i = 0; i < 10; ++i) a.record(100);
  for (int i = 0; i < 20; ++i) b.record(100'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 30);
  // Merged tail comes from b.
  EXPECT_EQ(
      a.percentile(0.99),
      LatencyHistogram::upper_bound(LatencyHistogram::bucket_of(100'000)));
  // b unchanged by being merged from.
  EXPECT_EQ(b.count(), 20);

  a.clear();
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.percentile(0.99), 0);
}

TEST(LatencyHistogram, ConcurrentRecordHammer) {
  // 4 writers x 100k samples racing a merging reader; total count must
  // be exact after join (relaxed fetch_add loses nothing).  TSan guards
  // the memory-order claims.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100'000;
  LatencyHistogram h;
  LatencyHistogram sink;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record((i % 1'000) * (t + 1));
    });
  }
  // Reader races merge + percentile against the writers (values are
  // only required to be valid, not exact, until the writers join).
  for (int i = 0; i < 50; ++i) {
    sink.clear();
    sink.merge(h);
    (void)sink.percentile(0.99);
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kPerThread);
  sink.clear();
  sink.merge(h);
  EXPECT_EQ(sink.count(), h.count());
}

}  // namespace
}  // namespace lfrt::runtime
