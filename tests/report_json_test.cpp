// runtime::to_json / from_json — RunReport serialization.
//
// The contract under test: from_json(to_json(r)) reproduces every
// serialized field bit-exactly (doubles included — they are printed
// with max_digits10), the contention heatmap survives the trip, and
// malformed or structurally inconsistent input throws instead of
// producing a silently wrong report.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "runtime/report_json.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace lfrt::runtime {
namespace {

RunReport sample_report() {
  RunReport r;
  r.counted_jobs = 7;
  r.completed = 5;
  r.aborted = 2;
  r.accrued_utility = 100.0 / 3.0;  // non-terminating binary fraction
  r.max_possible_utility = 123.456789;
  r.dispatches = 11;
  r.sched_invocations = 13;
  r.sched_ops = 170;
  r.total_retries = 4;
  r.total_blockings = 2;
  r.total_preemptions = 3;
  r.total_backoff_spins = 21;

  Job j;
  j.id = 42;
  j.task = 3;
  j.arrival = msec(1);
  j.critical_abs = msec(5);
  j.state = JobState::kCompleted;
  j.exec_actual = usec(800);
  j.retries = 4;
  j.blockings = 2;
  j.preemptions = 3;
  j.backoff_spins = 9;
  j.completion = msec(2);
  r.jobs.push_back(j);
  j.id = 43;
  j.state = JobState::kAborted;
  j.completion = msec(6);
  r.jobs.push_back(j);

  r.contention = ContentionMatrix(2, 3);
  r.contention.at(0, 1) = {10, 4, 0};
  r.contention.at(1, 2) = {6, 0, 2};
  r.contention.shard_counts = {4, 1};  // the sharding dimension
  return r;
}

RunReport service_report() {
  RunReport r = sample_report();
  r.rejected = 9;
  r.degraded = 4;
  r.sojourn_p50_ns = 2'048;
  r.sojourn_p99_ns = 65'536;
  r.sojourn_p999_ns = 524'288;
  r.ingest_p50_ns = 256;
  r.ingest_p99_ns = 256;  // equal neighbours are legal (monotone, not strict)
  r.ingest_p999_ns = 8'192;
  return r;
}

TEST(ReportJson, HandBuiltRoundTrip) {
  const RunReport r = sample_report();
  const RunReport back = from_json(to_json(r));

  EXPECT_EQ(back.counted_jobs, r.counted_jobs);
  EXPECT_EQ(back.completed, r.completed);
  EXPECT_EQ(back.aborted, r.aborted);
  EXPECT_EQ(back.accrued_utility, r.accrued_utility);  // bit-exact
  EXPECT_EQ(back.max_possible_utility, r.max_possible_utility);
  EXPECT_EQ(back.dispatches, r.dispatches);
  EXPECT_EQ(back.sched_invocations, r.sched_invocations);
  EXPECT_EQ(back.sched_ops, r.sched_ops);
  EXPECT_EQ(back.total_retries, r.total_retries);
  EXPECT_EQ(back.total_blockings, r.total_blockings);
  EXPECT_EQ(back.total_preemptions, r.total_preemptions);
  EXPECT_EQ(back.total_backoff_spins, r.total_backoff_spins);
  EXPECT_EQ(back.aur(), r.aur());

  ASSERT_EQ(back.jobs.size(), r.jobs.size());
  for (std::size_t i = 0; i < r.jobs.size(); ++i) {
    const Job& a = r.jobs[i];
    const Job& b = back.jobs[i];
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(b.task, a.task);
    EXPECT_EQ(b.arrival, a.arrival);
    EXPECT_EQ(b.critical_abs, a.critical_abs);
    EXPECT_EQ(b.state, a.state);
    EXPECT_EQ(b.exec_actual, a.exec_actual);
    EXPECT_EQ(b.retries, a.retries);
    EXPECT_EQ(b.blockings, a.blockings);
    EXPECT_EQ(b.preemptions, a.preemptions);
    EXPECT_EQ(b.backoff_spins, a.backoff_spins);
    EXPECT_EQ(b.completion, a.completion);
  }
  // operator== covers shard_counts: the sharding dimension round-trips.
  EXPECT_EQ(back.contention, r.contention);
}

/// Edge-of-representation doubles must survive the trip bit-exactly,
/// not merely compare equal: EXPECT_EQ(-0.0, 0.0) passes, so the sign
/// bit and the exact mantissa are asserted through bit_cast.
TEST(ReportJson, NegativeZeroAndSubnormalsRoundTripBitExact) {
  RunReport r = sample_report();
  r.accrued_utility = -0.0;
  r.max_possible_utility = 1e-300;
  RunReport back = from_json(to_json(r));
  EXPECT_TRUE(std::signbit(back.accrued_utility));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.accrued_utility),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.max_possible_utility),
            std::bit_cast<std::uint64_t>(1e-300));

  // The smallest positive double (one denormal bit) and a negative
  // subnormal: %.17g must carry enough digits to reproduce them.
  r.accrued_utility = std::numeric_limits<double>::denorm_min();
  r.max_possible_utility = -4.9406564584124654e-316;
  back = from_json(to_json(r));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.accrued_utility),
            std::bit_cast<std::uint64_t>(
                std::numeric_limits<double>::denorm_min()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.max_possible_utility),
            std::bit_cast<std::uint64_t>(-4.9406564584124654e-316));
}

/// Reports written before backoff accounting and sharding existed still
/// parse: the new fields default to zero / empty.
TEST(ReportJson, LegacyReportWithoutNewFieldsParses) {
  const RunReport back = from_json(
      "{\"counted_jobs\": 1, \"total_retries\": 2,"
      " \"jobs\": [{\"id\": 0, \"state\": 0, \"retries\": 2}],"
      " \"contention\": {\"objects\": 1, \"tasks\": 1,"
      " \"cells\": [[3,2,0]]}}");
  EXPECT_EQ(back.total_backoff_spins, 0);
  ASSERT_EQ(back.jobs.size(), 1u);
  EXPECT_EQ(back.jobs[0].backoff_spins, 0);
  EXPECT_TRUE(back.contention.shard_counts.empty());
  EXPECT_EQ(back.contention.at(0, 0).ops, 3);
}

/// Service-mode fields (PR 7): admission tallies and latency
/// percentiles round-trip; reports without them parse with zero
/// defaults; reports with all of them zero serialize without the keys
/// at all (pre-service reports stay byte-identical).
TEST(ReportJson, ServiceFieldsRoundTrip) {
  const RunReport r = service_report();
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"rejected\":9"), std::string::npos);
  const RunReport back = from_json(json);
  EXPECT_EQ(back.rejected, r.rejected);
  EXPECT_EQ(back.degraded, r.degraded);
  EXPECT_EQ(back.sojourn_p50_ns, r.sojourn_p50_ns);
  EXPECT_EQ(back.sojourn_p99_ns, r.sojourn_p99_ns);
  EXPECT_EQ(back.sojourn_p999_ns, r.sojourn_p999_ns);
  EXPECT_EQ(back.ingest_p50_ns, r.ingest_p50_ns);
  EXPECT_EQ(back.ingest_p99_ns, r.ingest_p99_ns);
  EXPECT_EQ(back.ingest_p999_ns, r.ingest_p999_ns);

  // Legacy report: fields absent -> zero, and not emitted when zero.
  const RunReport legacy = from_json("{\"counted_jobs\": 3}");
  EXPECT_EQ(legacy.rejected, 0);
  EXPECT_EQ(legacy.degraded, 0);
  EXPECT_EQ(legacy.sojourn_p999_ns, 0);
  EXPECT_EQ(legacy.ingest_p999_ns, 0);
  EXPECT_EQ(to_json(sample_report()).find("rejected"), std::string::npos);
}

TEST(ReportJson, ServiceFieldValidationThrows) {
  // Negative admission tallies.
  EXPECT_THROW(from_json("{\"rejected\": -1}"), std::runtime_error);
  EXPECT_THROW(from_json("{\"degraded\": -2}"), std::runtime_error);
  // Negative percentiles.
  EXPECT_THROW(from_json("{\"sojourn_p50_ns\": -5}"), std::runtime_error);
  EXPECT_THROW(from_json("{\"ingest_p999_ns\": -1}"), std::runtime_error);
  // Non-monotone percentile chains (p50 <= p99 <= p999).
  EXPECT_THROW(
      from_json("{\"sojourn_p50_ns\": 100, \"sojourn_p99_ns\": 50,"
                " \"sojourn_p999_ns\": 200}"),
      std::runtime_error);
  EXPECT_THROW(
      from_json("{\"ingest_p50_ns\": 1, \"ingest_p99_ns\": 300,"
                " \"ingest_p999_ns\": 200}"),
      std::runtime_error);
  // A monotone chain with an absent p50 (defaults 0) is fine.
  EXPECT_EQ(from_json("{\"sojourn_p99_ns\": 5, \"sojourn_p999_ns\": 9}")
                .sojourn_p999_ns,
            9);
}

TEST(ReportJson, EmptyReportRoundTrips) {
  const RunReport back = from_json(to_json(RunReport{}));
  EXPECT_EQ(back.counted_jobs, 0);
  EXPECT_TRUE(back.jobs.empty());
  EXPECT_TRUE(back.contention.empty());
}

/// A real simulator report (heatmap included) survives the trip — the
/// integration-level witness benches rely on.
TEST(ReportJson, SimulatorReportRoundTrips) {
  workload::WorkloadSpec spec;
  spec.task_count = 4;
  spec.object_count = 2;
  spec.accesses_per_job = 2;
  spec.load = 0.5;
  spec.seed = 5;
  const TaskSet ts = workload::make_task_set(spec);
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(1);
  cfg.horizon = msec(50);
  sim::Simulator sim(ts, rua, cfg);
  const sim::SimReport rep = sim.run();
  ASSERT_GT(rep.counted_jobs, 0);
  ASSERT_FALSE(rep.contention.empty());

  const RunReport back = from_json(to_json(rep));
  EXPECT_EQ(back.counted_jobs, rep.counted_jobs);
  EXPECT_EQ(back.completed, rep.completed);
  EXPECT_EQ(back.accrued_utility, rep.accrued_utility);
  EXPECT_EQ(back.total_retries, rep.total_retries);
  EXPECT_EQ(back.jobs.size(), rep.jobs.size());
  EXPECT_EQ(back.contention, rep.contention);
}

TEST(ReportJson, MalformedInputThrows) {
  EXPECT_THROW(from_json(""), std::runtime_error);
  EXPECT_THROW(from_json("{"), std::runtime_error);
  EXPECT_THROW(from_json("[]"), std::runtime_error);          // not an object
  EXPECT_THROW(from_json("{\"jobs\": 3}"), std::runtime_error);
  EXPECT_THROW(from_json("{\"counted_jobs\": }"), std::runtime_error);
  EXPECT_THROW(from_json("{} trailing"), std::runtime_error);
}

TEST(ReportJson, InconsistentContentionThrows) {
  // 2x3 matrix must carry exactly 6 cells.
  EXPECT_THROW(
      from_json("{\"contention\": {\"objects\": 2, \"tasks\": 3, "
                "\"cells\": [[1,2,3]]}}"),
      std::runtime_error);
  // Cells must be 3-number arrays.
  EXPECT_THROW(
      from_json("{\"contention\": {\"objects\": 1, \"tasks\": 1, "
                "\"cells\": [[1,2]]}}"),
      std::runtime_error);
  // Negative dimensions are rejected.
  EXPECT_THROW(
      from_json("{\"contention\": {\"objects\": -1, \"tasks\": 1, "
                "\"cells\": []}}"),
      std::runtime_error);
  // Out-of-range job state is rejected.
  EXPECT_THROW(from_json("{\"jobs\": [{\"id\": 1, \"state\": 99}]}"),
               std::runtime_error);
  // shard_counts must be an array of one number per object.
  EXPECT_THROW(
      from_json("{\"contention\": {\"objects\": 1, \"tasks\": 1, "
                "\"cells\": [[1,2,3]], \"shard_counts\": 4}}"),
      std::runtime_error);
  EXPECT_THROW(
      from_json("{\"contention\": {\"objects\": 1, \"tasks\": 1, "
                "\"cells\": [[1,2,3]], \"shard_counts\": [2, 2]}}"),
      std::runtime_error);
  EXPECT_THROW(
      from_json("{\"contention\": {\"objects\": 1, \"tasks\": 1, "
                "\"cells\": [[1,2,3]], \"shard_counts\": [\"x\"]}}"),
      std::runtime_error);
}

// ---- object-spec universe serialization ----------------------------

TEST(ObjectSpecJson, RoundTripsEveryCombo) {
  std::vector<ObjectSpec> specs;
  for (const ObjectKind kind : all_object_kinds())
    for (const ObjectImpl impl : all_object_impls())
      specs.push_back(ObjectSpec{kind, impl});
  specs[3].shards = 4;
  specs[5].adapt = true;

  const std::vector<ObjectSpec> back =
      object_specs_from_json(object_specs_to_json(specs));
  ASSERT_EQ(back.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) EXPECT_EQ(back[i], specs[i]);
}

TEST(ObjectSpecJson, EmptyUniverseRoundTrips) {
  EXPECT_TRUE(object_specs_from_json(object_specs_to_json({})).empty());
}

/// The pre-zoo impl spelling "lock-based" is a live alias: it parses to
/// kMutex, so committed BENCH JSONs and old configs stay readable — and
/// re-serializing writes the canonical "mutex" spelling.
TEST(ObjectSpecJson, LockBasedAliasParsesAsMutex) {
  const std::vector<ObjectSpec> specs = object_specs_from_json(
      R"([{"kind":"queue","impl":"lock-based"}])");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].impl, ObjectImpl::kMutex);
  EXPECT_EQ(specs[0].impl, ObjectImpl::kLockBased);  // the enum alias too
  EXPECT_NE(object_specs_to_json(specs).find("\"impl\":\"mutex\""),
            std::string::npos);
}

/// Defaults: shards and adapt may be omitted (1 / false).
TEST(ObjectSpecJson, OmittedShardsAndAdaptDefault) {
  const std::vector<ObjectSpec> specs = object_specs_from_json(
      R"([{"kind":"stack","impl":"mcs"}])");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].kind, ObjectKind::kStack);
  EXPECT_EQ(specs[0].impl, ObjectImpl::kMcs);
  EXPECT_EQ(specs[0].shards, 1);
  EXPECT_FALSE(specs[0].adapt);
}

/// An unknown impl (or kind) throws, naming the offending string — a
/// typo'd universe must not silently become some default mechanism.
TEST(ObjectSpecJson, UnknownImplOrKindThrows) {
  try {
    object_specs_from_json(R"([{"kind":"queue","impl":"spinlock"}])");
    FAIL() << "unknown impl accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("spinlock"), std::string::npos)
        << "error message must name the offending impl";
  }
  EXPECT_THROW(
      object_specs_from_json(R"([{"kind":"heap","impl":"mutex"}])"),
      std::runtime_error);
  // Missing kind/impl entirely is as malformed as a wrong spelling.
  EXPECT_THROW(object_specs_from_json(R"([{"impl":"mutex"}])"),
               std::runtime_error);
  EXPECT_THROW(object_specs_from_json(R"([{"kind":"queue"}])"),
               std::runtime_error);
  // Structural junk.
  EXPECT_THROW(object_specs_from_json("{}"), std::runtime_error);
  EXPECT_THROW(object_specs_from_json("[3]"), std::runtime_error);
}

}  // namespace
}  // namespace lfrt::runtime
