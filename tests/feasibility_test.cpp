// Tests for the exponential TUF and the UAM demand-bound feasibility
// analysis, including a cross-check against the simulator: whenever the
// analysis declares a task set feasible, adversarial-arrival simulation
// under EDF meets every critical time.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "sched/edf.hpp"
#include "support/check.hpp"
#include "sim/simulator.hpp"
#include "uam/uam.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

TEST(ExponentialTuf, ShapeAndContract) {
  auto tuf = make_exponential_tuf(100.0, usec(100), 3.0);
  EXPECT_DOUBLE_EQ(tuf->utility(0), 100.0);
  EXPECT_NEAR(tuf->utility(usec(50)), 100.0 * std::exp(-1.5), 1e-9);
  EXPECT_NEAR(tuf->utility(usec(100)), 100.0 * std::exp(-3.0), 1e-9);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(100) + 1), 0.0);
  EXPECT_TRUE(tuf->non_increasing());
  EXPECT_EQ(tuf->describe(), "exponential");
  EXPECT_THROW(make_exponential_tuf(1.0, usec(10), 0.0),
               InvariantViolation);
}

TaskSet set_with(std::vector<std::tuple<Time, Time, std::int64_t>> rows) {
  // rows: {u_i, C_i (= W_i), a_i}
  TaskSet ts;
  ts.object_count = 0;
  TaskId id = 0;
  for (const auto& [u, c, a] : rows) {
    TaskParams p;
    p.id = id++;
    p.exec_time = u;
    p.tuf = make_step_tuf(10.0, c);
    p.arrival = UamSpec{1, a, c};
    ts.tasks.push_back(std::move(p));
  }
  ts.validate();
  return ts;
}

TEST(UamDemand, HandComputed) {
  const TaskSet ts = set_with({{usec(10), usec(100), 2}});
  // delta < C: zero demand.
  EXPECT_EQ(analysis::uam_demand(ts, 0, usec(99), 0), 0);
  // delta = C: one straddle window of a=2 jobs.
  EXPECT_EQ(analysis::uam_demand(ts, 0, usec(100), 0), usec(20));
  // delta = C + W: two windows + straddle = ceil(100/100)+1 = 2... the
  // formula gives a*(ceil((200-100)/100)+1)*u = 2*2*10us.
  EXPECT_EQ(analysis::uam_demand(ts, 0, usec(200), 0), usec(40));
  // Access time inflates c_i.
  TaskSet ts2 = set_with({{usec(10), usec(100), 1}});
  ts2.object_count = 1;
  ts2.tasks[0].accesses = {{0, usec(5)}};
  EXPECT_EQ(analysis::uam_demand(ts2, 0, usec(100), usec(4)), usec(14));
}

TEST(UamFeasible, ObviousCases) {
  // One light task: feasible with slack.
  Time slack = 0;
  EXPECT_TRUE(analysis::uam_edf_feasible(
      set_with({{usec(10), usec(100), 1}}), 0, &slack));
  EXPECT_GT(slack, 0);
  // Demand exactly fills the critical time: feasible with zero slack.
  EXPECT_TRUE(analysis::uam_edf_feasible(
      set_with({{usec(50), usec(100), 1}, {usec(50), usec(100), 1}}), 0,
      &slack));
  EXPECT_EQ(slack, 0);
  // One more microsecond of work: infeasible.
  EXPECT_FALSE(analysis::uam_edf_feasible(
      set_with({{usec(51), usec(100), 1}, {usec(50), usec(100), 1}}), 0));
  // Utilization over 1 from bursts alone.
  EXPECT_FALSE(analysis::uam_edf_feasible(
      set_with({{usec(60), usec(100), 2}}), 0));
}

TEST(UamFeasible, AccessTimeTipsTheBalance) {
  TaskSet ts = set_with({{usec(45), usec(100), 1}, {usec(45), usec(100), 1}});
  ts.object_count = 1;
  ts.tasks[0].accesses = {{0, usec(5)}};
  ts.tasks[1].accesses = {{0, usec(5)}};
  EXPECT_TRUE(analysis::uam_edf_feasible(ts, usec(5)));   // 100us demand
  EXPECT_FALSE(analysis::uam_edf_feasible(ts, usec(6)));  // 102us demand
}

/// Cross-check: analysis-feasible sets meet every critical time in the
/// simulator under adversarial UAM arrivals, EDF, ideal objects.
class FeasibilityCrossCheck
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {
};

TEST_P(FeasibilityCrossCheck, FeasibleImpliesNoMisses) {
  const auto [tasks, load, seed] = GetParam();
  workload::WorkloadSpec spec;
  spec.task_count = tasks;
  spec.object_count = 2;
  spec.accesses_per_job = 1;
  spec.load = load;
  spec.max_per_window = 1 + static_cast<std::int32_t>(seed % 2);
  spec.seed = seed;
  const TaskSet ts = workload::make_task_set(spec);

  if (!analysis::uam_edf_feasible(ts, 0)) {
    GTEST_SKIP() << "analysis declares this set infeasible";
  }
  const sched::EdfScheduler edf;
  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kIdeal;
  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);
  cfg.horizon = max_window * 50;
  sim::Simulator sim(ts, edf, cfg);
  for (const auto& t : ts.tasks)
    sim.set_arrivals(t.id,
                     arrivals::adversarial(t.arrival, 0, cfg.horizon));
  const auto rep = sim.run();
  EXPECT_DOUBLE_EQ(rep.cmr(), 1.0);
  EXPECT_EQ(rep.aborted, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FeasibilityCrossCheck,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(0.2, 0.35, 0.5),
                       ::testing::Values(1u, 5u, 11u)));

}  // namespace
}  // namespace lfrt
