# Empty compiler generated dependencies file for multiunit_test.
# This may be replaced when dependencies are built.
