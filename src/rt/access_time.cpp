#include "rt/access_time.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "lockbased/mutex_queue.hpp"
#include "lockfree/msqueue.hpp"
#include "rt/priority.hpp"
#include "sched/rua.hpp"
#include "support/rng.hpp"
#include "tuf/tuf.hpp"

namespace lfrt::rt {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t elapsed_ns(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
}

/// Build the scheduler view lock-based RUA is invoked with on each lock
/// request: `task_count` jobs whose dependency chain spans the shared
/// objects (job k waits on job k+1 for object k), mirroring a loaded
/// 10-task/10-queue system.  More shared objects -> longer chains ->
/// costlier invocations, which is why r grows with the object count in
/// Figure 8.
std::vector<sched::SchedJob> make_rua_view(
    std::int32_t task_count, std::int32_t object_count,
    const std::vector<std::shared_ptr<const Tuf>>& tufs) {
  std::vector<sched::SchedJob> view;
  const std::int32_t chained =
      std::min(object_count, task_count - 1);
  for (std::int32_t i = 0; i < task_count; ++i) {
    sched::SchedJob j;
    j.id = i;
    j.arrival = 0;
    j.critical = msec(10) + usec(100) * i;
    j.remaining = usec(200);
    j.tuf = tufs[static_cast<std::size_t>(i)].get();
    j.waits_on = i < chained ? i + 1 : kNoJob;
    view.push_back(j);
  }
  return view;
}

/// Background interferer: performs queue operations with periodic
/// yields so the OS interleaves it with the measuring thread, inducing
/// the preemptions of a loaded uniprocessor.
class Interferer {
 public:
  Interferer(std::vector<std::unique_ptr<lockfree::MsQueue<int>>>* lf,
             std::vector<std::unique_ptr<lockbased::MutexQueue<int>>>* lb)
      : lf_(lf), lb_(lb), thread_([this] { run(); }) {}

  ~Interferer() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  void run() {
    pin_to_cpu(0);
    std::uint64_t i = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      if (lf_ && !lf_->empty()) {
        auto& q = *(*lf_)[i % lf_->size()];
        q.enqueue(static_cast<int>(i));
        q.dequeue();
      }
      if (lb_ && !lb_->empty()) {
        auto& q = *(*lb_)[i % lb_->size()];
        q.enqueue(static_cast<int>(i));
        q.dequeue();
      }
      if (++i % 64 == 0) std::this_thread::yield();
    }
  }

  std::vector<std::unique_ptr<lockfree::MsQueue<int>>>* lf_;
  std::vector<std::unique_ptr<lockbased::MutexQueue<int>>>* lb_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

AccessTimeResult measure_lockfree_access(const AccessTimeConfig& cfg) {
  AccessTimeResult out;
  pin_to_cpu(0);

  std::vector<std::unique_ptr<lockfree::MsQueue<int>>> queues;
  for (std::int32_t i = 0; i < cfg.object_count; ++i)
    queues.push_back(std::make_unique<lockfree::MsQueue<int>>(1024));

  std::unique_ptr<Interferer> noise;
  if (cfg.with_interferer)
    noise = std::make_unique<Interferer>(&queues, nullptr);

  Rng rng(cfg.seed);
  // Warm-up: touch every queue once.
  for (auto& q : queues) {
    q->enqueue(0);
    q->dequeue();
  }

  for (std::int64_t n = 0; n < cfg.samples; ++n) {
    auto& q = *queues[static_cast<std::size_t>(
        rng.uniform(0, cfg.object_count - 1))];
    const auto t0 = Clock::now();
    q.enqueue(static_cast<int>(n));
    q.dequeue();
    const auto t1 = Clock::now();
    // Two operations per sample; report per-access time.
    out.per_access_ns.add(static_cast<double>(elapsed_ns(t0, t1)) / 2.0);
  }
  for (auto& q : queues) out.retries += q->stats().retry_count();
  return out;
}

AccessTimeResult measure_lockbased_access(const AccessTimeConfig& cfg) {
  AccessTimeResult out;
  pin_to_cpu(0);

  std::vector<std::unique_ptr<lockbased::MutexQueue<int>>> queues;
  for (std::int32_t i = 0; i < cfg.object_count; ++i)
    queues.push_back(std::make_unique<lockbased::MutexQueue<int>>());

  std::unique_ptr<Interferer> noise;
  if (cfg.with_interferer)
    noise = std::make_unique<Interferer>(nullptr, &queues);

  // Pre-built pieces of the per-request RUA invocation.
  std::vector<std::shared_ptr<const Tuf>> tufs;
  for (std::int32_t i = 0; i < cfg.task_count; ++i)
    tufs.emplace_back(make_step_tuf(10.0 + i, msec(100)));
  const sched::RuaScheduler rua(sched::Sharing::kLockBased);
  const auto view =
      make_rua_view(cfg.task_count, cfg.object_count, tufs);

  Rng rng(cfg.seed);
  for (auto& q : queues) {
    q->enqueue(0);
    q->dequeue();
  }

  Time fake_now = 0;
  for (std::int64_t n = 0; n < cfg.samples; ++n) {
    auto& q = *queues[static_cast<std::size_t>(
        rng.uniform(0, cfg.object_count - 1))];
    const auto t0 = Clock::now();
    // Lock request -> scheduler invocation -> critical section ->
    // unlock request -> scheduler invocation.
    (void)rua.build(view, fake_now);
    q.enqueue(static_cast<int>(n));
    (void)rua.build(view, fake_now);
    q.dequeue();
    const auto t1 = Clock::now();
    out.per_access_ns.add(static_cast<double>(elapsed_ns(t0, t1)) / 2.0);
    fake_now += usec(1);
  }
  for (auto& q : queues) out.contended += q->stats().contended_count();
  return out;
}

}  // namespace lfrt::rt
