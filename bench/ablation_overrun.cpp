// Ablation: execution-time uncertainty.
//
// The paper's dynamic systems have context-dependent execution times,
// and the scheduler only sees estimates (Section 3, footnote 4).  This
// sweep grows the per-job variation band around the nominal estimate at
// a fixed nominal load and shows utility-accrual scheduling absorbing
// the uncertainty: overruns become targeted aborts of the jobs that
// drew long, rather than cascading misses — and lock-free sharing keeps
// its advantage at every uncertainty level.
#include "common.hpp"
#include "uam/uam.hpp"

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bench::print_header("Ablation", "execution-time uncertainty (estimate "
                                  "vs actual)");
  std::cout << "tasks=8  objects=4  accesses/job=2  nominal AL=1.02  r="
            << to_usec(bench::kDefaultR) << "us  s="
            << to_usec(bench::kDefaultS) << "us  seed=3\n\n";

  Table table({"variation", "mode", "AUR", "CMR", "aborted/1k jobs"});

  const std::vector<double> variations = {0.0, 0.2, 0.4, 0.6};
  const sim::ShareMode modes[] = {sim::ShareMode::kLockFree,
                                  sim::ShareMode::kLockBased};
  constexpr int kReps = 5;

  std::vector<TaskSet> task_sets;
  for (const double variation : variations) {
    workload::WorkloadSpec spec;
    spec.task_count = 8;
    spec.object_count = 4;
    spec.accesses_per_job = 2;
    spec.avg_exec = usec(400);
    spec.load = 1.02;
    spec.seed = 3;
    TaskSet ts = workload::make_task_set(spec);
    for (auto& t : ts.tasks) t.exec_variation = variation;
    task_sets.push_back(std::move(ts));
  }

  // Flat cell order: (variation, mode, rep) — rows reduce in that order.
  const auto cells =
      static_cast<std::int64_t>(variations.size()) * 2 * kReps;
  const auto reports =
      exp::parallel_map(bench::pool(), cells, [&](std::int64_t cell) {
        const TaskSet& ts =
            task_sets[static_cast<std::size_t>(cell / (2 * kReps))];
        const sim::ShareMode mode = modes[(cell / kReps) % 2];
        const auto rep = static_cast<std::uint64_t>(cell % kReps);

        sim::SimConfig cfg;
        cfg.mode = mode;
        cfg.lock_access_time = bench::kDefaultR;
        cfg.lockfree_access_time = bench::kDefaultS;
        cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
        cfg.exec_seed = 100 + rep;
        Time max_window = 0;
        for (const auto& t : ts.tasks)
          max_window = std::max(max_window, t.arrival.window);
        cfg.horizon = max_window * 100;
        sim::Simulator s(ts, bench::scheduler_for(mode), cfg);
        // Exact-rate periodic arrivals: the nominal load is delivered in
        // full, so the variation band alone decides the overrun rate.
        for (const auto& t : ts.tasks) {
          Rng rng(700 + rep * 131 + static_cast<std::uint64_t>(t.id));
          s.set_arrivals(
              t.id, arrivals::periodic_phased(t.arrival, cfg.horizon, rng));
        }
        return s.run();
      });

  std::size_t at = 0;
  for (const double variation : variations) {
    for (const sim::ShareMode mode : modes) {
      RunningStats aur, cmr;
      std::int64_t aborted = 0, jobs = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        const sim::SimReport& out = reports[at++];
        aur.add(out.aur());
        cmr.add(out.cmr());
        aborted += out.aborted;
        jobs += out.counted_jobs;
      }
      table.add_row(
          {Table::num(variation, 1), sim::to_string(mode),
           Table::num(aur.mean(), 3) + " ±" + Table::num(aur.ci95(), 3),
           Table::num(cmr.mean(), 3) + " ±" + Table::num(cmr.ci95(), 3),
           Table::num(jobs ? 1000.0 * static_cast<double>(aborted) /
                                 static_cast<double>(jobs)
                           : 0.0,
                      1)});
    }
  }
  table.print();
  std::cout << "\nExpected shape: utility degrades gracefully as the "
               "variation band widens (only the jobs that actually drew "
               "long are shed), and the lock-free column dominates the "
               "lock-based one at every level.\n";
  return 0;
}
