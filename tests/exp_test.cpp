// Unit tests for the parallel experiment-runner (src/exp): the fixed-
// size thread pool, the index-slotted parallel_map/sweep fan-out, and
// the --threads / LFRT_THREADS resolution helpers.
#include "exp/sweep.hpp"
#include "exp/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lfrt::exp {
namespace {

TEST(ExpThreadPool, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(257, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ExpThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(0, [&](std::int64_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ExpThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  for (int batch = 0; batch < 20; ++batch) {
    pool.parallel_for(10, [&](std::int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 20 * 45);
}

TEST(ExpThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::int64_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("cell 37");
                                 }),
               std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ExpParallelMap, SlotsResultsByIndex) {
  ThreadPool pool(4);
  const std::vector<int> out =
      parallel_map(pool, 100, [](std::int64_t i) {
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ExpParallelMap, IdenticalAcrossPoolSizes) {
  const auto body = [](std::int64_t i) {
    return std::to_string(i * 31 % 17);
  };
  ThreadPool p1(1), p8(8);
  EXPECT_EQ(parallel_map(p1, 64, body), parallel_map(p8, 64, body));
}

TEST(ExpSweep, MapsItemsInOrder) {
  ThreadPool pool(2);
  const std::vector<int> items = {5, 3, 9, 1};
  const auto out = sweep(pool, items, [](int v) { return v * 2; });
  EXPECT_EQ(out, (std::vector<int>{10, 6, 18, 2}));
}

TEST(ExpThreads, FromArgsParsesFlagForms) {
  const char* a1[] = {"bench", "--threads=3"};
  EXPECT_EQ(threads_from_args(2, a1), 3);
  const char* a2[] = {"bench", "--threads", "5"};
  EXPECT_EQ(threads_from_args(3, a2), 5);
  const char* a3[] = {"bench", "--threads=2", "--threads=7"};
  EXPECT_EQ(threads_from_args(3, a3), 7);  // last flag wins
}

TEST(ExpThreads, EnvFallback) {
  ::setenv("LFRT_THREADS", "6", 1);
  const char* a[] = {"bench"};
  EXPECT_EQ(threads_from_args(1, a), 6);
  EXPECT_EQ(default_threads(), 6);
  ::unsetenv("LFRT_THREADS");
  EXPECT_GE(default_threads(), 1);
}

TEST(ExpThreads, RejectsNonsenseValues) {
  ::setenv("LFRT_THREADS", "0", 1);
  EXPECT_GE(default_threads(), 1);  // falls back to hardware default
  ::setenv("LFRT_THREADS", "banana", 1);
  EXPECT_GE(default_threads(), 1);
  ::unsetenv("LFRT_THREADS");
}

}  // namespace
}  // namespace lfrt::exp
