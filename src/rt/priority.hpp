// POSIX real-time thread helpers.
//
// The paper's testbed ran on QNX Neutrino with RT scheduling; on a
// generic Linux host, SCHED_FIFO needs privileges, so every helper here
// degrades gracefully: it attempts the RT configuration and reports
// whether it took effect.  Experiments remain valid without RT
// priorities (access-time microbenchmarks measure the object operations
// themselves); the helpers exist so the same binaries exploit a
// privileged host when given one.
#pragma once

namespace lfrt::rt {

/// Attempt to switch the calling thread to SCHED_FIFO at `priority`
/// (1..99).  Returns true on success, false when the host denies it.
bool set_realtime_priority(int priority);

/// Attempt to pin the calling thread to the given CPU.  Returns true on
/// success.  The paper's model (and its retry analysis) is uniprocessor;
/// pinning every thread to one CPU reproduces that interleaving on
/// multicore hosts.
bool pin_to_cpu(int cpu);

}  // namespace lfrt::rt
