
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/gantt.cpp" "src/sim/CMakeFiles/lfrt_sim.dir/gantt.cpp.o" "gcc" "src/sim/CMakeFiles/lfrt_sim.dir/gantt.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/lfrt_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/lfrt_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/sim/CMakeFiles/lfrt_sim.dir/trace_export.cpp.o" "gcc" "src/sim/CMakeFiles/lfrt_sim.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/task/CMakeFiles/lfrt_task.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lfrt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/uam/CMakeFiles/lfrt_uam.dir/DependInfo.cmake"
  "/root/repo/build/src/tuf/CMakeFiles/lfrt_tuf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
