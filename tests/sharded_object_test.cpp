// lockfree::ShardedQueue / ShardedStack and the sharded SharedObject
// layer.
//
// The properties that make contention-adaptive sharding safe to flip at
// run time: the public ledger conserves elements across concurrent
// promote/demote (#successful pushes == #successful pops + drained
// remainder), FIFO order holds per stripe for a stable affinity hint,
// demotion strands nothing (pop sweeps deactivated stripes), the
// elimination front is ledger-neutral, and the three-way attribution
// sums — heatmap cells, structure counters, job sinks — stay exact for
// shards > 1.  The hammers are the TSan targets for this layer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "lockfree/elimination.hpp"
#include "lockfree/sharded.hpp"
#include "runtime/shared_object.hpp"

namespace lfrt {
namespace {

TEST(ShardedQueue, FifoPerStripeWithStableHint) {
  lockfree::ShardedQueue<int> q(/*capacity=*/64, /*initial_shards=*/4);
  ASSERT_EQ(q.active(), 4);
  // Two affinity hints that map to different stripes (1 % 4 != 2 % 4).
  for (int v : {1, 2, 3}) ASSERT_TRUE(q.push(v, /*hint=*/1));
  for (int v : {10, 20}) ASSERT_TRUE(q.push(v, /*hint=*/2));
  EXPECT_EQ(q.pop(1), std::optional<int>(1));
  EXPECT_EQ(q.pop(2), std::optional<int>(10));
  EXPECT_EQ(q.pop(1), std::optional<int>(2));
  EXPECT_EQ(q.pop(1), std::optional<int>(3));
  EXPECT_EQ(q.pop(2), std::optional<int>(20));
  EXPECT_TRUE(q.empty());
}

TEST(ShardedQueue, DemoteStrandsNoElements) {
  lockfree::ShardedQueue<int> q(/*capacity=*/128, /*initial_shards=*/8);
  // Spread 64 elements over all 8 stripes, then demote to 1: every
  // element must still come out through the post-miss sweep.
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(q.push(i, /*hint=*/i));
  q.set_active(1);
  std::int64_t sum = 0;
  int popped = 0;
  while (auto v = q.pop(/*hint=*/0)) {
    sum += *v;
    ++popped;
  }
  EXPECT_EQ(popped, 64);
  EXPECT_EQ(sum, 64 * 63 / 2);
  EXPECT_TRUE(q.empty());
}

TEST(ShardedQueue, ClampsShardCount) {
  lockfree::ShardedQueue<int> q(/*capacity=*/16, /*initial_shards=*/99);
  EXPECT_EQ(q.active(), runtime::kMaxObjectShards);
  q.set_active(0);
  EXPECT_EQ(q.active(), 1);
  q.set_active(-5);
  EXPECT_EQ(q.active(), 1);
}

/// Count + value conservation while a control thread flips the active
/// stripe count through its whole range mid-traffic.  This is the
/// promote/demote race the ContentionController creates in production.
template <typename Sharded>
void reshard_hammer() {
  Sharded s(/*capacity=*/4096, /*initial_shards=*/1);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::atomic<std::int64_t> pushed{0}, popped{0};
  std::atomic<std::int64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<bool> stop{false};

  std::thread flipper([&] {
    std::int32_t k = 1;
    while (!stop.load(std::memory_order_acquire)) {
      s.set_active(k);
      k = k % runtime::kMaxObjectShards + 1;
      std::this_thread::yield();
    }
    s.set_active(1);
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int v = t * kOpsPerThread + i;
        if (s.push(v, /*hint=*/t)) {
          pushed.fetch_add(1, std::memory_order_relaxed);
          pushed_sum.fetch_add(v, std::memory_order_relaxed);
        }
        if (i % 2 == 1) {
          if (auto got = s.pop(/*hint=*/t)) {
            popped.fetch_add(1, std::memory_order_relaxed);
            popped_sum.fetch_add(*got, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  flipper.join();

  // Drain what the hammer left behind, sweeping from hint 0.
  std::int64_t drained = 0, drained_sum = 0;
  while (auto v = s.pop(0)) {
    ++drained;
    drained_sum += *v;
  }
  EXPECT_EQ(pushed.load(), popped.load() + drained);
  EXPECT_EQ(pushed_sum.load(), popped_sum.load() + drained_sum);
  EXPECT_TRUE(s.empty());
}

TEST(ShardedQueue, ConservationAcrossConcurrentReshard) {
  reshard_hammer<lockfree::ShardedQueue<int>>();
}

TEST(ShardedStack, ConservationAcrossConcurrentReshard) {
  // Also covers the elimination front: while active > 1, push–pop pairs
  // may exchange without touching a stripe, which must stay
  // ledger-neutral for the same conservation sums to hold.
  reshard_hammer<lockfree::ShardedStack<int>>();
}

TEST(EliminationArray, TimesOutWithoutAPartner) {
  lockfree::EliminationArray arr;
  EXPECT_EQ(arr.exchange_pop(), std::nullopt);  // nothing advertised
  EXPECT_FALSE(arr.exchange_push(42));          // nobody came; timed out
  // The timed-out advertisement was withdrawn, not leaked.
  EXPECT_EQ(arr.exchange_pop(), std::nullopt);
}

TEST(ShardedStack, EliminationCountsPairs) {
  lockfree::ShardedStack<int> s(/*capacity=*/1024, /*initial_shards=*/4);
  constexpr int kPairs = 10000;
  std::atomic<std::int64_t> popped{0};
  std::thread pusher([&] {
    for (int i = 0; i < kPairs; ++i) {
      // The pusher can outrun the popper by a whole stripe capacity;
      // retry until the drain catches up.
      while (!s.push(i, /*hint=*/0)) std::this_thread::yield();
    }
  });
  std::thread popper([&] {
    std::int64_t got = 0;
    while (got < kPairs) {
      if (s.pop(/*hint=*/1)) ++got;
    }
    popped.store(got);
  });
  pusher.join();
  popper.join();
  EXPECT_EQ(popped.load(), kPairs);
  EXPECT_TRUE(s.empty());
  EXPECT_GE(s.eliminations(), 0);  // pairs are host-timing dependent
}

// ---- the unified layer with shards > 1 -------------------------------

constexpr std::int32_t kTasks = 4;
constexpr int kAccessesPerThread = 5000;

TEST(SharedObjectSharded, SpecShardsClampAndUnshardableNoop) {
  std::vector<runtime::ObjectSpec> specs(3);
  specs[0] = {runtime::ObjectKind::kQueue, runtime::ObjectImpl::kLockFree,
              /*shards=*/99, /*adapt=*/false};
  specs[1] = {runtime::ObjectKind::kBuffer, runtime::ObjectImpl::kLockFree,
              /*shards=*/4, /*adapt=*/false};
  specs[2] = {runtime::ObjectKind::kQueue, runtime::ObjectImpl::kLockBased,
              /*shards=*/4, /*adapt=*/false};
  runtime::SharedObjectSet set(specs, kTasks, /*queue_capacity=*/64);
  EXPECT_EQ(set.shards_of(0), runtime::kMaxObjectShards);
  EXPECT_EQ(set.shards_of(1), 1);  // buffers don't stripe
  EXPECT_EQ(set.shards_of(2), 1);  // lock-based doesn't stripe
  set.set_shards(1, 4);
  set.set_shards(2, 4);
  EXPECT_EQ(set.shards_of(1), 1);
  EXPECT_EQ(set.shards_of(2), 1);
  set.set_shards(0, 0);
  EXPECT_EQ(set.shards_of(0), 1);
  const runtime::ContentionMatrix m = set.matrix();
  ASSERT_EQ(m.shard_counts.size(), 3u);
  EXPECT_EQ(m.shard_counts[0], 1);
}

/// The shared_object_test attribution invariant, now with stripes and a
/// controller-like thread flipping shard counts mid-hammer: heatmap row
/// sums must equal the aggregated per-stripe structure counters, the op
/// count must equal the accesses performed, and backoff spins can only
/// exist where retries were recorded.
TEST(SharedObjectSharded, AttributionExactAcrossReshard) {
  std::vector<runtime::ObjectSpec> specs(2);
  specs[0] = {runtime::ObjectKind::kQueue, runtime::ObjectImpl::kLockFree,
              /*shards=*/2, /*adapt=*/true};
  specs[1] = {runtime::ObjectKind::kStack, runtime::ObjectImpl::kLockFree,
              /*shards=*/1, /*adapt=*/true};
  runtime::SharedObjectSet set(specs, kTasks, /*queue_capacity=*/4096);

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    std::int32_t k = 1;
    while (!stop.load(std::memory_order_acquire)) {
      set.set_shards(0, k);
      set.set_shards(1, runtime::kMaxObjectShards + 1 - k);
      k = k % runtime::kMaxObjectShards + 1;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (std::int32_t t = 0; t < kTasks; ++t) {
    threads.emplace_back([&set, t] {
      for (int i = 0; i < kAccessesPerThread; ++i) {
        set.access(i % 2, runtime::AccessOp::kWrite, t,
                   /*job=*/t * kAccessesPerThread + i, [] {});
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  flipper.join();

  const runtime::ContentionMatrix m = set.matrix();
  ASSERT_EQ(m.objects, 2);
  ASSERT_EQ(m.tasks, kTasks);
  ASSERT_EQ(m.shard_counts.size(), 2u);
  std::int64_t structure_retries = 0;
  for (std::int32_t o = 0; o < 2; ++o) {
    const runtime::ObjectCounts c = set.counts_of(o);
    const runtime::ContentionCell row = m.object_totals(o);
    EXPECT_EQ(row.retries, c.retries)
        << "object " << o << ": heatmap row vs per-stripe counters";
    EXPECT_EQ(row.blockings, 0) << "lock-free objects never block";
    if (c.retries == 0) {
      EXPECT_EQ(c.backoff_spins, 0)
          << "object " << o << ": backoff without a retry";
    } else {
      EXPECT_GE(c.backoff_spins, c.retries)
          << "object " << o << ": every retry pauses at least one spin";
    }
    structure_retries += c.retries;
  }
  EXPECT_EQ(m.totals().retries, structure_retries);
  EXPECT_EQ(m.totals().ops,
            static_cast<std::int64_t>(kTasks) * kAccessesPerThread);

  // The always-on latency histogram saw every completed access.
  EXPECT_EQ(set.latency_of(0).count() + set.latency_of(1).count(),
            static_cast<std::int64_t>(kTasks) * kAccessesPerThread);
  EXPECT_GT(set.latency_of(0).percentile(0.99), 0);
}

}  // namespace
}  // namespace lfrt
