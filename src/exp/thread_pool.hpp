// Fixed-size thread pool for the parallel experiment harness.
//
// Design goals (DESIGN/EXPERIMENTS: deterministic figure regeneration):
//
//   * Work-stealing-free: one shared atomic index is the only dispatch
//     mechanism.  Each worker claims the next unclaimed index; which
//     thread runs which index is scheduling-dependent, but callers that
//     write results by index (exp::parallel_map) get output that is
//     independent of the interleaving — the basis for the harness's
//     byte-identical-at-any-thread-count guarantee.
//   * Caller participation: a pool of size N spawns N-1 workers and the
//     calling thread drains indices alongside them, so size 1 executes
//     the batch strictly inline on the caller — the serial baseline is
//     literally the same code path.
//   * Fixed size: threads are spawned once at construction and live for
//     the pool's lifetime; parallel_for has no per-call thread churn.
//
// Exactly one batch runs at a time; parallel_for is not reentrant (a
// body must not invoke parallel_for on the same pool).  The first
// exception thrown by a body cancels the remaining indices and is
// rethrown on the calling thread once the batch has drained.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lfrt::exp {

/// Thread count from the environment: LFRT_THREADS if set to a positive
/// integer, else std::thread::hardware_concurrency (at least 1).
int default_threads();

/// Thread count from a bench command line: the last `--threads=N` or
/// `--threads N` wins; without one, falls back to default_threads().
/// Unrelated arguments are ignored (benches parse their own flags).
int threads_from_args(int argc, const char* const* argv);

class ThreadPool {
 public:
  /// A pool of total concurrency `threads` (>= 1): threads-1 workers
  /// plus the calling thread during parallel_for.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// Run body(i) for every i in [0, n), distributed over the pool.
  /// Blocks until every index has finished (or the batch was cancelled
  /// by an exception, which is rethrown here).
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t)>& body);

 private:
  void worker_loop();
  void drain();

  int size_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: a new batch (or stop)
  std::condition_variable done_cv_;  ///< caller: all workers left batch
  const std::function<void(std::int64_t)>* body_ = nullptr;
  std::int64_t batch_size_ = 0;
  std::atomic<std::int64_t> next_{0};
  std::int64_t generation_ = 0;  ///< bumped per batch; wakes workers
  int active_ = 0;               ///< workers still inside the batch
  bool in_batch_ = false;        ///< reentrancy guard
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace lfrt::exp
