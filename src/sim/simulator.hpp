// Discrete-event uniprocessor RTOS simulator.
//
// Substitutes for the paper's QNX Neutrino / meta-scheduler testbed
// (DESIGN.md, Section 2).  The simulator executes the *real* scheduler
// implementation (sched::RuaScheduler / sched::EdfScheduler) at every
// scheduling event, models job execution as compute segments with
// embedded shared-object accesses, and reproduces the paper's sharing
// semantics exactly:
//
//   * lock-based — an access is a critical section of length r.  A
//     request on a held object blocks the requester (waits_on is set;
//     RUA's dependency machinery engages).  Lock and unlock requests are
//     scheduling events.  Preemption inside a critical section keeps the
//     lock held (the priority-inversion source).
//
//     Tasks may instead declare *nested* critical sections (LockSpan):
//     the lock is requested at an acquire offset, the access costs r,
//     and the lock is held while computing to a release offset, with
//     stack (LIFO) discipline.  Nesting makes deadlock possible; pair
//     the simulator with RuaScheduler(kLockBased, detect_deadlocks=true)
//     and the scheduler's cycle victims are aborted through the normal
//     abort-exception path (paper, Section 3.3).  Under a non-detecting
//     scheduler (EDF/LLF) a deadlock simply pins the cycle's jobs until
//     their critical times expire — the behaviour a real system without
//     detection would exhibit.
//
//   * lock-free — an access is a segment of length s.  If the job is
//     preempted mid-access (another job ran), the access restarts when
//     the job resumes; restarts are counted as retries (f_i) and are
//     validated against Theorem 2.  Accesses are NOT scheduling events —
//     only arrivals and departures invoke the scheduler (Section 4.1).
//
//   * ideal — accesses take zero time (the "ideal RUA" yardstick of
//     Section 6.1 used to define CML).
//
// Scheduler overhead: each invocation's counted elementary operations
// are charged to the CPU at `sched_ns_per_op`, so the O(n^2 log n) vs
// O(n^2) gap manifests in the CML experiment exactly as in Figure 9.
//
// Abort model (Section 3.5): when a job's critical time expires before
// completion, an abort-exception fires; the job's handler executes
// immediately (at the highest eligibility), rolls back (releases) any
// held lock on completion, and the job accrues zero utility.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/contention_controller.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/object_spec.hpp"
#include "runtime/run_report.hpp"
#include "sched/scheduler.hpp"
#include "support/rng.hpp"
#include "task/task.hpp"

namespace lfrt::sim {

/// Object-sharing regime simulated.
enum class ShareMode {
  kLockBased,
  kLockFree,
  kIdeal,
};

std::string to_string(ShareMode mode);

struct SimConfig {
  ShareMode mode = ShareMode::kLockFree;
  Time lock_access_time = usec(10);    ///< r — lock-based access time
  Time lockfree_access_time = usec(1); ///< s — lock-free access time

  /// Per-(kind, impl) access-cost table (runtime/cost_model.hpp).  When
  /// `cost_model.enabled`, an access attempt's length is computed from
  /// the object's cell — base + per-contender scaling by the number of
  /// other jobs concurrently in or blocked on the same object, plus the
  /// snapshot scan and retry terms — instead of the two flat scalars
  /// above, so the zoo's mechanisms (ticket's linear slope, MCS's flat
  /// handoff) separate in simulated time.  Disabled (default) preserves
  /// the flat model bit-for-bit; kIdeal zeroes accesses either way.
  runtime::CostModel cost_model;
  double sched_ns_per_op = 0.0;        ///< overhead per counted op
  Time horizon = msec(1000);           ///< simulation end
  bool record_trace = false;           ///< collect a human-readable trace
  bool record_slices = false;          ///< collect execution slices
                                       ///< (SimReport::slices, Gantt input)

  /// Per-object shared-object specs, indexed by ObjectId — the same
  /// vocabulary runtime::ExecConfig::objects speaks, so a
  /// cross-validation harness lowers one universe into both substrates.
  /// Empty (the default) keeps the global `mode` homogeneous model:
  /// every object is a queue with the mode's implementation.  When
  /// non-empty (size must equal the task set's object_count), each
  /// object's impl selects its access time and blocking-vs-retry
  /// semantics per object; `mode = kIdeal` still zeroes every access.
  /// Kind matters to the conflict rule: buffer/snapshot *writes* are
  /// wait-free (NBW/single-writer-update — they never retry), while
  /// their reads, and every queue/stack access, retry when a write
  /// completed during the attempt window.
  std::vector<runtime::ObjectSpec> objects;

  /// Contention-controller tuning for objects that set
  /// ObjectSpec::adapt.  The simulator steps the same
  /// runtime::ContentionControllerCore the executor's controller thread
  /// runs, from deterministic epoch events: every `controller.epoch` ns
  /// it diffs the live contention matrix, promotes/demotes shard counts
  /// (which changes the conflict rule's granularity from that instant
  /// on), and installs the conflict vector into dispatch steering.
  /// Ignored when no object adapts (and under kIdeal, which has no
  /// retries to act on).
  runtime::ControllerConfig controller;

  /// Dispatch-layer options, shared verbatim with
  /// rt::ExecutorConfig::dispatch so one placement/steering statement
  /// drives both substrates.  The default (global placement, non-strict
  /// groups) reproduces the historical top-M dispatch bit for bit.
  /// Under a partitioned/clustered placement with
  /// `placement.scope_objects` (the default), queue/stack objects are
  /// instantiated once per cluster and a task's accesses land on its
  /// cluster's instance, so cross-cluster conflicts vanish — the
  /// separation analysis::mp charges for.  Scoped instancing excludes
  /// adaptive sharding (ObjectSpec::adapt) and nested lock spans.
  sched::DispatchOptions dispatch;

  /// Seed for per-job actual-execution draws (TaskParams::
  /// exec_variation); runs are reproducible for a fixed seed.
  std::uint64_t exec_seed = 77;

  /// Number of processors.  1 reproduces the paper's model.  With M > 1
  /// the same scheduler runs globally and the first M runnable jobs of
  /// its schedule occupy the CPUs (global RUA/EDF/LLF — the paper's
  /// "multiprocessor systems" future-work direction).  Lock-free
  /// conflicts then arise from true concurrency as well as preemption:
  /// an access attempt fails (and retries) iff another job completed an
  /// access to the same object during the attempt window — the CAS
  /// loses — which on one CPU degenerates to the preemption-induced
  /// retry model of Section 4.
  int cpu_count = 1;
};

/// Aggregate results of one run.  The job-lifecycle accounting —
/// counted/completed/aborted, AUR/CMR, retry/blocking/preemption
/// tallies, per-job terminal records and per-task breakdowns — lives in
/// runtime::RunReport, shared with rt::ExecutorReport so both
/// substrates report through the same shape; only the simulation-
/// specific extras are added here.
struct SimReport : runtime::RunReport {
  Time sched_overhead = 0;  ///< total CPU time charged to the scheduler

  /// Discrete events consumed from the queue (arrivals, expiries,
  /// milestones) — the denominator for per-event cost measurements
  /// (bench/sim_throughput).
  std::int64_t events_processed = 0;

  std::int64_t deadlocks_resolved = 0;  ///< cycle victims aborted (nested)

  /// Shard promotions/demotions the contention controller applied, in
  /// simulation-time order (empty when no object adapts).  The
  /// bench/shard_adaptive timeline comes straight from this.
  std::vector<runtime::ShardDecision> shard_decisions;

  std::int64_t controller_epochs = 0;  ///< controller steps taken

  /// Placement migrations the contention controller applied
  /// (ControllerConfig::place under a non-global placement), in
  /// simulation-time order.
  std::vector<runtime::PlacementMove> placement_moves;

  /// Optional event trace (record_trace).
  std::vector<std::string> trace;

  /// One contiguous stretch of CPU time given to a job
  /// (record_slices).  Adjacent stretches of the same job on the same
  /// CPU are merged.  Ordered by start time.
  struct ExecSlice {
    JobId job = kNoJob;
    TaskId task = -1;
    int cpu = 0;
    Time begin = 0;
    Time end = 0;
  };
  std::vector<ExecSlice> slices;
};

/// One simulation instance: a task set, a scheduler, arrival traces.
class Simulator {
 public:
  Simulator(TaskSet tasks, const sched::Scheduler& scheduler,
            SimConfig config);

  /// Override the arrival trace of one task (default: random UAM-
  /// conformant arrivals from `seed_arrivals`).
  void set_arrivals(TaskId task, std::vector<Time> arrivals);

  /// Generate random UAM-conformant arrival traces for every task that
  /// has no explicit trace yet.
  void seed_arrivals(std::uint64_t seed);

  /// Run to the horizon and produce the report.  Single-shot: construct
  /// a new Simulator for another run.
  SimReport run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;

 public:
  ~Simulator();
  Simulator(Simulator&&) noexcept;
  Simulator& operator=(Simulator&&) noexcept;
};

}  // namespace lfrt::sim
