// Shared console formatter for RunReport — one report printer for every
// example and demo instead of per-binary hand-rolled loops.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "runtime/run_report.hpp"

namespace lfrt::runtime {

/// Knobs for print_report.
struct PrintOptions {
  /// Prefix for the summary line, e.g. "lock-free RUA".
  std::string label;
  /// Emit a per-task breakdown table above the summary line.
  bool per_task = false;
  /// Optional display names indexed by TaskId (falls back to "T<id>").
  std::vector<std::string> task_names;
  /// Include scheduling-activity counters in the summary line.
  bool show_sched = false;
};

/// Print `rep` to `os`: optional per-task table, then one summary line
/// with AUR/CMR/completed/aborted and the sharing-mechanism tallies.
void print_report(std::ostream& os, const RunReport& rep,
                  const PrintOptions& opts = {});

}  // namespace lfrt::runtime
