// Lock-free sorted linked list (set) — Valois [26] / Harris style, over
// a fixed node pool with tagged references.
//
// Deletion is two-phase: a node is first *logically* deleted by setting
// a mark bit in its next-reference (CAS-ed together with the tag, so
// marking and linking race safely), then *physically* unlinked by
// helping traversals.  Unlinked nodes park on a retired list and return
// to the free pool only via reclaim(), which the owner calls at a
// quiescent point (no concurrent operations) — the bounded-memory
// discipline an embedded system would use between activation bursts,
// avoiding the unbounded reference-count chains of Valois's original
// scheme.
//
// Reference layout (64-bit word, single-word CAS):
//   [ mark:1 | tag:31 | index:32 ]
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "lockfree/node_pool.hpp"
#include "lockfree/tagged.hpp"
#include "runtime/object_stats.hpp"

namespace lfrt::lockfree {

/// Marked tagged reference: TaggedRef plus a logical-deletion bit.
struct MarkedRef {
  std::uint64_t bits = 0;

  static constexpr std::uint64_t kMarkBit = 1ULL << 63;
  static constexpr std::uint32_t kNullIndex = TaggedRef::kNullIndex;

  static constexpr MarkedRef make(std::uint32_t index, std::uint32_t tag,
                                  bool marked) {
    return MarkedRef{(marked ? kMarkBit : 0) |
                     (static_cast<std::uint64_t>(tag & 0x7FFFFFFFu) << 32) |
                     index};
  }
  static constexpr MarkedRef null() { return make(kNullIndex, 0, false); }

  constexpr std::uint32_t index() const {
    return static_cast<std::uint32_t>(bits & 0xFFFFFFFFu);
  }
  constexpr std::uint32_t tag() const {
    return static_cast<std::uint32_t>((bits >> 32) & 0x7FFFFFFFu);
  }
  constexpr bool marked() const { return (bits & kMarkBit) != 0; }
  constexpr bool is_null() const { return index() == kNullIndex; }

  friend constexpr bool operator==(MarkedRef a, MarkedRef b) {
    return a.bits == b.bits;
  }
};

/// Bounded lock-free sorted set of int64 keys.
class LfList {
 public:
  explicit LfList(std::size_t capacity) : pool_(capacity) {
    head_.store(MarkedRef::null().bits, std::memory_order_relaxed);
    retired_.store(TaggedRef::null().bits, std::memory_order_relaxed);
  }

  /// Insert `key`; false if already present or the pool is exhausted.
  bool insert(std::int64_t key) {
    const std::uint32_t node = pool_.allocate();
    if (node == TaggedRef::kNullIndex) return false;
    pool_.at(node).key = key;
    for (;;) {
      auto [prev, curr] = search(key);
      if (!curr.is_null() && pool_.at(curr.index()).key == key) {
        pool_.release(node);
        stats_.record_op();
        return false;  // already present
      }
      // Link node before curr.
      pool_.at(node).next.store(
          MarkedRef::make(curr.index(), 0, false).bits,
          std::memory_order_release);
      if (cas_link(prev, curr,
                   MarkedRef::make(node, next_tag(prev, curr), false))) {
        stats_.record_op();
        return true;
      }
      stats_.record_retry();
    }
  }

  /// Remove `key`; false if absent.
  bool remove(std::int64_t key) {
    for (;;) {
      auto [prev, curr] = search(key);
      if (curr.is_null() || pool_.at(curr.index()).key != key) {
        stats_.record_op();
        return false;
      }
      Node& victim = pool_.at(curr.index());
      const MarkedRef succ{victim.next.load(std::memory_order_acquire)};
      if (succ.marked()) continue;  // someone else is deleting it
      // Phase 1: logical deletion — mark the victim's next ref.
      MarkedRef expect = succ;
      const MarkedRef marked =
          MarkedRef::make(succ.index(), succ.tag() + 1, true);
      if (!victim.next.compare_exchange_strong(expect.bits, marked.bits,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
        stats_.record_retry();
        continue;
      }
      // Phase 2: physical unlink (best effort; search() helps too).
      if (cas_link(prev, curr,
                   MarkedRef::make(succ.index(), next_tag(prev, curr),
                                   false))) {
        retire(curr.index());
      }
      stats_.record_op();
      return true;
    }
  }

  bool contains(std::int64_t key) const {
    MarkedRef curr{head_.load(std::memory_order_acquire)};
    while (!curr.is_null()) {
      const Node& n = pool_.at(curr.index());
      const MarkedRef next{n.next.load(std::memory_order_acquire)};
      if (!next.marked()) {
        if (n.key == key) return true;
        if (n.key > key) return false;
      }
      curr = MarkedRef{next.bits & ~MarkedRef::kMarkBit};
    }
    return false;
  }

  /// Snapshot of live keys (quiescent use: tests/diagnostics).
  std::vector<std::int64_t> keys() const {
    std::vector<std::int64_t> out;
    MarkedRef curr{head_.load(std::memory_order_acquire)};
    while (!curr.is_null()) {
      const Node& n = pool_.at(curr.index());
      const MarkedRef next{n.next.load(std::memory_order_acquire)};
      if (!next.marked()) out.push_back(n.key);
      curr = MarkedRef{next.bits & ~MarkedRef::kMarkBit};
    }
    return out;
  }

  /// Return retired nodes to the free pool.  Caller must guarantee no
  /// concurrent operations (a quiescent point).
  std::size_t reclaim() {
    std::size_t n = 0;
    TaggedRef top{retired_.load(std::memory_order_acquire)};
    retired_.store(TaggedRef::null().bits, std::memory_order_release);
    std::uint32_t idx = top.index();
    while (idx != TaggedRef::kNullIndex) {
      const TaggedRef next{pool_.at(idx).retired_next};
      pool_.release(idx);
      ++n;
      idx = next.index();
    }
    return n;
  }

  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  struct Node {
    std::int64_t key = 0;
    std::atomic<std::uint64_t> next{0};
    std::uint64_t retired_next = 0;  // single-threaded within retire list
  };

  /// Find the first unmarked node with key >= `key`; returns
  /// {prev, curr} where prev is the unmarked predecessor (null = head).
  /// Physically unlinks marked nodes encountered on the way (helping).
  std::pair<MarkedRef, MarkedRef> search(std::int64_t key) {
  restart:
    MarkedRef prev = MarkedRef::null();
    MarkedRef curr{head_.load(std::memory_order_acquire)};
    while (!curr.is_null()) {
      Node& n = pool_.at(curr.index());
      const MarkedRef next{n.next.load(std::memory_order_acquire)};
      if (next.marked()) {
        // Help unlink the logically deleted node.
        if (!cas_link(prev, curr,
                      MarkedRef::make(next.index(), next_tag(prev, curr),
                                      false))) {
          stats_.record_retry();
          goto restart;
        }
        retire(curr.index());
        curr = MarkedRef::make(next.index(), 0, false);
        continue;
      }
      if (n.key >= key) return {prev, curr};
      prev = curr;
      curr = MarkedRef::make(next.index(), 0, false);
    }
    return {prev, curr};
  }

  /// The link word holding the reference to `curr` (head or prev.next).
  std::atomic<std::uint64_t>& link_of(MarkedRef prev) {
    return prev.is_null() ? head_ : pool_.at(prev.index()).next;
  }

  /// Tag to use for the next write through that link.
  std::uint32_t next_tag(MarkedRef prev, MarkedRef /*curr*/) {
    const MarkedRef now{link_of(prev).load(std::memory_order_acquire)};
    return now.tag() + 1;
  }

  /// CAS the link currently referencing `curr` (unmarked) to `desired`.
  bool cas_link(MarkedRef prev, MarkedRef curr, MarkedRef desired) {
    std::atomic<std::uint64_t>& link = link_of(prev);
    std::uint64_t expect = link.load(std::memory_order_acquire);
    const MarkedRef e{expect};
    if (e.marked() || e.index() != curr.index()) return false;
    return link.compare_exchange_strong(expect, desired.bits,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
  }

  void retire(std::uint32_t idx) {
    TaggedRef top{retired_.load(std::memory_order_acquire)};
    for (;;) {
      pool_.at(idx).retired_next = TaggedRef::make(top.index(), 0).bits;
      const TaggedRef desired = TaggedRef::make(idx, top.tag() + 1);
      if (retired_.compare_exchange_weak(top.bits, desired.bits,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
        return;
    }
  }

  NodePool<Node> pool_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> retired_{0};
  mutable runtime::ObjectStats stats_;
};

}  // namespace lfrt::lockfree
