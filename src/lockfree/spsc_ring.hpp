// Wait-free single-producer/single-consumer ring buffer.
//
// Included as a contrast structure: the paper's related work (Kopetz's
// NBW protocol [16] and successors [6, 7, 14]) covers wait-free sharing,
// which completes in a *bounded* number of steps but needs a-priori
// knowledge of the communicating parties.  For the SPSC special case a
// ring buffer is wait-free with no retries at all; examples use it to
// illustrate the retry-free end of the design space.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "runtime/object_stats.hpp"
#include "support/check.hpp"

namespace lfrt::lockfree {

/// Bounded wait-free SPSC FIFO.  One thread may call push, one thread
/// may call pop; both complete in O(1) steps unconditionally.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) : buf_(capacity + 1) {
    LFRT_CHECK_MSG(capacity >= 1, "ring needs capacity >= 1");
  }

  /// Returns false when full (never blocks, never retries).
  bool push(const T& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = advance(head);
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buf_[head] = value;
    head_.store(next, std::memory_order_release);
    stats_.record_op();
    return true;
  }

  /// Empty optional when empty (never blocks, never retries).
  std::optional<T> pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = buf_[tail];
    tail_.store(advance(tail), std::memory_order_release);
    stats_.record_op();
    return value;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  /// Retries stay zero by construction — the wait-free contrast point.
  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  std::size_t advance(std::size_t i) const {
    return (i + 1) % buf_.size();
  }

  std::vector<T> buf_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
  runtime::ObjectStats stats_;
};

}  // namespace lfrt::lockfree
