// Per-object shared-object specification — the vocabulary both
// execution substrates speak.
//
// Brandenburg's locking-protocol survey organizes results by *access
// pattern* (queue/stack vs reader-writer vs snapshot); this header is
// that axis for our object universe.  An ObjectSpec names, for one
// ObjectId, (a) the access pattern the object serves (kind) and (b) the
// synchronization mechanism implementing it (impl).  The simulator uses
// the impl to pick its per-object access-cost/blocking model; the
// executor adapter (runtime::SharedObject) instantiates the matching
// real structure.  Deliberately header-light: sim::SimConfig includes
// this without dragging in src/lockfree / src/lockbased.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lfrt::runtime {

/// Access pattern of one shared object.
enum class ObjectKind : std::uint8_t {
  kQueue,     ///< MPMC FIFO (MS queue / mutex queue) — the paper's shape
  kStack,     ///< MPMC LIFO (Treiber stack / mutex stack)
  kBuffer,    ///< single-writer state message (NBW buffer / mutex buffer)
  kSnapshot,  ///< N-segment atomic snapshot (double-collect / mutex)
};

/// Synchronization mechanism implementing the object.
enum class ObjectImpl : std::uint8_t {
  kLockFree,   ///< CAS/version retries under interference (f_i events)
  kLockBased,  ///< mutual exclusion; blocking episodes (n_i events)
};

/// Hard cap on the shard fan-out of one object (compile-time: shard
/// headers and the simulator's per-shard conflict state are sized by
/// it).  8 stripes already spread 8 hammering tasks one-per-stripe.
inline constexpr std::int32_t kMaxObjectShards = 8;

/// One shared object of a run's universe, indexed by ObjectId.
struct ObjectSpec {
  ObjectKind kind = ObjectKind::kQueue;
  ObjectImpl impl = ObjectImpl::kLockFree;

  /// Initial stripe count of a lock-free queue/stack (clamped to
  /// [1, kMaxObjectShards]; other kinds ignore it): accesses spread
  /// over `shards` independent structures by task affinity, so tasks
  /// landing on different stripes stop invalidating each other's CAS
  /// windows.  1 — the default — is the unsharded structure.
  std::int32_t shards = 1;

  /// Opt this object into the online ContentionController: its stripe
  /// count is then promoted/demoted at run time from the live
  /// ContentionMatrix (shards above is the starting point and the
  /// demotion floor).
  bool adapt = false;

  friend bool operator==(const ObjectSpec&, const ObjectSpec&) = default;
};

/// ObjectSpec::shards clamped to the representable range.
inline std::int32_t clamp_shards(std::int32_t shards) {
  if (shards < 1) return 1;
  if (shards > kMaxObjectShards) return kMaxObjectShards;
  return shards;
}

inline std::string to_string(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kQueue:
      return "queue";
    case ObjectKind::kStack:
      return "stack";
    case ObjectKind::kBuffer:
      return "buffer";
    case ObjectKind::kSnapshot:
      return "snapshot";
  }
  return "?";
}

inline std::string to_string(ObjectImpl impl) {
  return impl == ObjectImpl::kLockFree ? "lock-free" : "lock-based";
}

/// Parse "queue" | "stack" | "buffer" | "snapshot" (bench --objects=
/// flags).  Returns false on anything else.
inline bool parse_object_kind(const std::string& s, ObjectKind* out) {
  if (s == "queue") *out = ObjectKind::kQueue;
  else if (s == "stack") *out = ObjectKind::kStack;
  else if (s == "buffer") *out = ObjectKind::kBuffer;
  else if (s == "snapshot") *out = ObjectKind::kSnapshot;
  else return false;
  return true;
}

/// A homogeneous universe: `count` objects of the same kind and impl.
inline std::vector<ObjectSpec> uniform_objects(std::int32_t count,
                                               ObjectKind kind,
                                               ObjectImpl impl) {
  return std::vector<ObjectSpec>(static_cast<std::size_t>(count),
                                 ObjectSpec{kind, impl});
}

}  // namespace lfrt::runtime
