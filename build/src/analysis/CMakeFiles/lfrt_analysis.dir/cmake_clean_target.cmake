file(REMOVE_RECURSE
  "liblfrt_analysis.a"
)
