// Ablation (Sections 3.6 / 5): scheduling cost of lock-based RUA
// (O(n^2 log n) with dependency chains) vs lock-free RUA (O(n^2)) vs
// EDF (O(n log n)), measured two ways:
//   * wall-clock per invocation (google-benchmark), and
//   * the counted elementary operations the simulator charges,
// as the number of pending jobs n grows.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "analysis/bounds.hpp"
#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "tuf/tuf.hpp"

namespace {

using namespace lfrt;

struct View {
  std::vector<std::unique_ptr<Tuf>> tufs;
  std::vector<sched::SchedJob> jobs;
};

/// n pending jobs; `chained` links each job to the next in one long
/// dependency chain (the lock-based worst case the paper analyzes).
View make_view(int n, bool chained) {
  View v;
  for (int i = 0; i < n; ++i) {
    v.tufs.push_back(make_step_tuf(10.0 + i % 7, msec(100) + usec(13 * i)));
    sched::SchedJob j;
    j.id = i;
    j.arrival = 0;
    j.critical = v.tufs.back()->critical_time();
    j.remaining = usec(50);
    j.tuf = v.tufs.back().get();
    j.waits_on = chained && i + 1 < n ? i + 1 : kNoJob;
    v.jobs.push_back(j);
  }
  return v;
}

void BM_RuaLockBasedChained(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const View v = make_view(n, /*chained=*/true);
  const sched::RuaScheduler rua(sched::Sharing::kLockBased);
  std::int64_t ops = 0;
  for (auto _ : state) {
    const auto res = rua.build(v.jobs, 0);
    ops = res.ops;
    benchmark::DoNotOptimize(res.dispatch);
  }
  state.counters["ops"] = static_cast<double>(ops);
  state.counters["n2logn"] = analysis::rua_lockbased_asymptotic(n);
}

void BM_RuaLockFree(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const View v = make_view(n, /*chained=*/false);
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  std::int64_t ops = 0;
  for (auto _ : state) {
    const auto res = rua.build(v.jobs, 0);
    ops = res.ops;
    benchmark::DoNotOptimize(res.dispatch);
  }
  state.counters["ops"] = static_cast<double>(ops);
  state.counters["n2"] = analysis::rua_lockfree_asymptotic(n);
}

void BM_Edf(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const View v = make_view(n, /*chained=*/false);
  const sched::EdfScheduler edf;
  for (auto _ : state) {
    const auto res = edf.build(v.jobs, 0);
    benchmark::DoNotOptimize(res.dispatch);
  }
}

}  // namespace

BENCHMARK(BM_RuaLockBasedChained)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_RuaLockFree)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_Edf)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

BENCHMARK_MAIN();
