// Workload adapter: run the *same* generated task set on the real-
// threads executor that the simulator runs.
//
// The paper's evaluation is simulation; its implementation study is a
// POSIX middleware testbed.  This adapter closes the loop between the
// two substrates in-repo: it lowers a TaskSet (typically from
// workload::make_task_set) into rt::RtJobs with synthetic checkpointed
// compute bodies and *real* shared objects behind the unified
// runtime::SharedObject layer — per-object ObjectSpec{kind, impl}
// selects MS queue / Treiber stack / NBW buffer / atomic snapshot or
// their mutex counterparts — replays the identical arrival traces the
// bench harness would feed the simulator, and returns the executor's
// RunReport (including the object × task contention matrix from the
// layer's registry) — so AUR/CMR/retry figures can be cross-validated
// between analysis, simulation, and actual threads
// (bench/ext_executor_validation.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "rt/executor.hpp"
#include "runtime/contention_controller.hpp"
#include "sched/placement.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/object_spec.hpp"
#include "task/task.hpp"
#include "workload/workload.hpp"

namespace lfrt::sched {
class Scheduler;
}

namespace lfrt::runtime {

/// Configuration of one executor run.
struct ExecConfig {
  /// Wall-clock length of the arrival tape.  Only jobs whose critical
  /// time falls within the horizon are submitted — the same counting
  /// rule sim::Simulator applies — so the two substrates score the same
  /// job population.
  Time horizon = msec(200);

  /// Per-object shared-object specs, indexed by ObjectId.  Empty means
  /// a uniform universe of lock-free queues over ts.object_count (the
  /// paper's implementation-study shape); otherwise the size must equal
  /// ts.object_count.  Build mixed universes by hand or homogeneous
  /// ones with uniform_objects().
  std::vector<ObjectSpec> objects;

  /// CPU slots the executor dispatches to (rt::ExecutorConfig): 1 is
  /// the paper's uniprocessor model; > 1 runs up to that many job
  /// bodies in true parallel.  Match the simulator's SimConfig
  /// cpu_count when cross-validating.
  int cpu_count = 1;

  /// Dispatch-layer options (placement policy + strict groups),
  /// forwarded verbatim into rt::ExecutorConfig::dispatch — the mirror
  /// of SimConfig::dispatch, so one placement statement drives both
  /// substrates.  Under a non-global placement with scope_objects (the
  /// default), queue/stack objects are instantiated once per cluster in
  /// the SharedObjectSet and each task accesses its own cluster's
  /// instance; buffer/snapshot stay shared.  Scoped instancing excludes
  /// adaptive sharding (ObjectSpec::adapt).
  sched::DispatchOptions dispatch;

  /// Arrival seeding, mirroring bench::make_cell_sim: per-task RNG
  /// seeded with `arrival_seed ^ (0xA5A5A5A5 * (id + 1))`, trace from
  /// arrivals::periodic_phased (or random_conformant when !periodic).
  std::uint64_t arrival_seed = 1;
  bool periodic_arrivals = true;

  /// Compute bodies spin in quanta of this length with a checkpoint
  /// (preemption/abort point) between quanta.
  Time quantum = usec(50);

  /// Capacity of each lock-free queue/stack (accesses are insert/remove
  /// balanced, so steady-state occupancy stays near the in-flight job
  /// count).
  std::size_t queue_capacity = 1024;

  /// Contention-controller tuning, engaged when any ObjectSpec in
  /// `objects` sets adapt: run_on_executor then runs a live
  /// runtime::ContentionController thread for the duration of the tape,
  /// promoting/demoting shard counts on the real sharded structures and
  /// steering the executor's dispatch by the epoch conflict vector.
  ControllerConfig controller;

  /// Simulator-side access costs — s and r of Section 5 — used when a
  /// harness cross-validates this run against sim::Simulator.  The
  /// defaults are order-of-magnitude placeholders; calibrate()
  /// (runtime/calibrate.hpp) replaces them with values measured on this
  /// host by the fig08 access-time machinery.
  Time sim_lockfree_access_time = usec(1);
  Time sim_lock_access_time = usec(2);

  /// Per-(kind, impl) cost table for the simulator side of a cross-
  /// validation run.  Disabled by default (the flat scalars above rule,
  /// as before the lock zoo); calibrate() fills and enables it, and a
  /// harness copies it into SimConfig::cost_model so the zoo's
  /// mechanisms separate in simulated time the way they do on the
  /// executor's real locks.
  CostModel sim_cost_model;
};

/// Per-task arrival traces over [0, horizon], indexed by TaskId — byte-
/// compatible with what bench::make_cell_sim feeds the simulator for
/// the same seed, so a cross-validation run compares like with like.
std::vector<std::vector<Time>> make_arrival_traces(const TaskSet& ts,
                                                   Time horizon,
                                                   std::uint64_t seed,
                                                   bool periodic);

/// Resolve cfg.objects against the task set: the explicit per-object
/// list when given (size-checked), else the uniform lock-free-queue
/// default.  Exposed so cross-validation harnesses can lower the same
/// universe into the simulator's SimConfig.
std::vector<ObjectSpec> resolve_object_specs(const TaskSet& ts,
                                             const ExecConfig& cfg);

/// Replay `ts` on a fresh rt::Executor under `scheduler`: submit each
/// admitted arrival at its trace time (wall clock), with a body that
/// spins the task's exec_time in checkpointed quanta and performs each
/// AccessSpec as one SharedObject::access against the real object —
/// write accesses on queue/stack shapes insert, expose a mid-access
/// checkpoint, then remove (aborts roll the insert back); buffer and
/// snapshot shapes write/read/scan per their protocols.  Blocks until
/// the tape has played and every job reached a terminal state; the
/// returned report carries the object × task contention matrix.
rt::ExecutorReport run_on_executor(const TaskSet& ts,
                                   const sched::Scheduler& scheduler,
                                   const ExecConfig& cfg);

/// Convenience: generate the task set from `spec` first.
rt::ExecutorReport run_on_executor(const workload::WorkloadSpec& spec,
                                   const sched::Scheduler& scheduler,
                                   const ExecConfig& cfg);

}  // namespace lfrt::runtime
