// Figure 6 illustration: mutual preemption under UA scheduling.
//
// Under fully-dynamic eligibility (PUD changes as time passes and
// scheduling events arrive), two jobs can preempt each other repeatedly
// — unlike static or job-level dynamic priority schedulers, where a job
// preempts another at most once.  This example constructs such a
// scenario and prints the simulator trace showing the alternation,
// which is exactly why Lemma 1 counts *events*, not releases.
#include <iostream>

#include "sched/rua.hpp"
#include "sim/gantt.hpp"
#include "sim/simulator.hpp"

using namespace lfrt;

int main() {
  // Two long jobs plus a stream of tiny jobs whose arrivals are
  // scheduling events; at each event eligibility is re-evaluated and
  // the balance between the two long jobs can flip.
  TaskSet ts;
  ts.object_count = 1;

  TaskParams a;
  a.id = 0;
  a.arrival = UamSpec{1, 1, msec(100)};
  a.tuf = make_linear_tuf(100.0, msec(60));  // decaying: PUD drifts
  a.exec_time = msec(10);
  ts.tasks.push_back(std::move(a));

  TaskParams b;
  b.id = 1;
  b.arrival = UamSpec{1, 1, msec(100)};
  b.tuf = make_parabolic_tuf(95.0, msec(40));  // decays faster near C
  b.exec_time = msec(10);
  ts.tasks.push_back(std::move(b));

  TaskParams ticks;
  ticks.id = 2;
  ticks.arrival = UamSpec{1, 1, msec(2)};
  ticks.tuf = make_step_tuf(500.0, msec(1));  // urgent micro-jobs
  ticks.exec_time = usec(100);
  ts.tasks.push_back(std::move(ticks));
  ts.validate();

  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kIdeal;
  cfg.record_trace = true;
  cfg.record_slices = true;
  cfg.horizon = msec(100);
  sim::Simulator sim(ts, rua, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {0});
  std::vector<Time> tick_times;
  for (Time t = usec(500); t < msec(40); t += msec(2))
    tick_times.push_back(t);
  sim.set_arrivals(2, tick_times);

  const sim::SimReport rep = sim.run();

  const Job& ja = rep.jobs[0];
  const Job& jb = rep.jobs[1];
  std::cout << "Figure 6 — mutual preemption under a UA scheduler\n\n";
  std::cout << "job A: preemptions=" << ja.preemptions
            << "  completion=" << to_msec(ja.completion) << " ms\n";
  std::cout << "job B: preemptions=" << jb.preemptions
            << "  completion=" << to_msec(jb.completion) << " ms\n\n";

  std::cout << "Under RM/EDF a job preempts a peer at most once per "
               "release; here the long jobs are preempted "
            << ja.preemptions << " and " << jb.preemptions
            << " times respectively — once per scheduling event in the "
               "worst case (Lemma 1), which is what Theorem 2 counts.\n\n";
  sim::GanttOptions opt;
  opt.width = 100;
  opt.end = std::max(ja.completion, jb.completion);
  std::cout << "execution timeline (T2 is the event-generating tick "
               "stream):\n"
            << sim::render_gantt(ts, rep, opt) << "\n";

  std::cout << "trace (first 30 events):\n";
  int shown = 0;
  for (const auto& line : rep.trace) {
    std::cout << "  " << line << "\n";
    if (++shown >= 30) break;
  }
  return 0;
}
