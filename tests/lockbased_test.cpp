// Tests for the lock-based substrate (mutex queue/stack with contention
// accounting).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "lockbased/mutex_queue.hpp"

namespace lfrt::lockbased {
namespace {

TEST(MutexQueue, FifoSequential) {
  MutexQueue<int> q;
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 5; ++i) q.enqueue(i);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.dequeue().value(), i);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(MutexQueue, AccountsAcquisitions) {
  MutexQueue<int> q;
  q.enqueue(1);
  q.dequeue();
  q.dequeue();
  EXPECT_EQ(q.stats().acquisition_count(), 3);
  EXPECT_EQ(q.stats().contended_count(), 0);
  EXPECT_DOUBLE_EQ(q.stats().contention_ratio(), 0.0);
}

TEST(MutexQueue, ConcurrentConservation) {
  constexpr int kPerThread = 20000;
  MutexQueue<int> q;
  std::vector<std::thread> threads;
  std::atomic<std::int64_t> count{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        q.enqueue(i);
        if (q.dequeue()) count.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  while (q.dequeue()) count.fetch_add(1);
  EXPECT_EQ(count.load(), 3LL * kPerThread);
  EXPECT_GE(q.stats().acquisition_count(), 3LL * kPerThread * 2);
}

TEST(MutexStack, LifoSequential) {
  MutexStack<int> s;
  for (int i = 0; i < 4; ++i) s.push(i);
  for (int i = 3; i >= 0; --i) EXPECT_EQ(s.pop().value(), i);
  EXPECT_FALSE(s.pop().has_value());
  EXPECT_TRUE(s.empty());
}

TEST(MutexStack, StatsCountOperations) {
  MutexStack<int> s;
  s.push(1);
  s.pop();
  EXPECT_EQ(s.stats().acquisition_count(), 2);
}

TEST(ContentionRatio, ZeroWhenUncontended) {
  runtime::ObjectStats st;
  EXPECT_DOUBLE_EQ(st.contention_ratio(), 0.0);
  for (int i = 0; i < 5; ++i) st.record_acquisition(/*was_contended=*/false);
  for (int i = 0; i < 5; ++i) st.record_acquisition(/*was_contended=*/true);
  EXPECT_DOUBLE_EQ(st.contention_ratio(), 0.5);
}

}  // namespace
}  // namespace lfrt::lockbased
