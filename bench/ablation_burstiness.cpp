// Ablation: UAM burstiness.
//
// The paper's arrival-model novelty is the UAM ⟨l, a, W⟩: the same
// long-run rate admits anything from strictly periodic (a=1) to bursts
// of `a` simultaneous releases.  This sweep holds the long-run load
// fixed (window scales with a, so a/W is constant) and grows the burst
// size, showing how burstiness alone erodes timeliness — and that
// lock-free RUA degrades far more gracefully than lock-based, because
// bursts multiply both blocking chains and lock/unlock scheduling
// events.
#include "analysis/bounds.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bench::print_header("Ablation",
                      "UAM burstiness a_i at fixed long-run load");
  std::cout << "tasks=6  objects=4  accesses/job=3  rate-normalized load="
               "0.7  r=" << to_usec(bench::kDefaultR) << "us  s="
            << to_usec(bench::kDefaultS) << "us  seed=42\n\n";

  Table table({"a_i", "AUR lock-based", "AUR lock-free", "CMR lock-based",
               "CMR lock-free", "retry bound (T2)"});

  std::vector<bench::SeriesSpec> series;
  std::vector<TaskSet> task_sets;
  for (const std::int64_t a : {1, 2, 3, 4, 6}) {
    workload::WorkloadSpec spec;
    spec.task_count = 6;
    spec.object_count = 4;
    spec.accesses_per_job = 3;
    spec.avg_exec = usec(300);
    // AL is defined per critical-time window; burst size a with window
    // (and critical time) scaled by a keeps the long-run demand a*u/W
    // constant while allowing a simultaneous releases.
    spec.load = 0.7 / static_cast<double>(a);
    spec.max_per_window = a;
    spec.tuf_class = workload::TufClass::kStep;
    spec.seed = 42;
    const TaskSet ts = workload::make_task_set(spec);

    bench::RunParams rp;
    rp.windows_per_run = 80;
    rp.mode = sim::ShareMode::kLockBased;
    series.push_back({ts, rp});
    rp.mode = sim::ShareMode::kLockFree;
    series.push_back({ts, rp});
    task_sets.push_back(ts);
  }
  const auto points = bench::run_series_batch(bench::pool(), series);

  std::size_t row = 0;
  for (const std::int64_t a : {1, 2, 3, 4, 6}) {
    const auto& lb = points[row * 2];
    const auto& lf = points[row * 2 + 1];

    // Representative Theorem-2 bound (task 0) for context: the bound
    // grows linearly in a.
    const auto bound = analysis::retry_bound(task_sets[row], 0);
    ++row;

    table.add_row(
        {std::to_string(a),
         Table::num(lb.aur_mean, 3) + " ±" + Table::num(lb.aur_ci, 3),
         Table::num(lf.aur_mean, 3) + " ±" + Table::num(lf.aur_ci, 3),
         Table::num(lb.cmr_mean, 3) + " ±" + Table::num(lb.cmr_ci, 3),
         Table::num(lf.cmr_mean, 3) + " ±" + Table::num(lf.cmr_ci, 3),
         std::to_string(bound)});
  }
  table.print();
  std::cout << "\nExpected shape: at a=1 (periodic) both modes are near "
               "their Figure-10 values; growing a packs releases into "
               "bursts that serialize on the locks, so lock-based AUR/CMR "
               "fall fastest while lock-free mainly pays bounded "
               "retries.\n";
  return 0;
}
