// Least-Laxity-First baseline scheduler.
//
// The paper (Section 4.1, citing Carpenter et al. and Anderson et al.)
// classes LLF as a *fully-dynamic* priority scheduler: a job's laxity
// (critical time minus now minus remaining work) changes as time passes,
// so two jobs can preempt each other repeatedly — the same mutual-
// preemption behaviour as UA schedulers, which is what makes Lemma 1
// count events rather than releases.  LLF is included as the second
// fully-dynamic baseline next to RUA (EDF being the job-level-dynamic
// one).
#pragma once

#include "sched/edf.hpp"  // OrderWorkspace
#include "sched/scheduler.hpp"

namespace lfrt::sched {

/// LLF with critical times as deadlines.  Never rejects a job; dispatch
/// is the runnable job with the smallest laxity
/// (critical - now - remaining).
class LlfScheduler final : public Scheduler {
 public:
  std::unique_ptr<Workspace> make_workspace() const override;

  void build_into(const std::vector<SchedJob>& jobs, Time now,
                  Workspace* ws, ScheduleResult& out) const override;

  std::string name() const override { return "LLF"; }
};

}  // namespace lfrt::sched
