// Enforces the zero-allocation contract of the RUA hot path: once a
// RuaWorkspace and a ScheduleResult have been through one warm-up call
// at a given job-count high-water mark, further build_into calls must
// perform no heap allocations at all (RuaWorkspace documents the
// contract; this test is the hook that keeps it honest).
//
// The counting operator new/delete overrides are process-global, which
// is safe here because the binary runs single-threaded and gtest's own
// allocations happen outside the counted windows.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "sched/rua.hpp"
#include "tuf/tuf.hpp"

namespace {

std::atomic<long long> g_allocs{0};
std::atomic<long long> g_frees{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  if (g_counting.load(std::memory_order_relaxed))
    g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }

void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete[](void* p, std::size_t) noexcept {
  ::operator delete(p);
}

namespace lfrt {
namespace {

using sched::RuaScheduler;
using sched::SchedJob;
using sched::ScheduleResult;
using sched::Sharing;

struct View {
  std::vector<std::unique_ptr<Tuf>> tufs;
  std::vector<SchedJob> jobs;
};

View make_view(int n, bool chained) {
  View v;
  for (int i = 0; i < n; ++i) {
    v.tufs.push_back(make_step_tuf(10.0 + i % 7, msec(100) + usec(13 * i)));
    SchedJob j;
    j.id = i;
    j.arrival = 0;
    j.critical = v.tufs.back()->critical_time();
    j.remaining = usec(50);
    j.tuf = v.tufs.back().get();
    j.waits_on = chained && i + 1 < n ? i + 1 : kNoJob;
    v.jobs.push_back(j);
  }
  return v;
}

/// Allocations observed across `calls` steady-state rebuilds.
long long count_steady_state(const RuaScheduler& rua, const View& v,
                             int calls) {
  const auto ws = rua.make_workspace();
  ScheduleResult out;
  rua.build_into(v.jobs, 0, ws.get(), out);  // warm-up: buffers grow here

  g_allocs.store(0);
  g_frees.store(0);
  g_counting.store(true);
  for (int c = 0; c < calls; ++c) rua.build_into(v.jobs, 0, ws.get(), out);
  g_counting.store(false);
  EXPECT_EQ(g_frees.load(), 0) << "steady-state build_into freed memory";
  return g_allocs.load();
}

TEST(RuaAllocTest, LockFreeSteadyStateAllocatesNothing) {
  const RuaScheduler rua(Sharing::kLockFree);
  const View v = make_view(64, /*chained=*/false);
  EXPECT_EQ(count_steady_state(rua, v, 10), 0);
}

TEST(RuaAllocTest, LockBasedChainedSteadyStateAllocatesNothing) {
  const RuaScheduler rua(Sharing::kLockBased);
  const View v = make_view(64, /*chained=*/true);
  EXPECT_EQ(count_steady_state(rua, v, 10), 0);
}

TEST(RuaAllocTest, DeadlockDetectionSteadyStateAllocatesNothing) {
  // Cycles make the detector walk its scratch and record victims; the
  // victim list lives in the (reused) ScheduleResult, so even this path
  // is allocation-free after warm-up.
  const RuaScheduler rua(Sharing::kLockBased, /*detect_deadlocks=*/true);
  View v = make_view(16, /*chained=*/true);
  v.jobs.back().waits_on = 0;  // close the chain into one big cycle
  EXPECT_EQ(count_steady_state(rua, v, 10), 0);
}

TEST(RuaAllocTest, ShrinkingJobCountStaysAllocationFree) {
  // After warming at n=64, smaller views must reuse the same capacity.
  const RuaScheduler rua(Sharing::kLockFree);
  const View big = make_view(64, false);
  const View small = make_view(9, false);
  const auto ws = rua.make_workspace();
  ScheduleResult out;
  rua.build_into(big.jobs, 0, ws.get(), out);

  g_allocs.store(0);
  g_counting.store(true);
  for (int c = 0; c < 10; ++c) rua.build_into(small.jobs, 0, ws.get(), out);
  g_counting.store(false);
  EXPECT_EQ(g_allocs.load(), 0);
}

}  // namespace
}  // namespace lfrt
