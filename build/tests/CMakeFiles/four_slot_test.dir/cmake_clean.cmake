file(REMOVE_RECURSE
  "CMakeFiles/four_slot_test.dir/four_slot_test.cpp.o"
  "CMakeFiles/four_slot_test.dir/four_slot_test.cpp.o.d"
  "four_slot_test"
  "four_slot_test.pdb"
  "four_slot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/four_slot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
