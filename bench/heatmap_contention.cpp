// Per-object contention heatmaps across the shared-object zoo.
//
// The unified runtime::SharedObject layer attributes every lock-free
// retry and lock-based blocking episode to an (object, task) cell while
// it also feeds the per-structure counters and the per-job tallies.
// This bench drives one moderately contended workload through the
// executor for every ObjectKind × ObjectImpl combination — the full
// zoo: lock-free, mutex, ticket, anderson, mcs — prints the resulting
// heatmaps, and emits them as JSON — the artifact the paper's
// engineering story needs when a deadline miss has to be traced to the
// *object* that caused it, not just the task that suffered it.
//
// Each combination is also run through the simulator on the same
// ObjectSpec universe with the calibrated per-(kind, impl) cost model
// enabled, so the table shows modelled vs measured retry/blocking
// totals side by side.
//
// Self-validation (exit 1 on violation):
//   * every matrix is non-empty with objects × tasks cells,
//   * matrix retry/blocking sums equal the run's per-job totals on both
//     substrates (three-way attribution agreement: structure counters,
//     job tallies, heatmap cells all count the same events),
//   * the executor report — heatmap included — round-trips through
//     runtime::to_json / from_json bit-exactly,
//   * sim-vs-executor underload AUR agreement on the queue kind at
//     cpus {1, 4} for every impl, within the cross-validation
//     tolerance (0.15, relaxed to 0.25 under --tiny).
//
// Usage: heatmap_contention [--tiny] [--threads=N] [--out FILE]
//   --tiny   smoke mode for check.sh/CI: short horizon
//   --out    JSON output path (default BENCH_heatmap.json in the cwd)
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "runtime/calibrate.hpp"
#include "runtime/exec_adapter.hpp"
#include "runtime/report_json.hpp"

namespace {

using namespace lfrt;

struct ComboResult {
  runtime::ObjectKind kind;
  runtime::ObjectImpl impl;
  rt::ExecutorReport exec;
  sim::SimReport sim;
  bool ok = true;
};

/// One sim/executor pair on the underload agreement workload.
struct AgreementRow {
  runtime::ObjectImpl impl;
  int cpus = 0;
  double aur_sim = 0.0;
  double aur_exec = 0.0;
  bool ok = true;
};

/// Matrix invariants shared by both substrates: right shape, and every
/// retry/blocking the run counted is attributed to exactly one cell.
bool check_matrix(const runtime::RunReport& rep, std::int32_t objects,
                  std::int32_t tasks, const char* side) {
  bool ok = true;
  const runtime::ContentionMatrix& m = rep.contention;
  if (m.empty() || m.objects != objects || m.tasks != tasks) {
    std::cerr << "error: " << side << " heatmap dims " << m.objects << "x"
              << m.tasks << " != universe " << objects << "x" << tasks
              << "\n";
    ok = false;
  }
  const runtime::ContentionCell t = m.totals();
  if (t.retries != rep.total_retries || t.blockings != rep.total_blockings) {
    std::cerr << "error: " << side << " heatmap sums (" << t.retries << "r, "
              << t.blockings << "b) != report totals (" << rep.total_retries
              << "r, " << rep.total_blockings << "b)\n";
    ok = false;
  }
  return ok;
}

void print_matrix(const runtime::ContentionMatrix& m, const char* what) {
  std::cout << "  " << what << " (object rows x task columns, "
            << "ops/retries/blockings):\n";
  for (std::int32_t o = 0; o < m.objects; ++o) {
    std::printf("    obj %d:", o);
    for (std::int32_t t = 0; t < m.tasks; ++t) {
      const runtime::ContentionCell& c = m.at(o, t);
      std::printf(" %lld/%lld/%lld", static_cast<long long>(c.ops),
                  static_cast<long long>(c.retries),
                  static_cast<long long>(c.blockings));
    }
    const runtime::ContentionCell tot = m.object_totals(o);
    std::printf("  | total %lld/%lld/%lld\n", static_cast<long long>(tot.ops),
                static_cast<long long>(tot.retries),
                static_cast<long long>(tot.blockings));
  }
}

void append_matrix_json(std::ofstream& os, const runtime::ContentionMatrix& m) {
  os << "{\"objects\": " << m.objects << ", \"tasks\": " << m.tasks
     << ", \"cells\": [";
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    const runtime::ContentionCell& c = m.cells[i];
    os << (i ? "," : "") << "[" << c.ops << "," << c.retries << ","
       << c.blockings << "]";
  }
  os << "]}";
}

/// Run the underload agreement workload on queue objects with `impl`:
/// simulator with the calibrated cost model enabled vs executor, both
/// on the same arrival trace.
AgreementRow run_agreement(const TaskSet& ts, runtime::ObjectImpl impl,
                           int cpus, Time horizon, std::uint64_t seed,
                           const runtime::AccessCalibration& cal,
                           double tol) {
  const sim::ShareMode mode = runtime::is_lock_based(impl)
                                  ? sim::ShareMode::kLockBased
                                  : sim::ShareMode::kLockFree;
  const auto specs = runtime::uniform_objects(
      ts.object_count, runtime::ObjectKind::kQueue, impl);

  runtime::ExecConfig ec;
  ec.horizon = horizon;
  ec.objects = specs;
  ec.cpu_count = cpus;
  ec.arrival_seed = seed;
  ec.periodic_arrivals = true;

  sim::SimConfig cfg;
  cfg.mode = mode;
  cfg.lockfree_access_time = cal.lockfree_access_time;
  cfg.lock_access_time = cal.lock_access_time;
  cfg.cost_model = cal.model;
  cfg.objects = specs;
  cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
  cfg.cpu_count = cpus;
  cfg.horizon = horizon;
  sim::Simulator sim(ts, bench::scheduler_for(mode), cfg);
  const auto traces =
      runtime::make_arrival_traces(ts, horizon, seed, /*periodic=*/true);
  for (const auto& t : ts.tasks)
    sim.set_arrivals(t.id, traces[static_cast<std::size_t>(t.id)]);

  AgreementRow row;
  row.impl = impl;
  row.cpus = cpus;
  row.aur_sim = sim.run().aur();
  row.aur_exec =
      runtime::run_on_executor(ts, bench::scheduler_for(mode), ec).aur();
  row.ok = std::abs(row.aur_sim - row.aur_exec) <= tol;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bool tiny = false;
  std::string out_path = "BENCH_heatmap.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--threads", 9) == 0) {
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc) ++i;
    } else {
      std::cerr << "usage: heatmap_contention [--tiny] [--threads=N] "
                   "[--out FILE]\n";
      return 2;
    }
  }
  bench::print_header("Contention heatmaps",
                      "object x task retry/blocking attribution, all "
                      "ObjectKind x ObjectImpl combos");

  // Moderate contention: short jobs hitting few objects from many
  // tasks on two CPUs, half the accesses reads — enough pressure that
  // lock-free combos retry and lock-based combos block, so the
  // heatmaps have something to show.
  workload::WorkloadSpec spec;
  spec.task_count = 8;
  spec.object_count = 4;
  spec.accesses_per_job = 4;
  spec.avg_exec = usec(400);
  spec.load = 0.8;
  spec.read_fraction = 0.5;
  spec.tuf_class = workload::TufClass::kStep;
  spec.seed = 11;
  const TaskSet ts = workload::make_task_set(spec);

  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);
  const Time horizon = max_window * (tiny ? 2 : 8);
  const std::uint64_t arrival_seed = 2000;
  const int cpus = 2;

  // Calibrate the per-(kind, impl) cost model on this host — served
  // from the persistent cache when a schema-current entry with a full
  // cell table exists, measured (and cached) otherwise.
  runtime::ExecConfig cal_probe;
  const runtime::AccessCalibration cal =
      runtime::calibrate(cal_probe, ts, tiny ? 200 : 500);
  std::cout << "calibrated: s = " << cal.lockfree_access_time
            << " ns, r = " << cal.lock_access_time << " ns, cost model "
            << (cal.model.enabled ? "enabled" : "DISABLED") << " ("
            << (cal.from_cache ? "cached" : "measured") << ")\n";

  bool ok = true;
  std::vector<ComboResult> combos;
  for (const runtime::ObjectKind kind : runtime::all_object_kinds()) {
    for (const runtime::ObjectImpl impl : runtime::all_object_impls()) {
      const sim::ShareMode mode = runtime::is_lock_based(impl)
                                      ? sim::ShareMode::kLockBased
                                      : sim::ShareMode::kLockFree;
      const auto specs =
          runtime::uniform_objects(ts.object_count, kind, impl);

      runtime::ExecConfig ec;
      ec.horizon = horizon;
      ec.objects = specs;
      ec.cpu_count = cpus;
      ec.arrival_seed = arrival_seed;
      ec.periodic_arrivals = true;

      sim::SimConfig cfg;
      cfg.mode = mode;
      cfg.lockfree_access_time = cal.lockfree_access_time;
      cfg.lock_access_time = cal.lock_access_time;
      cfg.cost_model = cal.model;
      cfg.objects = specs;
      cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
      cfg.cpu_count = cpus;
      cfg.horizon = horizon;
      sim::Simulator sim(ts, bench::scheduler_for(mode), cfg);
      const auto traces = runtime::make_arrival_traces(
          ts, horizon, arrival_seed, /*periodic=*/true);
      for (const auto& t : ts.tasks)
        sim.set_arrivals(t.id, traces[static_cast<std::size_t>(t.id)]);

      ComboResult res;
      res.kind = kind;
      res.impl = impl;
      res.sim = sim.run();
      res.exec = runtime::run_on_executor(ts, bench::scheduler_for(mode), ec);

      const auto tasks32 = static_cast<std::int32_t>(ts.tasks.size());
      res.ok = check_matrix(res.exec, ts.object_count, tasks32, "executor") &&
               check_matrix(res.sim, ts.object_count, tasks32, "simulator");

      // Round-trip witness: the serialized executor report carries the
      // whole heatmap.
      const std::string js = runtime::to_json(res.exec);
      const runtime::RunReport back = runtime::from_json(js);
      if (back.contention != res.exec.contention ||
          back.total_retries != res.exec.total_retries ||
          back.total_blockings != res.exec.total_blockings) {
        std::cerr << "error: " << runtime::to_string(kind) << "/"
                  << runtime::to_string(impl)
                  << ": JSON round-trip lost the heatmap\n";
        res.ok = false;
      }
      if (!res.ok) ok = false;
      combos.push_back(std::move(res));
    }
  }

  Table table({"kind", "impl", "AUR exec", "AUR sim", "retries x/s",
               "blockings x/s", "ops exec", "checks"});
  for (const ComboResult& c : combos) {
    table.add_row(
        {runtime::to_string(c.kind), runtime::to_string(c.impl),
         Table::num(c.exec.aur(), 3), Table::num(c.sim.aur(), 3),
         std::to_string(c.exec.total_retries) + "/" +
             std::to_string(c.sim.total_retries),
         std::to_string(c.exec.total_blockings) + "/" +
             std::to_string(c.sim.total_blockings),
         std::to_string(c.exec.contention.totals().ops),
         c.ok ? "ok" : "BROKEN"});
  }
  table.print();

  // ---- sim-vs-executor agreement on the queue kind -------------------
  // Underload, ms-scale jobs (the cross-validation recipe: agreement
  // must be a property of the substrates, not scheduling-latency
  // noise), every impl, cpus {1, 4}.  The simulator runs with the
  // calibrated cost model enabled, so this is the end-to-end check that
  // the per-impl cells predict the executor's new lock mechanisms.
  workload::WorkloadSpec agree_spec;
  agree_spec.task_count = 6;
  agree_spec.object_count = 3;
  agree_spec.accesses_per_job = 2;
  agree_spec.avg_exec = msec(2);
  agree_spec.load = 0.35;
  agree_spec.tuf_class = workload::TufClass::kStep;
  agree_spec.seed = 7;
  const TaskSet ats = workload::make_task_set(agree_spec);
  Time agree_window = 0;
  for (const auto& t : ats.tasks)
    agree_window = std::max(agree_window, t.arrival.window);
  const Time agree_horizon = agree_window * (tiny ? 2 : 6);
  const double tol = tiny ? 0.25 : 0.15;

  std::vector<AgreementRow> agree;
  for (const int acpus : {1, 4})
    for (const runtime::ObjectImpl impl : runtime::all_object_impls())
      agree.push_back(
          run_agreement(ats, impl, acpus, agree_horizon, 3000, cal, tol));

  std::cout << "\nqueue-kind underload agreement (|AUR_sim - AUR_exec| <= "
            << tol << "):\n";
  Table atable({"cpus", "impl", "AUR sim", "AUR exec", "delta", "check"});
  for (const AgreementRow& r : agree) {
    const double delta = std::abs(r.aur_sim - r.aur_exec);
    atable.add_row({std::to_string(r.cpus), runtime::to_string(r.impl),
                    Table::num(r.aur_sim, 3), Table::num(r.aur_exec, 3),
                    Table::num(delta, 3), r.ok ? "ok" : "DISAGREE"});
    if (!r.ok) {
      std::cerr << "error: queue/" << runtime::to_string(r.impl)
                << " cpus=" << r.cpus << ": |AUR_sim - AUR_exec| = " << delta
                << " > " << tol << "\n";
      ok = false;
    }
  }
  atable.print();

  // Show the executor heatmap of the combo with the most attributed
  // events — the table a deadline post-mortem would start from.
  const ComboResult* hottest = nullptr;
  std::int64_t best = -1;
  for (const ComboResult& c : combos) {
    const runtime::ContentionCell t = c.exec.contention.totals();
    if (t.retries + t.blockings > best) {
      best = t.retries + t.blockings;
      hottest = &c;
    }
  }
  if (hottest != nullptr) {
    std::cout << "\nhottest combo: " << runtime::to_string(hottest->kind)
              << "/" << runtime::to_string(hottest->impl) << "\n";
    print_matrix(hottest->exec.contention, "executor");
  }

  std::ofstream os(out_path);
  os << "{\n  \"bench\": \"heatmap_contention\",\n  \"objects\": "
     << ts.object_count << ",\n  \"tasks\": " << ts.tasks.size()
     << ",\n  \"cpus\": " << cpus << ",\n  \"combos\": [\n";
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const ComboResult& c = combos[i];
    os << "    {\"kind\": \"" << runtime::to_string(c.kind)
       << "\", \"impl\": \"" << runtime::to_string(c.impl)
       << "\", \"aur_exec\": " << c.exec.aur()
       << ", \"aur_sim\": " << c.sim.aur()
       << ", \"retries_exec\": " << c.exec.total_retries
       << ", \"retries_sim\": " << c.sim.total_retries
       << ", \"blockings_exec\": " << c.exec.total_blockings
       << ", \"blockings_sim\": " << c.sim.total_blockings
       << ", \"heatmap_exec\": ";
    append_matrix_json(os, c.exec.contention);
    os << ", \"heatmap_sim\": ";
    append_matrix_json(os, c.sim.contention);
    os << "}" << (i + 1 < combos.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"agreement\": [\n";
  for (std::size_t i = 0; i < agree.size(); ++i) {
    const AgreementRow& r = agree[i];
    os << "    {\"impl\": \"" << runtime::to_string(r.impl)
       << "\", \"cpus\": " << r.cpus << ", \"aur_sim\": " << r.aur_sim
       << ", \"aur_exec\": " << r.aur_exec << "}"
       << (i + 1 < agree.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  if (!os) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  std::cout << "heatmaps: " << combos.size() << " combos, "
            << ts.object_count << "x" << ts.tasks.size() << " cells each — "
            << (ok ? "all checks ok" : "CHECKS FAILED") << "\n";
  return ok ? 0 : 1;
}
