# Empty dependencies file for lockbased_test.
# This may be replaced when dependencies are built.
