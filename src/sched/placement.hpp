// Placement layer: which CPUs (or CPU clusters) each task is allowed
// to occupy, consulted by DispatchSelector::select_placed/assign_placed
// instead of the hard-coded top-M global rule.
//
// Three policies:
//   - global       — any job on any CPU (today's behavior, the pinned
//                    default; select_placed IS select_steered bit for
//                    bit under it),
//   - partitioned  — task_affinity[t] names the one CPU task t may run
//                    on (every CPU is its own singleton cluster),
//   - clustered    — cpu_cluster[cpu] groups CPUs into clusters and
//                    task_affinity[t] names the cluster task t may run
//                    in.
//
// A task with affinity -1 is *unplaced* and may run anywhere under any
// policy — placement is an affinity mask, not an admission filter.
//
// Object scoping (scope_objects, on by default for non-global
// placements): queue/stack shared objects are instantiated once per
// cluster and a task only ever touches its own cluster's instance
// (unplaced tasks use instance 0).  That is what makes the
// analysis::mp zero-overlap charging argument *sound* rather than
// heuristic: tasks in disjoint clusters touch disjoint structures, so
// their accesses literally cannot conflict — not "are unlikely to".
// Single-writer kinds (buffer/snapshot) are never scoped; their whole
// point is cross-cluster visibility of the writer's data.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "task/task.hpp"

namespace lfrt::sched {

enum class PlacementPolicy : std::uint8_t {
  kGlobal = 0,
  kPartitioned = 1,
  kClustered = 2,
};

inline std::string to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kGlobal: return "global";
    case PlacementPolicy::kPartitioned: return "partitioned";
    case PlacementPolicy::kClustered: return "clustered";
  }
  return "?";
}

struct Placement {
  PlacementPolicy policy = PlacementPolicy::kGlobal;

  /// task -> CPU (partitioned) or cluster id (clustered); -1 or out of
  /// range = unplaced (runs anywhere).  Ignored under global.
  std::vector<std::int32_t> task_affinity;

  /// Clustered only: cpu -> cluster id, one entry per CPU.  Partitioned
  /// derives the identity map (CPU c is cluster c); global ignores it.
  std::vector<std::int32_t> cpu_cluster;

  /// Instantiate queue/stack objects once per cluster so disjoint
  /// clusters cannot conflict (see header comment).  Only meaningful
  /// for non-global policies.
  bool scope_objects = true;

  bool global() const { return policy == PlacementPolicy::kGlobal; }

  /// Cluster a task is pinned to (-1 = unplaced / global).
  std::int32_t cluster_of_task(TaskId t) const {
    if (policy == PlacementPolicy::kGlobal) return -1;
    if (t < 0 || static_cast<std::size_t>(t) >= task_affinity.size())
      return -1;
    return task_affinity[static_cast<std::size_t>(t)];
  }

  /// Cluster a CPU belongs to (-1 under global).
  std::int32_t cluster_of_cpu(int cpu) const {
    if (policy == PlacementPolicy::kPartitioned) return cpu;
    if (policy == PlacementPolicy::kClustered) {
      if (cpu < 0 || static_cast<std::size_t>(cpu) >= cpu_cluster.size())
        return -1;
      return cpu_cluster[static_cast<std::size_t>(cpu)];
    }
    return -1;
  }

  /// Number of clusters for a machine with `cpu_count` CPUs: 1 under
  /// global, cpu_count under partitioned, max(cpu_cluster)+1 under
  /// clustered.
  std::int32_t cluster_count(int cpu_count) const {
    if (policy == PlacementPolicy::kPartitioned) return cpu_count;
    if (policy == PlacementPolicy::kClustered) {
      std::int32_t mx = -1;
      for (std::int32_t c : cpu_cluster) mx = std::max(mx, c);
      return mx + 1;
    }
    return 1;
  }

  /// Structural checks: clustered needs a full cpu -> cluster map with
  /// no gaps in cluster numbering, and every placed task must name an
  /// existing CPU/cluster.
  void validate(int cpu_count, std::size_t task_count) const {
    if (policy == PlacementPolicy::kGlobal) return;
    if (policy == PlacementPolicy::kClustered) {
      LFRT_CHECK(cpu_cluster.size() == static_cast<std::size_t>(cpu_count));
      for (std::int32_t c : cpu_cluster) LFRT_CHECK(c >= 0);
    }
    const std::int32_t n = cluster_count(cpu_count);
    LFRT_CHECK(n >= 1);
    if (policy == PlacementPolicy::kClustered) {
      // Every cluster id in [0, n) must own at least one CPU.
      std::vector<bool> seen(static_cast<std::size_t>(n), false);
      for (std::int32_t c : cpu_cluster)
        seen[static_cast<std::size_t>(c)] = true;
      for (bool s : seen) LFRT_CHECK(s);
    }
    for (std::size_t t = 0; t < task_count && t < task_affinity.size(); ++t) {
      const std::int32_t a = task_affinity[t];
      LFRT_CHECK(a < n);  // -1 (unplaced) is fine, >= n is not
    }
  }
};

/// Mode configuration for DispatchSelector, shared by SimConfig and
/// ExecutorConfig so the two substrates cannot drift: everything that
/// changes *which* eligible jobs occupy the M slots (but never the
/// scheduler's job order) lives here.  Conflict groups stay live
/// selector state (set_conflict_groups) because the controller rewrites
/// them every epoch.
struct DispatchOptions {
  Placement placement;
  bool strict_groups = false;
};

}  // namespace lfrt::sched
