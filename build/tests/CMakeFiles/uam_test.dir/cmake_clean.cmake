file(REMOVE_RECURSE
  "CMakeFiles/uam_test.dir/uam_test.cpp.o"
  "CMakeFiles/uam_test.dir/uam_test.cpp.o.d"
  "uam_test"
  "uam_test.pdb"
  "uam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
