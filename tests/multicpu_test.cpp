// Multiprocessor-mode tests: global scheduling over M CPUs, true-
// concurrency lock-free conflicts, lock blocking across CPUs — the
// paper's "multiprocessor systems" future-work direction.
#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

using sim::ShareMode;
using sim::SimConfig;
using sim::Simulator;

TaskParams simple_task(TaskId id, Time exec, Time critical,
                       std::vector<AccessSpec> accesses = {},
                       double height = 10.0) {
  TaskParams p;
  p.id = id;
  p.exec_time = exec;
  p.tuf = make_step_tuf(height, critical);
  p.arrival = UamSpec{1, 1, critical};
  p.accesses = std::move(accesses);
  return p;
}

const Job& job_of_task(const sim::SimReport& rep, TaskId task) {
  for (const Job& j : rep.jobs)
    if (j.task == task) return j;
  LFRT_CHECK_MSG(false, "no such job");
  static Job dummy;
  return dummy;
}

TEST(MultiCpu, TwoIndependentJobsRunConcurrently) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(simple_task(0, usec(10), usec(100)));
  ts.tasks.push_back(simple_task(1, usec(10), usec(100)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.cpu_count = 2;
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {0});
  const auto rep = sim.run();
  // Both finish at 10us — no serialization.
  EXPECT_EQ(job_of_task(rep, 0).completion, usec(10));
  EXPECT_EQ(job_of_task(rep, 1).completion, usec(10));
  EXPECT_EQ(rep.total_preemptions, 0);
}

TEST(MultiCpu, SameWorkloadSerializesOnOneCpu) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(simple_task(0, usec(10), usec(100)));
  ts.tasks.push_back(simple_task(1, usec(10), usec(100)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.cpu_count = 1;
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {0});
  const auto rep = sim.run();
  // One at 10us, the other at 20us.
  const Time c0 = job_of_task(rep, 0).completion;
  const Time c1 = job_of_task(rep, 1).completion;
  EXPECT_EQ(std::min(c0, c1), usec(10));
  EXPECT_EQ(std::max(c0, c1), usec(20));
}

TEST(MultiCpu, ThirdJobWaitsForAFreeCpu) {
  TaskSet ts;
  ts.object_count = 0;
  for (TaskId i = 0; i < 3; ++i)
    ts.tasks.push_back(simple_task(i, usec(10), usec(100)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.cpu_count = 2;
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  for (TaskId i = 0; i < 3; ++i) sim.set_arrivals(i, {0});
  const auto rep = sim.run();
  std::vector<Time> completions;
  for (const Job& j : rep.jobs) completions.push_back(j.completion);
  std::sort(completions.begin(), completions.end());
  EXPECT_EQ(completions[0], usec(10));
  EXPECT_EQ(completions[1], usec(10));
  EXPECT_EQ(completions[2], usec(20));
}

TEST(MultiCpu, LockBlocksAcrossCpus) {
  // Holder on CPU0 keeps the lock; the requester on CPU1 must block
  // even though a CPU is free for it.
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(simple_task(0, usec(10), usec(200), {{0, usec(2)}}));
  ts.tasks.push_back(simple_task(1, usec(10), usec(100), {{0, usec(2)}}));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(10);
  cfg.cpu_count = 2;
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(1)});
  const auto rep = sim.run();
  // T0: compute 0-2, lock 2-12, compute 12-20.
  // T1: compute 1-3, blocked 3-12, lock 12-22, compute 22-30.
  EXPECT_EQ(job_of_task(rep, 0).completion, usec(20));
  EXPECT_EQ(job_of_task(rep, 1).completion, usec(30));
  EXPECT_EQ(job_of_task(rep, 1).blockings, 1);
  EXPECT_EQ(rep.total_blockings, 1);
}

TEST(MultiCpu, ConcurrentLockFreeAccessOneLoserRetries) {
  // Both jobs start accesses to the same object concurrently; the first
  // CAS to land wins, the loser retries — the true-concurrency conflict
  // source absent from the uniprocessor model.
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(simple_task(0, usec(10), usec(300), {{0, usec(2)}}));
  ts.tasks.push_back(simple_task(1, usec(10), usec(300), {{0, usec(4)}}));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(10);
  cfg.cpu_count = 2;
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {0});
  const auto rep = sim.run();
  // T0: compute 0-2, access attempt 2-12 (CAS lands at 12, first: wins).
  // T1: compute 0-4, attempt 4-14: T0 completed the object at 12 inside
  // T1's window -> retry 14-24, then compute 24-30.
  const Job& j0 = job_of_task(rep, 0);
  const Job& j1 = job_of_task(rep, 1);
  EXPECT_EQ(j0.retries, 0);
  EXPECT_EQ(j0.completion, usec(20));
  EXPECT_EQ(j1.retries, 1);
  EXPECT_EQ(j1.completion, usec(30));
}

TEST(MultiCpu, DisjointObjectsNoConflict) {
  TaskSet ts;
  ts.object_count = 2;
  ts.tasks.push_back(simple_task(0, usec(10), usec(300), {{0, usec(2)}}));
  ts.tasks.push_back(simple_task(1, usec(10), usec(300), {{1, usec(2)}}));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(10);
  cfg.cpu_count = 2;
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {0});
  const auto rep = sim.run();
  EXPECT_EQ(rep.total_retries, 0);
  EXPECT_EQ(job_of_task(rep, 0).completion, usec(20));
  EXPECT_EQ(job_of_task(rep, 1).completion, usec(20));
}

TEST(MultiCpu, MoreCpusNeverHurtCmr) {
  for (const auto mode : {ShareMode::kLockFree, ShareMode::kIdeal}) {
    workload::WorkloadSpec spec;
    spec.task_count = 8;
    spec.object_count = 4;
    spec.accesses_per_job = 2;
    spec.load = 1.4;  // overloaded on one CPU
    spec.seed = 31;
    const TaskSet ts = workload::make_task_set(spec);
    const sched::RuaScheduler rua(sched::Sharing::kLockFree);
    double prev_cmr = -1.0;
    for (const int cpus : {1, 2, 4}) {
      SimConfig cfg;
      cfg.mode = mode;
      cfg.lockfree_access_time = usec(2);
      cfg.cpu_count = cpus;
      cfg.horizon = msec(50);
      Simulator sim(ts, rua, cfg);
      sim.seed_arrivals(8);
      const auto rep = sim.run();
      EXPECT_GE(rep.cmr(), prev_cmr - 0.02)
          << "mode " << sim::to_string(mode) << " cpus " << cpus;
      prev_cmr = rep.cmr();
    }
    // With 4 CPUs the 1.4-load workload is comfortably underloaded.
    EXPECT_GT(prev_cmr, 0.95) << sim::to_string(mode);
  }
}

TEST(MultiCpu, AbortHandlersMayRunConcurrently) {
  TaskSet ts;
  ts.object_count = 0;
  for (TaskId i = 0; i < 2; ++i) {
    auto t = simple_task(i, usec(100), usec(10));  // hopeless
    t.abort_handler_time = usec(5);
    ts.tasks.push_back(std::move(t));
  }
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.cpu_count = 2;
  cfg.horizon = msec(1);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {0});
  const auto rep = sim.run();
  EXPECT_EQ(rep.aborted, 2);
  // Handlers fire at the common expiry (10us) and run concurrently.
  for (const Job& j : rep.jobs) EXPECT_EQ(j.state, JobState::kAborted);
}

/// Property sweep: report invariants hold across CPU counts, modes, and
/// loads; retries stay within the (uniprocessor) Theorem-2 bound on one
/// CPU.
struct McParams {
  int cpus;
  double load;
  std::uint64_t seed;
};

class MultiCpuPropertyTest : public ::testing::TestWithParam<McParams> {};

TEST_P(MultiCpuPropertyTest, ReportInvariants) {
  const auto p = GetParam();
  workload::WorkloadSpec spec;
  spec.task_count = 6;
  spec.object_count = 3;
  spec.accesses_per_job = 2;
  spec.load = p.load;
  spec.seed = p.seed;
  const TaskSet ts = workload::make_task_set(spec);

  for (const auto mode :
       {ShareMode::kLockFree, ShareMode::kLockBased, ShareMode::kIdeal}) {
    const sched::RuaScheduler rua(mode == ShareMode::kLockBased
                                      ? sched::Sharing::kLockBased
                                      : sched::Sharing::kLockFree);
    SimConfig cfg;
    cfg.mode = mode;
    cfg.lock_access_time = usec(4);
    cfg.lockfree_access_time = usec(1);
    cfg.cpu_count = p.cpus;
    cfg.horizon = msec(25);
    Simulator sim(ts, rua, cfg);
    sim.seed_arrivals(p.seed);
    const auto rep = sim.run();

    EXPECT_EQ(rep.completed + rep.aborted, rep.counted_jobs);
    EXPECT_LE(rep.accrued_utility, rep.max_possible_utility + 1e-9);
    EXPECT_LE(rep.aur(), 1.0 + 1e-12);
    for (const Job& j : rep.jobs) {
      if (j.state == JobState::kCompleted) {
        EXPECT_LE(j.completion, j.critical_abs);
      }
      if (p.cpus == 1 && mode == ShareMode::kLockFree) {
        EXPECT_LE(j.retries, analysis::retry_bound(ts, j.task));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiCpuPropertyTest,
    ::testing::Values(McParams{1, 0.8, 1}, McParams{2, 0.8, 2},
                      McParams{2, 1.5, 3}, McParams{3, 1.5, 4},
                      McParams{4, 2.5, 5}, McParams{4, 0.5, 6}));

}  // namespace
}  // namespace lfrt
