
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lfrt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lfrt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lfrt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lfrt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/lfrt_task.dir/DependInfo.cmake"
  "/root/repo/build/src/uam/CMakeFiles/lfrt_uam.dir/DependInfo.cmake"
  "/root/repo/build/src/tuf/CMakeFiles/lfrt_tuf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
