# Empty compiler generated dependencies file for fig11_underload_hetero.
# This may be replaced when dependencies are built.
