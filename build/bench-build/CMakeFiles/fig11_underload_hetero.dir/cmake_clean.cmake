file(REMOVE_RECURSE
  "../bench/fig11_underload_hetero"
  "../bench/fig11_underload_hetero.pdb"
  "CMakeFiles/fig11_underload_hetero.dir/fig11_underload_hetero.cpp.o"
  "CMakeFiles/fig11_underload_hetero.dir/fig11_underload_hetero.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_underload_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
