// NBW — the Non-Blocking Write protocol of Kopetz & Reisinger [16].
//
// The paper's related work contrasts lock-free sharing with wait-free
// protocols descended from NBW (Chen & Burns [6], Huang et al. [14],
// Cho et al. [7]).  NBW protects a single-writer/multi-reader state
// message: the writer is *wait-free* (never blocks, never retries —
// fitting its real-time producer), while readers are lock-free (they
// retry when a write overlapped their read, detected via a concurrency
// control field incremented before and after each write).
//
// Included as the contrast structure for tests/examples: it shows the
// retry cost migrating from writers (MS queue) to readers (NBW), and
// why these schemes need the a-priori writer identity the paper says is
// hard to obtain in dynamic systems.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "lockfree/annotate.hpp"
#include "runtime/object_stats.hpp"

namespace lfrt::lockfree {

/// Single-writer/multi-reader tear-free state buffer.
///
/// T must be trivially copyable (it is copied field-blind under a
/// version check).  Exactly one thread may call write(); any number may
/// call read().
template <typename T>
class NbwBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "NBW copies the message blindly; T must be trivially "
                "copyable");

 public:
  explicit NbwBuffer(const T& initial = T{}) : data_(initial) {}

  /// Wait-free write: bounded steps, unconditionally.
  void write(const T& value) {
    const std::uint64_t s = ccf_.load(std::memory_order_relaxed);
    ccf_.store(s + 1, std::memory_order_release);  // odd: write in flight
    std::atomic_thread_fence(std::memory_order_release);
    // The copy formally races with readers mid-collect; those readers
    // discard their (possibly torn) copy when ccf_ moved — the seqlock
    // contract annotate.hpp documents.
    detail::store_value_slot(data_, value);
    std::atomic_thread_fence(std::memory_order_release);
    ccf_.store(s + 2, std::memory_order_release);  // even: stable
    stats_.record_op();
  }

  /// Lock-free read: retries while a write is in flight or overlapped.
  T read() const {
    for (;;) {
      const std::uint64_t before = ccf_.load(std::memory_order_acquire);
      if (before & 1) {  // writer mid-flight
        stats_.record_retry();
        continue;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      T copy = detail::load_value_slot(const_cast<T&>(data_));
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t after = ccf_.load(std::memory_order_acquire);
      if (before == after) {
        stats_.record_op();
        return copy;
      }
      stats_.record_retry();
    }
  }

  /// Version counter (even when stable); exposes write progress.
  std::uint64_t version() const {
    return ccf_.load(std::memory_order_acquire);
  }

  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  std::atomic<std::uint64_t> ccf_{0};
  T data_;
  mutable runtime::ObjectStats stats_;
};

}  // namespace lfrt::lockfree
