// Multiprocessor dispatch selection shared by the simulator and the
// real-threads executor.
//
// Both substrates run ONE global scheduler (Scheduler::build_into) and
// then choose which jobs of the resulting schedule occupy the M CPUs.
// The selection rule — the schedule's eligible jobs in order, behind any
// must-run-now jobs (abort handlers) and the scheduler's own dispatch
// nomination — and the sticky CPU assignment that keeps already-running
// jobs on their CPU both live here, so sim::Simulator (cpu_count > 1)
// and rt::Executor (ExecutorConfig::cpu_count) dispatch identically and
// the cross-substrate validation (bench/ext_executor_validation)
// compares like with like.
//
// A DispatchSelector is reusable scratch, exactly like a
// Scheduler::Workspace: one instance per dispatching loop, never shared
// between threads, steady-state allocation-free.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.hpp"
#include "support/check.hpp"
#include "task/task.hpp"

namespace lfrt::sched {

class DispatchSelector {
 public:
  /// Pre-size the membership stamps for `n` job ids (optional; the
  /// stamps grow on demand).
  void reserve(std::size_t n) { stamp_.reserve(n); }

  /// Top-M selection: fill up to `cpu_count` dispatch targets from
  /// `front` (jobs that must run now regardless of the schedule — the
  /// simulator's abort handlers; empty for the executor, whose handlers
  /// run off-CPU), then the scheduler's own dispatch choice (which may
  /// differ from the first runnable schedule entry — e.g. EDF+PIP
  /// dispatches a lock *holder* on behalf of the blocked head), then
  /// the schedule's entries in order.  Entries are deduplicated in O(1)
  /// via generation stamps and filtered by `eligible(id)` (front jobs
  /// are the caller's to vet).  Ids must be < `id_limit`.
  template <typename Eligible>
  const std::vector<JobId>& select(const std::vector<JobId>& front,
                                   const ScheduleResult& res, int cpu_count,
                                   std::size_t id_limit,
                                   Eligible&& eligible) {
    targets_.clear();
    if (stamp_.size() < id_limit) stamp_.resize(id_limit, 0);
    ++gen_;
    const auto full = [&] {
      return static_cast<int>(targets_.size()) >= cpu_count;
    };
    const auto push = [&](JobId id) {
      stamp_[static_cast<std::size_t>(id)] = gen_;
      targets_.push_back(id);
    };
    const auto in_range = [&](JobId id) {
      return id >= 0 && static_cast<std::size_t>(id) < id_limit;
    };
    for (JobId id : front) {
      if (full()) break;
      push(id);
    }
    if (!full() && in_range(res.dispatch) &&
        stamp_[static_cast<std::size_t>(res.dispatch)] != gen_ &&
        eligible(res.dispatch)) {
      push(res.dispatch);
    }
    for (JobId id : res.schedule) {
      if (full()) break;
      if (!in_range(id)) continue;
      if (stamp_[static_cast<std::size_t>(id)] == gen_) continue;
      if (!eligible(id)) continue;
      push(id);
    }
    return targets_;
  }

  /// Sticky CPU assignment over the last selection: targets keep the
  /// CPU they already occupy (`cpu_of(id)` >= 0), newcomers fill the
  /// freed slots in selection order.  Returns the per-CPU next
  /// occupancy (kNoJob = idle), valid until the next call.
  template <typename CpuOf>
  const std::vector<JobId>& assign_sticky(const std::vector<JobId>& targets,
                                          int cpu_count, CpuOf&& cpu_of) {
    next_.assign(static_cast<std::size_t>(cpu_count), kNoJob);
    newcomers_.clear();
    for (JobId id : targets) {
      const int c = cpu_of(id);
      if (c >= 0)
        next_[static_cast<std::size_t>(c)] = id;
      else
        newcomers_.push_back(id);
    }
    std::size_t fill = 0;
    for (JobId id : newcomers_) {
      while (fill < next_.size() && next_[fill] != kNoJob) ++fill;
      LFRT_CHECK(fill < next_.size());
      next_[fill] = id;
    }
    return next_;
  }

 private:
  std::vector<JobId> targets_;
  std::vector<JobId> next_;
  std::vector<JobId> newcomers_;
  // Membership stamps: stamp_[id] == gen_ iff id is already in
  // targets_ this selection — O(1) dedup without a per-entry scan.
  std::vector<std::int64_t> stamp_;
  std::int64_t gen_ = 0;
};

}  // namespace lfrt::sched
