// M-worker executor: deterministic witnesses that cpu_count > 1 really
// overlaps job bodies, that cpu_count = 1 really serializes them, and
// that the executor agrees with the simulator's multi-CPU scenarios
// (same workload, same arrival traces, same cpu_count) — the tier-1
// counterpart of bench/ext_executor_validation's sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "runtime/exec_adapter.hpp"
#include "rt/executor.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

/// Two jobs that each hold their body until *both* bodies have started.
/// With two CPU slots the dispatcher runs them concurrently, so the
/// rendezvous succeeds and both complete — deterministically, not by
/// timing luck.  The parked-forever alternative is impossible: with two
/// ready jobs and two slots the top-2 selection dispatches both.
TEST(ExecutorMultiCpu, TwoJobsRendezvousWithTwoCpus) {
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  std::atomic<int> started{0};
  rt::ExecutorReport rep;
  {
    rt::Executor ex(rua, rt::ExecutorConfig{2});
    for (int i = 0; i < 2; ++i) {
      rt::RtJob job;
      job.tuf = make_step_tuf(10.0, sec(30));  // generous: no aborts
      job.expected_exec = usec(100);
      job.body = [&started](rt::JobContext& ctx) {
        started.fetch_add(1);
        while (started.load() < 2) {
          ctx.checkpoint();
          std::this_thread::yield();
        }
      };
      ex.submit(std::move(job));
    }
    rep = ex.shutdown();
  }
  EXPECT_EQ(rep.completed, 2);
  EXPECT_EQ(rep.aborted, 0);
  EXPECT_EQ(rep.cpu_count, 2);
  EXPECT_GE(rep.max_concurrency_observed, 2);
  ASSERT_EQ(rep.cpu_busy.size(), 2u);
  // Both slots were actually occupied at some point.
  EXPECT_GT(rep.cpu_busy[0], 0);
  EXPECT_GT(rep.cpu_busy[1], 0);
}

/// The serialized counterpart: with one CPU slot the parked job cannot
/// start its body, so the dispatched job never observes the rendezvous
/// inside its spin window — it gives up at a wall-clock deadline and
/// completes; the second job then runs alone and trivially observes
/// both increments.  Exactly one body sees the rendezvous, nothing is
/// preempted (the running job's utility density only grows, so RUA
/// never demotes it), and the concurrency gauge stays at 1: one slot
/// really serializes bodies.  (An abort-based variant of this witness
/// is racy by design — an abort mark is delivered at the next
/// checkpoint, so a body that returns first completes normally; see
/// the thread-model comment in rt/executor.hpp.)
TEST(ExecutorMultiCpu, RendezvousImpossibleOnOneCpu) {
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  std::atomic<int> started{0};
  std::atomic<int> saw_both{0};
  rt::ExecutorReport rep;
  {
    rt::Executor ex(rua);  // default cpu_count = 1
    for (int i = 0; i < 2; ++i) {
      rt::RtJob job;
      job.tuf = make_step_tuf(10.0, sec(30));  // generous: no aborts
      job.expected_exec = usec(100);
      job.body = [&started, &saw_both](rt::JobContext& ctx) {
        started.fetch_add(1);
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(200);
        while (std::chrono::steady_clock::now() < deadline) {
          if (started.load() == 2) {
            saw_both.fetch_add(1);
            return;
          }
          ctx.checkpoint();
          std::this_thread::yield();
        }
      };
      ex.submit(std::move(job));
    }
    rep = ex.shutdown();
  }
  EXPECT_EQ(rep.completed, 2);
  EXPECT_EQ(rep.aborted, 0);
  EXPECT_EQ(rep.cpu_count, 1);
  // Only the job dispatched after the first one completed can observe
  // both increments: the bodies never overlapped.
  EXPECT_EQ(saw_both.load(), 1);
  EXPECT_EQ(rep.max_concurrency_observed, 1);
  EXPECT_EQ(rep.total_preemptions, 0);
}

/// Cross-substrate agreement across CPU counts: the simulator and the
/// M-worker executor run the same generated task set on the same
/// arrival traces at cpu_count 1, 2, and 4; in underload the AUR/CMR
/// must match within tolerance (the deterministic tier-1 version of the
/// bench sweep, mirroring multicpu_test's workload shape).
TEST(ExecutorMultiCpu, AgreesWithSimulatorAcrossCpuCounts) {
  workload::WorkloadSpec spec;
  spec.task_count = 6;
  spec.object_count = 3;
  spec.accesses_per_job = 2;
  spec.avg_exec = msec(2);
  spec.tuf_class = workload::TufClass::kStep;
  spec.load = 0.35;  // underloaded even on one CPU
  spec.seed = 31;
  const TaskSet ts = workload::make_task_set(spec);
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);

  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);
  const Time horizon = max_window * 2;
  constexpr std::uint64_t kArrivalSeed = 1000;
  // Real-thread noise (scheduling latency, sanitizer slowdown) is why
  // this is looser than the bench's full-run tolerance.
  constexpr double kTol = 0.3;

  for (const int cpus : {1, 2, 4}) {
    sim::SimConfig cfg;
    cfg.mode = sim::ShareMode::kLockFree;
    cfg.lockfree_access_time = usec(1);
    cfg.cpu_count = cpus;
    cfg.horizon = horizon;
    sim::Simulator sim(ts, rua, cfg);
    const auto traces = runtime::make_arrival_traces(ts, horizon, kArrivalSeed,
                                                     /*periodic=*/true);
    for (const auto& t : ts.tasks)
      sim.set_arrivals(t.id, traces[static_cast<std::size_t>(t.id)]);
    const sim::SimReport sim_rep = sim.run();

    runtime::ExecConfig ec;
    ec.horizon = horizon;  // objects default: uniform lock-free queues
    ec.cpu_count = cpus;
    ec.arrival_seed = kArrivalSeed;
    const rt::ExecutorReport exec_rep = runtime::run_on_executor(ts, rua, ec);

    EXPECT_EQ(sim_rep.counted_jobs, exec_rep.counted_jobs)
        << "cpus " << cpus << ": different job populations";
    EXPECT_EQ(exec_rep.cpu_count, cpus);
    EXPECT_LE(std::abs(sim_rep.aur() - exec_rep.aur()), kTol)
        << "cpus " << cpus << ": AUR sim " << sim_rep.aur() << " vs exec "
        << exec_rep.aur();
    EXPECT_LE(std::abs(sim_rep.cmr() - exec_rep.cmr()), kTol)
        << "cpus " << cpus << ": CMR sim " << sim_rep.cmr() << " vs exec "
        << exec_rep.cmr();
  }
}

}  // namespace
}  // namespace lfrt
