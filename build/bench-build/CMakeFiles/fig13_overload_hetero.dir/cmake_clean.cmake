file(REMOVE_RECURSE
  "../bench/fig13_overload_hetero"
  "../bench/fig13_overload_hetero.pdb"
  "CMakeFiles/fig13_overload_hetero.dir/fig13_overload_hetero.cpp.o"
  "CMakeFiles/fig13_overload_hetero.dir/fig13_overload_hetero.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_overload_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
