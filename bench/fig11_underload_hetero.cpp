// Figure 11: AUR/CMR during underload (AL ~= 0.4), heterogeneous TUFs
// (step + parabolic + linearly-decreasing).
#include "aur_cmr_sweep.hpp"

int main(int argc, char** argv) {
  lfrt::bench::init(argc, argv);
  return lfrt::bench::run_aur_cmr_sweep(
      "Figure 11", 0.4, lfrt::workload::TufClass::kHeterogeneous);
}
