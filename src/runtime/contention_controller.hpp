// Contention controller — the policy that turns live heatmaps into
// shard counts and scheduling hints.
//
// Epoch model: the controller samples the run's ContentionMatrix every
// `epoch` nanoseconds and diffs it against the previous sample, so all
// decisions are driven by *rates over the last epoch*, not run totals —
// an object that stormed at startup and went quiet demotes, no matter
// how large its cumulative retry count is.  Per epoch, per adaptive
// object:
//
//   promote  — epoch retry rate (Δretries / Δops) crossed promote_rate
//              on at least min_epoch_ops accesses → double the stripe
//              count (up to max_shards).
//   demote   — the object went *idle* (fewer than min_epoch_ops
//              accesses) for demote_patience consecutive epochs →
//              halve (down to the ObjectSpec's configured floor).
//              Patience is the hysteresis: one quiet epoch inside a
//              bursty phase must not collapse the stripes the next
//              burst needs.  A busy object whose rate fell to
//              demote_rate or below is *calm*, not idle — its low rate
//              is the sharding working, so demoting it would re-create
//              the storm and oscillate; calm epochs neither accumulate
//              demote progress nor reset it.
//
// The same diff yields a per-task *conflict vector*: each task's
// hottest object of the epoch (by Δretries, past steer_min_retries).
// Tasks sharing a hot object are the pairs whose co-scheduling
// re-creates the storm, so the dispatch selector spreads them across
// selections when slots allow (never leaving a CPU idle for it).
//
// This core is pure logic over ContentionMatrix snapshots — no threads,
// no clocks, no link dependencies — so the simulator steps it from
// epoch events for deterministic adaptive runs, and the executor wraps
// it in the ContentionController thread (contention_controller.cpp)
// which applies its decisions to a live SharedObjectSet.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/contention.hpp"
#include "runtime/object_spec.hpp"
#include "sched/placement.hpp"
#include "support/time.hpp"
#include "task/task.hpp"

namespace lfrt::rt {
class Executor;
}

namespace lfrt::runtime {

class SharedObjectSet;

/// Tuning knobs of the contention controller (defaults chosen by the
/// shard_adaptive bench; determinism only requires that both substrates
/// agree on them).
struct ControllerConfig {
  Time epoch = msec(2);            ///< sampling period
  double promote_rate = 0.05;      ///< epoch retries/op that triggers ×2
  double demote_rate = 0.005;      ///< epoch retries/op considered quiet
  std::int64_t min_epoch_ops = 64; ///< rate denominator floor (anti-noise)
  std::int32_t max_shards = kMaxObjectShards;
  std::int32_t demote_patience = 3;     ///< quiet epochs before halving
  std::int64_t steer_min_retries = 8;   ///< epoch Δretries to steer a task

  /// Enable placement epoch actions (task-to-cluster migrations) when
  /// the run has a non-global placement.  The substrate must call
  /// enable_placement on the core/wrapper with the placement topology.
  bool place = false;

  friend bool operator==(const ControllerConfig&,
                         const ControllerConfig&) = default;
};

/// One applied shard-count change, for reports and the bench timeline.
struct ShardDecision {
  Time time = 0;  ///< stamped by the caller (sim time / ns since start)
  std::int32_t object = 0;
  std::int32_t from_shards = 1;
  std::int32_t to_shards = 1;
  double rate = 0.0;  ///< the epoch retry rate that drove the change

  friend bool operator==(const ShardDecision&,
                         const ShardDecision&) = default;
};

/// One applied task-to-cluster migration (placement epoch action).
struct PlacementMove {
  /// Why the controller moved the task: home a single-writer object's
  /// accessors onto the writer's cluster, or spread a hot scoped-kind
  /// conflict group across clusters (separation = per-cluster instances
  /// = zero cross-cluster conflicts).
  enum class Why : std::uint8_t { kWriterHome, kSpreadHotGroup };

  Time time = 0;  ///< stamped by the caller (sim time / ns since start)
  TaskId task = -1;
  std::int32_t to_cluster = 0;
  std::int32_t object = 0;  ///< the hot object that drove the move
  Why why = Why::kWriterHome;

  friend bool operator==(const PlacementMove&,
                         const PlacementMove&) = default;
};

/// Pure epoch-stepped policy core.  Feed it matrix snapshots; it
/// returns what to change.  The caller is responsible for actually
/// applying the decisions (the core assumes they are applied).
class ContentionControllerCore {
 public:
  /// What one epoch concluded.  `decisions[i].time` is 0 — the caller
  /// stamps it with its own clock.  `conflict_groups[t]` is the hottest
  /// object of task t this epoch, or -1 when the task saw no storm
  /// (empty vector when no task did — steering off).
  struct Epoch {
    std::vector<ShardDecision> decisions;
    std::vector<std::int32_t> conflict_groups;
    std::vector<PlacementMove> placement_moves;
  };

  ContentionControllerCore(ControllerConfig cfg, std::vector<ObjectSpec> specs)
      : cfg_(cfg), specs_(std::move(specs)) {
    shards_.reserve(specs_.size());
    floor_.reserve(specs_.size());
    for (const ObjectSpec& s : specs_) {
      const bool shardable = s.impl == ObjectImpl::kLockFree &&
                             (s.kind == ObjectKind::kQueue ||
                              s.kind == ObjectKind::kStack);
      shards_.push_back(shardable ? clamp_shards(s.shards) : 1);
      floor_.push_back(shardable ? clamp_shards(s.shards) : 1);
      adaptive_.push_back(shardable && s.adapt);
    }
    idle_epochs_.assign(specs_.size(), 0);
  }

  /// Diff `live` against the previous sample and decide.  The first
  /// call (and any call after a dimension change) only baselines.
  Epoch step(const ContentionMatrix& live) {
    Epoch out;
    if (prev_.objects != live.objects || prev_.tasks != live.tasks) {
      prev_ = live;
      return out;
    }

    const std::int32_t n_obj = live.objects;
    const std::int32_t n_task = live.tasks;

    for (std::int32_t o = 0; o < n_obj && o < object_count(); ++o) {
      if (!adaptive_[static_cast<std::size_t>(o)]) continue;
      std::int64_t d_ops = 0;
      std::int64_t d_retries = 0;
      for (std::int32_t t = 0; t < n_task; ++t) {
        d_ops += live.at(o, t).ops - prev_.at(o, t).ops;
        d_retries += live.at(o, t).retries - prev_.at(o, t).retries;
      }
      const bool measurable = d_ops >= cfg_.min_epoch_ops;
      const double rate = measurable && d_ops > 0
                              ? static_cast<double>(d_retries) /
                                    static_cast<double>(d_ops)
                              : 0.0;
      std::int32_t& cur = shards_[static_cast<std::size_t>(o)];
      std::int32_t& idle = idle_epochs_[static_cast<std::size_t>(o)];
      const std::int32_t cap =
          cfg_.max_shards < kMaxObjectShards ? cfg_.max_shards
                                             : kMaxObjectShards;

      if (measurable && rate >= cfg_.promote_rate && cur < cap) {
        const std::int32_t to = clamp_shards(
            cur * 2 < cap ? cur * 2 : cap);
        out.decisions.push_back({0, o, cur, to, rate});
        cur = to;
        idle = 0;
      } else if (!measurable) {
        // Idle epoch: demote only after demote_patience of them.
        if (++idle >= cfg_.demote_patience &&
            cur > floor_[static_cast<std::size_t>(o)]) {
          const std::int32_t to =
              cur / 2 > floor_[static_cast<std::size_t>(o)]
                  ? cur / 2
                  : floor_[static_cast<std::size_t>(o)];
          out.decisions.push_back({0, o, cur, to, rate});
          cur = to;
          idle = 0;
        }
      } else if (rate > cfg_.demote_rate) {
        idle = 0;  // genuinely contended, below the promote threshold
      }
      // measurable && rate <= demote_rate: calm — the stripes are doing
      // their job; hold both the shard count and the demote progress.
    }

    // Conflict vector: each task's hottest object of the epoch.
    bool any = false;
    std::vector<std::int32_t> groups(static_cast<std::size_t>(n_task), -1);
    for (std::int32_t t = 0; t < n_task; ++t) {
      std::int64_t best = cfg_.steer_min_retries;
      for (std::int32_t o = 0; o < n_obj; ++o) {
        const std::int64_t d =
            live.at(o, t).retries - prev_.at(o, t).retries;
        if (d >= best) {
          best = d;
          groups[static_cast<std::size_t>(t)] = o;
          any = true;
        }
      }
    }
    if (any) out.conflict_groups = std::move(groups);

    // Placement epoch actions: for each object hot this epoch (by
    // Δretries + Δblockings past steer_min_retries), either spread its
    // accessors round-robin across clusters (scoped kinds — separation
    // gives each cluster its own instance, so the conflicts vanish) or
    // home them onto the single writer's cluster (buffer/snapshot —
    // readers co-located with the writer stop paying true-concurrency
    // spin).  Deterministic: objects in id order, accessors in the
    // caller-given (sorted) order, first move of a task per epoch wins.
    if (placement_enabled_) {
      moved_this_epoch_.assign(place_cluster_.size(), false);
      for (std::int32_t o = 0; o < n_obj && o < object_count(); ++o) {
        const auto oi = static_cast<std::size_t>(o);
        if (oi >= accessors_of_.size()) break;
        std::int64_t d_hot = 0;
        for (std::int32_t t = 0; t < n_task; ++t)
          d_hot += (live.at(o, t).retries - prev_.at(o, t).retries) +
                   (live.at(o, t).blockings - prev_.at(o, t).blockings);
        if (d_hot < cfg_.steer_min_retries) continue;
        const ObjectKind kind = specs_[oi].kind;
        const bool scoped =
            kind == ObjectKind::kQueue || kind == ObjectKind::kStack;
        const TaskId writer = oi < writer_of_.size() ? writer_of_[oi] : -1;
        if (scoped) {
          std::size_t idx = 0;
          for (TaskId t : accessors_of_[oi]) {
            const std::int32_t target = static_cast<std::int32_t>(
                (static_cast<std::size_t>(o) + idx++) %
                static_cast<std::size_t>(cluster_count_));
            move_task(t, target, o, PlacementMove::Why::kSpreadHotGroup,
                      &out.placement_moves);
          }
        } else if (writer >= 0) {
          std::int32_t home = cluster_of(writer);
          if (home < 0)
            home = static_cast<std::int32_t>(
                static_cast<std::size_t>(o) %
                static_cast<std::size_t>(cluster_count_));
          move_task(writer, home, o, PlacementMove::Why::kWriterHome,
                    &out.placement_moves);
          for (TaskId t : accessors_of_[oi])
            move_task(t, home, o, PlacementMove::Why::kWriterHome,
                      &out.placement_moves);
        }
      }
    }

    prev_ = live;
    return out;
  }

  /// Turn on placement epoch actions.  `task_cluster` is the live
  /// task -> cluster map (the core tracks it across its own moves),
  /// `accessors_of[o]` lists the tasks whose jobs access object o (in a
  /// deterministic, preferably sorted order), `writer_of[o]` is the
  /// single task that writes o (-1 when zero or several do).
  void enable_placement(std::vector<std::int32_t> task_cluster,
                        std::int32_t cluster_count,
                        std::vector<std::vector<TaskId>> accessors_of,
                        std::vector<TaskId> writer_of) {
    place_cluster_ = std::move(task_cluster);
    cluster_count_ = cluster_count;
    accessors_of_ = std::move(accessors_of);
    writer_of_ = std::move(writer_of);
    placement_enabled_ = cluster_count_ > 1;
  }
  bool placement_enabled() const { return placement_enabled_; }

  /// The core's live view of each task's cluster (-1 unplaced).
  std::int32_t cluster_of(TaskId t) const {
    if (t < 0 || static_cast<std::size_t>(t) >= place_cluster_.size())
      return -1;
    return place_cluster_[static_cast<std::size_t>(t)];
  }

  std::int32_t object_count() const {
    return static_cast<std::int32_t>(shards_.size());
  }
  std::int32_t shards(std::int32_t o) const {
    return shards_[static_cast<std::size_t>(o)];
  }
  bool adaptive(std::int32_t o) const {
    return adaptive_[static_cast<std::size_t>(o)];
  }
  /// True when at least one object opted into adaptation — callers skip
  /// the whole epoch machinery otherwise.
  bool any_adaptive() const {
    for (bool a : adaptive_)
      if (a) return true;
    return false;
  }

  const ControllerConfig& config() const { return cfg_; }

 private:
  /// Record + apply one migration unless the task already sits on the
  /// target cluster or was already moved this epoch.
  void move_task(TaskId t, std::int32_t target, std::int32_t object,
                 PlacementMove::Why why, std::vector<PlacementMove>* out) {
    if (t < 0 || static_cast<std::size_t>(t) >= place_cluster_.size()) return;
    const auto ti = static_cast<std::size_t>(t);
    if (moved_this_epoch_[ti]) return;
    if (place_cluster_[ti] == target) return;
    moved_this_epoch_[ti] = true;
    place_cluster_[ti] = target;
    out->push_back({0, t, target, object, why});
  }

  ControllerConfig cfg_;
  std::vector<ObjectSpec> specs_;
  std::vector<std::int32_t> shards_;       ///< current applied stripe count
  std::vector<std::int32_t> floor_;        ///< demotion floor (spec.shards)
  std::vector<bool> adaptive_;
  std::vector<std::int32_t> idle_epochs_;  ///< consecutive quiet epochs
  ContentionMatrix prev_;
  // Placement epoch-action state (enable_placement).
  bool placement_enabled_ = false;
  std::int32_t cluster_count_ = 1;
  std::vector<std::int32_t> place_cluster_;  ///< task -> cluster (-1 none)
  std::vector<std::vector<TaskId>> accessors_of_;
  std::vector<TaskId> writer_of_;
  std::vector<bool> moved_this_epoch_;
};

/// The executor-side wrapper: a thread that steps the core every epoch
/// against a live SharedObjectSet, applies shard promotions/demotions
/// to it, and feeds the conflict vector into the executor's dispatch
/// steering.  Start it after the objects exist, stop it before tearing
/// them down (run_on_executor does both when any ObjectSpec has adapt
/// set).  Decision times are wall ns since start().
class ContentionController {
 public:
  /// `objects` and `executor` must outlive the controller; `executor`
  /// may be null (shard adaptation only, no dispatch steering).
  ContentionController(ControllerConfig cfg, SharedObjectSet* objects,
                       rt::Executor* executor);
  ~ContentionController();  ///< stops the thread if still running

  ContentionController(const ContentionController&) = delete;
  ContentionController& operator=(const ContentionController&) = delete;

  void start();
  void stop();  ///< idempotent; joins the epoch thread

  /// Turn on placement epoch actions (call before start()): the core
  /// decides task migrations (writer-home / spread-hot-group) and the
  /// epoch thread applies them live — re-routing scoped-object
  /// instances via SharedObjectSet::set_task_instance and re-pinning
  /// dispatch via Executor::set_placement.
  void enable_placement(sched::Placement placement,
                        std::int32_t cluster_count,
                        std::vector<std::vector<TaskId>> accessors_of,
                        std::vector<TaskId> writer_of);

  /// Shard-count changes applied so far (snapshot; thread-safe).
  std::vector<ShardDecision> decisions() const;
  /// Placement migrations applied so far (snapshot; thread-safe).
  std::vector<PlacementMove> placement_moves() const;
  std::int64_t epochs() const;  ///< epochs stepped so far

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace lfrt::runtime
