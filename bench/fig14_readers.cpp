// Figure 14: AUR/CMR under an increasing number of reader tasks
// (heterogeneous TUFs, AL swept 0.1 -> 1.1 as readers are added).
//
// Instead of growing the object universe (Figures 10-13), this sweep
// grows the task population: each added reader contributes ~0.1 of
// approximate load and touches three of the ten shared queues.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bench::print_header("Figure 14", "AUR/CMR vs number of reader tasks");
  std::cout << "objects=10  accesses/job=3  r=" << to_usec(bench::kDefaultR)
            << "us  s=" << to_usec(bench::kDefaultS) << "us  seed=42\n\n";

  Table table({"readers", "AL", "AUR lock-based", "AUR lock-free",
               "CMR lock-based", "CMR lock-free"});

  std::vector<bench::SeriesSpec> series;
  for (int readers = 1; readers <= 11; ++readers) {
    const double load = 0.1 * readers;
    workload::WorkloadSpec spec;
    spec.task_count = readers;
    spec.object_count = 10;
    spec.accesses_per_job = 3;
    spec.avg_exec = usec(500);
    spec.load = load;
    spec.tuf_class = workload::TufClass::kHeterogeneous;
    // Reader tasks mostly read the shared queues; under lock-free
    // sharing reads never invalidate concurrent attempts, while mutual
    // exclusion serializes reads and writes alike.
    spec.read_fraction = 0.75;
    spec.seed = 42;
    const TaskSet ts = workload::make_task_set(spec);

    bench::RunParams rp;
    rp.mode = sim::ShareMode::kLockBased;
    series.push_back({ts, rp});
    rp.mode = sim::ShareMode::kLockFree;
    series.push_back({ts, rp});
  }
  const auto points = bench::run_series_batch(bench::pool(), series);

  for (int readers = 1; readers <= 11; ++readers) {
    const double load = 0.1 * readers;
    const auto& lb = points[static_cast<std::size_t>(readers - 1) * 2];
    const auto& lf = points[static_cast<std::size_t>(readers - 1) * 2 + 1];

    table.add_row(
        {std::to_string(readers), Table::num(load, 1),
         Table::num(lb.aur_mean, 3) + " ±" + Table::num(lb.aur_ci, 3),
         Table::num(lf.aur_mean, 3) + " ±" + Table::num(lf.aur_ci, 3),
         Table::num(lb.cmr_mean, 3) + " ±" + Table::num(lb.cmr_ci, 3),
         Table::num(lf.cmr_mean, 3) + " ±" + Table::num(lf.cmr_ci, 3)});
  }
  table.print();
  std::cout << "\ncsv:\n";
  table.print_csv();
  return 0;
}
