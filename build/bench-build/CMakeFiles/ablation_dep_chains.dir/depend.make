# Empty dependencies file for ablation_dep_chains.
# This may be replaced when dependencies are built.
