// ASCII Gantt rendering of simulator execution slices.
//
// Turns SimReport::slices (record_slices = true) into a per-task
// timeline, which makes preemption patterns — e.g. the mutual
// preemption of Figure 6 or a priority-inversion pile-up — visible at a
// glance in examples and failure reports.
#pragma once

#include <string>

#include "sim/simulator.hpp"

namespace lfrt::sim {

struct GanttOptions {
  int width = 100;        ///< characters across the rendered window
  Time begin = 0;         ///< window start
  Time end = 0;           ///< window end; 0 = last slice end
  bool show_cpus = false; ///< one row per (task, cpu) instead of task
};

/// Render the slices as rows of '#' (running) over '.' (not running),
/// one row per task (or per task+cpu), with a time axis header.
std::string render_gantt(const TaskSet& tasks, const SimReport& report,
                         const GanttOptions& options = {});

}  // namespace lfrt::sim
