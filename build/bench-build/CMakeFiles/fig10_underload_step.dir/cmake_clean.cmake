file(REMOVE_RECURSE
  "../bench/fig10_underload_step"
  "../bench/fig10_underload_step.pdb"
  "CMakeFiles/fig10_underload_step.dir/fig10_underload_step.cpp.o"
  "CMakeFiles/fig10_underload_step.dir/fig10_underload_step.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_underload_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
