// Value-slot access for the node-based structures' optimistic-copy
// protocol.
//
// MsQueue::dequeue and TreiberStack::pop copy a node's value slot
// *before* the CAS that claims the node: after a successful CAS the
// node may be recycled at any moment, so the copy must happen first
// (Michael & Scott [21], and the comment at each site).  When the CAS
// then fails — the node was recycled mid-read and a concurrent
// enqueue/push was writing a new value into it — the copy is discarded
// and the operation retries; the TaggedRef tag is what detects the
// recycling (the ABA defence tests/lockfree_test.cpp hammers).
//
// That overlap makes the plain-data accesses a formal data race even
// though the stale copy is never used.  For trivially copyable values
// that fit a machine word (every payload the experiments use) the
// helpers below perform the slot access as a *relaxed atomic* via
// std::atomic_ref — the protocol becomes well-defined C++ and
// ThreadSanitizer-clean with zero overhead on x86/ARM.  For larger or
// non-trivially-copyable payloads the copy stays plain and is
// un-instrumented via LFRT_NO_TSAN, the validate-after-read contract
// standing in for what the type system cannot express.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#if defined(__SANITIZE_THREAD__)
#define LFRT_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LFRT_TSAN_ACTIVE 1
#endif
#endif

// noinline matters: if the fallback helper is inlined into an
// instrumented caller, GCC instruments the inlined body and the
// suppression is lost.
#ifdef LFRT_TSAN_ACTIVE
#define LFRT_NO_TSAN __attribute__((no_sanitize("thread"), noinline))
#else
#define LFRT_NO_TSAN
#endif

namespace lfrt::lockfree::detail {

/// Word-sized trivially copyable payloads take the atomic path.
template <typename T>
inline constexpr bool kAtomicValueSlot =
    std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(std::uint64_t) &&
    alignof(T) <= alignof(std::uint64_t);

/// Publish a value into a (possibly observed-by-stale-readers) slot.
template <typename T>
LFRT_NO_TSAN void store_value_slot(T& slot, const T& v) {
  if constexpr (kAtomicValueSlot<T>) {
    std::atomic_ref<T>(slot).store(v, std::memory_order_relaxed);
  } else {
    slot = v;
  }
}

/// Optimistic copy of a possibly-recycled node's value; the caller's
/// tag-checked CAS discards stale copies.
template <typename T>
LFRT_NO_TSAN T load_value_slot(T& slot) {
  if constexpr (kAtomicValueSlot<T>) {
    return std::atomic_ref<T>(slot).load(std::memory_order_relaxed);
  } else {
    return slot;
  }
}

}  // namespace lfrt::lockfree::detail
