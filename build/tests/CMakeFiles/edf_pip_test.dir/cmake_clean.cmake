file(REMOVE_RECURSE
  "CMakeFiles/edf_pip_test.dir/edf_pip_test.cpp.o"
  "CMakeFiles/edf_pip_test.dir/edf_pip_test.cpp.o.d"
  "edf_pip_test"
  "edf_pip_test.pdb"
  "edf_pip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edf_pip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
