// Theorem 3 validation: sweep the access-time ratio s/r and compare
// measured mean sojourn times under lock-free vs lock-based RUA against
// the predicted preference threshold (s/r < 2/3 sufficient when
// m_i <= n_i).
//
// The theorem bounds *worst-case* sojourns, so the empirical crossover
// (where lock-free stops being faster on average) must lie at an s/r no
// smaller than the analytic sufficient threshold.
#include "analysis/bounds.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bench::print_header("Theorem 3", "sojourn crossover vs s/r threshold");

  workload::WorkloadSpec spec;
  spec.task_count = 6;
  spec.object_count = 3;
  spec.accesses_per_job = 2;
  spec.avg_exec = usec(300);
  spec.load = 0.9;
  spec.seed = 21;
  const TaskSet ts = workload::make_task_set(spec);

  double min_threshold = 1.0;
  for (const auto& t : ts.tasks)
    min_threshold =
        std::min(min_threshold, analysis::lockfree_ratio_threshold(ts, t.id));
  std::cout << "analytic sufficient threshold (min over tasks): "
            << Table::num(min_threshold, 3) << "\n\n";

  const Time r = usec(40);
  Table table({"s/r", "mean sojourn LF (us)", "mean sojourn LB (us)",
               "LF faster", "predicted sufficient"});

  double crossover = -1.0;
  for (const double ratio : {0.1, 0.25, 0.5, 0.66, 0.8, 1.0, 1.5, 2.0}) {
    const Time s = static_cast<Time>(static_cast<double>(r) * ratio);
    bench::RunParams rp;
    rp.r = r;
    rp.s = s;
    rp.repeats = 5;

    auto mean_sojourn = [&](sim::ShareMode mode) {
      rp.mode = mode;
      // Repeats fan out over the bench pool; the sojourn statistics are
      // reduced in repeat order, so the mean is thread-count-invariant.
      const auto reports = exp::parallel_map(
          bench::pool(), rp.repeats, [&](std::int64_t rep) {
            sim::SimConfig cfg;
            cfg.mode = mode;
            cfg.lock_access_time = r;
            cfg.lockfree_access_time = s;
            cfg.sched_ns_per_op = rp.ns_per_op;
            Time max_window = 0;
            for (const auto& t : ts.tasks)
              max_window = std::max(max_window, t.arrival.window);
            cfg.horizon = max_window * 150;
            sim::Simulator sim(ts, bench::scheduler_for(mode), cfg);
            sim.seed_arrivals(500 + static_cast<std::uint64_t>(rep));
            return sim.run();
          });
      RunningStats st;
      for (const auto& rep_out : reports)
        for (const Job& j : rep_out.jobs)
          if (j.state == JobState::kCompleted)
            st.add(to_usec(j.sojourn()));
      return st.mean();
    };

    const double lf = mean_sojourn(sim::ShareMode::kLockFree);
    const double lb = mean_sojourn(sim::ShareMode::kLockBased);
    const bool lf_faster = lf < lb;
    if (!lf_faster && crossover < 0) crossover = ratio;
    table.add_row({Table::num(ratio, 2), Table::num(lf, 1),
                   Table::num(lb, 1), lf_faster ? "yes" : "no",
                   ratio < min_threshold ? "yes" : "-"});
  }
  table.print();
  std::cout << "\nempirical crossover s/r: "
            << (crossover < 0 ? std::string("none (lock-free always faster)")
                              : Table::num(crossover, 2))
            << "  (must be >= analytic sufficient threshold "
            << Table::num(min_threshold, 3) << ")\n";
  return 0;
}
