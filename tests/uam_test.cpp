// Unit and property tests for the UAM arrival model.
#include "uam/uam.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace lfrt {
namespace {

TEST(UamSpec, ValidationRejectsBadTuples) {
  EXPECT_THROW((UamSpec{1, 1, 0}).validate(), InvariantViolation);
  EXPECT_THROW((UamSpec{1, 0, usec(10)}).validate(), InvariantViolation);
  EXPECT_THROW((UamSpec{-1, 2, usec(10)}).validate(), InvariantViolation);
  EXPECT_THROW((UamSpec{3, 2, usec(10)}).validate(), InvariantViolation);
  EXPECT_NO_THROW((UamSpec{0, 2, usec(10)}).validate());
  EXPECT_NO_THROW(UamSpec::periodic(usec(10)).validate());
}

TEST(UamMath, MaxArrivalsMatchesPaperFormula) {
  // a * (ceil(interval / W) + 1)
  const UamSpec spec{1, 3, usec(100)};
  EXPECT_EQ(uam_max_arrivals(spec, usec(100)), 3 * (1 + 1));
  EXPECT_EQ(uam_max_arrivals(spec, usec(250)), 3 * (3 + 1));
  EXPECT_EQ(uam_max_arrivals(spec, usec(300)), 3 * (3 + 1));
  EXPECT_EQ(uam_max_arrivals(spec, usec(301)), 3 * (4 + 1));
}

TEST(UamMath, MaxArrivalsShortIntervalIsTwoWindows) {
  // When W > interval, ceil(interval/W) + 1 == 2 (the straddle case the
  // Theorem 2 proof calls out explicitly).
  const UamSpec spec{1, 5, msec(10)};
  EXPECT_EQ(uam_max_arrivals(spec, usec(1)), 10);
  EXPECT_EQ(uam_max_arrivals(spec, msec(10)), 10);
}

TEST(UamMath, MinArrivalsFloors) {
  const UamSpec spec{2, 4, usec(100)};
  EXPECT_EQ(uam_min_arrivals(spec, usec(99)), 0);
  EXPECT_EQ(uam_min_arrivals(spec, usec(100)), 2);
  EXPECT_EQ(uam_min_arrivals(spec, usec(350)), 6);
}

TEST(UamConformance, DetectsWindowViolation) {
  const UamSpec spec{1, 2, usec(100)};
  EXPECT_TRUE(uam_conforms_max(spec, {0, usec(50), usec(100)}));
  // Three arrivals inside [50, 150): violation.
  EXPECT_FALSE(uam_conforms_max(spec, {0, usec(50), usec(60), usec(100)}));
}

TEST(UamConformance, SimultaneousArrivalsAllowedUpToA) {
  const UamSpec spec{1, 3, usec(100)};
  EXPECT_TRUE(uam_conforms_max(spec, {0, 0, 0}));
  EXPECT_FALSE(uam_conforms_max(spec, {0, 0, 0, 0}));
}

TEST(UamConformance, HalfOpenWindowBoundary) {
  // Arrivals exactly W apart never share a window.
  const UamSpec spec{1, 1, usec(100)};
  EXPECT_TRUE(uam_conforms_max(spec, {0, usec(100), usec(200)}));
  EXPECT_FALSE(uam_conforms_max(spec, {0, usec(100) - 1}));
}

TEST(UamConformance, EmptyTraceConforms) {
  EXPECT_TRUE(uam_conforms_max(UamSpec{1, 1, usec(10)}, {}));
}

TEST(UamConformance, MinSideDetectsStarvedWindow) {
  const UamSpec spec{1, 4, usec(100)};
  // A gap of more than W with no arrivals violates l = 1.
  EXPECT_FALSE(
      uam_conforms_min(spec, {0, usec(250)}, 0, usec(300)));
  EXPECT_TRUE(
      uam_conforms_min(spec, {0, usec(90), usec(180), usec(270)}, 0,
                       usec(300)));
}

TEST(UamConformance, MinSideShortSpanIsVacuouslyTrue) {
  const UamSpec spec{1, 1, usec(100)};
  EXPECT_TRUE(uam_conforms_min(spec, {}, 0, usec(99)));
}

TEST(UamWindowCount, ReportsEmpiricalMaximum) {
  EXPECT_EQ(uam_max_window_count(usec(100), {}), 0);
  EXPECT_EQ(uam_max_window_count(usec(100), {0}), 1);
  EXPECT_EQ(uam_max_window_count(usec(100),
                                 {0, usec(10), usec(99), usec(100)}),
            3);
}

TEST(UamMinWindowCount, EmpiricalMinimum) {
  EXPECT_EQ(uam_min_window_count(usec(100), {}, 0, usec(50)), 0);
  EXPECT_EQ(uam_min_window_count(usec(100), {0, usec(90), usec(180)}, 0,
                                 usec(200)),
            1);
  // A starved window drives the minimum to zero.
  EXPECT_EQ(uam_min_window_count(usec(100), {0, usec(250)}, 0, usec(300)),
            0);
}

TEST(UamFit, RecoversGeneratorContracts) {
  const UamSpec truth{1, 3, usec(100)};
  const auto trace = arrivals::bursty(truth, msec(5));
  const UamSpec fitted = uam_fit(usec(100), trace, 0, msec(5));
  EXPECT_EQ(fitted.max_per_window, 3);
  EXPECT_TRUE(uam_conforms_max(fitted, trace));
  // The fit is tight: one less on the a-side must fail.
  UamSpec tighter = fitted;
  tighter.max_per_window -= 1;
  tighter.min_per_window = std::min(tighter.min_per_window,
                                    tighter.max_per_window);
  EXPECT_FALSE(uam_conforms_max(tighter, trace));
}

TEST(UamFit, PeriodicTraceFitsAsPeriodic) {
  const auto trace = arrivals::periodic(UamSpec::periodic(usec(100)),
                                        msec(2));
  const UamSpec fitted = uam_fit(usec(100), trace, 0, msec(2));
  EXPECT_EQ(fitted.max_per_window, 1);
  EXPECT_EQ(fitted.min_per_window, 1);
}

TEST(UamFit, EmptyTraceYieldsDegenerateContract) {
  const UamSpec fitted = uam_fit(usec(100), {}, 0, msec(1));
  EXPECT_EQ(fitted.max_per_window, 1);  // vacuous upper bound, valid spec
  EXPECT_EQ(fitted.min_per_window, 0);
}

TEST(ArrivalGen, PeriodicIsOnePerWindow) {
  const UamSpec spec = UamSpec::periodic(usec(100));
  const auto trace = arrivals::periodic(spec, usec(1000));
  EXPECT_EQ(trace.size(), 11u);
  EXPECT_TRUE(uam_conforms_max(spec, trace));
  EXPECT_TRUE(uam_conforms_min(spec, trace, 0, usec(1000)));
}

TEST(ArrivalGen, BurstyHitsTheCap) {
  const UamSpec spec{1, 4, usec(100)};
  const auto trace = arrivals::bursty(spec, usec(500));
  EXPECT_TRUE(uam_conforms_max(spec, trace));
  EXPECT_EQ(uam_max_window_count(spec.window, trace), 4);
}

TEST(ArrivalGen, AdversarialAchievesStraddleBound) {
  // Clusters exactly W apart: an interval of length k*W anchored at a
  // cluster sees (k+1) clusters = a*(ceil(kW/W)+1) arrivals... minus the
  // straddle slack; verify the count equals a*(C/W + 1) for aligned C.
  const UamSpec spec{1, 2, usec(100)};
  const auto trace = arrivals::adversarial(spec, 0, usec(1000));
  EXPECT_TRUE(uam_conforms_max(spec, trace));
  // Closed interval [0, 300] contains clusters at 0, 100, 200, 300.
  std::int64_t in_interval = 0;
  for (Time t : trace)
    if (t >= 0 && t <= usec(300)) ++in_interval;
  EXPECT_EQ(in_interval, 2 * 4);
  EXPECT_LE(in_interval, uam_max_arrivals(spec, usec(300)));
}

TEST(UamGate, AdmitsUpToAPerSlidingWindow) {
  UamGate gate(UamSpec{1, 2, usec(100)});
  EXPECT_TRUE(gate.offer(0));
  EXPECT_TRUE(gate.offer(usec(10)));
  EXPECT_FALSE(gate.offer(usec(20)));   // third within [0, 100)
  EXPECT_FALSE(gate.offer(usec(99)));   // still within
  EXPECT_TRUE(gate.offer(usec(100)));   // arrival at 0 has left (t-W=0)
  EXPECT_EQ(gate.admitted(), 3);
  EXPECT_EQ(gate.rejected(), 2);
}

TEST(UamGate, RejectsOutOfOrderOffers) {
  UamGate gate(UamSpec{1, 1, usec(100)});
  EXPECT_TRUE(gate.offer(usec(50)));
  EXPECT_THROW(gate.offer(usec(40)), InvariantViolation);
}

/// Property sweep: the random generator always produces max-conformant
/// traces that respect the empirical window bound, across UAM shapes.
class RandomConformantTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {
};

TEST_P(RandomConformantTest, AlwaysConformant) {
  const auto [l, a, seed] = GetParam();
  if (l > a) GTEST_SKIP() << "UAM requires l <= a";
  const UamSpec spec{l, a, usec(100)};
  Rng rng(seed);
  const auto trace =
      arrivals::random_conformant(spec, msec(10), rng);
  ASSERT_TRUE(std::is_sorted(trace.begin(), trace.end()));
  EXPECT_TRUE(uam_conforms_max(spec, trace));
  EXPECT_LE(uam_max_window_count(spec.window, trace), a);
  // The trace must not be degenerate: at least one arrival per l>0.
  if (l > 0) {
    EXPECT_GE(trace.size(), 50u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomConformantTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 5),
                       ::testing::Values(1u, 7u, 42u, 1234u)));

/// Property: uam_max_arrivals is an upper bound for every generator.
class MaxArrivalBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxArrivalBoundTest, GeneratorsNeverExceedIntervalBound) {
  const int a = GetParam();
  const UamSpec spec{1, a, usec(100)};
  Rng rng(99);
  for (const auto& trace :
       {arrivals::periodic(spec, msec(5)), arrivals::bursty(spec, msec(5)),
        arrivals::adversarial(spec, usec(37), msec(5)),
        arrivals::random_conformant(spec, msec(5), rng)}) {
    for (const Time c : {usec(50), usec(100), usec(333)}) {
      const std::int64_t bound = uam_max_arrivals(spec, c);
      for (Time anchor : trace) {
        std::int64_t count = 0;
        for (Time t : trace)
          if (t >= anchor && t <= anchor + c) ++count;
        EXPECT_LE(count, bound) << "a=" << a << " C=" << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaxArrivalBoundTest,
                         ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace lfrt
