// Middleware-level utility-accrual executor on real POSIX threads.
//
// The paper's implementation study ran RUA inside the *meta-scheduler*
// framework of Li et al. [18]: application-level real-time scheduling
// layered on a POSIX RTOS.  This is that substrate: an Executor owns a
// scheduling thread that runs a sched::Scheduler (RUA, EDF, ...) at
// every scheduling event, and job bodies — ordinary C++ callables —
// execute on worker threads that yield control at *checkpoints*
// (cooperative preemption, exactly the application-level discipline a
// middleware scheduler imposes).  Critical-time expiry raises an
// abort-exception: the body's next checkpoint throws JobAborted, the
// job's abort handler runs, and the job accrues zero utility
// (Section 3.5's abort model, for real).
//
// Abort delivery is checkpoint-only: expiry merely *marks* the job,
// and the mark takes effect at the body's next checkpoint.  A body
// that returns before reaching another checkpoint therefore completes
// normally — late, accruing whatever its TUF yields at that sojourn
// (zero past the critical time) — exactly like a checkpoint-free
// body, which can never be aborted at all.  Abort handlers only ever
// run for bodies that were actually interrupted mid-flight.
//
// Bodies may share objects through the lock-free or lock-based
// structures in src/lockfree and src/lockbased; retry/contention
// statistics come from those structures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lockfree/spsc_ring.hpp"
#include "runtime/run_report.hpp"
#include "sched/placement.hpp"
#include "support/time.hpp"
#include "task/task.hpp"

namespace lfrt::sched {
class Scheduler;
}

namespace lfrt::rt {

/// Thrown out of JobContext::checkpoint when the job has been aborted;
/// the executor catches it after the abort handler has run.
class JobAborted {};

/// Handle a running body uses to cooperate with the scheduler.
class JobContext {
 public:
  /// Preemption/abort point.  Blocks while the job is preempted;
  /// throws JobAborted once the job's critical time has expired.
  /// Bodies should call this between work quanta.
  virtual void checkpoint() = 0;

  /// True once an abort has been requested (checkpoint would throw).
  virtual bool aborted() const = 0;

  virtual JobId id() const = 0;

 protected:
  ~JobContext() = default;
};

/// What to run for one job.
struct RtJob {
  /// Originating task, when the job was lowered from a TaskSet
  /// (runtime::run_on_executor); -1 for free-standing jobs.  Flows into
  /// the report's per-job records and per-task breakdowns.
  TaskId task = -1;

  /// Time constraint; utility accrues at U(sojourn) on completion.
  std::shared_ptr<const Tuf> tuf;

  /// Execution-time estimate handed to the scheduler (the paper's
  /// model: execution times presented to the scheduler are estimates).
  Time expected_exec = 0;

  /// The body.  Must call ctx.checkpoint() between work quanta.
  std::function<void(JobContext&)> body;

  /// Optional compensation run after an abort (Section 3.5's handler).
  std::function<void()> abort_handler;
};

/// Executor construction parameters.
struct ExecutorConfig {
  /// Number of CPU slots the dispatcher fills: up to cpu_count job
  /// bodies execute *concurrently*, chosen by the same top-M
  /// target-selection rule the simulator's cpu_count > 1 path applies
  /// (sched::DispatchSelector over one global schedule).  1 reproduces
  /// the paper's uniprocessor model — lock-free retries then come only
  /// from cooperative preemption; with M > 1 they also come from true
  /// parallelism (the paper's "multiprocessor systems" future-work
  /// direction).
  int cpu_count = 1;

  /// Extra worker threads started beyond cpu_count.  The pool is sized
  /// cpu_count + worker_reserve at construction and grows on demand
  /// only when every pooled worker is pinned by a preempted-mid-body
  /// job (cooperative preemption parks a body on its thread, so a
  /// worker cannot be recycled until its job reaches a terminal
  /// state).  It never shrinks during a run.
  int worker_reserve = 2;

  /// Keep per-job terminal records for ExecutorReport::jobs.  Default
  /// on (the cross-validation benches read them).  A streaming service
  /// pushing millions of jobs turns this off: aggregate tallies,
  /// percentile histograms, and the heatmap still populate, but the
  /// O(jobs) record vector does not.
  bool retain_job_records = true;

  /// Max entries the scheduling thread moves from one ingest lane per
  /// drain burst (scratch-buffer size; the lane is re-polled until
  /// empty regardless).
  std::size_t ingest_batch = 256;

  /// Backpressure cap on jobs admitted-but-not-yet-terminal.  When a
  /// lane-ingested job would push the live count past this, it is
  /// rejected (counted in RunReport::rejected) before any admission
  /// filter runs.  0 = unlimited.  Direct submit()/submit_batch() are
  /// exempt: they keep the pre-service contract of accepting every
  /// well-formed job until shutdown.
  std::size_t max_live_jobs = 0;

  /// Dispatch mode flags, shared verbatim with SimConfig::dispatch so
  /// the two substrates configure the selector identically: placement
  /// policy (global / partitioned / clustered CPU-slot affinity) and
  /// strict conflict-group steering.  The default (global, non-strict)
  /// is today's dispatch, bit for bit.
  sched::DispatchOptions dispatch;
};

/// Admission verdict for one lane-ingested job (see
/// Executor::set_admission).
enum class Admission : std::uint8_t {
  kAdmit,    ///< submit as-is
  kDegrade,  ///< submit, but the filter rewrote the job (cheaper TUF)
  kReject,   ///< shed: never runs, accrues zero, counted in `rejected`
};

/// Policy hook deciding each lane-ingested job's fate.  Runs on the
/// scheduling thread under the executor mutex: it must be fast and must
/// not call back into the executor.  It may mutate the job (e.g. swap
/// in a degraded TUF) when returning kDegrade.
using AdmissionFilter = std::function<Admission(RtJob&)>;

class IngestLane;

/// Aggregate outcome of an Executor run.  The shared job-lifecycle
/// accounting (AUR/CMR, per-job terminal records with real-clock
/// sojourns, retry/blocking tallies plumbed from the shared structures
/// via runtime::ScopedAccessSink, per-task breakdowns) lives in
/// runtime::RunReport — the same shape sim::SimReport extends, so the
/// two substrates cross-validate (bench/ext_executor_validation).
/// counted_jobs == submitted + rejected: shutdown() drains every
/// accepted job to a terminal state, and every lane-ingested job that
/// admission shed is accounted as rejected (submissions refused during
/// shutdown are not counted).
struct ExecutorReport : runtime::RunReport {
  std::int64_t submitted = 0;

  /// CPU slots the dispatcher filled (ExecutorConfig::cpu_count).
  int cpu_count = 1;

  /// High-water mark of admitted-but-not-yet-terminal jobs.  With
  /// incremental record reclamation this — not `submitted` — bounds the
  /// executor's live memory; the regression test pins it over a
  /// 100k-job run (tests/executor_reclaim_test.cpp).
  std::int64_t peak_live_records = 0;

  /// JobRec slab size at shutdown == peak_live_records ever reached
  /// (records are free-listed, the slab never shrinks).
  std::int64_t record_slab_size = 0;

  /// Worker threads ever started (pool high-water; the pool never
  /// shrinks during a run).
  std::int64_t worker_pool_peak = 0;

  /// Jobs the scheduling thread pulled out of ingest lanes (admitted +
  /// degraded + rejected).
  std::int64_t lane_ingested = 0;

  // cpu_busy and cpu_jobs — the per-CPU-slot breakdowns — moved to
  // runtime::RunReport so the simulator reports them through the same
  // fields (placement quality is compared across substrates).

  /// High-water mark of worker threads simultaneously executing job
  /// bodies (abort handlers excluded).  The witness that a multi-CPU
  /// run really overlapped: >= 2 means lock-free conflicts could arise
  /// from true parallelism, not just preemption.  May transiently
  /// exceed cpu_count: a descheduled body keeps executing until its
  /// next checkpoint while its replacement starts (the cooperative
  /// model's preemption latency).
  int max_concurrency_observed = 0;
};

/// Middleware UA scheduler over real threads.
///
/// Thread model: one scheduling thread, a persistent worker POOL, and
/// M = ExecutorConfig::cpu_count CPU slots.  The scheduling thread
/// computes one global schedule at every scheduling event and dispatches
/// its top M eligible jobs (the simulator's multi-CPU rule, shared via
/// sched::DispatchSelector); each dispatched job's worker executes its
/// body while the others park inside checkpoint().  With the default
/// cpu_count = 1 exactly one body executes at a time — the paper's
/// uniprocessor model, where lock-free interference comes only from
/// cooperative preemption.  With cpu_count > 1 up to M bodies overlap
/// for real, so retry counts include true-parallelism conflicts; the
/// paper's uniprocessor-only results (Theorem 2's derivation, Theorem
/// 3's tradeoff, Lemmas 4/5) are validated at cpu_count = 1 and merely
/// *measured* beyond it.
///
/// Workers are pooled, not per-job: a job binds to a free worker at its
/// first dispatch and keeps that thread until it reaches a terminal
/// state (a preempted body parks ON its thread — its stack is its
/// state — so workers never migrate mid-job and per-job retry
/// attribution via the thread-local ScopedAccessSink stays exact).
/// The pool starts at cpu_count + worker_reserve and grows only when
/// every worker is pinned by a preempted job; terminal JobRecs are
/// recycled through a free list immediately, so a long run's memory is
/// bounded by its peak backlog, not its job count.
///
/// Ingest paths, fastest first: (1) per-producer wait-free IngestLanes
/// (open_lane) drained in batches by the scheduling thread — the
/// streaming-service path, subject to admission control; (2)
/// submit_batch(), N jobs under one mutex acquisition; (3) submit(),
/// a one-element batch kept for the original tests and benches.
///
/// Retry/blocking attribution: every job's body and abort handler run
/// on that job's own worker thread, whose thread-local
/// runtime::ScopedAccessSink is installed once around both; a preempted
/// worker parks but never migrates, so structure events always credit
/// the job that performed them even when several workers are inside the
/// same structure simultaneously.
class Executor {
 public:
  /// `scheduler` must outlive the executor.
  explicit Executor(const sched::Scheduler& scheduler,
                    ExecutorConfig config = {});
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Submit a job; its arrival is "now".  Thread-safe.  Returns kNoJob
  /// if the executor is already shutting down: the job is rejected
  /// explicitly (not counted, body never runs) rather than racing the
  /// drain — see tests/executor_shutdown_race_test.cpp.
  JobId submit(RtJob job);

  /// Submit up to `count` jobs under ONE mutex acquisition; arrival is
  /// "now" for all of them.  Jobs are moved from.  Returns how many
  /// were accepted — `count`, or 0 when the executor is shutting down
  /// (all-or-nothing, same rejection contract as submit).  When `ids`
  /// is non-null it receives the assigned JobIds (must have room for
  /// `count`).  Thread-safe.
  std::size_t submit_batch(RtJob* jobs, std::size_t count,
                           JobId* ids = nullptr);

  /// Open a wait-free single-producer submission lane of the given
  /// capacity.  The returned lane lives until shutdown.  Thread-safe,
  /// but open all lanes before producers start offering.
  IngestLane& open_lane(std::size_t capacity);

  /// Install the admission filter applied to every lane-ingested job
  /// (direct submit()s are exempt).  Runs on the scheduling thread
  /// under the executor mutex.  Install before producers start
  /// offering; pass nullptr to clear.
  void set_admission(AdmissionFilter filter);

  /// Block until every ingest lane is drained and every admitted job
  /// has completed or aborted.
  void drain();

  /// Install the contention controller's per-task conflict vector:
  /// groups[task] is the object task is currently hammering (-1 =
  /// none).  While non-empty, the dispatcher's top-M selection avoids
  /// co-scheduling two tasks of the same group when other eligible jobs
  /// can fill the slots (never leaving a CPU idle for it).  An empty
  /// vector — the initial state — disables steering; pass empty again
  /// to clear it.  Thread-safe; takes effect at the next scheduling
  /// pass.
  void set_task_conflict_groups(std::vector<std::int32_t> groups);

  /// Replace the live placement (ExecutorConfig::dispatch.placement)
  /// — the contention controller's migration hook.  The policy and CPU
  /// topology must match the configured one; only task affinities may
  /// change.  Thread-safe; takes effect at the next scheduling pass
  /// (an already-running job migrates at its next dispatch decision).
  void set_placement(sched::Placement placement);

  /// Stop accepting submissions, drain, stop the scheduling thread, and
  /// return the tallies.
  ExecutorReport shutdown();

 private:
  friend class IngestLane;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Wait-free single-producer submission lane (Executor::open_lane).
///
/// One producer thread stages jobs into its own SpscRing; the
/// scheduling thread drains every lane in batches at the top of each
/// scheduling pass, so N offers cost ONE mutex acquisition instead of
/// N.  A job's arrival time is when offer() accepted it — lane wait is
/// part of its sojourn, and is also tracked separately in the report's
/// ingest percentiles.
class IngestLane {
 public:
  IngestLane(const IngestLane&) = delete;
  IngestLane& operator=(const IngestLane&) = delete;

  /// Stage a job; its arrival is "now".  Wait-free.  Returns false when
  /// the lane is full (backpressure) — the job is not accepted and
  /// leaves no trace.  Malformed jobs (no TUF/body/estimate) fail the
  /// invariant check here, on the producer.  Exactly one thread may
  /// call offer() on a given lane.
  ///
  /// Offers racing Executor::shutdown() may be silently dropped; a
  /// service must stop its producers before shutting the executor
  /// down (runtime::Service::close_ingest sequences this).
  bool offer(RtJob job);

  /// True when the scheduling thread has consumed everything offered
  /// so far.
  bool drained() const { return ring_.empty(); }

 private:
  friend class Executor;
  struct Entry {
    RtJob job;
    Time offered_ns = 0;
  };
  IngestLane(Executor::Impl* owner, std::size_t capacity)
      : owner_(owner), ring_(capacity) {}

  Executor::Impl* owner_;
  lockfree::SpscRing<Entry> ring_;
};

}  // namespace lfrt::rt
