// Mutex-serialized queue/stack — the std::mutex members of the zoo.
//
// These serialize access by mutual exclusion, exactly the class of
// mechanism the paper's lock-based RUA manages.  Since the lock zoo
// landed they are thin aliases of the generic wrappers in locked.hpp
// with Lock = std::mutex: the structure code, the Guard-based
// contention accounting (how often an acquire found the lock held —
// letting the rt-layer microbenchmarks separate raw critical-section
// cost from blocking cost, the r-vs-s decomposition of Section 5), and
// the sink plumbing are all written once and shared with TicketLock /
// AndersonArrayLock / McsLock (locks.hpp).
#pragma once

#include <mutex>

#include "lockbased/locked.hpp"

namespace lfrt::lockbased {

/// Unbounded mutex-protected MPMC FIFO.
template <typename T>
using MutexQueue = LockedQueue<T, std::mutex>;

/// Unbounded mutex-protected MPMC LIFO.
template <typename T>
using MutexStack = LockedStack<T, std::mutex>;

}  // namespace lfrt::lockbased
