// Minimal JSON DOM + recursive-descent parser, shared by report_json
// (report round-trips) and calibrate (the persistent calibration
// cache).  Deliberately tiny: just what the repo's own writers emit —
// objects, arrays, strings with simple escapes, bools, null, and
// numbers that keep both views (is_int marks values parsed without
// '.', 'e'), so int64 fields round-trip exactly even past 2^53.
#pragma once

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace lfrt::runtime::jsonmin {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;
  std::int64_t inum = 0;
  bool is_int = false;

  bool is_number() const { return std::holds_alternative<double>(v); }
  double as_double() const { return std::get<double>(v); }
  std::int64_t as_int() const {
    if (is_int) return inum;
    return static_cast<std::int64_t>(std::llround(std::get<double>(v)));
  }
  const std::string* as_string() const {
    return std::get_if<std::string>(&v);
  }
  const JsonArray* as_array() const {
    auto* p = std::get_if<std::shared_ptr<JsonArray>>(&v);
    return p ? p->get() : nullptr;
  }
  const JsonObject* as_object() const {
    auto* p = std::get_if<std::shared_ptr<JsonObject>>(&v);
    return p ? p->get() : nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* why) const {
    throw std::runtime_error(std::string("json: ") + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.v = string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.v = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.v = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          // \uXXXX is not emitted by our writers; reject, don't decode.
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool integral = true;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = integral && c != '.' && c != 'e' && c != 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a number");
    const std::string_view text = s_.substr(start, pos_ - start);
    JsonValue v;
    double d = 0.0;
    const auto dres =
        std::from_chars(text.data(), text.data() + text.size(), d);
    if (dres.ec != std::errc{} || dres.ptr != text.data() + text.size())
      fail("malformed number");
    v.v = d;
    if (integral) {
      std::int64_t i = 0;
      const auto ires =
          std::from_chars(text.data(), text.data() + text.size(), i);
      if (ires.ec == std::errc{} && ires.ptr == text.data() + text.size()) {
        v.inum = i;
        v.is_int = true;
      }
    }
    return v;
  }

  JsonValue array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
    } else {
      for (;;) {
        arr->push_back(value());
        skip_ws();
        const char c = peek();
        ++pos_;
        if (c == ']') break;
        if (c != ',') fail("expected ',' or ']'");
      }
    }
    JsonValue v;
    v.v = std::move(arr);
    return v;
  }

  JsonValue object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      for (;;) {
        skip_ws();
        std::string key = string();
        skip_ws();
        expect(':');
        (*obj)[std::move(key)] = value();
        skip_ws();
        const char c = peek();
        ++pos_;
        if (c == '}') break;
        if (c != ',') fail("expected ',' or '}'");
      }
    }
    JsonValue v;
    v.v = std::move(obj);
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

inline const JsonValue* find(const JsonObject& o, std::string_view key) {
  const auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

inline std::int64_t get_int(const JsonObject& o, std::string_view key,
                            std::int64_t fallback = 0) {
  const JsonValue* v = find(o, key);
  if (v == nullptr) return fallback;
  if (!v->is_number())
    throw std::runtime_error("json: non-numeric " + std::string(key));
  return v->as_int();
}

inline double get_double(const JsonObject& o, std::string_view key,
                         double fallback = 0.0) {
  const JsonValue* v = find(o, key);
  if (v == nullptr) return fallback;
  if (!v->is_number())
    throw std::runtime_error("json: non-numeric " + std::string(key));
  return v->as_double();
}

}  // namespace lfrt::runtime::jsonmin
