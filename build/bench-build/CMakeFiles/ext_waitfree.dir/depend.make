# Empty dependencies file for ext_waitfree.
# This may be replaced when dependencies are built.
