// Placement layer (PR 10): policy semantics, placement-aware dispatch
// selection/assignment, per-cluster object scoping in the simulator,
// controller placement epoch actions, the analysis::mp zero-overlap
// refinement, and the RunReport per-CPU-slot breakdowns — across both
// substrates.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "analysis/mp.hpp"
#include "runtime/contention_controller.hpp"
#include "runtime/exec_adapter.hpp"
#include "runtime/report_json.hpp"
#include "sched/dispatch.hpp"
#include "sched/edf.hpp"
#include "sched/placement.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace lfrt {
namespace {

using analysis::mp::MpOptions;
using analysis::mp::Substrate;
using runtime::ObjectImpl;
using runtime::ObjectKind;
using runtime::ObjectSpec;
using sched::DispatchOptions;
using sched::DispatchSelector;
using sched::Placement;
using sched::PlacementPolicy;
using sim::ShareMode;
using sim::SimConfig;
using sim::Simulator;

TaskParams simple_task(TaskId id, Time exec, Time critical,
                       std::vector<AccessSpec> accesses = {},
                       double height = 10.0) {
  TaskParams p;
  p.id = id;
  p.exec_time = exec;
  p.tuf = make_step_tuf(height, critical);
  p.arrival = UamSpec{1, 1, critical};
  p.accesses = std::move(accesses);
  return p;
}

Placement partitioned(std::vector<std::int32_t> task_cpu) {
  Placement p;
  p.policy = PlacementPolicy::kPartitioned;
  p.task_affinity = std::move(task_cpu);
  return p;
}

Placement clustered(std::vector<std::int32_t> cpu_cluster,
                    std::vector<std::int32_t> task_cluster) {
  Placement p;
  p.policy = PlacementPolicy::kClustered;
  p.cpu_cluster = std::move(cpu_cluster);
  p.task_affinity = std::move(task_cluster);
  return p;
}

// ---- Placement struct semantics ------------------------------------

TEST(Placement, ClusterTopologyPerPolicy) {
  Placement g;  // global
  EXPECT_TRUE(g.global());
  EXPECT_EQ(g.cluster_count(4), 1);
  EXPECT_EQ(g.cluster_of_task(0), -1);
  EXPECT_EQ(g.cluster_of_cpu(0), -1);

  const Placement part = partitioned({1, 0, -1});
  EXPECT_FALSE(part.global());
  EXPECT_EQ(part.cluster_count(2), 2);
  EXPECT_EQ(part.cluster_of_cpu(1), 1);  // each CPU its own cluster
  EXPECT_EQ(part.cluster_of_task(0), 1);
  EXPECT_EQ(part.cluster_of_task(2), -1);  // unplaced
  EXPECT_EQ(part.cluster_of_task(99), -1); // out of range = unplaced
  part.validate(2, 3);

  const Placement clus = clustered({0, 0, 1, 1}, {1, 0});
  EXPECT_EQ(clus.cluster_count(4), 2);
  EXPECT_EQ(clus.cluster_of_cpu(3), 1);
  EXPECT_EQ(clus.cluster_of_task(0), 1);
  clus.validate(4, 2);
}

TEST(Placement, ValidateRejectsBrokenTopologies) {
  // Clustered with a gap in cluster numbering (no CPU in cluster 0).
  const Placement gap = clustered({1, 1}, {0});
  EXPECT_THROW(gap.validate(2, 1), InvariantViolation);
  // Placed task naming a nonexistent cluster.
  const Placement oob = partitioned({5});
  EXPECT_THROW(oob.validate(2, 1), InvariantViolation);
  // Clustered map must cover every CPU.
  Placement shortmap;
  shortmap.policy = PlacementPolicy::kClustered;
  shortmap.cpu_cluster = {0};
  EXPECT_THROW(shortmap.validate(2, 0), InvariantViolation);
}

// ---- Selector: global delegation is bit-identical ------------------

TEST(PlacementSelect, GlobalPolicyIsSelectSteeredBitForBit) {
  // Fuzz: random schedules, eligibility and CPU occupancy; under the
  // global policy select_placed/assign_placed must reproduce
  // select_steered/assign_sticky exactly.
  Rng rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    const int cpu_count = static_cast<int>(rng.uniform(1, 4));
    const std::size_t id_limit = 12;
    sched::ScheduleResult res;
    res.dispatch = rng.uniform(-1, static_cast<std::int64_t>(id_limit));
    const std::int64_t n = rng.uniform(0, 9);
    for (std::int64_t k = 0; k < n; ++k)
      res.schedule.push_back(rng.uniform(0, 11));
    std::vector<bool> ok(id_limit);
    std::vector<int> cpu(id_limit, -1);
    std::vector<std::int32_t> task(id_limit);
    for (std::size_t j = 0; j < id_limit; ++j) {
      ok[j] = rng.uniform(0, 3) != 0;
      task[j] = static_cast<std::int32_t>(rng.uniform(0, 5));
      if (rng.chance(0.25))
        cpu[j] = static_cast<int>(rng.uniform(0, cpu_count - 1));
    }
    std::vector<std::int32_t> groups(6);
    for (auto& g : groups) g = static_cast<std::int32_t>(rng.uniform(-1, 1));

    const auto eligible = [&](JobId id) {
      return ok[static_cast<std::size_t>(id)];
    };
    const auto task_of = [&](JobId id) -> TaskId {
      return task[static_cast<std::size_t>(id)];
    };
    const auto cpu_of = [&](JobId id) {
      return cpu[static_cast<std::size_t>(id)];
    };

    DispatchSelector steered;
    DispatchSelector placed;  // global placement (the default)
    steered.set_conflict_groups(groups);
    placed.set_conflict_groups(groups);
    const bool strict = rng.chance(0.5);
    steered.set_strict_groups(strict);
    DispatchOptions opts;
    opts.strict_groups = strict;
    placed.set_options(opts);

    const std::vector<JobId> front;
    const auto a = steered.select_steered(front, res, cpu_count, id_limit,
                                          eligible, task_of);
    const auto b = placed.select_placed(front, res, cpu_count, id_limit,
                                        eligible, task_of);
    ASSERT_EQ(a, b) << "iter " << iter;
    const auto na = steered.assign_sticky(a, cpu_count, cpu_of);
    const auto nb = placed.assign_placed(b, cpu_count, task_of, cpu_of);
    ASSERT_EQ(na, nb) << "iter " << iter;
  }
}

// ---- Selector: partitioned admission and assignment ----------------

TEST(PlacementSelect, PartitionedAdmissionRespectsClusterCapacity) {
  // 2 CPUs; tasks 0 and 1 pinned to CPU 0, task 2 to CPU 1.  Jobs
  // 0,1,2 belong to tasks 0,1,2.  Cluster 0 has one slot, so job 1 is
  // skipped and job 2 (cluster 1) still fits.
  DispatchSelector sel;
  DispatchOptions opts;
  opts.placement = partitioned({0, 0, 1});
  sel.set_options(opts);
  sched::ScheduleResult res;
  res.schedule = {0, 1, 2};
  const std::vector<std::int32_t> task = {0, 1, 2};
  const auto targets = sel.select_placed(
      {}, res, 2, 3, [](JobId) { return true; },
      [&](JobId id) -> TaskId { return task[static_cast<std::size_t>(id)]; });
  EXPECT_EQ(targets, (std::vector<JobId>{0, 2}));

  // Assignment puts each job on its own partition's CPU.
  const auto next = sel.assign_placed(
      targets, 2,
      [&](JobId id) -> TaskId { return task[static_cast<std::size_t>(id)]; },
      [](JobId) { return -1; });
  EXPECT_EQ(next[0], 0);
  EXPECT_EQ(next[1], 2);
}

TEST(PlacementSelect, UnplacedJobsFillRemainingSlots) {
  // Task 0 pinned to CPU 1, task 1 unplaced: the placed job takes its
  // partition CPU, the unplaced one the leftover slot.
  DispatchSelector sel;
  DispatchOptions opts;
  opts.placement = partitioned({1, -1});
  sel.set_options(opts);
  sched::ScheduleResult res;
  res.schedule = {0, 1};
  const std::vector<std::int32_t> task = {0, 1};
  const auto task_of = [&](JobId id) -> TaskId {
    return task[static_cast<std::size_t>(id)];
  };
  const auto targets = sel.select_placed({}, res, 2, 2,
                                         [](JobId) { return true; }, task_of);
  EXPECT_EQ(targets, (std::vector<JobId>{0, 1}));
  const auto next =
      sel.assign_placed(targets, 2, task_of, [](JobId) { return -1; });
  EXPECT_EQ(next[1], 0);  // placed job on its partition CPU
  EXPECT_EQ(next[0], 1);  // unplaced job fills the free slot
}

TEST(PlacementSelect, StickyJobLeavesItsClusterOnlyByMigration) {
  // Job 0 (task 0, cluster 0) currently on CPU 1 — a stale position
  // after a migration.  assign_placed must move it back inside its
  // cluster instead of keeping the foreign CPU.
  DispatchSelector sel;
  DispatchOptions opts;
  opts.placement = partitioned({0});
  sel.set_options(opts);
  const std::vector<JobId> targets = {0};
  const auto next = sel.assign_placed(
      targets, 2, [](JobId) -> TaskId { return 0; },
      [](JobId) { return 1; });
  EXPECT_EQ(next[0], 0);
  EXPECT_EQ(next[1], kNoJob);
}

// ---- Selector: steering x strict-groups x placement ----------------

TEST(PlacementSelect, DeferredSameGroupJobStaysOnItsPartition) {
  // Tasks 0 and 1 share conflict group 7 and are both pinned to CPU 0;
  // task 2 is pinned to CPU 1.  Schedule [0, 1, 2]:
  //   - job 0 takes cluster 0 and stamps group 7,
  //   - job 1 is deferred (same group),
  //   - job 2 takes cluster 1.
  // The work-conserving refill then re-checks *capacity*: cluster 0 is
  // full, so job 1 must NOT be refilled onto the foreign free-less
  // slot — on a partitioned mask a deferred same-group job stays on its
  // partition or waits.
  for (const bool strict : {false, true}) {
    DispatchSelector sel;
    DispatchOptions opts;
    opts.placement = partitioned({0, 0, 1});
    opts.strict_groups = strict;
    sel.set_options(opts);
    sel.set_conflict_groups({7, 7, -1});
    sched::ScheduleResult res;
    res.schedule = {0, 1, 2};
    const std::vector<std::int32_t> task = {0, 1, 2};
    const auto task_of = [&](JobId id) -> TaskId {
      return task[static_cast<std::size_t>(id)];
    };
    const auto targets = sel.select_placed(
        {}, res, 2, 3, [](JobId) { return true; }, task_of);
    EXPECT_EQ(targets, (std::vector<JobId>{0, 2})) << "strict=" << strict;
    const auto next =
        sel.assign_placed(targets, 2, task_of, [](JobId) { return -1; });
    EXPECT_EQ(next[0], 0) << "strict=" << strict;
    EXPECT_EQ(next[1], 2) << "strict=" << strict;
  }
}

TEST(PlacementSelect, DeferredJobRefillsWithinItsOwnCluster) {
  // Same-group tasks 0,1 pinned to cluster 0 of a 2-CPU cluster
  // {0,0}; with work conservation the deferred job refills into its
  // own cluster's second slot; strict mode leaves it idle.
  for (const bool strict : {false, true}) {
    DispatchSelector sel;
    DispatchOptions opts;
    opts.placement = clustered({0, 0}, {0, 0});
    opts.strict_groups = strict;
    sel.set_options(opts);
    sel.set_conflict_groups({7, 7});
    sched::ScheduleResult res;
    res.schedule = {0, 1};
    const std::vector<std::int32_t> task = {0, 1};
    const auto targets = sel.select_placed(
        {}, res, 2, 2, [](JobId) { return true; },
        [&](JobId id) -> TaskId { return task[static_cast<std::size_t>(id)]; });
    if (strict)
      EXPECT_EQ(targets, (std::vector<JobId>{0}));
    else
      EXPECT_EQ(targets, (std::vector<JobId>{0, 1}));
  }
}

// ---- Simulator: scoped placement kills cross-cluster conflicts ------

// Two tasks, each one write access to shared object 0: overlapped
// windows make the later CAS retry (lock-free) or the later request
// block (lock-based) under global dispatch on 2 CPUs.
TaskSet conflict_pair() {
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(
      simple_task(0, usec(10), usec(200), {{0, usec(2), true}}));
  ts.tasks.push_back(
      simple_task(1, usec(10), usec(200), {{0, usec(2), true}}));
  return ts;
}

SimConfig conflict_cfg(ShareMode mode) {
  SimConfig cfg;
  cfg.mode = mode;
  cfg.lockfree_access_time = usec(10);
  cfg.lock_access_time = usec(10);
  cfg.cpu_count = 2;
  cfg.horizon = msec(1);
  return cfg;
}

sim::SimReport run_pair(ShareMode mode, ObjectImpl impl,
                        const Placement& placement) {
  const TaskSet ts = conflict_pair();
  const sched::EdfScheduler edf;
  SimConfig cfg = conflict_cfg(mode);
  cfg.objects = {ObjectSpec{ObjectKind::kQueue, impl}};
  cfg.dispatch.placement = placement;
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(1)});
  return sim.run();
}

TEST(PlacementSim, ScopedPlacementZeroesCrossClusterRetries) {
  const auto global = run_pair(ShareMode::kLockFree, ObjectImpl::kLockFree,
                               Placement{});
  EXPECT_GT(global.total_retries, 0);  // the conflict is real

  const auto part = run_pair(ShareMode::kLockFree, ObjectImpl::kLockFree,
                             partitioned({0, 1}));
  // Disjoint partitions => per-cluster instances => no CAS ever loses.
  EXPECT_EQ(part.total_retries, 0);
  EXPECT_EQ(part.completed, global.completed);
}

TEST(PlacementSim, ScopedPlacementZeroesCrossClusterBlockings) {
  const auto global = run_pair(ShareMode::kLockBased, ObjectImpl::kMutex,
                               Placement{});
  EXPECT_GT(global.total_blockings, 0);

  const auto part = run_pair(ShareMode::kLockBased, ObjectImpl::kMutex,
                             partitioned({0, 1}));
  EXPECT_EQ(part.total_blockings, 0);
  // Without the blocking stall both jobs finish strictly earlier than
  // the serialized global run's later job.
  Time late_part = 0, late_global = 0;
  for (const Job& j : part.jobs) late_part = std::max(late_part, j.completion);
  for (const Job& j : global.jobs)
    late_global = std::max(late_global, j.completion);
  EXPECT_LT(late_part, late_global);
}

TEST(PlacementSim, UnscopedPlacementKeepsSharedObjectConflicts) {
  // scope_objects = false: the partition pins WHERE jobs run but the
  // object stays one structure — the conflict survives.
  Placement p = partitioned({0, 1});
  p.scope_objects = false;
  const auto rep = run_pair(ShareMode::kLockFree, ObjectImpl::kLockFree, p);
  EXPECT_GT(rep.total_retries, 0);
}

TEST(PlacementSim, PartitionedRunsAreDeterministic) {
  const auto a = run_pair(ShareMode::kLockFree, ObjectImpl::kLockFree,
                          partitioned({0, 1}));
  const auto b = run_pair(ShareMode::kLockFree, ObjectImpl::kLockFree,
                          partitioned({0, 1}));
  EXPECT_EQ(a.dispatches, b.dispatches);
  EXPECT_EQ(a.cpu_jobs, b.cpu_jobs);
  EXPECT_EQ(a.cpu_busy, b.cpu_busy);
  EXPECT_EQ(a.accrued_utility, b.accrued_utility);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_EQ(a.jobs[i].completion, b.jobs[i].completion);
}

TEST(PlacementSim, CpuSlotBreakdownsAccountEveryDispatch) {
  const auto rep = run_pair(ShareMode::kLockFree, ObjectImpl::kLockFree,
                            partitioned({0, 1}));
  ASSERT_EQ(rep.cpu_jobs.size(), 2u);
  ASSERT_EQ(rep.cpu_busy.size(), 2u);
  EXPECT_EQ(std::accumulate(rep.cpu_jobs.begin(), rep.cpu_jobs.end(),
                            std::int64_t{0}),
            rep.dispatches);
  // Each partition executed its own job: both slots saw work.
  EXPECT_GT(rep.cpu_jobs[0], 0);
  EXPECT_GT(rep.cpu_jobs[1], 0);
  EXPECT_GT(rep.cpu_busy[0], 0);
  EXPECT_GT(rep.cpu_busy[1], 0);
}

// ---- Controller placement epoch actions ----------------------------

TEST(PlacementController, CoreSpreadsHotScopedGroupAcrossClusters) {
  runtime::ControllerConfig cfg;
  cfg.steer_min_retries = 4;
  cfg.place = true;
  const std::vector<ObjectSpec> specs = {
      ObjectSpec{ObjectKind::kQueue, ObjectImpl::kLockFree}};
  runtime::ContentionControllerCore core(cfg, specs);
  core.enable_placement({0, 0}, 2, {{0, 1}}, {-1});
  ASSERT_TRUE(core.placement_enabled());

  runtime::ContentionMatrix m(1, 2);
  core.step(m);  // baseline
  m.at(0, 0).retries = 8;
  m.at(0, 1).retries = 8;
  const auto ep = core.step(m);
  // Task 0 stays on (0 + 0) % 2 = 0 (no move emitted), task 1 spreads
  // to (0 + 1) % 2 = 1.
  ASSERT_EQ(ep.placement_moves.size(), 1u);
  EXPECT_EQ(ep.placement_moves[0].task, 1);
  EXPECT_EQ(ep.placement_moves[0].to_cluster, 1);
  EXPECT_EQ(ep.placement_moves[0].why,
            runtime::PlacementMove::Why::kSpreadHotGroup);
  EXPECT_EQ(core.cluster_of(1), 1);

  // Quiet epoch: no further moves; the core remembers the new homes.
  const auto ep2 = core.step(m);
  EXPECT_TRUE(ep2.placement_moves.empty());
}

TEST(PlacementController, CoreHomesSingleWriterObjectOnItsWriter) {
  runtime::ControllerConfig cfg;
  cfg.steer_min_retries = 4;
  cfg.place = true;
  const std::vector<ObjectSpec> specs = {
      ObjectSpec{ObjectKind::kBuffer, ObjectImpl::kLockFree}};
  runtime::ContentionControllerCore core(cfg, specs);
  // Writer task 0 lives in cluster 1; reader task 1 in cluster 0.
  core.enable_placement({1, 0}, 2, {{0, 1}}, {0});

  runtime::ContentionMatrix m(1, 2);
  core.step(m);
  m.at(0, 1).retries = 8;  // the reader pays the spin
  const auto ep = core.step(m);
  ASSERT_EQ(ep.placement_moves.size(), 1u);
  EXPECT_EQ(ep.placement_moves[0].task, 1);
  EXPECT_EQ(ep.placement_moves[0].to_cluster, 1);  // the writer's home
  EXPECT_EQ(ep.placement_moves[0].why,
            runtime::PlacementMove::Why::kWriterHome);
}

TEST(PlacementSim, ControllerMigrationSeparatesCoLocatedHammerers) {
  // Both tasks start in cluster 0 of a 2-cluster machine (one CPU per
  // cluster) sharing one scoped queue.  Task 1 has a much tighter
  // deadline, so it preempts task 0 mid-access every period — each
  // preemption restarts the access and charges a retry.  The
  // controller's spread action must migrate task 1 to cluster 1 (task
  // 0 keeps (0 + 0) % 2 = 0), after which the tasks run on separate
  // CPUs against separate instances and the retries stop.
  TaskSet ts;
  ts.object_count = 1;
  std::vector<AccessSpec> hammer;
  for (int k = 0; k < 8; ++k)
    hammer.push_back({0, usec(2 + 10 * k), true});
  ts.tasks.push_back(simple_task(0, usec(90), usec(400), hammer));
  ts.tasks.push_back(simple_task(1, usec(10), usec(60), {{0, usec(2), true}}));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(8);
  cfg.cpu_count = 2;
  cfg.horizon = msec(4);
  cfg.objects = {ObjectSpec{ObjectKind::kQueue, ObjectImpl::kLockFree}};
  cfg.dispatch.placement = clustered({0, 1}, {0, 0});
  cfg.controller.place = true;
  cfg.controller.epoch = usec(200);
  cfg.controller.steer_min_retries = 1;
  Simulator sim(ts, edf, cfg);
  std::vector<Time> arrivals;
  for (Time t = 0; t < msec(4); t += usec(400)) arrivals.push_back(t);
  sim.set_arrivals(0, arrivals);
  std::vector<Time> arrivals1;
  for (Time t = usec(3); t < msec(4); t += usec(100))
    arrivals1.push_back(t);
  sim.set_arrivals(1, arrivals1);
  const auto rep = sim.run();
  ASSERT_FALSE(rep.placement_moves.empty());
  EXPECT_EQ(rep.placement_moves[0].task, 1);
  EXPECT_EQ(rep.placement_moves[0].to_cluster, 1);
  EXPECT_EQ(rep.placement_moves[0].why,
            runtime::PlacementMove::Why::kSpreadHotGroup);
  // After the spread the tasks write disjoint instances: retries stop
  // accumulating.  Compare against the same run with the controller
  // off.
  SimConfig base = cfg;
  base.controller.place = false;
  Simulator sim2(ts, edf, base);
  sim2.set_arrivals(0, arrivals);
  sim2.set_arrivals(1, arrivals1);
  const auto rep2 = sim2.run();
  EXPECT_LT(rep.total_retries, rep2.total_retries);
}

// ---- analysis::mp zero-overlap refinement --------------------------

TEST(PlacementAnalysis, SeparatedTasksDropFromEachOthersBounds) {
  const TaskSet ts = conflict_pair();
  const ObjectSpec lf{ObjectKind::kQueue, ObjectImpl::kLockFree};
  const ObjectSpec mx{ObjectKind::kQueue, ObjectImpl::kMutex};

  MpOptions global;
  global.cpu_count = 2;
  global.substrate = Substrate::kSimulator;
  MpOptions part = global;
  part.placement = partitioned({0, 1});

  EXPECT_FALSE(analysis::mp::placement_separated(global, lf, 0, 1));
  EXPECT_TRUE(analysis::mp::placement_separated(part, lf, 0, 1));
  // Buffer/snapshot kinds are never scoped.
  const ObjectSpec buf{ObjectKind::kBuffer, ObjectImpl::kLockFree};
  EXPECT_FALSE(analysis::mp::placement_separated(part, buf, 0, 1));
  // Unscoped placements separate nothing.
  MpOptions unscoped = part;
  unscoped.placement.scope_objects = false;
  EXPECT_FALSE(analysis::mp::placement_separated(unscoped, lf, 0, 1));

  // Strictly tighter per-job bounds on the shared scoped object.
  const auto r_g = analysis::mp::retry_job_bound(ts, 0, 0, lf, global);
  const auto r_p = analysis::mp::retry_job_bound(ts, 0, 0, lf, part);
  EXPECT_LT(r_p, r_g);
  const auto b_g = analysis::mp::blocking_job_bound(ts, 0, 0, mx, global);
  const auto b_p = analysis::mp::blocking_job_bound(ts, 0, 0, mx, part);
  EXPECT_LT(b_p, b_g);
  // Fully separated accessors: the conflicting-jobs term shrinks, and
  // from task 0's viewpoint only task 0 itself can touch its instance.
  EXPECT_LT(analysis::mp::conflicting_jobs(ts, 0, 0, part, lf),
            analysis::mp::conflicting_jobs(ts, 0, 0, global, lf));
  EXPECT_EQ(analysis::mp::worker_cap(ts, 0, part, lf, 0), 1);
  EXPECT_EQ(analysis::mp::worker_cap(ts, 0, global, lf, 0),
            analysis::mp::worker_cap(ts, 0, global));
}

TEST(PlacementAnalysis, PartitionedCertificateIsTighterCellByCell) {
  // Run the same conflicting trace under global and partitioned
  // placement; both certify, and the partitioned bound is strictly
  // tighter on the shared object's cells.
  const TaskSet ts = conflict_pair();
  const ObjectSpec lf{ObjectKind::kQueue, ObjectImpl::kLockFree};
  const runtime::CostModel model;

  const auto rep_g = run_pair(ShareMode::kLockFree, ObjectImpl::kLockFree,
                              Placement{});
  MpOptions og;
  og.cpu_count = 2;
  og.substrate = Substrate::kSimulator;
  const auto cert_g = analysis::mp::certify(rep_g, ts, {lf}, model, og);
  EXPECT_TRUE(cert_g.ok);

  const auto rep_p = run_pair(ShareMode::kLockFree, ObjectImpl::kLockFree,
                              partitioned({0, 1}));
  MpOptions op = og;
  op.placement = partitioned({0, 1});
  const auto cert_p = analysis::mp::certify(rep_p, ts, {lf}, model, op);
  EXPECT_TRUE(cert_p.ok);

  ASSERT_EQ(cert_g.retries.size(), cert_p.retries.size());
  for (std::size_t i = 0; i < cert_g.retries.size(); ++i) {
    EXPECT_LE(cert_p.retries[i].measured, cert_p.retries[i].bound);
    EXPECT_LT(cert_p.retries[i].bound, cert_g.retries[i].bound)
        << "cell " << i;
  }
}

TEST(PlacementAnalysis, OptionsFromSelectorCarryThePlacement) {
  DispatchSelector sel;
  DispatchOptions opts;
  opts.placement = partitioned({0, 1});
  opts.strict_groups = true;
  sel.set_options(opts);
  const MpOptions mp = analysis::mp::options_from_selector(
      sel, 2, Substrate::kSimulator);
  EXPECT_TRUE(mp.strict_groups);
  EXPECT_EQ(mp.placement.policy, PlacementPolicy::kPartitioned);
  EXPECT_EQ(mp.placement.cluster_of_task(1), 1);
}

// ---- Executor substrate --------------------------------------------

rt::ExecutorReport run_exec(const Placement& placement) {
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(
      simple_task(0, usec(200), msec(4), {{0, usec(50), true}}));
  ts.tasks.push_back(
      simple_task(1, usec(200), msec(4), {{0, usec(50), true}}));
  for (auto& t : ts.tasks) t.arrival = UamSpec{1, 1, msec(4)};
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  runtime::ExecConfig ec;
  ec.horizon = msec(20);
  ec.objects = {ObjectSpec{ObjectKind::kQueue, ObjectImpl::kLockFree}};
  ec.cpu_count = 2;
  ec.arrival_seed = 5;
  ec.dispatch.placement = placement;
  return runtime::run_on_executor(ts, rua, ec);
}

TEST(PlacementExecutor, CpuSlotBreakdownsAccountEveryDispatch) {
  const auto rep = run_exec(Placement{});
  ASSERT_EQ(rep.cpu_jobs.size(), 2u);
  ASSERT_EQ(rep.cpu_busy.size(), 2u);
  EXPECT_EQ(std::accumulate(rep.cpu_jobs.begin(), rep.cpu_jobs.end(),
                            std::int64_t{0}),
            rep.dispatches);
  EXPECT_GT(rep.dispatches, 0);
}

TEST(PlacementExecutor, ScopedPartitionEliminatesRetriesAndCertifies) {
  const auto rep = run_exec(partitioned({0, 1}));
  ASSERT_GT(rep.counted_jobs, 0);
  // Disjoint per-cluster instances: the tasks' queue ops cannot
  // conflict, and each task's jobs are serialized by UAM(1,1,W), so no
  // retry source remains.
  EXPECT_EQ(rep.total_retries, 0);

  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(
      simple_task(0, usec(200), msec(4), {{0, usec(50), true}}));
  ts.tasks.push_back(
      simple_task(1, usec(200), msec(4), {{0, usec(50), true}}));
  MpOptions opt;
  opt.cpu_count = 2;
  opt.substrate = Substrate::kExecutor;
  opt.placement = partitioned({0, 1});
  const auto cert = analysis::mp::certify(
      rep, ts, {ObjectSpec{ObjectKind::kQueue, ObjectImpl::kLockFree}},
      runtime::CostModel{}, opt);
  EXPECT_TRUE(cert.ok);
}

// ---- RunReport JSON round-trip -------------------------------------

TEST(PlacementJson, CpuSlotBreakdownsRoundTrip) {
  runtime::RunReport rep;
  rep.counted_jobs = 3;
  rep.dispatches = 7;
  rep.cpu_busy = {usec(5), usec(9)};
  rep.cpu_jobs = {4, 3};
  const std::string js = runtime::to_json(rep);
  EXPECT_NE(js.find("\"cpu_busy\":[5000,9000]"), std::string::npos);
  EXPECT_NE(js.find("\"cpu_jobs\":[4,3]"), std::string::npos);
  const runtime::RunReport back = runtime::from_json(js);
  EXPECT_EQ(back.cpu_busy, rep.cpu_busy);
  EXPECT_EQ(back.cpu_jobs, rep.cpu_jobs);
}

TEST(PlacementJson, LegacyReportsStayByteIdenticalAndParse) {
  runtime::RunReport rep;
  rep.counted_jobs = 1;
  const std::string js = runtime::to_json(rep);
  // Empty breakdowns are omitted entirely — pre-PR-10 bytes.
  EXPECT_EQ(js.find("cpu_busy"), std::string::npos);
  EXPECT_EQ(js.find("cpu_jobs"), std::string::npos);
  const runtime::RunReport back = runtime::from_json(js);
  EXPECT_TRUE(back.cpu_busy.empty());
  EXPECT_TRUE(back.cpu_jobs.empty());
}

}  // namespace
}  // namespace lfrt
