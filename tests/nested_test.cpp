// Nested critical sections end-to-end: span validation, multi-lock
// execution, deadlock formation, detection, and resolution through the
// abort-exception path (paper, Sections 3.3 and 3.5).
#include <gtest/gtest.h>

#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"

namespace lfrt {
namespace {

using sim::ShareMode;
using sim::SimConfig;
using sim::Simulator;

TaskParams nested_task(TaskId id, Time exec, Time critical,
                       std::vector<LockSpan> spans, double height = 10.0) {
  TaskParams p;
  p.id = id;
  p.exec_time = exec;
  p.tuf = make_step_tuf(height, critical);
  p.arrival = UamSpec{1, 1, critical};
  p.spans = std::move(spans);
  return p;
}

TEST(SpanValidation, AcceptsProperNesting) {
  auto p = nested_task(0, usec(10), usec(100),
                       {{0, usec(1), usec(9)}, {1, usec(3), usec(7)}});
  EXPECT_NO_THROW(p.validate());
}

TEST(SpanValidation, RejectsPartialOverlap) {
  // Span 1 acquires inside span 0 but releases after it: not LIFO.
  auto p = nested_task(0, usec(10), usec(100),
                       {{0, usec(1), usec(5)}, {1, usec(3), usec(8)}});
  EXPECT_THROW(p.validate(), InvariantViolation);
}

TEST(SpanValidation, RejectsReacquisitionOfHeldLock) {
  auto p = nested_task(0, usec(10), usec(100),
                       {{0, usec(1), usec(9)}, {0, usec(3), usec(7)}});
  EXPECT_THROW(p.validate(), InvariantViolation);
}

TEST(SpanValidation, RejectsEmptyOrReversedSpan) {
  auto a = nested_task(0, usec(10), usec(100), {{0, usec(5), usec(5)}});
  EXPECT_THROW(a.validate(), InvariantViolation);
  auto b = nested_task(0, usec(10), usec(100), {{0, usec(6), usec(4)}});
  EXPECT_THROW(b.validate(), InvariantViolation);
}

TEST(SpanValidation, RejectsMixingFlatAndNested) {
  auto p = nested_task(0, usec(10), usec(100), {{0, usec(1), usec(5)}});
  p.accesses = {{1, usec(2)}};
  EXPECT_THROW(p.validate(), InvariantViolation);
}

TEST(SpanValidation, SequentialSpansNeedNotNest) {
  auto p = nested_task(0, usec(10), usec(100),
                       {{0, usec(1), usec(3)}, {1, usec(5), usec(8)}});
  EXPECT_NO_THROW(p.validate());
}

TEST(NestedSim, RequiresLockBasedMode) {
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(
      nested_task(0, usec(10), usec(100), {{0, usec(1), usec(5)}}));
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  EXPECT_THROW(Simulator(ts, rua, cfg), InvariantViolation);
}

TEST(NestedSim, SingleJobNestedTimingHandComputed) {
  // u=10us, spans (O0, 2..9) and (O1, 4..7), r=3us.
  // Timeline: compute 0-2, acquire O0 + access 3us, compute 2-4,
  // acquire O1 + access 3us, compute 4-7, release O1, compute 7-9,
  // release O0, compute 9-10.  Completion = 10 + 2*3 = 16us.
  TaskSet ts;
  ts.object_count = 2;
  ts.tasks.push_back(nested_task(
      0, usec(10), usec(100),
      {{0, usec(2), usec(9)}, {1, usec(4), usec(7)}}));
  const sched::RuaScheduler rua(sched::Sharing::kLockBased, true);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(3);
  cfg.horizon = msec(1);
  Simulator sim(ts, rua, cfg);
  sim.set_arrivals(0, {0});
  const auto rep = sim.run();
  ASSERT_EQ(rep.completed, 1);
  EXPECT_EQ(rep.jobs[0].completion, usec(16));
  EXPECT_EQ(rep.deadlocks_resolved, 0);
  EXPECT_EQ(rep.jobs[0].blockings, 0);
}

/// Classic ABBA deadlock: T0 takes O0 then O1; T1 takes O1 then O0.
/// T1 arrives first and takes its outer lock; T0 arrives later with the
/// *earlier* absolute critical time, so RUA's ECF dispatch preempts T1
/// with it and both end up holding one lock and requesting the other's.
TaskSet abba_taskset() {
  TaskSet ts;
  ts.object_count = 2;
  // T0: high utility, tight critical time — should survive resolution.
  ts.tasks.push_back(nested_task(
      0, usec(20), usec(300),
      {{0, usec(2), usec(18)}, {1, usec(10), usec(16)}}, 100.0));
  // T1: low utility — the likely victim.
  ts.tasks.push_back(nested_task(
      1, usec(20), usec(400),
      {{1, usec(2), usec(18)}, {0, usec(10), usec(16)}}, 5.0));
  ts.tasks[1].abort_handler_time = usec(2);
  ts.validate();
  return ts;
}

TEST(NestedSim, AbbaDeadlockDetectedAndResolved) {
  const TaskSet ts = abba_taskset();
  const sched::RuaScheduler rua(sched::Sharing::kLockBased,
                                /*detect_deadlocks=*/true);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(1);
  cfg.record_trace = true;
  cfg.horizon = msec(2);
  Simulator sim(ts, rua, cfg);
  // T1 arrives first and acquires O1 (its acquire offset is 2us, the
  // access takes 1us, so it holds O1 from t=3); T0 arrives at t=4,
  // preempts via its higher PUD, acquires O0, computes to its inner
  // acquire, requests O1 -> blocked; T1 resumes, requests O0 -> cycle.
  sim.set_arrivals(1, {0});
  sim.set_arrivals(0, {usec(4)});
  const auto rep = sim.run();

  EXPECT_EQ(rep.deadlocks_resolved, 1);
  // The low-utility job (T1, which arrived first, job id 0) is the
  // victim; the high-utility T0 (job id 1) completes.
  const Job& victim = rep.jobs[0];
  const Job& survivor = rep.jobs[1];
  EXPECT_EQ(victim.task, 1);
  EXPECT_EQ(victim.state, JobState::kAborted);
  EXPECT_EQ(survivor.task, 0);
  EXPECT_EQ(survivor.state, JobState::kCompleted);
  bool saw_victim_line = false;
  for (const auto& line : rep.trace)
    saw_victim_line |= line.find("deadlock victim") != std::string::npos;
  EXPECT_TRUE(saw_victim_line);
}

TEST(NestedSim, DeadlockWithoutDetectionPinsUntilExpiry) {
  // Under EDF (no detection), the ABBA cycle pins both jobs; the first
  // critical-time expiry aborts its job, releasing the locks and
  // unblocking the survivor.  T0 gets the earlier critical time so EDF
  // preempts T1 with it (forming the cycle).
  TaskSet ts;
  ts.object_count = 2;
  ts.tasks.push_back(nested_task(
      0, usec(20), usec(300),
      {{0, usec(2), usec(18)}, {1, usec(10), usec(16)}}, 100.0));
  ts.tasks.push_back(nested_task(
      1, usec(20), usec(400),
      {{1, usec(2), usec(18)}, {0, usec(10), usec(16)}}, 5.0));
  ts.validate();
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(1);
  cfg.horizon = msec(2);
  Simulator sim(ts, edf, cfg);
  sim.set_arrivals(1, {0});
  sim.set_arrivals(0, {usec(4)});
  const auto rep = sim.run();
  EXPECT_EQ(rep.deadlocks_resolved, 0);
  // T0 is pinned past its critical time and aborted; the release then
  // lets T1 finish before its own critical time.
  EXPECT_EQ(rep.aborted, 1);
  EXPECT_EQ(rep.completed, 1);
  for (const Job& j : rep.jobs) {
    if (j.task == 0) {
      EXPECT_EQ(j.state, JobState::kAborted);
    }
    if (j.task == 1) {
      EXPECT_EQ(j.state, JobState::kCompleted);
    }
  }
}

TEST(NestedSim, VictimHandlerReleasesLocksAfterHandlerTime) {
  const TaskSet ts = abba_taskset();  // T1's handler takes 2us
  const sched::RuaScheduler rua(sched::Sharing::kLockBased, true);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(1);
  cfg.horizon = msec(2);
  Simulator sim(ts, rua, cfg);
  sim.set_arrivals(1, {0});
  sim.set_arrivals(0, {usec(4)});
  const auto rep = sim.run();
  // Survivor still completes; victim went through kAborting (handler).
  EXPECT_EQ(rep.deadlocks_resolved, 1);
  EXPECT_EQ(rep.completed, 1);
  EXPECT_EQ(rep.aborted, 1);
}

TEST(NestedSim, ContentionWithoutCycleJustBlocks) {
  // Both tasks take O0 then O1 in the SAME order: no deadlock possible;
  // the second requester blocks and proceeds after release.
  TaskSet ts;
  ts.object_count = 2;
  ts.tasks.push_back(nested_task(
      0, usec(20), usec(500),
      {{0, usec(2), usec(18)}, {1, usec(10), usec(16)}}, 100.0));
  // T1 has the earlier absolute critical time at its arrival, so it
  // preempts T0 *after* T0 has taken O0 — and then blocks on O0.
  ts.tasks.push_back(nested_task(
      1, usec(20), usec(400),
      {{0, usec(2), usec(18)}, {1, usec(10), usec(16)}}, 5.0));
  ts.validate();
  const sched::RuaScheduler rua(sched::Sharing::kLockBased, true);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(1);
  cfg.horizon = msec(2);
  Simulator sim(ts, rua, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(4)});
  const auto rep = sim.run();
  EXPECT_EQ(rep.deadlocks_resolved, 0);
  EXPECT_EQ(rep.completed, 2);
  EXPECT_GE(rep.total_blockings, 1);
}

TEST(NestedSim, ThreeWayCycleResolvedWithOneVictim) {
  // T0: O0 then O1; T1: O1 then O2; T2: O2 then O0 — a 3-cycle.
  TaskSet ts;
  ts.object_count = 3;
  // Ascending importance so each newcomer preempts the previous task
  // after it has taken its outer lock, building the 3-cycle.
  const double heights[] = {1.0, 50.0, 100.0};
  for (TaskId i = 0; i < 3; ++i) {
    // Descending critical times: each newcomer has the earliest
    // absolute critical time, so ECF dispatch preempts the current
    // holder after it took its outer lock.
    ts.tasks.push_back(nested_task(
        i, usec(30), usec(1000 - 200 * i),
        {{i, usec(2), usec(28)},
         {static_cast<ObjectId>((i + 1) % 3), usec(10), usec(26)}},
        heights[i]));
  }
  ts.validate();
  const sched::RuaScheduler rua(sched::Sharing::kLockBased, true);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(1);
  cfg.horizon = msec(5);
  Simulator sim(ts, rua, cfg);
  // Stagger past each outer acquire (offset 2us + 1us access).
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(4)});
  sim.set_arrivals(2, {usec(8)});
  const auto rep = sim.run();
  // One victim breaks the cycle; the other two complete.
  EXPECT_EQ(rep.deadlocks_resolved, 1);
  EXPECT_EQ(rep.completed, 2);
  EXPECT_EQ(rep.aborted, 1);
  // The victim is the least-utility-density job (T0).
  for (const Job& j : rep.jobs)
    if (j.state == JobState::kAborted) {
      EXPECT_EQ(j.task, 0);
    }
}

}  // namespace
}  // namespace lfrt
