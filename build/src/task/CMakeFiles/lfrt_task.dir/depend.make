# Empty dependencies file for lfrt_task.
# This may be replaced when dependencies are built.
