# Empty dependencies file for four_slot_test.
# This may be replaced when dependencies are built.
