# Empty dependencies file for lfrt_tuf.
# This may be replaced when dependencies are built.
