// Tests for the middleware-level UA executor (real threads, cooperative
// preemption, abort exceptions) — the paper's meta-scheduler substrate.
//
// Assertions are structural (states, counts, ordering), not wall-clock
// tight, so they hold on a loaded single-CPU host.
#include "rt/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "lockfree/msqueue.hpp"
#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "support/check.hpp"

namespace lfrt::rt {
namespace {

/// Busy work split into checkpointed quanta.
void spin_quanta(JobContext& ctx, int quanta,
                 std::chrono::microseconds per_quantum) {
  for (int q = 0; q < quanta; ++q) {
    const auto until = std::chrono::steady_clock::now() + per_quantum;
    while (std::chrono::steady_clock::now() < until) {
    }
    ctx.checkpoint();
  }
}

RtJob quick_job(double height, Time critical, std::atomic<int>* done,
                int quanta = 3) {
  RtJob job;
  job.tuf = make_step_tuf(height, critical);
  job.expected_exec = usec(300);
  job.body = [done, quanta](JobContext& ctx) {
    spin_quanta(ctx, quanta, std::chrono::microseconds(100));
    if (done) done->fetch_add(1);
  };
  return job;
}

TEST(Executor, SingleJobCompletes) {
  const sched::EdfScheduler edf;
  Executor ex(edf);
  std::atomic<int> done{0};
  ex.submit(quick_job(10.0, msec(500), &done));
  const auto rep = ex.shutdown();
  EXPECT_EQ(done.load(), 1);
  EXPECT_EQ(rep.submitted, 1);
  EXPECT_EQ(rep.completed, 1);
  EXPECT_EQ(rep.aborted, 0);
  EXPECT_DOUBLE_EQ(rep.aur(), 1.0);
}

TEST(Executor, ManyJobsAllComplete) {
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  Executor ex(rua);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i)
    ex.submit(quick_job(10.0 + i, msec(2000), &done));
  const auto rep = ex.shutdown();
  EXPECT_EQ(done.load(), 10);
  EXPECT_EQ(rep.completed, 10);
  EXPECT_DOUBLE_EQ(rep.aur(), 1.0);
}

TEST(Executor, HopelessJobIsAbortedAndHandlerRuns) {
  const sched::EdfScheduler edf;
  Executor ex(edf);
  std::atomic<int> handler_ran{0};
  std::atomic<int> body_finished{0};
  RtJob job;
  job.tuf = make_step_tuf(10.0, msec(5));  // 5ms critical time
  job.expected_exec = msec(100);
  job.body = [&](JobContext& ctx) {
    // Loops far beyond the critical time; must be aborted at a
    // checkpoint.
    spin_quanta(ctx, 10000, std::chrono::microseconds(100));
    body_finished.fetch_add(1);
  };
  job.abort_handler = [&] { handler_ran.fetch_add(1); };
  ex.submit(std::move(job));
  const auto rep = ex.shutdown();
  EXPECT_EQ(rep.aborted, 1);
  EXPECT_EQ(rep.completed, 0);
  EXPECT_EQ(handler_ran.load(), 1);
  EXPECT_EQ(body_finished.load(), 0);
  EXPECT_DOUBLE_EQ(rep.aur(), 0.0);
}

TEST(Executor, AbortedFlagVisibleInsideBody) {
  const sched::EdfScheduler edf;
  Executor ex(edf);
  std::atomic<bool> observed{false};
  RtJob job;
  job.tuf = make_step_tuf(10.0, msec(5));
  job.expected_exec = msec(50);
  job.body = [&](JobContext& ctx) {
    // Poll the abort flag without checkpointing until it trips, then
    // checkpoint to take the exception.
    while (!ctx.aborted()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    observed.store(true);
    ctx.checkpoint();  // throws JobAborted
  };
  ex.submit(std::move(job));
  const auto rep = ex.shutdown();
  EXPECT_TRUE(observed.load());
  EXPECT_EQ(rep.aborted, 1);
}

TEST(Executor, EdfOrdersCompletions) {
  // Three jobs submitted back-to-back with staggered critical times;
  // under EDF the earliest-critical job must finish first.
  const sched::EdfScheduler edf;
  Executor ex(edf);
  std::vector<int> order;
  std::mutex order_mu;
  auto make = [&](int tag, Time critical) {
    RtJob job;
    job.tuf = make_step_tuf(10.0, critical);
    job.expected_exec = msec(2);
    job.body = [&, tag](JobContext& ctx) {
      spin_quanta(ctx, 20, std::chrono::microseconds(100));
      std::lock_guard<std::mutex> g(order_mu);
      order.push_back(tag);
    };
    return job;
  };
  // Longest-deadline first into the queue, so EDF must reorder.
  ex.submit(make(2, msec(900)));
  ex.submit(make(1, msec(600)));
  ex.submit(make(0, msec(300)));
  const auto rep = ex.shutdown();
  ASSERT_EQ(rep.completed, 3);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
  // Reordering requires at least one preemption-driven redispatch.
  EXPECT_GE(rep.dispatches, 3);
}

TEST(Executor, UtilityAccruesByTuf) {
  // A linear TUF accrues partial utility depending on sojourn; with a
  // generous critical time the job completes early and the utility is
  // close to (but below) the maximum.
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  Executor ex(rua);
  RtJob job;
  job.tuf = make_linear_tuf(100.0, sec(10));
  job.expected_exec = msec(1);
  job.body = [](JobContext& ctx) {
    spin_quanta(ctx, 5, std::chrono::microseconds(100));
  };
  ex.submit(std::move(job));
  const auto rep = ex.shutdown();
  EXPECT_EQ(rep.completed, 1);
  EXPECT_GT(rep.accrued_utility, 90.0);
  EXPECT_LT(rep.accrued_utility, 100.0);
}

TEST(Executor, RejectsMalformedJobs) {
  const sched::EdfScheduler edf;
  Executor ex(edf);
  RtJob no_body;
  no_body.tuf = make_step_tuf(1.0, msec(10));
  no_body.expected_exec = usec(10);
  EXPECT_THROW(ex.submit(std::move(no_body)), InvariantViolation);
  RtJob no_tuf;
  no_tuf.expected_exec = usec(10);
  no_tuf.body = [](JobContext&) {};
  EXPECT_THROW(ex.submit(std::move(no_tuf)), InvariantViolation);
  (void)ex.shutdown();
}

TEST(Executor, SharedLockFreeQueueAcrossJobs) {
  // Two jobs stream items through a lock-free queue; conservation must
  // hold and no retries may be lost (counters merely non-negative).
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  Executor ex(rua);
  // Execution is serialized (one dispatched job at a time) and this
  // cooperative substrate re-dispatches only at scheduling events, so
  // the queue must hold the full stream: the producer (earlier critical
  // time) runs to completion, then the consumer drains.
  auto queue = std::make_shared<lockfree::MsQueue<int>>(1024);
  std::atomic<int> received{0};

  RtJob producer;
  producer.tuf = make_step_tuf(10.0, sec(2));
  producer.expected_exec = msec(1);
  producer.body = [queue](JobContext& ctx) {
    for (int i = 0; i < 1000; ++i) {
      while (!queue->enqueue(i)) ctx.checkpoint();
      if (i % 64 == 0) ctx.checkpoint();
    }
  };
  RtJob consumer;
  consumer.tuf = make_step_tuf(10.0, sec(5));
  consumer.expected_exec = msec(1);
  consumer.body = [queue, &received](JobContext&) {
    while (auto v = queue->dequeue()) received.fetch_add(1);
  };
  ex.submit(std::move(producer));
  ex.submit(std::move(consumer));
  const auto rep = ex.shutdown();
  EXPECT_EQ(rep.completed, 2);
  EXPECT_EQ(received.load(), 1000);
  EXPECT_GE(queue->stats().retry_count(), 0);
}

}  // namespace
}  // namespace lfrt::rt
