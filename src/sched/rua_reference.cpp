// Frozen copy of the seed's RuaScheduler::build.  See rua_reference.hpp
// for why this must stay untouched.  The only changes from the seed are
// mechanical: results are written into a caller-provided ScheduleResult
// (cleared first) to fit the build_into interface.
#include "sched/rua_reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace lfrt::sched {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Modelled cost of one lookup/insert/remove on an ordered list of
/// length `len` (paper, Section 3.6, step 5: "each of which costs
/// O(log n)").
std::int64_t ordered_op_cost(std::size_t len) {
  std::int64_t c = 1;
  while (len > 1) {
    ++c;
    len >>= 1;
  }
  return c;
}

/// One entry of the (tentative) schedule: a job plus its *effective*
/// critical time, which dependency clamping (Figure 4) may have lowered
/// below the job's own critical time.
struct Entry {
  std::size_t job = kNpos;  // index into the jobs vector
  Time eff_critical = 0;
};

/// First position whose effective critical time exceeds `eff` — the ECF
/// insertion point (stable: equal keys keep earlier entries first).
std::size_t ecf_index(const std::vector<Entry>& sched, Time eff) {
  std::size_t lo = 0, hi = sched.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (sched[mid].eff_critical <= eff)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

std::size_t find_entry(const std::vector<Entry>& sched, std::size_t job) {
  for (std::size_t i = 0; i < sched.size(); ++i)
    if (sched[i].job == job) return i;
  return kNpos;
}

}  // namespace

RuaReferenceScheduler::RuaReferenceScheduler(Sharing sharing,
                                             bool detect_deadlocks)
    : sharing_(sharing), detect_deadlocks_(detect_deadlocks) {}

std::string RuaReferenceScheduler::name() const {
  return sharing_ == Sharing::kLockFree ? "RUA-ref/lock-free"
                                        : "RUA-ref/lock-based";
}

void RuaReferenceScheduler::build_into(const std::vector<SchedJob>& jobs,
                                       Time now, Workspace* /*ws*/,
                                       ScheduleResult& out) const {
  out.clear();
  const std::size_t n = jobs.size();
  if (n == 0) return;

  std::unordered_map<JobId, std::size_t> index;
  index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index.emplace(jobs[i].id, i);
  out.ops += static_cast<std::int64_t>(n);

  // ---- Step 1: dependency chains (lock-based only) -------------------
  //
  // chains[i] runs from the job itself (tail) toward the deepest
  // dependency (head); under the single-unit resource model each job
  // waits on at most one holder, so the chain is a simple path unless a
  // cycle (deadlock) exists.
  std::vector<char> dead(n, 0);  // deadlock victims, excluded below
  std::vector<std::vector<std::size_t>> chains(n);

  auto follow = [&](std::size_t from) -> std::size_t {
    const JobId w = jobs[from].waits_on;
    if (w == kNoJob) return kNpos;
    const auto it = index.find(w);
    // A holder that already departed leaves no dependency to respect.
    return it == index.end() ? kNpos : it->second;
  };

  if (sharing_ == Sharing::kLockFree) {
    for (std::size_t i = 0; i < n; ++i) {
      LFRT_CHECK_MSG(jobs[i].waits_on == kNoJob,
                     "lock-free RUA saw a blocked job");
      chains[i] = {i};
    }
  } else {
    // ---- Step 3 pre-pass: cycle detection & resolution ---------------
    if (detect_deadlocks_) {
      std::vector<char> visited(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (visited[i]) continue;
        std::vector<std::size_t> path;
        std::vector<char> on_path(n, 0);
        std::size_t cur = i;
        while (cur != kNpos && !visited[cur] && !on_path[cur]) {
          on_path[cur] = 1;
          path.push_back(cur);
          cur = follow(cur);
          out.ops += 1;
        }
        if (cur != kNpos && on_path[cur]) {
          // Found a cycle starting at `cur`: abort the member that
          // would contribute the least utility per remaining time.
          std::size_t victim = kNpos;
          double worst = std::numeric_limits<double>::infinity();
          for (auto it = std::find(path.begin(), path.end(), cur);
               it != path.end(); ++it) {
            const auto& j = jobs[*it];
            const double density =
                j.remaining > 0
                    ? j.tuf->utility(now + j.remaining - j.arrival) /
                          static_cast<double>(j.remaining)
                    : std::numeric_limits<double>::infinity();
            if (density < worst) {
              worst = density;
              victim = *it;
            }
            out.ops += 1;
          }
          dead[victim] = 1;
          out.deadlock_victims.push_back(jobs[victim].id);
        }
        for (std::size_t p : path) visited[p] = 1;
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (dead[i]) continue;
      auto& chain = chains[i];
      chain.push_back(i);
      std::size_t cur = i;
      for (;;) {
        const std::size_t next = follow(cur);
        out.ops += 1;
        if (next == kNpos) break;
        // A victim releases its objects on abort: sever the chain there.
        if (dead[next]) break;
        if (std::find(chain.begin(), chain.end(), next) != chain.end()) {
          LFRT_CHECK_MSG(detect_deadlocks_,
                         "dependency cycle with deadlock detection off — "
                         "nested critical sections are excluded from this "
                         "configuration");
          break;  // unreachable: victims sever every cycle
        }
        chain.push_back(next);
        cur = next;
      }
    }
  }

  // ---- Step 2: potential utility densities ---------------------------
  //
  // PUD_i = (U_i(t_f) + sum_dep U_j(t_j)) / (t_f - now): the aggregate's
  // "return on investment", with completion estimates accumulated
  // deepest-dependency-first.
  std::vector<double> pud(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    Time cum = 0;
    double util = 0.0;
    for (auto it = chains[i].rbegin(); it != chains[i].rend(); ++it) {
      const auto& j = jobs[*it];
      cum += j.remaining;
      util += j.tuf->utility(now + cum - j.arrival);
      out.ops += 1;
    }
    pud[i] = cum > 0 ? util / static_cast<double>(cum)
                     : std::numeric_limits<double>::infinity();
  }

  // ---- Step 4: sort by non-increasing PUD ----------------------------
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (!dead[i]) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (pud[a] != pud[b]) return pud[a] > pud[b];
    if (jobs[a].critical != jobs[b].critical)
      return jobs[a].critical < jobs[b].critical;
    return jobs[a].id < jobs[b].id;
  });
  out.ops += static_cast<std::int64_t>(order.size()) *
             ordered_op_cost(order.size());

  // ---- Step 5: greedy aggregate insertion with feasibility tests -----
  std::vector<Entry> schedule;
  std::vector<char> in_schedule(n, 0);

  for (std::size_t i : order) {
    if (in_schedule[i]) continue;  // inserted earlier as a dependent

    std::vector<Entry> tentative = schedule;
    out.ops += static_cast<std::int64_t>(schedule.size());  // the copy

    // Insert the chain from tail (the job) toward head (deepest
    // dependency).  `dep_pos`/`dep_eff` track the previously inserted
    // chain member, which the current one must precede.
    std::size_t dep_pos = kNpos;
    Time dep_eff = kTimeNever;
    std::vector<std::size_t> newly;

    for (std::size_t k : chains[i]) {
      const std::size_t pos = find_entry(tentative, k);
      out.ops += ordered_op_cost(tentative.size());  // modelled lookup

      if (pos != kNpos) {
        if (dep_pos != kNpos && pos > dep_pos) {
          // Figure 5, Case 2: the already-present dependent sits after
          // the job that must follow it — remove, clamp, reinsert.
          Entry e = tentative[pos];
          tentative.erase(tentative.begin() +
                          static_cast<std::ptrdiff_t>(pos));
          e.eff_critical = std::min(e.eff_critical, dep_eff);
          std::size_t idx = std::min(ecf_index(tentative, e.eff_critical),
                                     dep_pos);
          tentative.insert(tentative.begin() +
                               static_cast<std::ptrdiff_t>(idx),
                           e);
          out.ops += 2 * ordered_op_cost(tentative.size());
          dep_pos = idx;
          dep_eff = e.eff_critical;
        } else {
          dep_pos = pos;
          dep_eff = tentative[pos].eff_critical;
        }
      } else {
        // Figure 4: clamp the dependent's critical time so the ECF order
        // stays consistent with the dependency order.
        Entry e{k, std::min(jobs[k].critical, dep_eff)};
        std::size_t idx = ecf_index(tentative, e.eff_critical);
        if (dep_pos != kNpos) idx = std::min(idx, dep_pos);
        tentative.insert(tentative.begin() +
                             static_cast<std::ptrdiff_t>(idx),
                         e);
        out.ops += ordered_op_cost(tentative.size());
        dep_pos = idx;
        dep_eff = e.eff_critical;
        newly.push_back(k);
      }
    }

    // Feasibility: every entry must finish by its effective critical
    // time when the tentative schedule is executed in order from `now`.
    bool feasible = true;
    Time finish = now;
    for (const Entry& e : tentative) {
      finish += jobs[e.job].remaining;
      out.ops += 1;
      if (finish > e.eff_critical) {
        feasible = false;
        break;
      }
    }

    if (feasible) {
      schedule = std::move(tentative);
      for (std::size_t k : newly) in_schedule[k] = 1;
    } else {
      out.rejected.push_back(jobs[i].id);
    }
  }

  out.schedule.reserve(schedule.size());
  for (const Entry& e : schedule) out.schedule.push_back(jobs[e.job].id);

  for (const Entry& e : schedule) {
    if (jobs[e.job].runnable()) {
      out.dispatch = jobs[e.job].id;
      break;
    }
  }
}

}  // namespace lfrt::sched
