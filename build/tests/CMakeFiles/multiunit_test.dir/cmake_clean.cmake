file(REMOVE_RECURSE
  "CMakeFiles/multiunit_test.dir/multiunit_test.cpp.o"
  "CMakeFiles/multiunit_test.dir/multiunit_test.cpp.o.d"
  "multiunit_test"
  "multiunit_test.pdb"
  "multiunit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiunit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
