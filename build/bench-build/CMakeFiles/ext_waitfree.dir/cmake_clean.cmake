file(REMOVE_RECURSE
  "../bench/ext_waitfree"
  "../bench/ext_waitfree.pdb"
  "CMakeFiles/ext_waitfree.dir/ext_waitfree.cpp.o"
  "CMakeFiles/ext_waitfree.dir/ext_waitfree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_waitfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
