#include "runtime/service.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>

#include "runtime/timer_wheel.hpp"
#include "support/check.hpp"

namespace lfrt::runtime {
namespace {

using Clock = std::chrono::steady_clock;

// Sliding-window utility-budget gate (the UAM ⟨l, a, W⟩ window as an
// enforcement).  Touched only by the executor's scheduling thread via
// the admission filter, so plain members suffice; `t` is monotone
// because that thread is the only caller.
struct BudgetGate {
  const double budget;
  const Time window;
  std::deque<std::pair<Time, double>> admitted;  // (admit time, U(0))
  double spent = 0.0;

  BudgetGate(double b, Time w) : budget(b), window(w) {}

  bool try_admit(Time t, double u) {
    while (!admitted.empty() && admitted.front().first + window <= t) {
      spent -= admitted.front().second;
      admitted.pop_front();
    }
    if (spent + u > budget) return false;
    admitted.emplace_back(t, u);
    spent += u;
    return true;
  }
};

}  // namespace

struct Service::Impl {
  const ServiceConfig cfg;
  rt::Executor ex;
  std::vector<rt::IngestLane*> lanes;
  std::atomic<bool> closed{false};
  std::atomic<std::int64_t> offered{0};
  std::atomic<std::int64_t> backpressured{0};
  Clock::time_point start = Clock::now();

  Impl(const sched::Scheduler& scheduler, ServiceConfig config)
      : cfg(std::move(config)), ex(scheduler, cfg.executor) {
    LFRT_CHECK_MSG(cfg.lanes >= 1, "ServiceConfig::lanes must be >= 1");
    LFRT_CHECK_MSG(cfg.lane_capacity >= 1,
                   "ServiceConfig::lane_capacity must be >= 1");
    lanes.reserve(static_cast<std::size_t>(cfg.lanes));
    for (int i = 0; i < cfg.lanes; ++i)
      lanes.push_back(&ex.open_lane(cfg.lane_capacity));
    if (cfg.window_utility_budget > 0 && cfg.admission_window > 0) {
      auto gate = std::make_shared<BudgetGate>(cfg.window_utility_budget,
                                               cfg.admission_window);
      auto degraded = cfg.degraded_tuf;
      const Clock::time_point epoch = start;
      ex.set_admission([gate, degraded, epoch](rt::RtJob& job) {
        const Time t = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - epoch)
                           .count();
        if (gate->try_admit(t, job.tuf->utility(0))) return rt::Admission::kAdmit;
        if (degraded) {
          // Renegotiated contract: run under the cheaper TUF instead
          // of shedding.  Bypasses the budget — degradation IS the
          // overload path.
          job.tuf = degraded;
          return rt::Admission::kDegrade;
        }
        return rt::Admission::kReject;
      });
    }
  }

  Time now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start)
        .count();
  }
};

Service::Service(const sched::Scheduler& scheduler, ServiceConfig config)
    : impl_(std::make_unique<Impl>(scheduler, std::move(config))) {}

Service::~Service() {
  if (impl_) impl_->closed.store(true, std::memory_order_release);
  // Executor's own destructor drains and joins.
}

bool Service::offer(int lane, rt::RtJob job) {
  Impl& im = *impl_;
  LFRT_CHECK_MSG(lane >= 0 && lane < static_cast<int>(im.lanes.size()),
                 "offer: lane out of range");
  if (im.closed.load(std::memory_order_acquire)) return false;
  if (im.lanes[static_cast<std::size_t>(lane)]->offer(std::move(job))) {
    im.offered.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  im.backpressured.fetch_add(1, std::memory_order_relaxed);
  return false;
}

std::int64_t Service::drive_open_loop(int lane,
                                      std::vector<ArrivalStream> streams) {
  Impl& im = *impl_;
  LFRT_CHECK_MSG(lane >= 0 && lane < static_cast<int>(im.lanes.size()),
                 "drive_open_loop: lane out of range");
  for (const auto& s : streams)
    LFRT_CHECK_MSG(s.make_job != nullptr, "ArrivalStream needs make_job");

  // One wheel per driver call: the caller thread owns the pacing, so
  // concurrent drivers on different lanes never share timer state
  // (the sharded-wheel layout, one shard per lane, with the shard
  // lifetime scoped to the drive).
  TimerWheel<std::size_t> wheel(im.cfg.wheel_granularity, im.cfg.wheel_slots);
  const Clock::time_point epoch = Clock::now();
  const auto now_ns = [&] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                epoch)
        .count();
  };
  for (std::size_t s = 0; s < streams.size(); ++s)
    for (const Time at : streams[s].arrivals) wheel.schedule(at, s);

  std::int64_t accepted = 0;
  while (!wheel.empty() && !im.closed.load(std::memory_order_acquire)) {
    const Time next = wheel.next_deadline();
    if (next == kTimeNever) break;
    std::this_thread::sleep_until(epoch + std::chrono::nanoseconds(next));
    // Open loop: everything due fires now even if we're behind
    // schedule — the arrival process never waits for the system.
    wheel.advance(now_ns(), [&](Time, std::size_t s) {
      if (im.closed.load(std::memory_order_acquire)) return;
      if (offer(lane, streams[s].make_job())) ++accepted;
    });
  }
  return accepted;
}

void Service::close_ingest() {
  impl_->closed.store(true, std::memory_order_release);
}

bool Service::ingest_closed() const {
  return impl_->closed.load(std::memory_order_acquire);
}

int Service::lane_count() const {
  return static_cast<int>(impl_->lanes.size());
}

ServiceReport Service::shutdown() {
  Impl& im = *impl_;
  close_ingest();
  ServiceReport rep;
  rep.exec = im.ex.shutdown();
  rep.offered = im.offered.load(std::memory_order_relaxed);
  rep.backpressured = im.backpressured.load(std::memory_order_relaxed);
  rep.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                im.start)
          .count();
  if (rep.wall_seconds > 0) {
    rep.ingest_jobs_per_sec =
        static_cast<double>(rep.offered) / rep.wall_seconds;
    rep.completed_jobs_per_sec =
        static_cast<double>(rep.exec.completed) / rep.wall_seconds;
    rep.utility_per_sec = rep.exec.accrued_utility / rep.wall_seconds;
  }
  return rep;
}

}  // namespace lfrt::runtime
