// Saturating int64 arithmetic for the analysis bounds.
//
// The Theorem-2/Theorem-3 terms multiply arrival rates by
// ceil(C_i / W_j) + 1; a task set with a near-horizon critical time and
// a tight window (large C_i, W_j == 1) overflows the naive product and
// a bound silently turns negative — which every "measured <= bound"
// gate then passes vacuously.  These helpers clamp to INT64_MAX
// instead: a saturated bound stays a *bound* (infinitely pessimistic,
// never unsound), and callers can still detect saturation by comparing
// against kSaturated.
#pragma once

#include <cstdint>
#include <limits>

namespace lfrt::support {

inline constexpr std::int64_t kSaturated =
    std::numeric_limits<std::int64_t>::max();

/// a + b clamped to INT64_MAX.  Requires a, b >= 0 (bound arithmetic is
/// non-negative by construction).
constexpr std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  return a > kSaturated - b ? kSaturated : a + b;
}

/// a * b clamped to INT64_MAX.  Requires a, b >= 0.
constexpr std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kSaturated / b ? kSaturated : a * b;
}

/// ceil(num / den) without the (num + den - 1) intermediate that
/// overflows for num near INT64_MAX.  Requires num >= 0, den > 0.
constexpr std::int64_t sat_ceil_div(std::int64_t num, std::int64_t den) {
  return num / den + (num % den != 0 ? 1 : 0);
}

}  // namespace lfrt::support
