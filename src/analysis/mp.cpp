#include "analysis/mp.hpp"

#include <algorithm>

#include "lockfree/backoff.hpp"
#include "runtime/shared_object.hpp"
#include "sched/dispatch.hpp"
#include "support/check.hpp"
#include "support/saturate.hpp"

namespace lfrt::analysis::mp {

namespace {

using runtime::ObjectImpl;
using runtime::ObjectKind;
using runtime::ObjectSpec;
using support::kSaturated;
using support::sat_add;
using support::sat_ceil_div;
using support::sat_mul;

/// Shared-state transitions per completed logical WRITE access, the
/// currency retries are charged in.  Executor constants (they dominate
/// the simulator's one-transition-per-write model):
///   queue: enqueue = link CAS + exactly-one tail swing, dequeue = head
///          swing + at most one tail fix -> 4 per push+pop write.
///   stack: one top swing per push and per pop -> 2 (elimination only
///          removes transitions).
///   buffer/snapshot: writers are wait-free (NBW / single-writer
///          snapshot) — their transitions only matter to READERS, and
///          at one bounded retry per completed attempt only in the
///          simulator's model.
std::int64_t transitions_per_write(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kQueue: return 4;
    case ObjectKind::kStack: return 2;
    case ObjectKind::kBuffer:
    case ObjectKind::kSnapshot: return 1;  // simulator read-retry charge
  }
  return 4;
}

/// Structure ops per logical access on the executor (each can sight one
/// stale lag at its start): queue/stack writes are push + pop.
std::int64_t structure_ops_per_write(ObjectKind kind) {
  return kind == ObjectKind::kQueue || kind == ObjectKind::kStack ? 2 : 1;
}

/// Lock acquisitions per logical access under a lock-based impl
/// (executor): queue/stack writes lock once for the insert and once for
/// the remove; everything else locks once.
std::int64_t holds_per_write(ObjectKind kind) {
  return kind == ObjectKind::kQueue || kind == ObjectKind::kStack ? 2 : 1;
}

/// Per-job hold count of task j on object o (write and read accesses;
/// nested spans hold once per span).
std::int64_t holds_per_job(const TaskSet& ts, TaskId j, ObjectId o,
                           ObjectKind kind) {
  const TaskParams& t = ts.by_id(j);
  std::int64_t holds = 0;
  for (const AccessSpec& a : t.accesses) {
    if (a.object != o) continue;
    holds = sat_add(holds, a.write ? holds_per_write(kind) : 1);
  }
  for (const LockSpan& s : t.spans)
    if (s.object == o) holds = sat_add(holds, 1);
  return holds;
}

bool task_reads(const TaskSet& ts, TaskId i, ObjectId o) {
  for (const AccessSpec& a : ts.by_id(i).accesses)
    if (a.object == o && !a.write) return true;
  return false;
}

double cell_slack(const CellCheck& c) {
  if (c.unbounded) return 1.0;
  if (c.bound == 0) return c.measured == 0 ? 1.0 : -1.0;
  return static_cast<double>(c.bound - c.measured) /
         static_cast<double>(c.bound);
}

}  // namespace

double CellCheck::slack() const { return cell_slack(*this); }

MpOptions options_from_selector(const sched::DispatchSelector& sel,
                                int cpu_count, Substrate substrate) {
  MpOptions opt;
  opt.cpu_count = cpu_count;
  opt.substrate = substrate;
  opt.conflict_groups = sel.conflict_groups();
  opt.strict_groups = sel.strict_groups();
  opt.placement = sel.options().placement;
  return opt;
}

std::int64_t overlapping_jobs(const TaskSet& ts, TaskId j, Time window) {
  const TaskParams& t = ts.by_id(j);
  const Time span = sat_add(window, t.critical_time());
  return sat_mul(t.arrival.max_per_window,
                 sat_add(sat_ceil_div(span, t.arrival.window), 1));
}

std::int64_t writes_to(const TaskSet& ts, TaskId i, ObjectId o) {
  std::int64_t n = 0;
  for (const AccessSpec& a : ts.by_id(i).accesses)
    if (a.object == o && a.write) ++n;
  for (const LockSpan& s : ts.by_id(i).spans)
    if (s.object == o) ++n;
  return n;
}

std::int64_t accesses_to(const TaskSet& ts, TaskId i, ObjectId o) {
  std::int64_t n = 0;
  for (const AccessSpec& a : ts.by_id(i).accesses)
    if (a.object == o) ++n;
  for (const LockSpan& s : ts.by_id(i).spans)
    if (s.object == o) ++n;
  return n;
}

bool co_dispatch_prevented(const MpOptions& opt, TaskId i, TaskId j) {
  if (!opt.strict_groups || opt.conflict_groups.empty()) return false;
  const auto group = [&](TaskId t) -> std::int32_t {
    if (t < 0 || static_cast<std::size_t>(t) >= opt.conflict_groups.size())
      return -1;
    return opt.conflict_groups[static_cast<std::size_t>(t)];
  };
  const std::int32_t gi = group(i);
  return gi >= 0 && gi == group(j);
}

bool placement_separated(const MpOptions& opt, const ObjectSpec& spec,
                         TaskId i, TaskId j) {
  if (!runtime::is_scoped_kind(spec.kind)) return false;
  const sched::Placement& p = opt.placement;
  if (p.global() || !p.scope_objects) return false;
  const std::int32_t ci = p.cluster_of_task(i);
  const std::int32_t cj = p.cluster_of_task(j);
  return ci >= 0 && cj >= 0 && ci != cj;
}

std::int64_t retry_job_bound(const TaskSet& ts, TaskId i, ObjectId o,
                             const ObjectSpec& spec, const MpOptions& opt) {
  if (runtime::is_lock_based(spec.impl)) return 0;  // locks never retry
  if (accesses_to(ts, i, o) == 0) return 0;
  const bool rw_kind = spec.kind == ObjectKind::kBuffer ||
                       spec.kind == ObjectKind::kSnapshot;
  if (rw_kind) {
    // Wait-free writers never retry; only readers pay, and on the
    // executor they pay per spin ITERATION while a writer is mid-flight
    // — a duration-coupled count no arrival curve bounds.
    if (!task_reads(ts, i, o)) return 0;
    if (opt.substrate == Substrate::kExecutor) return kSaturated;
  }
  // Transition charge: each retry of one job consumes a distinct
  // conflicting transition that overlaps it (the job's attempts are
  // sequential, so one transition fails at most one of them), plus one
  // stale-lag sighting per own structure op.
  const Time ci = ts.by_id(i).critical_time();
  std::int64_t conflict = 0;
  for (const TaskParams& tj : ts.tasks) {
    if (co_dispatch_prevented(opt, i, tj.id) && tj.id != i) continue;
    // Disjoint per-cluster instances: tj's writes land on a structure
    // task i never reads — zero transitions chargeable to i's retries.
    if (tj.id != i && placement_separated(opt, spec, i, tj.id)) continue;
    const std::int64_t w = writes_to(ts, tj.id, o);
    if (w == 0) continue;
    std::int64_t ovl = overlapping_jobs(ts, tj.id, ci);
    if (tj.id == i) {
      // The job's own writes cannot fail its own attempts; same-task
      // peers can, unless strict grouping bars even them.
      if (co_dispatch_prevented(opt, i, i)) continue;
      ovl = std::max<std::int64_t>(0, ovl - 1);
    }
    conflict = sat_add(
        conflict, sat_mul(sat_mul(w, transitions_per_write(spec.kind)), ovl));
  }
  const std::int64_t stale = rw_kind
                                 ? 0
                                 : sat_mul(structure_ops_per_write(spec.kind),
                                           writes_to(ts, i, o));
  return sat_add(conflict, stale);
}

std::int64_t blocking_job_bound(const TaskSet& ts, TaskId i, ObjectId o,
                                const ObjectSpec& spec, const MpOptions& opt) {
  if (!runtime::is_lock_based(spec.impl)) return 0;  // no locks to block on
  const std::int64_t own = holds_per_job(ts, i, o, spec.kind);
  if (own == 0) return 0;
  // Conflicting-hold charge: one hold blocks this job at most once.
  const Time ci = ts.by_id(i).critical_time();
  std::int64_t conflict = 0;
  for (const TaskParams& tj : ts.tasks) {
    if (co_dispatch_prevented(opt, i, tj.id) && tj.id != i) continue;
    // Disjoint per-cluster instances: tj holds a different lock.
    if (tj.id != i && placement_separated(opt, spec, i, tj.id)) continue;
    const std::int64_t holds = holds_per_job(ts, tj.id, o, spec.kind);
    if (holds == 0) continue;
    std::int64_t ovl = overlapping_jobs(ts, tj.id, ci);
    if (tj.id == i) {
      if (co_dispatch_prevented(opt, i, i)) continue;
      ovl = std::max<std::int64_t>(0, ovl - 1);
    }
    conflict = sat_add(conflict, sat_mul(holds, ovl));
  }
  // The executor additionally records at most one blocking per own
  // acquisition; the simulator can re-block one access once per
  // intervening conflicting hold, so only the conflict charge holds
  // there.
  if (opt.substrate == Substrate::kExecutor)
    return std::min(conflict, own);
  return conflict;
}

namespace {

/// Shared body of the two worker_cap forms: `exclude(t)` drops
/// accessors that cannot touch the viewpoint instance.
template <typename Exclude>
std::int64_t worker_cap_impl(const TaskSet& ts, ObjectId o,
                             const MpOptions& opt, Exclude exclude) {
  // Accessor tasks, with strict conflict groups collapsed to one slot
  // each (two same-group tasks never co-dispatch).
  std::int64_t ungrouped = 0;
  std::vector<std::int32_t> groups_seen;
  for (const TaskParams& t : ts.tasks) {
    if (accesses_to(ts, t.id, o) == 0) continue;
    if (exclude(t.id)) continue;
    std::int32_t g = -1;
    if (opt.strict_groups &&
        static_cast<std::size_t>(t.id) < opt.conflict_groups.size())
      g = opt.conflict_groups[static_cast<std::size_t>(t.id)];
    if (g < 0) {
      ++ungrouped;
    } else if (std::find(groups_seen.begin(), groups_seen.end(), g) ==
               groups_seen.end()) {
      groups_seen.push_back(g);
    }
  }
  const std::int64_t accessors =
      ungrouped + static_cast<std::int64_t>(groups_seen.size());
  return std::max<std::int64_t>(
      1, std::min<std::int64_t>(opt.cpu_count, accessors));
}

}  // namespace

std::int64_t worker_cap(const TaskSet& ts, ObjectId o, const MpOptions& opt) {
  return worker_cap_impl(ts, o, opt, [](TaskId) { return false; });
}

std::int64_t worker_cap(const TaskSet& ts, ObjectId o, const MpOptions& opt,
                        const ObjectSpec& spec, TaskId i) {
  return worker_cap_impl(ts, o, opt, [&](TaskId t) {
    return t != i && placement_separated(opt, spec, i, t);
  });
}

namespace {

/// Shared body of the two conflicting_jobs forms.
template <typename Exclude>
std::int64_t conflicting_jobs_impl(const TaskSet& ts, TaskId i, ObjectId o,
                                   const MpOptions& opt, Exclude exclude) {
  const Time ci = ts.by_id(i).critical_time();
  std::int64_t n = 0;
  for (const TaskParams& tj : ts.tasks) {
    if (accesses_to(ts, tj.id, o) == 0) continue;
    if (co_dispatch_prevented(opt, i, tj.id) && tj.id != i) continue;
    if (tj.id != i && exclude(tj.id)) continue;
    std::int64_t ovl = overlapping_jobs(ts, tj.id, ci);
    if (tj.id == i) {
      if (co_dispatch_prevented(opt, i, i)) continue;
      ovl = std::max<std::int64_t>(0, ovl - 1);
    }
    n = sat_add(n, ovl);
  }
  return n;
}

}  // namespace

std::int64_t conflicting_jobs(const TaskSet& ts, TaskId i, ObjectId o,
                              const MpOptions& opt) {
  return conflicting_jobs_impl(ts, i, o, opt, [](TaskId) { return false; });
}

std::int64_t conflicting_jobs(const TaskSet& ts, TaskId i, ObjectId o,
                              const MpOptions& opt, const ObjectSpec& spec) {
  return conflicting_jobs_impl(ts, i, o, opt, [&](TaskId t) {
    return placement_separated(opt, spec, i, t);
  });
}

Time spin_block_time_bound(const TaskSet& ts, TaskId i, ObjectId o,
                           const ObjectSpec& spec,
                           const runtime::CostModel& model,
                           const MpOptions& opt) {
  if (!runtime::is_lock_based(spec.impl)) return 0;
  const std::int64_t own = holds_per_job(ts, i, o, spec.kind);
  if (own == 0) return 0;
  const std::int64_t n = conflicting_jobs(ts, i, o, opt, spec);
  const std::int64_t w = worker_cap(ts, o, opt, spec, i);
  // Contenders per critical section: the paper's min(m_i, n_i) cap,
  // object-resolved and further capped by the workers that can spin at
  // once.
  const std::int64_t contenders = std::min<std::int64_t>(
      {accesses_to(ts, i, o), n, std::max<std::int64_t>(0, w - 1)});
  const Time r_eff = runtime::access_cost(
      model.at(spec.kind, spec.impl), spec.kind,
      /*write=*/spec.kind != ObjectKind::kSnapshot, contenders);
  // FIFO locks (ticket/anderson/mcs): each acquisition waits out at
  // most min(W - 1, n) predecessor critical sections.  Unordered mutex:
  // every conflicting hold can barge ahead somewhere, but each delays
  // this job at most once overall — the total conflicting-hold charge
  // caps both disciplines.
  const bool fifo = spec.impl != ObjectImpl::kMutex;
  const std::int64_t per_acq =
      fifo ? std::min<std::int64_t>(std::max<std::int64_t>(0, w - 1), n) : n;
  std::int64_t waits = sat_mul(own, per_acq);
  std::int64_t conflict_holds = 0;
  const Time ci = ts.by_id(i).critical_time();
  for (const TaskParams& tj : ts.tasks) {
    if (tj.id == i) continue;
    if (co_dispatch_prevented(opt, i, tj.id)) continue;
    if (placement_separated(opt, spec, i, tj.id)) continue;
    conflict_holds = sat_add(
        conflict_holds, sat_mul(holds_per_job(ts, tj.id, o, spec.kind),
                                overlapping_jobs(ts, tj.id, ci)));
  }
  waits = std::min(waits, conflict_holds);
  return sat_mul(waits, r_eff);
}

Time retry_time_bound(const TaskSet& ts, TaskId i, ObjectId o,
                      const ObjectSpec& spec, const runtime::CostModel& model,
                      const MpOptions& opt) {
  const std::int64_t count = retry_job_bound(ts, i, o, spec, opt);
  if (count == 0) return 0;
  if (count == kSaturated) return kTimeNever;
  const std::int64_t contenders = std::min<std::int64_t>(
      accesses_to(ts, i, o), conflicting_jobs(ts, i, o, opt, spec));
  const Time s_retry = runtime::access_cost(
      model.at(spec.kind, spec.impl), spec.kind,
      /*write=*/spec.kind != ObjectKind::kSnapshot, contenders,
      /*retries=*/1);
  return sat_mul(count, s_retry);
}

Certificate certify(const runtime::RunReport& rep, const TaskSet& ts,
                    const std::vector<ObjectSpec>& specs,
                    const runtime::CostModel& model, const MpOptions& opt) {
  Certificate cert;
  const runtime::ContentionMatrix& m = rep.contention;
  if (m.empty()) return cert;  // nothing attributed, nothing to certify
  LFRT_CHECK_MSG(static_cast<std::size_t>(m.objects) == specs.size(),
                 "certify: heatmap rows != object specs");
  LFRT_CHECK_MSG(static_cast<std::size_t>(m.tasks) == ts.tasks.size(),
                 "certify: heatmap columns != task set");

  const auto check_cell = [&](std::vector<CellCheck>& out, ObjectId o,
                              TaskId t, std::int64_t measured,
                              std::int64_t per_job, std::int64_t jobs) {
    CellCheck c;
    c.object = o;
    c.task = t;
    c.measured = measured;
    c.unbounded = per_job == kSaturated;
    c.bound = c.unbounded ? kSaturated : sat_mul(per_job, jobs);
    c.ok = c.unbounded || measured <= c.bound;
    ++cert.cells_checked;
    if (!c.ok) {
      ++cert.violations;
      cert.ok = false;
    }
    if (!c.unbounded && c.bound > 0)
      cert.min_slack = std::min(cert.min_slack, c.slack());
    out.push_back(c);
  };

  for (const TaskParams& t : ts.tasks) {
    const std::int64_t jobs = rep.breakdown_of(t.id).jobs;
    for (ObjectId o = 0; o < m.objects; ++o) {
      const ObjectSpec& spec = specs[static_cast<std::size_t>(o)];
      const runtime::ContentionCell& cell = m.at(o, t.id);
      check_cell(cert.retries, o, t.id, cell.retries,
                 retry_job_bound(ts, t.id, o, spec, opt), jobs);
      check_cell(cert.blockings, o, t.id, cell.blockings,
                 blocking_job_bound(ts, t.id, o, spec, opt), jobs);
    }

    // Backoff-ladder invariant, worst job of the task: every recorded
    // retry pauses at most Backoff::kMaxSpins relax hints.
    BackoffCheck bc;
    bc.task = t.id;
    for (const Job& j : rep.jobs) {
      if (j.task != t.id) continue;
      const std::int64_t bound =
          sat_mul(lockfree::Backoff::kMaxSpins, j.retries);
      if (j.backoff_spins > bound) {
        bc.ok = false;
        bc.measured = j.backoff_spins;
        bc.bound = bound;
      } else if (bc.ok && j.backoff_spins >= bc.measured) {
        bc.measured = j.backoff_spins;
        bc.bound = bound;
      }
    }
    ++cert.cells_checked;
    if (!bc.ok) {
      ++cert.violations;
      cert.ok = false;
    }
    cert.backoff.push_back(bc);

    TaskTimeBounds tb;
    tb.task = t.id;
    for (ObjectId o = 0; o < m.objects; ++o) {
      const ObjectSpec& spec = specs[static_cast<std::size_t>(o)];
      tb.spin_block_time = sat_add(
          tb.spin_block_time,
          spin_block_time_bound(ts, t.id, o, spec, model, opt));
      tb.retry_time = sat_add(tb.retry_time,
                              retry_time_bound(ts, t.id, o, spec, model, opt));
    }
    cert.time_bounds.push_back(tb);
  }
  return cert;
}

}  // namespace lfrt::analysis::mp
