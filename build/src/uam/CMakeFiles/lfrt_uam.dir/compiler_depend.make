# Empty compiler generated dependencies file for lfrt_uam.
# This may be replaced when dependencies are built.
