// Elimination front for push–pop pairs (Hendler/Shavit-style, bounded).
//
// A LIFO stack admits a degenerate linearization: a push immediately
// followed by a pop of the same element leaves the stack untouched, so
// a concurrent push/pop pair may *eliminate* — exchange the value
// through a side slot and skip the top-of-stack CAS entirely.  Under a
// retry storm on `top_` that is exactly the pair most likely to
// collide, so the front converts the worst conflicts into zero shared-
// state traffic.  (FIFO queues admit no such linearization — an
// eliminated enqueue/dequeue pair would reorder against elements
// already queued — so ShardedQueue deliberately has no front.)
//
// Protocol per slot (one atomic word):
//   EMPTY -> WAITING(value)   pusher advertises, bounded spin
//   WAITING -> TAKEN          popper claims the value
//   TAKEN -> EMPTY            pusher acknowledges, returns success
//   WAITING -> EMPTY          pusher times out, falls back to the stack
//
// The advertisement window is a bounded spin (kWindowSpins relax
// hints): the pusher's operation must be complete when it returns, so
// it can never park inside the front.  A popper that claims a stale-
// looking WAITING word always claims a *live* advertisement (the word
// is only ever installed by a pusher currently inside exchange_push),
// so every successful claim is a real pairing — count conservation
// holds by construction: an eliminated pair contributes +1 push and
// +1 pop to the operation ledger and 0 elements to the stripes.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "lockfree/backoff.hpp"

namespace lfrt::lockfree {

/// Elimination array for int-valued stacks (the value type the unified
/// shared-object layer traffics in).  Slot count and window are small
/// compile-time constants: the front is an opportunistic fast path, not
/// a queue of its own.
class EliminationArray {
 public:
  static constexpr std::size_t kSlots = 4;
  static constexpr int kWindowSpins = 64;

  /// Pusher side: advertise `value` briefly; true when a popper took it
  /// (the push is done), false when the caller must fall back to the
  /// underlying stack.
  bool exchange_push(int value) {
    const std::size_t s = slot_of(value);
    const std::uint64_t waiting = encode(value);
    std::uint64_t expected = kEmpty;
    if (!slots_[s].word.compare_exchange_strong(expected, waiting,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed))
      return false;  // slot busy: no front this time
    for (int i = 0; i < kWindowSpins; ++i) {
      if (slots_[s].word.load(std::memory_order_acquire) == kTaken) {
        slots_[s].word.store(kEmpty, std::memory_order_release);
        return true;
      }
      cpu_relax();
    }
    expected = waiting;
    if (slots_[s].word.compare_exchange_strong(expected, kEmpty,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire))
      return false;  // window expired unclaimed
    // Lost the race to a popper that claimed at the last instant.
    slots_[s].word.store(kEmpty, std::memory_order_release);
    return true;
  }

  /// Popper side: claim any waiting pusher's value, if one is there.
  std::optional<int> exchange_pop() {
    for (std::size_t s = 0; s < kSlots; ++s) {
      std::uint64_t w = slots_[s].word.load(std::memory_order_acquire);
      if (w == kEmpty || w == kTaken) continue;
      if (slots_[s].word.compare_exchange_strong(w, kTaken,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed))
        return decode(w);
    }
    return std::nullopt;
  }

 private:
  // Word layout: 0 = EMPTY, 1 = TAKEN, else WAITING with the value in
  // the low 32 bits and a marker bit keeping any value distinct from
  // the two sentinels.
  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::uint64_t kTaken = 1;
  static constexpr std::uint64_t kWaitingBit = std::uint64_t{1} << 63;

  static std::uint64_t encode(int v) {
    return kWaitingBit | static_cast<std::uint32_t>(v);
  }
  static int decode(std::uint64_t w) {
    return static_cast<int>(static_cast<std::uint32_t>(w));
  }
  static std::size_t slot_of(int v) {
    return static_cast<std::uint32_t>(v) % kSlots;
  }

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> word{kEmpty};
  };
  Slot slots_[kSlots];
};

}  // namespace lfrt::lockfree
