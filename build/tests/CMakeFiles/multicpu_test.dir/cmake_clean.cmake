file(REMOVE_RECURSE
  "CMakeFiles/multicpu_test.dir/multicpu_test.cpp.o"
  "CMakeFiles/multicpu_test.dir/multicpu_test.cpp.o.d"
  "multicpu_test"
  "multicpu_test.pdb"
  "multicpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
