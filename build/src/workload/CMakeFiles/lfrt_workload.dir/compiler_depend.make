# Empty compiler generated dependencies file for lfrt_workload.
# This may be replaced when dependencies are built.
