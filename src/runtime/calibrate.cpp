#include "runtime/calibrate.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "runtime/json_min.hpp"

namespace lfrt::runtime {
namespace {

// One cached measurement.  Entries are keyed by (host, cpus, samples):
// access times are a property of the machine and the sample budget, not
// of the workload shape, so distinct benches on one host share a hit.
struct CacheEntry {
  std::string host;
  std::int64_t cpus = 0;
  std::int64_t samples = 0;
  Time lockfree_ns = 0;
  Time lock_ns = 0;
};

std::string host_name() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf[0] != '\0' ? std::string(buf) : std::string("unknown");
}

std::int64_t cpu_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::int64_t>(n);
}

std::vector<CacheEntry> load_cache(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  std::vector<CacheEntry> entries;
  try {
    const jsonmin::JsonValue root = jsonmin::Parser(buf.str()).parse();
    const jsonmin::JsonObject* o = root.as_object();
    if (o == nullptr) return {};
    const jsonmin::JsonValue* ev = jsonmin::find(*o, "entries");
    const jsonmin::JsonArray* arr = ev != nullptr ? ev->as_array() : nullptr;
    if (arr == nullptr) return {};
    for (const jsonmin::JsonValue& v : *arr) {
      const jsonmin::JsonObject* eo = v.as_object();
      if (eo == nullptr) continue;
      CacheEntry e;
      const jsonmin::JsonValue* h = jsonmin::find(*eo, "host");
      const std::string* hs = h != nullptr ? h->as_string() : nullptr;
      if (hs == nullptr) continue;
      e.host = *hs;
      e.cpus = jsonmin::get_int(*eo, "cpus");
      e.samples = jsonmin::get_int(*eo, "samples");
      e.lockfree_ns = jsonmin::get_int(*eo, "lockfree_ns");
      e.lock_ns = jsonmin::get_int(*eo, "lock_ns");
      if (e.lockfree_ns > 0 && e.lock_ns > 0) entries.push_back(std::move(e));
    }
  } catch (const std::exception&) {
    // A corrupt cache is indistinguishable from no cache.
    return {};
  }
  return entries;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void store_cache(const std::string& path,
                 const std::vector<CacheEntry>& entries) {
  std::string out = "{\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const CacheEntry& e = entries[i];
    if (i > 0) out += ',';
    out += "{\"host\":";
    append_json_string(out, e.host);
    out += ",\"cpus\":" + std::to_string(e.cpus);
    out += ",\"samples\":" + std::to_string(e.samples);
    out += ",\"lockfree_ns\":" + std::to_string(e.lockfree_ns);
    out += ",\"lock_ns\":" + std::to_string(e.lock_ns);
    out += '}';
  }
  out += "]}\n";
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), ec);
  std::ofstream f(path, std::ios::trunc);
  if (f) f << out;  // best-effort: an unwritable cache is not an error
}

}  // namespace

std::string calibration_cache_path() {
  if (const char* env = std::getenv("LFRT_CALIBRATION_CACHE");
      env != nullptr && env[0] != '\0')
    return env;
  if (const char* home = std::getenv("HOME");
      home != nullptr && home[0] != '\0')
    return std::string(home) + "/.cache/lfrt_calibration.json";
  return ".lfrt_calibration.json";
}

AccessCalibration calibrate_access_times(const rt::AccessTimeConfig& mcfg) {
  const rt::AccessTimeResult lf = rt::measure_lockfree_access(mcfg);
  const rt::AccessTimeResult lb = rt::measure_lockbased_access(mcfg);
  AccessCalibration cal;
  cal.lockfree_access_time = std::max<Time>(
      1, static_cast<Time>(std::llround(lf.per_access_ns.mean())));
  cal.lock_access_time = std::max<Time>(
      1, static_cast<Time>(std::llround(lb.per_access_ns.mean())));
  cal.samples = mcfg.samples;
  return cal;
}

AccessCalibration calibrate(ExecConfig& cfg, const TaskSet& ts,
                            std::int64_t samples,
                            const CalibrateOptions& opts) {
  const std::string path =
      opts.cache_path.empty() ? calibration_cache_path() : opts.cache_path;
  const std::string host = host_name();
  const std::int64_t cpus = cpu_count();

  if (opts.use_cache && !opts.force) {
    for (const CacheEntry& e : load_cache(path)) {
      if (e.host == host && e.cpus == cpus && e.samples == samples) {
        AccessCalibration cal;
        cal.lockfree_access_time = e.lockfree_ns;
        cal.lock_access_time = e.lock_ns;
        cal.samples = e.samples;
        cal.from_cache = true;
        cfg.sim_lockfree_access_time = cal.lockfree_access_time;
        cfg.sim_lock_access_time = cal.lock_access_time;
        return cal;
      }
    }
  }

  rt::AccessTimeConfig mcfg;
  mcfg.object_count = std::max<std::int32_t>(1, ts.object_count);
  mcfg.task_count =
      std::max<std::int32_t>(1, static_cast<std::int32_t>(ts.tasks.size()));
  mcfg.samples = samples;
  const AccessCalibration cal = calibrate_access_times(mcfg);
  cfg.sim_lockfree_access_time = cal.lockfree_access_time;
  cfg.sim_lock_access_time = cal.lock_access_time;

  if (opts.use_cache) {
    std::vector<CacheEntry> entries = load_cache(path);
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const CacheEntry& e) {
                                   return e.host == host && e.cpus == cpus &&
                                          e.samples == samples;
                                 }),
                  entries.end());
    entries.push_back({host, cpus, samples, cal.lockfree_access_time,
                       cal.lock_access_time});
    store_cache(path, entries);
  }
  return cal;
}

}  // namespace lfrt::runtime
