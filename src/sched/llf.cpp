#include "sched/llf.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lfrt::sched {

std::unique_ptr<Scheduler::Workspace> LlfScheduler::make_workspace() const {
  return std::make_unique<OrderWorkspace>();
}

void LlfScheduler::build_into(const std::vector<SchedJob>& jobs, Time now,
                              Workspace* ws, ScheduleResult& out) const {
  out.clear();
  OrderWorkspace transient;
  auto* w = ws ? dynamic_cast<OrderWorkspace*>(ws) : &transient;
  LFRT_CHECK_MSG(w != nullptr,
                 "LlfScheduler::build_into given a foreign workspace");
  auto& order = w->order;
  order.resize(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto laxity = [&](std::size_t i) {
    return jobs[i].critical - now - jobs[i].remaining;
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (laxity(a) != laxity(b)) return laxity(a) < laxity(b);
    return jobs[a].id < jobs[b].id;
  });
  std::int64_t cost = 1;
  for (std::size_t len = jobs.size(); len > 1; len >>= 1) ++cost;
  out.ops = static_cast<std::int64_t>(jobs.size()) * cost;

  out.schedule.reserve(order.size());
  for (std::size_t i : order) out.schedule.push_back(jobs[i].id);
  for (std::size_t i : order) {
    if (jobs[i].runnable()) {
      out.dispatch = jobs[i].id;
      break;
    }
  }
}

}  // namespace lfrt::sched
