file(REMOVE_RECURSE
  "../bench/ext_multiprocessor"
  "../bench/ext_multiprocessor.pdb"
  "CMakeFiles/ext_multiprocessor.dir/ext_multiprocessor.cpp.o"
  "CMakeFiles/ext_multiprocessor.dir/ext_multiprocessor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
