#!/usr/bin/env bash
# Full correctness + smoke gate:
#   1. ASan+UBSan build of the whole tree, tier-1 suite under the
#      sanitizers (catches lifetime bugs in the in-place RUA schedule
#      editing that plain tests cannot see),
#   2. -O2 build, tier-1 suite, and a tiny sched_throughput sweep as a
#      bench smoke test (also re-checks the optimized-vs-reference ops
#      cross-validation built into the benchmark).
#
# Usage: scripts/check.sh [jobs]      (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> [1/2] sanitizer build + tests (build-asan/)"
cmake -B build-asan -S . -DLFRT_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "==> [2/2] optimized build + tests + bench smoke (build-o2/)"
cmake -B build-o2 -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-o2 -j "$JOBS"
ctest --test-dir build-o2 --output-on-failure -j "$JOBS"
./build-o2/bench/sched_throughput --tiny --out build-o2/BENCH_sched_smoke.json
echo "OK: sanitizers clean, tier-1 green twice, bench smoke passed"
