file(REMOVE_RECURSE
  "liblfrt_task.a"
)
