// Tests for the Chrome-tracing exporter.
#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sched/edf.hpp"
#include "sim/simulator.hpp"

namespace lfrt {
namespace {

std::pair<TaskSet, sim::SimReport> run_small() {
  TaskSet ts;
  ts.object_count = 0;
  for (TaskId i = 0; i < 2; ++i) {
    TaskParams p;
    p.id = i;
    p.arrival = UamSpec{1, 1, usec(100)};
    p.tuf = make_step_tuf(10.0, usec(100));
    p.exec_time = usec(10);
    ts.tasks.push_back(std::move(p));
  }
  ts.validate();
  const sched::EdfScheduler edf;
  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kIdeal;
  cfg.record_slices = true;
  cfg.horizon = usec(300);
  sim::Simulator s(ts, edf, cfg);
  s.set_arrivals(0, {0});
  s.set_arrivals(1, {usec(2)});
  return {ts, s.run()};
}

TEST(TraceExport, EmitsWellFormedEventArray) {
  const auto [ts, rep] = run_small();
  const std::string json = sim::to_chrome_trace(ts, rep);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  // One metadata record per task, one complete event per slice.
  EXPECT_NE(json.find(R"("ph":"M")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"job 0")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"job 1")"), std::string::npos);
  // Balanced braces (cheap well-formedness proxy).
  std::int64_t depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  // Durations in microseconds: job 0 ran 10us.
  EXPECT_NE(json.find(R"("dur":10)"), std::string::npos);
}

TEST(TraceExport, WritesFile) {
  const auto [ts, rep] = run_small();
  const std::string path = "/tmp/lfrt_trace_test.json";
  ASSERT_TRUE(sim::write_chrome_trace(ts, rep, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "[");
  std::remove(path.c_str());
}

TEST(TraceExport, FailsCleanlyOnBadPath) {
  const auto [ts, rep] = run_small();
  EXPECT_FALSE(
      sim::write_chrome_trace(ts, rep, "/nonexistent/dir/x.json"));
}

TEST(TraceExport, EmptySlicesStillValid) {
  const auto [ts, rep_full] = run_small();
  sim::SimReport empty;
  const std::string json = sim::to_chrome_trace(ts, empty);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("ph":"M")"), std::string::npos);
  EXPECT_EQ(json.find(R"("ph":"X")"), std::string::npos);
}

}  // namespace
}  // namespace lfrt
