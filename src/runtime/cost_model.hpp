// Per-(kind, impl) access cost model for the simulator.
//
// The paper's timing analysis reduces every shared-object access to two
// scalars: s (one lock-free attempt) and r (one lock-based critical
// section).  That was honest while the repo had exactly one lock; with
// the zoo (lockbased/locks.hpp) the mechanisms differ precisely in how
// cost *scales* with contention — the thing a flat scalar can't say:
//
//   * ticket   — every waiter spins on one word, every release
//                invalidates all of them: cost ≈ base + c·contenders
//                with a visible per-contender slope.
//   * anderson — same linear hand-down-the-line FIFO, but each release
//                touches one padded slot: smaller slope than ticket.
//   * mcs      — handoff is one remote store into the successor's own
//                node: near-flat (slope ≈ 0).
//   * mutex    — whatever the platform lock does; measured, not assumed.
//   * lock-free snapshot — double-collect reads are O(segments) with a
//                retry term; queue/stack CAS attempts are near-flat per
//                attempt (interference shows up as retries, which the
//                simulator models separately as f_i events).
//
// A CostModel is a dense (kind, impl) table of AccessCost cells, filled
// in by runtime::calibrate from measurements of the real structures and
// consumed by sim::Simulator when `enabled`.  Disabled (the default) it
// is inert and the simulator uses its legacy flat lock_access_time /
// lockfree_access_time scalars, byte-for-byte — pre-zoo configs stay
// bit-identical (pinned by tests/cost_model_test.cpp).  CostModel::flat
// builds an enabled table that reproduces exactly those flat scalars,
// which is both the compatibility bridge and the identity test.
#pragma once

#include <array>
#include <cstdint>

#include "runtime/object_spec.hpp"
#include "support/time.hpp"

namespace lfrt::runtime {

/// Cost shape of one (kind, impl) cell, all in Time (ns).
struct AccessCost {
  /// Cost of one uncontended access (one lock-free attempt, or acquire
  /// + critical section + release with no one waiting).
  Time base = 0;

  /// Added cost per *other* contender concurrently in or waiting for an
  /// access of the same object (linear model; ticket >> anderson > mcs).
  Time per_contender = 0;

  /// Snapshot only: added cost per collected segment of a scan (a
  /// double-collect reads every segment at least twice; locked scans
  /// copy each once).  Zero for the other kinds.
  Time per_segment = 0;

  /// Added cost of one failed-and-restarted attempt beyond re-running
  /// the attempt itself (validation/backoff overhead).  Applied by the
  /// simulator on each retry of lock-free accesses.
  Time retry_penalty = 0;

  friend bool operator==(const AccessCost&, const AccessCost&) = default;
};

/// Duration of one access attempt under `cost` with `contenders` other
/// jobs contending, plus `retries` restarts so far.  Reads of
/// snapshot-kind objects add the per-segment scan term (writes touch
/// one segment, already in base).  Never returns less than 1 tick — a
/// zero-length access would stall the simulator's progress accounting.
inline Time access_cost(const AccessCost& cost, ObjectKind kind, bool write,
                        std::int64_t contenders, std::int64_t retries = 0) {
  Time t = cost.base + cost.per_contender * contenders +
           cost.retry_penalty * retries;
  if (kind == ObjectKind::kSnapshot && !write)
    t += cost.per_segment * static_cast<Time>(kSnapshotSegments);
  return t < 1 ? 1 : t;
}

/// Dense (kind, impl) table of AccessCost cells.
class CostModel {
 public:
  /// When false (default) the table is ignored and the simulator uses
  /// its flat lock/lockfree scalars — the pre-zoo model, bit-identical.
  bool enabled = false;

  AccessCost& at(ObjectKind kind, ObjectImpl impl) {
    return cells_[index(kind, impl)];
  }
  const AccessCost& at(ObjectKind kind, ObjectImpl impl) const {
    return cells_[index(kind, impl)];
  }

  /// An enabled table reproducing the flat two-scalar model exactly:
  /// every lock-free cell costs `lockfree`, every lock cell costs
  /// `lock`, no scaling terms.  Feeding this to the simulator must
  /// yield bit-identical runs to the disabled path (pinned in tests).
  static CostModel flat(Time lockfree, Time lock) {
    CostModel m;
    m.enabled = true;
    for (ObjectKind kind : all_object_kinds())
      for (ObjectImpl impl : all_object_impls())
        m.at(kind, impl).base =
            impl == ObjectImpl::kLockFree ? lockfree : lock;
    return m;
  }

  friend bool operator==(const CostModel&, const CostModel&) = default;

 private:
  static std::size_t index(ObjectKind kind, ObjectImpl impl) {
    return static_cast<std::size_t>(kind) * kObjectImplCount +
           static_cast<std::size_t>(impl);
  }

  std::array<AccessCost, kObjectKindCount * kObjectImplCount> cells_{};
};

}  // namespace lfrt::runtime
