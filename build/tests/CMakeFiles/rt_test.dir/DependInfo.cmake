
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rt_test.cpp" "tests/CMakeFiles/rt_test.dir/rt_test.cpp.o" "gcc" "tests/CMakeFiles/rt_test.dir/rt_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/lfrt_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lfrt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/lfrt_task.dir/DependInfo.cmake"
  "/root/repo/build/src/tuf/CMakeFiles/lfrt_tuf.dir/DependInfo.cmake"
  "/root/repo/build/src/uam/CMakeFiles/lfrt_uam.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
