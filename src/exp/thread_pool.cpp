#include "exp/thread_pool.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "support/check.hpp"

namespace lfrt::exp {

namespace {

/// Parse a positive integer; 0 on anything else.
int parse_threads(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == nullptr || *end != '\0' || v < 1 || v > 4096) return 0;
  return static_cast<int>(v);
}

}  // namespace

int default_threads() {
  if (const int n = parse_threads(std::getenv("LFRT_THREADS")); n > 0)
    return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int threads_from_args(int argc, const char* const* argv) {
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--threads=", 10) == 0) {
      if (const int n = parse_threads(a + 10); n > 0) threads = n;
    } else if (std::strcmp(a, "--threads") == 0 && i + 1 < argc) {
      if (const int n = parse_threads(argv[i + 1]); n > 0) threads = n;
      ++i;
    }
  }
  return threads > 0 ? threads : default_threads();
}

ThreadPool::ThreadPool(int threads) {
  LFRT_CHECK_MSG(threads >= 1, "thread pool needs at least one thread");
  size_ = threads;
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain() {
  // Claim-next-index loop shared by workers and the caller.  The first
  // body exception parks the index counter at the end, cancelling the
  // indices nobody has claimed yet.
  const auto* body = body_;
  const std::int64_t n = batch_size_;
  for (;;) {
    const std::int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      (*body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
      next_.store(n, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t)>& body) {
  if (n <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    LFRT_CHECK_MSG(!in_batch_, "ThreadPool::parallel_for is not reentrant");
    in_batch_ = true;
    body_ = &body;
    batch_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_ = static_cast<int>(workers_.size());
    ++generation_;
    error_ = nullptr;
  }
  work_cv_.notify_all();

  drain();  // the caller is one of the pool's threads

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return active_ == 0; });
  in_batch_ = false;
  body_ = nullptr;
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  std::int64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    drain();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace lfrt::exp
