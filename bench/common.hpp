// Shared helpers for the figure-regeneration benches.
//
// Every bench prints: the experiment id, all parameters (including
// seeds, so rows are exactly regenerable), a human-readable table, and a
// trailing CSV block for plotting.
//
// Default access-time parameters (overridable per bench via argv):
//   s = 500 ns   (lock-free queue op, cf. measured values in fig08)
//   r = 50 us    (lock-based op incl. the RUA resource-management
//                 invocation each lock/unlock request triggers; the
//                 paper's meta-scheduler r is of the same order relative
//                 to its 30-1000 us job execution times)
//   sched_ns_per_op = 5  (scheduler overhead charge per counted op)
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workload/workload.hpp"

namespace lfrt::bench {

inline constexpr Time kDefaultS = nsec(500);
inline constexpr Time kDefaultR = usec(50);
inline constexpr double kDefaultNsPerOp = 5.0;

/// Mean and 95% CI of AUR and CMR over repeated runs (the paper reports
/// every data point with a 95% confidence error bar).
struct SeriesPoint {
  double aur_mean = 0.0, aur_ci = 0.0;
  double cmr_mean = 0.0, cmr_ci = 0.0;
  double retries_per_job = 0.0;
  double blockings_per_job = 0.0;
  std::int64_t jobs = 0;
};

struct RunParams {
  sim::ShareMode mode = sim::ShareMode::kLockFree;
  Time r = kDefaultR;
  Time s = kDefaultS;
  double ns_per_op = kDefaultNsPerOp;
  Time horizon = 0;           ///< 0: auto (windows_per_run windows)
  int windows_per_run = 200;  ///< horizon = max W_i * windows_per_run
  int repeats = 5;
  std::uint64_t arrival_seed = 1000;

  /// Arrival pattern: phase-jittered periodic (exact a_i/W_i rate, so
  /// the generated load equals the configured AL) or gate-thinned
  /// random (shape-stressing, slightly below the configured AL).
  bool periodic_arrivals = true;
};

/// Scheduler paired with a sharing mode: RUA/lock-based for kLockBased,
/// RUA/lock-free otherwise (the "ideal" yardstick also runs lock-free
/// RUA — it differs only in zero-cost object accesses).
inline const sched::Scheduler& scheduler_for(sim::ShareMode mode) {
  static const sched::RuaScheduler lb(sched::Sharing::kLockBased);
  static const sched::RuaScheduler lf(sched::Sharing::kLockFree);
  return mode == sim::ShareMode::kLockBased
             ? static_cast<const sched::Scheduler&>(lb)
             : static_cast<const sched::Scheduler&>(lf);
}

/// Run `repeats` simulations of the task set with fresh arrival seeds
/// and aggregate AUR/CMR statistics.
inline SeriesPoint run_series(const TaskSet& ts, const RunParams& rp) {
  RunningStats aur, cmr;
  std::int64_t retries = 0, blockings = 0, jobs = 0;
  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);

  for (int rep = 0; rep < rp.repeats; ++rep) {
    sim::SimConfig cfg;
    cfg.mode = rp.mode;
    cfg.lock_access_time = rp.r;
    cfg.lockfree_access_time = rp.s;
    cfg.sched_ns_per_op = rp.ns_per_op;
    cfg.horizon = rp.horizon > 0 ? rp.horizon
                                 : max_window * rp.windows_per_run;
    sim::Simulator s(ts, scheduler_for(rp.mode), cfg);
    const std::uint64_t seed =
        rp.arrival_seed + static_cast<std::uint64_t>(rep);
    if (rp.periodic_arrivals) {
      for (const auto& t : ts.tasks) {
        Rng rng(seed ^ (0xA5A5A5A5ULL * static_cast<std::uint64_t>(
                                            t.id + 1)));
        s.set_arrivals(t.id, arrivals::periodic_phased(t.arrival,
                                                       cfg.horizon, rng));
      }
    } else {
      s.seed_arrivals(seed);
    }
    const sim::SimReport rep_out = s.run();
    aur.add(rep_out.aur());
    cmr.add(rep_out.cmr());
    retries += rep_out.total_retries;
    blockings += rep_out.total_blockings;
    jobs += rep_out.counted_jobs;
  }

  SeriesPoint p;
  p.aur_mean = aur.mean();
  p.aur_ci = aur.ci95();
  p.cmr_mean = cmr.mean();
  p.cmr_ci = cmr.ci95();
  p.jobs = jobs;
  p.retries_per_job =
      jobs > 0 ? static_cast<double>(retries) / static_cast<double>(jobs)
               : 0.0;
  p.blockings_per_job =
      jobs > 0 ? static_cast<double>(blockings) / static_cast<double>(jobs)
               : 0.0;
  return p;
}

/// Critical time-Miss Load (Section 6.1): the largest approximate load
/// AL on a sweep grid at which the scheduler still misses (essentially)
/// no critical times.  `make_spec` maps an AL to a workload spec.
template <typename MakeSpec>
double measure_cml(MakeSpec&& make_spec, const RunParams& rp,
                   double al_step = 0.05, double al_max = 1.3,
                   double miss_tolerance = 0.001) {
  double cml = 0.0;
  for (double al = al_step; al <= al_max + 1e-9; al += al_step) {
    const TaskSet ts = workload::make_task_set(make_spec(al));
    const SeriesPoint p = run_series(ts, rp);
    if (1.0 - p.cmr_mean <= miss_tolerance)
      cml = al;
    else
      break;  // misses only grow with load
  }
  return cml;
}

/// Print the standard bench header.
inline void print_header(const std::string& id, const std::string& what) {
  std::cout << "=== " << id << " — " << what << " ===\n";
}

}  // namespace lfrt::bench
