// lfrt explorer: run a parameterized experiment from the command line.
//
// Usage:
//   explore [tasks N] [objects K] [accesses M] [load AL] [exec USEC]
//           [mode lock-free|lock-based|ideal] [sched rua|edf|llf|pip]
//           [cpus P] [r USEC] [s USEC] [hetero] [nest D] [seed S]
//           [gantt] [trace FILE]
//
// Examples:
//   explore load 1.1 mode lock-based
//   explore tasks 4 cpus 2 sched edf gantt
//   explore nest 2 mode lock-based sched rua
//   explore load 1.0 trace /tmp/run.json   # open in ui.perfetto.dev
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/bounds.hpp"
#include "sched/edf.hpp"
#include "sched/edf_pip.hpp"
#include "sched/llf.hpp"
#include "sched/rua.hpp"
#include "sim/gantt.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_export.hpp"
#include "workload/workload.hpp"

using namespace lfrt;

int main(int argc, char** argv) {
  workload::WorkloadSpec spec;
  spec.task_count = 6;
  spec.object_count = 4;
  spec.accesses_per_job = 2;
  spec.avg_exec = usec(300);
  spec.load = 0.8;
  spec.seed = 1;

  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kLockFree;
  cfg.lock_access_time = usec(50);
  cfg.lockfree_access_time = nsec(500);
  cfg.sched_ns_per_op = 5.0;

  std::string sched_name = "rua";
  bool gantt = false;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << key << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "tasks") spec.task_count = std::stoi(next());
    else if (key == "objects") spec.object_count = std::stoi(next());
    else if (key == "accesses") spec.accesses_per_job = std::stoi(next());
    else if (key == "load") spec.load = std::stod(next());
    else if (key == "exec") spec.avg_exec = usec(std::stoll(next()));
    else if (key == "nest") spec.nest_depth = std::stoi(next());
    else if (key == "seed") spec.seed = std::stoull(next());
    else if (key == "hetero") spec.tuf_class = workload::TufClass::kHeterogeneous;
    else if (key == "cpus") cfg.cpu_count = std::stoi(next());
    else if (key == "r") cfg.lock_access_time = usec(std::stoll(next()));
    else if (key == "s") cfg.lockfree_access_time = usec(std::stoll(next()));
    else if (key == "gantt") gantt = true;
    else if (key == "trace") trace_path = next();
    else if (key == "sched") sched_name = next();
    else if (key == "mode") {
      const std::string m = next();
      cfg.mode = m == "lock-based" ? sim::ShareMode::kLockBased
                 : m == "ideal"    ? sim::ShareMode::kIdeal
                                   : sim::ShareMode::kLockFree;
    } else {
      std::cerr << "unknown option: " << key << "\n";
      return 2;
    }
  }
  if (spec.nest_depth > 0) cfg.mode = sim::ShareMode::kLockBased;

  const TaskSet ts = workload::make_task_set(spec);
  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);
  cfg.horizon = max_window * 100;
  cfg.record_slices = gantt || !trace_path.empty();

  const sched::RuaScheduler rua(cfg.mode == sim::ShareMode::kLockBased
                                    ? sched::Sharing::kLockBased
                                    : sched::Sharing::kLockFree,
                                spec.nest_depth > 0);
  const sched::EdfScheduler edf;
  const sched::LlfScheduler llf;
  const sched::EdfPipScheduler pip;
  const sched::Scheduler* sch = &rua;
  if (sched_name == "edf") sch = &edf;
  else if (sched_name == "llf") sch = &llf;
  else if (sched_name == "pip") sch = &pip;
  else if (sched_name != "rua") {
    std::cerr << "unknown scheduler: " << sched_name << "\n";
    return 2;
  }

  std::cout << "tasks=" << spec.task_count << " objects="
            << spec.object_count << " AL=" << spec.load << " mode="
            << sim::to_string(cfg.mode) << " sched=" << sch->name()
            << " cpus=" << cfg.cpu_count << " seed=" << spec.seed
            << " horizon=" << to_msec(cfg.horizon) << "ms\n";

  sim::Simulator sim(ts, *sch, cfg);
  sim.seed_arrivals(spec.seed);
  const sim::SimReport rep = sim.run();

  std::cout << "jobs=" << rep.counted_jobs << " completed="
            << rep.completed << " aborted=" << rep.aborted
            << " deadlocks=" << rep.deadlocks_resolved << "\n"
            << "AUR=" << rep.aur() << " CMR=" << rep.cmr()
            << " retries=" << rep.total_retries << " blockings="
            << rep.total_blockings << " preemptions="
            << rep.total_preemptions << "\n"
            << "scheduler: " << rep.sched_invocations << " invocations, "
            << rep.sched_ops << " ops, " << to_usec(rep.sched_overhead)
            << "us charged\n";

  if (cfg.mode == sim::ShareMode::kLockFree) {
    std::cout << "Theorem-2 retry bounds:";
    for (const auto& t : ts.tasks)
      std::cout << " T" << t.id << "<=" << analysis::retry_bound(ts, t.id);
    std::cout << "\n";
  }

  if (!trace_path.empty()) {
    if (sim::write_chrome_trace(ts, rep, trace_path))
      std::cout << "chrome trace written to " << trace_path
                << " (open in ui.perfetto.dev)\n";
    else
      std::cerr << "failed to write " << trace_path << "\n";
  }
  if (gantt) {
    sim::GanttOptions opt;
    opt.width = 100;
    opt.end = std::min(cfg.horizon, max_window * 4);
    opt.show_cpus = cfg.cpu_count > 1;
    std::cout << "\nfirst four windows:\n"
              << sim::render_gantt(ts, rep, opt);
  }
  return 0;
}
