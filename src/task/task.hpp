// Task and job model (paper, Section 2).
//
// A task T_i is described along three dimensions: its UAM arrival tuple
// ⟨l_i, a_i, W_i⟩, its TUF U_i(·) with critical time C_i <= W_i, and its
// execution demand.  A job J_{i,j} is the j-th invocation of T_i and is
// the basic scheduling entity.
//
// A job's computation time is c_i = u_i + m_i * t_acc, where u_i is the
// compute time not involving shared objects, m_i the number of shared-
// object accesses, and t_acc the per-access time (r for lock-based, s
// for lock-free — paper, Section 5).  Accesses are modelled as segments
// embedded in the compute timeline at fixed progress offsets; nested
// accesses are excluded (Section 2's resource model).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/time.hpp"
#include "tuf/tuf.hpp"
#include "uam/uam.hpp"

namespace lfrt {

using TaskId = std::int32_t;
using JobId = std::int64_t;
using ObjectId = std::int32_t;

inline constexpr JobId kNoJob = -1;
inline constexpr ObjectId kNoObject = -1;

/// One shared-object access embedded in a job's compute timeline: the
/// access begins once `offset` units of pure compute have been done.
/// Offsets must be non-decreasing and <= u_i; equal offsets model
/// back-to-back accesses.  Accesses are never nested.
struct AccessSpec {
  ObjectId object = kNoObject;
  Time offset = 0;

  /// Writes publish a mutation; under lock-free sharing a concurrent
  /// *write* completing inside another job's access attempt fails that
  /// job's CAS, while reads never invalidate anyone (the multi-writer/
  /// multi-reader semantics of the paper's conclusion).  Lock-based
  /// sharing serializes reads and writes alike (mutual exclusion).
  bool write = true;
};

/// A nested critical section (lock-based sharing only): the lock on
/// `object` is requested once `acquire_offset` units of pure compute are
/// done, the access itself takes r time units, and the lock is then
/// held while computing up to `release_offset`, where the unlock request
/// fires.  Spans must follow stack discipline (properly nested, LIFO
/// release order) — the general RUA model of paper Section 3, where
/// deadlocks become possible and are handled by detection/resolution.
/// A task uses either `accesses` (flat) or `spans` (nested), not both.
struct LockSpan {
  ObjectId object = kNoObject;
  Time acquire_offset = 0;
  Time release_offset = 0;
};

/// Static parameters of one task.
struct TaskParams {
  TaskId id = -1;
  UamSpec arrival;                  ///< ⟨l_i, a_i, W_i⟩
  std::shared_ptr<const Tuf> tuf;   ///< U_i(·); C_i = tuf->critical_time()
  Time exec_time = 0;               ///< u_i — compute excl. object access
  std::vector<AccessSpec> accesses; ///< m_i accesses, sorted by offset
  std::vector<LockSpan> spans;      ///< nested critical sections
  Time abort_handler_time = 0;      ///< exception-handler execution time

  /// Context-dependent execution times (the paper's motivating
  /// uncertainty): each job's *actual* compute time is drawn uniformly
  /// from exec_time * (1 +/- exec_variation), while the scheduler is
  /// only ever shown the exec_time estimate — so overruns (and the
  /// resulting critical-time aborts) arise exactly as footnote 4 of
  /// Section 3 allows.  Access/span offsets scale proportionally.
  /// 0 (default) = deterministic execution.
  double exec_variation = 0.0;

  Time critical_time() const { return tuf->critical_time(); }
  std::int64_t access_count() const {
    return static_cast<std::int64_t>(accesses.size() + spans.size());
  }
  bool nested() const { return !spans.empty(); }

  /// Throws InvariantViolation on malformed parameters (C_i > W_i,
  /// unsorted or out-of-range access offsets, non-positive u_i, ...).
  void validate() const;
};

/// A task set plus the shared-object universe it runs against.
struct TaskSet {
  std::vector<TaskParams> tasks;
  std::int32_t object_count = 0;

  /// Units per object (multi-unit resource model of Wu et al. [27],
  /// which the DATE paper specializes to single-unit).  Empty means
  /// every object has exactly one unit; otherwise one entry per object,
  /// each >= 1.  An access/span claims one unit; requesters block only
  /// when all units are held.
  std::vector<std::int32_t> object_units;

  /// Units of object `obj` (1 when object_units is empty).
  std::int32_t units_of(ObjectId obj) const {
    return object_units.empty()
               ? 1
               : object_units[static_cast<std::size_t>(obj)];
  }

  const TaskParams& by_id(TaskId id) const;
  void validate() const;

  /// Approximate load AL = sum_i u_i / C_i (paper, Section 6.1).  Note
  /// AL deliberately excludes object-access time, so that the ideal-
  /// object implementation has CML 1.0 at AL 1.0 absent overheads.
  double approximate_load() const;
};

/// Job lifecycle states.
enum class JobState : std::uint8_t {
  kReady,      ///< arrived, eligible to run
  kRunning,    ///< currently holds the CPU
  kBlocked,    ///< waiting on a lock held by another job (lock-based only)
  kAborting,   ///< critical time expired; abort handler executing
  kCompleted,  ///< finished before (or at) its critical time
  kAborted,    ///< abort handler finished; job yielded zero utility
};

/// Runtime record of one job.  Owned by the simulator's job table; the
/// scheduler sees an immutable projection (sched::SchedJob).
struct Job {
  JobId id = kNoJob;
  TaskId task = -1;
  Time arrival = 0;
  Time critical_abs = 0;  ///< arrival + C_i
  JobState state = JobState::kReady;

  /// This job's actual compute demand (== the task's exec_time unless
  /// exec_variation drew a different value at arrival).
  Time exec_actual = 0;

  // --- execution progress ---
  Time compute_done = 0;        ///< completed pure-compute time (of u_i)
  std::size_t next_access = 0;  ///< index into TaskParams::accesses
  bool in_access = false;       ///< currently inside an access segment
  Time access_progress = 0;     ///< progress within the current access
  Time access_attempt_start = -1;  ///< read point of the current lock-free
                                   ///< attempt (CAS conflict detection)
  ObjectId access_object = kNoObject;
  ObjectId held_object = kNoObject;  ///< lock currently held (flat mode)
  std::vector<ObjectId> held_stack;  ///< locks held, LIFO (nested mode)
  std::size_t next_span = 0;         ///< index into TaskParams::spans
  std::vector<std::size_t> open_spans;  ///< acquired, not yet released
  JobId waits_on = kNoJob;           ///< holder this job is blocked on
  Time handler_done = 0;             ///< abort-handler progress

  // --- accounting (validated against the paper's bounds) ---
  std::int64_t retries = 0;      ///< lock-free access restarts (f_i)
  std::int64_t blockings = 0;    ///< lock-based blocking episodes
  std::int64_t preemptions = 0;  ///< times descheduled while unfinished
  std::int64_t backoff_spins = 0;  ///< relax spins burned after failed CAS
                                   ///< (cost of the retries above; executor
                                   ///< only — the simulator models retries,
                                   ///< not the spins between them)
  Time completion = -1;          ///< completion instant, -1 if not completed

  Time sojourn() const { return completion >= 0 ? completion - arrival : -1; }
  bool finished() const {
    return state == JobState::kCompleted || state == JobState::kAborted;
  }
};

}  // namespace lfrt
