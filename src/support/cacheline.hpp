// Shared cache-line geometry for hot concurrent state.
//
// Every structure in src/lockfree and src/lockbased that separates hot
// atomics (stripe heads, lock words, ring indices) previously hard-coded
// `alignas(64)` at each site.  This header is the one definition of the
// line size those paddings protect against: two hot words on one line
// false-share — each writer's store invalidates the other's cached copy
// even though they never touch the same datum — and the resulting
// coherence traffic is exactly the per-contender cost the calibrated
// cost models (runtime/cost_model.hpp) measure per lock mechanism.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>

namespace lfrt::support {

/// Destructive-interference granularity padding targets.  Fixed at 64:
/// the std::hardware_destructive_interference_size constant is not
/// required to exist and varies per TU with GCC's -mtune, which would
/// silently change struct layouts between builds; every mainstream
/// target this repo builds on (x86-64, aarch64) uses 64-byte lines.
inline constexpr std::size_t kCacheLineSize = 64;

#ifdef __cpp_lib_hardware_interference_size
static_assert(kCacheLineSize >= std::hardware_constructive_interference_size ||
                  kCacheLineSize % 64 == 0,
              "kCacheLineSize must cover the platform line");
#endif

/// T padded out to sole ownership of its cache line(s).  Use for array
/// elements whose neighbours are written by other threads (lock slots,
/// stripe headers): `CacheAligned<std::atomic<bool>> slots[N]`.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};
};

static_assert(alignof(CacheAligned<std::atomic<std::size_t>>) ==
                  kCacheLineSize,
              "CacheAligned must align to the line");
static_assert(sizeof(CacheAligned<char>) == kCacheLineSize,
              "CacheAligned must pad to a whole line");
static_assert(kCacheLineSize >= alignof(std::max_align_t),
              "line alignment must satisfy every natural alignment");

}  // namespace lfrt::support
