// Multiprocessor dispatch selection shared by the simulator and the
// real-threads executor.
//
// Both substrates run ONE global scheduler (Scheduler::build_into) and
// then choose which jobs of the resulting schedule occupy the M CPUs.
// The selection rule — the schedule's eligible jobs in order, behind any
// must-run-now jobs (abort handlers) and the scheduler's own dispatch
// nomination — and the sticky CPU assignment that keeps already-running
// jobs on their CPU both live here, so sim::Simulator (cpu_count > 1)
// and rt::Executor (ExecutorConfig::cpu_count) dispatch identically and
// the cross-substrate validation (bench/ext_executor_validation)
// compares like with like.
//
// A DispatchSelector is reusable scratch, exactly like a
// Scheduler::Workspace: one instance per dispatching loop, never shared
// between threads, steady-state allocation-free.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sched/placement.hpp"
#include "sched/scheduler.hpp"
#include "support/check.hpp"
#include "task/task.hpp"

namespace lfrt::sched {

class DispatchSelector {
 public:
  /// Pre-size the membership stamps for `n` job ids (optional; the
  /// stamps grow on demand).
  void reserve(std::size_t n) { stamp_.reserve(n); }

  /// Top-M selection: fill up to `cpu_count` dispatch targets from
  /// `front` (jobs that must run now regardless of the schedule — the
  /// simulator's abort handlers; empty for the executor, whose handlers
  /// run off-CPU), then the scheduler's own dispatch choice (which may
  /// differ from the first runnable schedule entry — e.g. EDF+PIP
  /// dispatches a lock *holder* on behalf of the blocked head), then
  /// the schedule's entries in order.  Entries are deduplicated in O(1)
  /// via generation stamps and filtered by `eligible(id)` (front jobs
  /// are the caller's to vet).  Ids must be < `id_limit`.
  template <typename Eligible>
  const std::vector<JobId>& select(const std::vector<JobId>& front,
                                   const ScheduleResult& res, int cpu_count,
                                   std::size_t id_limit,
                                   Eligible&& eligible) {
    targets_.clear();
    if (stamp_.size() < id_limit) stamp_.resize(id_limit, 0);
    ++gen_;
    const auto full = [&] {
      return static_cast<int>(targets_.size()) >= cpu_count;
    };
    const auto push = [&](JobId id) {
      stamp_[static_cast<std::size_t>(id)] = gen_;
      targets_.push_back(id);
    };
    const auto in_range = [&](JobId id) {
      return id >= 0 && static_cast<std::size_t>(id) < id_limit;
    };
    for (JobId id : front) {
      if (full()) break;
      push(id);
    }
    if (!full() && in_range(res.dispatch) &&
        stamp_[static_cast<std::size_t>(res.dispatch)] != gen_ &&
        eligible(res.dispatch)) {
      push(res.dispatch);
    }
    for (JobId id : res.schedule) {
      if (full()) break;
      if (!in_range(id)) continue;
      if (stamp_[static_cast<std::size_t>(id)] == gen_) continue;
      if (!eligible(id)) continue;
      push(id);
    }
    return targets_;
  }

  /// Install the contention controller's per-task conflict vector:
  /// groups[task] is the shared object that task is currently hammering
  /// (-1 = none).  While non-empty, select_steered avoids co-scheduling
  /// two tasks of the same group; empty (the default) disables steering
  /// entirely.  Steering is a hint between epochs, not part of the
  /// schedule: the scheduler's job order is untouched, only which of
  /// its eligible jobs occupy the M slots *this pass* changes.
  void set_conflict_groups(std::vector<std::int32_t> groups) {
    groups_ = std::move(groups);
  }
  const std::vector<std::int32_t>& conflict_groups() const { return groups_; }

  /// All mode flags in one struct so sim and executor wire the selector
  /// identically: placement policy + strict-groups.  Conflict groups
  /// are deliberately NOT here — they are live per-epoch state the
  /// controller rewrites (set_conflict_groups), not configuration.
  using Options = DispatchOptions;
  void set_options(Options opts) { options_ = std::move(opts); }
  const Options& options() const { return options_; }

  /// Strict steering: deferred same-group schedule entries are NOT
  /// refilled into idle slots, so no two same-group schedule entries
  /// ever co-dispatch (front jobs and the scheduler's dispatch
  /// nomination stay exempt — they must run).  This trades work
  /// conservation for the hard no-co-dispatch guarantee the
  /// analysis::mp conflict-group refinement assumes
  /// (MpOptions::strict_groups).  Off by default.  Convenience wrapper
  /// over Options::strict_groups.
  void set_strict_groups(bool strict) { options_.strict_groups = strict; }
  bool strict_groups() const { return options_.strict_groups; }

  /// select() with conflict-group steering.  `task_of(id)` maps a job to
  /// its task (< groups.size(); -1 or out of range = unsteered).  Front
  /// jobs and the scheduler's dispatch nomination are never steered
  /// (they must run); schedule entries whose group already holds a slot
  /// this pass are deferred, and — work conservation — any slots still
  /// free after the pass are filled from the deferred list in schedule
  /// order, so steering can reorder a selection but never shrink it.
  /// With no conflict groups installed this IS select(), bit for bit.
  template <typename Eligible, typename TaskOf>
  const std::vector<JobId>& select_steered(const std::vector<JobId>& front,
                                           const ScheduleResult& res,
                                           int cpu_count, std::size_t id_limit,
                                           Eligible&& eligible,
                                           TaskOf&& task_of) {
    if (groups_.empty())
      return select(front, res, cpu_count, id_limit,
                    std::forward<Eligible>(eligible));
    targets_.clear();
    deferred_.clear();
    if (stamp_.size() < id_limit) stamp_.resize(id_limit, 0);
    ++gen_;
    const auto full = [&] {
      return static_cast<int>(targets_.size()) >= cpu_count;
    };
    const auto group_of = [&](JobId id) -> std::int32_t {
      const TaskId task = task_of(id);
      if (task < 0 || static_cast<std::size_t>(task) >= groups_.size())
        return -1;
      return groups_[static_cast<std::size_t>(task)];
    };
    const auto group_taken = [&](std::int32_t g) {
      return g >= 0 && static_cast<std::size_t>(g) < group_stamp_.size() &&
             group_stamp_[static_cast<std::size_t>(g)] == gen_;
    };
    const auto push = [&](JobId id) {
      stamp_[static_cast<std::size_t>(id)] = gen_;
      const std::int32_t g = group_of(id);
      if (g >= 0) {
        if (static_cast<std::size_t>(g) >= group_stamp_.size())
          group_stamp_.resize(static_cast<std::size_t>(g) + 1, 0);
        group_stamp_[static_cast<std::size_t>(g)] = gen_;
      }
      targets_.push_back(id);
    };
    const auto in_range = [&](JobId id) {
      return id >= 0 && static_cast<std::size_t>(id) < id_limit;
    };
    for (JobId id : front) {
      if (full()) break;
      push(id);
    }
    if (!full() && in_range(res.dispatch) &&
        stamp_[static_cast<std::size_t>(res.dispatch)] != gen_ &&
        eligible(res.dispatch)) {
      push(res.dispatch);
    }
    for (JobId id : res.schedule) {
      if (full()) break;
      if (!in_range(id)) continue;
      if (stamp_[static_cast<std::size_t>(id)] == gen_) continue;
      if (!eligible(id)) continue;
      if (group_taken(group_of(id))) {
        deferred_.push_back(id);  // same storm cell as a picked job
        continue;
      }
      push(id);
    }
    // Work conservation: a deferred job beats an idle CPU — unless
    // strict mode promised the analysis no same-group co-dispatch.
    if (!options_.strict_groups) {
      for (JobId id : deferred_) {
        if (full()) break;
        push(id);
      }
    }
    return targets_;
  }

  /// select_steered() with placement admission.  Under the global
  /// policy this IS select_steered, bit for bit (and therefore select()
  /// when no conflict groups are installed).  Otherwise each cluster
  /// only admits as many placed jobs as it has CPUs; unplaced jobs
  /// (affinity -1) are admitted against the global total.  Front jobs
  /// must run (they already hold a CPU) and are pushed unconditionally;
  /// the scheduler's nomination and schedule entries are subject to
  /// cluster capacity.  A cluster-full schedule entry is *skipped*
  /// (later entries of other clusters may still fit), never deferred —
  /// its cluster cannot regain room within this pass.  Group steering
  /// composes: same-group entries are deferred exactly as in
  /// select_steered, and the non-strict refill re-checks capacity.
  template <typename Eligible, typename TaskOf>
  const std::vector<JobId>& select_placed(const std::vector<JobId>& front,
                                          const ScheduleResult& res,
                                          int cpu_count, std::size_t id_limit,
                                          Eligible&& eligible,
                                          TaskOf&& task_of) {
    if (options_.placement.global())
      return select_steered(front, res, cpu_count, id_limit,
                            std::forward<Eligible>(eligible),
                            std::forward<TaskOf>(task_of));
    const Placement& pl = options_.placement;
    const std::int32_t nclusters = pl.cluster_count(cpu_count);
    cluster_room_.assign(static_cast<std::size_t>(nclusters), 0);
    for (int c = 0; c < cpu_count; ++c) {
      const std::int32_t cl = pl.cluster_of_cpu(c);
      LFRT_CHECK(cl >= 0 && cl < nclusters);
      ++cluster_room_[static_cast<std::size_t>(cl)];
    }
    targets_.clear();
    deferred_.clear();
    if (stamp_.size() < id_limit) stamp_.resize(id_limit, 0);
    ++gen_;
    const auto full = [&] {
      return static_cast<int>(targets_.size()) >= cpu_count;
    };
    const auto group_of = [&](JobId id) -> std::int32_t {
      const TaskId task = task_of(id);
      if (task < 0 || static_cast<std::size_t>(task) >= groups_.size())
        return -1;
      return groups_[static_cast<std::size_t>(task)];
    };
    const auto group_taken = [&](std::int32_t g) {
      return g >= 0 && static_cast<std::size_t>(g) < group_stamp_.size() &&
             group_stamp_[static_cast<std::size_t>(g)] == gen_;
    };
    const auto cluster_of_job = [&](JobId id) -> std::int32_t {
      return pl.cluster_of_task(task_of(id));
    };
    const auto has_room = [&](JobId id) {
      const std::int32_t cl = cluster_of_job(id);
      return cl < 0 || cluster_room_[static_cast<std::size_t>(cl)] > 0;
    };
    const auto push = [&](JobId id) {
      stamp_[static_cast<std::size_t>(id)] = gen_;
      const std::int32_t g = group_of(id);
      if (g >= 0) {
        if (static_cast<std::size_t>(g) >= group_stamp_.size())
          group_stamp_.resize(static_cast<std::size_t>(g) + 1, 0);
        group_stamp_[static_cast<std::size_t>(g)] = gen_;
      }
      const std::int32_t cl = cluster_of_job(id);
      if (cl >= 0) --cluster_room_[static_cast<std::size_t>(cl)];
      targets_.push_back(id);
    };
    const auto in_range = [&](JobId id) {
      return id >= 0 && static_cast<std::size_t>(id) < id_limit;
    };
    for (JobId id : front) {
      if (full()) break;
      push(id);
    }
    if (!full() && in_range(res.dispatch) &&
        stamp_[static_cast<std::size_t>(res.dispatch)] != gen_ &&
        eligible(res.dispatch) && has_room(res.dispatch)) {
      push(res.dispatch);
    }
    for (JobId id : res.schedule) {
      if (full()) break;
      if (!in_range(id)) continue;
      if (stamp_[static_cast<std::size_t>(id)] == gen_) continue;
      if (!eligible(id)) continue;
      if (!has_room(id)) continue;
      if (group_taken(group_of(id))) {
        deferred_.push_back(id);
        continue;
      }
      push(id);
    }
    if (!options_.strict_groups) {
      for (JobId id : deferred_) {
        if (full()) break;
        if (!has_room(id)) continue;
        push(id);
      }
    }
    return targets_;
  }

  /// Sticky CPU assignment over the last selection: targets keep the
  /// CPU they already occupy (`cpu_of(id)` >= 0), newcomers fill the
  /// freed slots in selection order.  Returns the per-CPU next
  /// occupancy (kNoJob = idle), valid until the next call.
  template <typename CpuOf>
  const std::vector<JobId>& assign_sticky(const std::vector<JobId>& targets,
                                          int cpu_count, CpuOf&& cpu_of) {
    next_.assign(static_cast<std::size_t>(cpu_count), kNoJob);
    newcomers_.clear();
    for (JobId id : targets) {
      const int c = cpu_of(id);
      if (c >= 0)
        next_[static_cast<std::size_t>(c)] = id;
      else
        newcomers_.push_back(id);
    }
    std::size_t fill = 0;
    for (JobId id : newcomers_) {
      while (fill < next_.size() && next_[fill] != kNoJob) ++fill;
      LFRT_CHECK(fill < next_.size());
      next_[fill] = id;
    }
    return next_;
  }

  /// assign_sticky() with placement: targets keep their CPU only if it
  /// is allowed for their cluster (a moved task migrates like a
  /// newcomer).  Placed newcomers fill free CPUs of their cluster
  /// first — preferring CPUs not currently held by an unplaced sticky
  /// job, evicting one into the unplaced pool only when the cluster has
  /// no other free slot — then unplaced jobs fill the remaining slots
  /// in selection order.  select_placed's per-cluster admission
  /// guarantees every placed target finds a cluster slot; the one
  /// transient exception (an over-occupied cluster right after a
  /// mid-run migration of an already-running job) degrades that job to
  /// the unplaced pool rather than dying, which is sound because object
  /// scoping routes by *task* cluster, not by the CPU the job happens
  /// to occupy.
  template <typename TaskOf, typename CpuOf>
  const std::vector<JobId>& assign_placed(const std::vector<JobId>& targets,
                                          int cpu_count, TaskOf&& task_of,
                                          CpuOf&& cpu_of) {
    if (options_.placement.global())
      return assign_sticky(targets, cpu_count, std::forward<CpuOf>(cpu_of));
    const Placement& pl = options_.placement;
    next_.assign(static_cast<std::size_t>(cpu_count), kNoJob);
    newcomers_.clear();
    unplaced_.clear();
    reserved_.assign(static_cast<std::size_t>(cpu_count), kNoJob);
    for (JobId id : targets) {
      const std::int32_t cl = pl.cluster_of_task(task_of(id));
      const int c = cpu_of(id);
      if (cl < 0) {
        // Unplaced: soft-claim the current CPU; final unless a placed
        // newcomer needs exactly that slot.
        if (c >= 0)
          reserved_[static_cast<std::size_t>(c)] = id;
        else
          unplaced_.push_back(id);
      } else if (c >= 0 && pl.cluster_of_cpu(c) == cl) {
        next_[static_cast<std::size_t>(c)] = id;  // sticky, allowed CPU
      } else {
        newcomers_.push_back(id);  // fresh dispatch or migrating
      }
    }
    for (JobId id : newcomers_) {
      const std::int32_t cl = pl.cluster_of_task(task_of(id));
      int chosen = -1;
      int fallback = -1;
      for (int c = 0; c < cpu_count; ++c) {
        if (next_[static_cast<std::size_t>(c)] != kNoJob) continue;
        if (pl.cluster_of_cpu(c) != cl) continue;
        if (reserved_[static_cast<std::size_t>(c)] == kNoJob) {
          chosen = c;
          break;
        }
        if (fallback < 0) fallback = c;
      }
      if (chosen < 0) chosen = fallback;
      if (chosen < 0) {
        unplaced_.push_back(id);  // transient migration overflow
        continue;
      }
      if (reserved_[static_cast<std::size_t>(chosen)] != kNoJob) {
        unplaced_.push_back(reserved_[static_cast<std::size_t>(chosen)]);
        reserved_[static_cast<std::size_t>(chosen)] = kNoJob;
      }
      next_[static_cast<std::size_t>(chosen)] = id;
    }
    for (int c = 0; c < cpu_count; ++c) {
      if (reserved_[static_cast<std::size_t>(c)] != kNoJob &&
          next_[static_cast<std::size_t>(c)] == kNoJob) {
        next_[static_cast<std::size_t>(c)] =
            reserved_[static_cast<std::size_t>(c)];
      }
    }
    std::size_t fill = 0;
    for (JobId id : unplaced_) {
      while (fill < next_.size() && next_[fill] != kNoJob) ++fill;
      LFRT_CHECK(fill < next_.size());
      next_[fill] = id;
    }
    return next_;
  }

 private:
  std::vector<JobId> targets_;
  std::vector<JobId> next_;
  std::vector<JobId> newcomers_;
  std::vector<JobId> deferred_;
  std::vector<JobId> unplaced_;
  std::vector<JobId> reserved_;  ///< cpu -> unplaced sticky soft claim
  // Membership stamps: stamp_[id] == gen_ iff id is already in
  // targets_ this selection — O(1) dedup without a per-entry scan.
  // group_stamp_ is the same trick keyed by conflict-group id.
  std::vector<std::int64_t> stamp_;
  std::vector<std::int64_t> group_stamp_;
  std::int64_t gen_ = 0;
  std::vector<std::int32_t> groups_;  ///< task -> conflict group (-1 none)
  std::vector<std::int32_t> cluster_room_;  ///< per-pass cluster capacity
  Options options_;
};

}  // namespace lfrt::sched
