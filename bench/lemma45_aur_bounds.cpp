// Lemmas 4/5 validation: when every job is feasible (low load) and TUFs
// are non-increasing, the long-run measured AUR lies inside the analytic
// [lower, upper] band for both sharing modes.
#include "analysis/bounds.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bench::print_header("Lemmas 4/5", "measured AUR inside analytic band");

  Table table({"TUF class", "mode", "lower", "measured AUR", "upper",
               "inside"});
  bool all_ok = true;

  for (const auto tuf_class :
       {workload::TufClass::kStep, workload::TufClass::kHeterogeneous}) {
    workload::WorkloadSpec spec;
    spec.task_count = 5;
    spec.object_count = 3;
    spec.accesses_per_job = 1;
    spec.avg_exec = usec(200);
    spec.load = 0.25;  // feasible regime
    spec.tuf_class = tuf_class;
    spec.seed = 11;
    const TaskSet ts = workload::make_task_set(spec);

    const Time s = usec(2), r = usec(10);
    struct Case {
      sim::ShareMode mode;
      analysis::AurBounds band;
      Time acc;
    };
    const Case cases[] = {
        {sim::ShareMode::kLockFree, analysis::lockfree_aur_bounds(ts, s), s},
        {sim::ShareMode::kLockBased, analysis::lockbased_aur_bounds(ts, r),
         r},
    };

    for (const Case& c : cases) {
      bench::RunParams rp;
      rp.mode = c.mode;
      rp.r = r;
      rp.s = s;
      rp.ns_per_op = 0.0;  // the lemmas exclude scheduler overhead
      rp.repeats = 5;
      rp.windows_per_run = 400;  // long run: the band is a limit statement
      const auto p = bench::run_series(ts, rp);
      const bool inside = p.aur_mean >= c.band.lower - 1e-9 &&
                          p.aur_mean <= c.band.upper + 1e-9;
      all_ok = all_ok && inside;
      table.add_row(
          {tuf_class == workload::TufClass::kStep ? "step" : "hetero",
           sim::to_string(c.mode), Table::num(c.band.lower, 4),
           Table::num(p.aur_mean, 4), Table::num(c.band.upper, 4),
           inside ? "yes" : "NO"});
    }
  }
  table.print();
  std::cout << "\nresult: "
            << (all_ok ? "measured AUR inside the analytic band everywhere"
                       : "BAND VIOLATED")
            << "\n";
  return all_ok ? 0 : 1;
}
