// Planetary rover scenario (paper, Section 1 / reference [10]).
//
// A Mars-rover-like control loop with context-dependent execution times:
// hazard avoidance runs longer on rough terrain, and science activities
// arrive in bursts (UAM a_i > 1).  The rover cannot know these at design
// time — the motivating case for online UA scheduling.  This example
// demonstrates the UAM admission gate at the system boundary and sustained
// overload behaviour, printing a per-task breakdown of what RUA sheds.
#include <iostream>

#include "runtime/print_report.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "uam/uam.hpp"

using namespace lfrt;

int main() {
  TaskSet ts;
  ts.object_count = 2;  // telemetry queue, motor-command queue

  // Hazard avoidance: critical, short deadline, bursty on rough terrain.
  TaskParams hazard;
  hazard.id = 0;
  hazard.arrival = UamSpec{1, 3, msec(50)};
  hazard.tuf = make_step_tuf(1000.0, msec(20));
  hazard.exec_time = msec(8);
  hazard.accesses = {{1, msec(2)}};
  ts.tasks.push_back(std::move(hazard));

  // Navigation update.
  TaskParams nav;
  nav.id = 1;
  nav.arrival = UamSpec{1, 1, msec(50)};
  nav.tuf = make_linear_tuf(200.0, msec(40));
  nav.exec_time = msec(16);
  nav.accesses = {{0, msec(3)}, {1, msec(8)}};
  ts.tasks.push_back(std::move(nav));

  // Science capture: valuable but sheddable.
  TaskParams science;
  science.id = 2;
  science.arrival = UamSpec{0, 2, msec(50)};
  science.tuf = make_parabolic_tuf(60.0, msec(45));
  science.exec_time = msec(20);
  science.accesses = {{0, msec(5)}};
  ts.tasks.push_back(std::move(science));

  // Telemetry downlink: background.
  TaskParams telemetry;
  telemetry.id = 3;
  telemetry.arrival = UamSpec{1, 1, msec(50)};
  telemetry.tuf = make_linear_tuf(15.0, msec(50));
  telemetry.exec_time = msec(12);
  telemetry.accesses = {{0, msec(4)}};
  ts.tasks.push_back(std::move(telemetry));
  ts.validate();

  std::cout << "Rover worst-case AL (all bursts at maximum): "
            << Table::num(ts.approximate_load(), 2) << "\n";

  // The terrain module proposes arrivals; the UAM gate enforces each
  // task's declared contract before they reach the scheduler.
  const Time horizon = sec(5);
  Rng rng(13);
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(4);
  cfg.sched_ns_per_op = 5.0;
  cfg.horizon = horizon;
  sim::Simulator sim(ts, rua, cfg);

  std::int64_t proposed = 0, admitted = 0;
  for (const auto& t : ts.tasks) {
    // Rough-terrain burst proposals at twice the contract rate.
    UamSpec stress = t.arrival;
    stress.max_per_window *= 2;
    Rng task_rng(rng.next());
    const auto proposals =
        arrivals::random_conformant(stress, horizon, task_rng);
    UamGate gate(t.arrival);
    std::vector<Time> accepted;
    for (Time at : proposals)
      if (gate.offer(at)) accepted.push_back(at);
    proposed += static_cast<std::int64_t>(proposals.size());
    admitted += gate.admitted();
    sim.set_arrivals(t.id, std::move(accepted));
  }
  std::cout << "UAM admission gate: " << admitted << "/" << proposed
            << " proposed arrivals admitted\n\n";

  const sim::SimReport rep = sim.run();

  runtime::PrintOptions opts;
  opts.label = "overall";
  opts.per_task = true;
  opts.task_names = {"hazard", "nav", "science", "telemetry"};
  runtime::print_report(std::cout, rep, opts);
  std::cout << "Under overload RUA protects the high-utility hazard "
               "avoidance and sheds telemetry/science — urgency and "
               "importance are decoupled.\n";
  return 0;
}
