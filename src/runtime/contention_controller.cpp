#include "runtime/contention_controller.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "rt/executor.hpp"
#include "runtime/shared_object.hpp"
#include "support/check.hpp"

namespace lfrt::runtime {

struct ContentionController::Impl {
  ControllerConfig cfg;
  SharedObjectSet* objects;
  rt::Executor* executor;
  ContentionControllerCore core;

  std::mutex mu;
  std::condition_variable cv;
  bool running = false;
  bool stop_requested = false;
  std::thread thread;

  std::vector<ShardDecision> decisions;  // under mu
  std::vector<PlacementMove> moves;      // under mu
  std::int64_t epochs_stepped = 0;       // under mu
  std::chrono::steady_clock::time_point started;

  sched::Placement placement;  // live copy, epoch thread only after start

  Impl(ControllerConfig c, SharedObjectSet* objs, rt::Executor* ex)
      : cfg(c), objects(objs), executor(ex), core(c, collect_specs(objs)) {}

  static std::vector<ObjectSpec> collect_specs(SharedObjectSet* objs) {
    std::vector<ObjectSpec> specs;
    specs.reserve(static_cast<std::size_t>(objs->object_count()));
    for (std::int32_t o = 0; o < objs->object_count(); ++o)
      specs.push_back(objs->spec_of(o));
    return specs;
  }

  void loop() {
    // Baseline sample, so the first timed epoch sees a real diff.
    core.step(objects->matrix());
    std::unique_lock<std::mutex> lock(mu);
    while (!stop_requested) {
      cv.wait_for(lock, std::chrono::nanoseconds(cfg.epoch),
                  [&] { return stop_requested; });
      if (stop_requested) break;
      lock.unlock();
      ContentionControllerCore::Epoch ep = core.step(objects->matrix());
      for (ShardDecision& d : ep.decisions)
        objects->set_shards(d.object, d.to_shards);
      for (const PlacementMove& mv : ep.placement_moves) {
        // Instance routing first (the next access lands on the new
        // cluster's instance), then the dispatch mask.
        objects->set_task_instance(mv.task, mv.to_cluster);
        if (mv.task >= 0 &&
            static_cast<std::size_t>(mv.task) < placement.task_affinity.size())
          placement.task_affinity[static_cast<std::size_t>(mv.task)] =
              mv.to_cluster;
      }
      if (executor != nullptr) {
        executor->set_task_conflict_groups(ep.conflict_groups);
        if (!ep.placement_moves.empty()) executor->set_placement(placement);
      }
      const Time stamp = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - started)
                             .count();
      lock.lock();
      ++epochs_stepped;
      for (ShardDecision& d : ep.decisions) {
        d.time = stamp;
        decisions.push_back(d);
      }
      for (PlacementMove& mv : ep.placement_moves) {
        mv.time = stamp;
        moves.push_back(mv);
      }
    }
  }
};

ContentionController::ContentionController(ControllerConfig cfg,
                                           SharedObjectSet* objects,
                                           rt::Executor* executor)
    : impl_(std::make_unique<Impl>(cfg, objects, executor)) {}

ContentionController::~ContentionController() { stop(); }

void ContentionController::start() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->running) return;
  impl_->running = true;
  impl_->stop_requested = false;
  impl_->started = std::chrono::steady_clock::now();
  impl_->thread = std::thread([this] { impl_->loop(); });
}

void ContentionController::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->running) return;
    impl_->stop_requested = true;
    impl_->cv.notify_all();
  }
  impl_->thread.join();
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->running = false;
}

void ContentionController::enable_placement(
    sched::Placement placement, std::int32_t cluster_count,
    std::vector<std::vector<TaskId>> accessors_of,
    std::vector<TaskId> writer_of) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  LFRT_CHECK_MSG(!impl_->running,
                 "enable_placement must precede ContentionController::start");
  std::vector<std::int32_t> clusters(placement.task_affinity);
  impl_->placement = std::move(placement);
  impl_->core.enable_placement(std::move(clusters), cluster_count,
                               std::move(accessors_of), std::move(writer_of));
}

std::vector<ShardDecision> ContentionController::decisions() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->decisions;
}

std::vector<PlacementMove> ContentionController::placement_moves() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->moves;
}

std::int64_t ContentionController::epochs() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->epochs_stepped;
}

}  // namespace lfrt::runtime
