file(REMOVE_RECURSE
  "liblfrt_tuf.a"
)
