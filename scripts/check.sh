#!/usr/bin/env bash
# Full correctness + smoke gate:
#   1. ASan+UBSan build of the whole tree, tier-1 suite under the
#      sanitizers (catches lifetime bugs in the in-place RUA schedule
#      editing that plain tests cannot see),
#   2. TSan build, concurrency-sensitive suites only: the parallel
#      experiment harness (exp_test), its thread-count-invariance
#      guarantee (determinism_test), the shared-const-scheduler
#      contract (concurrent_build_test), the lock-free structures
#      (lockfree_test — their relaxed/acquire orderings must satisfy
#      TSan, including the wide-payload value-slot path), the lock
#      zoo's mutual-exclusion/FIFO/accounting properties under real
#      contention (lock_zoo_test), executor
#      abort storms (executor_storm_test, with parallel workers),
#      the submit-vs-shutdown race (executor_shutdown_race_test),
#      the M-worker mode witnesses (executor_multicpu_test), the
#      unified shared-object layer hammered from parallel threads
#      (shared_object_test), the read/write object flavours on the
#      executor adapter (exec_objects_test), the sharded stripes
#      plus live contention controller — conservation and attribution
#      across concurrent promote/demote (sharded_object_test,
#      contention_controller_test), and the service-mode pieces: the
#      batched SpscRing push_n/pop_n paths (lockfree_test), the
#      concurrent latency histogram, the sharded timer wheel, and the
#      streaming Service ingest/admission front end
#      (latency_histogram_test, timer_wheel_test, service_test),
#   3. -O2 build, tier-1 suite, tiny sched_throughput + sim_throughput
#      sweeps as bench smoke tests (the latter also re-checks
#      serial-vs-parallel result identity in production), a
#      heatmap_contention smoke that must report a non-empty
#      objects × tasks contention matrix for every kind × impl combo,
#      and a shard_adaptive smoke (adaptive-sharding invariants live).
#
# Stages 1 and 2 also run the cross-substrate validation bench
# (ext_executor_validation --tiny): real executor runs under each
# sanitizer, with the sim-vs-executor agreement assertions live.  The
# TSan stage runs it twice — once at cpu_count=1 and once at
# cpu_count=4 — so races between genuinely overlapping workers cannot
# regress silently.
#
# Usage: scripts/check.sh [jobs]      (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> [1/3] sanitizer build + tests (build-asan/)"
cmake -B build-asan -S . -DLFRT_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"
./build-asan/bench/ext_executor_validation --tiny \
      --out build-asan/BENCH_xval_smoke.json

echo "==> [2/3] thread-sanitizer build + concurrency tests (build-tsan/)"
cmake -B build-tsan -S . -DLFRT_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" \
      --target exp_test determinism_test concurrent_build_test \
               lockfree_test lock_zoo_test executor_storm_test \
               executor_shutdown_race_test executor_multicpu_test \
               shared_object_test exec_objects_test \
               sharded_object_test contention_controller_test \
               latency_histogram_test timer_wheel_test service_test \
               analysis_mp_test cost_model_test report_json_test \
               placement_test ext_executor_validation
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R '^(ExpThreadPool|ExpParallelMap|ExpSweep|ExpThreads|Determinism|ConcurrentBuild|MsQueue|TreiberStack|SpscRing|NodePool|TaggedRef|Sweep/AbaHammerTest|ExecutorStorm|ExecutorShutdownRace|ExecutorMultiCpu|SharedObject|Zoo/SharedObjectAllCombos|ObjectRegistryTest|LockZoo/(Ticket|Anderson|Mcs)|LockedWrappers|ReaderWriterKinds/ExecObjects|ExecObjectsLockBased|ExecObjectsMixed|ShardedQueue|ShardedStack|EliminationArray|SharedObjectSharded|LiveController|LatencyHistogram|TimerWheel|Service|AnalysisMpBounds|AnalysisMpStrict|AnalysisMpSaturate|AnalysisMpCertify|AccessCostArithmetic|CostModelTable|CostModelFlatIdentity|CalibrationCache|ReportJson|ObjectSpecJson|Placement(Select|Sim|Controller|Analysis|Executor|Json)?)\.'
./build-tsan/bench/ext_executor_validation --tiny --cpus=1 \
      --out build-tsan/BENCH_xval_smoke.json
./build-tsan/bench/ext_executor_validation --tiny --cpus=4 \
      --out build-tsan/BENCH_xval_smoke_cpu4.json

echo "==> [3/3] optimized build + tests + bench smoke (build-o2/)"
cmake -B build-o2 -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-o2 -j "$JOBS"
ctest --test-dir build-o2 --output-on-failure -j "$JOBS"
./build-o2/bench/sched_throughput --tiny --out build-o2/BENCH_sched_smoke.json
./build-o2/bench/sim_throughput --tiny --out build-o2/BENCH_sweep_smoke.json
# Heatmap smoke: the bench self-validates (non-empty matrix, rows ==
# objects × tasks, attribution sums, JSON round-trip) and exits
# non-zero on violation; the grep pins the "all combos checked" line so
# a silently truncated sweep also fails.
HEAT_OUT=$(./build-o2/bench/heatmap_contention --tiny \
      --out build-o2/BENCH_heatmap_smoke.json)
echo "$HEAT_OUT" | tail -n 2
echo "$HEAT_OUT" | grep -q '20 combos, 4x8 cells each — all checks ok'
# Adaptive-sharding smoke: attribution invariants and the controller
# acting are asserted even in --tiny; the pinned line catches a
# silently skipped check block.
SHARD_OUT=$(./build-o2/bench/shard_adaptive --tiny \
      --out build-o2/BENCH_shard_smoke.json)
echo "$SHARD_OUT" | tail -n 2
echo "$SHARD_OUT" | grep -q 'shard_adaptive: all checks ok'
# Service-mode smoke: 20k-job open-loop soak through both universes
# with the ingest conservation ledger, latency percentiles, and the
# 10x batched-ingest-over-seed assertion all live even in --tiny.
SOAK_OUT=$(./build-o2/bench/soak_service --tiny \
      --out build-o2/BENCH_soak_smoke.json)
echo "$SOAK_OUT" | tail -n 2
echo "$SOAK_OUT" | grep -q 'soak_service: all checks ok'
# Multiprocessor certification smoke: every (cpus, impl, substrate)
# heatmap cell must sit under its analysis::mp bound — the bench exits
# non-zero on any violation; the pinned line catches truncated sweeps.
MPB_OUT=$(./build-o2/bench/mp_bounds --tiny \
      --out build-o2/BENCH_mp_bounds_smoke.json)
echo "$MPB_OUT" | tail -n 2
echo "$MPB_OUT" | grep -q 'mp_bounds: all checks ok'
# Placement smoke: every placement's certificate must be violation-free
# and the partitioned bounds at least as tight as the global ones with
# a strictly tighter cell per (cpus, impl); exits non-zero on any
# violation, the pinned line catches truncated sweeps.
PLACE_OUT=$(./build-o2/bench/placement_sweep --tiny \
      --out build-o2/BENCH_placement_smoke.json)
echo "$PLACE_OUT" | tail -n 2
echo "$PLACE_OUT" | grep -q 'placement_sweep: all checks ok'
echo "OK: ASan+TSan clean, tier-1 green twice, bench smokes passed"
