// Wait-free single-producer/single-consumer ring buffer.
//
// Included as a contrast structure: the paper's related work (Kopetz's
// NBW protocol [16] and successors [6, 7, 14]) covers wait-free sharing,
// which completes in a *bounded* number of steps but needs a-priori
// knowledge of the communicating parties.  For the SPSC special case a
// ring buffer is wait-free with no retries at all; examples use it to
// illustrate the retry-free end of the design space.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/object_stats.hpp"
#include "support/cacheline.hpp"
#include "support/check.hpp"

namespace lfrt::lockfree {

/// Bounded wait-free SPSC FIFO.  One thread may call push, one thread
/// may call pop; both complete in O(1) steps unconditionally.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) : buf_(capacity + 1) {
    LFRT_CHECK_MSG(capacity >= 1, "ring needs capacity >= 1");
  }

  /// Returns false when full (never blocks, never retries).
  bool push(const T& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = advance(head);
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buf_[head] = value;
    head_.store(next, std::memory_order_release);
    stats_.record_op();
    return true;
  }

  /// Move-in overload of push; same wait-free contract.
  bool push(T&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = advance(head);
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buf_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    stats_.record_op();
    return true;
  }

  /// Batch push: copies up to `n` elements from `src` and publishes
  /// them with ONE release store (a consumer sees either none or a
  /// prefix of the batch, never a gap).  Returns how many fit — 0..n,
  /// bounded by the free space observed at entry.  Wait-free.
  std::size_t push_n(const T* src, std::size_t n) {
    return push_some<const T>(src, n);
  }

  /// Batch push, moving from `src`.  Elements NOT accepted (beyond the
  /// returned count) are left untouched in `src`, so a producer can
  /// retry the remainder later.
  std::size_t push_n(T* src, std::size_t n) { return push_some<T>(src, n); }

  /// Batch pop: moves up to `max_n` elements into `dst` and retires
  /// them with ONE release store.  Returns how many were popped —
  /// 0..max_n, bounded by the occupancy observed at entry.  Wait-free.
  std::size_t pop_n(T* dst, std::size_t max_n) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t cap = buf_.size();
    const std::size_t avail = (head + cap - tail) % cap;
    const std::size_t take = max_n < avail ? max_n : avail;
    std::size_t t = tail;
    for (std::size_t i = 0; i < take; ++i) {
      dst[i] = std::move(buf_[t]);
      t = advance(t);
    }
    if (take > 0) {
      tail_.store(t, std::memory_order_release);
      stats_.record_op(static_cast<std::int64_t>(take));
    }
    return take;
  }

  /// Empty optional when empty (never blocks, never retries).
  std::optional<T> pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = buf_[tail];
    tail_.store(advance(tail), std::memory_order_release);
    stats_.record_op();
    return value;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  /// Retries stay zero by construction — the wait-free contrast point.
  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  std::size_t advance(std::size_t i) const {
    return (i + 1) % buf_.size();
  }

  /// Shared body of the push_n overloads: U is `const T` (copy) or
  /// `T` (move).  One acquire load of tail, one release store of head.
  template <typename U>
  std::size_t push_some(U* src, std::size_t n) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t cap = buf_.size();
    const std::size_t free_slots = (tail + cap - head - 1) % cap;
    const std::size_t take = n < free_slots ? n : free_slots;
    std::size_t h = head;
    for (std::size_t i = 0; i < take; ++i) {
      if constexpr (std::is_const_v<U>)
        buf_[h] = src[i];
      else
        buf_[h] = std::move(src[i]);
      h = advance(h);
    }
    if (take > 0) {
      head_.store(h, std::memory_order_release);
      stats_.record_op(static_cast<std::int64_t>(take));
    }
    return take;
  }

  std::vector<T> buf_;
  // Producer-written head and consumer-written tail on their own lines:
  // unpadded they share one, and every push invalidates the consumer's
  // cached tail (and vice versa) even when neither index changed hands.
  alignas(support::kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(support::kCacheLineSize) std::atomic<std::size_t> tail_{0};
  runtime::ObjectStats stats_;
};

}  // namespace lfrt::lockfree
