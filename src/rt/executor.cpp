#include "rt/executor.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/object_stats.hpp"
#include "sched/dispatch.hpp"
#include "sched/scheduler.hpp"
#include "support/check.hpp"

namespace lfrt::rt {
namespace {

using Clock = std::chrono::steady_clock;

enum class RtState : std::uint8_t {
  kReady,      // submitted, waiting for its first dispatch
  kRunning,    // dispatched to a CPU slot (its worker owns that CPU)
  kPreempted,  // parked inside checkpoint()
  kAborting,   // abort requested; body will throw at its next checkpoint
  kCompleted,
  kAborted,
};

bool terminal(RtState s) {
  return s == RtState::kCompleted || s == RtState::kAborted;
}

}  // namespace

struct Executor::Impl {
  struct JobRec;

  const sched::Scheduler* scheduler;
  const int cpu_count;
  Clock::time_point epoch = Clock::now();

  std::mutex mu;
  std::condition_variable sched_cv;    // wakes the scheduling thread
  std::condition_variable worker_cv;   // wakes parked workers
  std::map<JobId, std::unique_ptr<JobRec>> jobs;
  JobId next_id = 0;
  // Per-CPU occupancy: running_on[c] is the job dispatched to CPU c
  // (kNoJob = idle).  Invariant under mu: running_on[c] == id iff
  // jobs.at(id)->cpu == c.
  std::vector<JobId> running_on;
  // Gauge of workers currently inside job bodies; feeds the report's
  // max_concurrency_observed high-water mark.
  int executing_now = 0;
  bool stopping = false;
  ExecutorReport report;
  sched::DispatchSelector selector;
  const std::vector<JobId> no_front;  // handlers run off-CPU, no front jobs
  std::thread sched_thread;

  struct JobRec final : public JobContext {
    Impl* owner = nullptr;
    JobId jid = kNoJob;
    RtJob spec;
    RtState state = RtState::kReady;
    int cpu = -1;            // CPU slot currently held, -1 = none
    bool counted = false;    // inside the executing_now gauge
    Time ran_for = 0;        // accumulated execution time estimate input
    Time last_dispatch = 0;  // when it last got a CPU
    std::thread worker;

    /// The job's terminal record for the RunReport: arrival/critical
    /// from real clocks, retries/blockings credited by the shared
    /// structures through this worker's ScopedAccessSink, preemptions
    /// counted by the scheduling thread.
    Job acct;

    // --- JobContext ---
    void checkpoint() override {
      std::unique_lock<std::mutex> lock(owner->mu);
      if (state == RtState::kAborting) throw JobAborted{};
      if (cpu >= 0) return;  // still dispatched: keep going
      // Preempted: leave the concurrency gauge and park.  The worker
      // never migrates and its thread-local access sink stays
      // installed, so structure events after resumption still credit
      // this job.
      state = RtState::kPreempted;
      owner->leave_body(*this);
      owner->sched_cv.notify_all();
      owner->worker_cv.wait(lock, [&] {
        return cpu >= 0 || state == RtState::kAborting;
      });
      if (state == RtState::kAborting) throw JobAborted{};
      state = RtState::kRunning;
      owner->enter_body(*this);
    }

    bool aborted() const override {
      std::lock_guard<std::mutex> lock(owner->mu);
      return state == RtState::kAborting;
    }

    JobId id() const override { return jid; }
  };

  Impl(const sched::Scheduler& sch, ExecutorConfig cfg)
      : scheduler(&sch), cpu_count(cfg.cpu_count) {
    LFRT_CHECK_MSG(cpu_count >= 1, "ExecutorConfig::cpu_count must be >= 1");
    running_on.assign(static_cast<std::size_t>(cpu_count), kNoJob);
    report.cpu_count = cpu_count;
    report.cpu_busy.assign(static_cast<std::size_t>(cpu_count), 0);
    sched_thread = std::thread([this] { scheduler_loop(); });
  }

  Time now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - epoch)
        .count();
  }

  // --- helpers; all require mu held ---

  void enter_body(JobRec& r) {
    r.counted = true;
    ++executing_now;
    report.max_concurrency_observed =
        std::max(report.max_concurrency_observed, executing_now);
  }

  // Idempotent: the abort path may leave before the handler runs and
  // the terminal path leaves unconditionally.
  void leave_body(JobRec& r) {
    if (!r.counted) return;
    r.counted = false;
    --executing_now;
  }

  // Releases the job's CPU slot (if any) and accounts the stint, both
  // into the job's execution time and the per-CPU busy tally.
  void vacate_cpu(JobRec& r, Time t) {
    if (r.cpu < 0) return;
    const auto c = static_cast<std::size_t>(r.cpu);
    r.ran_for += t - r.last_dispatch;
    report.cpu_busy[c] += t - r.last_dispatch;
    running_on[c] = kNoJob;
    r.cpu = -1;
  }

  JobId submit(RtJob job) {
    LFRT_CHECK_MSG(job.tuf != nullptr, "job needs a TUF");
    LFRT_CHECK_MSG(job.body != nullptr, "job needs a body");
    LFRT_CHECK_MSG(job.expected_exec > 0, "job needs an execution estimate");
    std::unique_lock<std::mutex> lock(mu);
    // Reject instead of racing the drain: once shutdown has begun the
    // scheduling thread may already be gone, so an accepted job could
    // never be dispatched and counted_jobs == submitted would break.
    if (stopping) return kNoJob;
    const JobId id = next_id++;
    auto rec = std::make_unique<JobRec>();
    JobRec* r = rec.get();
    r->owner = this;
    r->jid = id;
    r->spec = std::move(job);
    r->acct.id = id;
    r->acct.task = r->spec.task;
    r->acct.arrival = now();
    r->acct.critical_abs = r->acct.arrival + r->spec.tuf->critical_time();
    ++report.submitted;
    report.max_possible_utility += r->spec.tuf->utility(0);
    jobs.emplace(id, std::move(rec));
    r->worker = std::thread([this, r] { worker_main(r); });
    sched_cv.notify_all();
    return id;
  }

  void worker_main(JobRec* r) {
    {
      // Wait for the first dispatch (or an abort before ever running).
      std::unique_lock<std::mutex> lock(mu);
      worker_cv.wait(lock, [&] {
        return r->cpu >= 0 || r->state == RtState::kAborting;
      });
      if (r->state != RtState::kAborting) {
        r->state = RtState::kRunning;
        enter_body(*r);
      }
    }
    bool completed = false;
    {
      // Structure-level retry/contention events on this thread credit
      // the job's own counters — per-job f_i from real CAS failures.
      // One sink covers body and abort handler: both run here, and this
      // thread runs nothing else, so credits cannot leak across jobs no
      // matter how many workers are inside a structure at once.
      runtime::ScopedAccessSink sink(&r->acct.retries, &r->acct.blockings,
                                     &r->acct.backoff_spins);
      try {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (r->state == RtState::kAborting) throw JobAborted{};
        }
        r->spec.body(*r);
        completed = true;
      } catch (const JobAborted&) {
        {
          // The handler runs off-CPU: it is compensation, not body
          // execution, so it leaves the concurrency gauge first.
          std::lock_guard<std::mutex> lock(mu);
          leave_body(*r);
        }
        if (r->spec.abort_handler) r->spec.abort_handler();
      }
    }
    std::unique_lock<std::mutex> lock(mu);
    leave_body(*r);
    if (completed) {
      r->state = RtState::kCompleted;
      r->acct.state = JobState::kCompleted;
      r->acct.completion = now();
      ++report.completed;
      report.accrued_utility +=
          r->spec.tuf->utility(r->acct.completion - r->acct.arrival);
    } else {
      r->state = RtState::kAborted;
      r->acct.state = JobState::kAborted;
      ++report.aborted;
    }
    vacate_cpu(*r, now());
    r->acct.exec_actual = r->ran_for;
    sched_cv.notify_all();
  }

  void scheduler_loop() {
    std::unique_lock<std::mutex> lock(mu);
    // Reused across scheduling passes so the loop's steady state stays
    // off the allocator (same contract as the simulator's hot path).
    const auto ws = scheduler->make_workspace();
    sched::ScheduleResult res;
    std::vector<sched::SchedJob> view;
    while (true) {
      const Time t = now();

      // Raise abort-exceptions for expired jobs (the timer going off).
      for (auto& [id, r] : jobs) {
        if (terminal(r->state) || r->state == RtState::kAborting) continue;
        if (t >= r->acct.critical_abs) {
          r->state = RtState::kAborting;
          vacate_cpu(*r, t);
          worker_cv.notify_all();  // parked workers observe and throw
        }
      }

      // Build the scheduler view over pending jobs.
      view.clear();
      for (auto& [id, r] : jobs) {
        if (terminal(r->state) || r->state == RtState::kAborting) continue;
        sched::SchedJob sj;
        sj.id = id;
        sj.arrival = r->acct.arrival;
        sj.critical = r->acct.critical_abs;
        Time elapsed = r->ran_for;
        if (r->cpu >= 0) elapsed += t - r->last_dispatch;
        sj.remaining = std::max<Time>(1, r->spec.expected_exec - elapsed);
        sj.tuf = r->spec.tuf.get();
        view.push_back(sj);
      }

      if (stopping && view.empty()) return;

      scheduler->build_into(view, t, ws.get(), res);
      ++report.sched_invocations;
      report.sched_ops += res.ops;

      // Top-M target selection + sticky assignment: the exact rule the
      // simulator's cpu_count > 1 path applies (sched/dispatch.hpp).
      // With no conflict groups installed select_steered IS select.
      const auto& targets = selector.select_steered(
          no_front, res, cpu_count, static_cast<std::size_t>(next_id),
          [&](JobId id) {
            const auto it = jobs.find(id);
            if (it == jobs.end()) return false;
            const RtState s = it->second->state;
            return !terminal(s) && s != RtState::kAborting;
          },
          [&](JobId id) -> TaskId {
            const auto it = jobs.find(id);
            return it == jobs.end() ? TaskId{-1} : it->second->spec.task;
          });
      const auto& next = selector.assign_sticky(
          targets, cpu_count, [&](JobId id) { return jobs.at(id)->cpu; });

      bool changed = false;
      for (int c = 0; c < cpu_count; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const JobId prev = running_on[ci];
        const JobId target = next[ci];
        if (prev == target) continue;
        changed = true;
        if (prev != kNoJob) {
          // Deschedule: account the stint (a preemption if the job is
          // still unfinished).
          JobRec& p = *jobs.at(prev);
          vacate_cpu(p, t);
          if (!terminal(p.state) && p.state != RtState::kAborting) {
            ++p.acct.preemptions;
            ++report.total_preemptions;
          }
        }
        if (target != kNoJob) {
          JobRec& n = *jobs.at(target);
          n.cpu = c;
          n.last_dispatch = t;
          running_on[ci] = target;
          ++report.dispatches;
        }
      }
      if (changed) worker_cv.notify_all();

      // Sleep until the next critical time (abort timer) or any event.
      Time next_expiry = kTimeNever;
      for (auto& [id, r] : jobs) {
        if (terminal(r->state) || r->state == RtState::kAborting) continue;
        next_expiry = std::min(next_expiry, r->acct.critical_abs);
      }
      if (next_expiry == kTimeNever) {
        sched_cv.wait(lock);
      } else {
        sched_cv.wait_until(
            lock, epoch + std::chrono::nanoseconds(next_expiry));
      }
    }
  }

  void set_task_conflict_groups(std::vector<std::int32_t> groups) {
    std::lock_guard<std::mutex> lock(mu);
    selector.set_conflict_groups(std::move(groups));
    sched_cv.notify_all();  // re-dispatch under the new steering
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mu);
    sched_cv.wait(lock, [&] {
      return std::all_of(jobs.begin(), jobs.end(), [](const auto& kv) {
        return terminal(kv.second->state);
      });
    });
  }

  ExecutorReport shutdown() {
    {
      // Close the door first: submissions from here on are rejected
      // (submit returns kNoJob), so the drain below is over a frozen
      // job population and counted_jobs == submitted holds.
      std::lock_guard<std::mutex> lock(mu);
      stopping = true;
      sched_cv.notify_all();
    }
    drain();
    sched_thread.join();
    for (auto& [id, r] : jobs)
      if (r->worker.joinable()) r->worker.join();
    std::lock_guard<std::mutex> lock(mu);
    // Assemble the shared RunReport view: every accepted job reached a
    // terminal state (drain above), so all of them are counted.
    report.counted_jobs = report.submitted;
    report.jobs.clear();
    report.total_retries = 0;
    report.total_blockings = 0;
    report.total_backoff_spins = 0;
    for (const auto& [id, r] : jobs) {  // std::map: id order
      report.jobs.push_back(r->acct);
      report.total_retries += r->acct.retries;
      report.total_blockings += r->acct.blockings;
      report.total_backoff_spins += r->acct.backoff_spins;
    }
    return report;
  }
};

Executor::Executor(const sched::Scheduler& scheduler, ExecutorConfig config)
    : impl_(std::make_unique<Impl>(scheduler, config)) {}

Executor::~Executor() {
  if (impl_ && impl_->sched_thread.joinable()) (void)impl_->shutdown();
}

JobId Executor::submit(RtJob job) { return impl_->submit(std::move(job)); }

void Executor::drain() { impl_->drain(); }

void Executor::set_task_conflict_groups(std::vector<std::int32_t> groups) {
  impl_->set_task_conflict_groups(std::move(groups));
}

ExecutorReport Executor::shutdown() { return impl_->shutdown(); }

}  // namespace lfrt::rt
