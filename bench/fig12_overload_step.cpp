// Figure 12: AUR/CMR during overload (AL ~= 1.1), step TUFs.
#include "aur_cmr_sweep.hpp"

int main(int argc, char** argv) {
  lfrt::bench::init(argc, argv);
  return lfrt::bench::run_aur_cmr_sweep("Figure 12", 1.1,
                                        lfrt::workload::TufClass::kStep);
}
