file(REMOVE_RECURSE
  "CMakeFiles/readwrite_test.dir/readwrite_test.cpp.o"
  "CMakeFiles/readwrite_test.dir/readwrite_test.cpp.o.d"
  "readwrite_test"
  "readwrite_test.pdb"
  "readwrite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readwrite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
