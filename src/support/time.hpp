// Simulation time base for the lfrt library.
//
// All simulator state advances in integer nanoseconds.  A single signed
// 64-bit tick type is used for both points and durations; the helpers
// below construct values from human-scale units.  2^63 ns is ~292 years,
// far beyond any experiment horizon, so overflow is not a practical
// concern and the type stays trivially copyable and cheap to pass.
#pragma once

#include <cstdint>
#include <limits>

namespace lfrt {

/// Simulation time in nanoseconds (point or duration by context).
using Time = std::int64_t;

/// Sentinel for "no deadline / never".
inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

constexpr Time nsec(std::int64_t v) { return v; }
constexpr Time usec(std::int64_t v) { return v * 1'000; }
constexpr Time msec(std::int64_t v) { return v * 1'000'000; }
constexpr Time sec(std::int64_t v) { return v * 1'000'000'000; }

/// Convert a tick count to floating-point microseconds (for reporting).
constexpr double to_usec(Time t) { return static_cast<double>(t) / 1e3; }

/// Convert a tick count to floating-point milliseconds (for reporting).
constexpr double to_msec(Time t) { return static_cast<double>(t) / 1e6; }

/// Convert a tick count to floating-point seconds (for reporting).
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e9; }

/// Ceiling division for non-negative operands: ceil(num / den).
///
/// Used throughout the UAM arithmetic, e.g. the ceil(C_i / W_j) term of
/// the Theorem-2 retry bound.
constexpr std::int64_t ceil_div(std::int64_t num, std::int64_t den) {
  return (num + den - 1) / den;
}

}  // namespace lfrt
