# Empty compiler generated dependencies file for rover_overload.
# This may be replaced when dependencies are built.
