#include "runtime/exec_adapter.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "runtime/contention_controller.hpp"
#include "runtime/shared_object.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "uam/uam.hpp"

namespace lfrt::runtime {
namespace {

using Clock = std::chrono::steady_clock;

/// Busy-wait this thread for `ns` of wall clock (synthetic compute).
void spin_for(Time ns) {
  const auto until = Clock::now() + std::chrono::nanoseconds(ns);
  while (Clock::now() < until) {
  }
}

/// Lower one task's parameters into an RtJob: spin exec_time in
/// checkpointed quanta, performing each access through the unified
/// SharedObject layer.  The layer places a checkpoint mid-access (so
/// mid-access aborts stay reachable) and rolls back its own unbalanced
/// inserts before rethrowing — no abort handler needed for object
/// consistency (Section 3.5's compensation, inlined in the layer).
rt::RtJob make_job(const TaskParams& tp,
                   const std::shared_ptr<SharedObjectSet>& objs,
                   Time quantum) {
  rt::RtJob job;
  job.task = tp.id;
  job.tuf = tp.tuf;
  job.expected_exec = tp.exec_time;
  job.body = [objs, quantum, task = tp.id, exec = tp.exec_time,
              accesses = tp.accesses](rt::JobContext& ctx) {
    Time done = 0;
    auto advance_to = [&](Time target) {
      while (done < target) {
        const Time q = std::min<Time>(quantum, target - done);
        spin_for(q);
        done += q;
        ctx.checkpoint();
      }
    };
    for (const AccessSpec& a : accesses) {
      advance_to(std::min(a.offset, exec));
      objs->access(a.object,
                   a.write ? AccessOp::kWrite : AccessOp::kRead, task,
                   ctx.id(), [&ctx] { ctx.checkpoint(); });
    }
    advance_to(exec);
  };
  return job;
}

}  // namespace

std::vector<std::vector<Time>> make_arrival_traces(const TaskSet& ts,
                                                   Time horizon,
                                                   std::uint64_t seed,
                                                   bool periodic) {
  std::vector<std::vector<Time>> traces(ts.tasks.size());
  for (const auto& t : ts.tasks) {
    Rng rng(seed ^ (0xA5A5A5A5ULL * static_cast<std::uint64_t>(t.id + 1)));
    traces[static_cast<std::size_t>(t.id)] =
        periodic ? arrivals::periodic_phased(t.arrival, horizon, rng)
                 : arrivals::random_conformant(t.arrival, horizon, rng);
  }
  return traces;
}

std::vector<ObjectSpec> resolve_object_specs(const TaskSet& ts,
                                             const ExecConfig& cfg) {
  if (cfg.objects.empty())
    return uniform_objects(ts.object_count, ObjectKind::kQueue,
                           ObjectImpl::kLockFree);
  LFRT_CHECK_MSG(static_cast<std::int32_t>(cfg.objects.size()) ==
                     ts.object_count,
                 "ExecConfig::objects must list one spec per object");
  return cfg.objects;
}

rt::ExecutorReport run_on_executor(const TaskSet& ts,
                                   const sched::Scheduler& scheduler,
                                   const ExecConfig& cfg) {
  ts.validate();
  TaskId max_task = -1;
  for (const auto& t : ts.tasks) max_task = std::max(max_task, t.id);
  const std::vector<ObjectSpec> specs = resolve_object_specs(ts, cfg);

  // Placement lowering: under a non-global policy with object scoping,
  // queue/stack objects get one instance per cluster and each task is
  // routed to its cluster's instance — the executor-side twin of the
  // simulator's scoped conflict model.
  sched::Placement placement = cfg.dispatch.placement;
  placement.validate(cfg.cpu_count, static_cast<std::size_t>(max_task + 1));
  placement.task_affinity.resize(static_cast<std::size_t>(max_task + 1), -1);
  const std::int32_t cluster_count = placement.cluster_count(cfg.cpu_count);
  bool any_adapt = false;
  bool any_scoped_kind = false;
  for (const ObjectSpec& s : specs) {
    any_adapt = any_adapt || s.adapt;
    any_scoped_kind = any_scoped_kind || is_scoped_kind(s.kind);
  }
  const bool scoped =
      !placement.global() && placement.scope_objects && any_scoped_kind;
  std::vector<std::int32_t> task_inst(static_cast<std::size_t>(max_task + 1),
                                      0);
  if (scoped) {
    LFRT_CHECK_MSG(!any_adapt,
                   "scoped placement excludes adaptive sharding");
    for (TaskId t = 0; t <= max_task; ++t) {
      const std::int32_t c = placement.cluster_of_task(t);
      task_inst[static_cast<std::size_t>(t)] =
          (c >= 0 && c < cluster_count) ? c : 0;
    }
  }
  auto objs = std::make_shared<SharedObjectSet>(
      specs, static_cast<std::int32_t>(max_task + 1), cfg.queue_capacity,
      scoped ? cluster_count : 1, task_inst);

  // Flatten the per-task traces into one tape, keeping only jobs whose
  // critical time falls within the horizon (the simulator's counting
  // rule) so both substrates score the same population.
  struct Arrival {
    Time at;
    TaskId task;
  };
  const auto traces =
      make_arrival_traces(ts, cfg.horizon, cfg.arrival_seed,
                          cfg.periodic_arrivals);
  std::vector<Arrival> tape;
  for (const auto& t : ts.tasks)
    for (Time at : traces[static_cast<std::size_t>(t.id)])
      if (at + t.critical_time() <= cfg.horizon) tape.push_back({at, t.id});
  std::stable_sort(tape.begin(), tape.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.at != b.at ? a.at < b.at : a.task < b.task;
                   });

  rt::ExecutorConfig excfg{cfg.cpu_count};
  excfg.dispatch = cfg.dispatch;
  rt::Executor ex(scheduler, excfg);

  // Live contention controller, when an object opted into adaptive
  // sharding or the config opted into placement actions: it reads the
  // registry's heatmap every epoch, promotes/demotes stripes on the
  // real structures (or migrates tasks/instances), and installs
  // dispatch steering.  Stopped before shutdown so the final matrix is
  // quiescent.
  const bool want_place = cfg.controller.place && !placement.global();
  std::unique_ptr<ContentionController> controller;
  if (any_adapt || want_place) {
    controller =
        std::make_unique<ContentionController>(cfg.controller, objs.get(), &ex);
    if (want_place) {
      // Topology for the placement actions: who accesses each object
      // (id order) and the single writer of each (or -1 if contested).
      std::vector<std::vector<TaskId>> accessors_of(
          static_cast<std::size_t>(objs->object_count()));
      std::vector<TaskId> writer_of(
          static_cast<std::size_t>(objs->object_count()), -1);
      std::vector<bool> contested(
          static_cast<std::size_t>(objs->object_count()), false);
      for (const auto& t : ts.tasks) {
        for (const AccessSpec& a : t.accesses) {
          auto& acc = accessors_of[static_cast<std::size_t>(a.object)];
          if (std::find(acc.begin(), acc.end(), t.id) == acc.end())
            acc.push_back(t.id);
          if (a.write) {
            auto& w = writer_of[static_cast<std::size_t>(a.object)];
            if (w >= 0 && w != t.id)
              contested[static_cast<std::size_t>(a.object)] = true;
            w = t.id;
          }
        }
      }
      for (std::size_t o = 0; o < writer_of.size(); ++o) {
        if (contested[o]) writer_of[o] = -1;
        std::sort(accessors_of[o].begin(), accessors_of[o].end());
      }
      controller->enable_placement(placement, cluster_count,
                                   std::move(accessors_of),
                                   std::move(writer_of));
    }
    controller->start();
  }

  const auto epoch = Clock::now();
  for (const Arrival& a : tape) {
    std::this_thread::sleep_until(epoch + std::chrono::nanoseconds(a.at));
    ex.submit(make_job(ts.by_id(a.task), objs, cfg.quantum));
  }
  ex.drain();
  if (controller) controller->stop();
  rt::ExecutorReport rep = ex.shutdown();
  rep.contention = objs->matrix();
  return rep;
}

rt::ExecutorReport run_on_executor(const workload::WorkloadSpec& spec,
                                   const sched::Scheduler& scheduler,
                                   const ExecConfig& cfg) {
  return run_on_executor(workload::make_task_set(spec), scheduler, cfg);
}

}  // namespace lfrt::runtime
