// Lock-based counterparts of the lock-free structures.
//
// These serialize access by mutual exclusion, exactly the class of
// mechanism the paper's lock-based RUA manages.  Contention accounting
// (how often an acquire found the lock held) lets the rt-layer
// microbenchmarks separate the raw critical-section cost from the
// blocking cost, mirroring the r-vs-s decomposition of Section 5.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace lfrt::lockbased {

/// Blocking/contention accounting shared by the lock-based structures.
struct LockStats {
  std::atomic<std::int64_t> acquisitions{0};
  std::atomic<std::int64_t> contended{0};  ///< acquire found lock held

  double contention_ratio() const {
    const auto a = acquisitions.load(std::memory_order_relaxed);
    if (a == 0) return 0.0;
    return static_cast<double>(contended.load(std::memory_order_relaxed)) /
           static_cast<double>(a);
  }
};

/// Unbounded mutex-protected MPMC FIFO.
template <typename T>
class MutexQueue {
 public:
  void enqueue(const T& value) {
    Guard g(*this);
    q_.push_back(value);
  }

  std::optional<T> dequeue() {
    Guard g(*this);
    if (q_.empty()) return std::nullopt;
    T value = q_.front();
    q_.pop_front();
    return value;
  }

  bool empty() const {
    Guard g(const_cast<MutexQueue&>(*this));
    return q_.empty();
  }

  const LockStats& stats() const { return stats_; }

 private:
  /// Lock guard that records whether the acquire contended.
  class Guard {
   public:
    explicit Guard(MutexQueue& q) : q_(q) {
      q_.stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
      if (!q_.mutex_.try_lock()) {
        q_.stats_.contended.fetch_add(1, std::memory_order_relaxed);
        q_.mutex_.lock();
      }
    }
    ~Guard() { q_.mutex_.unlock(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    MutexQueue& q_;
  };

  mutable std::mutex mutex_;
  std::deque<T> q_;
  LockStats stats_;
};

/// Unbounded mutex-protected MPMC LIFO.
template <typename T>
class MutexStack {
 public:
  void push(const T& value) {
    record_acquire();
    std::lock_guard<std::mutex> g(mutex_);
    s_.push_back(value);
  }

  std::optional<T> pop() {
    record_acquire();
    std::lock_guard<std::mutex> g(mutex_);
    if (s_.empty()) return std::nullopt;
    T value = s_.back();
    s_.pop_back();
    return value;
  }

  bool empty() const {
    std::lock_guard<std::mutex> g(mutex_);
    return s_.empty();
  }

  const LockStats& stats() const { return stats_; }

 private:
  void record_acquire() {
    stats_.acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (mutex_.try_lock()) {
      mutex_.unlock();
    } else {
      stats_.contended.fetch_add(1, std::memory_order_relaxed);
    }
  }

  mutable std::mutex mutex_;
  std::deque<T> s_;
  LockStats stats_;
};

}  // namespace lfrt::lockbased
