#include "sched/edf_pip.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/check.hpp"

namespace lfrt::sched {

ScheduleResult EdfPipScheduler::build(const std::vector<SchedJob>& jobs,
                                      Time /*now*/) const {
  ScheduleResult out;
  const std::size_t n = jobs.size();
  if (n == 0) return out;

  std::unordered_map<JobId, std::size_t> index;
  index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index.emplace(jobs[i].id, i);
  out.ops += static_cast<std::int64_t>(n);

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (jobs[a].critical != jobs[b].critical)
      return jobs[a].critical < jobs[b].critical;
    return jobs[a].id < jobs[b].id;
  });
  std::int64_t cost = 1;
  for (std::size_t len = n; len > 1; len >>= 1) ++cost;
  out.ops += static_cast<std::int64_t>(n) * cost;

  out.schedule.reserve(n);
  for (std::size_t i : order) out.schedule.push_back(jobs[i].id);

  // Dispatch: the earliest-critical job, or — inheritance — the
  // (transitive) holder it waits on.
  for (std::size_t i : order) {
    std::size_t cur = i;
    std::size_t steps = 0;
    while (jobs[cur].waits_on != kNoJob) {
      const auto it = index.find(jobs[cur].waits_on);
      if (it == index.end()) break;  // holder departed: no dependency
      cur = it->second;
      out.ops += 1;
      LFRT_CHECK_MSG(++steps <= n,
                     "dependency cycle under EDF+PIP — nested critical "
                     "sections with deadlock require RUA's detector");
    }
    if (jobs[cur].runnable()) {
      out.dispatch = jobs[cur].id;
      break;
    }
    // The chain ended at a blocked job whose holder departed (its wake
    // is in flight); inherit on behalf of the next pending job instead.
  }
  return out;
}

}  // namespace lfrt::sched
