# Empty compiler generated dependencies file for lf_list_test.
# This may be replaced when dependencies are built.
