// Quickstart: build a small task set, run it under lock-free RUA and
// lock-based RUA, and compare accrued utility.
//
// This walks the full public API surface in ~60 lines:
//   1. describe tasks (UAM arrival tuple, TUF, execution, object accesses),
//   2. pick a scheduler (sched::RuaScheduler) and sharing mode,
//   3. simulate (sim::Simulator) and read the report,
//   4. check the paper's analytic bounds (analysis::*) against it.
#include <iostream>

#include "analysis/bounds.hpp"
#include "runtime/print_report.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"

using namespace lfrt;

int main() {
  // Two tasks sharing one queue-like object.  T0 is important (utility
  // 100) and slow; T1 is urgent but less important.
  TaskSet ts;
  ts.object_count = 1;

  TaskParams t0;
  t0.id = 0;
  t0.arrival = UamSpec{1, 1, msec(10)};         // <=1 arrival per 10 ms
  t0.tuf = make_step_tuf(100.0, msec(8));       // deadline-style TUF
  t0.exec_time = msec(3);
  t0.accesses = {{0, msec(1)}};                 // one shared-object access
  ts.tasks.push_back(std::move(t0));

  TaskParams t1;
  t1.id = 1;
  t1.arrival = UamSpec{1, 2, msec(10)};         // bursts of up to 2
  t1.tuf = make_linear_tuf(40.0, msec(4));      // value decays with time
  t1.exec_time = msec(1);
  t1.accesses = {{0, usec(500)}};
  ts.tasks.push_back(std::move(t1));
  ts.validate();

  std::cout << "approximate load AL = " << ts.approximate_load() << "\n";
  std::cout << "Theorem 2 retry bound, T0: "
            << analysis::retry_bound(ts, 0) << " retries max\n";
  std::cout << "Theorem 3: lock-free wins for T0 if s/r < "
            << analysis::lockfree_ratio_threshold(ts, 0) << "\n\n";

  for (const auto mode :
       {sim::ShareMode::kLockFree, sim::ShareMode::kLockBased}) {
    const sched::RuaScheduler rua(mode == sim::ShareMode::kLockBased
                                      ? sched::Sharing::kLockBased
                                      : sched::Sharing::kLockFree);
    sim::SimConfig cfg;
    cfg.mode = mode;
    cfg.lockfree_access_time = usec(2);   // s: one CAS-queue operation
    cfg.lock_access_time = usec(200);     // r: lock + scheduler activation
    cfg.sched_ns_per_op = 5.0;
    cfg.horizon = sec(1);

    sim::Simulator sim(ts, rua, cfg);
    sim.seed_arrivals(/*seed=*/2026);
    const sim::SimReport rep = sim.run();

    runtime::PrintOptions opts;
    opts.label = sim::to_string(mode) + " RUA";
    runtime::print_report(std::cout, rep, opts);
  }
  return 0;
}
