# Empty compiler generated dependencies file for ablation_sched_cost.
# This may be replaced when dependencies are built.
