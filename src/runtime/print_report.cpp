#include "runtime/print_report.hpp"

#include <algorithm>

#include "support/table.hpp"

namespace lfrt::runtime {

void print_report(std::ostream& os, const RunReport& rep,
                  const PrintOptions& opts) {
  if (opts.per_task) {
    TaskId max_task = -1;
    for (const Job& j : rep.jobs) max_task = std::max(max_task, j.task);
    Table table({"task", "jobs", "completed", "aborted", "retries",
                 "mean sojourn (ms)"});
    for (TaskId id = 0; id <= max_task; ++id) {
      const RunReport::TaskBreakdown b = rep.breakdown_of(id);
      if (b.jobs == 0) continue;
      std::string name;
      if (id < static_cast<TaskId>(opts.task_names.size())) {
        name = opts.task_names[static_cast<std::size_t>(id)];
      } else {
        name = "T";
        name += std::to_string(id);
      }
      table.add_row({name, std::to_string(b.jobs),
                     std::to_string(b.completed), std::to_string(b.aborted),
                     std::to_string(b.retries),
                     Table::num(b.mean_sojourn / 1e6, 2)});
    }
    table.print(os);
    os << '\n';
  }

  if (!opts.label.empty()) os << opts.label << ":  ";
  os << "AUR=" << Table::num(rep.aur(), 3)
     << "  CMR=" << Table::num(rep.cmr(), 3) << "  completed="
     << rep.completed << "/" << rep.counted_jobs
     << "  aborted=" << rep.aborted << "  retries=" << rep.total_retries
     << "  blockings=" << rep.total_blockings;
  if (opts.show_sched) {
    os << "  dispatches=" << rep.dispatches
       << "  sched_invocations=" << rep.sched_invocations
       << "  sched_ops=" << rep.sched_ops;
  }
  os << '\n';
}

}  // namespace lfrt::runtime
