#include "sched/edf_pip.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lfrt::sched {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

std::uint64_t hash_id(JobId id) {
  auto z = static_cast<std::uint64_t>(id) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::unique_ptr<Scheduler::Workspace> EdfPipScheduler::make_workspace()
    const {
  return std::make_unique<EdfPipWorkspace>();
}

void EdfPipScheduler::build_into(const std::vector<SchedJob>& jobs,
                                 Time /*now*/, Workspace* ws,
                                 ScheduleResult& out) const {
  out.clear();
  const std::size_t n = jobs.size();
  if (n == 0) return;

  EdfPipWorkspace transient;
  auto* w = ws ? dynamic_cast<EdfPipWorkspace*>(ws) : &transient;
  LFRT_CHECK_MSG(w != nullptr,
                 "EdfPipScheduler::build_into given a foreign workspace");

  std::size_t cap = 8;
  while (cap < 2 * n) cap <<= 1;
  const std::size_t mask = cap - 1;
  w->map_keys.assign(cap, kNoJob);
  w->map_vals.resize(cap);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t slot = static_cast<std::size_t>(hash_id(jobs[i].id)) & mask;
    while (w->map_keys[slot] != kNoJob && w->map_keys[slot] != jobs[i].id)
      slot = (slot + 1) & mask;
    if (w->map_keys[slot] == kNoJob) {
      w->map_keys[slot] = jobs[i].id;
      w->map_vals[slot] = i;
    }
  }
  out.ops += static_cast<std::int64_t>(n);

  auto lookup = [&](JobId id) -> std::size_t {
    std::size_t slot = static_cast<std::size_t>(hash_id(id)) & mask;
    while (w->map_keys[slot] != kNoJob) {
      if (w->map_keys[slot] == id) return w->map_vals[slot];
      slot = (slot + 1) & mask;
    }
    return kNpos;
  };

  auto& order = w->order;
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (jobs[a].critical != jobs[b].critical)
      return jobs[a].critical < jobs[b].critical;
    return jobs[a].id < jobs[b].id;
  });
  std::int64_t cost = 1;
  for (std::size_t len = n; len > 1; len >>= 1) ++cost;
  out.ops += static_cast<std::int64_t>(n) * cost;

  out.schedule.reserve(n);
  for (std::size_t i : order) out.schedule.push_back(jobs[i].id);

  // Dispatch: the earliest-critical job, or — inheritance — the
  // (transitive) holder it waits on.
  for (std::size_t i : order) {
    std::size_t cur = i;
    std::size_t steps = 0;
    while (jobs[cur].waits_on != kNoJob) {
      const std::size_t next = lookup(jobs[cur].waits_on);
      if (next == kNpos) break;  // holder departed: no dependency
      cur = next;
      out.ops += 1;
      LFRT_CHECK_MSG(++steps <= n,
                     "dependency cycle under EDF+PIP — nested critical "
                     "sections with deadlock require RUA's detector");
    }
    if (jobs[cur].runnable()) {
      out.dispatch = jobs[cur].id;
      break;
    }
    // The chain ended at a blocked job whose holder departed (its wake
    // is in flight); inherit on behalf of the next pending job instead.
  }
}

}  // namespace lfrt::sched
