// Million-job streaming soak: the service mode's acceptance artifact.
//
// Three claims, measured on real threads:
//
//   1. Ingest throughput.  The seed executor's submit path cost one
//      mutex acquisition AND one thread spawn+join per job
//      (thread-per-job).  The service path stages jobs into wait-free
//      per-producer lanes drained in batches by the scheduling thread.
//      This bench measures the seed path's per-job cost (measured
//      single-submit + measured thread spawn/join), the lane path, and
//      submit_batch, and ENFORCES a >= 10x lane-over-seed win.
//
//   2. Sustained soak with latency SLOs.  A capacity probe finds each
//      universe's saturation completion rate; the soak then drives an
//      open-loop arrival schedule (timer-wheel paced, P producers) at
//      ~70% of it until >= 1M jobs (20k in --tiny) have been offered
//      end-to-end through BOTH universes — bodies hammering a shared
//      lock-free MsQueue vs a lock-based MutexQueue — and reports
//      p50/p99/p999 sojourn and ingest-wait percentiles, jobs/s, and
//      utility/s from the executor's LatencyHistograms.
//
//   3. Conservation under storm.  In every phase the ingest ledger
//      must balance: offered == submitted + rejected,
//      counted_jobs == submitted + rejected, completed + aborted ==
//      submitted, lane_ingested == offered.
//
// Usage: soak_service [--tiny] [--threads=N] [--out FILE]
//   --tiny   smoke mode for check.sh/CI: 20k jobs, invariants and the
//            10x ingest ratio enforced, the 1M floor not
//   --out    JSON output path (default BENCH_soak.json in the cwd)
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "lockbased/mutex_queue.hpp"
#include "lockfree/msqueue.hpp"
#include "runtime/service.hpp"

namespace {

using namespace lfrt;

double elapsed_sec(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Seed-path cost component: one thread spawn + join, sequentially —
/// exactly what the thread-per-job executor paid per submission.
double measure_spawn_join_ns() {
  constexpr int kThreads = 200;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kThreads; ++i) {
    std::thread t([] {});
    t.join();
  }
  return elapsed_sec(t0) * 1e9 / kThreads;
}

/// A job that the executor can retire without dispatching a worker:
/// its critical time is already (nearly) past at admission, so the
/// abort wheel reclaims it inline on the next scheduling pass.  This
/// isolates the *submission path* being measured from body execution.
rt::RtJob expiring_job(const std::shared_ptr<const Tuf>& tuf) {
  rt::RtJob job;
  job.tuf = tuf;
  job.expected_exec = usec(1);
  job.body = [](rt::JobContext&) {};
  return job;
}

struct IngestRates {
  double single_ns = 0.0;      // one submit() call
  double batch_ns = 0.0;       // submit_batch amortized per job
  double lane_ns = 0.0;        // lane offer() amortized per job
  double spawn_ns = 0.0;       // thread spawn+join (seed component)
  double seed_ns = 0.0;        // spawn_ns + single_ns
  bool conserved = true;
};

IngestRates measure_ingest(std::int64_t n) {
  IngestRates r;
  r.spawn_ns = measure_spawn_join_ns();
  const std::shared_ptr<const Tuf> tuf = make_step_tuf(1.0, usec(1));
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  rt::ExecutorConfig cfg;
  cfg.cpu_count = 2;
  cfg.retain_job_records = false;

  auto conserved = [&r](const rt::ExecutorReport& rep, std::int64_t accepted) {
    r.conserved = r.conserved && rep.submitted + rep.rejected == accepted &&
                  rep.counted_jobs == rep.submitted + rep.rejected &&
                  rep.completed + rep.aborted == rep.submitted;
  };

  {  // single submit() — the seed call shape (minus the thread spawn)
    rt::Executor ex(rua, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < n; ++i) ex.submit(expiring_job(tuf));
    r.single_ns = elapsed_sec(t0) * 1e9 / static_cast<double>(n);
    conserved(ex.shutdown(), n);
  }
  {  // submit_batch, 256 jobs per mutex acquisition
    rt::Executor ex(rua, cfg);
    constexpr std::size_t kBatch = 256;
    std::vector<rt::RtJob> batch(kBatch);
    std::int64_t sent = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (sent < n) {
      const std::size_t take =
          static_cast<std::size_t>(std::min<std::int64_t>(
              static_cast<std::int64_t>(kBatch), n - sent));
      for (std::size_t i = 0; i < take; ++i) batch[i] = expiring_job(tuf);
      sent += static_cast<std::int64_t>(ex.submit_batch(batch.data(), take));
    }
    r.batch_ns = elapsed_sec(t0) * 1e9 / static_cast<double>(sent);
    conserved(ex.shutdown(), sent);
  }
  {  // wait-free lane offer(), drained in batches by the sched thread
    rt::Executor ex(rua, cfg);
    rt::IngestLane& lane = ex.open_lane(/*capacity=*/65536);
    std::int64_t accepted = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < n; ++i) {
      while (!lane.offer(expiring_job(tuf))) std::this_thread::yield();
      ++accepted;
    }
    r.lane_ns = elapsed_sec(t0) * 1e9 / static_cast<double>(accepted);
    conserved(ex.shutdown(), accepted);
  }
  r.seed_ns = r.spawn_ns + r.single_ns;
  return r;
}

// ---- soak ------------------------------------------------------------

enum class Universe { kLockFree, kLockBased };

struct SoakResult {
  runtime::ServiceReport rep;
  std::int64_t attempted = 0;   // arrivals the open-loop schedule fired
  std::int64_t accepted = 0;    // drive_open_loop offers that landed
  double target_rate = 0.0;     // arrivals/s the schedule was built for
  double aur = 0.0;
};

/// Body factory: one enqueue + checkpoint + one dequeue against the
/// universe's shared queue, so the structure's retry/blocking counters
/// and the heatmap see real cross-worker interference.
std::function<rt::RtJob()> make_job_factory(
    Universe u, const std::shared_ptr<const Tuf>& tuf,
    const std::shared_ptr<lockfree::MsQueue<int>>& lf_q,
    const std::shared_ptr<lockbased::MutexQueue<int>>& lb_q) {
  return [u, tuf, lf_q, lb_q] {
    rt::RtJob job;
    job.tuf = tuf;
    job.expected_exec = usec(5);
    if (u == Universe::kLockFree) {
      job.body = [lf_q](rt::JobContext& ctx) {
        (void)lf_q->enqueue(1);
        ctx.checkpoint();
        (void)lf_q->dequeue();
      };
    } else {
      job.body = [lb_q](rt::JobContext& ctx) {
        lb_q->enqueue(1);
        ctx.checkpoint();
        (void)lb_q->dequeue();
      };
    }
    return job;
  };
}

SoakResult run_soak(Universe u, std::int64_t jobs, double rate,
                    int producers) {
  const std::shared_ptr<const Tuf> tuf = make_step_tuf(1.0, msec(50));
  auto lf_q = std::make_shared<lockfree::MsQueue<int>>(8192);
  auto lb_q = std::make_shared<lockbased::MutexQueue<int>>();
  const auto factory = make_job_factory(u, tuf, lf_q, lb_q);

  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  runtime::ServiceConfig cfg;
  cfg.executor.cpu_count = 4;
  // Backlog cap: past this the admission layer sheds (accounted
  // rejections) instead of letting the scheduler's O(live) pass
  // collapse under an unbounded queue.
  cfg.executor.max_live_jobs = 128;
  cfg.lanes = producers;
  cfg.lane_capacity = 65536;
  runtime::Service svc(rua, std::move(cfg));

  SoakResult res;
  res.target_rate = rate;
  const std::int64_t per = jobs / producers;
  res.attempted = per * producers;
  const double spacing_ns = 1e9 * producers / rate;

  std::atomic<std::int64_t> accepted{0};
  std::vector<std::thread> pool;
  for (int p = 0; p < producers; ++p) {
    pool.emplace_back([&, p] {
      std::vector<runtime::Service::ArrivalStream> streams(1);
      streams[0].arrivals.reserve(static_cast<std::size_t>(per));
      for (std::int64_t k = 0; k < per; ++k)
        streams[0].arrivals.push_back(static_cast<Time>(
            spacing_ns * static_cast<double>(k) +
            spacing_ns * static_cast<double>(p) / producers));
      streams[0].make_job = factory;
      accepted.fetch_add(svc.drive_open_loop(p, std::move(streams)),
                         std::memory_order_relaxed);
    });
  }
  for (auto& t : pool) t.join();
  res.accepted = accepted.load();
  res.rep = svc.shutdown();
  res.aur = res.rep.exec.aur();
  return res;
}

/// Saturation probe: hammer offers with no pacing; the admission cap
/// sheds the excess, so completed/wall approximates the universe's
/// service capacity at the configured backlog.
double probe_capacity(Universe u, std::int64_t jobs) {
  const std::shared_ptr<const Tuf> tuf = make_step_tuf(1.0, msec(50));
  auto lf_q = std::make_shared<lockfree::MsQueue<int>>(8192);
  auto lb_q = std::make_shared<lockbased::MutexQueue<int>>();
  const auto factory = make_job_factory(u, tuf, lf_q, lb_q);

  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  runtime::ServiceConfig cfg;
  cfg.executor.cpu_count = 4;
  cfg.executor.max_live_jobs = 128;
  cfg.lane_capacity = 65536;
  runtime::Service svc(rua, std::move(cfg));
  for (std::int64_t i = 0; i < jobs; ++i) {
    while (!svc.offer(0, factory())) std::this_thread::yield();
  }
  const runtime::ServiceReport rep = svc.shutdown();
  return rep.completed_jobs_per_sec;
}

bool check_soak(const char* name, const SoakResult& s, bool& ok) {
  const rt::ExecutorReport& e = s.rep.exec;
  bool mode_ok = true;
  auto fail = [&](const std::string& what) {
    std::cerr << "error: [" << name << "] " << what << "\n";
    mode_ok = false;
  };
  if (s.rep.offered != s.accepted)
    fail("offered != drive_open_loop accepted");
  if (s.rep.offered + s.rep.backpressured != s.attempted)
    fail("offered + backpressured != attempted arrivals");
  if (e.submitted + e.rejected != s.rep.offered)
    fail("submitted + rejected != offered");
  if (e.counted_jobs != e.submitted + e.rejected)
    fail("counted_jobs != submitted + rejected");
  if (e.completed + e.aborted != e.submitted)
    fail("completed + aborted != submitted");
  if (e.lane_ingested != s.rep.offered)
    fail("lane_ingested != offered");
  if (e.completed > 0 && e.sojourn_p999_ns <= 0)
    fail("sojourn percentiles missing");
  if (e.sojourn_p50_ns > e.sojourn_p99_ns ||
      e.sojourn_p99_ns > e.sojourn_p999_ns)
    fail("sojourn percentiles not monotone");
  if (e.ingest_p50_ns > e.ingest_p99_ns ||
      e.ingest_p99_ns > e.ingest_p999_ns)
    fail("ingest percentiles not monotone");
  if (!e.jobs.empty()) fail("per-job records retained in service mode");
  ok = ok && mode_ok;
  return mode_ok;
}

void append_soak_json(std::ofstream& os, const char* name,
                      const SoakResult& s) {
  const rt::ExecutorReport& e = s.rep.exec;
  os << "    \"" << name << "\": {\"attempted\": " << s.attempted
     << ", \"offered\": " << s.rep.offered
     << ", \"backpressured\": " << s.rep.backpressured
     << ", \"submitted\": " << e.submitted
     << ", \"rejected\": " << e.rejected
     << ", \"completed\": " << e.completed
     << ", \"aborted\": " << e.aborted << ",\n"
     << "      \"target_rate_per_sec\": " << s.target_rate
     << ", \"wall_seconds\": " << s.rep.wall_seconds
     << ", \"ingest_jobs_per_sec\": " << s.rep.ingest_jobs_per_sec
     << ", \"completed_jobs_per_sec\": " << s.rep.completed_jobs_per_sec
     << ", \"utility_per_sec\": " << s.rep.utility_per_sec
     << ", \"aur\": " << s.aur << ",\n"
     << "      \"sojourn_p50_ns\": " << e.sojourn_p50_ns
     << ", \"sojourn_p99_ns\": " << e.sojourn_p99_ns
     << ", \"sojourn_p999_ns\": " << e.sojourn_p999_ns
     << ", \"ingest_p50_ns\": " << e.ingest_p50_ns
     << ", \"ingest_p99_ns\": " << e.ingest_p99_ns
     << ", \"ingest_p999_ns\": " << e.ingest_p999_ns
     << ",\n      \"total_retries\": " << e.total_retries
     << ", \"total_blockings\": " << e.total_blockings
     << ", \"peak_live_records\": " << e.peak_live_records
     << ", \"worker_pool_peak\": " << e.worker_pool_peak << "}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bool tiny = false;
  std::string out_path = "BENCH_soak.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--threads", 9) == 0) {
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc) ++i;
    } else {
      std::cerr << "usage: soak_service [--tiny] [--threads=N] "
                   "[--out FILE]\n";
      return 2;
    }
  }
  bench::print_header(
      "Service soak",
      "batched lane ingest vs seed submit path; open-loop soak with "
      "latency SLOs through lock-free and lock-based universes");

  const std::int64_t soak_jobs = tiny ? 20'000 : 1'000'000;
  const std::int64_t ingest_n = tiny ? 20'000 : 200'000;
  const std::int64_t probe_jobs = tiny ? 10'000 : 40'000;
  const int producers = tiny ? 2 : 4;

  // ---- ingest micro-measurement -------------------------------------
  const IngestRates rates = measure_ingest(ingest_n);
  const double seed_rate = 1e9 / rates.seed_ns;
  const double lane_rate = 1e9 / rates.lane_ns;
  const double ratio = lane_rate / seed_rate;
  std::cout << "ingest path costs (ns/job): seed "
            << Table::num(rates.seed_ns, 0) << " (spawn+join "
            << Table::num(rates.spawn_ns, 0) << " + submit "
            << Table::num(rates.single_ns, 0) << "), submit_batch "
            << Table::num(rates.batch_ns, 0) << ", lane offer "
            << Table::num(rates.lane_ns, 0) << "\n";
  std::cout << "submit throughput: seed " << Table::num(seed_rate, 0)
            << " jobs/s -> lane " << Table::num(lane_rate, 0)
            << " jobs/s (" << Table::num(ratio, 1) << "x)\n";

  // ---- capacity probes + soaks --------------------------------------
  const double cap_lf = probe_capacity(Universe::kLockFree, probe_jobs);
  const double cap_lb = probe_capacity(Universe::kLockBased, probe_jobs);
  std::cout << "capacity probe: lock-free " << Table::num(cap_lf, 0)
            << " jobs/s, lock-based " << Table::num(cap_lb, 0)
            << " jobs/s\n";
  // 70% of probed capacity, floored so the full soak stays bounded in
  // wall clock (overload beyond capacity turns into accounted
  // rejections via the admission cap, which is the design).
  const double floor_rate =
      static_cast<double>(soak_jobs) / (tiny ? 5.0 : 40.0);
  const double rate_lf = std::max(0.7 * cap_lf, floor_rate);
  const double rate_lb = std::max(0.7 * cap_lb, floor_rate);

  const SoakResult lf =
      run_soak(Universe::kLockFree, soak_jobs, rate_lf, producers);
  const SoakResult lb =
      run_soak(Universe::kLockBased, soak_jobs, rate_lb, producers);

  Table table({"universe", "offered", "completed", "aborted", "rejected",
               "jobs/s", "p50_us", "p99_us", "p999_us", "AUR", "util/s"});
  auto add = [&table](const char* name, const SoakResult& s) {
    const rt::ExecutorReport& e = s.rep.exec;
    table.add_row({name, std::to_string(s.rep.offered),
                   std::to_string(e.completed), std::to_string(e.aborted),
                   std::to_string(e.rejected),
                   Table::num(s.rep.completed_jobs_per_sec, 0),
                   Table::num(e.sojourn_p50_ns / 1e3, 1),
                   Table::num(e.sojourn_p99_ns / 1e3, 1),
                   Table::num(e.sojourn_p999_ns / 1e3, 1),
                   Table::num(s.aur, 3),
                   Table::num(s.rep.utility_per_sec, 0)});
  };
  add("lock-free", lf);
  add("lock-based", lb);
  table.print();

  // ---- assertions ----------------------------------------------------
  bool ok = rates.conserved;
  if (!rates.conserved)
    std::cerr << "error: ingest micro-runs broke conservation\n";
  check_soak("lock-free", lf, ok);
  check_soak("lock-based", lb, ok);
  if (ratio < 10.0) {
    std::cerr << "error: lane ingest only " << ratio
              << "x over seed path (need >= 10x)\n";
    ok = false;
  }
  if (!tiny && lf.attempted + lb.attempted < 2'000'000) {
    std::cerr << "error: soak attempted < 1M jobs per universe\n";
    ok = false;
  }
  if (lf.rep.offered < lf.attempted * 99 / 100 ||
      lb.rep.offered < lb.attempted * 99 / 100) {
    std::cerr << "error: lane backpressure ate > 1% of the open-loop "
                 "schedule (lanes undersized?)\n";
    ok = false;
  }

  std::ofstream os(out_path);
  os << "{\n  \"bench\": \"soak_service\",\n  \"tiny\": "
     << (tiny ? "true" : "false") << ",\n  \"ingest\": {\n"
     << "    \"seed_ns_per_job\": " << rates.seed_ns
     << ", \"spawn_join_ns\": " << rates.spawn_ns
     << ", \"single_submit_ns\": " << rates.single_ns
     << ", \"submit_batch_ns\": " << rates.batch_ns
     << ", \"lane_offer_ns\": " << rates.lane_ns << ",\n"
     << "    \"seed_jobs_per_sec\": " << seed_rate
     << ", \"lane_jobs_per_sec\": " << lane_rate
     << ", \"speedup\": " << ratio << "\n  },\n"
     << "  \"capacity\": {\"lockfree\": " << cap_lf
     << ", \"lockbased\": " << cap_lb << "},\n  \"soak\": {\n";
  append_soak_json(os, "lockfree", lf);
  os << ",\n";
  append_soak_json(os, "lockbased", lb);
  os << "\n  }\n}\n";
  if (!os) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  std::cout << "soak_service: " << (ok ? "all checks ok" : "CHECKS FAILED")
            << "\n";
  return ok ? 0 : 1;
}
