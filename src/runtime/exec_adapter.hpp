// Workload adapter: run the *same* generated task set on the real-
// threads executor that the simulator runs.
//
// The paper's evaluation is simulation; its implementation study is a
// POSIX middleware testbed.  This adapter closes the loop between the
// two substrates in-repo: it lowers a TaskSet (typically from
// workload::make_task_set) into rt::RtJobs with synthetic checkpointed
// compute bodies and *real* shared objects (lock-free MS queues or
// mutex queues), replays the identical arrival traces the bench harness
// would feed the simulator, and returns the executor's RunReport — so
// AUR/CMR/retry figures can be cross-validated between analysis,
// simulation, and actual threads (bench/ext_executor_validation.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "rt/executor.hpp"
#include "task/task.hpp"
#include "workload/workload.hpp"

namespace lfrt::sched {
class Scheduler;
}

namespace lfrt::runtime {

/// Which shared-object implementation the synthetic bodies touch.
enum class ObjectKind {
  kLockFree,   ///< lockfree::MsQueue (CAS retries under preemption)
  kLockBased,  ///< lockbased::MutexQueue (blocking episodes)
};

/// Configuration of one executor run.
struct ExecConfig {
  /// Wall-clock length of the arrival tape.  Only jobs whose critical
  /// time falls within the horizon are submitted — the same counting
  /// rule sim::Simulator applies — so the two substrates score the same
  /// job population.
  Time horizon = msec(200);

  ObjectKind objects = ObjectKind::kLockFree;

  /// CPU slots the executor dispatches to (rt::ExecutorConfig): 1 is
  /// the paper's uniprocessor model; > 1 runs up to that many job
  /// bodies in true parallel.  Match the simulator's SimConfig
  /// cpu_count when cross-validating.
  int cpu_count = 1;

  /// Arrival seeding, mirroring bench::make_cell_sim: per-task RNG
  /// seeded with `arrival_seed ^ (0xA5A5A5A5 * (id + 1))`, trace from
  /// arrivals::periodic_phased (or random_conformant when !periodic).
  std::uint64_t arrival_seed = 1;
  bool periodic_arrivals = true;

  /// Compute bodies spin in quanta of this length with a checkpoint
  /// (preemption/abort point) between quanta.
  Time quantum = usec(50);

  /// Capacity of each lock-free queue (accesses are push/pop balanced,
  /// so steady-state occupancy stays near the in-flight job count).
  std::size_t queue_capacity = 1024;
};

/// Per-task arrival traces over [0, horizon], indexed by TaskId — byte-
/// compatible with what bench::make_cell_sim feeds the simulator for
/// the same seed, so a cross-validation run compares like with like.
std::vector<std::vector<Time>> make_arrival_traces(const TaskSet& ts,
                                                   Time horizon,
                                                   std::uint64_t seed,
                                                   bool periodic);

/// Replay `ts` on a fresh rt::Executor under `scheduler`: submit each
/// admitted arrival at its trace time (wall clock), with a body that
/// spins the task's exec_time in checkpointed quanta and performs each
/// AccessSpec as a push → checkpoint → pop pair against a real shared
/// object (abort handlers roll back the unbalanced push).  Blocks until
/// the tape has played and every job reached a terminal state.
rt::ExecutorReport run_on_executor(const TaskSet& ts,
                                   const sched::Scheduler& scheduler,
                                   const ExecConfig& cfg);

/// Convenience: generate the task set from `spec` first.
rt::ExecutorReport run_on_executor(const workload::WorkloadSpec& spec,
                                   const sched::Scheduler& scheduler,
                                   const ExecConfig& cfg);

}  // namespace lfrt::runtime
