// runtime::TimerWheel / ShardedTimerWheel — the deadline structure
// behind the executor's abort timers and the service's open-loop
// arrival pacing.  The properties that matter: nothing ever fires
// early, everything due fires exactly once, next_deadline() is exact
// (not rounded to a slot boundary), overflow entries beyond one
// horizon cascade back in, and fire callbacks may re-enter schedule()
// (chained timers) without corrupting the walk.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/timer_wheel.hpp"
#include "support/time.hpp"

namespace lfrt::runtime {
namespace {

TEST(TimerWheel, FiresInDeadlineWindowsNeverEarly) {
  TimerWheel<int> w(/*granularity=*/10, /*slots=*/8);
  w.schedule(25, 1);
  w.schedule(5, 2);
  w.schedule(60, 3);
  EXPECT_EQ(w.size(), 3);
  EXPECT_EQ(w.next_deadline(), 5);

  std::vector<int> fired;
  EXPECT_EQ(w.advance(4, [&](Time, int v) { fired.push_back(v); }), 0u);
  EXPECT_TRUE(fired.empty());  // 5 is not due at t=4: never early

  EXPECT_EQ(w.advance(5, [&](Time, int v) { fired.push_back(v); }), 1u);
  EXPECT_EQ(fired, std::vector<int>{2});
  EXPECT_EQ(w.next_deadline(), 25);

  // Jump straight past two deadlines: both fire in one advance.
  EXPECT_EQ(w.advance(100, [&](Time, int v) { fired.push_back(v); }), 2u);
  std::sort(fired.begin() + 1, fired.end());  // within-call order unspecified
  EXPECT_EQ(fired, (std::vector<int>{2, 1, 3}));
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.next_deadline(), kTimeNever);
}

TEST(TimerWheel, OverdueScheduleFiresOnNextAdvance) {
  TimerWheel<int> w(100, 16);
  w.advance(1'000, [](Time, int) {});
  w.schedule(50, 7);  // already in the past: clamped, not lost
  int fired = 0;
  w.advance(1'000, [&](Time, int v) { fired = v; });
  EXPECT_EQ(fired, 7);
}

TEST(TimerWheel, OverflowCascadesBackIn) {
  // horizon = 10 * 8 = 80; deadlines far beyond it park in overflow.
  TimerWheel<int> w(10, 8);
  w.schedule(1'000, 1);
  w.schedule(2'000, 2);
  w.schedule(15, 3);
  EXPECT_EQ(w.next_deadline(), 15);  // overflow minimum is tracked exactly

  std::vector<int> fired;
  w.advance(999, [&](Time, int v) { fired.push_back(v); });
  EXPECT_EQ(fired, std::vector<int>{3});
  EXPECT_EQ(w.next_deadline(), 1'000);
  w.advance(1'500, [&](Time, int v) { fired.push_back(v); });
  EXPECT_EQ(fired, (std::vector<int>{3, 1}));
  EXPECT_EQ(w.next_deadline(), 2'000);
  w.advance(2'000, [&](Time, int v) { fired.push_back(v); });
  EXPECT_EQ(fired, (std::vector<int>{3, 1, 2}));
  EXPECT_TRUE(w.empty());
}

TEST(TimerWheel, ReentrantScheduleFromFireCallback) {
  // Chained timers: each firing schedules the next.  Entries scheduled
  // during a callback — even if already due — fire on the NEXT
  // advance, never mid-walk.
  TimerWheel<int> w(10, 8);
  w.schedule(10, 0);
  std::vector<int> fired;
  w.advance(10'000, [&](Time, int v) {
    fired.push_back(v);
    if (v < 3) w.schedule(10 * (v + 2), v + 1);
  });
  EXPECT_EQ(fired, std::vector<int>{0});  // chain link 1 is due but parked
  for (int i = 0; i < 3; ++i)
    w.advance(10'000, [&](Time, int v) {
      fired.push_back(v);
      if (v < 3) w.schedule(10 * (v + 2), v + 1);
    });
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(w.empty());
}

// Property sweep: random deadlines, random advance steps; every entry
// fires exactly once, never before its deadline, and no later than the
// first advance at-or-past it.  next_deadline always equals the true
// minimum of the pending set.
TEST(TimerWheel, RandomizedFiringMatchesOracle) {
  std::mt19937 rng(20'260'809);
  for (int round = 0; round < 20; ++round) {
    TimerWheel<std::size_t> w(7, 16);  // deliberately awkward granularity
    constexpr std::size_t kN = 400;
    std::vector<Time> deadline(kN);
    std::vector<bool> fired(kN, false);
    std::uniform_int_distribution<Time> d(0, 3'000);
    for (std::size_t i = 0; i < kN; ++i) {
      deadline[i] = d(rng);
      w.schedule(deadline[i], i);
    }
    Time now = 0;
    std::uniform_int_distribution<Time> step(1, 200);
    while (!w.empty()) {
      // Oracle: exact minimum over the unfired set.
      Time expect_min = kTimeNever;
      for (std::size_t i = 0; i < kN; ++i)
        if (!fired[i]) expect_min = std::min(expect_min, deadline[i]);
      ASSERT_EQ(w.next_deadline(), expect_min);

      now += step(rng);
      w.advance(now, [&](Time, std::size_t i) {
        ASSERT_FALSE(fired[i]);          // exactly once
        ASSERT_LE(deadline[i], now);     // never early
        fired[i] = true;
      });
      // Everything due is fired: nothing pending has deadline <= now.
      for (std::size_t i = 0; i < kN; ++i)
        ASSERT_TRUE(fired[i] || deadline[i] > now);
    }
    EXPECT_TRUE(std::all_of(fired.begin(), fired.end(),
                            [](bool b) { return b; }));
  }
}

// Multi-revolution variant: random wheel geometry, deadlines spread
// over MANY horizons (so every entry rides the overflow cascade at
// least once), and a mid-stream batch scheduled after the cursor has
// already advanced deep into the timeline — the wraparound paths the
// single-horizon sweep above never exercises.
TEST(TimerWheel, RandomizedMultiRevolutionMatchesOracle) {
  std::mt19937 rng(20'260'810);
  for (int round = 0; round < 10; ++round) {
    const Time granularity = 1 + static_cast<Time>(rng() % 13);
    const std::size_t slots = 4 + rng() % 29;
    const Time horizon = granularity * static_cast<Time>(slots);
    TimerWheel<std::size_t> w(granularity, slots);
    constexpr std::size_t kN = 300;
    std::vector<Time> deadline(kN);
    std::vector<bool> fired(kN, false);
    std::vector<bool> scheduled(kN, false);
    // First batch: 0 .. 40 horizons out.
    std::uniform_int_distribution<Time> d(0, 40 * horizon);
    for (std::size_t i = 0; i < kN / 2; ++i) {
      deadline[i] = d(rng);
      scheduled[i] = true;
      w.schedule(deadline[i], i);
    }
    Time now = 0;
    std::size_t next_unscheduled = kN / 2;
    // Steps up to ~1.5 horizons skip whole revolutions at once.
    std::uniform_int_distribution<Time> step(1, 3 * horizon / 2 + 1);
    while (!w.empty() || next_unscheduled < kN) {
      Time expect_min = kTimeNever;
      for (std::size_t i = 0; i < kN; ++i)
        if (scheduled[i] && !fired[i])
          expect_min = std::min(expect_min, deadline[i]);
      ASSERT_EQ(w.next_deadline(), expect_min);

      now += step(rng);
      w.advance(now, [&](Time, std::size_t i) {
        ASSERT_FALSE(fired[i]);
        ASSERT_LE(deadline[i], now);
        fired[i] = true;
      });
      for (std::size_t i = 0; i < kN; ++i)
        ASSERT_TRUE(!scheduled[i] || fired[i] || deadline[i] > now);

      // Second batch trickles in mid-stream, from the advanced cursor:
      // deadlines relative to `now`, up to several horizons ahead (and
      // occasionally already overdue).
      if (next_unscheduled < kN) {
        const std::size_t i = next_unscheduled++;
        deadline[i] = std::max<Time>(0, now - horizon / 2) +
                      static_cast<Time>(rng() % (5 * horizon + 1));
        // Overdue schedules clamp to "next advance", never lost.
        if (deadline[i] < now) deadline[i] = now;
        scheduled[i] = true;
        w.schedule(deadline[i], i);
      }
    }
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_TRUE(fired[i]) << "entry " << i << " never fired";
  }
}

TEST(TimerWheel, ShardedConcurrentProducersIndependentShards) {
  // One shard per producer (the Service layout): schedule + advance
  // race across shards; per-shard totals must be exact.
  constexpr std::size_t kShards = 4;
  constexpr int kPerShard = 5'000;
  ShardedTimerWheel<int> w(kShards, 10, 32);
  std::atomic<int> fired_total{0};
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kShards; ++s) {
    producers.emplace_back([&, s] {
      int fired = 0;
      for (int i = 0; i < kPerShard; ++i)
        w.schedule(s, /*deadline=*/i, /*payload=*/static_cast<int>(s));
      Time now = 0;
      while (fired < kPerShard) {
        now += 37;
        fired += static_cast<int>(w.advance(s, now, [&](Time, int v) {
          ASSERT_EQ(v, static_cast<int>(s));  // shards never cross
          fired_total.fetch_add(1, std::memory_order_relaxed);
        }));
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(fired_total.load(), static_cast<int>(kShards) * kPerShard);
  EXPECT_EQ(w.size(), 0);
  EXPECT_EQ(w.next_deadline_all(), kTimeNever);
}

}  // namespace
}  // namespace lfrt::runtime
