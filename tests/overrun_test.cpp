// Context-dependent execution times: jobs' actual demand varies around
// the estimate the scheduler sees, so overruns (and their aborts) arise
// exactly as the paper's model allows (Section 3, footnote 4).
#include <gtest/gtest.h>

#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"

namespace lfrt {
namespace {

using sim::ShareMode;
using sim::SimConfig;
using sim::Simulator;

TaskParams varying(TaskId id, Time exec, Time critical, double variation,
                   std::vector<AccessSpec> acc = {}) {
  TaskParams p;
  p.id = id;
  p.exec_time = exec;
  p.tuf = make_step_tuf(10.0, critical);
  p.arrival = UamSpec{1, 1, critical};
  p.exec_variation = variation;
  p.accesses = std::move(acc);
  return p;
}

TEST(Overrun, ValidationBoundsVariation) {
  EXPECT_NO_THROW(varying(0, usec(10), usec(100), 0.5).validate());
  EXPECT_THROW(varying(0, usec(10), usec(100), 1.0).validate(),
               InvariantViolation);
  EXPECT_THROW(varying(0, usec(10), usec(100), -0.1).validate(),
               InvariantViolation);
}

TEST(Overrun, ActualDemandVariesAcrossJobs) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(varying(0, usec(100), msec(1), 0.4));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.horizon = msec(50);
  Simulator sim(ts, edf, cfg);
  std::vector<Time> arrivals;
  for (Time t = 0; t < msec(40); t += msec(1)) arrivals.push_back(t);
  sim.set_arrivals(0, arrivals);
  const auto rep = sim.run();
  // Sojourns equal the per-job actuals (no interference): they must
  // spread across the variation band, not sit at the nominal.
  Time lo = kTimeNever, hi = 0;
  for (const Job& j : rep.jobs) {
    ASSERT_EQ(j.state, JobState::kCompleted);
    lo = std::min(lo, j.sojourn());
    hi = std::max(hi, j.sojourn());
    EXPECT_GE(j.sojourn(), usec(60) - 1);
    EXPECT_LE(j.sojourn(), usec(140) + 1);
  }
  EXPECT_LT(lo, usec(90));
  EXPECT_GT(hi, usec(110));
}

TEST(Overrun, DeterministicForSeed) {
  auto run_once = [] {
    TaskSet ts;
    ts.object_count = 0;
    ts.tasks.push_back(varying(0, usec(100), msec(1), 0.4));
    const sched::EdfScheduler edf;
    SimConfig cfg;
    cfg.mode = ShareMode::kIdeal;
    cfg.exec_seed = 123;
    cfg.horizon = msec(20);
    Simulator sim(ts, edf, cfg);
    sim.set_arrivals(0, {0, msec(1), msec(2)});
    return sim.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_EQ(a.jobs[i].completion, b.jobs[i].completion);
}

TEST(Overrun, TightCriticalTimesConvertOverrunsToAborts) {
  // Nominal fits exactly; any upward draw overruns and aborts.
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(varying(0, usec(100), usec(100), 0.5));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.horizon = msec(100);
  Simulator sim(ts, edf, cfg);
  std::vector<Time> arrivals;
  for (Time t = 0; t < msec(90); t += usec(200)) arrivals.push_back(t);
  sim.set_arrivals(0, arrivals);
  const auto rep = sim.run();
  // Roughly half the draws overrun; both outcomes must be present and
  // every aborted job must be an actual overrun.
  EXPECT_GT(rep.completed, 0);
  EXPECT_GT(rep.aborted, 0);
  for (const Job& j : rep.jobs) {
    if (j.state == JobState::kAborted) EXPECT_GT(j.exec_actual, usec(100));
    if (j.state == JobState::kCompleted)
      EXPECT_LE(j.exec_actual, usec(100));
  }
}

TEST(Overrun, AccessOffsetsScaleWithActual) {
  // One access at the nominal midpoint: with a varied draw it must
  // still fire mid-execution (not past completion), and the job's
  // completion equals actual + access time.
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(
      varying(0, usec(100), msec(1), 0.4, {{0, usec(50)}}));
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(7);
  cfg.horizon = msec(60);
  Simulator sim(ts, rua, cfg);
  std::vector<Time> arrivals;
  for (Time t = 0; t < msec(50); t += msec(1)) arrivals.push_back(t);
  sim.set_arrivals(0, arrivals);
  const auto rep = sim.run();
  for (const Job& j : rep.jobs) {
    ASSERT_EQ(j.state, JobState::kCompleted);
    EXPECT_EQ(j.sojourn(), j.exec_actual + usec(7));
  }
}

}  // namespace
}  // namespace lfrt
