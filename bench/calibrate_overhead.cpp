// Calibration: the simulator charges `ops * sched_ns_per_op` per
// scheduler invocation (DESIGN.md, key decision 1).  This bench derives
// that constant from reality: it times real RuaScheduler::build calls
// across job counts and dependency shapes, regresses wall nanoseconds
// against counted ops, and prints the fitted ns/op — the value a user
// would pass as SimConfig::sched_ns_per_op to make CML numbers match
// this host.
#include <chrono>
#include <memory>

#include "common.hpp"
#include "sched/rua.hpp"
#include "tuf/tuf.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace lfrt;

struct Sample {
  double ops = 0.0;
  double ns = 0.0;
};

Sample time_build(const sched::RuaScheduler& rua, int n, bool chained) {
  std::vector<std::unique_ptr<Tuf>> tufs;
  std::vector<sched::SchedJob> jobs;
  for (int i = 0; i < n; ++i) {
    tufs.push_back(make_step_tuf(10.0 + i % 9, msec(50) + usec(31 * i)));
    sched::SchedJob j;
    j.id = i;
    j.critical = tufs.back()->critical_time();
    j.remaining = usec(40);
    j.tuf = tufs.back().get();
    j.waits_on = chained && i + 1 < n ? i + 1 : kNoJob;
    jobs.push_back(j);
  }
  // Warm up, then time a batch.
  (void)rua.build(jobs, 0);
  constexpr int kIters = 200;
  std::int64_t ops = 0;
  const auto t0 = Clock::now();
  for (int k = 0; k < kIters; ++k) ops += rua.build(jobs, 0).ops;
  const auto t1 = Clock::now();
  Sample s;
  s.ops = static_cast<double>(ops) / kIters;
  s.ns = static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         kIters;
  return s;
}

}  // namespace

int main() {
  bench::print_header("Calibration", "scheduler ns-per-op for this host");

  Table table({"jobs", "shape", "ops/invocation", "ns/invocation",
               "ns/op"});
  const sched::RuaScheduler lb(sched::Sharing::kLockBased);
  const sched::RuaScheduler lf(sched::Sharing::kLockFree);

  double sum_xy = 0.0, sum_xx = 0.0;
  for (const int n : {4, 8, 16, 32, 64}) {
    for (const bool chained : {false, true}) {
      const auto& rua = chained ? lb : lf;
      const Sample s = time_build(rua, n, chained);
      sum_xy += s.ops * s.ns;
      sum_xx += s.ops * s.ops;
      table.add_row({std::to_string(n),
                     chained ? "chained/lock-based" : "flat/lock-free",
                     Table::num(s.ops, 0), Table::num(s.ns, 0),
                     Table::num(s.ns / s.ops, 2)});
    }
  }
  table.print();

  const double fitted = sum_xy / sum_xx;  // least squares through origin
  std::cout << "\nfitted sched_ns_per_op for this host: "
            << Table::num(fitted, 2)
            << "   (benches default to " << bench::kDefaultNsPerOp
            << "; pass the fitted value to SimConfig::sched_ns_per_op to "
               "match this machine's scheduler speed)\n";
  return 0;
}
