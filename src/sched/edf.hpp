// Earliest-critical-time-first (ECF / EDF) baseline scheduler.
//
// During underloads with step TUFs and no object sharing, RUA's output
// schedule is exactly ECF-ordered (paper, Section 3.4), which is optimal
// there.  This baseline makes that equivalence testable and provides the
// deadline-scheduling reference point for the CML discussion.
#pragma once

#include "sched/scheduler.hpp"

namespace lfrt::sched {

/// Scratch for the order-based baselines (EDF, LLF): one index buffer
/// reused across calls, making their steady-state hot path
/// allocation-free like RUA's.
class OrderWorkspace final : public Scheduler::Workspace {
 public:
  std::vector<std::size_t> order;
};

/// EDF with critical times as deadlines.  Never rejects a job; dispatch
/// is the earliest-critical runnable job.
class EdfScheduler final : public Scheduler {
 public:
  std::unique_ptr<Workspace> make_workspace() const override;

  void build_into(const std::vector<SchedJob>& jobs, Time now,
                  Workspace* ws, ScheduleResult& out) const override;

  std::string name() const override { return "EDF"; }
};

}  // namespace lfrt::sched
