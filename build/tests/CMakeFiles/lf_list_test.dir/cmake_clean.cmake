file(REMOVE_RECURSE
  "CMakeFiles/lf_list_test.dir/lf_list_test.cpp.o"
  "CMakeFiles/lf_list_test.dir/lf_list_test.cpp.o.d"
  "lf_list_test"
  "lf_list_test.pdb"
  "lf_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lf_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
