file(REMOVE_RECURSE
  "../bench/ablation_sched_cost"
  "../bench/ablation_sched_cost.pdb"
  "CMakeFiles/ablation_sched_cost.dir/ablation_sched_cost.cpp.o"
  "CMakeFiles/ablation_sched_cost.dir/ablation_sched_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sched_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
