// Sharded (striped) lock-free containers — the mechanism behind
// contention-adaptive promotion.
//
// A retry storm on one MS queue / Treiber stack is a fight over a
// single cache line (head/tail/top).  Striping the object over k
// independent full structures multiplies the CAS windows: accesses
// spread by task affinity, so tasks landing on different stripes stop
// invalidating each other.  k is *dynamic* — `set_active` is a plain
// release store the ContentionController flips at epoch boundaries
// while workers are mid-operation, which forces two design rules:
//
//   1. All runtime::kMaxObjectShards stripes exist for the object's
//      whole lifetime (each at full capacity).  Demotion only stops
//      *new* pushes from choosing a stripe; elements already in a
//      deactivated stripe stay poppable.
//   2. Pop never trusts the active count for emptiness: after its
//      preferred stripe misses it sweeps every constructed stripe, so
//      no element is stranded across a demote.
//
// Ordering contract: FIFO (queue) / LIFO (stack) holds *per stripe*.
// Pushes carry an affinity hint (the accessing task id) and a stable
// hint maps to a stable stripe while the active count is unchanged, so
// the per-task order the unified access layer tests rely on survives
// sharding; cross-stripe order is unspecified, exactly like any choice
// among k distinct objects.
//
// Counting contract (what keeps attribution exact): every stripe owns
// its ObjectStats, so record_retry/record_backoff flow to the per-job
// and per-cell sinks identically to the unsharded structures; `counts`
// aggregates the stripes.  Conservation is defined on the public
// ledger — (#push calls returning true) − (#pops returning a value) ==
// elements left at quiesce — which promote/demote cannot disturb.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "lockfree/elimination.hpp"
#include "lockfree/msqueue.hpp"
#include "lockfree/treiber_stack.hpp"
#include "runtime/object_spec.hpp"
#include "runtime/object_stats.hpp"
#include "support/cacheline.hpp"

namespace lfrt::lockfree {

namespace detail {

/// Stripe bookkeeping shared by queue and stack: the active count and
/// the hint → stripe map.  Padded so the hot `active_` word does not
/// false-share with the first stripe's head pointer.
class alignas(support::kCacheLineSize) ShardDirectory {
 public:
  explicit ShardDirectory(std::int32_t initial)
      : active_(runtime::clamp_shards(initial)) {}

  std::int32_t active() const {
    return active_.load(std::memory_order_acquire);
  }

  void set_active(std::int32_t k) {
    active_.store(runtime::clamp_shards(k), std::memory_order_release);
  }

  /// Stripe a push/pop with affinity `hint` starts on.
  std::int32_t home(std::int32_t hint) const {
    const std::int32_t k = active();
    if (k <= 1) return 0;
    const std::uint32_t h = static_cast<std::uint32_t>(hint);
    return static_cast<std::int32_t>(h % static_cast<std::uint32_t>(k));
  }

 private:
  std::atomic<std::int32_t> active_;
};

}  // namespace detail

/// MS queue striped over up to kMaxObjectShards independent queues.
template <typename T>
class ShardedQueue {
 public:
  static constexpr std::int32_t kMaxShards = runtime::kMaxObjectShards;

  /// Every stripe gets the full `capacity`: promotion must never turn a
  /// push that would have succeeded unsharded into a spurious failure.
  ShardedQueue(std::size_t capacity, std::int32_t initial_shards = 1)
      : dir_(initial_shards) {
    for (std::int32_t s = 0; s < kMaxShards; ++s)
      stripes_[s].q.emplace(capacity);
  }

  bool push(const T& value, std::int32_t hint = 0) {
    return stripes_[dir_.home(hint)].q->enqueue(value);
  }

  /// Preferred-stripe dequeue with a full sweep on miss (rule 2 above).
  std::optional<T> pop(std::int32_t hint = 0) {
    const std::int32_t home = dir_.home(hint);
    if (auto v = stripes_[home].q->dequeue()) return v;
    for (std::int32_t off = 1; off < kMaxShards; ++off) {
      const std::int32_t s = (home + off) % kMaxShards;
      if (auto v = stripes_[s].q->dequeue()) return v;
    }
    return std::nullopt;
  }

  bool empty() const {
    for (std::int32_t s = 0; s < kMaxShards; ++s)
      if (!stripes_[s].q->empty()) return false;
    return true;
  }

  std::int32_t active() const { return dir_.active(); }
  void set_active(std::int32_t k) { dir_.set_active(k); }

  /// Aggregate counters over every stripe (exact after quiesce).
  runtime::ObjectCounts counts() const {
    runtime::ObjectCounts sum;
    for (std::int32_t s = 0; s < kMaxShards; ++s)
      sum += stripes_[s].q->stats().counts();
    return sum;
  }

  const runtime::ObjectStats& stats_of(std::int32_t shard) const {
    return stripes_[shard].q->stats();
  }

 private:
  struct alignas(support::kCacheLineSize) Stripe {
    std::optional<MsQueue<T>> q;
  };
  detail::ShardDirectory dir_;
  Stripe stripes_[kMaxShards];
};

/// Treiber stack striped the same way, with an elimination front for
/// push–pop pairs.  The front only engages while the object is promoted
/// (active > 1): that is exactly when the structure is known to be in a
/// retry storm, and when it is not, the unsharded fast path should not
/// pay the advertisement window.
template <typename T>
class ShardedStack {
 public:
  static constexpr std::int32_t kMaxShards = runtime::kMaxObjectShards;

  ShardedStack(std::size_t capacity, std::int32_t initial_shards = 1)
      : dir_(initial_shards) {
    for (std::int32_t s = 0; s < kMaxShards; ++s)
      stripes_[s].st.emplace(capacity);
  }

  bool push(const T& value, std::int32_t hint = 0) {
    if (dir_.active() > 1 && try_eliminate_push(value)) return true;
    return stripes_[dir_.home(hint)].st->push(value);
  }

  std::optional<T> pop(std::int32_t hint = 0) {
    if (dir_.active() > 1) {
      if (auto v = front_.exchange_pop()) {
        eliminations_.fetch_add(1, std::memory_order_relaxed);
        return v;
      }
    }
    const std::int32_t home = dir_.home(hint);
    if (auto v = stripes_[home].st->pop()) return v;
    for (std::int32_t off = 1; off < kMaxShards; ++off) {
      const std::int32_t s = (home + off) % kMaxShards;
      if (auto v = stripes_[s].st->pop()) return v;
    }
    return std::nullopt;
  }

  bool empty() const {
    for (std::int32_t s = 0; s < kMaxShards; ++s)
      if (!stripes_[s].st->empty()) return false;
    return true;
  }

  std::int32_t active() const { return dir_.active(); }
  void set_active(std::int32_t k) { dir_.set_active(k); }

  /// Push–pop pairs that exchanged through the front (never touched a
  /// stripe).  Ledger-neutral: +1 push, +1 pop, 0 elements.
  std::int64_t eliminations() const {
    return eliminations_.load(std::memory_order_relaxed);
  }

  runtime::ObjectCounts counts() const {
    runtime::ObjectCounts sum;
    for (std::int32_t s = 0; s < kMaxShards; ++s)
      sum += stripes_[s].st->stats().counts();
    return sum;
  }

  const runtime::ObjectStats& stats_of(std::int32_t shard) const {
    return stripes_[shard].st->stats();
  }

 private:
  bool try_eliminate_push(const T& value) {
    if constexpr (std::is_same_v<T, int>) {
      return front_.exchange_push(value);
    } else {
      (void)value;
      return false;
    }
  }

  struct alignas(support::kCacheLineSize) Stripe {
    std::optional<TreiberStack<T>> st;
  };
  detail::ShardDirectory dir_;
  Stripe stripes_[kMaxShards];
  EliminationArray front_;
  std::atomic<std::int64_t> eliminations_{0};
};

}  // namespace lfrt::lockfree
