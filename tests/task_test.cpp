// Tests for the task/job model and its validation rules.
#include "task/task.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace lfrt {
namespace {

TaskParams valid_task() {
  TaskParams p;
  p.id = 0;
  p.arrival = UamSpec{1, 2, usec(100)};
  p.tuf = make_step_tuf(10.0, usec(100));
  p.exec_time = usec(10);
  p.accesses = {{0, usec(2)}, {1, usec(5)}};
  return p;
}

TEST(TaskParams, ValidTaskPasses) {
  EXPECT_NO_THROW(valid_task().validate());
}

TEST(TaskParams, CriticalTimeMustNotExceedWindow) {
  auto p = valid_task();
  p.tuf = make_step_tuf(10.0, usec(101));  // C > W
  EXPECT_THROW(p.validate(), InvariantViolation);
}

TEST(TaskParams, ExecTimeMustBePositive) {
  auto p = valid_task();
  p.exec_time = 0;
  EXPECT_THROW(p.validate(), InvariantViolation);
}

TEST(TaskParams, AccessOffsetsMustBeSortedAndInRange) {
  auto p = valid_task();
  p.accesses = {{0, usec(5)}, {1, usec(2)}};  // unsorted
  EXPECT_THROW(p.validate(), InvariantViolation);
  p.accesses = {{0, usec(11)}};  // beyond u_i
  EXPECT_THROW(p.validate(), InvariantViolation);
  p.accesses = {{-1, usec(2)}};  // no object named
  EXPECT_THROW(p.validate(), InvariantViolation);
  p.accesses = {{0, usec(3)}, {1, usec(3)}};  // back-to-back is legal
  EXPECT_NO_THROW(p.validate());
}

TEST(TaskParams, TufRequired) {
  auto p = valid_task();
  p.tuf = nullptr;
  EXPECT_THROW(p.validate(), InvariantViolation);
}

TEST(TaskParams, NegativeHandlerTimeRejected) {
  auto p = valid_task();
  p.abort_handler_time = -1;
  EXPECT_THROW(p.validate(), InvariantViolation);
}

TEST(TaskSet, ObjectUniverseEnforced) {
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(valid_task());  // accesses object 1 >= count
  EXPECT_THROW(ts.validate(), InvariantViolation);
  ts.object_count = 2;
  EXPECT_NO_THROW(ts.validate());
}

TEST(TaskSet, DuplicateIdsRejected) {
  TaskSet ts;
  ts.object_count = 2;
  ts.tasks.push_back(valid_task());
  ts.tasks.push_back(valid_task());
  EXPECT_THROW(ts.validate(), InvariantViolation);
}

TEST(TaskSet, EmptySetRejected) {
  TaskSet ts;
  EXPECT_THROW(ts.validate(), InvariantViolation);
}

TEST(TaskSet, ByIdFindsAndThrows) {
  TaskSet ts;
  ts.object_count = 2;
  ts.tasks.push_back(valid_task());
  EXPECT_EQ(ts.by_id(0).id, 0);
  EXPECT_THROW(ts.by_id(42), InvariantViolation);
}

TEST(TaskSet, ApproximateLoadSums) {
  TaskSet ts;
  ts.object_count = 2;
  auto a = valid_task();  // u=10us, C=100us -> 0.1
  ts.tasks.push_back(std::move(a));
  auto b = valid_task();
  b.id = 1;
  b.exec_time = usec(30);
  b.tuf = make_step_tuf(5.0, usec(100));  // 0.3
  ts.tasks.push_back(std::move(b));
  EXPECT_NEAR(ts.approximate_load(), 0.4, 1e-12);
}

TEST(Job, SojournAndTerminalStates) {
  Job j;
  j.arrival = usec(5);
  EXPECT_EQ(j.sojourn(), -1);
  EXPECT_FALSE(j.finished());
  j.completion = usec(25);
  j.state = JobState::kCompleted;
  EXPECT_EQ(j.sojourn(), usec(20));
  EXPECT_TRUE(j.finished());
  j.state = JobState::kAborted;
  EXPECT_TRUE(j.finished());
  j.state = JobState::kBlocked;
  EXPECT_FALSE(j.finished());
}

TEST(TaskParams, AccessCountIsM) {
  EXPECT_EQ(valid_task().access_count(), 2);
  auto p = valid_task();
  p.accesses.clear();
  EXPECT_EQ(p.access_count(), 0);
}

}  // namespace
}  // namespace lfrt
