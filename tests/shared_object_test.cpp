// runtime::SharedObject / SharedObjectSet — the unified access layer.
//
// Every ObjectKind × ObjectImpl combination is hammered from several
// threads through the one access(op, task, job, checkpoint) surface,
// then the three accounting views are reconciled: the structure's own
// ObjectStats, the per-job sink tallies, and the per-(object, task)
// registry cells all observe the same record_retry /
// record_acquisition events, so their sums must agree exactly — not
// approximately.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "runtime/shared_object.hpp"
#include "support/check.hpp"

namespace lfrt::runtime {
namespace {

constexpr std::int32_t kObjects = 3;
constexpr std::int32_t kTasks = 4;
constexpr int kAccessesPerThread = 2000;

std::vector<ObjectSpec> specs_of(ObjectKind kind, ObjectImpl impl) {
  return uniform_objects(kObjects, kind, impl);
}

/// Drive one thread per task; thread t alternates writes and reads over
/// all objects.  Returns per-thread access counts (all complete — the
/// checkpoint never throws).
void hammer(SharedObjectSet& set) {
  std::vector<std::thread> threads;
  for (std::int32_t t = 0; t < kTasks; ++t) {
    threads.emplace_back([&set, t] {
      for (int i = 0; i < kAccessesPerThread; ++i) {
        const ObjectId o = i % kObjects;
        const AccessOp op = (i + t) % 2 == 0 ? AccessOp::kWrite
                                             : AccessOp::kRead;
        set.access(o, op, t, /*job=*/t * kAccessesPerThread + i, [] {});
      }
    });
  }
  for (auto& th : threads) th.join();
}

class SharedObjectAllCombos
    : public ::testing::TestWithParam<std::pair<ObjectKind, ObjectImpl>> {};

/// Three-way attribution agreement under real concurrency: for every
/// object, the structure's own retry/blocking counters equal the
/// registry row sums, and the total op count equals the number of
/// completed accesses.
TEST_P(SharedObjectAllCombos, AttributionSumsAgree) {
  const auto [kind, impl] = GetParam();
  SharedObjectSet set(specs_of(kind, impl), kTasks, /*queue_capacity=*/256);
  ASSERT_EQ(set.object_count(), kObjects);
  hammer(set);

  const ContentionMatrix m = set.matrix();
  ASSERT_EQ(m.objects, kObjects);
  ASSERT_EQ(m.tasks, kTasks);
  ASSERT_FALSE(m.empty());

  for (std::int32_t o = 0; o < kObjects; ++o) {
    const ContentionCell row = m.object_totals(o);
    const ObjectCounts st = set.counts_of(o);
    EXPECT_EQ(row.retries, st.retries)
        << "object " << o << ": registry row vs structure retries";
    EXPECT_EQ(row.blockings, st.contended)
        << "object " << o << ": registry row vs structure blockings";
  }
  // Ops are counted once per *completed* access, on the registry side.
  const std::int64_t total_accesses =
      static_cast<std::int64_t>(kTasks) * kAccessesPerThread;
  EXPECT_EQ(m.totals().ops, total_accesses);
  // Lock-free impls never block; lock-based impls never CAS-retry.
  if (impl == ObjectImpl::kLockFree)
    EXPECT_EQ(m.totals().blockings, 0);
  else
    EXPECT_EQ(m.totals().retries, 0);
}

std::vector<std::pair<ObjectKind, ObjectImpl>> all_combos() {
  std::vector<std::pair<ObjectKind, ObjectImpl>> v;
  for (const ObjectKind kind : all_object_kinds())
    for (const ObjectImpl impl : all_object_impls()) v.push_back({kind, impl});
  return v;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, SharedObjectAllCombos, ::testing::ValuesIn(all_combos()),
    [](const auto& info) {
      std::string name = std::string(to_string(info.param.first)) + "_" +
                         to_string(info.param.second);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

/// An aborted access (checkpoint throws) is rolled back: the exception
/// propagates, the op is not counted, and a queue write leaves no
/// element behind — the next read still finds the queue empty.
TEST(SharedObject, AbortedWriteRollsBack) {
  SharedObjectSet set(specs_of(ObjectKind::kQueue, ObjectImpl::kLockFree),
                      kTasks, 256);
  struct Abort {};
  EXPECT_THROW(
      set.access(0, AccessOp::kWrite, 0, 0, [] { throw Abort{}; }), Abort);
  EXPECT_EQ(set.matrix().totals().ops, 0);

  set.access(0, AccessOp::kWrite, 0, 1, [] {});
  EXPECT_EQ(set.matrix().totals().ops, 1);
  EXPECT_EQ(set.matrix().at(0, 0).ops, 1);
}

/// Accesses attributed to a task outside the registry's range (e.g. a
/// maintenance thread with task id -1) still work — they are simply not
/// attributed to any cell.
TEST(SharedObject, OutOfRangeTaskIsUnattributed) {
  SharedObjectSet set(specs_of(ObjectKind::kStack, ObjectImpl::kLockFree),
                      kTasks, 256);
  set.access(0, AccessOp::kWrite, /*task=*/-1, 0, [] {});
  set.access(0, AccessOp::kWrite, /*task=*/kTasks + 7, 1, [] {});
  EXPECT_EQ(set.matrix().totals().ops, 0);
  // The structure itself still counted the operations.
  EXPECT_GT(set.counts_of(0).ops, 0);
}

/// Out-of-range *object* ids are a caller bug and trip the invariant.
TEST(SharedObject, OutOfRangeObjectThrows) {
  SharedObjectSet set(specs_of(ObjectKind::kQueue, ObjectImpl::kLockFree),
                      kTasks, 256);
  EXPECT_THROW(set.access(kObjects, AccessOp::kRead, 0, 0, [] {}),
               InvariantViolation);
  EXPECT_THROW(set.access(-1, AccessOp::kRead, 0, 0, [] {}),
               InvariantViolation);
}

/// The registry flattens its atomic cells into the exact plain matrix.
TEST(ObjectRegistryTest, ToMatrixFlattensCells) {
  ObjectRegistry reg(2, 3);
  ASSERT_NE(reg.cell(1, 2), nullptr);
  reg.cell(1, 2)->ops.fetch_add(5);
  reg.cell(1, 2)->retries.fetch_add(7);
  reg.cell(0, 1)->blockings.fetch_add(2);
  EXPECT_EQ(reg.cell(2, 0), nullptr);   // object out of range
  EXPECT_EQ(reg.cell(0, 3), nullptr);   // task out of range
  EXPECT_EQ(reg.cell(0, -1), nullptr);  // negative task

  const ContentionMatrix m = reg.to_matrix();
  EXPECT_EQ(m.objects, 2);
  EXPECT_EQ(m.tasks, 3);
  EXPECT_EQ(m.at(1, 2).ops, 5);
  EXPECT_EQ(m.at(1, 2).retries, 7);
  EXPECT_EQ(m.at(0, 1).blockings, 2);
  EXPECT_EQ(m.totals().ops, 5);
  EXPECT_EQ(m.object_totals(1).retries, 7);
  EXPECT_EQ(m.task_totals(1).blockings, 2);
}

}  // namespace
}  // namespace lfrt::runtime
