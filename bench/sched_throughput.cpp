// Scheduler throughput baseline (ISSUE: zero-allocation RUA hot path).
//
// Sweeps the pending-job count n over {8, 16, 32, 64, 128, 256, 512}
// and, for each n, times a full RuaScheduler::build_into rebuild in the
// two regimes the paper compares:
//   * lock-free RUA over an independent job set (no dependencies), and
//   * lock-based RUA over one long dependency chain (the O(n^2 log n)
//     worst case of Section 3.6),
// for both the optimized scheduler (caller-owned RuaWorkspace, in-place
// undo-log schedule edits, prefix-sum feasibility) and the frozen naive
// reference (rua_reference.hpp).  Reports ns/rebuild and rebuilds/sec
// on stdout and emits BENCH_sched.json for tooling.
//
// Usage: sched_throughput [--tiny] [--out FILE]
//   --tiny   smoke mode: n in {8, 32}, few repetitions (for check.sh)
//   --out    JSON output path (default BENCH_sched.json in the cwd)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sched/rua.hpp"
#include "sched/rua_reference.hpp"
#include "tuf/tuf.hpp"

namespace {

using namespace lfrt;
using Clock = std::chrono::steady_clock;

struct View {
  std::vector<std::unique_ptr<Tuf>> tufs;
  std::vector<sched::SchedJob> jobs;
};

/// n pending jobs; `chained` links each job to the next in one long
/// dependency chain (the lock-based worst case the paper analyzes).
View make_view(int n, bool chained) {
  View v;
  for (int i = 0; i < n; ++i) {
    v.tufs.push_back(make_step_tuf(10.0 + i % 7, msec(100) + usec(13 * i)));
    sched::SchedJob j;
    j.id = i;
    j.arrival = 0;
    j.critical = v.tufs.back()->critical_time();
    j.remaining = usec(50);
    j.tuf = v.tufs.back().get();
    j.waits_on = chained && i + 1 < n ? i + 1 : kNoJob;
    v.jobs.push_back(j);
  }
  return v;
}

/// Median-of-runs wall clock for one rebuild, reusing `ws` and `out`
/// across iterations exactly the way the simulator's hot path does.
double time_rebuild(const sched::Scheduler& sch, const View& v,
                    sched::Scheduler::Workspace* ws, int reps,
                    std::int64_t* ops_out) {
  sched::ScheduleResult out;
  // Warm-up: grows every workspace buffer to its high-water mark so the
  // timed region exercises the steady (allocation-free) state.
  sch.build_into(v.jobs, 0, ws, out);
  *ops_out = out.ops;

  std::vector<double> samples;
  samples.reserve(5);
  for (int s = 0; s < 5; ++s) {
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      sch.build_into(v.jobs, 0, ws, out);
      // The dispatch read keeps the optimizer from eliding the build.
      if (out.dispatch == kNoJob && out.schedule.size() > v.jobs.size())
        std::abort();
    }
    const auto t1 = Clock::now();
    samples.push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(
            t1 - t0)
            .count() /
        reps);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct Row {
  int n = 0;
  const char* regime = "";     // "lock-free" | "lock-based-chained"
  double ref_ns = 0;           // naive reference, ns/rebuild
  double opt_ns = 0;           // optimized workspace path, ns/rebuild
  std::int64_t ops = 0;        // modelled ops (identical for both)
};

bool emit_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"sched_throughput\",\n  \"unit\": \"ns/rebuild\",\n"
     << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"n\": " << r.n << ", \"regime\": \"" << r.regime
       << "\", \"ref_ns\": " << r.ref_ns << ", \"opt_ns\": " << r.opt_ns
       << ", \"rebuilds_per_sec\": " << (r.opt_ns > 0 ? 1e9 / r.opt_ns : 0)
       << ", \"speedup\": " << (r.opt_ns > 0 ? r.ref_ns / r.opt_ns : 0)
       << ", \"ops\": " << r.ops << "}" << (i + 1 < rows.size() ? "," : "")
       << "\n";
  }
  os << "  ]\n}\n";
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  std::string out_path = "BENCH_sched.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: sched_throughput [--tiny] [--out FILE]\n";
      return 2;
    }
  }

  const std::vector<int> sweep =
      tiny ? std::vector<int>{8, 32}
           : std::vector<int>{8, 16, 32, 64, 128, 256, 512};

  const sched::RuaScheduler opt_lf(sched::Sharing::kLockFree);
  const sched::RuaScheduler opt_lb(sched::Sharing::kLockBased);
  const sched::RuaReferenceScheduler ref_lf(sched::Sharing::kLockFree);
  const sched::RuaReferenceScheduler ref_lb(sched::Sharing::kLockBased);
  const auto ws_lf = opt_lf.make_workspace();
  const auto ws_lb = opt_lb.make_workspace();

  std::vector<Row> rows;
  std::cout << "  n  regime              ref ns/rebuild  opt ns/rebuild"
            << "  rebuilds/s   speedup\n";
  for (int n : sweep) {
    // Repetition count scaled so each sample stays ~fast even at n=512
    // where the chained reference is tens of milliseconds per rebuild.
    const int reps = tiny ? 3 : std::max(3, 4096 / n);

    const View flat = make_view(n, /*chained=*/false);
    const View chain = make_view(n, /*chained=*/true);

    Row lf;
    lf.n = n;
    lf.regime = "lock-free";
    std::int64_t ops_ref = 0;
    lf.ref_ns = time_rebuild(ref_lf, flat, nullptr, reps, &ops_ref);
    lf.opt_ns = time_rebuild(opt_lf, flat, ws_lf.get(), reps, &lf.ops);
    if (lf.ops != ops_ref) {
      std::cerr << "ops mismatch (lock-free, n=" << n << "): ref=" << ops_ref
                << " opt=" << lf.ops << "\n";
      return 1;
    }
    rows.push_back(lf);

    Row lb;
    lb.n = n;
    lb.regime = "lock-based-chained";
    lb.ref_ns = time_rebuild(ref_lb, chain, nullptr, reps, &ops_ref);
    lb.opt_ns = time_rebuild(opt_lb, chain, ws_lb.get(), reps, &lb.ops);
    if (lb.ops != ops_ref) {
      std::cerr << "ops mismatch (lock-based, n=" << n << "): ref=" << ops_ref
                << " opt=" << lb.ops << "\n";
      return 1;
    }
    rows.push_back(lb);

    for (const Row* r : {&lf, &lb}) {
      std::printf("%4d  %-18s %15.0f %15.0f %11.0f %8.2fx\n", r->n,
                  r->regime, r->ref_ns, r->opt_ns,
                  r->opt_ns > 0 ? 1e9 / r->opt_ns : 0,
                  r->opt_ns > 0 ? r->ref_ns / r->opt_ns : 0);
    }
  }

  if (!emit_json(rows, out_path)) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
