// Unified per-structure accounting for every shared object.
//
// Before this layer existed each structure in src/lockfree and
// src/lockbased kept its own ad-hoc counter struct (RetryStats,
// LockStats, bare atomics).  ObjectStats replaces all of them with one
// interface covering the whole design space the paper compares:
//
//   * ops          — completed public operations (enqueue, pop, scan, ...)
//   * retries      — lock-free restarts: the f_i events Theorem 2 bounds
//   * acquisitions — lock-based mutex acquires
//   * contended    — acquires that found the lock held (a blocking
//                    episode, the paper's n_i events)
//
// Wait-free structures (SPSC ring, four-slot register) report through
// the same interface with retries pinned at zero by construction —
// which is the point of including them.
//
// Counters are relaxed atomics: safe to bump from any thread, read
// after quiesce or tolerate small skew during a run.
//
// Retry-sink plumbing: the real-threads executor needs *per-job* retry
// and blocking counts (the simulator gets them for free from its event
// loop).  A worker thread installs a ScopedAccessSink around a job
// body, and every record_retry/record_acquisition on that thread also
// lands in the job's counters — so Theorem 2's per-job f_i emerges from
// real CAS failures, not modelling.
#pragma once

#include <atomic>
#include <cstdint>

namespace lfrt::runtime {

/// One (object, task) accounting cell, bumpable concurrently from any
/// worker.  Cache-line aligned so tasks hammering different cells don't
/// false-share.  ObjectRegistry (shared_object.hpp) owns a dense
/// objects × tasks array of these and flattens it into the plain
/// ContentionMatrix a report carries.
struct alignas(64) AtomicAccessCell {
  std::atomic<std::int64_t> ops{0};
  std::atomic<std::int64_t> retries{0};
  std::atomic<std::int64_t> blockings{0};
};

namespace detail {

/// Per-thread destination for access events (null fields = discard).
struct AccessSinkState {
  std::int64_t* retries = nullptr;
  std::int64_t* blockings = nullptr;
  std::int64_t* backoff = nullptr;   ///< backoff spins (per-job tally)
  AtomicAccessCell* cell = nullptr;  ///< (object, task) attribution
};

inline thread_local AccessSinkState tls_access_sink;

}  // namespace detail

/// RAII: while alive, this thread's retry/contention events are also
/// credited to the given per-job counters.  Nestable (restores the
/// previous sink); the pointees must outlive the scope and be touched
/// by no other thread while it is active.
class ScopedAccessSink {
 public:
  ScopedAccessSink(std::int64_t* retries, std::int64_t* blockings,
                   std::int64_t* backoff = nullptr)
      : prev_(detail::tls_access_sink) {
    detail::tls_access_sink = {retries, blockings, backoff, nullptr};
  }
  ~ScopedAccessSink() { detail::tls_access_sink = prev_; }

  ScopedAccessSink(const ScopedAccessSink&) = delete;
  ScopedAccessSink& operator=(const ScopedAccessSink&) = delete;

 private:
  detail::AccessSinkState prev_;
};

/// RAII: while alive, this thread's retry/contention events are *also*
/// credited to one (object, task) cell — installed by
/// runtime::SharedObject::access around each structure operation, on
/// top of (not instead of) the job's ScopedAccessSink, so per-job and
/// per-cell tallies count the same underlying events.  Nestable.
class ScopedCellSink {
 public:
  explicit ScopedCellSink(AtomicAccessCell* cell)
      : prev_(detail::tls_access_sink.cell) {
    detail::tls_access_sink.cell = cell;
  }
  ~ScopedCellSink() { detail::tls_access_sink.cell = prev_; }

  ScopedCellSink(const ScopedCellSink&) = delete;
  ScopedCellSink& operator=(const ScopedCellSink&) = delete;

 private:
  AtomicAccessCell* prev_;
};

/// Plain (non-atomic) snapshot of one structure's counters — what a
/// sharded object aggregates over its stripes and what callers compare
/// against heatmap rows after quiesce.
struct ObjectCounts {
  std::int64_t ops = 0;
  std::int64_t retries = 0;
  std::int64_t acquisitions = 0;
  std::int64_t contended = 0;
  std::int64_t backoff_spins = 0;

  ObjectCounts& operator+=(const ObjectCounts& o) {
    ops += o.ops;
    retries += o.retries;
    acquisitions += o.acquisitions;
    contended += o.contended;
    backoff_spins += o.backoff_spins;
    return *this;
  }
};

/// The one accounting interface every shared structure exposes via
/// `stats()`.
struct ObjectStats {
  std::atomic<std::int64_t> ops{0};
  std::atomic<std::int64_t> retries{0};
  std::atomic<std::int64_t> acquisitions{0};
  std::atomic<std::int64_t> contended{0};
  std::atomic<std::int64_t> backoff_spins{0};

  // --- recording (called by the structures) ---

  void record_op(std::int64_t n = 1) {
    ops.fetch_add(n, std::memory_order_relaxed);
  }

  void record_retry(std::int64_t n = 1) {
    retries.fetch_add(n, std::memory_order_relaxed);
    if (std::int64_t* sink = detail::tls_access_sink.retries) *sink += n;
    if (AtomicAccessCell* cell = detail::tls_access_sink.cell)
      cell->retries.fetch_add(n, std::memory_order_relaxed);
  }

  /// Backoff spins burned before the re-read that follows a failed
  /// CAS.  Credited to the structure and the job's tally but NOT to a
  /// heatmap cell: a ContentionCell stays [ops, retries, blockings] —
  /// backoff is a *cost* of a retry, not a distinct conflict event.
  void record_backoff(std::int64_t spins) {
    backoff_spins.fetch_add(spins, std::memory_order_relaxed);
    if (std::int64_t* sink = detail::tls_access_sink.backoff) *sink += spins;
  }

  void record_acquisition(bool was_contended) {
    acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (was_contended) {
      contended.fetch_add(1, std::memory_order_relaxed);
      if (std::int64_t* sink = detail::tls_access_sink.blockings) ++*sink;
      if (AtomicAccessCell* cell = detail::tls_access_sink.cell)
        cell->blockings.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // --- reading ---

  std::int64_t op_count() const {
    return ops.load(std::memory_order_relaxed);
  }
  std::int64_t retry_count() const {
    return retries.load(std::memory_order_relaxed);
  }
  std::int64_t acquisition_count() const {
    return acquisitions.load(std::memory_order_relaxed);
  }
  std::int64_t contended_count() const {
    return contended.load(std::memory_order_relaxed);
  }
  std::int64_t backoff_count() const {
    return backoff_spins.load(std::memory_order_relaxed);
  }

  /// Relaxed snapshot of every counter (exact after quiesce).
  ObjectCounts counts() const {
    return {op_count(), retry_count(), acquisition_count(),
            contended_count(), backoff_count()};
  }

  /// Fraction of acquires that found the lock held (lock-based).
  double contention_ratio() const {
    const std::int64_t a = acquisition_count();
    if (a == 0) return 0.0;
    return static_cast<double>(contended_count()) / static_cast<double>(a);
  }

  /// Retries per completed operation (lock-free).
  double retry_ratio() const {
    const std::int64_t o = op_count();
    if (o == 0) return 0.0;
    return static_cast<double>(retry_count()) / static_cast<double>(o);
  }
};

}  // namespace lfrt::runtime
