// Invariant checking.
//
// LFRT_CHECK is an always-on invariant assertion (experiments are only
// meaningful if the model invariants hold, so these are not compiled out
// in release builds).  Violations throw, which gtest death/throw tests
// can observe and which aborts a bench loudly instead of producing a
// silently wrong table.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lfrt {

/// Thrown when an internal invariant is violated.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace lfrt

#define LFRT_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::lfrt::detail::check_failed(#expr, __FILE__, __LINE__, {});    \
  } while (false)

#define LFRT_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::lfrt::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
