// Ablation: nested critical sections and deadlock handling.
//
// The general RUA model (paper, Section 3.3) allows nested sections and
// resolves the resulting deadlocks by aborting the least-utility job in
// the cycle.  This bench sweeps nesting depth on a contended object set
// and compares three configurations:
//
//   * lock-based RUA with deadlock detection ON  (the paper's general
//     algorithm: cycles are broken immediately)
//   * lock-based EDF with detection OFF (cycles pin their jobs until
//     critical-time expiry — what a detection-free system suffers)
//   * lock-free RUA on an equivalent flat-access workload (nesting is
//     excluded under lock-free sharing — Section 2 — so its column is
//     the dependency-free reference)
#include "common.hpp"
#include "sched/edf.hpp"

int main() {
  using namespace lfrt;
  bench::print_header("Ablation", "nesting depth, deadlock detection "
                                  "on/off vs lock-free");
  std::cout << "tasks=6  objects=4  AL=0.8  r=" << to_usec(usec(20))
            << "us  s=" << to_usec(bench::kDefaultS) << "us  seed=9\n\n";

  Table table({"depth", "config", "AUR", "CMR", "deadlocks", "aborted"});
  const sched::RuaScheduler rua_detect(sched::Sharing::kLockBased, true);
  const sched::EdfScheduler edf;
  const sched::RuaScheduler rua_lf(sched::Sharing::kLockFree);

  for (const int depth : {1, 2, 3}) {
    workload::WorkloadSpec spec;
    spec.task_count = 6;
    spec.object_count = 4;
    spec.avg_exec = usec(300);
    spec.load = 0.8;
    spec.seed = 9;
    spec.nest_depth = depth;
    const TaskSet nested_ts = workload::make_task_set(spec);
    spec.nest_depth = 0;
    spec.accesses_per_job = depth;  // same per-job access count, flat
    const TaskSet flat_ts = workload::make_task_set(spec);

    struct Config {
      const char* name;
      const TaskSet* ts;
      const sched::Scheduler* sch;
      sim::ShareMode mode;
    };
    const Config configs[] = {
        {"RUA + detection", &nested_ts, &rua_detect,
         sim::ShareMode::kLockBased},
        {"EDF, no detection", &nested_ts, &edf,
         sim::ShareMode::kLockBased},
        {"lock-free (flat)", &flat_ts, &rua_lf, sim::ShareMode::kLockFree},
    };

    for (const Config& c : configs) {
      RunningStats aur, cmr;
      std::int64_t deadlocks = 0, aborted = 0;
      for (int rep = 0; rep < 5; ++rep) {
        sim::SimConfig cfg;
        cfg.mode = c.mode;
        cfg.lock_access_time = usec(20);
        cfg.lockfree_access_time = bench::kDefaultS;
        cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
        Time max_window = 0;
        for (const auto& t : c.ts->tasks)
          max_window = std::max(max_window, t.arrival.window);
        cfg.horizon = max_window * 80;
        sim::Simulator s(*c.ts, *c.sch, cfg);
        s.seed_arrivals(100 + static_cast<std::uint64_t>(rep));
        const auto out = s.run();
        aur.add(out.aur());
        cmr.add(out.cmr());
        deadlocks += out.deadlocks_resolved;
        aborted += out.aborted;
      }
      table.add_row({std::to_string(depth), c.name,
                     Table::num(aur.mean(), 3), Table::num(cmr.mean(), 3),
                     std::to_string(deadlocks), std::to_string(aborted)});
    }
  }
  table.print();
  std::cout << "\nExpected shape: deeper nesting holds locks longer and "
               "creates lock-order cycles; detection converts them into "
               "single-victim aborts, while the detection-free "
               "configuration loses every cycle member to critical-time "
               "expiry.  Lock-free sharing sidesteps the problem class "
               "entirely (at the price of excluding nested sharing).\n";
  return 0;
}
