// Tests for execution-slice recording and the ASCII Gantt renderer.
#include "sim/gantt.hpp"

#include <gtest/gtest.h>

#include "sched/edf.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"

namespace lfrt {
namespace {

TaskSet two_tasks() {
  TaskSet ts;
  ts.object_count = 0;
  for (TaskId i = 0; i < 2; ++i) {
    TaskParams p;
    p.id = i;
    p.arrival = UamSpec{1, 1, usec(100)};
    p.tuf = make_step_tuf(10.0, usec(100));
    p.exec_time = usec(10);
    ts.tasks.push_back(std::move(p));
  }
  ts.validate();
  return ts;
}

sim::SimReport run_two(bool slices, int cpus = 1) {
  const sched::EdfScheduler edf;
  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kIdeal;
  cfg.record_slices = slices;
  cfg.cpu_count = cpus;
  cfg.horizon = usec(300);
  sim::Simulator s(two_tasks(), edf, cfg);
  s.set_arrivals(0, {0});
  s.set_arrivals(1, {usec(2)});
  return s.run();
}

TEST(Slices, RecordedAndContiguous) {
  const auto rep = run_two(true);
  ASSERT_FALSE(rep.slices.empty());
  // Job 0 (critical 100) runs 0..10; job 1 runs 10..20: two slices.
  ASSERT_EQ(rep.slices.size(), 2u);
  EXPECT_EQ(rep.slices[0].job, 0);
  EXPECT_EQ(rep.slices[0].begin, 0);
  EXPECT_EQ(rep.slices[0].end, usec(10));
  EXPECT_EQ(rep.slices[1].job, 1);
  EXPECT_EQ(rep.slices[1].begin, usec(10));
  EXPECT_EQ(rep.slices[1].end, usec(20));
}

TEST(Slices, OffByDefault) {
  const auto rep = run_two(false);
  EXPECT_TRUE(rep.slices.empty());
}

TEST(Slices, TwoCpusOverlapInTime) {
  const auto rep = run_two(true, 2);
  ASSERT_EQ(rep.slices.size(), 2u);
  // Both jobs run concurrently on different CPUs.
  EXPECT_NE(rep.slices[0].cpu, rep.slices[1].cpu);
  EXPECT_LT(rep.slices[1].begin, rep.slices[0].end);
}

TEST(Slices, SlicesNeverOverlapOnOneCpu) {
  // Property: per CPU, slices are disjoint and ordered.
  const auto rep = run_two(true);
  for (std::size_t i = 1; i < rep.slices.size(); ++i) {
    if (rep.slices[i].cpu != rep.slices[i - 1].cpu) continue;
    EXPECT_GE(rep.slices[i].begin, rep.slices[i - 1].end);
  }
}

TEST(Gantt, RendersRowsPerTask) {
  const auto rep = run_two(true);
  sim::GanttOptions opt;
  opt.width = 40;
  const std::string g = sim::render_gantt(two_tasks(), rep, opt);
  EXPECT_NE(g.find("T0"), std::string::npos);
  EXPECT_NE(g.find("T1"), std::string::npos);
  EXPECT_NE(g.find('#'), std::string::npos);
  // T0's row is half '#' then '.': it runs first.
  std::istringstream is(g);
  std::string line;
  std::getline(is, line);  // header
  std::getline(is, line);  // T0
  const auto bar = line.substr(line.find('|') + 1, 40);
  EXPECT_EQ(bar.front(), '#');
  EXPECT_EQ(bar.back(), '.');
}

TEST(Gantt, EmptyWindowHandled) {
  const auto rep = run_two(false);
  const std::string g = sim::render_gantt(two_tasks(), rep, {});
  EXPECT_EQ(g, "(no execution in window)\n");
}

TEST(Gantt, RejectsDegenerateWidth) {
  const auto rep = run_two(true);
  sim::GanttOptions opt;
  opt.width = 2;
  EXPECT_THROW(sim::render_gantt(two_tasks(), rep, opt),
               InvariantViolation);
}

TEST(Gantt, CpuRowsMode) {
  const auto rep = run_two(true, 2);
  sim::GanttOptions opt;
  opt.show_cpus = true;
  const std::string g = sim::render_gantt(two_tasks(), rep, opt);
  EXPECT_NE(g.find("/cpu0"), std::string::npos);
  EXPECT_NE(g.find("/cpu1"), std::string::npos);
}

}  // namespace
}  // namespace lfrt
