file(REMOVE_RECURSE
  "CMakeFiles/lfrt_sim.dir/gantt.cpp.o"
  "CMakeFiles/lfrt_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/lfrt_sim.dir/simulator.cpp.o"
  "CMakeFiles/lfrt_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/lfrt_sim.dir/trace_export.cpp.o"
  "CMakeFiles/lfrt_sim.dir/trace_export.cpp.o.d"
  "liblfrt_sim.a"
  "liblfrt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfrt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
