// Units for the src/runtime layer: ObjectStats, the thread-local
// access sink, RunReport breakdowns, and print_report formatting.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "runtime/object_stats.hpp"
#include "runtime/print_report.hpp"
#include "runtime/run_report.hpp"

namespace lfrt::runtime {
namespace {

// ---------------------------------------------------------------- stats

TEST(ObjectStats, StartsAtZero) {
  ObjectStats st;
  EXPECT_EQ(st.op_count(), 0);
  EXPECT_EQ(st.retry_count(), 0);
  EXPECT_EQ(st.acquisition_count(), 0);
  EXPECT_EQ(st.contended_count(), 0);
  EXPECT_DOUBLE_EQ(st.retry_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(st.contention_ratio(), 0.0);
}

TEST(ObjectStats, RecordsOpsAndRetries) {
  ObjectStats st;
  for (int i = 0; i < 8; ++i) st.record_op();
  st.record_op(2);
  st.record_retry();
  st.record_retry(4);
  EXPECT_EQ(st.op_count(), 10);
  EXPECT_EQ(st.retry_count(), 5);
  EXPECT_DOUBLE_EQ(st.retry_ratio(), 0.5);
}

TEST(ObjectStats, ContentionRatioCountsContendedAcquires) {
  ObjectStats st;
  for (int i = 0; i < 6; ++i) st.record_acquisition(false);
  for (int i = 0; i < 2; ++i) st.record_acquisition(true);
  EXPECT_EQ(st.acquisition_count(), 8);
  EXPECT_EQ(st.contended_count(), 2);
  EXPECT_DOUBLE_EQ(st.contention_ratio(), 0.25);
}

// ----------------------------------------------------------------- sink

TEST(ScopedAccessSink, CreditsRetriesAndBlockingsToBoundCounters) {
  ObjectStats st;
  std::int64_t retries = 0, blockings = 0;
  {
    ScopedAccessSink sink(&retries, &blockings);
    st.record_retry(3);
    st.record_acquisition(true);
    st.record_acquisition(false);  // uncontended: no blocking episode
  }
  EXPECT_EQ(retries, 3);
  EXPECT_EQ(blockings, 1);
  // Structure-level counters accumulate regardless of the sink.
  EXPECT_EQ(st.retry_count(), 3);
  EXPECT_EQ(st.contended_count(), 1);
}

TEST(ScopedAccessSink, RestoresPreviousSinkOnExit) {
  ObjectStats st;
  std::int64_t outer = 0, inner = 0, blk = 0;
  {
    ScopedAccessSink a(&outer, &blk);
    {
      ScopedAccessSink b(&inner, &blk);
      st.record_retry();
    }
    st.record_retry();
  }
  st.record_retry();  // no sink installed: discarded
  EXPECT_EQ(inner, 1);
  EXPECT_EQ(outer, 1);
  EXPECT_EQ(st.retry_count(), 3);
}

TEST(ScopedAccessSink, IsPerThread) {
  ObjectStats st;
  std::int64_t main_retries = 0, main_blk = 0;
  ScopedAccessSink sink(&main_retries, &main_blk);
  std::int64_t worker_retries = 0, worker_blk = 0;
  std::thread worker([&] {
    ScopedAccessSink ws(&worker_retries, &worker_blk);
    st.record_retry(2);
  });
  worker.join();
  st.record_retry();
  EXPECT_EQ(worker_retries, 2);
  EXPECT_EQ(main_retries, 1);
}

// ------------------------------------------------------------ RunReport

Job make_job(TaskId task, Time arrival, Time sojourn, JobState state,
             std::int64_t retries = 0, std::int64_t blockings = 0) {
  Job j;
  j.task = task;
  j.arrival = arrival;
  j.state = state;
  j.retries = retries;
  j.blockings = blockings;
  if (state == JobState::kCompleted) j.completion = arrival + sojourn;
  return j;
}

RunReport two_task_report() {
  RunReport rep;
  rep.jobs.push_back(make_job(0, msec(0), msec(2), JobState::kCompleted, 3));
  rep.jobs.push_back(make_job(0, msec(10), msec(4), JobState::kCompleted, 1));
  rep.jobs.push_back(make_job(0, msec(20), -1, JobState::kAborted, 7));
  rep.jobs.push_back(make_job(1, msec(0), msec(1), JobState::kCompleted, 0, 2));
  rep.counted_jobs = 4;
  rep.completed = 3;
  rep.aborted = 1;
  rep.accrued_utility = 30.0;
  rep.max_possible_utility = 40.0;
  rep.total_retries = 11;
  rep.total_blockings = 2;
  return rep;
}

TEST(RunReport, AurAndCmr) {
  const RunReport rep = two_task_report();
  EXPECT_DOUBLE_EQ(rep.aur(), 0.75);
  EXPECT_DOUBLE_EQ(rep.cmr(), 0.75);
  EXPECT_DOUBLE_EQ(RunReport{}.aur(), 0.0);
  EXPECT_DOUBLE_EQ(RunReport{}.cmr(), 0.0);
}

TEST(RunReport, BreakdownAggregatesPerTask) {
  const RunReport rep = two_task_report();
  const auto b0 = rep.breakdown_of(0);
  EXPECT_EQ(b0.jobs, 3);
  EXPECT_EQ(b0.completed, 2);
  EXPECT_EQ(b0.aborted, 1);
  EXPECT_EQ(b0.retries, 11);
  EXPECT_EQ(b0.max_retries, 7);
  EXPECT_DOUBLE_EQ(b0.mean_sojourn, static_cast<double>(msec(3)));

  const auto b1 = rep.breakdown_of(1);
  EXPECT_EQ(b1.jobs, 1);
  EXPECT_EQ(b1.blockings, 2);
  EXPECT_DOUBLE_EQ(b1.mean_sojourn, static_cast<double>(msec(1)));

  const auto none = rep.breakdown_of(9);
  EXPECT_EQ(none.jobs, 0);
  EXPECT_DOUBLE_EQ(none.mean_sojourn, 0.0);
}

TEST(RunReport, MaxRetriesAndMeanSojournHelpers) {
  const RunReport rep = two_task_report();
  EXPECT_EQ(rep.max_retries_of_task(0), 7);
  EXPECT_EQ(rep.max_retries_of_task(1), 0);
  EXPECT_DOUBLE_EQ(rep.mean_sojourn_of_task(0),
                   static_cast<double>(msec(3)));
  EXPECT_DOUBLE_EQ(rep.mean_sojourn_of_task(9), 0.0);
}

// --------------------------------------------------------- print_report

TEST(PrintReport, SummaryLineCarriesLabelAndMetrics) {
  const RunReport rep = two_task_report();
  std::ostringstream os;
  PrintOptions opts;
  opts.label = "unit";
  print_report(os, rep, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find("unit"), std::string::npos);
  EXPECT_NE(out.find("AUR=0.750"), std::string::npos);
  EXPECT_NE(out.find("completed=3/4"), std::string::npos);
  EXPECT_NE(out.find("retries=11"), std::string::npos);
  // No scheduling columns unless asked for.
  EXPECT_EQ(out.find("sched_ops"), std::string::npos);
}

TEST(PrintReport, PerTaskTableUsesProvidedNames) {
  const RunReport rep = two_task_report();
  std::ostringstream os;
  PrintOptions opts;
  opts.per_task = true;
  opts.task_names = {"sensing", "control"};
  print_report(os, rep, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find("sensing"), std::string::npos);
  EXPECT_NE(out.find("control"), std::string::npos);
}

TEST(PrintReport, PerTaskFallsBackToTaskIds) {
  RunReport rep = two_task_report();
  std::ostringstream os;
  PrintOptions opts;
  opts.per_task = true;
  opts.show_sched = true;
  rep.sched_invocations = 5;
  print_report(os, rep, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find("T0"), std::string::npos);
  EXPECT_NE(out.find("T1"), std::string::npos);
  EXPECT_NE(out.find("sched_invocations=5"), std::string::npos);
}

}  // namespace
}  // namespace lfrt::runtime
