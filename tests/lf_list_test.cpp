// Tests for the lock-free sorted list (Valois/Harris style) and the NBW
// single-writer/multi-reader buffer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "lockfree/lf_list.hpp"
#include "lockfree/nbw_buffer.hpp"

namespace lfrt::lockfree {
namespace {

TEST(MarkedRef, PackingRoundTrips) {
  const auto r = MarkedRef::make(0xABCDu, 0x1234u, true);
  EXPECT_EQ(r.index(), 0xABCDu);
  EXPECT_EQ(r.tag(), 0x1234u);
  EXPECT_TRUE(r.marked());
  const auto u = MarkedRef::make(0xABCDu, 0x1234u, false);
  EXPECT_FALSE(u.marked());
  EXPECT_TRUE(MarkedRef::null().is_null());
}

TEST(MarkedRef, TagIs31Bits) {
  const auto r = MarkedRef::make(1, 0xFFFFFFFFu, false);
  EXPECT_EQ(r.tag(), 0x7FFFFFFFu);
  EXPECT_FALSE(r.marked());  // tag overflow must not leak into the mark
}

TEST(LfList, InsertContainsRemoveSequential) {
  LfList list(16);
  EXPECT_FALSE(list.contains(5));
  EXPECT_TRUE(list.insert(5));
  EXPECT_TRUE(list.insert(1));
  EXPECT_TRUE(list.insert(9));
  EXPECT_FALSE(list.insert(5));  // duplicate
  EXPECT_TRUE(list.contains(1));
  EXPECT_TRUE(list.contains(5));
  EXPECT_TRUE(list.contains(9));
  EXPECT_FALSE(list.contains(4));
  EXPECT_TRUE(list.remove(5));
  EXPECT_FALSE(list.remove(5));
  EXPECT_FALSE(list.contains(5));
  EXPECT_EQ(list.keys(), (std::vector<std::int64_t>{1, 9}));
}

TEST(LfList, KeysAreSorted) {
  LfList list(32);
  for (int k : {7, 3, 11, 1, 9, 5}) EXPECT_TRUE(list.insert(k));
  EXPECT_EQ(list.keys(), (std::vector<std::int64_t>{1, 3, 5, 7, 9, 11}));
}

TEST(LfList, PoolExhaustionAndReclaim) {
  LfList list(3);
  EXPECT_TRUE(list.insert(1));
  EXPECT_TRUE(list.insert(2));
  EXPECT_TRUE(list.insert(3));
  EXPECT_FALSE(list.insert(4));  // pool exhausted
  EXPECT_TRUE(list.remove(2));
  // The removed node sits on the retired list until a quiescent
  // reclaim; the pool is still exhausted.
  EXPECT_FALSE(list.insert(4));
  EXPECT_EQ(list.reclaim(), 1u);
  EXPECT_TRUE(list.insert(4));
  EXPECT_EQ(list.keys(), (std::vector<std::int64_t>{1, 3, 4}));
}

TEST(LfList, RemoveHeadMiddleTail) {
  LfList list(8);
  for (int k : {1, 2, 3, 4}) list.insert(k);
  EXPECT_TRUE(list.remove(1));  // head
  EXPECT_TRUE(list.remove(3));  // middle
  EXPECT_TRUE(list.remove(4));  // tail
  EXPECT_EQ(list.keys(), (std::vector<std::int64_t>{2}));
  EXPECT_TRUE(list.remove(2));
  EXPECT_TRUE(list.keys().empty());
}

TEST(LfList, NegativeAndExtremeKeys) {
  LfList list(8);
  EXPECT_TRUE(list.insert(-100));
  EXPECT_TRUE(list.insert(0));
  EXPECT_TRUE(list.insert(INT64_MAX));
  EXPECT_TRUE(list.insert(INT64_MIN));
  EXPECT_EQ(list.keys(), (std::vector<std::int64_t>{INT64_MIN, -100, 0,
                                                    INT64_MAX}));
}

TEST(LfList, ConcurrentDisjointInserts) {
  LfList list(4096);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&list, t] {
      for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(list.insert(t * 1000 + i));
    });
  }
  for (auto& th : threads) th.join();
  const auto keys = list.keys();
  ASSERT_EQ(keys.size(), 4000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (int k = 0; k < 4000; ++k) EXPECT_TRUE(list.contains(k));
}

TEST(LfList, ConcurrentInsertRemoveChurn) {
  LfList list(8192);
  // Pre-populate even keys; threads remove evens and insert odds.
  for (int k = 0; k < 2000; k += 2) ASSERT_TRUE(list.insert(k));
  std::vector<std::thread> threads;
  std::atomic<int> removed{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int k = t; k < 2000; k += 3) {
        if (k % 2 == 0) {
          if (list.remove(k)) removed.fetch_add(1);
        } else {
          list.insert(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto keys = list.keys();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  std::set<std::int64_t> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());  // no duplicates
  // Every even key in [0, 2000) is covered by exactly one thread
  // (k mod 3 picks it), so all evens are removed exactly once and none
  // survive.
  for (std::int64_t k : keys) EXPECT_NE(k % 2, 0) << "even key " << k;
  EXPECT_EQ(removed.load(), 1000);
  const auto reclaimed = list.reclaim();
  EXPECT_EQ(reclaimed, 1000u);
}

TEST(NbwBuffer, SingleThreadReadBack) {
  struct Msg {
    int a;
    double b;
  };
  NbwBuffer<Msg> buf({1, 2.5});
  const Msg m = buf.read();
  EXPECT_EQ(m.a, 1);
  EXPECT_DOUBLE_EQ(m.b, 2.5);
  buf.write({7, -1.0});
  EXPECT_EQ(buf.read().a, 7);
  EXPECT_EQ(buf.version(), 2u);  // one write = +2, even when stable
  EXPECT_EQ(buf.stats().retry_count(), 0);
}

TEST(NbwBuffer, WriterIsWaitFreeReadersAreConsistent) {
  // The message carries a redundant checksum; a torn read would break
  // it.  One writer updates continuously; readers must never observe an
  // inconsistent pair.
  struct Msg {
    std::int64_t value;
    std::int64_t negated;
  };
  NbwBuffer<Msg> buf({0, 0});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::int64_t i = 1; i <= 200000; ++i) buf.write({i, -i});
    stop.store(true);
  });
  std::int64_t reads = 0;
  while (!stop.load()) {
    const Msg m = buf.read();
    ASSERT_EQ(m.value, -m.negated) << "torn read";
    ++reads;
  }
  writer.join();
  // On a single CPU the reader may get few slots; consistency of every
  // read it *did* make is the property under test (reads is only
  // informational).
  (void)reads;
  EXPECT_EQ(buf.version(), 2u * 200000u);
  const Msg last = buf.read();
  EXPECT_EQ(last.value, 200000);
}

}  // namespace
}  // namespace lfrt::lockfree
