file(REMOVE_RECURSE
  "CMakeFiles/lockbased_test.dir/lockbased_test.cpp.o"
  "CMakeFiles/lockbased_test.dir/lockbased_test.cpp.o.d"
  "lockbased_test"
  "lockbased_test.pdb"
  "lockbased_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockbased_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
