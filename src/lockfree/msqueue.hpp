// Michael & Scott lock-free FIFO queue [21] with counted (tagged)
// pointers over a fixed node pool.
//
// This is the queue the paper's implementation study uses ("We used the
// lock-free queues introduced in [21]", Section 6).  Enqueue and dequeue
// are lock-free: some operation always completes in a finite number of
// steps, but an individual operation may retry when a concurrent (or, on
// a uniprocessor, a preempting) operation changes the queue between its
// read and its CAS.  Retries are counted so experiments can compare the
// measured retry rate with the Theorem-2 bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "lockfree/annotate.hpp"
#include "lockfree/backoff.hpp"
#include "lockfree/node_pool.hpp"
#include "lockfree/tagged.hpp"
#include "runtime/object_stats.hpp"

namespace lfrt::lockfree {

/// Bounded multi-producer/multi-consumer lock-free FIFO.
template <typename T>
class MsQueue {
 public:
  /// `capacity` is the maximum number of enqueued elements; one extra
  /// pool node serves as the permanent dummy.
  explicit MsQueue(std::size_t capacity) : pool_(capacity + 1) {
    const std::uint32_t dummy = pool_.allocate();
    pool_.at(dummy).next.store(TaggedRef::null().bits,
                               std::memory_order_relaxed);
    head_.store(TaggedRef::make(dummy, 0).bits, std::memory_order_relaxed);
    tail_.store(TaggedRef::make(dummy, 0).bits, std::memory_order_relaxed);
  }

  /// Enqueue a copy of `value`; returns false when the pool is full.
  bool enqueue(const T& value) {
    const std::uint32_t node = pool_.allocate();
    if (node == TaggedRef::kNullIndex) return false;
    detail::store_value_slot(pool_.at(node).value, value);
    pool_.at(node).next.store(TaggedRef::null().bits,
                              std::memory_order_release);
    Backoff backoff;
    for (;;) {
      TaggedRef tail{tail_.load(std::memory_order_acquire)};
      TaggedRef next{pool_.at(tail.index()).next.load(
          std::memory_order_acquire)};
      if (TaggedRef{tail_.load(std::memory_order_acquire)} == tail) {
        if (next.is_null()) {
          // Try to link the new node after the current last node.
          TaggedRef desired = TaggedRef::make(node, next.tag() + 1);
          if (pool_.at(tail.index())
                  .next.compare_exchange_weak(next.bits, desired.bits,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            // Swing tail; failure is fine (someone helped).
            TaggedRef new_tail = TaggedRef::make(node, tail.tag() + 1);
            tail_.compare_exchange_strong(tail.bits, new_tail.bits,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
            stats_.record_op();
            return true;
          }
        } else {
          // Tail is lagging — help advance it.
          TaggedRef new_tail = TaggedRef::make(next.index(), tail.tag() + 1);
          tail_.compare_exchange_strong(tail.bits, new_tail.bits,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
        }
      }
      stats_.record_retry();
      stats_.record_backoff(backoff.pause());
    }
  }

  /// Dequeue the oldest element; empty optional when the queue is empty.
  std::optional<T> dequeue() {
    Backoff backoff;
    for (;;) {
      TaggedRef head{head_.load(std::memory_order_acquire)};
      TaggedRef tail{tail_.load(std::memory_order_acquire)};
      TaggedRef next{pool_.at(head.index()).next.load(
          std::memory_order_acquire)};
      if (TaggedRef{head_.load(std::memory_order_acquire)} == head) {
        if (head.index() == tail.index()) {
          if (next.is_null()) {
            stats_.record_op();
            return std::nullopt;  // genuinely empty
          }
          // Tail lagging behind a half-finished enqueue — help.
          TaggedRef new_tail = TaggedRef::make(next.index(), tail.tag() + 1);
          tail_.compare_exchange_strong(tail.bits, new_tail.bits,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
        } else {
          // Read the value *before* the CAS: after the CAS another
          // thread may recycle the node.
          T value = detail::load_value_slot(pool_.at(next.index()).value);
          TaggedRef new_head = TaggedRef::make(next.index(), head.tag() + 1);
          if (head_.compare_exchange_weak(head.bits, new_head.bits,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
            pool_.release(head.index());
            stats_.record_op();
            return value;
          }
        }
      }
      stats_.record_retry();
      stats_.record_backoff(backoff.pause());
    }
  }

  /// Approximate emptiness (exact when quiescent).
  bool empty() const {
    TaggedRef head{head_.load(std::memory_order_acquire)};
    TaggedRef next{pool_.at(head.index()).next.load(
        std::memory_order_acquire)};
    return next.is_null();
  }

  const runtime::ObjectStats& stats() const { return stats_; }

 private:
  struct Node {
    T value{};
    std::atomic<std::uint64_t> next{0};
  };

  NodePool<Node> pool_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  runtime::ObjectStats stats_;
};

}  // namespace lfrt::lockfree
