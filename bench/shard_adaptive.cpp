// Contention-adaptive sharding: collapse retry storms by acting on the
// live heatmaps.
//
// Theorem 2 prices every concurrent writer into each task's retry
// bound; when many tasks hammer one lock-free object, the f_i terms —
// and the measured retries — grow with the full contender population.
// Sharding the object into independent stripes removes contenders from
// each CAS window, and the ContentionController does it *online*: it
// diffs the live object × task ContentionMatrix each epoch, promotes
// objects whose retry rate crosses the threshold 1 → 2 → 4 → 8 stripes,
// demotes idle ones back toward their floor, and steers dispatch away
// from co-scheduling the tasks behind the hottest cell.
//
// Two substrates, one claim:
//
//   * simulator, cpus = 4 (the modelled claim, deterministic): the same
//     adversarial universe — 8 tasks, 2 hot lock-free objects — run
//     static (shards = 1) and adaptive (adapt = true).  Retries per
//     access must drop >= 3x while completed jobs do not regress; the
//     shard-decision timeline is the artifact.
//
//   * live structures (the measured claim): the same hammer driven by
//     real threads through SharedObjectSet with a live
//     ContentionController, reporting retries/access, backoff spins,
//     elimination hits, and p99 access latency from the per-object
//     histogram.  Attribution stays exact throughout: heatmap cell sums
//     == per-stripe structure counters, promote/demote included.  On a
//     host with too few CPUs to generate real CAS interference the
//     latency/ratio comparison is reported but not enforced (a 1-CPU
//     container produces ~0 retries on both sides); the invariants
//     always are.
//
// Usage: shard_adaptive [--tiny] [--threads=N] [--out FILE]
//   --tiny   smoke mode for check.sh/CI: short horizon, light hammer,
//            invariants enforced but the 3x ratio not asserted
//   --out    JSON output path (default BENCH_shard.json in the cwd)
#include <atomic>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "runtime/contention_controller.hpp"
#include "runtime/exec_adapter.hpp"
#include "runtime/shared_object.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace lfrt;

struct SimSide {
  sim::SimReport rep;
  std::int64_t ops = 0;
  double retries_per_access = 0.0;
};

SimSide run_sim(const TaskSet& ts, bool adapt, Time horizon,
                const std::vector<std::vector<Time>>& traces) {
  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(10);
  cfg.objects = runtime::uniform_objects(ts.object_count,
                                         runtime::ObjectKind::kQueue,
                                         runtime::ObjectImpl::kLockFree);
  for (auto& s : cfg.objects) s.adapt = adapt;
  cfg.controller.epoch = usec(500);
  cfg.controller.min_epoch_ops = 16;
  cfg.controller.promote_rate = 0.02;
  cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
  cfg.cpu_count = 4;
  cfg.horizon = horizon;
  sim::Simulator sim(ts, bench::scheduler_for(sim::ShareMode::kLockFree),
                     cfg);
  for (const auto& t : ts.tasks)
    sim.set_arrivals(t.id, traces[static_cast<std::size_t>(t.id)]);
  SimSide side;
  side.rep = sim.run();
  side.ops = side.rep.contention.totals().ops;
  side.retries_per_access =
      side.ops > 0 ? static_cast<double>(side.rep.total_retries) /
                         static_cast<double>(side.ops)
                   : 0.0;
  return side;
}

struct LiveSide {
  runtime::ContentionMatrix matrix;
  std::int64_t accesses = 0;      // accesses the hammer completed
  std::int64_t retries = 0;       // structure-counter sum over objects
  std::int64_t backoff_spins = 0;
  std::int64_t eliminations = 0;
  Time p99_ns = 0;                // hot object's access latency
  std::vector<runtime::ShardDecision> decisions;
  std::int64_t epochs = 0;
  bool attribution_ok = true;
};

/// Hammer the real layer: `threads` worker threads (one per task id),
/// each performing `per_thread` write accesses, ~3/4 of them against
/// the hot queue (object 0) and the rest against a stack (object 1 —
/// the shape whose sharded form carries the elimination front).
LiveSide run_live(bool adapt, int threads, int per_thread) {
  std::vector<runtime::ObjectSpec> specs(2);
  specs[0] = {runtime::ObjectKind::kQueue, runtime::ObjectImpl::kLockFree};
  specs[1] = {runtime::ObjectKind::kStack, runtime::ObjectImpl::kLockFree};
  for (auto& s : specs) s.adapt = adapt;
  runtime::SharedObjectSet set(specs, threads, /*queue_capacity=*/4096);

  runtime::ControllerConfig ccfg;
  ccfg.epoch = usec(500);  // live epochs are wall clock; keep them short
  ccfg.min_epoch_ops = 32;
  ccfg.promote_rate = 0.02;
  runtime::ContentionController ctl(ccfg, &set, /*executor=*/nullptr);
  if (adapt) ctl.start();

  std::atomic<int> barrier{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      barrier.fetch_add(1);
      while (barrier.load() < threads) {
      }
      for (int i = 0; i < per_thread; ++i) {
        const ObjectId o = i % 4 == 3 ? 1 : 0;
        set.access(o, runtime::AccessOp::kWrite, t,
                   /*job=*/static_cast<JobId>(t) * per_thread + i, [] {});
      }
    });
  }
  for (auto& th : pool) th.join();
  if (adapt) ctl.stop();

  LiveSide side;
  side.matrix = set.matrix();
  side.accesses = static_cast<std::int64_t>(threads) * per_thread;
  for (ObjectId o = 0; o < set.object_count(); ++o) {
    const runtime::ObjectCounts c = set.counts_of(o);
    side.retries += c.retries;
    side.backoff_spins += c.backoff_spins;
    side.eliminations += set.eliminations_of(o);
    // Attribution exactness per object: the heatmap row (per-cell
    // sinks) and the per-stripe structure counters saw the same
    // record_retry events — across every promote/demote the controller
    // applied mid-hammer.
    const runtime::ContentionCell row = side.matrix.object_totals(o);
    if (row.retries != c.retries) {
      std::cerr << "error: object " << o << ": heatmap retries "
                << row.retries << " != structure retries " << c.retries
                << "\n";
      side.attribution_ok = false;
    }
  }
  if (side.matrix.totals().ops != side.accesses) {
    std::cerr << "error: heatmap ops " << side.matrix.totals().ops
              << " != accesses performed " << side.accesses << "\n";
    side.attribution_ok = false;
  }
  side.p99_ns = set.latency_of(0).percentile(0.99);
  side.decisions = ctl.decisions();
  side.epochs = ctl.epochs();
  return side;
}

void append_decisions_json(std::ofstream& os,
                           const std::vector<runtime::ShardDecision>& ds) {
  os << "[";
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const runtime::ShardDecision& d = ds[i];
    os << (i ? "," : "") << "{\"t_ns\": " << d.time
       << ", \"object\": " << d.object << ", \"from\": " << d.from_shards
       << ", \"to\": " << d.to_shards << ", \"rate\": " << d.rate << "}";
  }
  os << "]";
}

void append_shards_json(std::ofstream& os,
                        const std::vector<std::int32_t>& sc) {
  os << "[";
  for (std::size_t i = 0; i < sc.size(); ++i)
    os << (i ? "," : "") << sc[i];
  os << "]";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bool tiny = false;
  std::string out_path = "BENCH_shard.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--threads", 9) == 0) {
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc) ++i;
    } else {
      std::cerr << "usage: shard_adaptive [--tiny] [--threads=N] "
                   "[--out FILE]\n";
      return 2;
    }
  }
  bench::print_header("Adaptive sharding",
                      "contention controller vs static single-stripe "
                      "objects, sim (cpus=4) + live structures");

  // Adversarial universe: 8 tasks funneled into 2 lock-free queues,
  // several accesses per job, enough load to keep all 4 simulated CPUs
  // busy — every access attempt overlaps contenders on the other CPUs.
  workload::WorkloadSpec spec;
  spec.task_count = 8;
  spec.object_count = 2;
  spec.accesses_per_job = 10;
  spec.avg_exec = usec(200);
  spec.load = 3.0;
  spec.tuf_class = workload::TufClass::kStep;
  spec.seed = 9;
  const TaskSet ts = workload::make_task_set(spec);

  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);
  const Time horizon = max_window * (tiny ? 3 : 40);
  const auto traces =
      runtime::make_arrival_traces(ts, horizon, /*seed=*/3000,
                                   /*periodic=*/true);

  const SimSide sim_static = run_sim(ts, /*adapt=*/false, horizon, traces);
  const SimSide sim_adapt = run_sim(ts, /*adapt=*/true, horizon, traces);

  const int threads = 8;
  const int per_thread = tiny ? 4000 : 40000;
  const LiveSide live_static = run_live(/*adapt=*/false, threads, per_thread);
  const LiveSide live_adapt = run_live(/*adapt=*/true, threads, per_thread);

  const double sim_ratio =
      sim_adapt.retries_per_access > 0.0
          ? sim_static.retries_per_access / sim_adapt.retries_per_access
          : (sim_static.retries_per_access > 0.0 ? 1e9 : 1.0);

  Table table({"side", "mode", "accesses", "retries", "retries/access",
               "completed", "shards", "decisions"});
  auto shards_str = [](const std::vector<std::int32_t>& sc) {
    std::string s;
    for (std::size_t i = 0; i < sc.size(); ++i)
      s += (i ? "," : "") + std::to_string(sc[i]);
    return s;
  };
  table.add_row({"sim", "static", std::to_string(sim_static.ops),
                 std::to_string(sim_static.rep.total_retries),
                 Table::num(sim_static.retries_per_access, 4),
                 std::to_string(sim_static.rep.completed),
                 shards_str(sim_static.rep.contention.shard_counts), "0"});
  table.add_row({"sim", "adaptive", std::to_string(sim_adapt.ops),
                 std::to_string(sim_adapt.rep.total_retries),
                 Table::num(sim_adapt.retries_per_access, 4),
                 std::to_string(sim_adapt.rep.completed),
                 shards_str(sim_adapt.rep.contention.shard_counts),
                 std::to_string(sim_adapt.rep.shard_decisions.size())});
  table.add_row({"live", "static", std::to_string(live_static.accesses),
                 std::to_string(live_static.retries),
                 Table::num(live_static.accesses > 0
                                ? static_cast<double>(live_static.retries) /
                                      static_cast<double>(
                                          live_static.accesses)
                                : 0.0,
                            6),
                 "-", shards_str(live_static.matrix.shard_counts), "0"});
  table.add_row({"live", "adaptive", std::to_string(live_adapt.accesses),
                 std::to_string(live_adapt.retries),
                 Table::num(live_adapt.accesses > 0
                                ? static_cast<double>(live_adapt.retries) /
                                      static_cast<double>(
                                          live_adapt.accesses)
                                : 0.0,
                            6),
                 "-", shards_str(live_adapt.matrix.shard_counts),
                 std::to_string(live_adapt.decisions.size())});
  table.print();
  std::cout << "sim retry reduction: " << Table::num(sim_ratio, 2)
            << "x (static " << Table::num(sim_static.retries_per_access, 4)
            << " -> adaptive " << Table::num(sim_adapt.retries_per_access, 4)
            << " retries/access), controller epochs "
            << sim_adapt.rep.controller_epochs << "\n";
  std::cout << "live p99 access latency: static " << live_static.p99_ns
            << " ns, adaptive " << live_adapt.p99_ns
            << " ns; backoff spins static " << live_static.backoff_spins
            << ", adaptive " << live_adapt.backoff_spins
            << "; eliminations " << live_adapt.eliminations << "\n";

  // ---- assertions ------------------------------------------------------
  bool ok = true;
  if (!live_static.attribution_ok || !live_adapt.attribution_ok) {
    std::cerr << "error: live attribution invariants broken\n";
    ok = false;
  }
  if (sim_adapt.rep.controller_epochs <= 0 ||
      sim_adapt.rep.shard_decisions.empty()) {
    std::cerr << "error: sim controller never acted (epochs "
              << sim_adapt.rep.controller_epochs << ", decisions "
              << sim_adapt.rep.shard_decisions.size() << ")\n";
    ok = false;
  }
  bool promoted = false;
  for (const std::int32_t s : sim_adapt.rep.contention.shard_counts)
    promoted = promoted || s > 1;
  if (!promoted) {
    std::cerr << "error: sim controller never promoted past 1 stripe\n";
    ok = false;
  }
  if (sim_adapt.rep.completed < sim_static.rep.completed) {
    std::cerr << "error: adaptive sim completed fewer jobs ("
              << sim_adapt.rep.completed << " < "
              << sim_static.rep.completed << ")\n";
    ok = false;
  }
  if (!tiny && sim_ratio < 3.0) {
    std::cerr << "error: sim retry reduction " << sim_ratio
              << "x < required 3x\n";
    ok = false;
  }
  // The live ratio needs real multi-core interference to be meaningful;
  // enforce only when the static run actually produced a retry storm.
  if (live_static.retries >= 200) {
    const double live_ratio =
        live_adapt.retries > 0
            ? static_cast<double>(live_static.retries) /
                  static_cast<double>(live_adapt.retries)
            : 1e9;
    std::cout << "live retry reduction: " << Table::num(live_ratio, 2)
              << "x\n";
    if (live_ratio < 1.5) {
      std::cerr << "error: live adaptive run did not reduce retries ("
                << live_static.retries << " -> " << live_adapt.retries
                << ")\n";
      ok = false;
    }
  } else {
    std::cout << "live side: too little CAS interference on this host ("
              << live_static.retries
              << " static retries) — ratio reported, not enforced\n";
  }

  std::ofstream os(out_path);
  os << "{\n  \"bench\": \"shard_adaptive\",\n  \"sim\": {\n"
     << "    \"cpus\": 4, \"tasks\": " << ts.tasks.size()
     << ", \"objects\": " << ts.object_count << ",\n"
     << "    \"static\": {\"ops\": " << sim_static.ops
     << ", \"retries\": " << sim_static.rep.total_retries
     << ", \"retries_per_access\": " << sim_static.retries_per_access
     << ", \"completed\": " << sim_static.rep.completed
     << ", \"aur\": " << sim_static.rep.aur() << "},\n"
     << "    \"adaptive\": {\"ops\": " << sim_adapt.ops
     << ", \"retries\": " << sim_adapt.rep.total_retries
     << ", \"retries_per_access\": " << sim_adapt.retries_per_access
     << ", \"completed\": " << sim_adapt.rep.completed
     << ", \"aur\": " << sim_adapt.rep.aur()
     << ", \"controller_epochs\": " << sim_adapt.rep.controller_epochs
     << ", \"shard_counts\": ";
  append_shards_json(os, sim_adapt.rep.contention.shard_counts);
  os << ",\n     \"decisions\": ";
  append_decisions_json(os, sim_adapt.rep.shard_decisions);
  os << "},\n    \"retry_reduction\": " << sim_ratio << "\n  },\n"
     << "  \"live\": {\n    \"threads\": " << threads
     << ", \"accesses_per_thread\": " << per_thread << ",\n"
     << "    \"static\": {\"retries\": " << live_static.retries
     << ", \"backoff_spins\": " << live_static.backoff_spins
     << ", \"p99_ns\": " << live_static.p99_ns << ", \"shard_counts\": ";
  append_shards_json(os, live_static.matrix.shard_counts);
  os << "},\n    \"adaptive\": {\"retries\": " << live_adapt.retries
     << ", \"backoff_spins\": " << live_adapt.backoff_spins
     << ", \"p99_ns\": " << live_adapt.p99_ns
     << ", \"eliminations\": " << live_adapt.eliminations
     << ", \"controller_epochs\": " << live_adapt.epochs
     << ", \"shard_counts\": ";
  append_shards_json(os, live_adapt.matrix.shard_counts);
  os << ",\n     \"decisions\": ";
  append_decisions_json(os, live_adapt.decisions);
  os << "}\n  }\n}\n";
  if (!os) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  std::cout << "shard_adaptive: " << (ok ? "all checks ok" : "CHECKS FAILED")
            << "\n";
  return ok ? 0 : 1;
}
