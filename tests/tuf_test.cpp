// Unit tests for the TUF library.
#include "tuf/tuf.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace lfrt {
namespace {

TEST(StepTuf, ConstantUntilCriticalThenZero) {
  auto tuf = make_step_tuf(10.0, usec(100));
  EXPECT_DOUBLE_EQ(tuf->utility(0), 10.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(50)), 10.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(100)), 10.0);  // at C still accrues
  EXPECT_DOUBLE_EQ(tuf->utility(usec(100) + 1), 0.0);
  EXPECT_EQ(tuf->critical_time(), usec(100));
  EXPECT_TRUE(tuf->non_increasing());
}

TEST(StepTuf, NegativeTimeTreatedAsZero) {
  auto tuf = make_step_tuf(5.0, usec(10));
  EXPECT_DOUBLE_EQ(tuf->utility(-5), 5.0);
}

TEST(StepTuf, RejectsBadParameters) {
  EXPECT_THROW(make_step_tuf(0.0, usec(10)), InvariantViolation);
  EXPECT_THROW(make_step_tuf(-1.0, usec(10)), InvariantViolation);
  EXPECT_THROW(make_step_tuf(1.0, 0), InvariantViolation);
}

TEST(LinearTuf, DecaysLinearly) {
  auto tuf = make_linear_tuf(100.0, usec(100));
  EXPECT_DOUBLE_EQ(tuf->utility(0), 100.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(50)), 50.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(100)), 0.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(200)), 0.0);
  EXPECT_TRUE(tuf->non_increasing());
}

TEST(ParabolicTuf, QuadraticDecay) {
  auto tuf = make_parabolic_tuf(100.0, usec(100));
  EXPECT_DOUBLE_EQ(tuf->utility(0), 100.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(50)), 75.0);  // 100 * (1 - 0.25)
  EXPECT_DOUBLE_EQ(tuf->utility(usec(100)), 0.0);
  EXPECT_TRUE(tuf->non_increasing());
}

TEST(ParabolicTuf, DominatesLinearBeforeCritical) {
  // The parabola is concave: it stays above the chord (the linear TUF)
  // strictly inside (0, C).
  auto par = make_parabolic_tuf(100.0, usec(100));
  auto lin = make_linear_tuf(100.0, usec(100));
  for (Time t = usec(1); t < usec(100); t += usec(7))
    EXPECT_GT(par->utility(t), lin->utility(t)) << "at t=" << t;
}

TEST(RampTuf, IncreasingShape) {
  auto tuf = make_ramp_tuf(100.0, usec(100));
  EXPECT_DOUBLE_EQ(tuf->utility(0), 0.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(100)), 100.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(100) + 1), 0.0);
  EXPECT_FALSE(tuf->non_increasing());
}

TEST(PiecewiseTuf, InterpolatesBetweenBreakpoints) {
  // AWACS-like plateau-then-decay shape.
  auto tuf = make_piecewise_tuf(
      {{0, 80.0}, {usec(40), 80.0}, {usec(100), 0.0}});
  EXPECT_DOUBLE_EQ(tuf->utility(0), 80.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(40)), 80.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(70)), 40.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(100)), 0.0);
  EXPECT_DOUBLE_EQ(tuf->utility(usec(101)), 0.0);
  EXPECT_EQ(tuf->critical_time(), usec(100));
  EXPECT_TRUE(tuf->non_increasing());
  EXPECT_DOUBLE_EQ(tuf->max_utility(), 80.0);
}

TEST(PiecewiseTuf, NonMonotonicShapeDetected) {
  auto tuf = make_piecewise_tuf(
      {{0, 10.0}, {usec(50), 90.0}, {usec(100), 0.0}});
  EXPECT_FALSE(tuf->non_increasing());
  EXPECT_DOUBLE_EQ(tuf->max_utility(), 90.0);
}

TEST(PiecewiseTuf, RejectsMalformedBreakpoints) {
  // Fewer than two points.
  EXPECT_THROW(make_piecewise_tuf({{0, 1.0}}), InvariantViolation);
  // Must start at t = 0.
  EXPECT_THROW(make_piecewise_tuf({{usec(1), 1.0}, {usec(2), 0.0}}),
               InvariantViolation);
  // Times must strictly increase.
  EXPECT_THROW(
      make_piecewise_tuf({{0, 1.0}, {usec(5), 2.0}, {usec(5), 0.0}}),
      InvariantViolation);
  // Utility must end at zero.
  EXPECT_THROW(make_piecewise_tuf({{0, 1.0}, {usec(5), 2.0}}),
               InvariantViolation);
  // No negative utilities.
  EXPECT_THROW(make_piecewise_tuf({{0, -1.0}, {usec(5), 0.0}}),
               InvariantViolation);
  // Must attain positive utility somewhere.
  EXPECT_THROW(make_piecewise_tuf({{0, 0.0}, {usec(5), 0.0}}),
               InvariantViolation);
}

TEST(Tuf, CloneIsDeepAndEquivalent) {
  auto tuf = make_linear_tuf(42.0, usec(77));
  auto copy = tuf->clone();
  tuf.reset();
  EXPECT_DOUBLE_EQ(copy->utility(0), 42.0);
  EXPECT_EQ(copy->critical_time(), usec(77));
  EXPECT_EQ(copy->describe(), "linear");
}

/// Property sweep: every factory shape obeys the TUF contract —
/// non-negative everywhere and exactly zero after the critical time.
class TufContractTest
    : public ::testing::TestWithParam<std::tuple<int, Time>> {};

TEST_P(TufContractTest, NonNegativeAndZeroAfterCritical) {
  const auto [shape, critical] = GetParam();
  std::unique_ptr<Tuf> tuf;
  switch (shape) {
    case 0: tuf = make_step_tuf(50.0, critical); break;
    case 1: tuf = make_linear_tuf(50.0, critical); break;
    case 2: tuf = make_parabolic_tuf(50.0, critical); break;
    case 3: tuf = make_ramp_tuf(50.0, critical); break;
    default:
      tuf = make_piecewise_tuf({{0, 50.0}, {critical / 2, 20.0},
                                {critical, 0.0}});
  }
  for (Time t = 0; t <= 2 * critical; t += std::max<Time>(1, critical / 13)) {
    EXPECT_GE(tuf->utility(t), 0.0) << tuf->describe() << " at t=" << t;
    if (t > critical) {
      EXPECT_DOUBLE_EQ(tuf->utility(t), 0.0)
          << tuf->describe() << " at t=" << t;
    }
    EXPECT_LE(tuf->utility(t), tuf->max_utility() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, TufContractTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(usec(10), usec(100), msec(5))));

}  // namespace
}  // namespace lfrt
