#include "runtime/calibrate.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "runtime/json_min.hpp"
#include "runtime/shared_object.hpp"

namespace lfrt::runtime {
namespace {

// One cached measurement.  Entries are keyed by (host, cpus, samples):
// access times are a property of the machine and the sample budget, not
// of the workload shape, so distinct benches on one host share a hit.
struct CacheEntry {
  std::string host;
  std::int64_t cpus = 0;
  std::int64_t samples = 0;
  Time lockfree_ns = 0;
  Time lock_ns = 0;
  CostModel model;  // enabled iff the entry carried a full cell table
};

// Cache degradation is warned about exactly once per process: a bench
// sweeping dozens of calibrate() calls should not repeat the same
// message, and a missing cache is a degraded mode, not an error.
std::atomic<bool> warned_no_cache_location{false};
std::atomic<bool> warned_unwritable_cache{false};

void warn_once(std::atomic<bool>& flag, const std::string& msg) {
  if (!flag.exchange(true, std::memory_order_relaxed))
    std::cerr << "lfrt: warning: " << msg << "\n";
}

std::string host_name() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf[0] != '\0' ? std::string(buf) : std::string("unknown");
}

std::int64_t cpu_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::int64_t>(n);
}

std::vector<CacheEntry> load_cache(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  std::vector<CacheEntry> entries;
  try {
    const jsonmin::JsonValue root = jsonmin::Parser(buf.str()).parse();
    const jsonmin::JsonObject* o = root.as_object();
    if (o == nullptr) return {};
    // Schema gate: the pre-zoo flat format had no "schema" key, and any
    // other version means a different entry shape — both read as an
    // empty cache, so the caller silently re-measures and overwrites.
    if (jsonmin::get_int(*o, "schema") != kCalibrationCacheSchema) return {};
    const jsonmin::JsonValue* ev = jsonmin::find(*o, "entries");
    const jsonmin::JsonArray* arr = ev != nullptr ? ev->as_array() : nullptr;
    if (arr == nullptr) return {};
    for (const jsonmin::JsonValue& v : *arr) {
      const jsonmin::JsonObject* eo = v.as_object();
      if (eo == nullptr) continue;
      CacheEntry e;
      const jsonmin::JsonValue* h = jsonmin::find(*eo, "host");
      const std::string* hs = h != nullptr ? h->as_string() : nullptr;
      if (hs == nullptr) continue;
      e.host = *hs;
      e.cpus = jsonmin::get_int(*eo, "cpus");
      e.samples = jsonmin::get_int(*eo, "samples");
      e.lockfree_ns = jsonmin::get_int(*eo, "lockfree_ns");
      e.lock_ns = jsonmin::get_int(*eo, "lock_ns");
      // The per-(kind, impl) table: every cell must parse for the model
      // to count as present; a partial table disables it (the flat
      // scalars still serve) rather than serving half-measured costs.
      std::size_t cells_seen = 0;
      if (const jsonmin::JsonValue* cv = jsonmin::find(*eo, "cells")) {
        if (const jsonmin::JsonArray* cells = cv->as_array()) {
          for (const jsonmin::JsonValue& c : *cells) {
            const jsonmin::JsonObject* co = c.as_object();
            if (co == nullptr) continue;
            const jsonmin::JsonValue* kv = jsonmin::find(*co, "kind");
            const jsonmin::JsonValue* iv = jsonmin::find(*co, "impl");
            const std::string* ks = kv != nullptr ? kv->as_string() : nullptr;
            const std::string* is = iv != nullptr ? iv->as_string() : nullptr;
            ObjectKind kind;
            ObjectImpl impl;
            if (ks == nullptr || is == nullptr ||
                !parse_object_kind(*ks, &kind) ||
                !parse_object_impl(*is, &impl))
              continue;
            AccessCost& cell = e.model.at(kind, impl);
            cell.base = jsonmin::get_int(*co, "base_ns");
            cell.per_contender = jsonmin::get_int(*co, "per_contender_ns");
            cell.per_segment = jsonmin::get_int(*co, "per_segment_ns");
            cell.retry_penalty = jsonmin::get_int(*co, "retry_ns");
            ++cells_seen;
          }
        }
      }
      e.model.enabled = cells_seen == kObjectKindCount * kObjectImplCount;
      if (e.lockfree_ns > 0 && e.lock_ns > 0) entries.push_back(std::move(e));
    }
  } catch (const std::exception&) {
    // A corrupt cache is indistinguishable from no cache.
    return {};
  }
  return entries;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void store_cache(const std::string& path,
                 const std::vector<CacheEntry>& entries) {
  std::string out =
      "{\"schema\":" + std::to_string(kCalibrationCacheSchema) +
      ",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const CacheEntry& e = entries[i];
    if (i > 0) out += ',';
    out += "{\"host\":";
    append_json_string(out, e.host);
    out += ",\"cpus\":" + std::to_string(e.cpus);
    out += ",\"samples\":" + std::to_string(e.samples);
    out += ",\"lockfree_ns\":" + std::to_string(e.lockfree_ns);
    out += ",\"lock_ns\":" + std::to_string(e.lock_ns);
    if (e.model.enabled) {
      out += ",\"cells\":[";
      bool first = true;
      for (ObjectKind kind : all_object_kinds()) {
        for (ObjectImpl impl : all_object_impls()) {
          const AccessCost& cell = e.model.at(kind, impl);
          if (!first) out += ',';
          first = false;
          out += "{\"kind\":\"" + to_string(kind) + "\"";
          out += ",\"impl\":\"" + to_string(impl) + "\"";
          out += ",\"base_ns\":" + std::to_string(cell.base);
          out += ",\"per_contender_ns\":" + std::to_string(cell.per_contender);
          out += ",\"per_segment_ns\":" + std::to_string(cell.per_segment);
          out += ",\"retry_ns\":" + std::to_string(cell.retry_penalty);
          out += '}';
        }
      }
      out += ']';
    }
    out += '}';
  }
  out += "]}\n";
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), ec);
  std::ofstream f(path, std::ios::trunc);
  if (f) f << out;
  f.flush();
  // Best-effort: an unwritable cache is not an error, but say so once
  // so a silently-uncached fleet is diagnosable.
  if (!f)
    warn_once(warned_unwritable_cache,
              "calibration cache '" + path +
                  "' is not writable; results will not persist");
}

/// Mean per-access wall time (ns) of `threads` workers each performing
/// `ops` accesses of `op` against one fresh SharedObject of `spec`.
/// Workers rendezvous on a start flag so the measured window is all-
/// threads-hot; with T workers in lockstep the wall time per completed
/// round IS the contended per-access latency a thread experiences.
double measure_access_ns(ObjectSpec spec, AccessOp op, int threads,
                         std::int64_t ops) {
  SharedObject obj(spec, /*queue_capacity=*/1024);
  const std::function<void()> checkpoint = [] {};
  std::atomic<bool> go{false};
  std::atomic<int> ready{0};
  auto worker = [&](TaskId tid) {
    ready.fetch_add(1, std::memory_order_relaxed);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (std::int64_t i = 0; i < ops; ++i)
      obj.access(op, tid, static_cast<JobId>(i), checkpoint, nullptr);
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker, TaskId{t});
  while (ready.load(std::memory_order_relaxed) < threads - 1)
    std::this_thread::yield();
  const auto begin = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  worker(TaskId{0});
  for (std::thread& t : pool) t.join();
  const auto end = std::chrono::steady_clock::now();
  const double total_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
  return total_ns / static_cast<double>(ops);
}

Time round_ns(double ns) {
  const Time t = static_cast<Time>(std::llround(ns));
  return t < 0 ? 0 : t;
}

}  // namespace

CostModel measure_cost_model(std::int64_t ops) {
  CostModel model;
  model.enabled = true;
  // Contended pass capped at the core count: the zoo's locks spin, and
  // oversubscribed spinning measures the OS scheduler, not the lock.
  const int contended = static_cast<int>(
      std::min<std::int64_t>(4, cpu_count()));
  for (ObjectKind kind : all_object_kinds()) {
    for (ObjectImpl impl : all_object_impls()) {
      const ObjectSpec spec{kind, impl};
      AccessCost& cell = model.at(kind, impl);
      const double base = measure_access_ns(spec, AccessOp::kWrite, 1, ops);
      cell.base = std::max<Time>(1, round_ns(base));
      if (contended > 1) {
        const double hot =
            measure_access_ns(spec, AccessOp::kWrite, contended, ops);
        // Clamped linear fit through the two points; negative slopes are
        // measurement noise, not a lock that speeds up under load.
        cell.per_contender = round_ns(std::max(0.0, (hot - base) /
                                                        (contended - 1)));
      }
      if (kind == ObjectKind::kSnapshot) {
        // A scan's extra cost over an update, spread over the segments
        // it collects.
        const double scan = measure_access_ns(spec, AccessOp::kRead, 1, ops);
        cell.per_segment = round_ns(
            std::max(0.0, (scan - base) /
                              static_cast<double>(kSnapshotSegments)));
      }
      // retry_penalty stays 0: the simulator re-runs the whole attempt
      // on a retry, which already charges the re-execution cost.
    }
  }
  return model;
}

std::string calibration_cache_path() {
  if (const char* env = std::getenv("LFRT_CALIBRATION_CACHE");
      env != nullptr && env[0] != '\0')
    return env;
  if (const char* home = std::getenv("HOME");
      home != nullptr && home[0] != '\0')
    return std::string(home) + "/.cache/lfrt_calibration.json";
  // No env override and no $HOME: there is no sane place for a
  // persistent cache.  Returning a cwd-relative name here used to
  // scatter .lfrt_calibration.json files into whatever directory the
  // process happened to run from; calibrate() now treats the empty
  // path as "run uncached" instead.
  return {};
}

AccessCalibration calibrate_access_times(const rt::AccessTimeConfig& mcfg) {
  const rt::AccessTimeResult lf = rt::measure_lockfree_access(mcfg);
  const rt::AccessTimeResult lb = rt::measure_lockbased_access(mcfg);
  AccessCalibration cal;
  cal.lockfree_access_time = std::max<Time>(
      1, static_cast<Time>(std::llround(lf.per_access_ns.mean())));
  cal.lock_access_time = std::max<Time>(
      1, static_cast<Time>(std::llround(lb.per_access_ns.mean())));
  cal.samples = mcfg.samples;
  return cal;
}

AccessCalibration calibrate(ExecConfig& cfg, const TaskSet& ts,
                            std::int64_t samples,
                            const CalibrateOptions& opts) {
  const std::string path =
      opts.cache_path.empty() ? calibration_cache_path() : opts.cache_path;
  // No resolvable cache location (LFRT_CALIBRATION_CACHE and HOME both
  // unset): degrade to uncached measurement — never throw, never write
  // into the cwd.
  const bool use_cache = opts.use_cache && !path.empty();
  if (opts.use_cache && path.empty())
    warn_once(warned_no_cache_location,
              "no calibration-cache location (LFRT_CALIBRATION_CACHE and "
              "HOME unset); calibrating uncached");
  const std::string host = host_name();
  const std::int64_t cpus = cpu_count();

  if (use_cache && !opts.force) {
    for (const CacheEntry& e : load_cache(path)) {
      if (e.host == host && e.cpus == cpus && e.samples == samples &&
          e.model.enabled) {
        AccessCalibration cal;
        cal.lockfree_access_time = e.lockfree_ns;
        cal.lock_access_time = e.lock_ns;
        cal.samples = e.samples;
        cal.from_cache = true;
        cal.model = e.model;
        cfg.sim_lockfree_access_time = cal.lockfree_access_time;
        cfg.sim_lock_access_time = cal.lock_access_time;
        cfg.sim_cost_model = cal.model;
        return cal;
      }
    }
  }

  rt::AccessTimeConfig mcfg;
  mcfg.object_count = std::max<std::int32_t>(1, ts.object_count);
  mcfg.task_count =
      std::max<std::int32_t>(1, static_cast<std::int32_t>(ts.tasks.size()));
  mcfg.samples = samples;
  AccessCalibration cal = calibrate_access_times(mcfg);
  cal.model = measure_cost_model(samples);
  cfg.sim_lockfree_access_time = cal.lockfree_access_time;
  cfg.sim_lock_access_time = cal.lock_access_time;
  cfg.sim_cost_model = cal.model;

  if (use_cache) {
    std::vector<CacheEntry> entries = load_cache(path);
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const CacheEntry& e) {
                                   return e.host == host && e.cpus == cpus &&
                                          e.samples == samples;
                                 }),
                  entries.end());
    entries.push_back({host, cpus, samples, cal.lockfree_access_time,
                       cal.lock_access_time, cal.model});
    store_cache(path, entries);
  }
  return cal;
}

}  // namespace lfrt::runtime
