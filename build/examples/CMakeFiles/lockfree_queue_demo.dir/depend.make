# Empty dependencies file for lockfree_queue_demo.
# This may be replaced when dependencies are built.
