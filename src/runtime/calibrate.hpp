// Executor-side access-time calibration.
//
// Cross-validation (bench/ext_executor_validation) feeds the simulator
// per-access costs s and r so it predicts what the executor will
// measure.  Until now those were order-of-magnitude constants
// (usec(1) / usec(2)); this helper runs the fig08 access-time
// microbenchmarks (rt::measure_lockfree_access /
// rt::measure_lockbased_access) on the current host and writes the
// measured means into ExecConfig's sim_* fields — so the simulator side
// of a cross-validation run is parameterized by the same machine that
// produces the executor side (the paper's Section 5 measurement,
// feeding its Section 6 simulation).
#pragma once

#include "rt/access_time.hpp"
#include "runtime/exec_adapter.hpp"
#include "support/time.hpp"

namespace lfrt::runtime {

/// Measured per-access costs, in the simulator's vocabulary.
struct AccessCalibration {
  Time lockfree_access_time = 0;  ///< s — mean lock-free access (ns)
  Time lock_access_time = 0;      ///< r — mean lock-based access (ns)
  std::int64_t samples = 0;       ///< samples behind each mean
};

/// Run both fig08 microbenchmarks and return the measured means,
/// clamped to >= 1 ns (the simulator requires positive access times).
AccessCalibration calibrate_access_times(const rt::AccessTimeConfig& mcfg);

/// Measure with a config shaped like `ts`'s universe (object/task
/// counts) and write the results into cfg.sim_lockfree_access_time /
/// cfg.sim_lock_access_time.  `samples` trades precision for startup
/// time (the fig08 bench uses 2000; a few hundred suffices to get the
/// order of magnitude right for cross-validation).
AccessCalibration calibrate(ExecConfig& cfg, const TaskSet& ts,
                            std::int64_t samples = 500);

}  // namespace lfrt::runtime
