#include "uam/uam.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace lfrt {

void UamSpec::validate() const {
  LFRT_CHECK_MSG(window > 0, "UAM window W must be positive");
  LFRT_CHECK_MSG(max_per_window >= 1, "UAM a must be >= 1");
  LFRT_CHECK_MSG(min_per_window >= 0, "UAM l must be >= 0");
  LFRT_CHECK_MSG(min_per_window <= max_per_window, "UAM requires l <= a");
}

std::int64_t uam_max_arrivals(const UamSpec& spec, Time interval) {
  spec.validate();
  if (interval < 0) return 0;
  return spec.max_per_window * (ceil_div(interval, spec.window) + 1);
}

std::int64_t uam_min_arrivals(const UamSpec& spec, Time interval) {
  spec.validate();
  if (interval < 0) return 0;
  return spec.min_per_window * (interval / spec.window);
}

bool uam_conforms_max(const UamSpec& spec,
                      const std::vector<Time>& arrivals) {
  spec.validate();
  LFRT_CHECK_MSG(std::is_sorted(arrivals.begin(), arrivals.end()),
                 "arrival trace must be sorted");
  // The supremum of the window count over all placements of a half-open
  // window [t, t+W) is attained with the window starting at an arrival.
  std::size_t head = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (head < i) head = i;
    while (head < arrivals.size() &&
           arrivals[head] < arrivals[i] + spec.window)
      ++head;
    if (static_cast<std::int64_t>(head - i) > spec.max_per_window)
      return false;
  }
  return true;
}

std::int64_t uam_max_window_count(Time window,
                                  const std::vector<Time>& arrivals) {
  LFRT_CHECK(window > 0);
  LFRT_CHECK_MSG(std::is_sorted(arrivals.begin(), arrivals.end()),
                 "arrival trace must be sorted");
  std::int64_t best = 0;
  std::size_t head = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (head < i) head = i;
    while (head < arrivals.size() && arrivals[head] < arrivals[i] + window)
      ++head;
    best = std::max(best, static_cast<std::int64_t>(head - i));
  }
  return best;
}

std::int64_t uam_min_window_count(Time window,
                                  const std::vector<Time>& arrivals,
                                  Time span_begin, Time span_end) {
  LFRT_CHECK(window > 0);
  LFRT_CHECK_MSG(std::is_sorted(arrivals.begin(), arrivals.end()),
                 "arrival trace must be sorted");
  if (span_end - span_begin < window) return 0;
  const Time last_start = span_end - window;

  auto count_in = [&](Time t) {
    auto lo = std::lower_bound(arrivals.begin(), arrivals.end(), t);
    auto hi = std::lower_bound(arrivals.begin(), arrivals.end(), t + window);
    return static_cast<std::int64_t>(hi - lo);
  };

  // Minima occur at window starts just after an arrival leaves (t_j+1)
  // or at the span ends (see uam_conforms_min).
  std::int64_t best = std::min(count_in(span_begin), count_in(last_start));
  for (Time tj : arrivals) {
    const Time t = tj + 1;
    if (t < span_begin || t > last_start) continue;
    best = std::min(best, count_in(t));
  }
  return best;
}

UamSpec uam_fit(Time window, const std::vector<Time>& arrivals,
                Time span_begin, Time span_end) {
  UamSpec spec;
  spec.window = window;
  spec.max_per_window = std::max<std::int64_t>(
      1, uam_max_window_count(window, arrivals));
  spec.min_per_window = std::min(
      spec.max_per_window,
      uam_min_window_count(window, arrivals, span_begin, span_end));
  spec.validate();
  return spec;
}

bool uam_conforms_min(const UamSpec& spec, const std::vector<Time>& arrivals,
                      Time span_begin, Time span_end) {
  spec.validate();
  LFRT_CHECK_MSG(std::is_sorted(arrivals.begin(), arrivals.end()),
                 "arrival trace must be sorted");
  if (span_end - span_begin < spec.window) return true;  // no full window
  const Time last_start = span_end - spec.window;

  auto count_in = [&](Time t) {
    // #arrivals in half-open [t, t + W)
    auto lo = std::lower_bound(arrivals.begin(), arrivals.end(), t);
    auto hi = std::lower_bound(arrivals.begin(), arrivals.end(),
                               t + spec.window);
    return static_cast<std::int64_t>(hi - lo);
  };

  // The window count, as a function of the window start t, only
  // *decreases* immediately after an arrival instant exits the window
  // (t = t_j + 1 with integer time).  Checking those candidates, plus
  // the two span ends, covers every local minimum.
  if (count_in(span_begin) < spec.min_per_window) return false;
  if (count_in(last_start) < spec.min_per_window) return false;
  for (Time tj : arrivals) {
    const Time t = tj + 1;
    if (t < span_begin || t > last_start) continue;
    if (count_in(t) < spec.min_per_window) return false;
  }
  return true;
}

namespace arrivals {

std::vector<Time> periodic(const UamSpec& spec, Time horizon) {
  spec.validate();
  std::vector<Time> out;
  for (Time t = 0; t <= horizon; t += spec.window) out.push_back(t);
  return out;
}

std::vector<Time> bursty(const UamSpec& spec, Time horizon) {
  spec.validate();
  std::vector<Time> out;
  for (Time t = 0; t <= horizon; t += spec.window)
    for (std::int64_t k = 0; k < spec.max_per_window; ++k) out.push_back(t);
  return out;
}

std::vector<Time> random_conformant(const UamSpec& spec, Time horizon,
                                    Rng& rng) {
  spec.validate();
  // Per tiled window, draw a count in [l, a] and uniform offsets, then
  // run the combined trace through the admission gate: tiling guarantees
  // the l-side (each tile has >= l arrivals), the gate guarantees the
  // a-side for *sliding* windows, which tiling alone does not.
  std::vector<Time> proposal;
  for (Time t = 0; t < horizon; t += spec.window) {
    const std::int64_t n =
        rng.uniform(spec.min_per_window, spec.max_per_window);
    for (std::int64_t k = 0; k < n; ++k)
      proposal.push_back(t + rng.uniform(0, spec.window - 1));
  }
  std::sort(proposal.begin(), proposal.end());
  UamGate gate(spec);
  std::vector<Time> out;
  for (Time t : proposal)
    if (gate.offer(t)) out.push_back(t);
  return out;
}

std::vector<Time> periodic_phased(const UamSpec& spec, Time horizon,
                                  Rng& rng) {
  spec.validate();
  std::vector<Time> out;
  const Time phase = rng.uniform(0, spec.window - 1);
  for (Time t = phase; t <= horizon; t += spec.window)
    for (std::int64_t k = 0; k < spec.max_per_window; ++k) out.push_back(t);
  return out;
}

std::vector<Time> adversarial(const UamSpec& spec, Time anchor,
                              Time horizon) {
  spec.validate();
  LFRT_CHECK(anchor >= 0);
  std::vector<Time> out;
  for (Time t = anchor; t <= horizon; t += spec.window)
    for (std::int64_t k = 0; k < spec.max_per_window; ++k) out.push_back(t);
  return out;
}

}  // namespace arrivals

UamGate::UamGate(UamSpec spec) : spec_(spec) { spec_.validate(); }

bool UamGate::offer(Time t) {
  LFRT_CHECK_MSG(t >= last_offer_, "offers must be in time order");
  last_offer_ = t;
  // Any half-open window [t', t'+W) containing t with t' <= t has its
  // count maximized as t' -> (t - W)+, i.e. by the admitted arrivals in
  // (t - W, t].  Future windows are checked when future offers arrive.
  const Time cutoff = t - spec_.window;
  recent_.erase(std::remove_if(recent_.begin(), recent_.end(),
                               [&](Time x) { return x <= cutoff; }),
                recent_.end());
  if (static_cast<std::int64_t>(recent_.size()) + 1 > spec_.max_per_window) {
    ++rejected_;
    return false;
  }
  recent_.push_back(t);
  ++admitted_;
  return true;
}

}  // namespace lfrt
