
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/access_time.cpp" "src/rt/CMakeFiles/lfrt_rt.dir/access_time.cpp.o" "gcc" "src/rt/CMakeFiles/lfrt_rt.dir/access_time.cpp.o.d"
  "/root/repo/src/rt/executor.cpp" "src/rt/CMakeFiles/lfrt_rt.dir/executor.cpp.o" "gcc" "src/rt/CMakeFiles/lfrt_rt.dir/executor.cpp.o.d"
  "/root/repo/src/rt/priority.cpp" "src/rt/CMakeFiles/lfrt_rt.dir/priority.cpp.o" "gcc" "src/rt/CMakeFiles/lfrt_rt.dir/priority.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/lfrt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/lfrt_task.dir/DependInfo.cmake"
  "/root/repo/build/src/tuf/CMakeFiles/lfrt_tuf.dir/DependInfo.cmake"
  "/root/repo/build/src/uam/CMakeFiles/lfrt_uam.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
