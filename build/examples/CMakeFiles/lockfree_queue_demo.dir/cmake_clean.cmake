file(REMOVE_RECURSE
  "CMakeFiles/lockfree_queue_demo.dir/lockfree_queue_demo.cpp.o"
  "CMakeFiles/lockfree_queue_demo.dir/lockfree_queue_demo.cpp.o.d"
  "lockfree_queue_demo"
  "lockfree_queue_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockfree_queue_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
