file(REMOVE_RECURSE
  "../bench/lemma45_aur_bounds"
  "../bench/lemma45_aur_bounds.pdb"
  "CMakeFiles/lemma45_aur_bounds.dir/lemma45_aur_bounds.cpp.o"
  "CMakeFiles/lemma45_aur_bounds.dir/lemma45_aur_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma45_aur_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
