# Empty compiler generated dependencies file for fig13_overload_hetero.
# This may be replaced when dependencies are built.
