// Figure 8: lock-based (r) and lock-free (s) shared-object access time
// under an increasing number of shared objects, 10 tasks, ~2000 samples
// per point, 95% confidence intervals.
//
// Measured on real threads with std::atomic CAS (lock-free Michael &
// Scott queue) and std::mutex + a lock-based-RUA invocation per request
// (the paper's r includes the resource-management machinery each lock
// and unlock request triggers).  Absolute values differ from the 2006
// QNX/P-III testbed; the reproduced shape is r >> s with r growing in
// the object count and s roughly flat.
#include "common.hpp"
#include "rt/access_time.hpp"

int main() {
  using namespace lfrt;
  bench::print_header("Figure 8", "lock-based r vs lock-free s access time");
  std::cout << "tasks=10  samples=2000 per point  interferer=on  seed=1\n\n";

  Table table({"objects", "r (us)", "r ci95", "s (us)", "s ci95", "r/s",
               "cas retries", "contended locks"});

  for (int objects = 1; objects <= 10; ++objects) {
    rt::AccessTimeConfig cfg;
    cfg.object_count = objects;
    cfg.task_count = 10;
    cfg.samples = 2000;
    const auto lf = rt::measure_lockfree_access(cfg);
    const auto lb = rt::measure_lockbased_access(cfg);
    const double r_us = lb.per_access_ns.mean() / 1e3;
    const double s_us = lf.per_access_ns.mean() / 1e3;
    table.add_row({std::to_string(objects), Table::num(r_us, 3),
                   Table::num(lb.per_access_ns.ci95() / 1e3, 3),
                   Table::num(s_us, 4),
                   Table::num(lf.per_access_ns.ci95() / 1e3, 4),
                   Table::num(r_us / s_us, 1), std::to_string(lf.retries),
                   std::to_string(lb.contended)});
  }
  table.print();
  std::cout << "\ncsv:\n";
  table.print_csv();
  return 0;
}
