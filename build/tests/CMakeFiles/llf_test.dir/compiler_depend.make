# Empty compiler generated dependencies file for llf_test.
# This may be replaced when dependencies are built.
