// Executable forms of the paper's analytical results.
//
//   * Lemma 1   — preemption bound under UA scheduling (event counting)
//   * Theorem 2 — lock-free retry bound under the UAM
//   * Theorem 3 — sojourn-time tradeoff conditions (lock-free vs lock-based)
//   * Lemma 4   — AUR band for lock-free sharing
//   * Lemma 5   — AUR band for lock-based sharing
//
// Each function cites the formula it implements; tests validate them
// against hand-computed values, and the simulator validates them against
// measured behaviour (bench/thm2_retry_bound, bench/thm3_sojourn,
// bench/lemma45_aur_bounds).
#pragma once

#include <cstdint>

#include "runtime/cost_model.hpp"
#include "task/task.hpp"

namespace lfrt::analysis {

/// x_i = sum_{j != i} a_j * (ceil(C_i / W_j) + 1): the maximum number of
/// job releases by *other* tasks inside J_i's critical-time interval
/// (Theorem 2's Case 1 count and Theorem 3's x_i).
std::int64_t interference_arrivals(const TaskSet& ts, TaskId i);

/// Theorem 2 — upper bound on the total number of lock-free retries of a
/// job of task i scheduled by RUA under the UAM:
///
///     f_i <= 3 a_i + sum_{j != i} 2 a_j (ceil(C_i / W_j) + 1)
///
/// The bound is independent of how many lock-free objects the job
/// accesses: a retry can occur only at a scheduling event, and only job
/// arrivals/completions are events under lock-free RUA.
std::int64_t retry_bound(const TaskSet& ts, TaskId i);

/// Lemma 1 corollary used in Theorem 2's proof: the maximum number of
/// scheduling events (and hence preemptions) a job of task i can
/// experience within its critical-time interval.  Identical to
/// retry_bound — exposed separately for clarity at call sites that
/// reason about preemptions.
std::int64_t max_scheduling_events(const TaskSet& ts, TaskId i);

/// n_i — the maximum number of jobs that could block a job of task i:
/// all jobs alive in its critical window, n_i <= 2 a_i + x_i
/// (Theorem 3's proof).
std::int64_t max_blocking_jobs(const TaskSet& ts, TaskId i);

/// Worst-case blocking time under lock-based RUA:
/// B_i = r * min(m_i, n_i)   [Wu et al. result, quoted in Section 5].
Time worst_blocking_time(const TaskSet& ts, TaskId i, Time r);

/// Worst-case total retry time under lock-free RUA: R_i = s * f_i.
Time worst_retry_time(const TaskSet& ts, TaskId i, Time s);

/// Worst-case interference: time spent executing other tasks while a job
/// of task i is runnable, bounded by the demand other tasks can place in
/// [t0, t0 + C_i]:  I_i <= sum_{j != i} a_j (ceil(C_i/W_j)+1) * c_j,
/// with c_j = u_j + m_j * t_acc.
Time worst_interference(const TaskSet& ts, TaskId i, Time t_acc);

/// Worst-case sojourn with lock-based sharing:
/// u_i + I_i + r * m_i + B_i  (Section 5).
Time worst_sojourn_lockbased(const TaskSet& ts, TaskId i, Time r);

/// Worst-case sojourn with lock-free sharing:
/// u_i + I_i + s * m_i + R_i  (Section 5).
Time worst_sojourn_lockfree(const TaskSet& ts, TaskId i, Time s);

/// Theorem 3 — the s/r threshold below which a job of task i has a
/// shorter maximum sojourn under lock-free than under lock-based:
///
///     s/r < 2/3                                   if m_i <= n_i
///     s/r < (m_i + n_i) / (m_i + 3 a_i + 2 x_i)   if m_i >  n_i
///
/// Returns the right-hand side for task i's parameters.
///
/// Note: the paper derives the 2/3 figure by substituting the *upper
/// bound* of X = 2 r m (namely m = n_i), so it is exact only when m_i
/// sits at that cap; for the pointwise-sharp condition use
/// lockfree_exact_threshold.
double lockfree_ratio_threshold(const TaskSet& ts, TaskId i);

/// The pointwise-exact sharing-cost comparison behind Theorem 3:
/// lock-free's worst-case sharing time s*(m_i + f_i) is smaller than
/// lock-based's r*(m_i + min(m_i, n_i)) iff
///
///     s/r < (m_i + min(m_i, n_i)) / (m_i + f_i).
///
/// (X > Y in the proof's notation, before the paper coarsens X to its
/// upper bound.)
double lockfree_exact_threshold(const TaskSet& ts, TaskId i);

/// True iff Theorem 3's sufficient condition holds for the given access
/// times, i.e. lock-free is guaranteed the shorter worst-case sojourn.
bool lockfree_wins(const TaskSet& ts, TaskId i, Time s, Time r);

// --- Per-impl variants over the calibrated cost model ----------------
//
// The flat bounds above take one scalar per regime; these take a
// runtime::CostModel cell and fold its contention terms into an
// *effective* scalar for task i first, then reuse the identical
// formulas — so Theorem 3's structure is unchanged and only the access
// cost became mechanism-aware.  The effective per-access cost is
//
//     t_eff = base + per_contender * min(m_i, n_i)
//             (+ per_segment * segments for snapshot kinds)
//
// min(m_i, n_i) caps the concurrent contenders a job of task i can
// meet at an object: at most one per of its own m_i accesses, at most
// n_i jobs alive in its window (Theorem 3's blocking count).

/// t_eff of task i for one (kind, impl) cell of `model` (>= 1 tick).
Time effective_access_cost(const TaskSet& ts, TaskId i,
                           runtime::ObjectKind kind,
                           runtime::ObjectImpl impl,
                           const runtime::CostModel& model);

/// Worst-case sojourn of task i when every object is (kind, impl):
/// worst_sojourn_lockbased(t_eff) for lock impls, _lockfree(t_eff) for
/// kLockFree.
Time worst_sojourn_cost(const TaskSet& ts, TaskId i,
                        runtime::ObjectKind kind, runtime::ObjectImpl impl,
                        const runtime::CostModel& model);

/// Theorem 3 against the calibrated cells: true iff s_eff/r_eff — the
/// lock-free cell's effective cost over the lock impl's — is below
/// task i's ratio threshold, i.e. lock-free is guaranteed the shorter
/// worst-case sojourn versus this particular lock mechanism.
bool lockfree_wins_cost(const TaskSet& ts, TaskId i,
                        runtime::ObjectKind kind,
                        runtime::ObjectImpl lock_impl,
                        const runtime::CostModel& model);

/// Lower/upper bounds on the accrued utility ratio.
struct AurBounds {
  double lower = 0.0;
  double upper = 0.0;
};

/// Lemma 4 — AUR band for lock-free sharing (all jobs feasible,
/// non-increasing TUFs):
///
///  sum (l_i/W_i) U_i(u_i + s m_i + I_i + R_i)        sum (a_i/W_i) U_i(u_i + s m_i)
///  ---------------------------------------- < AUR < ------------------------------
///        sum (l_i/W_i) U_i(0)                              sum (a_i/W_i) U_i(0)
AurBounds lockfree_aur_bounds(const TaskSet& ts, Time s);

/// Lemma 5 — AUR band for lock-based sharing (same structure with r,
/// B_i in place of s, R_i).
AurBounds lockbased_aur_bounds(const TaskSet& ts, Time r);

/// Maximum execution demand task i can place in *any* interval of
/// length `delta` counting only jobs that both arrive and reach their
/// critical time inside the interval (the demand-bound function under
/// the UAM):  a_i * (ceil((delta - C_i)/W_i) + 1) * c_i  for
/// delta >= C_i, else 0, with c_i = u_i + m_i * t_acc.
Time uam_demand(const TaskSet& ts, TaskId i, Time delta, Time t_acc);

/// Sufficient uniprocessor feasibility test under the UAM: every
/// critical time is met by ECF/EDF (and hence by RUA, which defaults to
/// ECF when feasible) if the total demand in every interval is at most
/// the interval length.  Conservative: uses the straddle-worst-case
/// arrival counts.  If `worst_slack` is non-null it receives the
/// minimum of (delta - demand(delta)) over the checked intervals.
bool uam_edf_feasible(const TaskSet& ts, Time t_acc,
                      Time* worst_slack = nullptr);

/// Reference asymptotic scheduling costs (Sections 3.6 and 5): the
/// dominant-term op counts n^2 log2 n (lock-based RUA) and n^2
/// (lock-free RUA), used by the ablation bench to check the measured
/// operation counters scale as predicted.
double rua_lockbased_asymptotic(std::int64_t n);
double rua_lockfree_asymptotic(std::int64_t n);

}  // namespace lfrt::analysis
