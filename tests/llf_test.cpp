// Tests for the LLF baseline and its fully-dynamic (mutual-preemption)
// behaviour in the simulator — Section 4.1's scheduler taxonomy.
#include <gtest/gtest.h>

#include <memory>

#include "sched/edf.hpp"
#include "sched/llf.hpp"
#include "sim/simulator.hpp"

namespace lfrt {
namespace {

using sched::LlfScheduler;
using sched::SchedJob;

SchedJob mk(JobId id, Time critical, Time remaining,
            std::vector<std::unique_ptr<Tuf>>& tufs,
            JobId waits_on = kNoJob) {
  tufs.push_back(make_step_tuf(1.0, critical));
  SchedJob j;
  j.id = id;
  j.arrival = 0;
  j.critical = critical;
  j.remaining = remaining;
  j.tuf = tufs.back().get();
  j.waits_on = waits_on;
  return j;
}

TEST(Llf, OrdersByLaxityNotDeadline) {
  std::vector<std::unique_ptr<Tuf>> tufs;
  const LlfScheduler llf;
  // Job 0: critical 100, remaining 10 -> laxity 90.
  // Job 1: critical 200, remaining 195 -> laxity 5 (urgent by laxity).
  std::vector<SchedJob> jobs{mk(0, usec(100), usec(10), tufs),
                             mk(1, usec(200), usec(195), tufs)};
  const auto res = llf.build(jobs, 0);
  EXPECT_EQ(res.schedule[0], 1);
  EXPECT_EQ(res.dispatch, 1);
  // EDF would pick job 0 instead.
  const sched::EdfScheduler edf;
  EXPECT_EQ(edf.build(jobs, 0).dispatch, 0);
}

TEST(Llf, LaxityShrinksWithTime) {
  std::vector<std::unique_ptr<Tuf>> tufs;
  const LlfScheduler llf;
  std::vector<SchedJob> jobs{mk(0, usec(100), usec(10), tufs),
                             mk(1, usec(120), usec(20), tufs)};
  // At t=0: laxities 90 and 100 -> job 0 first.
  EXPECT_EQ(llf.build(jobs, 0).dispatch, 0);
  // Suppose job 0 ran 15us (remaining 10 stays — job 1 starved): at
  // t=95, laxities become -5 and 5... simulate by shifting now.
  EXPECT_EQ(llf.build(jobs, usec(95)).dispatch, 0);
  // If instead job 0 completed and job 1 is alone, trivially job 1.
  std::vector<SchedJob> one{mk(1, usec(120), usec(20), tufs)};
  EXPECT_EQ(llf.build(one, usec(95)).dispatch, 1);
}

TEST(Llf, SkipsBlockedJobs) {
  std::vector<std::unique_ptr<Tuf>> tufs;
  const LlfScheduler llf;
  std::vector<SchedJob> jobs{mk(0, usec(100), usec(90), tufs, /*waits=*/1),
                             mk(1, usec(500), usec(10), tufs)};
  const auto res = llf.build(jobs, 0);
  EXPECT_EQ(res.schedule[0], 0);  // smallest laxity, though blocked
  EXPECT_EQ(res.dispatch, 1);
  EXPECT_TRUE(res.rejected.empty());
}

TEST(Llf, EmptyViewIdles) {
  const LlfScheduler llf;
  const auto res = llf.build({}, usec(5));
  EXPECT_EQ(res.dispatch, kNoJob);
  EXPECT_TRUE(res.schedule.empty());
}

TEST(Llf, MutualPreemptionInSimulator) {
  // Two equal jobs under LLF ping-pong: the running job's laxity stays
  // fixed while the waiting job's laxity falls, so each scheduling event
  // can flip the dispatch — the fully-dynamic behaviour of Figure 6.
  TaskSet ts;
  ts.object_count = 0;
  for (TaskId id = 0; id < 2; ++id) {
    TaskParams p;
    p.id = id;
    p.arrival = UamSpec{1, 1, msec(100)};
    p.tuf = make_step_tuf(10.0, msec(50));
    p.exec_time = msec(10);
    ts.tasks.push_back(std::move(p));
  }
  // A ticking task to generate scheduling events.
  TaskParams tick;
  tick.id = 2;
  tick.arrival = UamSpec{1, 1, msec(1)};
  tick.tuf = make_step_tuf(100.0, usec(900));
  tick.exec_time = usec(50);
  ts.tasks.push_back(std::move(tick));
  ts.validate();

  const LlfScheduler llf;
  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kIdeal;
  cfg.horizon = msec(60);
  sim::Simulator sim(ts, llf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {0});
  std::vector<Time> ticks;
  for (Time t = usec(200); t < msec(30); t += msec(1)) ticks.push_back(t);
  sim.set_arrivals(2, ticks);
  const auto rep = sim.run();

  // Both long jobs complete and each was preempted more than once —
  // impossible under a static or job-level dynamic priority scheduler
  // with a single release each.
  EXPECT_GT(rep.jobs[0].preemptions, 1);
  EXPECT_GT(rep.jobs[1].preemptions, 1);
  EXPECT_EQ(rep.jobs[0].state, JobState::kCompleted);
  EXPECT_EQ(rep.jobs[1].state, JobState::kCompleted);
}

TEST(Llf, UnderloadMeetsAllCriticalTimes) {
  TaskSet ts;
  ts.object_count = 0;
  for (TaskId id = 0; id < 4; ++id) {
    TaskParams p;
    p.id = id;
    p.arrival = UamSpec{1, 1, msec(10)};
    p.tuf = make_step_tuf(10.0 + id, msec(10));
    p.exec_time = msec(1);
    ts.tasks.push_back(std::move(p));
  }
  ts.validate();
  const LlfScheduler llf;
  sim::SimConfig cfg;
  cfg.mode = sim::ShareMode::kIdeal;
  cfg.horizon = msec(200);
  sim::Simulator sim(ts, llf, cfg);
  sim.seed_arrivals(4);
  const auto rep = sim.run();
  EXPECT_DOUBLE_EQ(rep.cmr(), 1.0);
}

}  // namespace
}  // namespace lfrt
