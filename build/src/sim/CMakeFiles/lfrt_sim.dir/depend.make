# Empty dependencies file for lfrt_sim.
# This may be replaced when dependencies are built.
