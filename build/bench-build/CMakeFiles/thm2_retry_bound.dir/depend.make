# Empty dependencies file for thm2_retry_bound.
# This may be replaced when dependencies are built.
