// Airborne tracker scenario (paper, Figure 1(b) / reference [8]).
//
// An AWACS-style surveillance application: track-association activities
// whose utility plateaus and then decays (piecewise-linear TUF), plot
// correlation with a firm deadline (step TUF), and a mid-course missile
// guidance activity whose utility is quadratic in time (parabolic TUF).
// All of them share track-store queues.  The mission phase shifts from
// cruise (underload) to engagement (overload) — exactly the dynamic,
// overloaded regime the paper targets — and we compare how much mission
// utility lock-free vs lock-based RUA accrues in each phase.
#include <iostream>

#include "sched/rua.hpp"
#include "sim/simulator.hpp"
#include "support/table.hpp"

using namespace lfrt;

namespace {

TaskSet make_tracker(double load_scale) {
  // Base windows chosen so cruise AL ~= 0.45 * load_scale.
  const Time base = static_cast<Time>(static_cast<double>(msec(20)) /
                                      load_scale);
  TaskSet ts;
  ts.object_count = 3;  // track store, sensor queue, display queue

  // Track association: plateau then linear decay (Figure 1(b) shape).
  TaskParams assoc;
  assoc.id = 0;
  assoc.arrival = UamSpec{1, 2, base};
  assoc.tuf = make_piecewise_tuf(
      {{0, 80.0}, {base / 4, 80.0}, {base / 2, 0.0}});
  assoc.exec_time = msec(3);
  assoc.accesses = {{0, msec(1)}, {1, msec(2)}};
  ts.tasks.push_back(std::move(assoc));

  // Plot correlation: firm deadline.
  TaskParams plot;
  plot.id = 1;
  plot.arrival = UamSpec{1, 1, base};
  plot.tuf = make_step_tuf(50.0, base / 2);
  plot.exec_time = msec(2);
  plot.accesses = {{1, usec(500)}};
  ts.tasks.push_back(std::move(plot));

  // Mid-course guidance: parabolic decay.
  TaskParams guidance;
  guidance.id = 2;
  guidance.arrival = UamSpec{1, 1, base};
  guidance.tuf = make_parabolic_tuf(120.0, base * 3 / 4);
  guidance.exec_time = msec(4);
  guidance.accesses = {{0, msec(1)}, {2, msec(3)}};
  ts.tasks.push_back(std::move(guidance));

  // Display refresh: low-value background work.
  TaskParams display;
  display.id = 3;
  display.arrival = UamSpec{1, 1, base};
  display.tuf = make_linear_tuf(10.0, base);
  display.exec_time = msec(2);
  display.accesses = {{2, msec(1)}};
  ts.tasks.push_back(std::move(display));

  ts.validate();
  return ts;
}

}  // namespace

int main() {
  std::cout << "Airborne tracker: cruise (underload) vs engagement "
               "(overload)\n\n";
  Table table({"phase", "AL", "mode", "AUR", "CMR", "aborted"});

  for (const double scale : {1.0, 2.6}) {
    const TaskSet ts = make_tracker(scale);
    for (const auto mode :
         {sim::ShareMode::kLockFree, sim::ShareMode::kLockBased}) {
      const sched::RuaScheduler rua(mode == sim::ShareMode::kLockBased
                                        ? sched::Sharing::kLockBased
                                        : sched::Sharing::kLockFree);
      sim::SimConfig cfg;
      cfg.mode = mode;
      cfg.lockfree_access_time = usec(3);
      cfg.lock_access_time = usec(800);
      cfg.sched_ns_per_op = 5.0;
      cfg.horizon = sec(2);
      sim::Simulator sim(ts, rua, cfg);
      sim.seed_arrivals(7);
      const sim::SimReport rep = sim.run();
      table.add_row({scale < 2.0 ? "cruise" : "engagement",
                     Table::num(ts.approximate_load(), 2),
                     sim::to_string(mode), Table::num(rep.aur(), 3),
                     Table::num(rep.cmr(), 3),
                     std::to_string(rep.aborted)});
    }
  }
  table.print();
  std::cout << "\nDuring engagement the tracker is overloaded; utility-"
               "accrual scheduling sheds the low-value display refreshes "
               "first, and lock-free sharing avoids the lock-induced "
               "blocking that would otherwise cascade into missed "
               "guidance critical times.\n";
  return 0;
}
