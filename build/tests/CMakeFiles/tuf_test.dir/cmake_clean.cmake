file(REMOVE_RECURSE
  "CMakeFiles/tuf_test.dir/tuf_test.cpp.o"
  "CMakeFiles/tuf_test.dir/tuf_test.cpp.o.d"
  "tuf_test"
  "tuf_test.pdb"
  "tuf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
