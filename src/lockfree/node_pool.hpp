// Fixed-capacity lock-free node pool.
//
// Embedded real-time systems avoid dynamic allocation; every lock-free
// structure here draws nodes from a pool sized at construction.  The
// free list is itself a Treiber stack of tagged indices, so allocation
// and release are lock-free and ABA-safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "lockfree/tagged.hpp"
#include "support/check.hpp"

namespace lfrt::lockfree {

/// Lock-free pool of `Node` objects addressed by 32-bit index.
///
/// Node must expose `std::atomic<std::uint64_t> next` (the pool reuses
/// it as the free-list link).
template <typename Node>
class NodePool {
 public:
  explicit NodePool(std::size_t capacity) : nodes_(capacity) {
    LFRT_CHECK_MSG(capacity >= 1, "pool needs at least one node");
    LFRT_CHECK_MSG(capacity < TaggedRef::kNullIndex, "pool too large");
    // Thread all nodes onto the free list.
    for (std::size_t i = 0; i + 1 < capacity; ++i)
      nodes_[i].next.store(
          TaggedRef::make(static_cast<std::uint32_t>(i + 1), 0).bits,
          std::memory_order_relaxed);
    nodes_[capacity - 1].next.store(TaggedRef::null().bits,
                                    std::memory_order_relaxed);
    free_.store(TaggedRef::make(0, 0).bits, std::memory_order_relaxed);
  }

  Node& at(std::uint32_t index) { return nodes_[index]; }
  const Node& at(std::uint32_t index) const { return nodes_[index]; }

  /// Pop a node index off the free list; returns kNullIndex when the
  /// pool is exhausted.  Lock-free (Treiber pop).
  std::uint32_t allocate() {
    TaggedRef head{free_.load(std::memory_order_acquire)};
    while (!head.is_null()) {
      const TaggedRef next{
          nodes_[head.index()].next.load(std::memory_order_acquire)};
      TaggedRef desired = TaggedRef::make(next.index(), head.tag() + 1);
      if (free_.compare_exchange_weak(head.bits,
                                      desired.bits,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire))
        return head.index();
      // head reloaded by compare_exchange on failure.
    }
    return TaggedRef::kNullIndex;
  }

  /// Push a node index back onto the free list (Treiber push).
  void release(std::uint32_t index) {
    // The initial load only seeds the CAS expected value; the acq_rel
    // CAS (acquire reload on failure) provides all needed ordering, so
    // relaxed is sufficient here.
    TaggedRef head{free_.load(std::memory_order_relaxed)};
    for (;;) {
      nodes_[index].next.store(TaggedRef::make(head.index(), 0).bits,
                               std::memory_order_relaxed);
      TaggedRef desired = TaggedRef::make(index, head.tag() + 1);
      if (free_.compare_exchange_weak(head.bits,
                                      desired.bits,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire))
        return;
    }
  }

  std::size_t capacity() const { return nodes_.size(); }

 private:
  std::vector<Node> nodes_;
  std::atomic<std::uint64_t> free_{TaggedRef::null().bits};
};

}  // namespace lfrt::lockfree
