// The lock zoo: ticket, Anderson array, and MCS queue locks.
//
// Three properties per mechanism, exercised with real threads:
//
//   * mutual exclusion — a plain (non-atomic) counter incremented under
//     the lock from several threads ends at exactly threads × rounds;
//     any lost update is a broken critical section (TSan additionally
//     verifies the acquire/release pairing in check.sh stage 2),
//   * FIFO handoff — all three locks are queue locks; enqueue waiters
//     in a known order (rendezvousing on the queued() gauge so arrival
//     order is externally serialized) and assert the grant order
//     matches it,
//   * try_lock semantics — fails while held or queued, succeeds on a
//     free lock, and a try_lock acquire pairs with plain unlock().
//
// Plus the accounting contract the wrappers layer on top: every
// LockedQueue operation through AccountedGuard records exactly one
// acquisition, and contended + uncontended acquisitions conserve.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "lockbased/locked.hpp"
#include "lockbased/locks.hpp"

namespace lfrt::lockbased {
namespace {

template <typename Lock>
class LockZoo : public ::testing::Test {};

using ZooLocks = ::testing::Types<TicketLock, AndersonArrayLock, McsLock>;

class ZooNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if (std::is_same_v<T, TicketLock>) return "Ticket";
    if (std::is_same_v<T, AndersonArrayLock>) return "Anderson";
    return "Mcs";
  }
};

TYPED_TEST_SUITE(LockZoo, ZooLocks, ZooNames);

TYPED_TEST(LockZoo, MutualExclusionHammer) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 20000;
  TypeParam lock;
  std::int64_t counter = 0;  // plain: any race is a lost update
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        lock.lock();
        counter += 1;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kRounds);
  EXPECT_EQ(lock.queued(), 0);
}

TYPED_TEST(LockZoo, FifoHandoffOrder) {
  constexpr int kWaiters = 4;
  TypeParam lock;
  lock.lock();  // hold so every waiter queues behind us

  std::vector<int> order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&lock, &order, i] {
      lock.lock();
      order.push_back(i);  // serialized by the lock itself
      lock.unlock();
    });
    // Rendezvous: wait until waiter i has taken its queue position
    // (holder + i + 1 queued) before launching waiter i + 1, so the
    // enqueue order is exactly the launch order.
    while (lock.queued() < i + 2) std::this_thread::yield();
  }

  lock.unlock();
  for (auto& th : waiters) th.join();

  ASSERT_EQ(order.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i)
        << "grant order diverged from FIFO enqueue order";
}

TYPED_TEST(LockZoo, TryLockSemantics) {
  TypeParam lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_EQ(lock.queued(), 1);
  EXPECT_FALSE(lock.try_lock());  // held -> must fail, not queue
  EXPECT_EQ(lock.queued(), 1);
  lock.unlock();
  EXPECT_EQ(lock.queued(), 0);

  // A try_lock acquire is a full acquire: mutual exclusion holds
  // against blocking lock() from another thread.
  ASSERT_TRUE(lock.try_lock());
  std::atomic<bool> acquired{false};
  std::thread contender([&] {
    lock.lock();
    acquired.store(true);
    lock.unlock();
  });
  while (lock.queued() < 2) std::this_thread::yield();
  EXPECT_FALSE(acquired.load());
  lock.unlock();
  contender.join();
  EXPECT_TRUE(acquired.load());
}

/// Accounting conservation through AccountedGuard: one acquisition per
/// wrapper operation, contended <= acquisitions, and the op count
/// matches the completed operations exactly.
TYPED_TEST(LockZoo, AccountedGuardConservation) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 5000;
  LockedQueue<int, TypeParam> q;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&q, t] {
      for (int i = 0; i < kRounds; ++i) {
        if ((i + t) % 2 == 0)
          q.enqueue(i);
        else
          q.dequeue();
      }
    });
  }
  for (auto& th : threads) th.join();

  const runtime::ObjectCounts c = q.stats().counts();
  const std::int64_t total = static_cast<std::int64_t>(kThreads) * kRounds;
  EXPECT_EQ(c.ops, total);
  EXPECT_EQ(c.acquisitions, total);
  EXPECT_LE(c.contended, c.acquisitions);
  EXPECT_EQ(c.retries, 0);  // lock-based structures never CAS-retry
}

/// std::mutex rides the same wrappers (the pre-zoo aliases); pin the
/// accounting contract there too so the zoo and the baseline stay
/// interchangeable.
TEST(LockedWrappers, MutexAliasKeepsAccounting) {
  LockedQueue<int, std::mutex> q;
  q.enqueue(1);
  q.enqueue(2);
  EXPECT_EQ(q.dequeue().value(), 1);
  const runtime::ObjectCounts c = q.stats().counts();
  EXPECT_EQ(c.ops, 3);
  EXPECT_EQ(c.acquisitions, 3);
}

}  // namespace
}  // namespace lfrt::lockbased
