// Figure 13: AUR/CMR during overload (AL ~= 1.1), heterogeneous TUFs.
#include "aur_cmr_sweep.hpp"

int main(int argc, char** argv) {
  lfrt::bench::init(argc, argv);
  return lfrt::bench::run_aur_cmr_sweep(
      "Figure 13", 1.1, lfrt::workload::TufClass::kHeterogeneous);
}
