// Simulator tests: hand-computed schedules for both sharing modes, the
// abort model, overhead charging, and property sweeps validating the
// paper's bounds against measured behaviour.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "sched/edf.hpp"
#include "sched/rua.hpp"
#include "support/check.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

using sim::ShareMode;
using sim::SimConfig;
using sim::SimReport;
using sim::Simulator;

TaskParams simple_task(TaskId id, Time exec, Time critical,
                       std::vector<AccessSpec> accesses = {},
                       double height = 10.0, Time window = 0,
                       std::int64_t a = 1) {
  TaskParams p;
  p.id = id;
  p.exec_time = exec;
  p.tuf = make_step_tuf(height, critical);
  p.arrival = UamSpec{1, a, window > 0 ? window : critical};
  p.accesses = std::move(accesses);
  return p;
}

const Job& job_of_task(const SimReport& rep, TaskId task,
                       std::size_t nth = 0) {
  std::size_t seen = 0;
  for (const Job& j : rep.jobs)
    if (j.task == task && seen++ == nth) return j;
  LFRT_CHECK_MSG(false, "no such job in report");
  static Job dummy;
  return dummy;
}

TEST(Sim, SingleJobNoAccessesCompletesExactly) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(simple_task(0, usec(10), usec(100)));
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.horizon = usec(200);
  Simulator sim(std::move(ts), rua, cfg);
  sim.set_arrivals(0, {0});
  const SimReport rep = sim.run();
  EXPECT_EQ(rep.counted_jobs, 1);
  EXPECT_EQ(rep.completed, 1);
  EXPECT_EQ(rep.aborted, 0);
  const Job& j = job_of_task(rep, 0);
  EXPECT_EQ(j.completion, usec(10));
  EXPECT_EQ(j.sojourn(), usec(10));
  EXPECT_DOUBLE_EQ(rep.aur(), 1.0);
  EXPECT_DOUBLE_EQ(rep.cmr(), 1.0);
  EXPECT_EQ(j.retries, 0);
  EXPECT_EQ(j.blockings, 0);
}

TEST(Sim, AccessTimeAddsToCompletion) {
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(
      simple_task(0, usec(10), usec(100), {{0, usec(5)}}));
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(3);
  cfg.horizon = usec(200);
  Simulator sim(std::move(ts), rua, cfg);
  sim.set_arrivals(0, {0});
  const SimReport rep = sim.run();
  EXPECT_EQ(job_of_task(rep, 0).completion, usec(13));
}

TEST(Sim, IdealModeAccessesAreFree) {
  TaskSet ts;
  ts.object_count = 2;
  ts.tasks.push_back(simple_task(
      0, usec(10), usec(100), {{0, usec(2)}, {1, usec(2)}, {0, usec(9)}}));
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.horizon = usec(200);
  Simulator sim(std::move(ts), rua, cfg);
  sim.set_arrivals(0, {0});
  const SimReport rep = sim.run();
  EXPECT_EQ(job_of_task(rep, 0).completion, usec(10));
}

TEST(Sim, SchedulerOverheadDelaysCompletion) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(simple_task(0, usec(10), msec(1)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kIdeal;
  cfg.sched_ns_per_op = 100.0;
  cfg.horizon = msec(2);
  Simulator sim(std::move(ts), edf, cfg);
  sim.set_arrivals(0, {0});
  const SimReport rep = sim.run();
  EXPECT_GT(rep.sched_overhead, 0);
  // One job: scheduler runs at arrival; completion = overhead + u.
  EXPECT_EQ(job_of_task(rep, 0).completion, rep.sched_overhead + usec(10));
}

TEST(Sim, ExpiredJobIsAbortedWithZeroUtility) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(simple_task(0, usec(100), usec(50)));  // hopeless
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.horizon = usec(500);
  Simulator sim(std::move(ts), rua, cfg);
  sim.set_arrivals(0, {0});
  const SimReport rep = sim.run();
  EXPECT_EQ(rep.aborted, 1);
  EXPECT_EQ(rep.completed, 0);
  EXPECT_DOUBLE_EQ(rep.aur(), 0.0);
  EXPECT_DOUBLE_EQ(rep.cmr(), 0.0);
  EXPECT_EQ(job_of_task(rep, 0).state, JobState::kAborted);
}

TEST(Sim, CompletionExactlyAtCriticalTimeCounts) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(simple_task(0, usec(50), usec(50)));
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.horizon = usec(500);
  Simulator sim(std::move(ts), rua, cfg);
  sim.set_arrivals(0, {0});
  const SimReport rep = sim.run();
  EXPECT_EQ(rep.completed, 1);
  EXPECT_EQ(job_of_task(rep, 0).completion, usec(50));
}

TEST(Sim, AbortHandlerRunsBeforeRelease) {
  // Job holds a lock when its critical time expires; the abort handler
  // executes (10us) and only then is the lock available to the waiter.
  TaskSet ts;
  ts.object_count = 1;
  auto t0 = simple_task(0, usec(100), usec(20), {{0, usec(5)}});
  t0.abort_handler_time = usec(10);
  ts.tasks.push_back(std::move(t0));
  // Second task arrives later, wants the same object, generous deadline.
  ts.tasks.push_back(
      simple_task(1, usec(10), usec(500), {{0, usec(1)}}, 10.0, usec(500)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(50);
  cfg.horizon = msec(1);
  Simulator sim(std::move(ts), edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(6)});
  const SimReport rep = sim.run();
  // T0: computes 5us, acquires at 5us, holds (access needs 50us) but C=20.
  // T1 arrives at 6us (C=506 > 20): EDF keeps T0 running; T1 waits.
  // At t=20 T0 expires -> handler runs 20..30 -> lock released at 30.
  const Job& j0 = job_of_task(rep, 0);
  EXPECT_EQ(j0.state, JobState::kAborted);
  const Job& j1 = job_of_task(rep, 1);
  EXPECT_EQ(j1.state, JobState::kCompleted);
  // T1: runs from 30, 1us compute, blocked?  The lock is free by then:
  // 30 + 1 + 50 + 9 = 90us completion, arrival 6 -> sojourn 84us.
  EXPECT_EQ(j1.completion, usec(90));
}

TEST(Sim, LockBasedBlockingHandComputed) {
  // The worked scenario from the test plan: T0 (C=200us) arrives at 0,
  // T1 (C=100us) at 8us, both u=10us with one access at offset 5us to
  // the same object, r=10us, EDF dispatching.
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(simple_task(0, usec(10), usec(200), {{0, usec(5)}}));
  ts.tasks.push_back(simple_task(1, usec(10), usec(100), {{0, usec(5)}}));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(10);
  cfg.horizon = msec(1);
  Simulator sim(std::move(ts), edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(8)});
  const SimReport rep = sim.run();

  const Job& j0 = job_of_task(rep, 0);
  const Job& j1 = job_of_task(rep, 1);
  // T1 blocks once at 13us (T0 holds), T0 finishes access at 20us,
  // T1 then accesses 20-30, computes to 35; T0 completes at 40.
  EXPECT_EQ(j1.blockings, 1);
  EXPECT_EQ(j0.blockings, 0);
  EXPECT_EQ(j1.completion, usec(35));
  EXPECT_EQ(j0.completion, usec(40));
  EXPECT_EQ(rep.total_blockings, 1);
  EXPECT_EQ(rep.completed, 2);
  EXPECT_DOUBLE_EQ(rep.cmr(), 1.0);
}

TEST(Sim, LockFreeRetryHandComputed) {
  // Same arrival pattern under lock-free sharing, s=10us: T0 is
  // preempted mid-access by T1 and must retry the whole access.
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(simple_task(0, usec(10), usec(200), {{0, usec(5)}}));
  ts.tasks.push_back(simple_task(1, usec(10), usec(100), {{0, usec(5)}}));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(10);
  cfg.horizon = msec(1);
  Simulator sim(std::move(ts), edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(8)});
  const SimReport rep = sim.run();

  const Job& j0 = job_of_task(rep, 0);
  const Job& j1 = job_of_task(rep, 1);
  // T1 runs 8..28 uninterrupted (compute 5, access 10, compute 5); its
  // access to the shared object completes (CAS succeeds) at 23.
  EXPECT_EQ(j1.completion, usec(28));
  EXPECT_EQ(j1.retries, 0);
  // T0's attempt began at 5 (3us done before the preemption); it
  // resumes at 28, its CAS executes at the end of the attempt (35) and
  // fails against T1's 23us completion, so the whole attempt is wasted:
  // retry 35..45, compute 45..50.
  EXPECT_EQ(j0.retries, 1);
  EXPECT_EQ(j0.completion, usec(50));
  EXPECT_EQ(rep.total_retries, 1);
  EXPECT_EQ(rep.total_blockings, 0);
}

TEST(Sim, NoRetryWithoutInterferenceMidAccess) {
  // A preemption while *not* in an access causes no retry.
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(simple_task(0, usec(20), usec(200), {{0, usec(15)}}));
  ts.tasks.push_back(simple_task(1, usec(5), usec(50)));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(10);
  cfg.horizon = msec(1);
  Simulator sim(std::move(ts), edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(5)});  // preempts T0 during pure compute
  const SimReport rep = sim.run();
  EXPECT_EQ(job_of_task(rep, 0).retries, 0);
  EXPECT_EQ(job_of_task(rep, 0).preemptions, 1);
  EXPECT_EQ(rep.total_retries, 0);
}

TEST(Sim, LockHeldAcrossPreemptionNoRetryLockBased) {
  // Lock-based never retries: the preempted holder resumes its critical
  // section where it left off.
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(simple_task(0, usec(10), usec(200), {{0, usec(5)}}));
  ts.tasks.push_back(simple_task(1, usec(5), usec(50)));  // no accesses
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(10);
  cfg.horizon = msec(1);
  Simulator sim(std::move(ts), edf, cfg);
  sim.set_arrivals(0, {0});
  sim.set_arrivals(1, {usec(8)});  // preempts mid-critical-section
  const SimReport rep = sim.run();
  const Job& j0 = job_of_task(rep, 0);
  EXPECT_EQ(j0.retries, 0);
  EXPECT_EQ(j0.preemptions, 1);
  // T1 runs 8..13; T0's access had covered 5..8, resumes 13..20, then
  // compute 20..25.
  EXPECT_EQ(j0.completion, usec(25));
  EXPECT_EQ(job_of_task(rep, 1).completion, usec(13));
}

TEST(Sim, RejectsNonConformantArrivalTrace) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(simple_task(0, usec(10), usec(100)));  // a=1, W=100us
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.horizon = msec(1);
  Simulator sim(std::move(ts), rua, cfg);
  sim.set_arrivals(0, {0, usec(10)});  // two arrivals inside one window
  EXPECT_THROW(sim.run(), InvariantViolation);
}

TEST(Sim, SimulatorIsSingleShot) {
  TaskSet ts;
  ts.object_count = 0;
  ts.tasks.push_back(simple_task(0, usec(10), usec(100)));
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.horizon = msec(1);
  Simulator sim(std::move(ts), rua, cfg);
  sim.set_arrivals(0, {0});
  (void)sim.run();
  EXPECT_THROW(sim.run(), InvariantViolation);
}

TEST(Sim, TraceRecordsLifecycle) {
  TaskSet ts;
  ts.object_count = 1;
  ts.tasks.push_back(simple_task(0, usec(10), usec(100), {{0, usec(5)}}));
  const sched::EdfScheduler edf;
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.record_trace = true;
  cfg.horizon = msec(1);
  Simulator sim(std::move(ts), edf, cfg);
  sim.set_arrivals(0, {0});
  const SimReport rep = sim.run();
  ASSERT_FALSE(rep.trace.empty());
  bool saw_arrival = false, saw_lock = false, saw_completion = false;
  for (const auto& line : rep.trace) {
    if (line.find("arrival") != std::string::npos) saw_arrival = true;
    if (line.find("lock acquired") != std::string::npos) saw_lock = true;
    if (line.find("completion") != std::string::npos) saw_completion = true;
  }
  EXPECT_TRUE(saw_arrival);
  EXPECT_TRUE(saw_lock);
  EXPECT_TRUE(saw_completion);
}

TEST(Sim, DeterministicAcrossRuns) {
  auto run_once = [] {
    workload::WorkloadSpec spec;
    spec.task_count = 6;
    spec.object_count = 4;
    spec.load = 0.8;
    spec.seed = 77;
    const sched::RuaScheduler rua(sched::Sharing::kLockFree);
    SimConfig cfg;
    cfg.mode = ShareMode::kLockFree;
    cfg.lockfree_access_time = usec(2);
    cfg.horizon = msec(20);
    Simulator sim(workload::make_task_set(spec), rua, cfg);
    sim.seed_arrivals(5);
    return sim.run();
  };
  const SimReport a = run_once();
  const SimReport b = run_once();
  EXPECT_EQ(a.counted_jobs, b.counted_jobs);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_DOUBLE_EQ(a.accrued_utility, b.accrued_utility);
}

TEST(Sim, RuaEqualsEdfUnderloadStepNoSharing) {
  // Paper, Section 1/3.4: with step TUFs, no sharing, underload, RUA
  // defaults to EDF — identical completions.
  workload::WorkloadSpec spec;
  spec.task_count = 5;
  spec.object_count = 1;
  spec.accesses_per_job = 0;
  spec.load = 0.5;
  spec.seed = 3;
  auto run_with = [&](const sched::Scheduler& s) {
    SimConfig cfg;
    cfg.mode = ShareMode::kIdeal;
    cfg.horizon = msec(50);
    Simulator sim(workload::make_task_set(spec), s, cfg);
    sim.seed_arrivals(11);
    return sim.run();
  };
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  const sched::EdfScheduler edf;
  const SimReport a = run_with(rua);
  const SimReport b = run_with(edf);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_DOUBLE_EQ(a.cmr(), 1.0);
  EXPECT_DOUBLE_EQ(b.cmr(), 1.0);
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_EQ(a.jobs[i].completion, b.jobs[i].completion)
        << "job " << a.jobs[i].id;
}

// ---------------------------------------------------------------------
// Property sweeps: the paper's bounds hold on randomized workloads.
// ---------------------------------------------------------------------

struct PropertyParams {
  int tasks;
  int objects;
  int accesses;
  double load;
  std::uint64_t seed;
};

class SimPropertyTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(SimPropertyTest, RetriesNeverExceedTheorem2Bound) {
  const auto p = GetParam();
  workload::WorkloadSpec spec;
  spec.task_count = p.tasks;
  spec.object_count = p.objects;
  spec.accesses_per_job = p.accesses;
  spec.load = p.load;
  spec.seed = p.seed;
  spec.max_per_window = 1 + static_cast<std::int32_t>(p.seed % 2);
  const TaskSet ts = workload::make_task_set(spec);

  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockFree;
  cfg.lockfree_access_time = usec(2);
  cfg.horizon = msec(50);
  Simulator sim(ts, rua, cfg);
  sim.seed_arrivals(p.seed * 31 + 7);
  const SimReport rep = sim.run();

  for (const Job& j : rep.jobs) {
    EXPECT_LE(j.retries, analysis::retry_bound(ts, j.task))
        << "task " << j.task << " job " << j.id;
    EXPECT_EQ(j.blockings, 0);
  }
}

TEST_P(SimPropertyTest, BlockingsNeverExceedMinOfAccessesAndJobs) {
  const auto p = GetParam();
  workload::WorkloadSpec spec;
  spec.task_count = p.tasks;
  spec.object_count = p.objects;
  spec.accesses_per_job = p.accesses;
  spec.load = p.load;
  spec.seed = p.seed;
  const TaskSet ts = workload::make_task_set(spec);

  const sched::RuaScheduler rua(sched::Sharing::kLockBased);
  SimConfig cfg;
  cfg.mode = ShareMode::kLockBased;
  cfg.lock_access_time = usec(4);
  cfg.horizon = msec(50);
  Simulator sim(ts, rua, cfg);
  sim.seed_arrivals(p.seed * 17 + 3);
  const SimReport rep = sim.run();

  for (const Job& j : rep.jobs) {
    const auto& tp = ts.by_id(j.task);
    const auto n_bound = analysis::max_blocking_jobs(ts, j.task);
    EXPECT_LE(j.blockings,
              std::min<std::int64_t>(tp.access_count(), n_bound))
        << "task " << j.task << " job " << j.id;
    EXPECT_EQ(j.retries, 0);
  }
}

TEST_P(SimPropertyTest, ReportInvariants) {
  const auto p = GetParam();
  workload::WorkloadSpec spec;
  spec.task_count = p.tasks;
  spec.object_count = p.objects;
  spec.accesses_per_job = p.accesses;
  spec.load = p.load;
  spec.seed = p.seed;
  const TaskSet ts = workload::make_task_set(spec);

  for (const ShareMode mode :
       {ShareMode::kLockFree, ShareMode::kLockBased, ShareMode::kIdeal}) {
    const sched::RuaScheduler rua(mode == ShareMode::kLockBased
                                      ? sched::Sharing::kLockBased
                                      : sched::Sharing::kLockFree);
    SimConfig cfg;
    cfg.mode = mode;
    cfg.lock_access_time = usec(4);
    cfg.lockfree_access_time = usec(1);
    cfg.horizon = msec(30);
    Simulator sim(ts, rua, cfg);
    sim.seed_arrivals(p.seed);
    const SimReport rep = sim.run();

    EXPECT_EQ(rep.completed + rep.aborted, rep.counted_jobs);
    EXPECT_LE(rep.accrued_utility, rep.max_possible_utility + 1e-9);
    EXPECT_GE(rep.aur(), 0.0);
    EXPECT_LE(rep.aur(), 1.0 + 1e-12);
    EXPECT_GE(rep.cmr(), 0.0);
    EXPECT_LE(rep.cmr(), 1.0);
    for (const Job& j : rep.jobs) {
      if (j.state == JobState::kCompleted) {
        EXPECT_LE(j.completion, j.critical_abs);
        EXPECT_GE(j.sojourn(), ts.by_id(j.task).exec_time);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimPropertyTest,
    ::testing::Values(PropertyParams{3, 2, 1, 0.4, 1},
                      PropertyParams{5, 3, 2, 0.8, 2},
                      PropertyParams{8, 4, 2, 1.1, 3},
                      PropertyParams{10, 10, 3, 0.4, 4},
                      PropertyParams{10, 10, 3, 1.2, 5},
                      PropertyParams{6, 2, 4, 1.0, 6},
                      PropertyParams{4, 1, 2, 0.6, 7},
                      PropertyParams{12, 6, 1, 0.9, 8}));

}  // namespace
}  // namespace lfrt
