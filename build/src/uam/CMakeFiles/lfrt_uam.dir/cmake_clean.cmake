file(REMOVE_RECURSE
  "CMakeFiles/lfrt_uam.dir/uam.cpp.o"
  "CMakeFiles/lfrt_uam.dir/uam.cpp.o.d"
  "liblfrt_uam.a"
  "liblfrt_uam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfrt_uam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
