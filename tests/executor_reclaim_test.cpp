// Regression: Executor memory is bounded by peak backlog, not job
// count.
//
// The pre-service executor kept every JobRec (and a per-job worker
// thread handle) in its jobs map until shutdown — a 100k-job run held
// 100k records live at once.  Records are now recycled through a free
// list at finalize, so the slab high-water mark tracks the largest
// number of jobs simultaneously in flight.  This pushes 100k jobs
// through in bounded-size waves and pins both gauges.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rt/executor.hpp"
#include "sched/rua.hpp"

namespace lfrt {
namespace {

TEST(ExecutorReclaim, LiveRecordsBoundedOverHundredThousandJobs) {
  constexpr std::int64_t kTotalJobs = 100'000;
  constexpr std::size_t kWave = 500;  // in-flight ceiling we enforce

  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  rt::ExecutorConfig cfg;
  cfg.cpu_count = 4;
  cfg.retain_job_records = false;  // service shape: aggregates only
  rt::Executor ex(rua, cfg);

  const auto tuf = std::shared_ptr<const Tuf>(make_step_tuf(1.0, sec(5)));
  std::vector<rt::RtJob> wave(kWave);
  std::int64_t submitted = 0;
  while (submitted < kTotalJobs) {
    for (auto& j : wave) {
      j = rt::RtJob{};
      j.tuf = tuf;
      j.expected_exec = usec(1);
      j.body = [](rt::JobContext&) {};  // complete at first opportunity
    }
    ASSERT_EQ(ex.submit_batch(wave.data(), wave.size()), kWave);
    submitted += static_cast<std::int64_t>(kWave);
    ex.drain();  // wave fully terminal before the next one
  }

  const rt::ExecutorReport rep = ex.shutdown();
  EXPECT_EQ(rep.submitted, kTotalJobs);
  EXPECT_EQ(rep.counted_jobs, rep.submitted + rep.rejected);
  EXPECT_EQ(rep.completed + rep.aborted, rep.submitted);

  // The memory-growth regression proper: in-flight records never
  // exceeded one wave, and the slab (the records that exist at all)
  // matched the peak instead of accumulating 100k entries.
  EXPECT_LE(rep.peak_live_records, static_cast<std::int64_t>(kWave));
  EXPECT_LE(rep.record_slab_size, rep.peak_live_records);
  EXPECT_LT(rep.record_slab_size, kTotalJobs / 20);  // 100k-retention gone
  EXPECT_TRUE(rep.jobs.empty());  // retain_job_records=false kept it flat

  // Pooled workers: thread count tracked the wave's parallelism, not
  // the job count (the old model started 100k threads here).
  EXPECT_LT(rep.worker_pool_peak, static_cast<std::int64_t>(kWave));
  EXPECT_GT(rep.completed, 0);
}

}  // namespace
}  // namespace lfrt
