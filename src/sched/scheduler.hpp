// Scheduler interface shared by RUA (lock-based and lock-free) and the
// EDF baseline.
//
// A scheduler is invoked at *scheduling events* (job arrivals and
// departures; plus lock and unlock requests under lock-based sharing —
// paper, Section 3).  It sees an immutable projection of every pending
// job, constructs a schedule, and nominates the job to dispatch.
//
// Every elementary operation performed during schedule construction is
// counted; the simulator charges `ops * ns_per_op` of CPU time to the
// scheduler, which is how the O(n^2 log n) vs O(n^2) asymptotic gap of
// Sections 3.6/5 manifests in the CML experiment (Figure 9).
#pragma once

#include <string>
#include <vector>

#include "task/task.hpp"

namespace lfrt::sched {

/// Immutable projection of one pending job, rebuilt at each scheduling
/// event (dependencies and remaining-time estimates change dynamically —
/// paper, Section 3.4).
struct SchedJob {
  JobId id = kNoJob;
  Time arrival = 0;
  Time critical = 0;   ///< absolute critical time
  Time remaining = 0;  ///< remaining execution estimate incl. access time
  const Tuf* tuf = nullptr;

  /// Job currently holding the object this job has requested (kNoJob if
  /// not blocked).  Always kNoJob under lock-free sharing.
  JobId waits_on = kNoJob;

  bool runnable() const { return waits_on == kNoJob; }
};

/// Outcome of one scheduler invocation.
struct ScheduleResult {
  /// Accepted jobs in execution order (ECF with dependencies respected).
  std::vector<JobId> schedule;

  /// The job to run now: the first runnable job in `schedule`; kNoJob if
  /// every accepted job is blocked or the schedule is empty.
  JobId dispatch = kNoJob;

  /// Jobs examined but excluded because including them (with their
  /// dependents) made the tentative schedule infeasible.
  std::vector<JobId> rejected;

  /// Jobs selected for abortion to break dependency cycles (only when
  /// deadlock detection is enabled and a cycle exists).
  std::vector<JobId> deadlock_victims;

  /// Elementary operations performed (the overhead model's input).
  std::int64_t ops = 0;
};

/// Abstract scheduling policy.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Construct a schedule over `jobs` at time `now`.
  virtual ScheduleResult build(const std::vector<SchedJob>& jobs,
                               Time now) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace lfrt::sched
