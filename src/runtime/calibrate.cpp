#include "runtime/calibrate.hpp"

#include <algorithm>
#include <cmath>

namespace lfrt::runtime {

AccessCalibration calibrate_access_times(const rt::AccessTimeConfig& mcfg) {
  const rt::AccessTimeResult lf = rt::measure_lockfree_access(mcfg);
  const rt::AccessTimeResult lb = rt::measure_lockbased_access(mcfg);
  AccessCalibration cal;
  cal.lockfree_access_time = std::max<Time>(
      1, static_cast<Time>(std::llround(lf.per_access_ns.mean())));
  cal.lock_access_time = std::max<Time>(
      1, static_cast<Time>(std::llround(lb.per_access_ns.mean())));
  cal.samples = mcfg.samples;
  return cal;
}

AccessCalibration calibrate(ExecConfig& cfg, const TaskSet& ts,
                            std::int64_t samples) {
  rt::AccessTimeConfig mcfg;
  mcfg.object_count = std::max<std::int32_t>(1, ts.object_count);
  mcfg.task_count =
      std::max<std::int32_t>(1, static_cast<std::int32_t>(ts.tasks.size()));
  mcfg.samples = samples;
  const AccessCalibration cal = calibrate_access_times(mcfg);
  cfg.sim_lockfree_access_time = cal.lockfree_access_time;
  cfg.sim_lock_access_time = cal.lock_access_time;
  return cal;
}

}  // namespace lfrt::runtime
