# Empty compiler generated dependencies file for mutual_preemption.
# This may be replaced when dependencies are built.
