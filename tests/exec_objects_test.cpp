// Read/write object flavours through the executor adapter.
//
// fig14-style reader/writer workloads (read_fraction = 0.75, one
// writer task per object) lowered onto NbwBuffer and AtomicSnapshot
// objects via runtime::run_on_executor, at cpu_count 1 and 2.  The
// property under test is the retry-attribution invariant of the
// unified SharedObject layer: the per-job tallies, the run totals, and
// the per-(object, task) contention heatmap all count the same
// record_retry / record_acquisition events, so their sums must be
// *equal*, not merely close — under real threads, not the simulator.
#include <gtest/gtest.h>

#include <cstdint>

#include "runtime/exec_adapter.hpp"
#include "sched/rua.hpp"
#include "support/check.hpp"
#include "workload/workload.hpp"

namespace lfrt {
namespace {

workload::WorkloadSpec reader_writer_spec() {
  workload::WorkloadSpec spec;
  spec.task_count = 6;
  spec.object_count = 3;
  spec.accesses_per_job = 4;
  spec.avg_exec = msec(1);
  spec.load = 0.6;
  spec.read_fraction = 0.75;       // fig14's reader-heavy mix
  spec.single_writer_objects = true;  // NBW/snapshot intended usage
  spec.tuf_class = workload::TufClass::kStep;
  spec.seed = 17;
  return spec;
}

/// Σ per-job retries == report total == Σ heatmap cells (and the same
/// for blockings): every event the structures recorded was attributed
/// both to its job and to its (object, task) cell.
void check_attribution(const rt::ExecutorReport& rep, const TaskSet& ts) {
  ASSERT_EQ(rep.contention.objects, ts.object_count);
  ASSERT_EQ(rep.contention.tasks,
            static_cast<std::int32_t>(ts.tasks.size()));
  ASSERT_FALSE(rep.contention.empty());

  std::int64_t job_retries = 0, job_blockings = 0;
  for (const Job& j : rep.jobs) {
    job_retries += j.retries;
    job_blockings += j.blockings;
  }
  EXPECT_EQ(job_retries, rep.total_retries);
  EXPECT_EQ(job_blockings, rep.total_blockings);

  const runtime::ContentionCell cells = rep.contention.totals();
  EXPECT_EQ(cells.retries, rep.total_retries);
  EXPECT_EQ(cells.blockings, rep.total_blockings);
  // Every completed access landed in a cell; jobs that ran at all did
  // accesses, so a run with completed jobs has a non-trivial heatmap.
  if (rep.completed > 0) {
    EXPECT_GT(cells.ops, 0);
  }
}

rt::ExecutorReport run(const TaskSet& ts, runtime::ObjectKind kind,
                       runtime::ObjectImpl impl, int cpus) {
  const sched::RuaScheduler rua(impl == runtime::ObjectImpl::kLockFree
                                    ? sched::Sharing::kLockFree
                                    : sched::Sharing::kLockBased);
  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);

  runtime::ExecConfig ec;
  ec.horizon = max_window * 2;
  ec.objects = runtime::uniform_objects(ts.object_count, kind, impl);
  ec.cpu_count = cpus;
  ec.arrival_seed = 99;
  return runtime::run_on_executor(ts, rua, ec);
}

class ExecObjects
    : public ::testing::TestWithParam<std::tuple<runtime::ObjectKind, int>> {
};

TEST_P(ExecObjects, LockFreeRetryAttributionInvariant) {
  const auto [kind, cpus] = GetParam();
  const TaskSet ts = workload::make_task_set(reader_writer_spec());
  const rt::ExecutorReport rep =
      run(ts, kind, runtime::ObjectImpl::kLockFree, cpus);
  ASSERT_GT(rep.counted_jobs, 0);
  EXPECT_EQ(rep.cpu_count, cpus);
  check_attribution(rep, ts);
  // Lock-free objects never take the blocking path.
  EXPECT_EQ(rep.total_blockings, 0);
}

INSTANTIATE_TEST_SUITE_P(
    ReaderWriterKinds, ExecObjects,
    ::testing::Combine(::testing::Values(runtime::ObjectKind::kBuffer,
                                         runtime::ObjectKind::kSnapshot),
                       ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(runtime::to_string(std::get<0>(info.param))) +
             "_cpus" + std::to_string(std::get<1>(info.param));
    });

/// The same invariant holds for blocking episodes under a lock-based
/// universe (mutex-guarded buffer), where retries must stay zero.
TEST(ExecObjectsLockBased, BlockingAttributionInvariant) {
  const TaskSet ts = workload::make_task_set(reader_writer_spec());
  const rt::ExecutorReport rep =
      run(ts, runtime::ObjectKind::kBuffer, runtime::ObjectImpl::kLockBased,
          /*cpus=*/2);
  ASSERT_GT(rep.counted_jobs, 0);
  check_attribution(rep, ts);
  EXPECT_EQ(rep.total_retries, 0);
}

/// A mixed universe — one object per kind — lowers and runs end to end,
/// and the heatmap still reconciles.
TEST(ExecObjectsMixed, HeterogeneousUniverseRuns) {
  workload::WorkloadSpec spec = reader_writer_spec();
  spec.object_count = 4;
  const TaskSet ts = workload::make_task_set(spec);

  runtime::ExecConfig ec;
  Time max_window = 0;
  for (const auto& t : ts.tasks)
    max_window = std::max(max_window, t.arrival.window);
  ec.horizon = max_window * 2;
  ec.objects = {{runtime::ObjectKind::kQueue, runtime::ObjectImpl::kLockFree},
                {runtime::ObjectKind::kStack, runtime::ObjectImpl::kLockBased},
                {runtime::ObjectKind::kBuffer, runtime::ObjectImpl::kLockFree},
                {runtime::ObjectKind::kSnapshot,
                 runtime::ObjectImpl::kLockBased}};
  ec.cpu_count = 2;
  ec.arrival_seed = 99;
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  const rt::ExecutorReport rep = runtime::run_on_executor(ts, rua, ec);
  ASSERT_GT(rep.counted_jobs, 0);
  check_attribution(rep, ts);
}

/// A spec list whose size contradicts the task set's object count is a
/// configuration bug and trips the invariant check.
TEST(ExecObjectsMixed, WrongSpecCountThrows) {
  const TaskSet ts = workload::make_task_set(reader_writer_spec());
  runtime::ExecConfig ec;
  ec.objects = runtime::uniform_objects(ts.object_count + 1,
                                        runtime::ObjectKind::kQueue,
                                        runtime::ObjectImpl::kLockFree);
  const sched::RuaScheduler rua(sched::Sharing::kLockFree);
  EXPECT_THROW(runtime::run_on_executor(ts, rua, ec), InvariantViolation);
}

}  // namespace
}  // namespace lfrt
