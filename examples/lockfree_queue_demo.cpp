// Real-thread demonstration of the lock-free substrate: a Michael &
// Scott queue and a Treiber stack shared by producer/consumer threads
// pinned to one CPU (the paper's uniprocessor model), with CAS-retry
// statistics, next to a wait-free SPSC ring for contrast.
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "lockfree/msqueue.hpp"
#include "lockfree/spsc_ring.hpp"
#include "lockfree/treiber_stack.hpp"
#include "rt/priority.hpp"

using namespace lfrt;

int main() {
  constexpr int kItems = 100000;

  // --- MS queue: 2 producers, 2 consumers ---
  lockfree::MsQueue<int> queue(4096);
  std::atomic<std::int64_t> consumed{0};
  std::atomic<bool> done{false};
  {
    std::vector<std::thread> threads;
    for (int p = 0; p < 2; ++p) {
      threads.emplace_back([&queue, p] {
        rt::pin_to_cpu(0);
        for (int i = 0; i < kItems; ++i)
          while (!queue.enqueue(p * kItems + i)) std::this_thread::yield();
      });
    }
    for (int c = 0; c < 2; ++c) {
      threads.emplace_back([&queue, &consumed, &done] {
        rt::pin_to_cpu(0);
        for (;;) {
          if (queue.dequeue()) {
            consumed.fetch_add(1, std::memory_order_relaxed);
          } else if (done.load()) {
            break;
          } else {
            std::this_thread::yield();
          }
        }
      });
    }
    threads[0].join();
    threads[1].join();
    done.store(true);
    threads[2].join();
    threads[3].join();
  }
  std::cout << "MS queue:      delivered " << consumed.load() << "/"
            << 2 * kItems
            << " items, CAS retries: " << queue.stats().retry_count()
            << " over " << queue.stats().op_count() << " ops\n";

  // --- Treiber stack: mixed push/pop from 3 threads ---
  lockfree::TreiberStack<int> stack(1024);
  std::atomic<std::int64_t> popped{0};
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&stack, &popped] {
        rt::pin_to_cpu(0);
        for (int i = 0; i < kItems / 2; ++i) {
          while (!stack.push(i)) std::this_thread::yield();
          if (stack.pop()) popped.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  while (stack.pop()) popped.fetch_add(1);
  std::cout << "Treiber stack: popped " << popped.load() << "/"
            << 3 * (kItems / 2) << " items, CAS retries: "
            << stack.stats().retry_count() << "\n";

  // --- Wait-free SPSC ring: zero retries by construction ---
  lockfree::SpscRing<int> ring(256);
  std::int64_t ring_received = 0;
  {
    std::thread producer([&ring] {
      rt::pin_to_cpu(0);
      for (int i = 0; i < kItems; ++i)
        while (!ring.push(i)) std::this_thread::yield();
    });
    while (ring_received < kItems)
      if (ring.pop())
        ++ring_received;
      else
        std::this_thread::yield();
    producer.join();
  }
  std::cout << "SPSC ring:     received " << ring_received << "/" << kItems
            << " items, retries: 0 (wait-free by construction)\n\n";

  std::cout << "Lock-free structures guarantee system-wide progress but "
               "individual operations retry under contention — the cost "
               "Theorem 2 bounds.  The wait-free ring never retries but "
               "is restricted to one producer and one consumer, the "
               "a-priori knowledge the paper notes wait-free schemes "
               "need.\n";
  return 0;
}
