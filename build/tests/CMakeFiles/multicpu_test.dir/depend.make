# Empty dependencies file for multicpu_test.
# This may be replaced when dependencies are built.
