// Ablation: dependency-chain pressure under lock-based RUA vs the
// dependency-free lock-free RUA, measured in the simulator — scheduler
// invocations, counted operations per invocation, and total charged
// overhead, as contention (accesses per job over few objects) grows.
//
// This quantifies the paper's central mechanism claim: lock-free
// synchronization improves RUA by eliminating dependency-chain
// computation and the lock/unlock scheduling events.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace lfrt;
  bench::init(argc, argv);
  bench::print_header("Ablation", "dependency-chain cost, lock-based vs "
                                  "lock-free RUA");
  std::cout << "tasks=8  objects=2  AL=1.0  r=" << to_usec(bench::kDefaultR)
            << "us  s=" << to_usec(bench::kDefaultS) << "us\n\n";

  Table table({"accesses/job", "mode", "sched invocations", "ops/invocation",
               "overhead (us)", "blk or rty /job"});

  const std::vector<int> access_counts = {1, 2, 4, 8};
  const sim::ShareMode modes[] = {sim::ShareMode::kLockBased,
                                  sim::ShareMode::kLockFree};

  std::vector<TaskSet> task_sets;
  for (const int m : access_counts) {
    workload::WorkloadSpec spec;
    spec.task_count = 8;
    spec.object_count = 2;  // few objects -> heavy contention
    spec.accesses_per_job = m;
    spec.avg_exec = usec(400);
    spec.load = 1.0;
    spec.seed = 5;
    task_sets.push_back(workload::make_task_set(spec));
  }

  // One cell per (m, mode) pair, fanned out over the bench pool.
  const auto cells = static_cast<std::int64_t>(access_counts.size()) * 2;
  const auto reports =
      exp::parallel_map(bench::pool(), cells, [&](std::int64_t cell) {
        const TaskSet& ts = task_sets[static_cast<std::size_t>(cell / 2)];
        const sim::ShareMode mode = modes[cell % 2];
        sim::SimConfig cfg;
        cfg.mode = mode;
        cfg.lock_access_time = bench::kDefaultR;
        cfg.lockfree_access_time = bench::kDefaultS;
        cfg.sched_ns_per_op = bench::kDefaultNsPerOp;
        Time max_window = 0;
        for (const auto& t : ts.tasks)
          max_window = std::max(max_window, t.arrival.window);
        cfg.horizon = max_window * 120;
        sim::Simulator s(ts, bench::scheduler_for(mode), cfg);
        s.seed_arrivals(77);
        return s.run();
      });

  std::size_t at = 0;
  for (const int m : access_counts) {
    for (const sim::ShareMode mode : modes) {
      const sim::SimReport& rep = reports[at++];
      const double per_inv =
          rep.sched_invocations
              ? static_cast<double>(rep.sched_ops) /
                    static_cast<double>(rep.sched_invocations)
              : 0.0;
      const double per_job =
          rep.counted_jobs
              ? static_cast<double>(mode == sim::ShareMode::kLockBased
                                        ? rep.total_blockings
                                        : rep.total_retries) /
                    static_cast<double>(rep.counted_jobs)
              : 0.0;
      table.add_row({std::to_string(m), sim::to_string(mode),
                     std::to_string(rep.sched_invocations),
                     Table::num(per_inv, 1),
                     Table::num(to_usec(rep.sched_overhead), 1),
                     Table::num(per_job, 2)});
    }
  }
  table.print();
  std::cout << "\nExpected shape: lock-based invocation count grows with m "
               "(every lock and unlock request is a scheduling event) and "
               "its ops/invocation exceed lock-free's (dependency chains); "
               "lock-free invocations stay at ~2 per job.\n";
  return 0;
}
