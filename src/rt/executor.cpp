#include "rt/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/latency_histogram.hpp"
#include "runtime/object_stats.hpp"
#include "runtime/timer_wheel.hpp"
#include "sched/dispatch.hpp"
#include "sched/scheduler.hpp"
#include "support/check.hpp"

namespace lfrt::rt {
namespace {

using Clock = std::chrono::steady_clock;

enum class RtState : std::uint8_t {
  kReady,      // admitted, waiting for its first dispatch
  kRunning,    // dispatched to a CPU slot (its worker owns that CPU)
  kPreempted,  // parked inside checkpoint()
  kAborting,   // abort requested; body will throw at its next checkpoint
  kCompleted,
  kAborted,
};

bool terminal(RtState s) {
  return s == RtState::kCompleted || s == RtState::kAborted;
}

void validate(const RtJob& job) {
  LFRT_CHECK_MSG(job.tuf != nullptr, "job needs a TUF");
  LFRT_CHECK_MSG(job.body != nullptr, "job needs a body");
  LFRT_CHECK_MSG(job.expected_exec > 0, "job needs an execution estimate");
}

// Abort-deadline wheel shape: firing is per-entry exact, so the
// granularity only bounds how many slots one advance() walks.  512us x
// 2048 slots ~= a 1s in-slot horizon; longer critical times park in
// the overflow list and cascade in as they approach.
constexpr Time kWheelGranularity = usec(512);
constexpr std::size_t kWheelSlots = 2048;

}  // namespace

struct Executor::Impl {
  struct JobRec;

  struct Worker {
    std::thread th;
    JobRec* assigned = nullptr;  // under mu; non-null = has work
  };

  const sched::Scheduler* scheduler;
  const int cpu_count;
  const ExecutorConfig cfg;
  Clock::time_point epoch = Clock::now();

  std::mutex mu;
  std::condition_variable sched_cv;    // wakes the scheduling thread
  std::condition_variable worker_cv;   // wakes parked/idle workers

  // Job records live in a stable-address slab and recycle through a
  // free list: steady-state admission touches no allocator, and the
  // slab's size is the run's peak backlog, not its job count.  `live`
  // (a std::map for deterministic id-order view building) holds only
  // admitted-but-not-terminal jobs.
  std::deque<JobRec> slab;
  std::vector<JobRec*> free_recs;
  std::map<JobId, JobRec*> live;
  JobId next_id = 0;

  // Worker pool.  Workers park on worker_cv between jobs; `idle` is a
  // LIFO so recently-run (cache-warm) threads go first.
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<Worker*> idle;
  bool workers_stop = false;

  // Ingest lanes + admission (lane pointers are stable; the vector is
  // only ever appended to under mu).
  std::vector<std::unique_ptr<IngestLane>> lanes;
  std::vector<IngestLane::Entry> scratch;
  AdmissionFilter admission;  // scheduling thread only, under mu
  // Producer/consumer sleep handshake: the scheduling thread publishes
  // "about to sleep" here, re-checks the lanes, and only then waits;
  // offer() publishes the push, re-checks this flag, and only then
  // notifies (taking mu, so the notify cannot land before the wait).
  // The seq_cst fences on both sides make the two re-checks a Dekker
  // pair: at least one side always sees the other.
  std::atomic<bool> sched_idle{false};

  // Abort timer: one wheel entry per admission, fired (or skipped as
  // stale, when the job already reached a terminal state) by the
  // scheduling thread.  Replaces the per-wakeup O(live) scans for
  // expiry and for the next critical time.
  runtime::TimerWheel<JobId> abort_wheel{kWheelGranularity, kWheelSlots};

  // Per-CPU occupancy: running_on[c] is the job dispatched to CPU c
  // (kNoJob = idle).  Invariant under mu: running_on[c] == id iff
  // live.at(id)->cpu == c.
  std::vector<JobId> running_on;
  // Gauge of workers currently inside job bodies; feeds the report's
  // max_concurrency_observed high-water mark.
  int executing_now = 0;
  bool stopping = false;
  ExecutorReport report;
  runtime::LatencyHistogram sojourn_hist;  // completed jobs only
  runtime::LatencyHistogram ingest_hist;   // lane offer -> admission
  sched::DispatchSelector selector;
  const std::vector<JobId> no_front;  // handlers run off-CPU, no front jobs
  std::thread sched_thread;

  struct JobRec final : public JobContext {
    Impl* owner = nullptr;
    JobId jid = kNoJob;
    RtJob spec;
    RtState state = RtState::kReady;
    int cpu = -1;            // CPU slot currently held, -1 = none
    bool counted = false;    // inside the executing_now gauge
    bool bound = false;      // a pool worker owns this record
    Time ran_for = 0;        // accumulated execution time estimate input
    Time last_dispatch = 0;  // when it last got a CPU

    /// The job's terminal record for the RunReport: arrival/critical
    /// from real clocks, retries/blockings credited by the shared
    /// structures through its worker's ScopedAccessSink, preemptions
    /// counted by the scheduling thread.
    Job acct;

    void reset() {
      spec = RtJob{};
      state = RtState::kReady;
      cpu = -1;
      counted = false;
      bound = false;
      ran_for = 0;
      last_dispatch = 0;
      acct = Job{};
    }

    // --- JobContext ---
    void checkpoint() override {
      std::unique_lock<std::mutex> lock(owner->mu);
      if (state == RtState::kAborting) throw JobAborted{};
      if (cpu >= 0) return;  // still dispatched: keep going
      // Preempted: leave the concurrency gauge and park.  The worker
      // never migrates and its thread-local access sink stays
      // installed, so structure events after resumption still credit
      // this job.
      state = RtState::kPreempted;
      owner->leave_body(*this);
      owner->sched_cv.notify_all();
      owner->worker_cv.wait(lock, [&] {
        return cpu >= 0 || state == RtState::kAborting;
      });
      if (state == RtState::kAborting) throw JobAborted{};
      state = RtState::kRunning;
      owner->enter_body(*this);
    }

    bool aborted() const override {
      std::lock_guard<std::mutex> lock(owner->mu);
      return state == RtState::kAborting;
    }

    JobId id() const override { return jid; }
  };

  Impl(const sched::Scheduler& sch, ExecutorConfig config)
      : scheduler(&sch), cpu_count(config.cpu_count), cfg(config) {
    LFRT_CHECK_MSG(cpu_count >= 1, "ExecutorConfig::cpu_count must be >= 1");
    LFRT_CHECK_MSG(cfg.worker_reserve >= 0,
                   "ExecutorConfig::worker_reserve must be >= 0");
    LFRT_CHECK_MSG(cfg.ingest_batch >= 1,
                   "ExecutorConfig::ingest_batch must be >= 1");
    cfg.dispatch.placement.validate(cpu_count,
                                    cfg.dispatch.placement.task_affinity.size());
    selector.set_options(cfg.dispatch);
    running_on.assign(static_cast<std::size_t>(cpu_count), kNoJob);
    report.cpu_count = cpu_count;
    report.cpu_busy.assign(static_cast<std::size_t>(cpu_count), 0);
    report.cpu_jobs.assign(static_cast<std::size_t>(cpu_count), 0);
    scratch.resize(cfg.ingest_batch);
    {
      std::lock_guard<std::mutex> lock(mu);
      for (int i = 0; i < cpu_count + cfg.worker_reserve; ++i) start_worker();
    }
    sched_thread = std::thread([this] { scheduler_loop(); });
  }

  Time now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - epoch)
        .count();
  }

  // --- helpers; all require mu held ---

  void enter_body(JobRec& r) {
    r.counted = true;
    ++executing_now;
    report.max_concurrency_observed =
        std::max(report.max_concurrency_observed, executing_now);
  }

  // Idempotent: the abort path may leave before the handler runs and
  // the terminal path leaves unconditionally.
  void leave_body(JobRec& r) {
    if (!r.counted) return;
    r.counted = false;
    --executing_now;
  }

  // Releases the job's CPU slot (if any) and accounts the stint, both
  // into the job's execution time and the per-CPU busy tally.
  void vacate_cpu(JobRec& r, Time t) {
    if (r.cpu < 0) return;
    const auto c = static_cast<std::size_t>(r.cpu);
    r.ran_for += t - r.last_dispatch;
    report.cpu_busy[c] += t - r.last_dispatch;
    running_on[c] = kNoJob;
    r.cpu = -1;
  }

  Worker* start_worker() {
    workers.push_back(std::make_unique<Worker>());
    Worker* w = workers.back().get();
    w->th = std::thread([this, w] { worker_loop(w); });
    report.worker_pool_peak = static_cast<std::int64_t>(workers.size());
    return w;
  }

  // Attach a free pool worker to the record (growing the pool when all
  // workers are pinned by preempted jobs).  Caller notifies worker_cv.
  void bind_worker(JobRec& r) {
    Worker* w;
    if (!idle.empty()) {
      w = idle.back();
      idle.pop_back();
    } else {
      w = start_worker();
    }
    w->assigned = &r;
    r.bound = true;
  }

  JobRec* alloc_rec() {
    JobRec* r;
    if (!free_recs.empty()) {
      r = free_recs.back();
      free_recs.pop_back();
    } else {
      slab.emplace_back();
      r = &slab.back();
      report.record_slab_size = static_cast<std::int64_t>(slab.size());
    }
    r->reset();
    return r;
  }

  // Admit one validated job: assign an id, account it, arm its abort
  // timer.  `arrival` is submit-time for the direct paths and
  // offer-time for lane ingest (lane wait is part of the sojourn).
  JobId admit(RtJob&& job, Time arrival) {
    const JobId id = next_id++;
    JobRec* r = alloc_rec();
    r->owner = this;
    r->jid = id;
    r->spec = std::move(job);
    r->acct.id = id;
    r->acct.task = r->spec.task;
    r->acct.arrival = arrival;
    r->acct.critical_abs = arrival + r->spec.tuf->critical_time();
    ++report.submitted;
    report.max_possible_utility += r->spec.tuf->utility(0);
    live.emplace(id, r);
    report.peak_live_records = std::max(
        report.peak_live_records, static_cast<std::int64_t>(live.size()));
    abort_wheel.schedule(r->acct.critical_abs, id);
    return id;
  }

  // Terminal bookkeeping: account the outcome, fold the per-job tallies
  // into the running totals, and recycle the record.  After this
  // returns the record may be reused for a new admission — callers must
  // not touch it again.
  void finalize(JobRec& r, bool completed, Time t) {
    leave_body(r);
    vacate_cpu(r, t);
    r.acct.exec_actual = r.ran_for;
    if (completed) {
      r.state = RtState::kCompleted;
      r.acct.state = JobState::kCompleted;
      r.acct.completion = t;
      ++report.completed;
      report.accrued_utility +=
          r.spec.tuf->utility(r.acct.completion - r.acct.arrival);
      sojourn_hist.record(r.acct.completion - r.acct.arrival);
    } else {
      r.state = RtState::kAborted;
      r.acct.state = JobState::kAborted;
      ++report.aborted;
    }
    report.total_retries += r.acct.retries;
    report.total_blockings += r.acct.blockings;
    report.total_backoff_spins += r.acct.backoff_spins;
    if (cfg.retain_job_records) report.jobs.push_back(r.acct);
    live.erase(r.jid);
    r.spec = RtJob{};  // drop closures now, not at reuse
    free_recs.push_back(&r);
    sched_cv.notify_all();
  }

  // Request an abort.  A job that never started and has no handler is
  // finalized inline (nothing will ever run for it); one with a handler
  // gets a worker bound just to deliver the handler on its own thread
  // with the access sink installed, same as any interrupted body.
  void mark_aborting(JobRec& r, Time t) {
    if (!r.bound && !r.spec.abort_handler) {
      finalize(r, /*completed=*/false, t);
      return;
    }
    r.state = RtState::kAborting;
    vacate_cpu(r, t);
    if (!r.bound) bind_worker(r);
    worker_cv.notify_all();  // parked workers observe and throw
  }

  JobId submit(RtJob job) {
    validate(job);
    std::unique_lock<std::mutex> lock(mu);
    // Reject instead of racing the drain: once shutdown has begun the
    // scheduling thread may already be gone, so an accepted job could
    // never be dispatched and the counted_jobs invariant would break.
    if (stopping) return kNoJob;
    const JobId id = admit(std::move(job), now());
    sched_cv.notify_all();
    return id;
  }

  std::size_t submit_batch(RtJob* batch, std::size_t count, JobId* ids) {
    for (std::size_t i = 0; i < count; ++i) validate(batch[i]);
    std::unique_lock<std::mutex> lock(mu);
    if (stopping) return 0;
    const Time t = now();
    for (std::size_t i = 0; i < count; ++i) {
      const JobId id = admit(std::move(batch[i]), t);
      if (ids != nullptr) ids[i] = id;
    }
    if (count > 0) sched_cv.notify_all();
    return count;
  }

  IngestLane& open_lane(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mu);
    LFRT_CHECK_MSG(!stopping, "open_lane on a stopping executor");
    lanes.push_back(
        std::unique_ptr<IngestLane>(new IngestLane(this, capacity)));
    return *lanes.back();
  }

  void set_admission(AdmissionFilter filter) {
    std::lock_guard<std::mutex> lock(mu);
    admission = std::move(filter);
  }

  bool lanes_empty() const {
    for (const auto& lane : lanes)
      if (!lane->ring_.empty()) return false;
    return true;
  }

  // Pull everything currently staged in the ingest lanes and run each
  // entry through backpressure + admission — the whole burst under the
  // single already-held mutex acquisition.  Returns entries processed.
  std::size_t drain_lanes() {
    if (lanes.empty()) return 0;
    std::size_t processed = 0;
    const Time t = now();
    for (auto& lane : lanes) {
      for (;;) {
        const std::size_t n =
            lane->ring_.pop_n(scratch.data(), cfg.ingest_batch);
        if (n == 0) break;
        for (std::size_t i = 0; i < n; ++i) {
          IngestLane::Entry& e = scratch[i];
          ++report.lane_ingested;
          Admission verdict = Admission::kAdmit;
          if (cfg.max_live_jobs > 0 && live.size() >= cfg.max_live_jobs)
            verdict = Admission::kReject;
          else if (admission)
            verdict = admission(e.job);
          if (verdict == Admission::kReject) {
            // Shed: accrues zero but still weighs in the denominator —
            // rejecting is an abort-at-admission, not a free pass.
            ++report.rejected;
            report.max_possible_utility += e.job.tuf->utility(0);
            e.job = RtJob{};
            continue;
          }
          if (verdict == Admission::kDegrade) ++report.degraded;
          ingest_hist.record(t - e.offered_ns);
          admit(std::move(e.job), e.offered_ns);
        }
        processed += n;
        if (n < cfg.ingest_batch) break;
      }
    }
    if (processed > 0) sched_cv.notify_all();  // a blocked drain() re-checks
    return processed;
  }

  void worker_loop(Worker* w) {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      worker_cv.wait(lock, [&] { return w->assigned != nullptr || workers_stop; });
      if (w->assigned == nullptr) return;  // stop, nothing bound
      JobRec* r = w->assigned;
      w->assigned = nullptr;
      run_job(lock, r);
      // r is recycled by finalize; never touch it past this point.
      idle.push_back(w);
    }
  }

  // Runs one job on the calling pool worker: wait for the first
  // dispatch (or a pre-start abort), execute body/abort-handler with
  // the job's access sink installed, finalize.  mu held on entry and
  // exit, released around the body.
  void run_job(std::unique_lock<std::mutex>& lock, JobRec* r) {
    worker_cv.wait(lock, [&] {
      return r->cpu >= 0 || r->state == RtState::kAborting;
    });
    if (r->state != RtState::kAborting) {
      r->state = RtState::kRunning;
      enter_body(*r);
    }
    bool completed = false;
    lock.unlock();
    {
      // Structure-level retry/contention events on this thread credit
      // the job's own counters — per-job f_i from real CAS failures.
      // One sink covers body and abort handler: both run here, and this
      // thread runs nothing else until the job is terminal, so credits
      // cannot leak across jobs no matter how many workers are inside a
      // structure at once.
      runtime::ScopedAccessSink sink(&r->acct.retries, &r->acct.blockings,
                                     &r->acct.backoff_spins);
      try {
        {
          std::lock_guard<std::mutex> g(mu);
          if (r->state == RtState::kAborting) throw JobAborted{};
        }
        r->spec.body(*r);
        completed = true;
      } catch (const JobAborted&) {
        {
          // The handler runs off-CPU: it is compensation, not body
          // execution, so it leaves the concurrency gauge first.
          std::lock_guard<std::mutex> g(mu);
          leave_body(*r);
        }
        if (r->spec.abort_handler) r->spec.abort_handler();
      }
    }
    lock.lock();
    finalize(*r, completed, now());
  }

  void scheduler_loop() {
    std::unique_lock<std::mutex> lock(mu);
    // Reused across scheduling passes so the loop's steady state stays
    // off the allocator (same contract as the simulator's hot path).
    const auto ws = scheduler->make_workspace();
    sched::ScheduleResult res;
    std::vector<sched::SchedJob> view;
    while (true) {
      drain_lanes();
      const Time t = now();

      // Fire due abort timers (the timer going off).  Entries whose job
      // already reached a terminal state miss the live map: stale, skip.
      abort_wheel.advance(t, [&](Time, JobId id) {
        const auto it = live.find(id);
        if (it == live.end()) return;
        JobRec& r = *it->second;
        if (terminal(r.state) || r.state == RtState::kAborting) return;
        mark_aborting(r, t);
      });

      // Build the scheduler view over pending jobs (live is id-ordered,
      // so ties break identically run to run).
      view.clear();
      for (auto& [id, r] : live) {
        if (r->state == RtState::kAborting) continue;
        sched::SchedJob sj;
        sj.id = id;
        sj.arrival = r->acct.arrival;
        sj.critical = r->acct.critical_abs;
        Time elapsed = r->ran_for;
        if (r->cpu >= 0) elapsed += t - r->last_dispatch;
        sj.remaining = std::max<Time>(1, r->spec.expected_exec - elapsed);
        sj.tuf = r->spec.tuf.get();
        view.push_back(sj);
      }

      if (stopping && live.empty() && lanes_empty()) return;

      scheduler->build_into(view, t, ws.get(), res);
      ++report.sched_invocations;
      report.sched_ops += res.ops;

      // Placement-aware target selection + sticky assignment: the exact
      // rule the simulator's cpu_count > 1 path applies
      // (sched/dispatch.hpp).  Under the global policy select_placed IS
      // select_steered, and with no conflict groups that IS select.
      const auto task_of = [&](JobId id) -> TaskId {
        const auto it = live.find(id);
        return it == live.end() ? TaskId{-1} : it->second->spec.task;
      };
      const auto& targets = selector.select_placed(
          no_front, res, cpu_count, static_cast<std::size_t>(next_id),
          [&](JobId id) {
            const auto it = live.find(id);
            if (it == live.end()) return false;
            return it->second->state != RtState::kAborting;
          },
          task_of);
      const auto& next = selector.assign_placed(
          targets, cpu_count, task_of,
          [&](JobId id) { return live.at(id)->cpu; });

      bool changed = false;
      for (int c = 0; c < cpu_count; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const JobId prev = running_on[ci];
        const JobId target = next[ci];
        if (prev == target) continue;
        changed = true;
        if (prev != kNoJob) {
          // Deschedule: account the stint (a preemption if the job is
          // still unfinished).
          JobRec& p = *live.at(prev);
          vacate_cpu(p, t);
          if (!terminal(p.state) && p.state != RtState::kAborting) {
            ++p.acct.preemptions;
            ++report.total_preemptions;
          }
        }
        if (target != kNoJob) {
          JobRec& n = *live.at(target);
          if (!n.bound) bind_worker(n);  // first dispatch: claim a worker
          n.cpu = c;
          n.last_dispatch = t;
          running_on[ci] = target;
          ++report.dispatches;
          ++report.cpu_jobs[ci];
        }
      }
      if (changed) worker_cv.notify_all();

      // Sleep until the next abort deadline or any event.  The
      // idle-flag/fence handshake with IngestLane::offer (see
      // sched_idle) closes the lost-wakeup window: after publishing
      // sched_idle we re-check the lanes, and a producer that missed
      // the flag is guaranteed (Dekker, via the paired seq_cst fences)
      // to have its push visible to that re-check.
      const Time next_expiry = abort_wheel.next_deadline();
      sched_idle.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!lanes_empty()) {
        sched_idle.store(false, std::memory_order_relaxed);
        continue;
      }
      if (next_expiry == kTimeNever) {
        sched_cv.wait(lock);
      } else {
        sched_cv.wait_until(lock,
                            epoch + std::chrono::nanoseconds(next_expiry));
      }
      sched_idle.store(false, std::memory_order_relaxed);
    }
  }

  void set_task_conflict_groups(std::vector<std::int32_t> groups) {
    std::lock_guard<std::mutex> lock(mu);
    selector.set_conflict_groups(std::move(groups));
    sched_cv.notify_all();  // re-dispatch under the new steering
  }

  void set_placement(sched::Placement placement) {
    std::lock_guard<std::mutex> lock(mu);
    auto opts = selector.options();
    opts.placement = std::move(placement);
    selector.set_options(std::move(opts));
    sched_cv.notify_all();  // re-dispatch under the new affinities
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mu);
    sched_cv.wait(lock, [&] { return live.empty() && lanes_empty(); });
  }

  ExecutorReport shutdown() {
    {
      // Close the door first: submissions from here on are rejected
      // (submit returns kNoJob), so the drain below is over a frozen
      // job population and the counted_jobs invariant holds.
      std::lock_guard<std::mutex> lock(mu);
      stopping = true;
      sched_cv.notify_all();
    }
    drain();
    sched_thread.join();
    {
      std::lock_guard<std::mutex> lock(mu);
      workers_stop = true;
      worker_cv.notify_all();
    }
    for (auto& w : workers)
      if (w->th.joinable()) w->th.join();
    std::lock_guard<std::mutex> lock(mu);
    // Assemble the shared RunReport view.  Totals and per-job records
    // were folded in incrementally at each finalize; records only need
    // the historical id-order presentation restored (terminal order is
    // completion order).
    report.counted_jobs = report.submitted + report.rejected;
    if (cfg.retain_job_records) {
      std::sort(report.jobs.begin(), report.jobs.end(),
                [](const Job& a, const Job& b) { return a.id < b.id; });
    }
    report.sojourn_p50_ns = sojourn_hist.percentile(0.50);
    report.sojourn_p99_ns = sojourn_hist.percentile(0.99);
    report.sojourn_p999_ns = sojourn_hist.percentile(0.999);
    if (report.lane_ingested > 0) {
      report.ingest_p50_ns = ingest_hist.percentile(0.50);
      report.ingest_p99_ns = ingest_hist.percentile(0.99);
      report.ingest_p999_ns = ingest_hist.percentile(0.999);
    }
    return report;
  }
};

bool IngestLane::offer(RtJob job) {
  validate(job);
  Entry e;
  e.offered_ns = owner_->now();
  e.job = std::move(job);
  if (!ring_.push(std::move(e))) return false;
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (owner_->sched_idle.load(std::memory_order_relaxed)) {
    // Rare path (scheduler idle == no load): take the mutex so the
    // notify cannot slip between the scheduler's lane re-check and its
    // wait.  The fast path above stays wait-free.
    std::lock_guard<std::mutex> lock(owner_->mu);
    owner_->sched_cv.notify_all();
  }
  return true;
}

Executor::Executor(const sched::Scheduler& scheduler, ExecutorConfig config)
    : impl_(std::make_unique<Impl>(scheduler, config)) {}

Executor::~Executor() {
  if (impl_ && impl_->sched_thread.joinable()) (void)impl_->shutdown();
}

JobId Executor::submit(RtJob job) { return impl_->submit(std::move(job)); }

std::size_t Executor::submit_batch(RtJob* jobs, std::size_t count,
                                   JobId* ids) {
  return impl_->submit_batch(jobs, count, ids);
}

IngestLane& Executor::open_lane(std::size_t capacity) {
  return impl_->open_lane(capacity);
}

void Executor::set_admission(AdmissionFilter filter) {
  impl_->set_admission(std::move(filter));
}

void Executor::drain() { impl_->drain(); }

void Executor::set_task_conflict_groups(std::vector<std::int32_t> groups) {
  impl_->set_task_conflict_groups(std::move(groups));
}

void Executor::set_placement(sched::Placement placement) {
  impl_->set_placement(std::move(placement));
}

ExecutorReport Executor::shutdown() { return impl_->shutdown(); }

}  // namespace lfrt::rt
