file(REMOVE_RECURSE
  "../bench/thm3_sojourn"
  "../bench/thm3_sojourn.pdb"
  "CMakeFiles/thm3_sojourn.dir/thm3_sojourn.cpp.o"
  "CMakeFiles/thm3_sojourn.dir/thm3_sojourn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm3_sojourn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
