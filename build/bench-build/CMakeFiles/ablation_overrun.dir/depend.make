# Empty dependencies file for ablation_overrun.
# This may be replaced when dependencies are built.
