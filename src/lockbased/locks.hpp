// The lock zoo: ticket, Anderson array, and MCS queue spin locks.
//
// The paper's lock-based baseline is a single pthread mutex with one
// access time r, but the lock-vs-lock-free tradeoff space is organized
// by *mechanism*: how an acquire waits and what a release costs under
// contention.
//
//   * TicketLock — FIFO by a fetch-add ticket; every waiter spins on
//     the one `serving` word, so each release invalidates every
//     waiter's cached copy: cost grows linearly with the contender
//     count (the per-contender term of its cost model).
//   * AndersonArrayLock — FIFO by the same ticket, but each waiter
//     spins on its own cache-line-padded slot; a release touches
//     exactly one remote line.  The fixed slot array caps concurrent
//     waiters at kSlots (compile-time, far above any thread count this
//     repo spawns).
//   * McsLock — FIFO by an explicit waiter queue; each waiter spins on
//     a flag in its *own* queue node, and a handoff is one cache-line
//     transfer (store to the successor's node): near-flat scaling, the
//     mechanism whose crossover bench/thm3_sojourn relocates.
//
// All three model BasicLockable + try_lock (`lock() / unlock() /
// try_lock()`), interchangeable with std::mutex, so the generic
// structure wrappers in locked.hpp are written once and parameterized
// by lock type — and runtime::SharedObject instantiates every
// (ObjectKind, lock) combination from one template.
//
// Accounting stays in the wrappers (locked.hpp's Guard): an acquire
// first try_lock()s, recording an uncontended acquisition on success
// and a contended one (a blocking episode, the paper's n_i event — for
// the queue locks, equivalently a *handoff*: the grant arrives from a
// predecessor's release, not from finding the lock free) before
// falling back to lock().  The locks themselves only expose `queued()`,
// a relaxed holder+waiter gauge the FIFO property tests rendezvous on.
//
// Real-time caveat: these are spin locks — waiters burn their CPU, so
// on the executor they model the "busy-wait blocking" regime of spin-
// lock analyses (Jiang et al.), while the simulator models the same
// mechanisms with suspension semantics.  Critical sections in this
// repo are microseconds, where spinning is the honest choice.
#pragma once

#include <atomic>
#include <cstdint>

#include "lockfree/backoff.hpp"
#include "support/cacheline.hpp"
#include "support/check.hpp"

namespace lfrt::lockbased {

/// FIFO ticket lock: acquire takes a ticket, waits for `serving` to
/// reach it; release advances `serving`.  Fair, compact, but every
/// waiter spins on the same word.
class TicketLock {
 public:
  void lock() {
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    while (serving_.load(std::memory_order_acquire) != my)
      lockfree::cpu_relax();
  }

  /// Succeeds only when no one holds or waits (next == serving) and the
  /// CAS wins the ticket — FIFO order is preserved for losers.
  bool try_lock() {
    std::uint32_t cur = serving_.load(std::memory_order_acquire);
    std::uint32_t expect = cur;
    return next_.compare_exchange_strong(expect, cur + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  void unlock() {
    // Only the holder writes serving_, so the relaxed self-read is
    // race-free; the release publishes the critical section to the
    // next ticket's acquire spin.
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

  /// Holder + waiters currently ticketed (relaxed gauge; exact once
  /// admission is externally quiesced — the FIFO tests' rendezvous).
  std::int32_t queued() const {
    return static_cast<std::int32_t>(
        next_.load(std::memory_order_relaxed) -
        serving_.load(std::memory_order_relaxed));
  }

 private:
  // Tickets and grants on separate lines: waiters hammer serving_ while
  // arrivals fetch-add next_; sharing a line would couple the two.
  alignas(support::kCacheLineSize) std::atomic<std::uint32_t> next_{0};
  alignas(support::kCacheLineSize) std::atomic<std::uint32_t> serving_{0};
};

/// FIFO array (Anderson) lock: ticket t spins on its own padded slot
/// t % kSlots; release flips exactly the successor's slot.
class AndersonArrayLock {
 public:
  /// Upper bound on holder + concurrent waiters (ticket t and t+kSlots
  /// alias one slot).  64 is far beyond any thread count this repo
  /// spawns; the check in lock() turns an overflow into a loud failure
  /// instead of a silent aliasing hang.
  static constexpr std::uint32_t kSlots = 64;

  AndersonArrayLock() {
    slots_[0].value.store(1, std::memory_order_relaxed);
  }

  void lock() {
    const std::uint32_t t = tail_.fetch_add(1, std::memory_order_acq_rel);
    inflight_.fetch_add(1, std::memory_order_relaxed);
    LFRT_CHECK_MSG(queued() <= static_cast<std::int32_t>(kSlots),
                   "AndersonArrayLock: more waiters than slots");
    const std::uint32_t s = t % kSlots;
    while (slots_[s].value.load(std::memory_order_acquire) == 0)
      lockfree::cpu_relax();
    // Consume the grant; the slot is re-armed by ticket t + kSlots - 1's
    // release, which the handoff chain orders after this store.
    slots_[s].value.store(0, std::memory_order_relaxed);
    owner_slot_ = s;
  }

  bool try_lock() {
    std::uint32_t t = tail_.load(std::memory_order_acquire);
    // Only the front ticket's slot can be armed while the lock is free;
    // winning the tail CAS makes ticket t exclusively ours.
    if (slots_[t % kSlots].value.load(std::memory_order_acquire) == 0)
      return false;
    if (!tail_.compare_exchange_strong(t, t + 1, std::memory_order_acq_rel,
                                       std::memory_order_relaxed))
      return false;
    inflight_.fetch_add(1, std::memory_order_relaxed);
    slots_[t % kSlots].value.store(0, std::memory_order_relaxed);
    owner_slot_ = t % kSlots;
    return true;
  }

  void unlock() {
    const std::uint32_t next = (owner_slot_ + 1) % kSlots;
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    slots_[next].value.store(1, std::memory_order_release);
  }

  /// Holder + waiters (relaxed gauge, see TicketLock::queued).
  std::int32_t queued() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  // One padded slot per waiting position: a release writes one slot,
  // invalidating only its owner's spin — the whole point vs Ticket.
  support::CacheAligned<std::atomic<std::uint32_t>> slots_[kSlots];
  alignas(support::kCacheLineSize) std::atomic<std::uint32_t> tail_{0};
  std::atomic<std::int32_t> inflight_{0};
  // Written by the holder only; handoff release/acquire orders it
  // between consecutive holders.
  std::uint32_t owner_slot_ = 0;
};

/// FIFO MCS queue lock: waiters form an explicit linked queue and spin
/// on a flag inside their own node; a release hands off by one store
/// into the successor's node.
class McsLock {
 public:
  void lock() {
    QNode* n = node_acquire();
    QNode* prev = tail_.exchange(n, std::memory_order_acq_rel);
    queued_.fetch_add(1, std::memory_order_relaxed);
    if (prev != nullptr) {
      prev->next.store(n, std::memory_order_release);
      while (!n->ready.load(std::memory_order_acquire))
        lockfree::cpu_relax();
    }
    owner_ = n;
  }

  bool try_lock() {
    QNode* n = node_acquire();
    QNode* expected = nullptr;
    if (tail_.compare_exchange_strong(expected, n, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      queued_.fetch_add(1, std::memory_order_relaxed);
      owner_ = n;
      return true;
    }
    node_release(n);
    return false;
  }

  void unlock() {
    QNode* n = owner_;
    owner_ = nullptr;
    queued_.fetch_sub(1, std::memory_order_relaxed);
    QNode* expected = n;
    if (!tail_.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
      // A successor won the tail; wait for its link, then hand off with
      // the one remote store that makes MCS near-flat under contention.
      QNode* next;
      while ((next = n->next.load(std::memory_order_acquire)) == nullptr)
        lockfree::cpu_relax();
      next->ready.store(true, std::memory_order_release);
    }
    node_release(n);
  }

  /// Holder + waiters queued (relaxed gauge, see TicketLock::queued).
  std::int32_t queued() const {
    return queued_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(support::kCacheLineSize) QNode {
    std::atomic<QNode*> next{nullptr};
    std::atomic<bool> ready{false};
  };

  /// Per-thread node pool: lock()/unlock() carry no handle (the
  /// BasicLockable shape), so the queue node lives thread-locally.  A
  /// node is in use only between its acquire's queue insertion and the
  /// handoff in unlock, and a thread holds at most a handful of locks
  /// at once (the wrappers hold exactly one), so a small slot pool
  /// suffices — overflow is a loud invariant failure, not corruption.
  static constexpr std::uint32_t kTlsNodes = 8;
  struct TlsPool {
    QNode nodes[kTlsNodes];
    bool used[kTlsNodes] = {};
  };

  static TlsPool& tls_pool() {
    static thread_local TlsPool pool;
    return pool;
  }

  static QNode* node_acquire() {
    TlsPool& p = tls_pool();
    for (std::uint32_t i = 0; i < kTlsNodes; ++i) {
      if (!p.used[i]) {
        p.used[i] = true;
        QNode* n = &p.nodes[i];
        n->next.store(nullptr, std::memory_order_relaxed);
        n->ready.store(false, std::memory_order_relaxed);
        return n;
      }
    }
    LFRT_CHECK_MSG(false, "McsLock: thread exceeds TLS queue-node pool");
    return nullptr;
  }

  static void node_release(QNode* n) {
    TlsPool& p = tls_pool();
    p.used[static_cast<std::size_t>(n - p.nodes)] = false;
  }

  alignas(support::kCacheLineSize) std::atomic<QNode*> tail_{nullptr};
  std::atomic<std::int32_t> queued_{0};
  // Holder's own node; handoff release/acquire orders it between
  // consecutive holders.
  QNode* owner_ = nullptr;
};

}  // namespace lfrt::lockbased
