// Synthetic workload generation for the paper's experiments.
//
// The evaluation (Section 6) uses task sets of 10 tasks accessing 10
// shared queues, with controllable approximate load AL = sum u_i / C_i,
// two TUF classes (step-only and heterogeneous), and average job
// execution times swept from 10 usec to 1 msec.  This module synthesizes
// TaskSets with exactly those knobs.
#pragma once

#include <cstdint>

#include "task/task.hpp"

namespace lfrt::workload {

/// TUF class of the generated task set (Section 6.2).
enum class TufClass {
  kStep,           ///< homogeneous: step shapes only
  kHeterogeneous,  ///< step + parabolic + linearly-decreasing
};

struct WorkloadSpec {
  std::int32_t task_count = 10;
  std::int32_t object_count = 10;
  Time avg_exec = usec(500);      ///< mean u_i
  double exec_jitter = 0.5;       ///< u_i uniform in avg*(1 +/- jitter)
  double load = 0.4;              ///< target AL = sum u_i / C_i
  std::int32_t accesses_per_job = 2;  ///< m_i
  TufClass tuf_class = TufClass::kStep;
  std::int64_t max_per_window = 1;    ///< UAM a_i (l_i = min(1, a_i))
  Time abort_handler_time = 0;
  std::uint64_t seed = 1;

  /// Fraction of generated accesses that are reads (lock-free reads
  /// never invalidate concurrent attempts; lock-based treats reads and
  /// writes alike under mutual exclusion).  0 = all writes (default).
  double read_fraction = 0.0;

  /// When true, each object has exactly one writer: task i may write
  /// object o iff o mod task_count == i, and any access another task
  /// drew as a write is demoted to a read.  Matches the single-writer
  /// precondition of lockfree::NbwBuffer / AtomicSnapshot so executor
  /// runs exercise those kinds under their intended usage.  Demotion
  /// happens after all random draws, so task sets generated with the
  /// flag off are unchanged.  Default false.
  bool single_writer_objects = false;

  /// Critical time as a fraction of the UAM window: C_i = fraction *
  /// W_i (the model requires C_i <= W_i; the paper's evaluation uses
  /// C = W, the default).  Smaller fractions leave idle headroom after
  /// each critical time and stress the C < W corner of the model.
  double critical_fraction = 1.0;

  /// Depth of nested critical sections (lock-based only).  0 = flat
  /// accesses (the default).  With depth d >= 1, each job gets one
  /// nest of d properly nested LockSpans over distinct random objects,
  /// acquired in random order — so lock-order cycles (deadlocks) can
  /// arise across jobs.
  std::int32_t nest_depth = 0;
};

/// Build a task set matching the spec.  Each task receives:
///   * u_i drawn uniformly in avg_exec * (1 +/- exec_jitter),
///   * C_i = W_i = u_i * task_count / load  (so AL sums to `load`),
///   * a TUF of the requested class with height uniform in [10, 100],
///   * accesses_per_job accesses at sorted random offsets in
///     [0.1 u_i, 0.9 u_i] to uniformly random objects,
///   * UAM ⟨1, max_per_window, W_i⟩.
TaskSet make_task_set(const WorkloadSpec& spec);

}  // namespace lfrt::workload
