file(REMOVE_RECURSE
  "liblfrt_rt.a"
)
