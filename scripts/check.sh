#!/usr/bin/env bash
# Full correctness + smoke gate:
#   1. ASan+UBSan build of the whole tree, tier-1 suite under the
#      sanitizers (catches lifetime bugs in the in-place RUA schedule
#      editing that plain tests cannot see),
#   2. TSan build, concurrency-sensitive suites only: the parallel
#      experiment harness (exp_test), its thread-count-invariance
#      guarantee (determinism_test), the shared-const-scheduler
#      contract (concurrent_build_test), the lock-free structures
#      (lockfree_test — their relaxed/acquire orderings must satisfy
#      TSan), and executor abort storms (executor_storm_test),
#   3. -O2 build, tier-1 suite, and tiny sched_throughput +
#      sim_throughput sweeps as bench smoke tests (the latter also
#      re-checks serial-vs-parallel result identity in production).
#
# Stages 1 and 2 also run the cross-substrate validation bench
# (ext_executor_validation --tiny): real executor runs under each
# sanitizer, with the sim-vs-executor agreement assertions live.
#
# Usage: scripts/check.sh [jobs]      (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> [1/3] sanitizer build + tests (build-asan/)"
cmake -B build-asan -S . -DLFRT_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"
./build-asan/bench/ext_executor_validation --tiny \
      --out build-asan/BENCH_xval_smoke.json

echo "==> [2/3] thread-sanitizer build + concurrency tests (build-tsan/)"
cmake -B build-tsan -S . -DLFRT_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "$JOBS" \
      --target exp_test determinism_test concurrent_build_test \
               lockfree_test executor_storm_test ext_executor_validation
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R '^(ExpThreadPool|ExpParallelMap|ExpSweep|ExpThreads|Determinism|ConcurrentBuild|MsQueue|TreiberStack|SpscRing|NodePool|TaggedRef|Sweep/AbaHammerTest|ExecutorStorm)\.'
./build-tsan/bench/ext_executor_validation --tiny \
      --out build-tsan/BENCH_xval_smoke.json

echo "==> [3/3] optimized build + tests + bench smoke (build-o2/)"
cmake -B build-o2 -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-o2 -j "$JOBS"
ctest --test-dir build-o2 --output-on-failure -j "$JOBS"
./build-o2/bench/sched_throughput --tiny --out build-o2/BENCH_sched_smoke.json
./build-o2/bench/sim_throughput --tiny --out build-o2/BENCH_sweep_smoke.json
echo "OK: ASan+TSan clean, tier-1 green twice, bench smokes passed"
