file(REMOVE_RECURSE
  "../bench/fig14_readers"
  "../bench/fig14_readers.pdb"
  "CMakeFiles/fig14_readers.dir/fig14_readers.cpp.o"
  "CMakeFiles/fig14_readers.dir/fig14_readers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_readers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
