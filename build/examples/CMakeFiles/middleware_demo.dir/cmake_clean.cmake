file(REMOVE_RECURSE
  "CMakeFiles/middleware_demo.dir/middleware_demo.cpp.o"
  "CMakeFiles/middleware_demo.dir/middleware_demo.cpp.o.d"
  "middleware_demo"
  "middleware_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
